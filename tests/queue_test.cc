#include "common/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace streamline {
namespace {

TEST(BoundedQueueTest, PushPopFifo) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, TryPopOnEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // rejected after close
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());  // end-of-queue
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q(1);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Push(42);
  });
  EXPECT_EQ(q.Pop().value(), 42);
  producer.join();
}

TEST(BoundedQueueTest, PushBlocksUntilPopBackpressure) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);  // blocks: queue full
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> rejected{false};
  std::thread producer([&] { rejected = !q.Push(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();
  EXPECT_TRUE(rejected.load());
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2500;
  BoundedQueue<int> q(64);
  std::atomic<long> total{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        total += *v;
        ++popped;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(BoundedQueueTest, MoveOnlyElements) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  q.Push(std::make_unique<int>(5));
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace streamline
