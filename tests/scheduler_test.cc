// Tests for the morsel-driven work-stealing scheduler: pool-level behavior
// (stealing, park/unpark, notify coalescing, shutdown with queued morsels,
// timers), job-level integration (exact thread count, barrier alignment
// with fewer workers than tasks -- the starvation regression), and
// byte-identical equivalence between scheduler mode and the legacy
// thread-per-task baseline, including across checkpoint/restore.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <functional>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "api/datastream.h"
#include "dataflow/executor.h"

namespace streamline {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

void SpinFor(microseconds d) {
  const auto until = steady_clock::now() + d;
  while (steady_clock::now() < until) {
  }
}

// Waits (with a deadline) for `pred` to become true.
template <typename Pred>
bool AwaitTrue(Pred pred, milliseconds deadline = milliseconds(10'000)) {
  const auto until = steady_clock::now() + deadline;
  while (!pred()) {
    if (steady_clock::now() > until) return false;
    std::this_thread::sleep_for(microseconds(200));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Pool-level tests.

// A leaf morsel: burns a little CPU so a stealing peer has time to act,
// then goes idle for good.
class LeafTask : public Schedulable {
 public:
  explicit LeafTask(std::atomic<uint64_t>* done) : done_(done) {}
  bool Step() override {
    SpinFor(microseconds(200));
    done_->fetch_add(1, std::memory_order_relaxed);
    return false;
  }

 private:
  std::atomic<uint64_t>* done_;
};

// Fans a burst of leaves onto the calling worker's own deque (an on-worker
// Notify pushes to the local hot end), creating the skew a peer steals from.
class FanOutTask : public Schedulable {
 public:
  FanOutTask(WorkStealingPool* pool, std::vector<std::unique_ptr<LeafTask>>* leaves)
      : pool_(pool), leaves_(leaves) {}
  bool Step() override {
    for (auto& leaf : *leaves_) pool_->Notify(leaf.get());
    return false;
  }

 private:
  WorkStealingPool* pool_;
  std::vector<std::unique_ptr<LeafTask>>* leaves_;
};

TEST(SchedulerPoolTest, StealsUnderSkew) {
  constexpr size_t kLeaves = 256;
  WorkStealingPool::Options opts;
  opts.num_workers = 2;
  WorkStealingPool pool(opts);
  ASSERT_EQ(pool.num_workers(), 2u);

  std::atomic<uint64_t> done{0};
  std::vector<std::unique_ptr<LeafTask>> leaves;
  for (size_t i = 0; i < kLeaves; ++i) {
    leaves.push_back(std::make_unique<LeafTask>(&done));
  }
  FanOutTask root(&pool, &leaves);
  pool.Notify(&root);

  ASSERT_TRUE(AwaitTrue([&] { return done.load() == kLeaves; }));
  // All leaves land on one worker's deque; with ~50 ms of aggregate leaf
  // work the idle peer must have stolen at least once.
  EXPECT_GT(pool.counters().steals.load(), 0u);
  const uint64_t executed = pool.counters().morsels_local.load() +
                            pool.counters().morsels_stolen.load() +
                            pool.counters().morsels_injected.load() +
                            pool.counters().morsels_inline.load();
  EXPECT_EQ(executed, kLeaves + 1);  // leaves + the fan-out morsel
  pool.Shutdown();
}

class CountingTask : public Schedulable {
 public:
  bool Step() override {
    count.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::atomic<uint64_t> count{0};
};

TEST(SchedulerPoolTest, ParkUnparkRaceKeepsEveryNotify) {
  constexpr uint64_t kRounds = 2'000;
  WorkStealingPool::Options opts;
  opts.num_workers = 2;
  WorkStealingPool pool(opts);

  CountingTask task;
  for (uint64_t i = 0; i < kRounds; ++i) {
    pool.Notify(&task);
    // Wait for this round's run before the next notify, so a coalesced
    // notify can never explain a missing run: every notify from idle must
    // produce exactly one morsel.
    ASSERT_TRUE(AwaitTrue([&] { return task.count.load() > i; }))
        << "notify " << i << " lost";
    // Let the workers park every few rounds so notifies keep landing in
    // the park/unpark window.
    if (i % 16 == 0) std::this_thread::sleep_for(microseconds(200));
  }
  EXPECT_EQ(task.count.load(), kRounds);
  EXPECT_GT(pool.counters().parks.load(), 0u);
  EXPECT_GT(pool.counters().wakeups.load(), 0u);
  pool.Shutdown();
}

// Occupies its worker until released; used to pin a 1-worker pool.
class BlockerTask : public Schedulable {
 public:
  bool Step() override {
    running.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(microseconds(100));
    }
    return false;
  }
  std::atomic<bool> running{false};
  std::atomic<bool> release{false};
};

TEST(SchedulerPoolTest, NotifyCoalescesWhileQueued) {
  WorkStealingPool::Options opts;
  opts.num_workers = 1;
  WorkStealingPool pool(opts);

  BlockerTask blocker;
  CountingTask task;
  pool.Notify(&blocker);
  ASSERT_TRUE(AwaitTrue([&] { return blocker.running.load(); }));
  // The only worker is busy, so the task stays queued across all five
  // notifies; they must coalesce into exactly one run.
  for (int i = 0; i < 5; ++i) pool.Notify(&task);
  blocker.release.store(true);
  ASSERT_TRUE(AwaitTrue([&] { return task.count.load() > 0; }));
  std::this_thread::sleep_for(milliseconds(5));
  EXPECT_EQ(task.count.load(), 1u);
  pool.Shutdown();
}

TEST(SchedulerPoolTest, ShutdownDropsQueuedMorselsCleanly) {
  WorkStealingPool::Options opts;
  opts.num_workers = 1;
  WorkStealingPool pool(opts);

  BlockerTask blocker;
  std::vector<std::unique_ptr<CountingTask>> tasks;
  for (int i = 0; i < 64; ++i) tasks.push_back(std::make_unique<CountingTask>());

  pool.Notify(&blocker);
  ASSERT_TRUE(AwaitTrue([&] { return blocker.running.load(); }));
  for (auto& t : tasks) pool.Notify(t.get());
  EXPECT_GT(pool.ApproxReadyDepth(), 0u);

  // Release the worker and shut down while the backlog is still queued:
  // shutdown must join without running everything and without touching
  // freed state (ASan covers the latter).
  blocker.release.store(true);
  pool.Shutdown();
  uint64_t ran = 0;
  for (auto& t : tasks) ran += t->count.load();
  EXPECT_LE(ran, 64u);
  pool.Shutdown();  // idempotent
}

TEST(SchedulerPoolTest, RepeatingTimerFiresUntilCancelled) {
  WorkStealingPool::Options opts;
  opts.timer_only = true;
  WorkStealingPool pool(opts);
  EXPECT_EQ(pool.num_workers(), 0u);

  std::atomic<uint64_t> ticks{0};
  const uint64_t id = pool.ScheduleRepeating(1, [&] { ticks.fetch_add(1); });
  ASSERT_TRUE(AwaitTrue([&] { return ticks.load() >= 5; }));
  pool.CancelTimer(id);
  const uint64_t after_cancel = ticks.load();
  std::this_thread::sleep_for(milliseconds(20));
  EXPECT_LE(ticks.load(), after_cancel + 1);  // at most one in-flight tick
  pool.Shutdown();
}

// ---------------------------------------------------------------------------
// Job-level tests.

size_t OsThreadCount() {
  size_t n = 0;
  for (const auto& e :
       std::filesystem::directory_iterator("/proc/self/task")) {
    (void)e;
    ++n;
  }
  return n;
}

Record KeyedValue(uint64_t i) {
  return MakeRecord(static_cast<Timestamp>(i),
                    Value(static_cast<int64_t>(i % 13)),
                    Value(static_cast<int64_t>(i % 101) - 50));
}

TEST(SchedulerJobTest, PoolSizeBoundsOsThreads) {
  // Parallelism 8 in thread-per-task mode would spawn a thread per
  // subtask; the scheduler must spawn exactly worker_threads workers plus
  // the shared timer thread, regardless of task count.
  const size_t baseline = OsThreadCount();

  std::atomic<bool> stop{false};
  Environment env(8);
  auto sink = env.FromGenerator(
                     "unbounded",
                     [&stop](uint64_t seq) -> std::optional<Record> {
                       if (stop.load(std::memory_order_acquire)) {
                         return std::nullopt;
                       }
                       return KeyedValue(seq);
                     })
                  .KeyBy(0)
                  .Reduce([](const Record& acc, const Record& next) {
                    Record out = acc;
                    out.fields[1] = Value(acc.field(1).AsInt64() +
                                          next.field(1).AsInt64());
                    return out;
                  })
                  .Collect();

  JobOptions options;
  options.execution_mode = JobOptions::ExecutionMode::kScheduler;
  options.worker_threads = 2;
  auto job = env.CreateJob(options);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE(AwaitTrue([&] { return sink->size() > 100; }));

  ASSERT_NE((*job)->scheduler(), nullptr);
  EXPECT_EQ((*job)->scheduler()->num_workers(), 2u);
  // 2 workers + 1 timer thread, nothing else -- even though the job has
  // 1 source + 8 keyed + sink subtasks.
  EXPECT_EQ(OsThreadCount(), baseline + 3);

  stop.store(true, std::memory_order_release);
  EXPECT_TRUE((*job)->AwaitCompletion().ok());
  job->reset();  // joins the pool
  EXPECT_EQ(OsThreadCount(), baseline);
}

// Regression for backpressure-under-alignment: with one worker and many
// tasks, a checkpoint barrier must still complete. During alignment a
// consumer deliberately stops draining its aligned channel; the producer
// blocked on that channel must yield the worker (overflow-stash, not a
// blocking push) so the second source -- which still owes its barrier --
// gets scheduled and alignment can finish.
TEST(SchedulerJobTest, BarriersCompleteWithOneWorkerManyTasks) {
  std::atomic<bool> stop{false};
  auto gen = [&stop](const char*) {
    return [&stop](uint64_t seq) -> std::optional<Record> {
      if (stop.load(std::memory_order_acquire)) return std::nullopt;
      return KeyedValue(seq);
    };
  };

  Environment env(4);
  DataStream left = env.FromGenerator("left", gen("l"));
  DataStream right = env.FromGenerator("right", gen("r"));
  auto sink = left.Union(right)
                  .KeyBy(0)
                  .Window(std::make_shared<TumblingWindowFn>(64))
                  .Aggregate(DynAggKind::kSum, 1)
                  .Rebalance(1)
                  .Collect();

  JobOptions options;
  options.execution_mode = JobOptions::ExecutionMode::kScheduler;
  options.worker_threads = 1;
  options.snapshot_store = std::make_shared<SnapshotStore>();
  auto job = env.CreateJob(options);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Start().ok());
  ASSERT_TRUE(AwaitTrue([&] { return sink->size() >= 20; }));

  // Several full barrier rounds over 2 sources + 4 keyed + 1 sink tasks,
  // all multiplexed on a single worker.
  std::vector<uint64_t> cps;
  for (int round = 0; round < 3; ++round) {
    const uint64_t cp = (*job)->TriggerCheckpoint();
    ASSERT_TRUE((*job)->AwaitCheckpoint(cp, 20.0)) << "round " << round;
    cps.push_back(cp);
  }
  (*job)->Cancel();
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  // Barriers stay totally ordered per channel: sink offsets are
  // well-defined and non-decreasing in checkpoint id.
  int64_t prev = -1;
  for (uint64_t cp : cps) {
    const int64_t off = sink->BarrierOffset(cp);
    ASSERT_GE(off, 0) << "checkpoint " << cp << " never passed the sink";
    EXPECT_GE(off, prev);
    prev = off;
  }
}

TEST(SchedulerJobTest, PeriodicCheckpointsCompleteUnderScheduler) {
  std::atomic<bool> stop{false};
  Environment env(2);
  auto sink = env.FromGenerator(
                     "unbounded",
                     [&stop](uint64_t seq) -> std::optional<Record> {
                       if (stop.load(std::memory_order_acquire)) {
                         return std::nullopt;
                       }
                       return KeyedValue(seq);
                     })
                  .KeyBy(0)
                  .Window(std::make_shared<TumblingWindowFn>(64))
                  .Aggregate(DynAggKind::kSum, 1)
                  .Rebalance(1)
                  .Collect();

  JobOptions options;
  options.execution_mode = JobOptions::ExecutionMode::kScheduler;
  options.worker_threads = 1;
  options.checkpoint_interval_ms = 2;
  options.snapshot_store = std::make_shared<SnapshotStore>();
  auto job = env.CreateJob(options);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Start().ok());
  // The pool timer drives the cadence; several checkpoints must complete
  // while the job streams.
  ASSERT_TRUE(AwaitTrue(
      [&] { return options.snapshot_store->CheckpointIds().size() >= 3; }));
  stop.store(true, std::memory_order_release);
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
}

// ---------------------------------------------------------------------------
// Mode equivalence: scheduler vs thread-per-task, byte-identical output.

std::vector<Record> TestInput(size_t n, uint32_t seed, int64_t num_keys) {
  std::mt19937 rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t key = static_cast<int64_t>(rng() % num_keys);
    const int64_t val = static_cast<int64_t>(rng() % 101) - 50;
    records.push_back(MakeRecord(static_cast<Timestamp>(i), Value(key),
                                 Value(val)));
  }
  return records;
}

using PipelineFn = std::function<std::shared_ptr<CollectSink>(Environment&)>;

std::vector<Record> RunWithOptions(const PipelineFn& build,
                                   const JobOptions& options,
                                   int parallelism = 1) {
  Environment env(parallelism);
  std::shared_ptr<CollectSink> sink = build(env);
  const Status status = env.Execute(options);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return sink->records();
}

void ExpectIdenticalOutput(const std::vector<Record>& want,
                           const std::vector<Record>& got,
                           const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].timestamp, got[i].timestamp) << "record " << i << " "
                                                   << label;
    EXPECT_EQ(want[i].key_hash, got[i].key_hash) << "record " << i << " "
                                                 << label;
    ASSERT_TRUE(want[i].fields == got[i].fields)
        << "record " << i << " " << label << "\n  want " << want[i].ToString()
        << "\n  got  " << got[i].ToString();
  }
}

// Baseline = thread-per-task; scheduler output must match byte for byte at
// every worker count.
void ExpectModeInvariant(const PipelineFn& build, int parallelism = 1) {
  JobOptions baseline_options;
  baseline_options.execution_mode = JobOptions::ExecutionMode::kThreadPerTask;
  const std::vector<Record> baseline =
      RunWithOptions(build, baseline_options, parallelism);
  EXPECT_FALSE(baseline.empty());
  for (size_t workers : {1u, 2u, 4u}) {
    JobOptions options;
    options.execution_mode = JobOptions::ExecutionMode::kScheduler;
    options.worker_threads = workers;
    ExpectIdenticalOutput(baseline, RunWithOptions(build, options, parallelism),
                          "workers=" + std::to_string(workers));
  }
}

TEST(SchedulerEquivalenceTest, MapFilterFlatMapChain) {
  ExpectModeInvariant([](Environment& env) {
    return env.FromRecords(TestInput(5'000, 21, 64))
        .Map([](Record&& r) {
          r.fields[1] = Value(r.field(1).AsInt64() * 3);
          return std::move(r);
        })
        .Filter([](const Record& r) { return r.field(1).AsInt64() % 5 != 0; })
        .FlatMap([](Record&& r, Collector* out) {
          if (r.field(0).AsInt64() % 6 == 0) out->Emit(Record(r));
          out->Emit(std::move(r));
        })
        .Collect();
  });
}

TEST(SchedulerEquivalenceTest, KeyedReduceOverHashEdge) {
  ExpectModeInvariant([](Environment& env) {
    return env.FromRecords(TestInput(5'000, 22, 32))
        .KeyBy(0)
        .Reduce([](const Record& acc, const Record& next) {
          return MakeRecord(acc.timestamp, acc.field(0),
                            Value(acc.field(1).AsInt64() +
                                  next.field(1).AsInt64()));
        })
        .Collect();
  });
}

TEST(SchedulerEquivalenceTest, ParallelWindowedAggregate) {
  // Keyed subtasks run at parallelism 4 and their outputs interleave at
  // the rebalanced sink, so compare as a sorted multiset; the per-key
  // window sums themselves must be identical across modes.
  const PipelineFn build = [](Environment& env) {
    DataStream left = env.FromRecords(TestInput(2'000, 23, 16), "left");
    DataStream right = env.FromRecords(TestInput(2'000, 24, 16), "right");
    return left.Union(right)
        .KeyBy(0)
        .Window(std::make_shared<TumblingWindowFn>(1'000'000))
        .Aggregate(DynAggKind::kSum, 1)
        .Rebalance(1)
        .Collect();
  };
  const auto normalize = [](std::vector<Record> records) {
    std::sort(records.begin(), records.end(),
              [](const Record& a, const Record& b) {
                return a.ToString() < b.ToString();
              });
    return records;
  };

  JobOptions baseline_options;
  baseline_options.execution_mode = JobOptions::ExecutionMode::kThreadPerTask;
  const std::vector<Record> baseline =
      normalize(RunWithOptions(build, baseline_options, 4));
  EXPECT_FALSE(baseline.empty());
  for (size_t workers : {1u, 2u, 4u}) {
    JobOptions options;
    options.execution_mode = JobOptions::ExecutionMode::kScheduler;
    options.worker_threads = workers;
    ExpectIdenticalOutput(baseline,
                          normalize(RunWithOptions(build, options, 4)),
                          "workers=" + std::to_string(workers));
  }
}

// ---------------------------------------------------------------------------
// Equivalence across checkpoint/restart.

struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t allowed = 0;

  void Allow(uint64_t upto) {
    {
      std::lock_guard<std::mutex> lock(mu);
      allowed = std::max(allowed, upto);
    }
    cv.notify_all();
  }
};

// Emits records only as far as the gate allows (kIdle otherwise), with a
// checkpointable read position.
class GatedSource : public SourceFunction {
 public:
  GatedSource(Gate* gate, uint64_t total) : gate_(gate), total_(total) {}

  Result<SourcePoll> Poll(SourceContext* ctx) override {
    if (pos_ >= total_) return SourcePoll::kExhausted;
    {
      std::lock_guard<std::mutex> lock(gate_->mu);
      if (gate_->allowed <= pos_) return SourcePoll::kIdle;
    }
    Record r = KeyedValue(pos_);
    const Timestamp ts = r.timestamp;
    if (!ctx->Emit(std::move(r))) return SourcePoll::kExhausted;
    ++pos_;
    ctx->EmitWatermark(ts);
    return SourcePoll::kHasMore;
  }

  Status SnapshotState(BinaryWriter* w) const override {
    w->WriteU64(pos_);
    return Status::Ok();
  }
  Status RestoreState(BinaryReader* r) override {
    auto pos = r->ReadU64();
    if (!pos.ok()) return pos.status();
    pos_ = *pos;
    return Status::Ok();
  }
  std::string Name() const override { return "gated"; }

 private:
  Gate* gate_;
  uint64_t total_;
  uint64_t pos_ = 0;
};

std::shared_ptr<CollectSink> BuildGatedReduce(Environment* env, Gate* gate,
                                              uint64_t total) {
  auto src = env->FromSource(
      "gated",
      [gate, total](int, int) -> std::unique_ptr<SourceFunction> {
        return std::make_unique<GatedSource>(gate, total);
      },
      1);
  return src.KeyBy(0)
      .Reduce([](const Record& acc, const Record& in) {
        Record out = acc;
        out.fields[1] = Value(acc.field(1).AsInt64() + in.field(1).AsInt64());
        return out;
      })
      .Collect();
}

// Runs the gated pipeline in `mode`: checkpoint at kCut, keep emitting,
// "crash" (cancel), then restore a second job from the checkpoint and run
// to completion. Returns pre-barrier outputs + restored-run outputs.
std::vector<Record> RunWithCrashAndRestore(
    JobOptions::ExecutionMode mode, size_t workers) {
  constexpr uint64_t kTotal = 400;
  constexpr uint64_t kCut = 150;
  auto store = std::make_shared<SnapshotStore>();
  uint64_t cp = 0;

  std::vector<Record> combined;
  {
    Gate gate;
    Environment env;
    auto sink = BuildGatedReduce(&env, &gate, kTotal);
    JobOptions options;
    options.execution_mode = mode;
    options.worker_threads = workers;
    options.snapshot_store = store;
    auto job = env.CreateJob(options);
    EXPECT_TRUE(job.ok());
    if (!job.ok()) return combined;
    EXPECT_TRUE((*job)->Start().ok());
    gate.Allow(kCut);
    AwaitTrue([&] { return sink->size() >= kCut; });
    cp = (*job)->TriggerCheckpoint();
    gate.Allow(kCut + 100);  // emit past the checkpoint, then crash
    EXPECT_TRUE((*job)->AwaitCheckpoint(cp, 20.0));
    AwaitTrue([&] { return sink->size() >= kCut + 100; });
    (*job)->Cancel();
    EXPECT_TRUE((*job)->AwaitCompletion().ok());
    const int64_t offset = sink->BarrierOffset(cp);
    EXPECT_EQ(offset, static_cast<int64_t>(kCut));
    auto all = sink->records();
    combined.assign(all.begin(), all.begin() + offset);
  }
  {
    Gate gate;
    gate.Allow(kTotal);
    Environment env;
    auto sink = BuildGatedReduce(&env, &gate, kTotal);
    JobOptions options;
    options.execution_mode = mode;
    options.worker_threads = workers;
    options.snapshot_store = store;
    options.restore_from_checkpoint = cp;
    auto job = env.CreateJob(options);
    EXPECT_TRUE(job.ok());
    if (!job.ok()) return combined;
    EXPECT_TRUE((*job)->Run().ok());
    auto rest = sink->records();
    combined.insert(combined.end(), rest.begin(), rest.end());
  }
  return combined;
}

TEST(SchedulerEquivalenceTest, CheckpointRestartMatchesAcrossModes) {
  // Reference: uninterrupted thread-per-task run.
  std::vector<Record> reference;
  {
    Gate gate;
    gate.Allow(400);
    Environment env;
    auto sink = BuildGatedReduce(&env, &gate, 400);
    JobOptions options;
    options.execution_mode = JobOptions::ExecutionMode::kThreadPerTask;
    ASSERT_TRUE(env.Execute(options).ok());
    reference = sink->records();
    ASSERT_EQ(reference.size(), 400u);
  }

  const std::vector<Record> legacy = RunWithCrashAndRestore(
      JobOptions::ExecutionMode::kThreadPerTask, 0);
  ExpectIdenticalOutput(reference, legacy, "thread-per-task crash+restore");

  for (size_t workers : {1u, 2u}) {
    const std::vector<Record> sched = RunWithCrashAndRestore(
        JobOptions::ExecutionMode::kScheduler, workers);
    ExpectIdenticalOutput(reference, sched,
                          "scheduler crash+restore workers=" +
                              std::to_string(workers));
  }
}

}  // namespace
}  // namespace streamline
