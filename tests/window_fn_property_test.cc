// Property tests of SlidingWindowFn against a brute-force oracle: for
// random (range, slide, origin) and random sparse streams, the event
// stream must declare exactly the begins of element-containing windows
// before their first element, and fire exactly the non-empty windows,
// in order, once the watermark covers them.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "window/window_fn.h"

namespace streamline {
namespace {

struct Oracle {
  // All non-empty windows for the element set under (range, slide, origin).
  static std::set<Window> NonEmptyWindows(const std::vector<Timestamp>& ts,
                                          Duration range, Duration slide,
                                          Timestamp origin) {
    std::set<Window> out;
    for (Timestamp t : ts) {
      // Aligned begins b with b <= t < b + range.
      Timestamp b = origin + ((t - origin) >= 0
                                  ? (t - origin) / slide
                                  : ((t - origin) - slide + 1) / slide) *
                                 slide;
      for (; b > t - range; b -= slide) {
        if (b <= t) out.insert(Window{b, b + range});
      }
    }
    return out;
  }
};

struct Params {
  Duration range;
  Duration slide;
  Timestamp origin;
  uint64_t seed;
};

class SlidingOracleTest : public ::testing::TestWithParam<Params> {};

TEST_P(SlidingOracleTest, FiresExactlyNonEmptyWindowsInOrder) {
  const Params p = GetParam();
  Rng rng(p.seed);
  // Sparse stream with gaps so empty windows exist.
  std::vector<Timestamp> stream;
  Timestamp ts = static_cast<Timestamp>(rng.NextBelow(100)) - 50;
  for (int i = 0; i < 500; ++i) {
    stream.push_back(ts);
    ts += static_cast<Timestamp>(rng.NextBelow(4));
    if (rng.NextBelow(20) == 0) {
      ts += p.range + static_cast<Timestamp>(rng.NextBelow(
                          static_cast<uint64_t>(3 * p.range)));
    }
  }

  SlidingWindowFn fn(p.range, p.slide, p.origin);
  std::vector<Window> fired;
  std::map<Timestamp, size_t> begin_declared_at;  // begin ts -> element idx
  WindowEvents events;
  for (size_t i = 0; i < stream.size(); ++i) {
    events.clear();
    fn.OnElement(stream[i], Value(), &events);
    for (const WindowEvent& e : events) {
      if (e.kind == WindowEvent::Kind::kEnd) {
        fired.push_back(e.window);
      } else {
        // Begins must be declared no later than the first element >= begin.
        EXPECT_GE(stream[i], e.at);
        begin_declared_at.emplace(e.at, i);
      }
    }
  }
  events.clear();
  fn.OnWatermark(kMaxTimestamp, &events);
  for (const WindowEvent& e : events) {
    if (e.kind == WindowEvent::Kind::kEnd) fired.push_back(e.window);
  }

  // Fired set == oracle's non-empty windows, strictly ordered by end.
  const std::set<Window> expect =
      Oracle::NonEmptyWindows(stream, p.range, p.slide, p.origin);
  ASSERT_EQ(fired.size(), expect.size());
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LT(fired[i - 1].end, fired[i].end);
  }
  for (const Window& w : fired) {
    EXPECT_TRUE(expect.count(w)) << w.ToString() << " fired but is empty";
    // Its begin boundary was declared before/at its first element.
    EXPECT_TRUE(begin_declared_at.count(w.start))
        << "begin " << w.start << " never declared";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomParams, SlidingOracleTest,
    ::testing::Values(Params{10, 3, 0, 1}, Params{10, 10, 0, 2},
                      Params{100, 7, 0, 3}, Params{64, 16, 5, 4},
                      Params{7, 7, -3, 5}, Params{50, 1, 0, 6},
                      Params{3, 11, 0, 7},  // slide > range (gaps)
                      Params{1000, 333, 17, 8}, Params{2, 1, 0, 9},
                      Params{500, 250, -100, 10}));

}  // namespace
}  // namespace streamline
