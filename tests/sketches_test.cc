#include "window/sketches.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "agg/slicing_aggregator.h"
#include "agg/naive_aggregator.h"
#include "common/random.h"

namespace streamline {
namespace {

uint64_t HashOf(uint64_t x) {
  // SplitMix-style finalizer as the element hash.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

TEST(HllSketchTest, EstimatesWithinExpectedError) {
  // Standard error of HLL with 2^10 registers is ~1.04/sqrt(1024) = 3.25%.
  for (uint64_t n : {100u, 1000u, 10000u, 100000u}) {
    HllSketch<10> sketch;
    for (uint64_t i = 0; i < n; ++i) sketch.AddHash(HashOf(i));
    EXPECT_NEAR(sketch.Estimate(), static_cast<double>(n),
                static_cast<double>(n) * 0.10)
        << "n=" << n;
  }
}

TEST(HllSketchTest, DuplicatesDoNotInflate) {
  HllSketch<10> sketch;
  for (int rep = 0; rep < 100; ++rep) {
    for (uint64_t i = 0; i < 500; ++i) sketch.AddHash(HashOf(i));
  }
  EXPECT_NEAR(sketch.Estimate(), 500, 50);
}

TEST(HllSketchTest, MergeEqualsUnion) {
  HllSketch<10> a;
  HllSketch<10> b;
  HllSketch<10> whole;
  for (uint64_t i = 0; i < 5000; ++i) {
    const uint64_t h = HashOf(i);
    whole.AddHash(h);
    (i % 2 == 0 ? a : b).AddHash(h);
  }
  a.Merge(b);
  EXPECT_EQ(a, whole);
}

TEST(CountDistinctAggTest, AlgebraicContract) {
  CountDistinctAgg<10> agg;
  auto p = agg.Identity();
  for (uint64_t i = 0; i < 1000; ++i) {
    p = agg.Combine(p, agg.Lift(HashOf(i)));
  }
  EXPECT_NEAR(agg.Lower(p), 1000, 100);
  // Identity neutral.
  EXPECT_EQ(agg.Combine(agg.Identity(), p), p);
  EXPECT_EQ(agg.Combine(p, agg.Identity()), p);
}

TEST(CountDistinctAggTest, SharedSlicingMatchesNaive) {
  // Windowed count-distinct with slice sharing equals the recompute oracle
  // exactly (same sketches, same merges).
  auto run = [](auto&& aggregator) {
    std::vector<double> out;
    aggregator.AddQuery(std::make_unique<SlidingWindowFn>(500, 100),
                        [&out](size_t, const Window&, const double& v) {
                          out.push_back(v);
                        });
    Rng rng(3);
    for (Timestamp t = 0; t < 3000; ++t) {
      aggregator.OnElement(t, HashOf(rng.NextBelow(200)), Value());
    }
    aggregator.OnWatermark(kMaxTimestamp);
    return out;
  };
  const auto shared = run(SlicingAggregator<CountDistinctAgg<8>>());
  const auto naive = run(NaiveBufferAggregator<CountDistinctAgg<8>>());
  ASSERT_EQ(shared.size(), naive.size());
  ASSERT_FALSE(shared.empty());
  for (size_t i = 0; i < shared.size(); ++i) {
    EXPECT_DOUBLE_EQ(shared[i], naive[i]) << i;
  }
  // Sanity: estimates near the true per-window distinct count (<= 200).
  for (double v : shared) EXPECT_LT(v, 260);
}

TEST(CountDistinctAggTest, SessionWindowDistinctUsers) {
  SlicingAggregator<CountDistinctAgg<10>> agg;
  std::vector<double> out;
  agg.AddQuery(std::make_unique<SessionWindowFn>(50),
               [&out](size_t, const Window&, const double& v) {
                 out.push_back(v);
               });
  // Session 1: 100 distinct; session 2: 10 distinct repeated.
  for (Timestamp t = 0; t < 100; ++t) agg.OnElement(t, HashOf(t), Value());
  for (Timestamp t = 0; t < 100; ++t) {
    agg.OnElement(1000 + t, HashOf(t % 10), Value());
  }
  agg.OnWatermark(kMaxTimestamp);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NEAR(out[0], 100, 10);
  EXPECT_NEAR(out[1], 10, 2);
}

}  // namespace
}  // namespace streamline
