// Batch-at-a-time execution must be invisible: for every built-in operator
// and pipeline shape, running the same input with batch_size = 1 (the
// per-record path) and with larger batch sizes (the ProcessBatch path) must
// produce identical sink output -- same records, same order, same
// timestamps, same stamped key hashes -- with watermarks and barriers never
// reordered relative to the records batched around them. Also holds the
// regression test for the FieldVec self-range insert fix.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "api/datastream.h"

namespace streamline {
namespace {

// ---------------------------------------------------------------------------
// FieldVec self-range insert regression (satellite fix).

TEST(FieldVecInsertTest, SelfInsertSurvivesReallocation) {
  // Fill to exactly the inline capacity so inserting the own range forces a
  // reallocation while first/last point into the old buffer.
  FieldVec v;
  for (int64_t i = 0; i < 4; ++i) v.push_back(Value(i));
  ASSERT_EQ(v.capacity(), v.size());
  v.insert(v.end(), v.begin(), v.end());
  ASSERT_EQ(v.size(), 8u);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)].AsInt64(), i);
    EXPECT_EQ(v[static_cast<size_t>(i) + 4].AsInt64(), i);
  }
}

TEST(FieldVecInsertTest, SelfInsertBeforeSourceRangeWithoutReallocation) {
  // Capacity is ample, but the shift moves the source range before it is
  // read: insert [2,4) at the front must copy the original values.
  FieldVec v;
  v.reserve(16);
  for (int64_t i = 0; i < 4; ++i) v.push_back(Value(i));
  v.insert(v.begin(), v.begin() + 2, v.end());
  ASSERT_EQ(v.size(), 6u);
  const int64_t want[] = {2, 3, 0, 1, 2, 3};
  for (size_t i = 0; i < 6; ++i) EXPECT_EQ(v[i].AsInt64(), want[i]);
}

TEST(FieldVecInsertTest, SelfInsertStringPayloads) {
  FieldVec v;
  v.push_back(Value(std::string("alpha")));
  v.push_back(Value(std::string("beta")));
  v.push_back(Value(std::string("gamma")));
  v.push_back(Value(std::string("delta")));
  v.insert(v.begin() + 1, v.begin(), v.end());
  ASSERT_EQ(v.size(), 8u);
  EXPECT_EQ(v[0].AsString(), "alpha");
  EXPECT_EQ(v[1].AsString(), "alpha");
  EXPECT_EQ(v[2].AsString(), "beta");
  EXPECT_EQ(v[3].AsString(), "gamma");
  EXPECT_EQ(v[4].AsString(), "delta");
  EXPECT_EQ(v[5].AsString(), "beta");
}

TEST(FieldVecInsertTest, ForeignRangeStillWorks) {
  FieldVec v{Value(int64_t{1}), Value(int64_t{4})};
  const Value mid[] = {Value(int64_t{2}), Value(int64_t{3})};
  v.insert(v.begin() + 1, mid, mid + 2);
  ASSERT_EQ(v.size(), 4u);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)].AsInt64(), i + 1);
  }
}

// ---------------------------------------------------------------------------
// Operator equivalence harness.

// Deterministic pseudo-random input: keys with skew, values, and mild
// timestamp disorder (bounded by what the source's watermark cadence
// tolerates: timestamps are non-decreasing per source here, since sources
// derive watermarks from emitted timestamps).
std::vector<Record> TestInput(size_t n, uint32_t seed, int64_t num_keys) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int64_t> key(0, num_keys - 1);
  std::uniform_int_distribution<int64_t> val(-50, 50);
  std::vector<Record> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(MakeRecord(static_cast<Timestamp>(i), Value(key(rng)),
                             Value(val(rng))));
  }
  return out;
}

// Builds a pipeline on `env` and returns its CollectSink.
using PipelineFn =
    std::function<std::shared_ptr<CollectSink>(Environment& env)>;

std::vector<Record> RunWithBatchSize(const PipelineFn& build,
                                     size_t batch_size) {
  Environment env;
  std::shared_ptr<CollectSink> sink = build(env);
  JobOptions options;
  options.batch_size = batch_size;
  Status st = env.Execute(options);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return sink->records();
}

// Asserts byte-level equivalence of the visible record contents: timestamp,
// fields, and the stamped key hash (routing metadata the batch path must
// reproduce exactly).
void ExpectIdenticalOutput(const std::vector<Record>& want,
                           const std::vector<Record>& got, size_t batch_size) {
  ASSERT_EQ(want.size(), got.size()) << "batch_size=" << batch_size;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].timestamp, got[i].timestamp)
        << "record " << i << " batch_size=" << batch_size;
    EXPECT_EQ(want[i].key_hash, got[i].key_hash)
        << "record " << i << " batch_size=" << batch_size;
    ASSERT_TRUE(want[i].fields == got[i].fields)
        << "record " << i << " batch_size=" << batch_size << "\n  want "
        << want[i].ToString() << "\n  got  " << got[i].ToString();
  }
}

void ExpectBatchInvariant(const PipelineFn& build) {
  const std::vector<Record> baseline = RunWithBatchSize(build, 1);
  EXPECT_FALSE(baseline.empty());
  for (size_t batch_size : {2u, 16u, 256u, 1024u}) {
    ExpectIdenticalOutput(baseline, RunWithBatchSize(build, batch_size),
                          batch_size);
  }
}

TEST(BatchEquivalenceTest, MapFilterFlatMapChain) {
  ExpectBatchInvariant([](Environment& env) {
    return env.FromRecords(TestInput(5'000, 11, 64))
        .Map([](Record&& r) {
          r.fields[1] = Value(r.field(1).AsInt64() * 2);
          return std::move(r);
        })
        .Filter([](const Record& r) { return r.field(1).AsInt64() % 4 != 0; })
        .FlatMap([](Record&& r, Collector* out) {
          // 0, 1 or 2 outputs per input, derived from record content.
          const int64_t k = r.field(0).AsInt64();
          if (k % 7 == 0) return;
          if (k % 3 == 0) out->Emit(Record(r));
          out->Emit(std::move(r));
        })
        .Collect();
  });
}

TEST(BatchEquivalenceTest, MapAcrossRealChannel) {
  // Rebalance(1) breaks chaining: the batch crosses an SPSC channel and is
  // re-dispatched on the consumer, exercising Dispatch's DeliverBatch.
  ExpectBatchInvariant([](Environment& env) {
    return env.FromRecords(TestInput(5'000, 12, 64))
        .Map([](Record&& r) {
          r.fields[1] = Value(r.field(1).AsInt64() + 1);
          return std::move(r);
        })
        .Rebalance(1)
        .Filter([](const Record& r) { return r.field(1).AsInt64() % 2 == 0; })
        .Collect();
  });
}

TEST(BatchEquivalenceTest, KeyedReduceOverHashEdge) {
  ExpectBatchInvariant([](Environment& env) {
    return env.FromRecords(TestInput(5'000, 13, 32))
        .KeyBy(0)
        .Reduce([](const Record& acc, const Record& next) {
          return MakeRecord(acc.timestamp, acc.field(0),
                            Value(acc.field(1).AsInt64() +
                                  next.field(1).AsInt64()));
        })
        .Collect();
  });
}

TEST(BatchEquivalenceTest, KeyedReduceHighCardinality) {
  // More keys than any batch holds: the per-batch key cache misses often,
  // and repeated keys within one batch hit it.
  ExpectBatchInvariant([](Environment& env) {
    return env.FromRecords(TestInput(4'000, 14, 1'000))
        .KeyBy(0)
        .Reduce([](const Record& acc, const Record& next) {
          return MakeRecord(acc.timestamp, acc.field(0),
                            Value(std::max(acc.field(1).AsInt64(),
                                           next.field(1).AsInt64())));
        })
        .Collect();
  });
}

TEST(BatchEquivalenceTest, UnionOfTwoSources) {
  // Two concurrent sources race, so emit order is nondeterministic even at
  // batch_size = 1; compare the windowed per-key aggregates as a multiset
  // (one huge window fired by the final watermark -- integer sums, so the
  // per-key results are interleaving-independent).
  const PipelineFn build = [](Environment& env) {
    DataStream left = env.FromRecords(TestInput(2'000, 15, 16), "left");
    DataStream right = env.FromRecords(TestInput(2'000, 16, 16), "right");
    return left.Union(right)
        .KeyBy(0)
        .Window(std::make_shared<TumblingWindowFn>(1'000'000))
        .Aggregate(DynAggKind::kSum, 1)
        .Collect();
  };
  const auto normalize = [](std::vector<Record> records) {
    std::sort(records.begin(), records.end(),
              [](const Record& a, const Record& b) {
                return a.ToString() < b.ToString();
              });
    return records;
  };
  const std::vector<Record> baseline = normalize(RunWithBatchSize(build, 1));
  EXPECT_FALSE(baseline.empty());
  for (size_t batch_size : {16u, 256u}) {
    ExpectIdenticalOutput(
        baseline, normalize(RunWithBatchSize(build, batch_size)), batch_size);
  }
}

TEST(BatchEquivalenceTest, SharedWindowAggregates) {
  for (DynAggKind kind : {DynAggKind::kSum, DynAggKind::kCount,
                          DynAggKind::kMin, DynAggKind::kMax,
                          DynAggKind::kAvg, DynAggKind::kVariance}) {
    ExpectBatchInvariant([kind](Environment& env) {
      return env.FromRecords(TestInput(4'000, 17, 8))
          .KeyBy(0)
          .Window(std::make_shared<SlidingWindowFn>(200, 80))
          .Aggregate(kind, 1, WindowBackend::kShared)
          .Collect();
    });
  }
}

TEST(BatchEquivalenceTest, EagerWindowAggregates) {
  for (DynAggKind kind : {DynAggKind::kSum, DynAggKind::kMin}) {
    ExpectBatchInvariant([kind](Environment& env) {
      return env.FromRecords(TestInput(3'000, 18, 8))
          .KeyBy(0)
          .Window(std::make_shared<SlidingWindowFn>(150, 50))
          .Aggregate(kind, 1, WindowBackend::kEager)
          .Collect();
    });
  }
}

TEST(BatchEquivalenceTest, GlobalWindowAll) {
  // Null key selector: the whole stream under one synthetic key, the case
  // where the window operator sees one maximal same-key run per watermark.
  ExpectBatchInvariant([](Environment& env) {
    return env.FromRecords(TestInput(4'000, 19, 8))
        .WindowAll({std::make_shared<TumblingWindowFn>(64),
                    std::make_shared<SlidingWindowFn>(96, 32)})
        .Aggregate(DynAggKind::kSum, 1)
        .Collect();
  });
}

TEST(BatchEquivalenceTest, GeneratorSourceInMotion) {
  // Generator ("in motion") source with a short watermark cadence: batches
  // are cut by control events long before reaching batch_size.
  ExpectBatchInvariant([](Environment& env) {
    return env
        .FromGenerator(
            "gen",
            [](uint64_t s) -> std::optional<Record> {
              if (s >= 3'000) return std::nullopt;
              return MakeRecord(static_cast<Timestamp>(s),
                                Value(static_cast<int64_t>(s % 10)),
                                Value(static_cast<int64_t>(s)));
            },
            /*watermark_every=*/7)
        .KeyBy(0)
        .Reduce([](const Record& acc, const Record& next) {
          return MakeRecord(acc.timestamp, acc.field(0),
                            Value(acc.field(1).AsInt64() +
                                  next.field(1).AsInt64()));
        })
        .Collect();
  });
}

// ---------------------------------------------------------------------------
// Control-event ordering on the batch path.

// Counts records and asserts every watermark's promise ("all records with
// ts < wm have been delivered") against the count -- with the batch path
// buffering records in the source task, a watermark overtaking its batch
// would trip this immediately.
class BatchWatermarkProbe : public Operator {
 public:
  explicit BatchWatermarkProbe(std::atomic<int>* violations)
      : violations_(violations) {}

  void ProcessRecord(int, Record&& record, Collector* out) override {
    ++seen_;
    out->Emit(std::move(record));
  }

  void ProcessWatermark(Timestamp wm, Collector*) override {
    if (wm == kMaxTimestamp || wm == kMinTimestamp) return;
    // Generator timestamps are the sequence numbers: wm promises records
    // 0..wm inclusive (source publishes wm = last emitted ts).
    if (seen_ < static_cast<uint64_t>(wm) + 1) violations_->fetch_add(1);
    if (wm < last_wm_) violations_->fetch_add(1);
    last_wm_ = wm;
  }

  std::string Name() const override { return "batch-wm-probe"; }

 private:
  std::atomic<int>* violations_;
  uint64_t seen_ = 0;
  Timestamp last_wm_ = kMinTimestamp;
};

TEST(BatchControlOrderingTest, WatermarksNeverOvertakeBatchedRecords) {
  constexpr uint64_t kRecords = 20'000;
  auto violations = std::make_shared<std::atomic<int>>(0);
  Environment env;
  auto sink =
      env.FromGenerator("seq",
                        [](uint64_t s) -> std::optional<Record> {
                          if (s >= kRecords) return std::nullopt;
                          return MakeRecord(static_cast<Timestamp>(s),
                                            Value(static_cast<int64_t>(s)));
                        },
                        /*watermark_every=*/17)
          .Rebalance(1)  // real channel: batches and watermarks share a ring
          .Process([violations]() {
            return std::make_unique<BatchWatermarkProbe>(violations.get());
          })
          .Collect();
  JobOptions options;
  options.batch_size = 256;  // far larger than the watermark cadence
  ASSERT_TRUE(env.Execute(options).ok());
  EXPECT_EQ(sink->size(), kRecords);
  EXPECT_EQ(violations->load(), 0);
}

TEST(BatchControlOrderingTest, BarriersFlushBatchesAndStayAligned) {
  // Checkpoints run concurrently with batched delivery; barrier offsets
  // recorded by the sink must be consistent cut points (monotone in
  // checkpoint id, within the output), and the output itself must match
  // the per-record run exactly.
  constexpr uint64_t kRecords = 60'000;
  const PipelineFn build = [](Environment& env) {
    return env
        .FromGenerator("seq",
                       [](uint64_t s) -> std::optional<Record> {
                         if (s >= kRecords) return std::nullopt;
                         return MakeRecord(static_cast<Timestamp>(s),
                                           Value(static_cast<int64_t>(s % 50)),
                                           Value(static_cast<int64_t>(s)));
                       })
        .KeyBy(0)
        .Reduce([](const Record& acc, const Record& next) {
          return MakeRecord(acc.timestamp, acc.field(0),
                            Value(acc.field(1).AsInt64() +
                                  next.field(1).AsInt64()));
        })
        .Collect();
  };

  const std::vector<Record> baseline = RunWithBatchSize(build, 1);

  Environment env;
  std::shared_ptr<CollectSink> sink = build(env);
  JobOptions options;
  options.batch_size = 256;
  options.checkpoint_interval_ms = 3;
  options.snapshot_store = std::make_shared<SnapshotStore>();
  ASSERT_TRUE(env.Execute(options).ok());
  ExpectIdenticalOutput(baseline, sink->records(), 256);

  // Every completed checkpoint's sink offset is a valid, monotone cut.
  int64_t prev_offset = 0;
  for (uint64_t id : options.snapshot_store->CompletedCheckpoints()) {
    const int64_t off = sink->BarrierOffset(id);
    if (off < 0) continue;  // barrier passed the sink before tracking
    EXPECT_GE(off, prev_offset) << "checkpoint " << id;
    EXPECT_LE(off, static_cast<int64_t>(baseline.size()));
    prev_offset = off;
  }
}

}  // namespace
}  // namespace streamline
