// End-to-end exactly-once OUTPUT with the transactional sink: the records
// committed across crash + restore equal the uninterrupted run exactly --
// no truncation bookkeeping needed by the consumer.

#include <gtest/gtest.h>

#include <thread>

#include "api/datastream.h"
#include "dataflow/event_log.h"

namespace streamline {
namespace {

Record Ev(uint64_t i) {
  return MakeRecord(static_cast<Timestamp>(i),
                    Value(static_cast<int64_t>(i % 5)),
                    Value(static_cast<int64_t>(i)));
}

std::shared_ptr<TransactionalCollectSink> Build(
    Environment* env, const std::shared_ptr<EventLog>& log) {
  auto sink = std::make_shared<TransactionalCollectSink>();
  env->FromSource("log", LogSource::Factory(log, /*watermark_every=*/16), 1)
      .KeyBy(0)
      .Reduce([](const Record& acc, const Record& in) {
        Record out = acc;
        out.fields[1] = Value(acc.field(1).AsInt64() + in.field(1).AsInt64());
        return out;
      })
      .Sink(sink);
  return sink;
}

TEST(TransactionalSinkTest, NoCheckpointMeansNothingCommitted) {
  auto log = std::make_shared<EventLog>(1);
  for (uint64_t i = 0; i < 100; ++i) log->Append(0, Ev(i));
  log->Close();
  Environment env;
  auto sink = Build(&env, log);
  ASSERT_TRUE(env.Execute().ok());
  // Without barriers no transaction ever commits.
  EXPECT_TRUE(sink->committed().empty());
  EXPECT_EQ(sink->pending_size(), 100u);
}

TEST(TransactionalSinkTest, ExactlyOnceOutputAcrossCrashRestore) {
  auto log = std::make_shared<EventLog>(1);

  // Run 1: emit 600, checkpoint while idle, emit past the checkpoint,
  // crash. Only the pre-barrier prefix is committed.
  auto store = std::make_shared<SnapshotStore>();
  uint64_t cp = 0;
  std::vector<Record> committed_run1;
  {
    for (uint64_t i = 0; i < 600; ++i) log->Append(0, Ev(i));
    Environment env;
    auto sink = Build(&env, log);
    JobOptions opts;
    opts.snapshot_store = store;
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE((*job)->Start().ok());
    while (sink->pending_size() < 600) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    cp = (*job)->TriggerCheckpoint();
    ASSERT_TRUE((*job)->AwaitCheckpoint(cp, 10.0));
    for (uint64_t i = 600; i < 1000; ++i) log->Append(0, Ev(i));
    log->Close();
    // Let some post-checkpoint output accumulate, then "crash".
    while (sink->pending_size() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    (*job)->Cancel();
    ASSERT_TRUE((*job)->AwaitCompletion().ok());
    committed_run1 = sink->committed();  // the durable prefix
    EXPECT_EQ(committed_run1.size(), 600u);
    EXPECT_EQ(sink->last_committed_checkpoint(), cp);
  }

  // Run 2: restore and finish; its committed output (after a final
  // checkpoint) is the continuation.
  std::vector<Record> committed_run2;
  {
    Environment env;
    auto sink = Build(&env, log);
    JobOptions opts;
    opts.snapshot_store = store;
    opts.restore_from_checkpoint = cp;
    opts.checkpoint_interval_ms = 2;  // commit transactions as we go
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok()) << job.status().ToString();
    ASSERT_TRUE((*job)->Start().ok());
    ASSERT_TRUE((*job)->AwaitCompletion().ok());
    committed_run2 = sink->committed();
    // The tail after the last barrier stays pending (a real deployment
    // would checkpoint once more before shutdown); fold it in explicitly
    // to model that final commit.
    sink->OnBarrier(999);
    committed_run2 = sink->committed();
  }

  // Reference: uninterrupted run committed via one final transaction.
  std::vector<Record> reference;
  {
    Environment env;
    auto sink = Build(&env, log);
    ASSERT_TRUE(env.Execute().ok());
    sink->OnBarrier(1);
    reference = sink->committed();
  }

  ASSERT_EQ(committed_run1.size() + committed_run2.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    const Record& got =
        i < committed_run1.size()
            ? committed_run1[i]
            : committed_run2[i - committed_run1.size()];
    EXPECT_EQ(got, reference[i]) << "at " << i;
  }
}

}  // namespace
}  // namespace streamline
