// Write-ahead changelog segment tests: frame roundtrips, torn-tail
// truncation on reopen, CRC corruption detection, the tolerant vs sealed
// readers, the wal:* fault-injection sites, and WriteFileDurable.

#include "common/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"

namespace streamline {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("slss_wal_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ + "/seg";
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string AppendedFile() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  std::string dir_;
  std::string path_;
};

TEST_F(WalTest, RoundTrip) {
  auto w = WalWriter::Open(path_);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  const std::vector<std::string> records = {
      "hello", std::string("\x00\x01\xff", 3), "", std::string(5000, 'x')};
  for (const auto& r : records) ASSERT_TRUE((*w)->Append(r).ok());
  EXPECT_EQ((*w)->records_appended(), records.size());
  ASSERT_TRUE((*w)->Close().ok());

  auto tolerant = ReadWal(path_);
  ASSERT_TRUE(tolerant.ok()) << tolerant.status().ToString();
  EXPECT_EQ(tolerant->records, records);
  EXPECT_FALSE(tolerant->torn);

  auto sealed = ReadSealedWal(path_);
  ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
  EXPECT_EQ(*sealed, records);
}

TEST_F(WalTest, EmptySegmentIsZeroRecords) {
  auto w = WalWriter::Open(path_);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Close().ok());
  auto r = ReadWal(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->records.empty());
  EXPECT_FALSE(r->torn);
}

TEST_F(WalTest, MissingSegmentIsError) {
  EXPECT_FALSE(ReadWal(path_).ok());
  EXPECT_FALSE(ReadSealedWal(path_).ok());
}

TEST_F(WalTest, TornTailIgnoredByTolerantReadAndTruncatedOnReopen) {
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append("one").ok());
    ASSERT_TRUE((*w)->Append("two").ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  const auto intact_size = fs::file_size(path_);
  {
    // Simulate a crash mid-append: a partial frame at the tail.
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write("\x0b\x00\x00\x00\xde\xad", 6);
  }

  auto tolerant = ReadWal(path_);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_EQ(tolerant->records, (std::vector<std::string>{"one", "two"}));
  EXPECT_TRUE(tolerant->torn);
  EXPECT_EQ(tolerant->valid_bytes, intact_size);

  // The sealed reader treats any damage as corruption.
  EXPECT_FALSE(ReadSealedWal(path_).ok());

  // Reopening truncates the torn tail; appends continue cleanly after it.
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append("three").ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  auto healed = ReadWal(path_);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->records, (std::vector<std::string>{"one", "two", "three"}));
  EXPECT_FALSE(healed->torn);
}

TEST_F(WalTest, CrcMismatchStopsTolerantReadAndFailsSealedRead) {
  {
    auto w = WalWriter::Open(path_);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->Append("aaaa").ok());
    ASSERT_TRUE((*w)->Append("bbbb").ok());
    ASSERT_TRUE((*w)->Close().ok());
  }
  // Flip one payload byte of the second frame: [8B header]["aaaa"][8B]["b...
  std::string bytes = AppendedFile();
  bytes[8 + 4 + 8] ^= 0x01;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  auto tolerant = ReadWal(path_);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_EQ(tolerant->records, (std::vector<std::string>{"aaaa"}));
  EXPECT_TRUE(tolerant->torn);

  auto sealed = ReadSealedWal(path_);
  ASSERT_FALSE(sealed.ok());
  EXPECT_NE(sealed.status().message().find(path_), std::string::npos)
      << sealed.status().ToString();
}

TEST_F(WalTest, AppendFaultSurfacesErrorNamingNothingDurable) {
  FaultInjector injector;
  injector.AddRule(FaultInjector::FailAtHit("wal:append", 2));
  auto w = WalWriter::Open(path_, &injector);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Append("ok").ok());
  const Status st = (*w)->Append("boom");
  ASSERT_FALSE(st.ok());
  // A clean (pre-write) append fault leaves the first record intact.
  (*w).reset();  // destructor: close without sync, tail stays as-is
  auto r = ReadWal(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->records, (std::vector<std::string>{"ok"}));
}

TEST_F(WalTest, TornAppendFaultLeavesRecoverableTail) {
  FaultInjector injector;
  injector.AddRule(FaultInjector::FailAtHit("wal:append_torn", 2));
  auto w = WalWriter::Open(path_, &injector);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Append("first").ok());
  ASSERT_FALSE((*w)->Append("second-never-lands").ok());
  (*w).reset();
  // The torn frame is on disk but the tolerant reader stops before it,
  // and reopening truncates it -- exactly the crash-mid-append story.
  auto r = ReadWal(path_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->records, (std::vector<std::string>{"first"}));
  EXPECT_TRUE(r->torn);
  auto reopened = WalWriter::Open(path_);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->Close().ok());
  EXPECT_EQ(fs::file_size(path_), r->valid_bytes);
}

TEST_F(WalTest, SyncFaultSurfacesError) {
  FaultInjector injector;
  injector.AddRule(FaultInjector::FailAtHit("wal:sync", 1));
  auto w = WalWriter::Open(path_, &injector);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->Append("payload").ok());
  EXPECT_FALSE((*w)->Sync().ok());
  // The rule fired once; the retry path succeeds.
  EXPECT_TRUE((*w)->Sync().ok());
  EXPECT_TRUE((*w)->Close().ok());
}

TEST_F(WalTest, WriteFileDurablePublishesAtomically) {
  const std::string sub = dir_ + "/meta/deeper";
  ASSERT_TRUE(WriteFileDurable(sub, "manifest", "v1").ok());
  {
    std::ifstream in(sub + "/manifest", std::ios::binary);
    std::string got(std::istreambuf_iterator<char>(in), {});
    EXPECT_EQ(got, "v1");
  }
  // Overwrite via rename: readers only ever see old or new, never partial.
  ASSERT_TRUE(WriteFileDurable(sub, "manifest", "v2-longer").ok());
  {
    std::ifstream in(sub + "/manifest", std::ios::binary);
    std::string got(std::istreambuf_iterator<char>(in), {});
    EXPECT_EQ(got, "v2-longer");
  }
  // No temp files left behind.
  size_t entries = 0;
  for (const auto& e : fs::directory_iterator(sub)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

}  // namespace
}  // namespace streamline
