#include "common/serde.h"

#include <gtest/gtest.h>

namespace streamline {
namespace {

TEST(SerdeTest, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteI64(-123456789);
  w.WriteU64(987654321);
  w.WriteDouble(3.25);
  w.WriteBool(true);
  w.WriteString("hello");

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadU8().value(), 7);
  EXPECT_EQ(r.ReadI64().value(), -123456789);
  EXPECT_EQ(r.ReadU64().value(), 987654321u);
  EXPECT_DOUBLE_EQ(r.ReadDouble().value(), 3.25);
  EXPECT_TRUE(r.ReadBool().value());
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ValueRoundTripAllTypes) {
  const Value values[] = {Value::Null(), Value(int64_t{-5}), Value(2.75),
                          Value(false), Value("abc def")};
  BinaryWriter w;
  for (const Value& v : values) w.WriteValue(v);
  BinaryReader r(w.buffer());
  for (const Value& v : values) {
    auto got = r.ReadValue();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, RecordRoundTrip) {
  Record rec = MakeRecord(99, Value("user-1"), Value(int64_t{17}),
                          Value(0.5));
  BinaryWriter w;
  w.WriteRecord(rec);
  BinaryReader r(w.buffer());
  auto got = r.ReadRecord();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, rec);
}

TEST(SerdeTest, EmptyStringRoundTrip) {
  BinaryWriter w;
  w.WriteString("");
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadString().value(), "");
}

TEST(SerdeTest, TruncatedBufferReportsOutOfRange) {
  BinaryWriter w;
  w.WriteI64(1);
  std::string buf = w.Release();
  buf.resize(buf.size() - 1);
  BinaryReader r(buf);
  auto got = r.ReadI64();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
}

TEST(SerdeTest, TruncatedStringReportsOutOfRange) {
  BinaryWriter w;
  w.WriteString("long payload");
  std::string buf = w.Release();
  buf.resize(buf.size() - 4);
  BinaryReader r(buf);
  auto got = r.ReadString();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
}

TEST(SerdeTest, UnknownValueTagReportsInternal) {
  std::string buf(1, static_cast<char>(250));
  BinaryReader r(buf);
  auto got = r.ReadValue();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);
}

TEST(SerdeTest, TruncatedRecordReportsError) {
  Record rec = MakeRecord(1, Value(int64_t{2}), Value("xyz"));
  BinaryWriter w;
  w.WriteRecord(rec);
  std::string buf = w.Release();
  buf.resize(buf.size() / 2);
  BinaryReader r(buf);
  EXPECT_FALSE(r.ReadRecord().ok());
}

}  // namespace
}  // namespace streamline
