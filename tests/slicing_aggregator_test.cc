#include "agg/slicing_aggregator.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "agg/techniques.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

using Result = std::tuple<size_t, Window, double>;

template <typename AggregatorT>
std::vector<Result>* Collect(AggregatorT* agg, std::vector<Result>* out) {
  (void)agg;
  return out;
}

TEST(SlicingAggregatorTest, TumblingSum) {
  SlicingAggregator<SumAgg<double>> agg;
  std::vector<Result> results;
  agg.AddQuery(std::make_unique<TumblingWindowFn>(10),
               [&](size_t q, const Window& w, const double& v) {
                 results.emplace_back(q, w, v);
               });
  for (Timestamp t = 0; t < 30; ++t) agg.OnElement(t, 1.0);
  agg.OnWatermark(kMaxTimestamp);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(std::get<1>(results[0]), (Window{0, 10}));
  EXPECT_DOUBLE_EQ(std::get<2>(results[0]), 10.0);
  EXPECT_EQ(std::get<1>(results[2]), (Window{20, 30}));
  EXPECT_DOUBLE_EQ(std::get<2>(results[2]), 10.0);
}

TEST(SlicingAggregatorTest, SlidingSumOverlap) {
  SlicingAggregator<SumAgg<double>> agg;
  std::vector<Result> results;
  agg.AddQuery(std::make_unique<SlidingWindowFn>(10, 5),
               [&](size_t q, const Window& w, const double& v) {
                 results.emplace_back(q, w, v);
               });
  for (Timestamp t = 0; t < 20; ++t) agg.OnElement(t, 1.0);
  agg.OnWatermark(kMaxTimestamp);
  // Windows: [-5,5)=5, [0,10)=10, [5,15)=10, [10,20)=10, [15,25)=5.
  ASSERT_EQ(results.size(), 5u);
  EXPECT_DOUBLE_EQ(std::get<2>(results[0]), 5.0);
  EXPECT_DOUBLE_EQ(std::get<2>(results[1]), 10.0);
  EXPECT_DOUBLE_EQ(std::get<2>(results[2]), 10.0);
  EXPECT_DOUBLE_EQ(std::get<2>(results[3]), 10.0);
  EXPECT_DOUBLE_EQ(std::get<2>(results[4]), 5.0);
}

TEST(SlicingAggregatorTest, OnePartialUpdatePerRecord) {
  // The headline Cutty property: per-record aggregation work is constant in
  // the number of overlapping windows and registered queries.
  SlicingAggregator<SumAgg<double>> agg;
  for (int q = 0; q < 16; ++q) {
    agg.AddQuery(std::make_unique<SlidingWindowFn>(100 + 10 * q, 10),
                 nullptr);
  }
  for (Timestamp t = 0; t < 1000; ++t) agg.OnElement(t, 1.0);
  EXPECT_EQ(agg.stats().partial_updates, agg.stats().elements);
}

TEST(SlicingAggregatorTest, MultiQuerySharedSlices) {
  SlicingAggregator<SumAgg<double>> agg;
  std::map<size_t, std::vector<std::pair<Window, double>>> per_query;
  auto cb = [&](size_t q, const Window& w, const double& v) {
    per_query[q].emplace_back(w, v);
  };
  const size_t q0 = agg.AddQuery(std::make_unique<TumblingWindowFn>(10), cb);
  const size_t q1 = agg.AddQuery(std::make_unique<TumblingWindowFn>(20), cb);
  for (Timestamp t = 0; t < 40; ++t) agg.OnElement(t, 1.0);
  agg.OnWatermark(kMaxTimestamp);
  ASSERT_EQ(per_query[q0].size(), 4u);
  ASSERT_EQ(per_query[q1].size(), 2u);
  for (const auto& [w, v] : per_query[q0]) EXPECT_DOUBLE_EQ(v, 10.0);
  for (const auto& [w, v] : per_query[q1]) EXPECT_DOUBLE_EQ(v, 20.0);
}

TEST(SlicingAggregatorTest, SessionWindowsSingleSliceEach) {
  SlicingAggregator<SumAgg<double>> agg;
  std::vector<Result> results;
  agg.AddQuery(std::make_unique<SessionWindowFn>(10),
               [&](size_t q, const Window& w, const double& v) {
                 results.emplace_back(q, w, v);
               });
  // Two sessions: {0, 3, 6} and {50, 52}.
  for (Timestamp t : {0, 3, 6}) agg.OnElement(t, 1.0);
  for (Timestamp t : {50, 52}) agg.OnElement(t, 1.0);
  agg.OnWatermark(kMaxTimestamp);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(std::get<1>(results[0]), (Window{0, 16}));
  EXPECT_DOUBLE_EQ(std::get<2>(results[0]), 3.0);
  EXPECT_EQ(std::get<1>(results[1]), (Window{50, 62}));
  EXPECT_DOUBLE_EQ(std::get<2>(results[1]), 2.0);
}

TEST(SlicingAggregatorTest, CountWindowsIncludeClosingElement) {
  SlicingAggregator<SumAgg<double>> agg;
  std::vector<Result> results;
  agg.AddQuery(std::make_unique<CountWindowFn>(3),
               [&](size_t q, const Window& w, const double& v) {
                 results.emplace_back(q, w, v);
               });
  for (Timestamp t = 1; t <= 7; ++t) {
    agg.OnElement(t * 10, static_cast<double>(t));
  }
  agg.OnWatermark(kMaxTimestamp);
  // Windows of 3 elements: {1,2,3} -> 6, {4,5,6} -> 15; trailing dropped.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(std::get<2>(results[0]), 6.0);
  EXPECT_DOUBLE_EQ(std::get<2>(results[1]), 15.0);
}

TEST(SlicingAggregatorTest, PunctuationWindowsUsePayload) {
  SlicingAggregator<SumAgg<double>> agg;
  std::vector<Result> results;
  agg.AddQuery(
      std::make_unique<PunctuationWindowFn>(
          [](Timestamp, const Value& v) { return v.AsBool(); }),
      [&](size_t q, const Window& w, const double& v) {
        results.emplace_back(q, w, v);
      });
  agg.OnElement(1, 1.0, Value(false));
  agg.OnElement(2, 2.0, Value(false));
  agg.OnElement(3, 4.0, Value(true));  // closes [1, 3)
  agg.OnElement(4, 8.0, Value(false));
  agg.OnWatermark(kMaxTimestamp);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(std::get<2>(results[0]), 3.0);   // 1 + 2
  EXPECT_DOUBLE_EQ(std::get<2>(results[1]), 12.0);  // 4 + 8
}

TEST(SlicingAggregatorTest, EvictionBoundsStoredSlices) {
  SlicingAggregator<SumAgg<double>> agg;
  agg.AddQuery(std::make_unique<SlidingWindowFn>(100, 10), nullptr);
  for (Timestamp t = 0; t < 100000; t += 1) agg.OnElement(t, 1.0);
  // A window spans at most range/slide = 10 slices; with bounded eviction
  // lag the store must stay small instead of growing with the stream.
  EXPECT_LE(agg.stats().peak_stored, 64u);
  EXPECT_LE(agg.stored_slices(), 64u);
}

TEST(SlicingAggregatorTest, NonInvertibleMaxWithFlatFat) {
  SlicingAggregator<MaxAgg<double>> agg;
  std::vector<std::pair<Window, double>> results;
  agg.AddQuery(std::make_unique<SlidingWindowFn>(20, 10),
               [&](size_t, const Window& w, const double& v) {
                 results.emplace_back(w, v);
               });
  const double xs[] = {5, 1, 9, 2, 8, 3, 7, 4};
  for (int i = 0; i < 8; ++i) {
    agg.OnElement(i * 5, xs[i]);  // ts: 0,5,...,35
  }
  agg.OnWatermark(kMaxTimestamp);
  // [−10,10): max(5,1)=5; [0,20): max(5,1,9,2)=9; [10,30): max(9,2,8,3)=9;
  // [20,40): max(8,3,7,4)=8; [30, 50): max(7,4)=7.
  ASSERT_EQ(results.size(), 5u);
  EXPECT_DOUBLE_EQ(results[0].second, 5.0);
  EXPECT_DOUBLE_EQ(results[1].second, 9.0);
  EXPECT_DOUBLE_EQ(results[2].second, 9.0);
  EXPECT_DOUBLE_EQ(results[3].second, 8.0);
  EXPECT_DOUBLE_EQ(results[4].second, 7.0);
}

TEST(SlicingAggregatorTest, LazyAndPrefixStoresAgree) {
  std::vector<double> lazy_out;
  std::vector<double> prefix_out;
  SlicingAggregator<SumAgg<double>, LinearStore<SumAgg<double>>> lazy;
  SlicingAggregator<SumAgg<double>, PrefixStore<SumAgg<double>>> prefix;
  lazy.AddQuery(std::make_unique<SlidingWindowFn>(30, 10),
                [&](size_t, const Window&, const double& v) {
                  lazy_out.push_back(v);
                });
  prefix.AddQuery(std::make_unique<SlidingWindowFn>(30, 10),
                  [&](size_t, const Window&, const double& v) {
                    prefix_out.push_back(v);
                  });
  for (Timestamp t = 0; t < 200; ++t) {
    lazy.OnElement(t, static_cast<double>(t % 7));
    prefix.OnElement(t, static_cast<double>(t % 7));
  }
  lazy.OnWatermark(kMaxTimestamp);
  prefix.OnWatermark(kMaxTimestamp);
  ASSERT_EQ(lazy_out.size(), prefix_out.size());
  for (size_t i = 0; i < lazy_out.size(); ++i) {
    EXPECT_NEAR(lazy_out[i], prefix_out[i], 1e-9);
  }
}

TEST(SlicingAggregatorTest, QueriesAfterElementsRejected) {
  SlicingAggregator<SumAgg<double>> agg;
  agg.AddQuery(std::make_unique<TumblingWindowFn>(10), nullptr);
  agg.OnElement(0, 1.0);
  EXPECT_DEATH(agg.AddQuery(std::make_unique<TumblingWindowFn>(5), nullptr),
               "AttachQuery");
}

TEST(SlicingAggregatorTest, AttachedLateQueryMatchesFromStart) {
  // Reference: the query runs from the start of the stream.
  SlicingAggregator<SumAgg<double>> ref;
  std::map<Timestamp, std::pair<Window, double>> ref_by_start;
  ref.AddQuery(std::make_unique<SlidingWindowFn>(20, 5),
               [&](size_t, const Window& w, const double& v) {
                 ref_by_start[w.start] = {w, v};
               });
  // Live job: a tumbling-10 query keeps the shared store cut at multiples
  // of 10; the sliding query attaches only after t = 60.
  SlicingAggregator<SumAgg<double>> agg;
  agg.AddQuery(std::make_unique<TumblingWindowFn>(10), nullptr);
  std::vector<std::pair<Window, double>> late;
  constexpr Timestamp kAttach = 60;
  for (Timestamp t = 0; t < 200; ++t) {
    const double v = static_cast<double>(t % 7);  // integer-valued: exact FP
    ref.OnElement(t, v);
    agg.OnElement(t, v);
    if (t == kAttach) {
      agg.AttachQuery(std::make_unique<SlidingWindowFn>(20, 5),
                      [&](size_t, const Window& w, const double& x) {
                        late.emplace_back(w, x);
                      });
      // Grid point 60 is an intact cut (open slice start), so the attach
      // backfills one pre-attach window begin.
      EXPECT_TRUE(agg.last_attach_backfilled());
    }
  }
  ref.OnWatermark(kMaxTimestamp);
  agg.OnWatermark(kMaxTimestamp);
  // Every window the late query fires (including backfilled ones) must be
  // byte-identical to the from-start run; windows past the first full
  // window boundary must all be present.
  ASSERT_FALSE(late.empty());
  EXPECT_EQ(late.front().first.start, kAttach);  // backfilled window
  for (const auto& [w, v] : late) {
    auto it = ref_by_start.find(w.start);
    ASSERT_NE(it, ref_by_start.end()) << w.ToString();
    EXPECT_EQ(it->second.first, w);
    EXPECT_EQ(it->second.second, v) << w.ToString();  // exact, not NEAR
  }
  size_t expected = 0;
  for (const auto& [start, wv] : ref_by_start) {
    if (start >= kAttach) ++expected;
  }
  EXPECT_EQ(late.size(), expected);
}

TEST(SlicingAggregatorTest, AttachWithoutIntactCutsStartsFresh) {
  SlicingAggregator<SumAgg<double>> agg;
  agg.AddQuery(std::make_unique<TumblingWindowFn>(100), nullptr);
  std::vector<std::pair<Window, double>> out;
  for (Timestamp t = 0; t < 150; ++t) agg.OnElement(t, 1.0);
  // Slide-7 begin grid shares no cut point with the tumbling-100 slices, so
  // no backfill: the first window starts strictly after the attach point.
  agg.AttachQuery(std::make_unique<SlidingWindowFn>(30, 7),
                  [&](size_t, const Window& w, const double& v) {
                    out.emplace_back(w, v);
                  });
  EXPECT_FALSE(agg.last_attach_backfilled());
  for (Timestamp t = 150; t < 250; ++t) agg.OnElement(t, 1.0);
  agg.OnWatermark(kMaxTimestamp);
  ASSERT_FALSE(out.empty());
  for (const auto& [w, v] : out) {
    EXPECT_GT(w.start, 149);
    // All-ones input: a window's sum is the number of fed elements in it.
    const Timestamp hi = std::min<Timestamp>(w.end, 250);
    EXPECT_DOUBLE_EQ(v, static_cast<double>(hi - w.start));
  }
}

TEST(SlicingAggregatorTest, DetachFreesSlices) {
  SlicingAggregator<SumAgg<double>> agg;
  const size_t long_q =
      agg.AddQuery(std::make_unique<SlidingWindowFn>(200, 10), nullptr);
  std::vector<std::pair<Window, double>> out;
  agg.AddQuery(std::make_unique<TumblingWindowFn>(10),
               [&](size_t, const Window& w, const double& v) {
                 out.emplace_back(w, v);
               });
  for (Timestamp t = 0; t < 1000; ++t) agg.OnElement(t, 1.0);
  // The 200/10 sliding query pins ~20 slices; the tumbling query alone
  // needs at most its open window.
  const size_t before = agg.stored_slices();
  EXPECT_GE(before, 15u);
  const size_t freed = agg.DetachQuery(long_q);
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(agg.stored_slices(), before - freed);
  EXPECT_LE(agg.stored_slices(), 2u);
  EXPECT_EQ(agg.active_queries(), 1u);
  EXPECT_EQ(agg.num_slots(), 2u);
  // The remaining query keeps producing correct results.
  out.clear();
  for (Timestamp t = 1000; t < 1100; ++t) agg.OnElement(t, 1.0);
  agg.OnWatermark(kMaxTimestamp);
  // [990,1000) fires on the t=1000 element, then [1000,1010)..[1090,1100).
  ASSERT_EQ(out.size(), 11u);
  for (const auto& [w, v] : out) EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(SlicingAggregatorTest, AttachBeforeFirstElementIsFromStart) {
  SlicingAggregator<SumAgg<double>> agg;
  std::vector<std::pair<Window, double>> out;
  agg.AttachQuery(std::make_unique<TumblingWindowFn>(10),
                  [&](size_t, const Window& w, const double& v) {
                    out.emplace_back(w, v);
                  });
  for (Timestamp t = 0; t < 30; ++t) agg.OnElement(t, 1.0);
  agg.OnWatermark(kMaxTimestamp);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, (Window{0, 10}));
  for (const auto& [w, v] : out) EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(PairsAggregatorTest, AddsEndBoundaries) {
  PairsAggregator<SumAgg<double>> agg;
  std::vector<double> out;
  agg.AddQuery(std::make_unique<SlidingWindowFn>(15, 10),
               [&](size_t, const Window&, const double& v) {
                 out.push_back(v);
               });
  for (Timestamp t = 0; t < 60; ++t) agg.OnElement(t, 1.0);
  agg.OnWatermark(kMaxTimestamp);
  // Every full window holds 15 elements.
  ASSERT_GE(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2], 15.0);
  EXPECT_DOUBLE_EQ(out[3], 15.0);
}

TEST(PanesAggregatorTest, GcdGridCorrectness) {
  PanesAggregator<SumAgg<double>> agg;
  std::vector<double> out;
  agg.AddQuery(std::make_unique<SlidingWindowFn>(15, 10),
               [&](size_t, const Window&, const double& v) {
                 out.push_back(v);
               });
  for (Timestamp t = 0; t < 60; ++t) agg.OnElement(t, 1.0);
  agg.OnWatermark(kMaxTimestamp);
  ASSERT_GE(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2], 15.0);
  // gcd(15, 10) = 5: panes creates ~3x the slices Cutty would.
  EXPECT_GT(agg.stats().slices_created, 8u);
}

TEST(BIntAggregatorTest, PerTupleLeaves) {
  BIntAggregator<SumAgg<double>> agg;
  std::vector<double> out;
  agg.AddQuery(std::make_unique<TumblingWindowFn>(10),
               [&](size_t, const Window&, const double& v) {
                 out.push_back(v);
               });
  for (Timestamp t = 0; t < 30; ++t) agg.OnElement(t, 1.0);
  agg.OnWatermark(kMaxTimestamp);
  ASSERT_EQ(out.size(), 3u);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 10.0);
  // One slice per tuple (modulo the final open slice).
  EXPECT_GE(agg.stats().slices_created, 29u);
}

}  // namespace
}  // namespace streamline
