#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace streamline {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilAllDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, UsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> running{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      ++running;
      // Hold the task briefly so several workers are busy at once.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_GE(ids.size(), 2u);
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, DestructorJoins) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) pool.Submit([&count] { ++count; });
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace streamline
