#include "dataflow/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "api/datastream.h"

namespace streamline {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() /
                     "streamline_io_test";
    std::filesystem::create_directories(dir);
    const std::string path = (dir / name).string();
    std::remove(path.c_str());
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }

  std::vector<std::string> paths_;
};

const Schema kSchema({{"name", DataType::kString},
                      {"count", DataType::kInt64},
                      {"score", DataType::kDouble},
                      {"flag", DataType::kBool}});

TEST_F(IoTest, FormatAndParseRoundTrip) {
  const Record r = MakeRecord(42, Value("abc"), Value(int64_t{-7}),
                              Value(2.5), Value(true));
  const std::string line = FormatCsvLine(r);
  EXPECT_EQ(line, "42,abc,-7,2.5,true");
  auto parsed = ParseCsvLine(line, kSchema);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, r);
}

TEST_F(IoTest, NullCellsRoundTrip) {
  const Record r = MakeRecord(1, Value::Null(), Value(int64_t{0}),
                              Value::Null(), Value(false));
  auto parsed = ParseCsvLine(FormatCsvLine(r), kSchema);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, r);
}

TEST_F(IoTest, ParseErrors) {
  EXPECT_FALSE(ParseCsvLine("notanumber,a,1,1.0,true", kSchema).ok());
  EXPECT_FALSE(ParseCsvLine("1,a,xx,1.0,true", kSchema).ok());
  EXPECT_FALSE(ParseCsvLine("1,a,1,yy,true", kSchema).ok());
  EXPECT_FALSE(ParseCsvLine("1,a,1,1.0,maybe", kSchema).ok());
  EXPECT_FALSE(ParseCsvLine("1,a,1,1.0", kSchema).ok());       // too few
  EXPECT_FALSE(ParseCsvLine("1,a,1,1.0,true,x", kSchema).ok());  // too many
}

TEST_F(IoTest, SinkThenSourceThroughJobs) {
  const std::string path = TempPath("roundtrip.csv");
  // Job 1: generate -> CSV file.
  {
    Environment env;
    auto sink = std::make_shared<CsvFileSink>(path);
    env.FromGenerator("gen",
                      [](uint64_t seq) -> std::optional<Record> {
                        if (seq >= 500) return std::nullopt;
                        return MakeRecord(
                            static_cast<Timestamp>(seq),
                            Value("key" + std::to_string(seq % 7)),
                            Value(static_cast<int64_t>(seq)),
                            Value(static_cast<double>(seq) / 2),
                            Value(seq % 2 == 0));
                      })
        .Sink(sink);
    ASSERT_TRUE(env.Execute().ok());
    EXPECT_EQ(sink->lines_written(), 500u);
  }
  // Job 2: CSV file -> keyed count.
  {
    Environment env;
    auto counts =
        env.FromSource("csv", CsvFileSource::Factory(path, kSchema))
            .KeyBy(0)
            .Reduce([](const Record& acc, const Record& in) {
              Record out = acc;
              out.fields[1] =
                  Value(acc.field(1).AsInt64() + in.field(1).AsInt64());
              return out;
            })
            .Collect();
    ASSERT_TRUE(env.Execute().ok());
    EXPECT_EQ(counts->size(), 500u);
  }
}

TEST_F(IoTest, MissingFileReportsNotFound) {
  Environment env;
  env.FromSource("csv",
                 CsvFileSource::Factory("/nonexistent/nope.csv", kSchema))
      .Collect();
  // The source's error Status propagates: the task fails, the job is
  // cancelled, and Execute surfaces the underlying error.
  const Status st = env.Execute();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_NE(st.message().find("task '"), std::string::npos) << st.ToString();
}

TEST_F(IoTest, SinkSurfacesWriteErrors) {
  // /dev/full opens fine but fails every flush; the sink must surface the
  // stream error instead of silently dropping records.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "no /dev/full on this platform";
  }
  Environment env;
  auto sink = std::make_shared<CsvFileSink>("/dev/full");
  env.FromGenerator("gen",
                    [](uint64_t seq) -> std::optional<Record> {
                      if (seq >= 5000) return std::nullopt;
                      return MakeRecord(static_cast<Timestamp>(seq),
                                        Value("payload" + std::to_string(seq)),
                                        Value(static_cast<int64_t>(seq)),
                                        Value(0.5), Value(true));
                    })
      .Sink(sink);
  const Status st = env.Execute();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("write error"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("/dev/full"), std::string::npos)
      << st.ToString();
}

TEST_F(IoTest, SourceOffsetCheckpointable) {
  const std::string path = TempPath("offsets.csv");
  {
    std::ofstream out(path);
    for (int i = 0; i < 10; ++i) {
      out << FormatCsvLine(MakeRecord(i, Value("x"), Value(int64_t{i}),
                                      Value(1.0), Value(true)))
          << "\n";
    }
  }
  CsvFileSource source(path, kSchema);
  // Pretend we consumed 6 lines, snapshot, restore into a new instance.
  class CountingCtx : public SourceContext {
   public:
    explicit CountingCtx(uint64_t stop_after) : stop_after_(stop_after) {}
    bool Emit(Record&& r) override {
      records.push_back(std::move(r));
      return records.size() < stop_after_;
    }
    void EmitWatermark(Timestamp) override {}
    void HandleIdle() override {}
    bool IsCancelled() const override { return false; }
    std::vector<Record> records;

   private:
    uint64_t stop_after_;
  };
  CountingCtx first(6);
  ASSERT_TRUE(source.Run(&first).ok());
  ASSERT_EQ(first.records.size(), 6u);
  BinaryWriter w;
  ASSERT_TRUE(source.SnapshotState(&w).ok());

  CsvFileSource restored(path, kSchema);
  BinaryReader r(w.buffer());
  ASSERT_TRUE(restored.RestoreState(&r).ok());
  CountingCtx rest(100);
  ASSERT_TRUE(restored.Run(&rest).ok());
  // Emit returned false after record 6 BEFORE pos_ was bumped, so the
  // restored source re-reads that record: lines 5..9.
  ASSERT_EQ(rest.records.size(), 5u);
  EXPECT_EQ(rest.records.front().field(1).AsInt64(), 5);
  EXPECT_EQ(rest.records.back().field(1).AsInt64(), 9);
}

TEST_F(IoTest, MalformedLineFailsTheSource) {
  const std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "1,a,1,1.0,true\n";
    out << "2,b,NOT_AN_INT,1.0,false\n";
  }
  CsvFileSource source(path, kSchema);
  class NullCtx : public SourceContext {
   public:
    bool Emit(Record&&) override { return true; }
    void EmitWatermark(Timestamp) override {}
    void HandleIdle() override {}
    bool IsCancelled() const override { return false; }
  } ctx;
  const Status st = source.Run(&ctx);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find(":1:"), std::string::npos) << st.ToString();
}

}  // namespace
}  // namespace streamline
