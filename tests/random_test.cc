#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace streamline {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = rng.NextBelow(10);
    ASSERT_LT(v, 10u);
    counts[v]++;
  }
  for (const auto& [v, n] : counts) {
    EXPECT_NEAR(n, kDraws / 10, kDraws / 10 * 0.10) << "value " << v;
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble(-5.0, 5.0);
    ASSERT_GE(d, -5.0);
    ASSERT_LT(d, 5.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0;
  double sq = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(ZipfTest, InRangeAndSkewed) {
  ZipfGenerator zipf(100, 1.0, 3);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, 100u);
    counts[v]++;
  }
  // Rank 0 must dominate; with s=1 and n=100, P(0) = 1/H_100 ~ 0.192.
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.192, 0.02);
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[9]);
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfGenerator zipf(10, 0.0, 5);
  std::map<uint64_t, int> counts;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Next()]++;
  for (const auto& [v, n] : counts) {
    EXPECT_NEAR(n, kDraws / 10, kDraws / 10 * 0.12) << "value " << v;
  }
}

TEST(ZipfTest, DeterministicForSameSeed) {
  ZipfGenerator a(50, 0.8, 9);
  ZipfGenerator b(50, 0.8, 9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace streamline
