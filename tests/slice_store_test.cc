#include "agg/slice_store.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

// ---------------------------------------------------------------------------
// Typed tests shared by all store implementations (with SumAgg).

template <typename StoreT>
class SliceStoreTest : public ::testing::Test {};

using SumStores =
    ::testing::Types<LinearStore<SumAgg<double>>, FlatFatStore<SumAgg<double>>,
                     PrefixStore<SumAgg<double>>>;
TYPED_TEST_SUITE(SliceStoreTest, SumStores);

TYPED_TEST(SliceStoreTest, EmptyRangeIsIdentity) {
  TypeParam store;
  EXPECT_DOUBLE_EQ(store.RangeCombine(0, 0), 0.0);
  store.Append(10, 1.0);
  EXPECT_DOUBLE_EQ(store.RangeCombine(1, 1), 0.0);
}

TYPED_TEST(SliceStoreTest, AppendAndFullCombine) {
  TypeParam store;
  store.Append(0, 1.0);
  store.Append(10, 2.0);
  store.Append(20, 4.0);
  EXPECT_EQ(store.BeginIndex(), 0u);
  EXPECT_EQ(store.EndIndex(), 3u);
  EXPECT_DOUBLE_EQ(store.RangeCombine(0, 3), 7.0);
}

TYPED_TEST(SliceStoreTest, SubrangeCombines) {
  TypeParam store;
  for (int i = 0; i < 10; ++i) {
    store.Append(i * 10, static_cast<double>(1 << i));
  }
  EXPECT_DOUBLE_EQ(store.RangeCombine(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(store.RangeCombine(3, 6), 8.0 + 16.0 + 32.0);
  EXPECT_DOUBLE_EQ(store.RangeCombine(9, 10), 512.0);
}

TYPED_TEST(SliceStoreTest, LowerBoundByTimestamp) {
  TypeParam store;
  store.Append(5, 1.0);
  store.Append(15, 1.0);
  store.Append(25, 1.0);
  EXPECT_EQ(store.LowerBound(0), 0u);
  EXPECT_EQ(store.LowerBound(5), 0u);
  EXPECT_EQ(store.LowerBound(6), 1u);
  EXPECT_EQ(store.LowerBound(15), 1u);
  EXPECT_EQ(store.LowerBound(25), 2u);
  EXPECT_EQ(store.LowerBound(26), 3u);
}

TYPED_TEST(SliceStoreTest, EvictionKeepsLogicalIndices) {
  TypeParam store;
  for (int i = 0; i < 8; ++i) store.Append(i * 10, static_cast<double>(i));
  store.EvictBefore(3);
  EXPECT_EQ(store.BeginIndex(), 3u);
  EXPECT_EQ(store.EndIndex(), 8u);
  EXPECT_EQ(store.size(), 5u);
  EXPECT_DOUBLE_EQ(store.RangeCombine(3, 8), 3 + 4 + 5 + 6 + 7.0);
  EXPECT_EQ(store.LowerBound(30), 3u);
  EXPECT_EQ(store.LowerBound(75), 8u);
}

TYPED_TEST(SliceStoreTest, InterleavedAppendEvictQuery) {
  TypeParam store;
  Rng rng(99);
  double window[5] = {0, 0, 0, 0, 0};
  size_t appended = 0;
  for (int round = 0; round < 500; ++round) {
    const double v = rng.NextDouble();
    window[appended % 5] = v;
    store.Append(static_cast<Timestamp>(round * 7), v);
    ++appended;
    if (appended >= 5) {
      store.EvictBefore(appended - 5);
      double expect = 0;
      for (double x : window) expect += x;
      EXPECT_NEAR(store.RangeCombine(appended - 5, appended), expect, 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// FlatFat specifics.

TEST(FlatFatStoreTest, GrowsBeyondInitialCapacity) {
  FlatFatStore<SumAgg<double>> store(SumAgg<double>(), 4);
  double total = 0;
  for (int i = 0; i < 100; ++i) {
    store.Append(i, 1.0);
    total += 1.0;
  }
  EXPECT_GE(store.capacity(), 100u);
  EXPECT_DOUBLE_EQ(store.RangeCombine(0, 100), total);
}

TEST(FlatFatStoreTest, RingWrapAroundCorrect) {
  FlatFatStore<SumAgg<double>> store(SumAgg<double>(), 8);
  // Fill, evict half, append more so the ring wraps.
  for (int i = 0; i < 8; ++i) store.Append(i, static_cast<double>(i));
  store.EvictBefore(5);
  for (int i = 8; i < 12; ++i) store.Append(i, static_cast<double>(i));
  // Live: indices 5..11, values 5..11.
  EXPECT_DOUBLE_EQ(store.RangeCombine(5, 12), 5 + 6 + 7 + 8 + 9 + 10 + 11.0);
  EXPECT_DOUBLE_EQ(store.RangeCombine(7, 10), 7 + 8 + 9.0);
}

TEST(FlatFatStoreTest, NonCommutativeOrderPreserved) {
  FlatFatStore<CollectAgg<int>> store(CollectAgg<int>(), 4);
  for (int i = 0; i < 10; ++i) store.Append(i, {i});
  auto r = store.RangeCombine(2, 7);
  EXPECT_EQ(r, (std::vector<int>{2, 3, 4, 5, 6}));
  store.EvictBefore(4);
  for (int i = 10; i < 13; ++i) store.Append(i, {i});
  auto r2 = store.RangeCombine(4, 13);
  EXPECT_EQ(r2, (std::vector<int>{4, 5, 6, 7, 8, 9, 10, 11, 12}));
}

TEST(FlatFatStoreTest, NonInvertibleMaxQueries) {
  FlatFatStore<MaxAgg<double>> store;
  const double xs[] = {3, 9, 1, 7, 5, 2, 8};
  for (int i = 0; i < 7; ++i) store.Append(i, xs[i]);
  EXPECT_DOUBLE_EQ(store.RangeCombine(0, 7), 9.0);
  EXPECT_DOUBLE_EQ(store.RangeCombine(2, 5), 7.0);
  EXPECT_DOUBLE_EQ(store.RangeCombine(4, 7), 8.0);
  store.EvictBefore(2);
  EXPECT_DOUBLE_EQ(store.RangeCombine(2, 7), 8.0);
}

TEST(FlatFatStoreTest, RandomizedAgainstLinearOracle) {
  FlatFatStore<MaxAgg<double>> fat(MaxAgg<double>(), 4);
  LinearStore<MaxAgg<double>> oracle;
  Rng rng(7);
  size_t appended = 0;
  size_t evicted = 0;
  for (int step = 0; step < 3000; ++step) {
    const double action = rng.NextDouble();
    if (action < 0.6 || appended == evicted) {
      const double v = rng.NextDouble(-100, 100);
      fat.Append(static_cast<Timestamp>(appended), v);
      oracle.Append(static_cast<Timestamp>(appended), v);
      ++appended;
    } else if (action < 0.75) {
      const size_t target =
          evicted + rng.NextBelow(appended - evicted + 1);
      fat.EvictBefore(target);
      oracle.EvictBefore(target);
      evicted = target > evicted ? target : evicted;
    } else {
      const size_t live = appended - evicted;
      const size_t i = evicted + rng.NextBelow(live + 1);
      const size_t j = i + rng.NextBelow(appended - i + 1);
      EXPECT_DOUBLE_EQ(fat.RangeCombine(i, j), oracle.RangeCombine(i, j))
          << "range [" << i << ", " << j << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// PrefixStore specifics.

TEST(PrefixStoreTest, ConstantTimeQueriesCountOneCombine) {
  PrefixStore<SumAgg<double>> store;
  for (int i = 0; i < 1000; ++i) store.Append(i, 1.0);
  const uint64_t before = store.combine_ops();
  EXPECT_DOUBLE_EQ(store.RangeCombine(100, 900), 800.0);
  // O(1): a single invert op regardless of range width.
  EXPECT_EQ(store.combine_ops() - before, 1u);
}

TEST(PrefixStoreTest, QueriesRemainValidAfterEviction) {
  PrefixStore<SumAgg<double>> store;
  for (int i = 0; i < 100; ++i) store.Append(i, static_cast<double>(i));
  store.EvictBefore(50);
  // 50 + 51 + ... + 99
  EXPECT_DOUBLE_EQ(store.RangeCombine(50, 100), (50 + 99) * 50 / 2.0);
  EXPECT_DOUBLE_EQ(store.RangeCombine(60, 61), 60.0);
}

TEST(LinearStoreTest, CombineOpsGrowWithRange) {
  LinearStore<SumAgg<double>> store;
  for (int i = 0; i < 100; ++i) store.Append(i, 1.0);
  const uint64_t before = store.combine_ops();
  store.RangeCombine(0, 100);
  EXPECT_EQ(store.combine_ops() - before, 100u);
}

}  // namespace
}  // namespace streamline
