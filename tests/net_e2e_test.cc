// Loopback network end-to-end: socket ingest feeding a real job through
// Environment::FromSource, the backpressure chain (ring full -> reads
// paused -> TCP window closes -> doorbell resume), 100-subscriber fan-out
// with identical delivery, snapshot-then-deltas late attach (byte-identical
// to a from-start subscriber), and the VizServer M4 pixel stream over
// actual sockets.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/datastream.h"
#include "common/record.h"
#include "common/serde.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/socket_source.h"
#include "net/subscription_server.h"
#include "viz/server.h"

namespace streamline {
namespace net {
namespace {

/// Stops the loop on scope exit, so a failed ASSERT mid-test cannot
/// destroy loop-registered objects under a still-running net thread.
struct LoopStopper {
  EventLoop* loop;
  ~LoopStopper() { loop->Stop(); }
};

/// Bounds a blocking client read so a protocol bug fails the test instead
/// of hanging it.
void SetRecvTimeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)), 0);
}

/// Blocking-reads until one complete frame payload is available; copies it
/// out (the decoder view dies on the next Append).
Result<std::string> ReadFrame(int fd, FrameDecoder* dec) {
  for (;;) {
    std::string_view payload;
    auto has = dec->Next(&payload);
    if (!has.ok()) return has.status();
    if (*has) return std::string(payload);
    char buf[4096];
    auto r = RecvSome(fd, buf, sizeof(buf));
    if (!r.ok()) return r.status();
    if (*r == 0) return Status::Internal("peer closed mid-stream");
    dec->Append(buf, *r);
  }
}

std::vector<Record> MakeTestRecords(uint64_t total) {
  std::vector<Record> records;
  records.reserve(total);
  for (uint64_t i = 0; i < total; ++i) {
    records.push_back(MakeRecord(static_cast<Timestamp>(i),
                                 Value(static_cast<int64_t>(i % 5)),
                                 Value(static_cast<double>(i % 7))));
  }
  return records;
}

/// Producer half of the ingest tests: connects and streams `records` in
/// frames of `batch` records over a blocking socket.
void ProduceRecords(uint16_t port, const std::vector<Record>& records,
                    size_t batch, std::atomic<bool>* failed) {
  auto conn = TcpConnect(port);
  if (!conn.ok()) {
    failed->store(true);
    return;
  }
  for (size_t off = 0; off < records.size(); off += batch) {
    const size_t n = std::min(batch, records.size() - off);
    const std::string wire = EncodeDataBatch(records.data() + off, n);
    if (!SendAll(conn->get(), wire.data(), wire.size()).ok()) {
      failed->store(true);
      return;
    }
  }
  // Fd closes on scope exit: the orderly shutdown is the end-of-stream.
}

bool AwaitCondition(const std::function<bool()>& cond,
                    std::chrono::seconds timeout = std::chrono::seconds(30)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Ingest: wire bytes in, exactly the sent records out of a real job.

TEST(NetE2ETest, SocketIngestFeedsJobWithExactRecords) {
  EventLoop loop;
  auto created = SocketIngest::Create(&loop, IngestOptions{});
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::shared_ptr<SocketIngest> ingest = std::move(*created);
  ASSERT_TRUE(loop.Start().ok());
  LoopStopper stopper{&loop};

  const std::vector<Record> sent = MakeTestRecords(20000);
  std::atomic<bool> produce_failed{false};
  std::thread producer(
      [&] { ProduceRecords(ingest->port(), sent, 64, &produce_failed); });

  Environment env;
  auto sink = env.FromSource("socket",
                             [ingest](int, int)
                                 -> std::unique_ptr<SourceFunction> {
                               return std::make_unique<SocketSource>(
                                   ingest, /*watermark_every=*/512);
                             },
                             1)
                  .Collect("collect");
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  producer.join();
  ASSERT_FALSE(produce_failed.load());
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  const auto got = sink->records();
  ASSERT_EQ(got.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    ASSERT_EQ(got[i], sent[i]) << "record " << i << " diverged on the wire";
  }
  const auto stats = ingest->stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.records, sent.size());
  EXPECT_EQ(stats.frames, (sent.size() + 63) / 64);
  EXPECT_GT(stats.bytes, sent.size() * 17);  // >= serialized record floor
}

// ---------------------------------------------------------------------------
// Backpressure: a slow consumer pauses socket reads (TCP window closes)
// and the doorbell resume loses nothing.

TEST(NetE2ETest, SlowConsumerPausesReadsAndLosesNothing) {
  EventLoop loop;
  IngestOptions options;
  options.ring_capacity = 2;  // tiny ring: force the pause path constantly
  auto created = SocketIngest::Create(&loop, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::shared_ptr<SocketIngest> ingest = std::move(*created);
  ASSERT_TRUE(loop.Start().ok());
  LoopStopper stopper{&loop};

  const std::vector<Record> sent = MakeTestRecords(65536);
  std::atomic<bool> produce_failed{false};
  std::thread producer(
      [&] { ProduceRecords(ingest->port(), sent, 256, &produce_failed); });

  // Deliberately slow consumer directly on the ring API.
  std::vector<Record> got;
  std::vector<Record> batch;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!ingest->Finished()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "ingest never finished: got " << got.size() << " records";
    if (ingest->PopBatch(&batch)) {
      got.insert(got.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
      ingest->RecycleBatch(std::move(batch));
      batch = std::vector<Record>();
      if (got.size() % 4096 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  producer.join();
  ASSERT_FALSE(produce_failed.load());

  ASSERT_EQ(got.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    ASSERT_EQ(got[i], sent[i]) << "record " << i << " diverged";
  }
  // The tentpole invariant made visible: the ring filled, reads paused,
  // and the stream still arrived intact after doorbell resumes.
  EXPECT_GT(ingest->stats().pauses, 0u);
}

// ---------------------------------------------------------------------------
// Fan-out: 100 subscribers all receive the identical delta stream.

TEST(NetE2ETest, HundredSubscribersReceiveIdenticalStream) {
  EventLoop loop;
  auto created = SubscriptionServer::Create(&loop, SubscriptionServer::Options{});
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto server = std::move(*created);
  ASSERT_TRUE(server->RegisterTopic("results", /*key_field=*/0).ok());
  ASSERT_TRUE(loop.Start().ok());
  LoopStopper stopper{&loop};

  constexpr int kClients = 100;
  constexpr int kRecords = 200;
  std::vector<Fd> clients;
  const std::string sub = EncodeSubscribe("results");
  for (int i = 0; i < kClients; ++i) {
    auto conn = TcpConnect(server->port());
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    SetRecvTimeout(conn->get(), 30);
    ASSERT_TRUE(SendAll(conn->get(), sub.data(), sub.size()).ok());
    clients.push_back(std::move(*conn));
  }
  // Attach completion = snapshot served; only then is delivery of every
  // later Publish guaranteed for all of them.
  ASSERT_TRUE(AwaitCondition([&] {
    return server->stats().snapshots_served == kClients;
  }));

  std::vector<Record> published;
  for (int i = 0; i < kRecords; ++i) {
    published.push_back(MakeRecord(i, Value(static_cast<int64_t>(i % 8)),
                                   Value(static_cast<double>(i))));
    server->Publish("results", published.back());
  }

  for (int c = 0; c < kClients; ++c) {
    FrameDecoder dec;
    // Empty snapshot bracket first (attached before any publish)...
    auto begin = ReadFrame(clients[c].get(), &dec);
    ASSERT_TRUE(begin.ok()) << "client " << c << ": " << begin.status().ToString();
    ASSERT_EQ(static_cast<uint8_t>((*begin)[0]), kMsgSnapshotBegin);
    auto end = ReadFrame(clients[c].get(), &dec);
    ASSERT_TRUE(end.ok());
    ASSERT_EQ(static_cast<uint8_t>((*end)[0]), kMsgSnapshotEnd);
    // ...then every delta, in publish order, byte-for-byte.
    for (int i = 0; i < kRecords; ++i) {
      auto frame = ReadFrame(clients[c].get(), &dec);
      ASSERT_TRUE(frame.ok()) << "client " << c << " delta " << i;
      std::vector<Record> decoded;
      ASSERT_TRUE(DecodeDataBatch(*frame, &decoded).ok());
      ASSERT_EQ(decoded.size(), 1u);
      ASSERT_EQ(decoded[0], published[i])
          << "client " << c << " diverged at delta " << i;
    }
  }

  const auto stats = server->stats();
  EXPECT_EQ(stats.clients_connected, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.clients_now, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.frames_sent,
            static_cast<uint64_t>(kClients) * (kRecords + 2));
  EXPECT_EQ(stats.slow_disconnects, 0u);
}

// ---------------------------------------------------------------------------
// Late attach: snapshot-then-deltas is exactly-once consistent -- the
// materialized state is byte-identical to a from-start subscriber's.

struct SubscriberResult {
  std::map<int64_t, std::string> state;  // key -> last frame payload bytes
  size_t data_frames = 0;
  size_t snapshot_frames = 0;
  bool saw_snapshot_bracket = false;
  std::string error;
};

/// Reads frames, materializing last-frame-per-key until the sentinel key
/// `stop_key` arrives.
SubscriberResult ConsumeUntilSentinel(int fd, int64_t stop_key) {
  SubscriberResult result;
  FrameDecoder dec;
  bool in_snapshot = false;
  for (;;) {
    auto frame = ReadFrame(fd, &dec);
    if (!frame.ok()) {
      result.error = frame.status().ToString();
      return result;
    }
    const uint8_t type = static_cast<uint8_t>((*frame)[0]);
    if (type == kMsgSnapshotBegin) {
      in_snapshot = true;
      continue;
    }
    if (type == kMsgSnapshotEnd) {
      in_snapshot = false;
      result.saw_snapshot_bracket = true;
      continue;
    }
    std::vector<Record> decoded;
    auto st = DecodeDataBatch(*frame, &decoded);
    if (!st.ok() || decoded.size() != 1) {
      result.error = "bad data frame: " + st.ToString();
      return result;
    }
    ++result.data_frames;
    if (in_snapshot) ++result.snapshot_frames;
    const int64_t key = decoded[0].field(0).AsInt64();
    result.state[key] = std::move(*frame);
    if (key == stop_key) return result;
  }
}

TEST(NetE2ETest, LateAttachSnapshotThenDeltasIsByteIdentical) {
  EventLoop loop;
  auto created = SubscriptionServer::Create(&loop, SubscriptionServer::Options{});
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto server = std::move(*created);
  ASSERT_TRUE(server->RegisterTopic("state", /*key_field=*/0).ok());
  ASSERT_TRUE(loop.Start().ok());
  LoopStopper stopper{&loop};

  constexpr int64_t kKeys = 16;
  constexpr int kUpdates = 4000;
  constexpr int64_t kSentinel = -1;
  const std::string sub = EncodeSubscribe("state");

  auto from_start = TcpConnect(server->port());
  ASSERT_TRUE(from_start.ok());
  SetRecvTimeout(from_start->get(), 30);
  ASSERT_TRUE(SendAll(from_start->get(), sub.data(), sub.size()).ok());
  ASSERT_TRUE(
      AwaitCondition([&] { return server->stats().snapshots_served == 1; }));

  SubscriberResult a_result, b_result;
  std::thread reader_a([&] {
    a_result = ConsumeUntilSentinel(from_start->get(), kSentinel);
  });

  // First half of the stream with only A attached.
  for (int i = 0; i < kUpdates / 2; ++i) {
    server->Publish("state", MakeRecord(i, Value(int64_t{i % kKeys}),
                                        Value(static_cast<double>(i))));
  }
  // Late attach mid-stream: B must get A's exact state for the first half
  // as a snapshot, then identical deltas for the second half.
  auto late = TcpConnect(server->port());
  ASSERT_TRUE(late.ok());
  SetRecvTimeout(late->get(), 30);
  ASSERT_TRUE(SendAll(late->get(), sub.data(), sub.size()).ok());
  ASSERT_TRUE(
      AwaitCondition([&] { return server->stats().snapshots_served == 2; }));
  std::thread reader_b(
      [&] { b_result = ConsumeUntilSentinel(late->get(), kSentinel); });

  for (int i = kUpdates / 2; i < kUpdates; ++i) {
    server->Publish("state", MakeRecord(i, Value(int64_t{i % kKeys}),
                                        Value(static_cast<double>(i))));
  }
  server->Publish("state", MakeRecord(kUpdates, Value(kSentinel),
                                      Value(0.0)));
  reader_a.join();
  reader_b.join();
  ASSERT_TRUE(a_result.error.empty()) << a_result.error;
  ASSERT_TRUE(b_result.error.empty()) << b_result.error;

  // B attached late: it saw a non-empty snapshot and fewer total frames.
  EXPECT_TRUE(b_result.saw_snapshot_bracket);
  EXPECT_EQ(b_result.snapshot_frames, static_cast<size_t>(kKeys));
  EXPECT_LT(b_result.data_frames, a_result.data_frames);
  EXPECT_EQ(a_result.data_frames, static_cast<size_t>(kUpdates) + 1);

  // Exactly-once consistency: the two materialized states agree byte for
  // byte, key by key.
  ASSERT_EQ(a_result.state.size(), static_cast<size_t>(kKeys) + 1);
  ASSERT_EQ(b_result.state.size(), a_result.state.size());
  for (const auto& [key, bytes] : a_result.state) {
    auto it = b_result.state.find(key);
    ASSERT_NE(it, b_result.state.end()) << "key " << key << " missing from B";
    EXPECT_EQ(it->second, bytes) << "key " << key << " state diverged";
  }
}

// ---------------------------------------------------------------------------
// Viz egress: completed M4 base columns arrive over a real socket and
// match the pyramid exactly.

TEST(NetE2ETest, VizServerStreamsPixelColumnsOverSockets) {
  EventLoop loop;
  auto created = SubscriptionServer::Create(&loop, SubscriptionServer::Options{});
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto server = std::move(*created);
  VizServer viz(/*base_column_width=*/100, /*levels=*/3);
  ASSERT_TRUE(viz.BindNetwork(server.get(), "pixels").ok());
  ASSERT_TRUE(loop.Start().ok());
  LoopStopper stopper{&loop};

  auto conn = TcpConnect(server->port());
  ASSERT_TRUE(conn.ok());
  SetRecvTimeout(conn->get(), 30);
  const std::string sub = EncodeSubscribe("pixels");
  ASSERT_TRUE(SendAll(conn->get(), sub.data(), sub.size()).ok());
  ASSERT_TRUE(
      AwaitCondition([&] { return server->stats().snapshots_served == 1; }));

  constexpr Timestamp kTotal = 10000;
  for (Timestamp t = 0; t < kTotal; ++t) {
    viz.OnElement(t, std::sin(static_cast<double>(t) * 0.01) * 100.0);
    if ((t + 1) % 500 == 0) viz.OnWatermark(t);
  }
  viz.Flush();

  // 100 base columns, each published exactly once on completion.
  constexpr int kCols = 100;
  FrameDecoder dec;
  std::map<int64_t, Record> received;
  auto begin = ReadFrame(conn->get(), &dec);
  ASSERT_TRUE(begin.ok());
  ASSERT_EQ(static_cast<uint8_t>((*begin)[0]), kMsgSnapshotBegin);
  auto end = ReadFrame(conn->get(), &dec);
  ASSERT_TRUE(end.ok());
  ASSERT_EQ(static_cast<uint8_t>((*end)[0]), kMsgSnapshotEnd);
  for (int i = 0; i < kCols; ++i) {
    auto frame = ReadFrame(conn->get(), &dec);
    ASSERT_TRUE(frame.ok()) << "column frame " << i;
    std::vector<Record> decoded;
    ASSERT_TRUE(DecodeDataBatch(*frame, &decoded).ok());
    ASSERT_EQ(decoded.size(), 1u);
    const auto [it, inserted] =
        received.emplace(decoded[0].field(0).AsInt64(), decoded[0]);
    ASSERT_TRUE(inserted) << "column " << it->first << " published twice";
  }

  // The wire columns must equal what the pyramid itself reports.
  const auto columns = viz.pyramid().Query(0, kTotal, kCols);
  ASSERT_EQ(columns.size(), static_cast<size_t>(kCols));
  for (const PixelColumn& col : columns) {
    auto it = received.find(col.index);
    ASSERT_NE(it, received.end()) << "column " << col.index << " never arrived";
    const Record& r = it->second;
    EXPECT_EQ(r.timestamp, col.t_start);
    EXPECT_EQ(r.field(1).AsDouble(), col.min.v);
    EXPECT_EQ(r.field(2).AsDouble(), col.max.v);
    EXPECT_EQ(r.field(3).AsDouble(), col.first.v);
    EXPECT_EQ(r.field(4).AsDouble(), col.last.v);
  }
}

}  // namespace
}  // namespace net
}  // namespace streamline
