#include "common/value.h"

#include <gtest/gtest.h>

#include "common/record.h"
#include "common/schema.h"

namespace streamline {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{5}).type(), DataType::kInt64);
  EXPECT_EQ(Value(int64_t{5}).AsInt64(), 5);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(true).type(), DataType::kBool);
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value("abc").type(), DataType::kString);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, ToDoubleCoercion) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).ToDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(1.5).ToDouble(), 1.5);
  EXPECT_DOUBLE_EQ(Value(true).ToDouble(), 1.0);
  EXPECT_DOUBLE_EQ(Value(false).ToDouble(), 0.0);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // distinct types
  EXPECT_EQ(Value(), Value::Null());
  EXPECT_EQ(Value("x"), Value(std::string("x")));
}

TEST(ValueTest, HashStableAndDiscriminating) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(int64_t{7}).Hash());
  EXPECT_NE(Value(int64_t{7}).Hash(), Value(int64_t{8}).Hash());
  // Same bit pattern across types must not collide (type is hashed in).
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(true).Hash());
  EXPECT_EQ(Value("key").Hash(), Value(std::string("key")).Hash());
}

TEST(ValueTest, NegativeZeroHashesLikeZero) {
  EXPECT_EQ(Value(-0.0).Hash(), Value(0.0).Hash());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value::Null(), Value(int64_t{0}));  // null sorts first
  EXPECT_FALSE(Value(int64_t{0}) < Value::Null());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value().ToString(), "null");
}

TEST(SchemaTest, FieldLookup) {
  Schema s({{"user", DataType::kString}, {"clicks", DataType::kInt64}});
  EXPECT_EQ(s.num_fields(), 2u);
  ASSERT_TRUE(s.FieldIndex("clicks").ok());
  EXPECT_EQ(s.FieldIndex("clicks").value(), 1u);
  EXPECT_FALSE(s.FieldIndex("nope").ok());
  EXPECT_TRUE(s.HasField("user"));
  EXPECT_FALSE(s.HasField("nope"));
}

TEST(SchemaTest, ToStringAndEquality) {
  Schema a({{"x", DataType::kDouble}});
  Schema b({{"x", DataType::kDouble}});
  Schema c({{"x", DataType::kInt64}});
  EXPECT_EQ(a.ToString(), "(x: double)");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(RecordTest, MakeRecordAndToString) {
  Record r = MakeRecord(12, Value(int64_t{1}), Value("a"));
  EXPECT_EQ(r.timestamp, 12);
  ASSERT_EQ(r.num_fields(), 2u);
  EXPECT_EQ(r.field(0).AsInt64(), 1);
  EXPECT_EQ(r.field(1).AsString(), "a");
  EXPECT_EQ(r.ToString(), "@12 [1, a]");
}

TEST(RecordTest, Equality) {
  EXPECT_EQ(MakeRecord(1, Value(2.0)), MakeRecord(1, Value(2.0)));
  EXPECT_FALSE(MakeRecord(1, Value(2.0)) == MakeRecord(2, Value(2.0)));
  EXPECT_FALSE(MakeRecord(1, Value(2.0)) == MakeRecord(1, Value(3.0)));
}

}  // namespace
}  // namespace streamline
