#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace streamline {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.value(), 6u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrements) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(GaugeTest, SetAndRead) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(HistogramTest, QuantilesApproximate) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  // Log-bucketed histogram: ~4% relative error per bucket.
  EXPECT_NEAR(h.Quantile(0.5), 500, 500 * 0.10);
  EXPECT_NEAR(h.Quantile(0.99), 990, 990 * 0.10);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(MetricsRegistryTest, SameNameSameObject) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
  EXPECT_NE(reg.GetCounter("y"), a);
}

TEST(MetricsRegistryTest, ReportContainsAllKinds) {
  MetricsRegistry reg;
  reg.GetCounter("records")->Increment(3);
  reg.GetGauge("lag")->Set(1.5);
  reg.GetHistogram("latency")->Record(10);
  const std::string report = reg.Report();
  EXPECT_NE(report.find("records 3"), std::string::npos);
  EXPECT_NE(report.find("lag 1.5"), std::string::npos);
  EXPECT_NE(report.find("latency count=1"), std::string::npos);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.ElapsedMillis(), 5.0);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMillis(), 10.0);
}

}  // namespace
}  // namespace streamline
