// Robustness fuzzing of every deserialization path: random byte strings
// and randomly truncated/corrupted valid snapshots must yield error
// Statuses, never crashes or hangs.

#include <gtest/gtest.h>

#include "agg/slicing_aggregator.h"
#include "common/random.h"
#include "common/serde.h"
#include "ml/online_model.h"
#include "window/aggregate_fn.h"
#include "window/dyn_aggregate.h"

namespace streamline {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->NextBelow(max_len + 1);
  std::string out(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<char>(rng->NextBelow(256));
  }
  return out;
}

TEST(SerdeFuzzTest, RandomBytesNeverCrashRecordReader) {
  Rng rng(1);
  int ok_count = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::string bytes = RandomBytes(&rng, 64);
    BinaryReader r(bytes);
    auto rec = r.ReadRecord();
    if (rec.ok()) ++ok_count;  // tiny chance of being valid: fine
  }
  // The overwhelming majority must be rejected.
  EXPECT_LT(ok_count, 100);
}

TEST(SerdeFuzzTest, RandomBytesNeverCrashValueReader) {
  Rng rng(2);
  for (int round = 0; round < 2000; ++round) {
    const std::string bytes = RandomBytes(&rng, 32);
    BinaryReader r(bytes);
    (void)r.ReadValue();
  }
  SUCCEED();
}

TEST(SerdeFuzzTest, TruncatedAggregatorSnapshotsAllRejected) {
  SlicingAggregator<SumAgg<double>> agg;
  agg.AddQuery(std::make_unique<SlidingWindowFn>(50, 10), nullptr);
  agg.AddQuery(std::make_unique<SessionWindowFn>(7), nullptr);
  for (Timestamp t = 0; t < 300; ++t) agg.OnElement(t, 1.0);
  BinaryWriter w;
  agg.Snapshot(&w, [](const double& p, BinaryWriter* out) {
    out->WriteDouble(p);
  });
  const std::string full = w.buffer();
  auto de = [](BinaryReader* r) { return r->ReadDouble(); };
  // Every strict prefix must fail cleanly.
  for (size_t len = 0; len < full.size(); len += 7) {
    SlicingAggregator<SumAgg<double>> target;
    target.AddQuery(std::make_unique<SlidingWindowFn>(50, 10), nullptr);
    target.AddQuery(std::make_unique<SessionWindowFn>(7), nullptr);
    BinaryReader r(std::string_view(full.data(), len));
    EXPECT_FALSE(target.Restore(&r, de).ok()) << "prefix " << len;
  }
}

TEST(SerdeFuzzTest, CorruptedModelSnapshotsRejectedOrBenign) {
  OnlineLogisticRegression model(4);
  for (int i = 0; i < 100; ++i) model.Update({1, 2, 3, 4}, i % 2 == 0);
  BinaryWriter w;
  model.Snapshot(&w);
  std::string bytes = w.Release();
  Rng rng(3);
  for (int round = 0; round < 500; ++round) {
    std::string corrupted = bytes;
    const size_t pos = rng.NextBelow(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.NextBelow(256));
    OnlineLogisticRegression target(4);
    BinaryReader r(corrupted);
    (void)target.Restore(&r);  // must not crash; error or benign change
  }
  SUCCEED();
}

TEST(SerdeFuzzTest, DynPartialTruncations) {
  DynAggregate agg(DynAggKind::kVariance);
  DynPartial p = agg.Lift(Value(3.0), 7);
  BinaryWriter w;
  DynAggregate::SerializePartial(p, &w);
  const std::string full = w.buffer();
  for (size_t len = 0; len < full.size(); ++len) {
    BinaryReader r(std::string_view(full.data(), len));
    EXPECT_FALSE(DynAggregate::DeserializePartial(&r).ok());
  }
}

}  // namespace
}  // namespace streamline
