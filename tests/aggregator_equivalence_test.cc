// The repository's central correctness property: every window-aggregation
// technique (Cutty slicing with each store, eager, Pairs, Panes, B-Int)
// must produce exactly the same window results as the naive
// buffer-and-recompute oracle, for every combination of aggregate function,
// window kind and randomized stream shape.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "agg/techniques.h"
#include "common/random.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

struct StreamElement {
  Timestamp ts;
  double value;
  Value payload;  // punctuation marker
};

// Scenario = a set of window queries plus stream-shape constraints.
struct Scenario {
  const char* name;
  bool periodic_only;     // usable by eager/pairs/panes
  bool needs_unique_ts;   // count/punctuation windows need distinct ts
};

constexpr Scenario kScenarios[] = {
    {"single-tumbling", true, false},
    {"single-sliding", true, false},
    {"multi-periodic", true, false},
    {"session", false, false},
    {"mixed-periodic-session", false, false},
    {"count-windows", false, true},
    {"punctuation", false, true},
};

std::vector<std::unique_ptr<WindowFunction>> MakeQueries(int scenario) {
  std::vector<std::unique_ptr<WindowFunction>> qs;
  switch (scenario) {
    case 0:
      qs.push_back(std::make_unique<TumblingWindowFn>(97));
      break;
    case 1:
      qs.push_back(std::make_unique<SlidingWindowFn>(100, 13));
      break;
    case 2:
      qs.push_back(std::make_unique<TumblingWindowFn>(50));
      qs.push_back(std::make_unique<SlidingWindowFn>(120, 30));
      qs.push_back(std::make_unique<SlidingWindowFn>(75, 25));
      break;
    case 3:
      qs.push_back(std::make_unique<SessionWindowFn>(7));
      break;
    case 4:
      qs.push_back(std::make_unique<TumblingWindowFn>(64));
      qs.push_back(std::make_unique<SessionWindowFn>(11));
      break;
    case 5:
      qs.push_back(std::make_unique<CountWindowFn>(25, 10));
      qs.push_back(std::make_unique<CountWindowFn>(8));
      break;
    case 6:
      qs.push_back(std::make_unique<PunctuationWindowFn>(
          [](Timestamp, const Value& v) {
            return !v.is_null() && v.AsBool();
          }));
      break;
    default:
      ADD_FAILURE() << "unknown scenario " << scenario;
  }
  return qs;
}

std::vector<StreamElement> MakeStream(uint64_t seed, bool unique_ts) {
  Rng rng(seed);
  std::vector<StreamElement> out;
  Timestamp ts = static_cast<Timestamp>(rng.NextBelow(50));
  for (int i = 0; i < 3000; ++i) {
    StreamElement e;
    e.ts = ts;
    e.value = rng.NextDouble(-10, 10);
    e.payload = Value(rng.NextBool(0.04));
    out.push_back(e);
    // Occasional large jumps exercise empty-window skipping and sessions.
    const uint64_t r = rng.NextBelow(100);
    Duration inc = unique_ts ? 1 + static_cast<Duration>(rng.NextBelow(3))
                             : static_cast<Duration>(rng.NextBelow(4));
    if (r < 3) inc += 200 + static_cast<Duration>(rng.NextBelow(400));
    ts += inc;
  }
  return out;
}

template <typename Output>
struct ResultSet {
  std::map<std::pair<size_t, Window>, std::vector<Output>> fired;
};

template <typename Agg>
ResultSet<typename Agg::Output> Run(AggTechnique tech, int scenario,
                                    const std::vector<StreamElement>& stream,
                                    Agg agg = Agg()) {
  ResultSet<typename Agg::Output> rs;
  auto aggregator = MakeAggregator<Agg>(tech, std::move(agg));
  for (auto& wf : MakeQueries(scenario)) {
    aggregator->AddQuery(
        std::move(wf),
        [&rs](size_t q, const Window& w, const typename Agg::Output& v) {
          rs.fired[{q, w}].push_back(v);
        });
  }
  for (const StreamElement& e : stream) {
    if constexpr (std::is_same_v<typename Agg::Input, double>) {
      aggregator->OnElement(e.ts, e.value, e.payload);
    } else {
      aggregator->OnElement(e.ts, typename Agg::Input(e.value), e.payload);
    }
  }
  aggregator->OnWatermark(kMaxTimestamp);
  return rs;
}

void ExpectOutputsNear(const std::vector<double>& a,
                       const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-6 * (1.0 + std::abs(a[i]))) << what;
  }
}

void ExpectOutputsNear(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b, const char* what) {
  EXPECT_EQ(a, b) << what;
}

template <typename Agg>
void ExpectEquivalent(AggTechnique tech, int scenario, uint64_t seed) {
  const bool unique_ts = kScenarios[scenario].needs_unique_ts;
  const auto stream = MakeStream(seed, unique_ts);
  const auto expected = Run<Agg>(AggTechnique::kNaive, scenario, stream);
  const auto actual = Run<Agg>(tech, scenario, stream);

  // Identical set of fired (query, window) pairs...
  ASSERT_EQ(expected.fired.size(), actual.fired.size())
      << AggTechniqueToString(tech) << " fired a different window set on "
      << kScenarios[scenario].name;
  auto eit = expected.fired.begin();
  auto ait = actual.fired.begin();
  for (; eit != expected.fired.end(); ++eit, ++ait) {
    ASSERT_EQ(eit->first.first, ait->first.first);
    ASSERT_EQ(eit->first.second, ait->first.second)
        << AggTechniqueToString(tech) << " window mismatch on "
        << kScenarios[scenario].name;
    // ... with matching results.
    ExpectOutputsNear(eit->second, ait->second,
                      kScenarios[scenario].name);
  }
}

struct Param {
  AggTechnique tech;
  int scenario;
};

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  std::string s(AggTechniqueToString(info.param.tech));
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  std::string scen = kScenarios[info.param.scenario].name;
  for (char& c : scen) {
    if (c == '-') c = '_';
  }
  return s + "__" + scen;
}

class EquivalenceTest : public ::testing::TestWithParam<Param> {
 protected:
  bool SkipIfUnsupported() {
    const Param p = GetParam();
    const bool periodic_capable = p.tech == AggTechnique::kEager ||
                                  p.tech == AggTechnique::kPairs ||
                                  p.tech == AggTechnique::kPanes;
    if (periodic_capable && !kScenarios[p.scenario].periodic_only) {
      return true;
    }
    return false;
  }
};

TEST_P(EquivalenceTest, SumMatchesNaive) {
  if (SkipIfUnsupported()) GTEST_SKIP() << "periodic-only technique";
  ExpectEquivalent<SumAgg<double>>(GetParam().tech, GetParam().scenario, 1);
}

TEST_P(EquivalenceTest, CountMatchesNaive) {
  if (SkipIfUnsupported()) GTEST_SKIP() << "periodic-only technique";
  ExpectEquivalent<CountAgg<double>>(GetParam().tech, GetParam().scenario, 2);
}

TEST_P(EquivalenceTest, MaxMatchesNaive) {
  if (SkipIfUnsupported()) GTEST_SKIP() << "periodic-only technique";
  if (GetParam().tech == AggTechnique::kCuttyPrefix) {
    GTEST_SKIP() << "prefix store needs invertible aggregates";
  }
  ExpectEquivalent<MaxAgg<double>>(GetParam().tech, GetParam().scenario, 3);
}

TEST_P(EquivalenceTest, MeanMatchesNaive) {
  if (SkipIfUnsupported()) GTEST_SKIP() << "periodic-only technique";
  ExpectEquivalent<MeanAgg<double>>(GetParam().tech, GetParam().scenario, 4);
}

TEST_P(EquivalenceTest, VarianceMatchesNaive) {
  if (SkipIfUnsupported()) GTEST_SKIP() << "periodic-only technique";
  if (GetParam().tech == AggTechnique::kCuttyPrefix) {
    GTEST_SKIP() << "prefix store needs invertible aggregates";
  }
  ExpectEquivalent<VarianceAgg<double>>(GetParam().tech, GetParam().scenario,
                                        5);
}

std::vector<Param> AllParams() {
  std::vector<Param> out;
  for (AggTechnique tech :
       {AggTechnique::kCutty, AggTechnique::kCuttyLazy,
        AggTechnique::kCuttyPrefix, AggTechnique::kEager, AggTechnique::kPairs,
        AggTechnique::kPanes, AggTechnique::kBInt}) {
    for (int s = 0; s < static_cast<int>(std::size(kScenarios)); ++s) {
      out.push_back(Param{tech, s});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllTechniquesAllWindows, EquivalenceTest,
                         ::testing::ValuesIn(AllParams()), ParamName);

// Cross-seed robustness for the flagship technique.
class CuttySeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CuttySeedTest, MultiQueryMixedWorkload) {
  ExpectEquivalent<SumAgg<double>>(AggTechnique::kCutty, 4, GetParam());
  ExpectEquivalent<VarianceAgg<double>>(AggTechnique::kCutty, 2, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CuttySeedTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace streamline
