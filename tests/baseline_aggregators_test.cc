// Dedicated unit tests of the baseline aggregators (eager, naive) beyond
// the randomized equivalence suite: work accounting, state accounting,
// applicability restrictions.

#include <gtest/gtest.h>

#include "agg/techniques.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

TEST(EagerAggregatorTest, PartialUpdatesEqualOverlapPerRecord) {
  EagerAggregator<SumAgg<double>> agg;
  agg.AddQuery(std::make_unique<SlidingWindowFn>(80, 10), nullptr);
  for (Timestamp t = 100; t < 1100; ++t) agg.OnElement(t, 1.0);
  // Steady state: every record updates range/slide = 8 windows.
  EXPECT_NEAR(static_cast<double>(agg.stats().partial_updates) /
                  static_cast<double>(agg.stats().elements),
              8.0, 0.1);
}

TEST(EagerAggregatorTest, PeakStateEqualsOpenWindows) {
  EagerAggregator<SumAgg<double>> agg;
  agg.AddQuery(std::make_unique<SlidingWindowFn>(100, 10), nullptr);
  for (Timestamp t = 0; t < 5000; ++t) agg.OnElement(t, 1.0);
  EXPECT_LE(agg.stats().peak_stored, 11u);  // ~range/slide open windows
  EXPECT_GE(agg.stats().peak_stored, 9u);
}

TEST(EagerAggregatorTest, RejectsNonPeriodicWindows) {
  EagerAggregator<SumAgg<double>> agg;
  EXPECT_DEATH(
      agg.AddQuery(std::make_unique<SessionWindowFn>(10), nullptr),
      "periodic windows only");
}

TEST(EagerAggregatorTest, FiresOnWatermarkOnly) {
  EagerAggregator<SumAgg<double>> agg;
  std::vector<Window> fired;
  agg.AddQuery(std::make_unique<TumblingWindowFn>(10),
               [&fired](size_t, const Window& w, const double&) {
                 fired.push_back(w);
               });
  for (Timestamp t = 0; t < 10; ++t) agg.OnElement(t, 1.0);
  EXPECT_TRUE(fired.empty());
  agg.OnWatermark(10);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], (Window{0, 10}));
}

TEST(NaiveAggregatorTest, BufferEvictionBoundsMemory) {
  NaiveBufferAggregator<SumAgg<double>> agg;
  agg.AddQuery(std::make_unique<SlidingWindowFn>(100, 10), nullptr);
  for (Timestamp t = 0; t < 50000; ++t) agg.OnElement(t, 1.0);
  // Buffer holds ~range of raw tuples plus an eviction-period lag.
  EXPECT_LE(agg.buffered(), 100u + 128u);
  EXPECT_LE(agg.stats().peak_stored, 100u + 128u);
}

TEST(NaiveAggregatorTest, RecomputeCostScalesWithWindowSize) {
  auto run = [](Duration range) {
    NaiveBufferAggregator<SumAgg<double>> agg;
    agg.AddQuery(std::make_unique<SlidingWindowFn>(range, 10), nullptr);
    for (Timestamp t = 0; t < 5000; ++t) agg.OnElement(t, 1.0);
    return agg.stats().OpsPerRecord();
  };
  const double small = run(50);
  const double large = run(500);
  EXPECT_GT(large, small * 5);
}

TEST(NaiveAggregatorTest, SupportsEveryWindowKind) {
  NaiveBufferAggregator<SumAgg<double>> agg;
  int fires = 0;
  auto cb = [&fires](size_t, const Window&, const double&) { ++fires; };
  agg.AddQuery(std::make_unique<SessionWindowFn>(5), cb);
  agg.AddQuery(std::make_unique<CountWindowFn>(3), cb);
  agg.AddQuery(std::make_unique<PunctuationWindowFn>(
                   [](Timestamp, const Value& v) {
                     return !v.is_null() && v.AsBool();
                   }),
               cb);
  for (Timestamp t = 0; t < 30; ++t) {
    agg.OnElement(t * 2, 1.0, Value(t % 10 == 0));
  }
  agg.OnWatermark(kMaxTimestamp);
  EXPECT_GT(fires, 10);
}

TEST(TechniqueFactoryTest, NamesMatchEnum) {
  for (AggTechnique t :
       {AggTechnique::kCutty, AggTechnique::kCuttyLazy,
        AggTechnique::kCuttyPrefix, AggTechnique::kEager,
        AggTechnique::kNaive, AggTechnique::kPairs, AggTechnique::kPanes,
        AggTechnique::kBInt}) {
    auto agg = MakeAggregator<SumAgg<double>>(t);
    ASSERT_NE(agg, nullptr);
    EXPECT_FALSE(agg->name().empty());
  }
}

TEST(SlicingAblationTest, FastPathOffStillCorrect) {
  typename SlicingAggregator<SumAgg<double>>::Options opt;
  opt.disable_wakeup_fastpath = true;
  SlicingAggregator<SumAgg<double>> slow(SumAgg<double>(), opt);
  SlicingAggregator<SumAgg<double>> fast;
  std::vector<double> slow_out;
  std::vector<double> fast_out;
  slow.AddQuery(std::make_unique<SlidingWindowFn>(70, 10),
                [&](size_t, const Window&, const double& v) {
                  slow_out.push_back(v);
                });
  fast.AddQuery(std::make_unique<SlidingWindowFn>(70, 10),
                [&](size_t, const Window&, const double& v) {
                  fast_out.push_back(v);
                });
  for (Timestamp t = 0; t < 2000; ++t) {
    slow.OnElement(t, static_cast<double>(t % 13));
    fast.OnElement(t, static_cast<double>(t % 13));
  }
  slow.OnWatermark(kMaxTimestamp);
  fast.OnWatermark(kMaxTimestamp);
  EXPECT_EQ(slow_out, fast_out);
  ASSERT_FALSE(fast_out.empty());
}

}  // namespace
}  // namespace streamline
