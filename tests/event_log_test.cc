#include "dataflow/event_log.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "api/datastream.h"

namespace streamline {
namespace {

Record Ev(Timestamp ts, int64_t key, double v) {
  return MakeRecord(ts, Value(key), Value(v));
}

TEST(EventLogTest, AppendRead) {
  EventLog log(2);
  EXPECT_EQ(log.Append(0, Ev(1, 0, 1.0)), 0u);
  EXPECT_EQ(log.Append(0, Ev(2, 0, 2.0)), 1u);
  EXPECT_EQ(log.Append(1, Ev(1, 1, 3.0)), 0u);
  EXPECT_EQ(log.EndOffset(0), 2u);
  EXPECT_EQ(log.EndOffset(1), 1u);
  ASSERT_TRUE(log.Read(0, 1).ok());
  EXPECT_DOUBLE_EQ(log.Read(0, 1)->field(1).AsDouble(), 2.0);
  EXPECT_FALSE(log.Read(0, 2).ok());
}

TEST(EventLogTest, AppendByKeyIsDeterministic) {
  EventLog log(4);
  for (int i = 0; i < 100; ++i) {
    log.AppendByKey(0, Ev(i, i % 10, 0));
  }
  // Same key always lands in the same partition.
  std::map<int64_t, int> partition_of;
  for (int p = 0; p < 4; ++p) {
    for (uint64_t off = 0; off < log.EndOffset(p); ++off) {
      const int64_t key = log.Read(p, off)->field(0).AsInt64();
      auto [it, inserted] = partition_of.emplace(key, p);
      if (!inserted) EXPECT_EQ(it->second, p) << "key " << key;
    }
  }
  EXPECT_EQ(partition_of.size(), 10u);
}

TEST(EventLogTest, BoundedConsumptionThroughJob) {
  auto log = std::make_shared<EventLog>(3);
  for (int i = 0; i < 3000; ++i) {
    log->AppendByKey(0, Ev(i, i % 7, 1.0));
  }
  log->Close();
  Environment env;
  auto sink = env.FromSource("log", LogSource::Factory(log), 3).Collect();
  ASSERT_TRUE(env.Execute().ok());
  EXPECT_EQ(sink->size(), 3000u);
}

TEST(EventLogTest, LiveProducerThenClose) {
  auto log = std::make_shared<EventLog>(2);
  Environment env;
  auto sink = env.FromSource("log", LogSource::Factory(log), 1).Collect();
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  // Produce while the job is running.
  std::thread producer([&log] {
    for (int i = 0; i < 1000; ++i) {
      log->Append(i % 2, Ev(i, i % 3, 1.0));
      if (i % 100 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    log->Close();
  });
  producer.join();
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  EXPECT_EQ(sink->size(), 1000u);
}

TEST(EventLogTest, WindowedJobOverPartitionedLog) {
  // Cross-partition skew + per-partition watermarks: the windowed counts
  // must still be exact.
  auto log = std::make_shared<EventLog>(4);
  for (int i = 0; i < 2000; ++i) {
    log->AppendByKey(0, Ev(i, i % 5, 1.0));
  }
  log->Close();
  Environment env(2);
  auto sink = env.FromSource("log", LogSource::Factory(log, 16), 2)
                  .KeyBy(0)
                  .Window(std::make_shared<TumblingWindowFn>(400))
                  .Aggregate(DynAggKind::kCount, 1)
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  int64_t total = 0;
  for (const Record& r : sink->records()) total += r.field(4).AsInt64();
  EXPECT_EQ(total, 2000);
}

TEST(EventLogTest, ExactlyOnceRestoreFromOffsets) {
  auto log = std::make_shared<EventLog>(2);
  auto reduce = [](const Record& acc, const Record& in) {
    Record out = acc;
    out.fields[1] = Value(acc.field(1).AsDouble() + in.field(1).AsDouble());
    return out;
  };
  auto build = [&](Environment* env) {
    return env->FromSource("log", LogSource::Factory(log), 2)
        .KeyBy(0)
        .Reduce(reduce)
        .Collect();
  };

  // Run 1: consume the first 800 records, checkpoint while the source
  // idles on the open log (barriers are serviced via HandleIdle), then let
  // the rest of the log arrive and run to completion.
  auto store = std::make_shared<SnapshotStore>();
  uint64_t cp = 0;
  {
    for (int i = 0; i < 800; ++i) log->Append(i % 2, Ev(i, i % 3, 1.0));
    Environment env;
    auto sink = build(&env);
    JobOptions opts;
    opts.snapshot_store = store;
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE((*job)->Start().ok());
    while (sink->size() < 800) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    cp = (*job)->TriggerCheckpoint();  // source is idle-waiting here
    ASSERT_TRUE((*job)->AwaitCheckpoint(cp, 10.0));
    for (int i = 800; i < 1600; ++i) log->Append(i % 2, Ev(i, i % 3, 1.0));
    log->Close();
    ASSERT_TRUE((*job)->AwaitCompletion().ok());
  }

  // Reference: full run over the (now complete) log.
  std::map<int64_t, double> reference;
  {
    Environment env;
    auto sink = build(&env);
    ASSERT_TRUE(env.Execute().ok());
    for (const Record& r : sink->records()) {
      reference[r.field(0).AsInt64()] = r.field(1).AsDouble();
    }
  }

  // Run 2: restore; the source resumes at offset 800 per partition and the
  // reduce state continues from the snapshot -- final state matches the
  // uninterrupted reference exactly.
  {
    Environment env;
    auto sink = build(&env);
    JobOptions opts;
    opts.snapshot_store = store;
    opts.restore_from_checkpoint = cp;
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok()) << job.status().ToString();
    ASSERT_TRUE((*job)->Run().ok());
    EXPECT_EQ(sink->size(), 800u);  // only the post-checkpoint records
    std::map<int64_t, double> final_state;
    for (const Record& r : sink->records()) {
      final_state[r.field(0).AsInt64()] = r.field(1).AsDouble();
    }
    EXPECT_EQ(final_state, reference);
  }
}

}  // namespace
}  // namespace streamline
