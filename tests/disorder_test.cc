// Out-of-order ingestion end to end: a DisorderedSource shuffles records
// within a bounded window while emitting conservative watermarks; the
// windowed operator's reorder buffer must still produce exact results.
// Also unit tests for DeltaWindowFn, the content-driven UDW.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "agg/naive_aggregator.h"
#include "agg/slicing_aggregator.h"
#include "api/datastream.h"
#include "common/random.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

TEST(DisorderedSourceTest, EmitsAllRecordsWithSafeWatermarks) {
  Environment env;
  // Track the max watermark seen relative to records that follow it.
  auto src = env.FromSource(
      "disordered",
      [](int, int) -> std::unique_ptr<SourceFunction> {
        return std::make_unique<DisorderedSource>(
            [](uint64_t seq) -> std::optional<Record> {
              if (seq >= 2000) return std::nullopt;
              return MakeRecord(static_cast<Timestamp>(seq),
                                Value(static_cast<int64_t>(seq)));
            },
            /*disorder_window=*/64, /*watermark_every=*/16);
      },
      1);
  auto sink = src.Collect();
  ASSERT_TRUE(env.Execute().ok());
  const auto records = sink->records();
  ASSERT_EQ(records.size(), 2000u);
  // Out of order, but every record present exactly once.
  std::set<int64_t> seen;
  bool out_of_order = false;
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(seen.insert(records[i].field(0).AsInt64()).second);
    if (i > 0 && records[i].timestamp < records[i - 1].timestamp) {
      out_of_order = true;
    }
  }
  EXPECT_TRUE(out_of_order) << "source did not actually shuffle";
}

TEST(DisorderedSourceTest, WindowedCountsExactDespiteDisorder) {
  Environment env;
  auto sink =
      env.FromSource(
             "disordered",
             [](int, int) -> std::unique_ptr<SourceFunction> {
               return std::make_unique<DisorderedSource>(
                   [](uint64_t seq) -> std::optional<Record> {
                     if (seq >= 5000) return std::nullopt;
                     return MakeRecord(static_cast<Timestamp>(seq),
                                       Value(static_cast<int64_t>(seq % 3)),
                                       Value(1.0));
                   },
                   /*disorder_window=*/128, /*watermark_every=*/32);
             },
             1)
          .KeyBy(0)
          .Window(std::make_shared<TumblingWindowFn>(500))
          .Aggregate(DynAggKind::kCount, 1)
          .Collect();
  ASSERT_TRUE(env.Execute().ok());
  int64_t total = 0;
  for (const Record& r : sink->records()) {
    total += r.field(4).AsInt64();
  }
  // The reorder buffer sorts within the (truthful) watermark bound, so no
  // record is lost or double counted.
  EXPECT_EQ(total, 5000);
}

TEST(DeltaWindowFnTest, ClosesOnValueDrift) {
  DeltaWindowFn fn(10.0);
  WindowEvents events;
  // Values: 0, 3, 5 (within delta), 12 (drift!), 14, 30 (drift).
  const std::pair<Timestamp, double> stream[] = {
      {1, 0.0}, {2, 3.0}, {3, 5.0}, {4, 12.0}, {5, 14.0}, {6, 30.0}};
  for (const auto& [ts, v] : stream) {
    fn.OnElement(ts, Value(v), &events);
  }
  fn.OnWatermark(kMaxTimestamp, &events);
  std::vector<Window> ends;
  for (const auto& e : events) {
    if (e.kind == WindowEvent::Kind::kEnd) ends.push_back(e.window);
  }
  ASSERT_EQ(ends.size(), 3u);
  EXPECT_EQ(ends[0], (Window{1, 4}));  // anchored at 0, closed by 12
  EXPECT_EQ(ends[1], (Window{4, 6}));  // anchored at 12, closed by 30
  EXPECT_EQ(ends[2], (Window{6, 7}));  // flushed at end of stream
}

TEST(DeltaWindowFnTest, NegativeDriftAlsoCloses) {
  DeltaWindowFn fn(5.0);
  WindowEvents events;
  fn.OnElement(1, Value(10.0), &events);
  fn.OnElement(2, Value(4.0), &events);  // drift of -6
  std::vector<Window> ends;
  for (const auto& e : events) {
    if (e.kind == WindowEvent::Kind::kEnd) ends.push_back(e.window);
  }
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], (Window{1, 2}));
}

TEST(DeltaWindowFnTest, SharedAggregationMatchesNaive) {
  auto run = [](auto&& aggregator) {
    std::vector<std::pair<Window, double>> out;
    aggregator.AddQuery(std::make_unique<DeltaWindowFn>(7.5),
                        [&out](size_t, const Window& w, const double& v) {
                          out.emplace_back(w, v);
                        });
    Rng rng(5);
    double v = 0;
    for (Timestamp t = 0; t < 3000; ++t) {
      v += rng.NextGaussian();
      aggregator.OnElement(t, v, Value(v));
    }
    aggregator.OnWatermark(kMaxTimestamp);
    return out;
  };
  const auto shared = run(SlicingAggregator<SumAgg<double>>());
  const auto naive = run(NaiveBufferAggregator<SumAgg<double>>());
  ASSERT_EQ(shared.size(), naive.size());
  ASSERT_GT(shared.size(), 10u);  // random walk drifts often
  for (size_t i = 0; i < shared.size(); ++i) {
    EXPECT_EQ(shared[i].first, naive[i].first);
    EXPECT_NEAR(shared[i].second, naive[i].second, 1e-9);
  }
}

TEST(DeltaWindowFnTest, SnapshotRoundTrip) {
  DeltaWindowFn fn(3.0);
  WindowEvents events;
  fn.OnElement(1, Value(1.0), &events);
  fn.OnElement(2, Value(2.0), &events);
  BinaryWriter w;
  fn.SnapshotState(&w);
  DeltaWindowFn restored(3.0);
  BinaryReader r(w.buffer());
  ASSERT_TRUE(restored.RestoreState(&r).ok());
  // Same drift behaviour after restore.
  WindowEvents a;
  WindowEvents b;
  fn.OnElement(3, Value(4.5), &a);        // drift vs anchor 1.0
  restored.OnElement(3, Value(4.5), &b);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].window, b[0].window);
}

}  // namespace
}  // namespace streamline
