// Thread-safety stress of the VizServer: concurrent stream ingestion and
// client interactions (connect/zoom/pan/resize/refresh/disconnect) must
// neither crash nor corrupt transfer accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "viz/server.h"

namespace streamline {
namespace {

TEST(VizConcurrencyTest, IngestAndInteractConcurrently) {
  VizServer server(100, 5);
  std::atomic<bool> stop{false};

  std::thread ingest([&] {
    Timestamp t = 0;
    Rng rng(1);
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 100; ++i) {
        server.OnElement(t++, rng.NextDouble(-10, 10));
      }
      server.OnWatermark(t);
    }
  });

  std::vector<std::thread> clients;
  std::atomic<uint64_t> interactions{0};
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(100 + c);
      for (int round = 0; round < 200; ++round) {
        const int id = server.Connect(
            Viewport{0, 10'000, 200, 80, rng.NextBool(0.5)});
        for (int op = 0; op < 5; ++op) {
          switch (rng.NextBelow(4)) {
            case 0:
              server.Zoom(id, rng.NextDouble(0.3, 2.0));
              break;
            case 1:
              server.Pan(id, static_cast<Duration>(rng.NextBelow(2000)));
              break;
            case 2:
              server.Resize(id, 50 + static_cast<int>(rng.NextBelow(400)));
              break;
            default:
              server.Refresh(id);
          }
          ++interactions;
        }
        const auto stats = server.transfer_stats(id);
        EXPECT_EQ(stats.bytes, stats.points * 16);
        EXPECT_GE(stats.refreshes, 5u);
        server.Disconnect(id);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  ingest.join();

  EXPECT_EQ(interactions.load(), 3u * 200 * 5);
  EXPECT_GT(server.ingested(), 0u);
}

TEST(VizConcurrencyTest, ManyFollowersUnderLoad) {
  VizServer server(50, 4);
  std::vector<int> ids;
  for (int c = 0; c < 16; ++c) {
    ids.push_back(server.Connect(Viewport{0, 5'000, 100, 50, true}));
  }
  std::thread ingest([&] {
    for (Timestamp t = 0; t < 100'000; ++t) {
      server.OnElement(t, static_cast<double>(t % 101));
      if (t % 50 == 49) server.OnWatermark(t + 1);
    }
  });
  ingest.join();
  server.Flush();
  for (int id : ids) {
    const auto stats = server.transfer_stats(id);
    // Follow-mode push volume is bounded by event-time columns, not rate.
    EXPECT_GT(stats.points, 0u);
    EXPECT_LE(stats.points, 4u * (100'000 / 50) + 4u * 100);
  }
}

}  // namespace
}  // namespace streamline
