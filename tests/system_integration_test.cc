// Capstone system test: the full STREAMLINE story in one job.
//
//   clickstream (replayable partitioned log)
//     -> keyed session windows (multi-query shared slicing)   [Cutty]
//     -> revenue dashboard via M4 pyramid                     [I2]
//   with a mid-stream checkpoint, a simulated crash, and a restore that
//   must reproduce the uninterrupted run's results exactly.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "api/datastream.h"
#include "dataflow/event_log.h"
#include "viz/server.h"
#include "workload/clickstream.h"

namespace streamline {
namespace {

constexpr Duration kSessionGap = 30'000;
constexpr uint64_t kEvents = 40'000;

// Appends events [from, to) of the deterministic clickstream to `log`.
void AppendEvents(EventLog* log, uint64_t from, uint64_t to) {
  ClickstreamGenerator::Options opts;
  opts.num_users = 64;
  opts.session_gap_ms = kSessionGap;
  opts.max_event_gap_ms = 8'000;
  ClickstreamGenerator gen(opts, 2026);
  for (uint64_t i = 0; i < to; ++i) {
    Record r = gen.Next().ToRecord();
    if (i < from) continue;
    // Partition by global order (per-partition timestamps stay ordered).
    log->Append(static_cast<int>(i % 2), std::move(r));
  }
}

std::shared_ptr<EventLog> BuildLog() {
  auto log = std::make_shared<EventLog>(2);
  AppendEvents(log.get(), 0, kEvents);
  log->Close();
  return log;
}

using SessionStats = std::map<std::tuple<int64_t, Timestamp, Timestamp,
                                         int64_t>,
                              double>;

struct RunArtifacts {
  SessionStats sessions;
  std::shared_ptr<CollectSink> sink;
};

// Pipeline: log -> keyed by user -> {session count, session revenue}
// shared windows -> collect.
std::shared_ptr<CollectSink> Build(Environment* env,
                                   const std::shared_ptr<EventLog>& log) {
  return env
      ->FromSource("clicks", LogSource::Factory(log, /*watermark_every=*/32),
                   2)
      .KeyBy(0)
      .Window({std::make_shared<SessionWindowFn>(kSessionGap),
               std::make_shared<SessionWindowFn>(kSessionGap)})
      .Aggregate(DynAggKind::kSum, /*value_field=*/3)
      // Funnel to one sink subtask: exactly-once truncation via
      // CollectSink::BarrierOffset needs a single output sequence.
      .Rebalance(1)
      .Collect();
}

SessionStats Parse(const std::vector<Record>& records) {
  SessionStats out;
  for (const Record& r : records) {
    out[{r.field(0).AsInt64(), r.field(1).AsInt64(), r.field(2).AsInt64(),
         r.field(3).AsInt64()}] = r.field(4).AsDouble();
  }
  return out;
}

TEST(SystemIntegrationTest, FullStoryWithCrashAndRestore) {
  // Run 1 first: the log stays OPEN across the checkpoint so the sources
  // are guaranteed alive to process the barrier (idle sources service
  // barriers via HandleIdle); then the rest of the stream arrives and the
  // job "crashes" (cancel).
  auto log = std::make_shared<EventLog>(2);
  auto store = std::make_shared<SnapshotStore>();
  uint64_t cp = 0;
  SessionStats first_results;
  {
    AppendEvents(log.get(), 0, kEvents / 2);
    Environment env(2);
    auto sink = Build(&env, log);
    JobOptions opts;
    opts.snapshot_store = store;
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE((*job)->Start().ok());
    while (sink->size() < 50) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    cp = (*job)->TriggerCheckpoint();
    ASSERT_TRUE((*job)->AwaitCheckpoint(cp, 20.0));
    AppendEvents(log.get(), kEvents / 2, kEvents);
    log->Close();
    (*job)->Cancel();
    ASSERT_TRUE((*job)->AwaitCompletion().ok());
    // Keep only pre-barrier output (exactly-once truncation).
    auto all = sink->records();
    const int64_t offset = sink->BarrierOffset(cp);
    ASSERT_GE(offset, 0);
    all.resize(static_cast<size_t>(offset));
    first_results = Parse(all);
  }

  // Reference: uninterrupted run over the (now complete) log.
  SessionStats reference;
  {
    Environment env(2);
    auto sink = Build(&env, log);
    ASSERT_TRUE(env.Execute().ok());
    reference = Parse(sink->records());
    ASSERT_GT(reference.size(), 100u);
  }

  // Run 2: restore and finish; feed the revenue dashboard as results fire.
  VizServer dashboard(/*base_column_width=*/60'000, /*levels=*/4);
  const int screen =
      dashboard.Connect(Viewport{0, 3'600'000, 600, 150, false});
  SessionStats combined = first_results;
  {
    Environment env(2);
    auto sink = Build(&env, log);
    JobOptions opts;
    opts.snapshot_store = store;
    opts.restore_from_checkpoint = cp;
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok()) << job.status().ToString();
    ASSERT_TRUE((*job)->Run().ok());
    for (const auto& [key, revenue] : Parse(sink->records())) {
      // A session may be re-emitted after restore; values must agree.
      auto it = combined.find(key);
      if (it != combined.end()) {
        EXPECT_DOUBLE_EQ(it->second, revenue);
      }
      combined[key] = revenue;
    }
    // Dashboard ingestion: query-0 session revenue over time.
    for (const Record& r : sink->records()) {
      if (r.field(3).AsInt64() != 0) continue;
      dashboard.OnElement(r.timestamp, r.field(4).AsDouble());
    }
    dashboard.Flush();
  }

  // Exactly-once: crash + restore converges to the uninterrupted result.
  for (const auto& [key, v] : reference) {
    auto it = combined.find(key);
    if (it == combined.end()) {
      ADD_FAILURE() << "missing session: user=" << std::get<0>(key) << " ["
                    << std::get<1>(key) << "," << std::get<2>(key)
                    << ") q=" << std::get<3>(key) << " revenue=" << v;
    } else if (it->second != v) {
      ADD_FAILURE() << "revenue mismatch: user=" << std::get<0>(key)
                    << " got " << it->second << " want " << v;
    }
  }
  for (const auto& [key, v] : combined) {
    if (!reference.count(key)) {
      ADD_FAILURE() << "extra session: user=" << std::get<0>(key) << " ["
                    << std::get<1>(key) << "," << std::get<2>(key)
                    << ") q=" << std::get<3>(key) << " revenue=" << v;
    }
  }

  // The dashboard transfers a bounded view regardless of session count.
  const auto pts = dashboard.Refresh(screen);
  EXPECT_LE(pts.size(), 4u * 600);
  EXPECT_GT(dashboard.transfer_stats(screen).bytes, 0u);
}

TEST(SystemIntegrationTest, SessionizationMatchesGeneratorGroundTruth) {
  // The clickstream generator guarantees >= kSessionGap silence between a
  // user's sessions and < gap inside them, so session windows must recover
  // the generated sessions exactly: total events across sessions == total
  // events per user.
  const auto log = BuildLog();
  Environment env(2);
  auto sink =
      env.FromSource("clicks", LogSource::Factory(log, 32), 2)
          .KeyBy(0)
          .Window(std::make_shared<SessionWindowFn>(kSessionGap))
          .Aggregate(DynAggKind::kCount, 1)
          .Collect();
  ASSERT_TRUE(env.Execute().ok());

  std::map<int64_t, int64_t> events_per_user;
  for (const Record& r : sink->records()) {
    events_per_user[r.field(0).AsInt64()] += r.field(4).AsInt64();
  }
  std::map<int64_t, int64_t> truth;
  for (int p = 0; p < log->num_partitions(); ++p) {
    for (uint64_t off = 0; off < log->EndOffset(p); ++off) {
      truth[log->Read(p, off)->field(0).AsInt64()]++;
    }
  }
  EXPECT_EQ(events_per_user, truth);
}

}  // namespace
}  // namespace streamline
