#include "agg/reordering_aggregator.h"

#include <gtest/gtest.h>

#include "agg/slicing_aggregator.h"
#include "common/random.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

using Result = std::pair<Window, double>;

std::unique_ptr<ReorderingAggregator<SumAgg<double>>> MakeReordering(
    std::vector<Result>* out) {
  auto inner = std::make_unique<SlicingAggregator<SumAgg<double>>>();
  auto reorder = std::make_unique<ReorderingAggregator<SumAgg<double>>>(
      std::move(inner));
  reorder->AddQuery(std::make_unique<TumblingWindowFn>(100),
                    [out](size_t, const Window& w, const double& v) {
                      out->emplace_back(w, v);
                    });
  return reorder;
}

TEST(ReorderingAggregatorTest, ShuffledStreamMatchesOrderedStream) {
  // Ordered reference.
  std::vector<Result> expect;
  {
    auto agg = MakeReordering(&expect);
    for (Timestamp t = 0; t < 1000; ++t) {
      agg->OnElement(t, static_cast<double>(t % 7));
      if (t % 10 == 9) agg->OnWatermark(t + 1);
    }
    agg->OnWatermark(kMaxTimestamp);
  }
  // Shuffle within windows of 50 while keeping truthful watermarks.
  std::vector<Result> got;
  {
    auto agg = MakeReordering(&got);
    Rng rng(5);
    std::vector<Timestamp> buffer;
    Timestamp next = 0;
    auto flush_one = [&]() {
      const size_t i = rng.NextBelow(buffer.size());
      std::swap(buffer[i], buffer.back());
      const Timestamp t = buffer.back();
      buffer.pop_back();
      agg->OnElement(t, static_cast<double>(t % 7));
    };
    while (next < 1000 || !buffer.empty()) {
      if (next < 1000 && buffer.size() < 50) {
        buffer.push_back(next++);
        continue;
      }
      flush_one();
      // Watermark = min buffered (the safe bound).
      Timestamp wm = next >= 1000 ? kMaxTimestamp : *std::min_element(
          buffer.begin(), buffer.end());
      if (!buffer.empty() && wm != kMaxTimestamp) agg->OnWatermark(wm);
    }
    agg->OnWatermark(kMaxTimestamp);
    EXPECT_EQ(agg->dropped_late(), 0u);
  }
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, expect[i].first);
    EXPECT_NEAR(got[i].second, expect[i].second, 1e-9);
  }
}

TEST(ReorderingAggregatorTest, LateElementsDroppedAndCounted) {
  std::vector<Result> out;
  auto agg = MakeReordering(&out);
  agg->OnElement(10, 1.0);
  agg->OnWatermark(50);
  agg->OnElement(20, 1.0);  // late
  agg->OnElement(60, 1.0);
  agg->OnWatermark(kMaxTimestamp);
  EXPECT_EQ(agg->dropped_late(), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].second, 2.0);  // the late element is excluded
}

TEST(ReorderingAggregatorTest, BufferDrainsOnWatermark) {
  std::vector<Result> out;
  auto agg = MakeReordering(&out);
  for (Timestamp t = 0; t < 100; ++t) agg->OnElement(t, 1.0);
  EXPECT_EQ(agg->buffered(), 100u);
  agg->OnWatermark(50);
  EXPECT_EQ(agg->buffered(), 50u);
  agg->OnWatermark(kMaxTimestamp);
  EXPECT_EQ(agg->buffered(), 0u);
}

TEST(ReorderingAggregatorTest, StatsDelegateToInner) {
  std::vector<Result> out;
  auto agg = MakeReordering(&out);
  for (Timestamp t = 0; t < 500; ++t) agg->OnElement(t, 1.0);
  agg->OnWatermark(kMaxTimestamp);
  EXPECT_EQ(agg->stats().elements, 500u);
  EXPECT_EQ(agg->stats().partial_updates, 500u);
  EXPECT_EQ(agg->name(), "reordering(cutty)");
}

}  // namespace
}  // namespace streamline
