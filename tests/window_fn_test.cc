#include "window/window_fn.h"

#include <gtest/gtest.h>

#include <vector>

namespace streamline {
namespace {

// Drives a WindowFunction over in-order timestamps and records its events.
struct Driver {
  explicit Driver(std::unique_ptr<WindowFunction> fn) : fn(std::move(fn)) {}

  void Element(Timestamp ts, const Value& payload = Value()) {
    fn->OnElement(ts, payload, &events);
    fn->AfterElement(ts, payload, &events);
  }

  void Watermark(Timestamp wm) { fn->OnWatermark(wm, &events); }

  std::vector<Timestamp> Begins() const {
    std::vector<Timestamp> out;
    for (const auto& e : events) {
      if (e.kind == WindowEvent::Kind::kBegin) out.push_back(e.at);
    }
    return out;
  }

  std::vector<Window> Ends() const {
    std::vector<Window> out;
    for (const auto& e : events) {
      if (e.kind == WindowEvent::Kind::kEnd) out.push_back(e.window);
    }
    return out;
  }

  std::unique_ptr<WindowFunction> fn;
  WindowEvents events;
};

TEST(TumblingWindowFnTest, BeginsAndFires) {
  Driver d(std::make_unique<TumblingWindowFn>(10));
  d.Element(0);
  d.Element(5);
  d.Element(12);
  d.Element(25);
  d.Watermark(kMaxTimestamp);
  EXPECT_EQ(d.Begins(), (std::vector<Timestamp>{0, 10, 20}));
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{0, 10}, {10, 20}, {20, 30}}));
}

TEST(TumblingWindowFnTest, FirstElementNotAtOrigin) {
  Driver d(std::make_unique<TumblingWindowFn>(10));
  d.Element(7);
  EXPECT_EQ(d.Begins(), (std::vector<Timestamp>{0}));
  EXPECT_TRUE(d.Ends().empty());
}

TEST(TumblingWindowFnTest, EmptyWindowsAreSkipped) {
  Driver d(std::make_unique<TumblingWindowFn>(10));
  d.Element(0);
  d.Element(100);  // 9 empty windows in between
  d.Watermark(kMaxTimestamp);
  // Only the two non-empty windows fire.
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{0, 10}, {100, 110}}));
  EXPECT_EQ(d.Begins(), (std::vector<Timestamp>{0, 100}));
}

TEST(TumblingWindowFnTest, EndEmittedBeforeBeginOnBoundaryElement) {
  Driver d(std::make_unique<TumblingWindowFn>(10));
  d.Element(3);
  d.events.clear();
  d.Element(10);
  ASSERT_EQ(d.events.size(), 2u);
  EXPECT_EQ(d.events[0].kind, WindowEvent::Kind::kEnd);
  EXPECT_EQ(d.events[0].window, (Window{0, 10}));
  EXPECT_EQ(d.events[1].kind, WindowEvent::Kind::kBegin);
  EXPECT_EQ(d.events[1].at, 10);
}

TEST(SlidingWindowFnTest, OverlappingBegins) {
  Driver d(std::make_unique<SlidingWindowFn>(10, 5));
  d.Element(0);
  // Windows [-5, 5) and [0, 10) both contain ts=0.
  EXPECT_EQ(d.Begins(), (std::vector<Timestamp>{-5, 0}));
}

TEST(SlidingWindowFnTest, FiresEveryslide) {
  Driver d(std::make_unique<SlidingWindowFn>(10, 5));
  for (Timestamp t = 0; t <= 20; ++t) d.Element(t);
  d.Watermark(kMaxTimestamp);
  const std::vector<Window> ends = d.Ends();
  ASSERT_GE(ends.size(), 4u);
  EXPECT_EQ(ends[0], (Window{-5, 5}));
  EXPECT_EQ(ends[1], (Window{0, 10}));
  EXPECT_EQ(ends[2], (Window{5, 15}));
  EXPECT_EQ(ends[3], (Window{10, 20}));
  // Final watermark flushes the still-open windows [15, 25) and [20, 30).
  EXPECT_EQ(ends.back(), (Window{20, 30}));
}

TEST(SlidingWindowFnTest, WatermarkFiresWithoutNewElements) {
  Driver d(std::make_unique<SlidingWindowFn>(10, 5));
  d.Element(3);
  d.events.clear();
  d.Watermark(5);
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{-5, 5}}));
  d.events.clear();
  d.Watermark(10);
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{0, 10}}));
}

TEST(SlidingWindowFnTest, SlideLargerThanRangeGapsAllowed) {
  // Sampling windows [0,2), [10,12), ... -- elements between windows belong
  // to no window.
  Driver d(std::make_unique<SlidingWindowFn>(2, 10));
  d.Element(0);
  d.Element(5);   // in no window
  d.Element(11);  // in [10, 12)
  d.Watermark(kMaxTimestamp);
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{0, 2}, {10, 12}}));
}

TEST(SlidingWindowFnTest, OldestNeededBeginTracksUnfiredWindow) {
  auto fn = std::make_unique<SlidingWindowFn>(10, 5);
  SlidingWindowFn* raw = fn.get();
  Driver d(std::move(fn));
  EXPECT_EQ(raw->OldestNeededBegin(), kMaxTimestamp);
  d.Element(0);
  EXPECT_EQ(raw->OldestNeededBegin(), -5);
  d.Element(7);  // fires [-5, 5)
  EXPECT_EQ(raw->OldestNeededBegin(), 0);
}

TEST(SlidingWindowFnTest, CustomOrigin) {
  Driver d(std::make_unique<SlidingWindowFn>(10, 10, 3));
  d.Element(3);
  d.Element(14);
  EXPECT_EQ(d.Begins(), (std::vector<Timestamp>{3, 13}));
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{3, 13}}));
}

TEST(SessionWindowFnTest, GapSplitsSessions) {
  Driver d(std::make_unique<SessionWindowFn>(10));
  d.Element(0);
  d.Element(5);
  d.Element(20);  // 20 - 5 > 10: closes [0, 15), opens at 20
  d.Watermark(kMaxTimestamp);
  EXPECT_EQ(d.Begins(), (std::vector<Timestamp>{0, 20}));
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{0, 15}, {20, 30}}));
}

TEST(SessionWindowFnTest, ExactGapDoesNotSplit) {
  Driver d(std::make_unique<SessionWindowFn>(10));
  d.Element(0);
  d.Element(10);  // exactly gap apart: same session
  d.Watermark(kMaxTimestamp);
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{0, 20}}));
}

TEST(SessionWindowFnTest, WatermarkClosesIdleSession) {
  Driver d(std::make_unique<SessionWindowFn>(10));
  d.Element(0);
  d.events.clear();
  d.Watermark(5);  // not idle long enough
  EXPECT_TRUE(d.Ends().empty());
  d.Watermark(11);  // 11 - 0 > 10
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{0, 10}}));
  // A second watermark must not re-fire.
  d.events.clear();
  d.Watermark(100);
  EXPECT_TRUE(d.Ends().empty());
}

TEST(SessionWindowFnTest, OldestNeededBegin) {
  auto fn = std::make_unique<SessionWindowFn>(10);
  SessionWindowFn* raw = fn.get();
  Driver d(std::move(fn));
  EXPECT_EQ(raw->OldestNeededBegin(), kMaxTimestamp);
  d.Element(42);
  EXPECT_EQ(raw->OldestNeededBegin(), 42);
}

TEST(CountWindowFnTest, TumblingCounts) {
  Driver d(std::make_unique<CountWindowFn>(3));
  for (Timestamp t : {1, 2, 3, 4, 5, 6, 7}) d.Element(t);
  d.Watermark(kMaxTimestamp);
  EXPECT_EQ(d.Begins(), (std::vector<Timestamp>{1, 4, 7}));
  // Windows close on their 3rd element; the trailing partial one is dropped.
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{1, 4}, {4, 7}}));
}

TEST(CountWindowFnTest, SlidingCounts) {
  Driver d(std::make_unique<CountWindowFn>(4, 2));
  for (Timestamp t : {10, 20, 30, 40, 50, 60}) d.Element(t);
  EXPECT_EQ(d.Begins(), (std::vector<Timestamp>{10, 30, 50}));
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{10, 41}, {30, 61}}));
}

TEST(PunctuationWindowFnTest, PredicateSplits) {
  auto is_marker = [](Timestamp, const Value& v) {
    return !v.is_null() && v.AsBool();
  };
  Driver d(std::make_unique<PunctuationWindowFn>(is_marker));
  d.Element(1, Value(false));
  d.Element(2, Value(false));
  d.Element(5, Value(true));  // punctuation: closes [1, 5), opens at 5
  d.Element(7, Value(false));
  d.Watermark(kMaxTimestamp);
  EXPECT_EQ(d.Begins(), (std::vector<Timestamp>{1, 5}));
  EXPECT_EQ(d.Ends(), (std::vector<Window>{{1, 5}, {5, 8}}));
}

TEST(WindowFnTest, CloneResetsState) {
  SlidingWindowFn original(10, 5);
  WindowEvents ev;
  original.OnElement(7, Value(), &ev);
  auto clone = original.Clone();
  // The clone must behave like a fresh instance.
  WindowEvents clone_ev;
  clone->OnElement(7, Value(), &clone_ev);
  ASSERT_EQ(clone_ev.size(), 2u);  // begins at 0 and 5
  EXPECT_EQ(clone_ev[0].at, 0);
  EXPECT_EQ(clone_ev[1].at, 5);
}

TEST(WindowFnTest, Names) {
  EXPECT_EQ(SlidingWindowFn(10, 5).Name(), "sliding(range=10,slide=5)");
  EXPECT_EQ(TumblingWindowFn(10).Name(), "tumbling(size=10)");
  EXPECT_EQ(SessionWindowFn(3).Name(), "session(gap=3)");
  EXPECT_EQ(CountWindowFn(4, 2).Name(), "count(count=4,slide=2)");
}

TEST(WindowTest, ContainsAndLength) {
  Window w{10, 20};
  EXPECT_TRUE(w.Contains(10));
  EXPECT_TRUE(w.Contains(19));
  EXPECT_FALSE(w.Contains(20));
  EXPECT_FALSE(w.Contains(9));
  EXPECT_EQ(w.length(), 10);
  EXPECT_EQ(w.ToString(), "[10, 20)");
}

}  // namespace
}  // namespace streamline
