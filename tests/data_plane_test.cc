// Invariants of the executor's lock-free data plane: control-event
// ordering, end-of-stream drain, and producer backpressure. Every pipeline
// here forces a real channel (Rebalance breaks operator chaining) so the
// SPSC rings and the poll loop are actually on the path under test.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>

#include "api/datastream.h"

namespace streamline {
namespace {

// Asserts that by the time watermark W arrives, every record with
// ts <= W has already been delivered. The generator emits ts = seq with a
// watermark after every 64 records, so the expected prefix count is W + 1.
class WatermarkOrderProbe : public Operator {
 public:
  WatermarkOrderProbe(std::atomic<int>* violations,
                      std::atomic<uint64_t>* records)
      : violations_(violations), records_(records) {}

  void ProcessRecord(int, Record&& record, Collector* out) override {
    ++seen_;
    if (record.timestamp > max_ts_) max_ts_ = record.timestamp;
    records_->fetch_add(1, std::memory_order_relaxed);
    out->Emit(std::move(record));
  }

  void ProcessWatermark(Timestamp wm, Collector*) override {
    if (wm == kMaxTimestamp || wm == kMinTimestamp) return;
    // The channel must have delivered all records the watermark promises.
    if (seen_ < static_cast<uint64_t>(wm) + 1) violations_->fetch_add(1);
    // And no record behind the previous watermark may show up later --
    // checked implicitly: watermarks only grow, records arrive in order on
    // this single-channel pipeline.
    if (wm < last_wm_) violations_->fetch_add(1);
    last_wm_ = wm;
  }

  std::string Name() const override { return "wm-order-probe"; }

 private:
  std::atomic<int>* violations_;
  std::atomic<uint64_t>* records_;
  uint64_t seen_ = 0;
  Timestamp max_ts_ = kMinTimestamp;
  Timestamp last_wm_ = kMinTimestamp;
};

TEST(DataPlaneTest, ControlEventsDoNotOvertakeRecords) {
  constexpr uint64_t kRecords = 10'000;
  auto violations = std::make_shared<std::atomic<int>>(0);
  auto seen = std::make_shared<std::atomic<uint64_t>>(0);
  Environment env;
  env.FromGenerator("seq",
                    [](uint64_t s) -> std::optional<Record> {
                      if (s >= kRecords) return std::nullopt;
                      return MakeRecord(static_cast<Timestamp>(s),
                                        Value(static_cast<int64_t>(s)));
                    })
      .Rebalance(1)  // forces a real channel in front of the probe
      .Process([violations, seen]() {
        return std::make_unique<WatermarkOrderProbe>(violations.get(),
                                                     seen.get());
      })
      .Sink(std::make_shared<NullSink>());
  JobOptions options;
  options.batch_size = 16;  // several batches between watermarks
  ASSERT_TRUE(env.Execute(options).ok());
  EXPECT_EQ(seen->load(), kRecords);
  EXPECT_EQ(violations->load(), 0);
}

TEST(DataPlaneTest, EndOfStreamDrainsEveryBufferedRecord) {
  // Tiny channels + tiny batches: end-of-stream lands while records are
  // still buffered in rings and output buffers; all must still arrive.
  constexpr uint64_t kRecords = 5'000;
  Environment env;
  auto sink = env.FromGenerator("seq",
                                [](uint64_t s) -> std::optional<Record> {
                                  if (s >= kRecords) return std::nullopt;
                                  return MakeRecord(
                                      static_cast<Timestamp>(s),
                                      Value(static_cast<int64_t>(s)));
                                })
                  .Rebalance(1)
                  .Collect();
  JobOptions options;
  options.channel_capacity = 2;
  options.batch_size = 3;
  ASSERT_TRUE(env.Execute(options).ok());
  ASSERT_EQ(sink->size(), kRecords);
  uint64_t sum = 0;
  for (const Record& r : sink->records()) {
    sum += static_cast<uint64_t>(r.field(0).AsInt64());
  }
  EXPECT_EQ(sum, kRecords * (kRecords - 1) / 2);
}

// A slow consumer must stall the producer once channel + buffers are full:
// the emitted-minus-consumed gap stays bounded by the configured capacity,
// records are never dropped and never buffered without bound.
TEST(DataPlaneTest, BackpressureBlocksProducerAtCapacity) {
  auto emitted = std::make_shared<std::atomic<uint64_t>>(0);
  auto consumed = std::make_shared<std::atomic<uint64_t>>(0);
  Environment env;
  env.FromGenerator("fast",
                    [emitted](uint64_t) -> std::optional<Record> {
                      emitted->fetch_add(1, std::memory_order_relaxed);
                      return MakeRecord(0, Value(int64_t{1}));
                    })
      .Rebalance(1)
      .Sink(std::make_shared<CallbackSink>([consumed](const Record&) {
        consumed->fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }));
  JobOptions options;
  options.channel_capacity = 4;  // rounded-up ring of 4 events
  options.batch_size = 8;
  auto job = env.CreateJob(options);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const uint64_t e = emitted->load();
  const uint64_t c = consumed->load();
  // In-flight at most: the ring (4 events x 8 records), the producer's
  // partial output buffer, one batch being dispatched, plus the record in
  // the producer's hand. Use a generous constant bound -- the point is
  // "bounded", not an exact count.
  EXPECT_GT(e, c);  // producer ran ahead...
  EXPECT_LE(e - c, 4 * 8 + 8 + 8 + 2u) << "emitted=" << e << " consumed=" << c;
  (*job)->Cancel();
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  // Everything emitted before cancellation that entered the pipeline was
  // either consumed or dropped with the cancelled source -- but nothing
  // was consumed twice.
  EXPECT_LE(consumed->load(), emitted->load());
}

}  // namespace
}  // namespace streamline
