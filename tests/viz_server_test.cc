#include "viz/server.h"

#include <gtest/gtest.h>

#include "workload/timeseries.h"

namespace streamline {
namespace {

TEST(VizServerTest, ConnectInitialRefresh) {
  VizServer server(100, 4);
  for (Timestamp t = 0; t < 5000; ++t) {
    server.OnElement(t, static_cast<double>(t % 13));
  }
  server.OnWatermark(5000);
  const int client = server.Connect(Viewport{0, 5000, 100, 50, false});
  const auto stats = server.transfer_stats(client);
  EXPECT_EQ(stats.refreshes, 1u);
  EXPECT_GT(stats.points, 0u);
  // Never more than 4 points per pixel column.
  EXPECT_LE(stats.points, 4u * 100);
  EXPECT_EQ(stats.bytes, stats.points * 16);
}

TEST(VizServerTest, FollowModePushIsRateIndependent) {
  auto run = [](int per_ms) {
    VizServer server(100, 3);
    const int client =
        server.Connect(Viewport{0, 1000, 100, 50, /*follow=*/true});
    const auto initial = server.transfer_stats(client).bytes;
    for (Timestamp t = 0; t < 10000; ++t) {
      for (int k = 0; k < per_ms; ++k) {
        server.OnElement(t, static_cast<double>(k));
      }
      if (t % 100 == 99) server.OnWatermark(t + 1);
    }
    return server.transfer_stats(client).bytes - initial;
  };
  const uint64_t slow = run(1);
  const uint64_t fast = run(50);  // 50x the data rate
  EXPECT_EQ(slow, fast);  // same event-time span -> same transfer
  EXPECT_GT(slow, 0u);
}

TEST(VizServerTest, ZoomPanResizeAccountRefreshes) {
  VizServer server(10, 6);
  for (Timestamp t = 0; t < 10000; ++t) {
    server.OnElement(t, static_cast<double>((t * 31) % 97));
  }
  server.Flush();
  const int c = server.Connect(Viewport{0, 10000, 200, 80, false});
  const auto p0 = server.Zoom(c, 0.5);
  EXPECT_FALSE(p0.empty());
  const Viewport& vp = server.viewport(c);
  EXPECT_EQ(vp.t_end - vp.t_begin, 5000);
  const auto p1 = server.Pan(c, -1000);
  EXPECT_FALSE(p1.empty());
  const auto p2 = server.Resize(c, 50);
  EXPECT_FALSE(p2.empty());
  EXPECT_LE(p2.size(), 4u * 50);
  const auto stats = server.transfer_stats(c);
  EXPECT_EQ(stats.refreshes, 4u);  // initial + zoom + pan + resize
}

TEST(VizServerTest, ZoomInShowsFinerData) {
  VizServer server(10, 6);
  // A spike hidden at coarse zoom.
  for (Timestamp t = 0; t < 10000; ++t) {
    server.OnElement(t, t == 5555 ? 100.0 : 0.0);
  }
  server.Flush();
  const int c = server.Connect(Viewport{5000, 6000, 100, 50, false});
  const auto points = server.Refresh(c);
  bool found_spike = false;
  for (const auto& p : points) {
    if (p.v == 100.0) found_spike = true;
  }
  EXPECT_TRUE(found_spike);
}

TEST(VizServerTest, DisconnectForgetsClient) {
  VizServer server(10, 2);
  const int c = server.Connect(Viewport{});
  server.Disconnect(c);
  const int c2 = server.Connect(Viewport{});
  EXPECT_NE(c, c2);
}

TEST(VizServerTest, MultipleClientsIndependentViewports) {
  VizServer server(10, 4);
  for (Timestamp t = 0; t < 2000; ++t) server.OnElement(t, 1.0);
  server.Flush();
  const int a = server.Connect(Viewport{0, 2000, 100, 50, false});
  const int b = server.Connect(Viewport{0, 500, 50, 50, false});
  server.Zoom(a, 0.25);
  EXPECT_EQ(server.viewport(a).t_end - server.viewport(a).t_begin, 500);
  EXPECT_EQ(server.viewport(b).t_end - server.viewport(b).t_begin, 500);
  EXPECT_EQ(server.viewport(b).t_begin, 0);
}

}  // namespace
}  // namespace streamline
