// Snapshot/restore property of the slicing aggregator: pausing mid-stream,
// serializing all state, restoring into a fresh identically-configured
// aggregator and continuing must produce exactly the results of an
// uninterrupted run. This is the contract the engine's checkpointing
// relies on.

#include <gtest/gtest.h>

#include "agg/slicing_aggregator.h"
#include "common/random.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

void SerializeDouble(const double& p, BinaryWriter* w) { w->WriteDouble(p); }
Result<double> DeserializeDouble(BinaryReader* r) { return r->ReadDouble(); }

template <typename AggT>
AggT MakeConfigured(std::vector<std::pair<Window, double>>* results) {
  AggT agg;
  auto cb = [results](size_t q, const Window& w, const double& v) {
    results->emplace_back(Window{w.start + static_cast<Timestamp>(q), w.end},
                          v);
  };
  agg.AddQuery(std::make_unique<SlidingWindowFn>(100, 30), cb);
  agg.AddQuery(std::make_unique<SessionWindowFn>(17), cb);
  agg.AddQuery(std::make_unique<TumblingWindowFn>(64), cb);
  return agg;
}

std::vector<std::pair<Timestamp, double>> MakeStream(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Timestamp, double>> out;
  Timestamp ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += static_cast<Timestamp>(rng.NextBelow(4));
    if (rng.NextBelow(50) == 0) ts += 100;  // session gaps
    out.emplace_back(ts, rng.NextDouble(-5, 5));
  }
  return out;
}

using SumSlicing = SlicingAggregator<SumAgg<double>>;

TEST(AggregatorSnapshotTest, PauseRestoreContinueEqualsStraightRun) {
  const auto stream = MakeStream(4000, 77);

  // Reference: uninterrupted.
  std::vector<std::pair<Window, double>> reference;
  {
    auto agg = MakeConfigured<SumSlicing>(&reference);
    for (const auto& [ts, v] : stream) agg.OnElement(ts, v);
    agg.OnWatermark(kMaxTimestamp);
  }

  for (size_t cut : {1u, 137u, 2000u, 3999u}) {
    std::vector<std::pair<Window, double>> results;
    auto first = MakeConfigured<SumSlicing>(&results);
    for (size_t i = 0; i < cut; ++i) {
      first.OnElement(stream[i].first, stream[i].second);
    }
    BinaryWriter w;
    first.Snapshot(&w, SerializeDouble);

    auto second = MakeConfigured<SumSlicing>(&results);
    BinaryReader r(w.buffer());
    ASSERT_TRUE(second.Restore(&r, DeserializeDouble).ok());
    for (size_t i = cut; i < stream.size(); ++i) {
      second.OnElement(stream[i].first, stream[i].second);
    }
    second.OnWatermark(kMaxTimestamp);

    ASSERT_EQ(results.size(), reference.size()) << "cut=" << cut;
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].first, reference[i].first) << "cut=" << cut;
      EXPECT_NEAR(results[i].second, reference[i].second, 1e-9);
    }
  }
}

TEST(AggregatorSnapshotTest, SnapshotPreservesStats) {
  std::vector<std::pair<Window, double>> sink;
  auto agg = MakeConfigured<SumSlicing>(&sink);
  const auto stream = MakeStream(1000, 3);
  for (const auto& [ts, v] : stream) agg.OnElement(ts, v);
  BinaryWriter w;
  agg.Snapshot(&w, SerializeDouble);

  std::vector<std::pair<Window, double>> sink2;
  auto restored = MakeConfigured<SumSlicing>(&sink2);
  BinaryReader r(w.buffer());
  ASSERT_TRUE(restored.Restore(&r, DeserializeDouble).ok());
  EXPECT_EQ(restored.stats().elements, agg.stats().elements);
  EXPECT_EQ(restored.stats().partial_updates, agg.stats().partial_updates);
  EXPECT_EQ(restored.stats().fires, agg.stats().fires);
  EXPECT_EQ(restored.stored_slices(), agg.stored_slices());
}

TEST(AggregatorSnapshotTest, QueryCountMismatchRejected) {
  std::vector<std::pair<Window, double>> sink;
  auto agg = MakeConfigured<SumSlicing>(&sink);
  agg.OnElement(1, 1.0);
  BinaryWriter w;
  agg.Snapshot(&w, SerializeDouble);

  SumSlicing other;  // no queries registered
  BinaryReader r(w.buffer());
  const Status st = other.Restore(&r, DeserializeDouble);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(AggregatorSnapshotTest, TruncatedSnapshotRejected) {
  std::vector<std::pair<Window, double>> sink;
  auto agg = MakeConfigured<SumSlicing>(&sink);
  for (Timestamp t = 0; t < 500; ++t) agg.OnElement(t, 1.0);
  BinaryWriter w;
  agg.Snapshot(&w, SerializeDouble);
  std::string bytes = w.Release();
  bytes.resize(bytes.size() / 2);

  auto restored = MakeConfigured<SumSlicing>(&sink);
  BinaryReader r(bytes);
  EXPECT_FALSE(restored.Restore(&r, DeserializeDouble).ok());
}

TEST(AggregatorSnapshotTest, AllStoreTypesRoundTrip) {
  const auto stream = MakeStream(1500, 13);
  auto run = [&](auto make) {
    std::vector<std::pair<Window, double>> ref;
    std::vector<std::pair<Window, double>> got;
    {
      auto agg = make(&ref);
      for (const auto& [ts, v] : stream) agg.OnElement(ts, v);
      agg.OnWatermark(kMaxTimestamp);
    }
    {
      auto first = make(&got);
      for (size_t i = 0; i < stream.size() / 2; ++i) {
        first.OnElement(stream[i].first, stream[i].second);
      }
      BinaryWriter w;
      first.Snapshot(&w, SerializeDouble);
      auto second = make(&got);
      BinaryReader r(w.buffer());
      STREAMLINE_CHECK_OK(second.Restore(&r, DeserializeDouble));
      for (size_t i = stream.size() / 2; i < stream.size(); ++i) {
        second.OnElement(stream[i].first, stream[i].second);
      }
      second.OnWatermark(kMaxTimestamp);
    }
    ASSERT_EQ(ref.size(), got.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].first, got[i].first);
      EXPECT_NEAR(ref[i].second, got[i].second, 1e-9);
    }
  };
  run([](auto* sink) {
    return MakeConfigured<SlicingAggregator<SumAgg<double>,
                                            FlatFatStore<SumAgg<double>>>>(
        sink);
  });
  run([](auto* sink) {
    return MakeConfigured<SlicingAggregator<SumAgg<double>,
                                            LinearStore<SumAgg<double>>>>(
        sink);
  });
  run([](auto* sink) {
    return MakeConfigured<SlicingAggregator<SumAgg<double>,
                                            PrefixStore<SumAgg<double>>>>(
        sink);
  });
}

}  // namespace
}  // namespace streamline
