#include "dataflow/graph.h"

#include <gtest/gtest.h>

#include "dataflow/operators.h"
#include "dataflow/sources.h"

namespace streamline {
namespace {

OperatorFactory NoopOp(const std::string& name) {
  return [name]() {
    return std::make_unique<MapOperator>(
        name, [](Record&& r) { return std::move(r); });
  };
}

SourceFactory EmptySource() {
  return [](int, int) {
    return std::make_unique<VectorSource>(std::vector<Record>{});
  };
}

TEST(LogicalGraphTest, ValidLinearGraph) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int map = g.AddOperator("map", 1, NoopOp("map"));
  ASSERT_TRUE(g.Connect(src, map, PartitionScheme::kForward).ok());
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.TopologicalOrder(), (std::vector<int>{src, map}));
}

TEST(LogicalGraphTest, EmptyGraphInvalid) {
  LogicalGraph g;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(LogicalGraphTest, GraphWithoutSourceInvalid) {
  LogicalGraph g;
  g.AddOperator("op", 1, NoopOp("op"));
  EXPECT_FALSE(g.Validate().ok());
}

TEST(LogicalGraphTest, OperatorWithoutInputInvalid) {
  LogicalGraph g;
  g.AddSource("src", 1, EmptySource());
  g.AddOperator("orphan", 1, NoopOp("orphan"));
  EXPECT_FALSE(g.Validate().ok());
}

TEST(LogicalGraphTest, ConnectIntoSourceRejected) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int src2 = g.AddSource("src2", 1, EmptySource());
  EXPECT_FALSE(g.Connect(src, src2, PartitionScheme::kForward).ok());
}

TEST(LogicalGraphTest, HashWithoutKeyRejected) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int op = g.AddOperator("op", 2, NoopOp("op"));
  EXPECT_FALSE(g.Connect(src, op, PartitionScheme::kHash).ok());
  EXPECT_TRUE(g.Connect(src, op, PartitionScheme::kHash,
                        [](const Record& r) { return r.field(0); })
                  .ok());
}

TEST(LogicalGraphTest, ForwardParallelismMismatchRejected) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int op = g.AddOperator("op", 2, NoopOp("op"));
  EXPECT_FALSE(g.Connect(src, op, PartitionScheme::kForward).ok());
  EXPECT_TRUE(g.Connect(src, op, PartitionScheme::kRebalance).ok());
}

TEST(LogicalGraphTest, UnknownNodeRejected) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  EXPECT_FALSE(g.Connect(src, 99, PartitionScheme::kForward).ok());
  EXPECT_FALSE(g.Connect(-1, src, PartitionScheme::kForward).ok());
}

TEST(LogicalGraphTest, DiamondTopologyValid) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int a = g.AddOperator("a", 1, NoopOp("a"));
  const int b = g.AddOperator("b", 1, NoopOp("b"));
  const int join = g.AddOperator("join", 1, NoopOp("join"));
  ASSERT_TRUE(g.Connect(src, a, PartitionScheme::kRebalance).ok());
  ASSERT_TRUE(g.Connect(src, b, PartitionScheme::kRebalance).ok());
  ASSERT_TRUE(g.Connect(a, join, PartitionScheme::kRebalance).ok());
  ASSERT_TRUE(g.Connect(b, join, PartitionScheme::kRebalance, nullptr, 1).ok());
  EXPECT_TRUE(g.Validate().ok());
  const auto topo = g.TopologicalOrder();
  ASSERT_EQ(topo.size(), 4u);
  EXPECT_EQ(topo.front(), src);
  EXPECT_EQ(topo.back(), join);
}

TEST(LogicalGraphTest, InOutEdges) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int a = g.AddOperator("a", 1, NoopOp("a"));
  const int b = g.AddOperator("b", 1, NoopOp("b"));
  ASSERT_TRUE(g.Connect(src, a, PartitionScheme::kRebalance).ok());
  ASSERT_TRUE(g.Connect(src, b, PartitionScheme::kRebalance).ok());
  EXPECT_EQ(g.OutEdges(src).size(), 2u);
  EXPECT_EQ(g.InEdges(a).size(), 1u);
  EXPECT_EQ(g.InEdges(src).size(), 0u);
}

}  // namespace
}  // namespace streamline
