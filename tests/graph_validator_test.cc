#include "dataflow/graph_validator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "api/datastream.h"
#include "dataflow/operators.h"
#include "dataflow/sources.h"

namespace streamline {
namespace {

OperatorFactory NoopOp(const std::string& name) {
  return [name]() {
    return std::make_unique<MapOperator>(
        name, [](Record&& r) { return std::move(r); });
  };
}

SourceFactory EmptySource() {
  return [](int, int) {
    return std::make_unique<VectorSource>(std::vector<Record>{});
  };
}

KeySelector Field0Key() {
  return [](const Record& r) { return r.field(0); };
}

bool HasRule(const std::vector<GraphDiagnostic>& diags, GraphRule rule) {
  return std::any_of(diags.begin(), diags.end(), [rule](const auto& d) {
    return d.rule == rule;
  });
}

const GraphDiagnostic& FindRule(const std::vector<GraphDiagnostic>& diags,
                                GraphRule rule) {
  auto it = std::find_if(diags.begin(), diags.end(), [rule](const auto& d) {
    return d.rule == rule;
  });
  EXPECT_NE(it, diags.end()) << "no diagnostic with rule "
                             << GraphRuleToString(rule);
  return *it;
}

// ---------------------------------------------------------------------------
// Rejected class 1: hash edge without key / without router hash.

TEST(GraphValidatorTest, HashEdgeWithoutKeyRejected) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int agg = g.AddOperator("agg", 2, NoopOp("agg"));
  ASSERT_TRUE(
      g.Connect(src, agg, PartitionScheme::kHash, Field0Key()).ok());
  // Connect() itself refuses a null key, so strip it afterwards: the
  // validator is the defense-in-depth layer behind that check.
  g.mutable_edge(0).key = nullptr;
  const auto diags = CheckGraph(g);
  const GraphDiagnostic& d = FindRule(diags, GraphRule::kHashEdgeMissingKey);
  EXPECT_EQ(d.edge, 0);
  EXPECT_NE(d.message.find("src -> agg"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("no key selector"), std::string::npos)
      << d.message;
  EXPECT_FALSE(ValidateGraph(g).ok());
}

TEST(GraphValidatorTest, HashEdgeWithoutRouterHashRejected) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int agg = g.AddOperator("agg", 2, NoopOp("agg"));
  ASSERT_TRUE(
      g.Connect(src, agg, PartitionScheme::kHash, Field0Key()).ok());
  // Connect() derives a fallback key_hash; break it to simulate a plan
  // rewrite that dropped the router's hash path.
  g.mutable_edge(0).key_hash = nullptr;
  g.mutable_edge(0).key_field = -1;
  const auto diags = CheckGraph(g);
  const GraphDiagnostic& d = FindRule(diags, GraphRule::kHashEdgeMissingKey);
  EXPECT_EQ(d.edge, 0);
  EXPECT_NE(d.message.find("src -> agg"), std::string::npos) << d.message;
}

// ---------------------------------------------------------------------------
// Rejected class 2: cycles.

TEST(GraphValidatorTest, CycleRejectedAndNamed) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int a = g.AddOperator("loop_a", 1, NoopOp("a"));
  const int b = g.AddOperator("loop_b", 1, NoopOp("b"));
  ASSERT_TRUE(g.Connect(src, a, PartitionScheme::kForward).ok());
  ASSERT_TRUE(g.Connect(a, b, PartitionScheme::kForward).ok());
  ASSERT_TRUE(g.Connect(b, a, PartitionScheme::kForward).ok());
  const auto diags = CheckGraph(g);
  const GraphDiagnostic& d = FindRule(diags, GraphRule::kCycle);
  EXPECT_NE(d.message.find("loop_a"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("loop_b"), std::string::npos) << d.message;
  EXPECT_FALSE(ValidateGraph(g).ok());
}

// ---------------------------------------------------------------------------
// Rejected class 3: event-time operator fed by a watermark-less source.

TEST(GraphValidatorTest, WatermarkStarvationRejected) {
  LogicalGraph g;
  NodeTraits silent;
  silent.emits_watermarks = false;
  const int src = g.AddSource("silent_src", 1, EmptySource(), silent);
  NodeTraits windowed;
  windowed.requires_watermarks = true;
  const int win = g.AddOperator("window_agg", 1, NoopOp("w"), windowed);
  ASSERT_TRUE(g.Connect(src, win, PartitionScheme::kForward).ok());
  const auto diags = CheckGraph(g);
  const GraphDiagnostic& d =
      FindRule(diags, GraphRule::kWatermarkStarvation);
  EXPECT_EQ(d.node, win);
  EXPECT_NE(d.message.find("window_agg"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("silent_src"), std::string::npos) << d.message;
}

TEST(GraphValidatorTest, WatermarkStarvationIsTransitive) {
  LogicalGraph g;
  NodeTraits silent;
  silent.emits_watermarks = false;
  const int src = g.AddSource("silent_src", 1, EmptySource(), silent);
  const int mid = g.AddOperator("mid", 1, NoopOp("mid"));
  NodeTraits windowed;
  windowed.requires_watermarks = true;
  const int win = g.AddOperator("window_agg", 1, NoopOp("w"), windowed);
  ASSERT_TRUE(g.Connect(src, mid, PartitionScheme::kForward).ok());
  ASSERT_TRUE(g.Connect(mid, win, PartitionScheme::kForward).ok());
  EXPECT_TRUE(
      HasRule(CheckGraph(g), GraphRule::kWatermarkStarvation));
}

TEST(GraphValidatorTest, EmittingSourceFeedsEventTimeOperator) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());  // emits by default
  NodeTraits windowed;
  windowed.requires_watermarks = true;
  const int win = g.AddOperator("window_agg", 1, NoopOp("w"), windowed);
  ASSERT_TRUE(g.Connect(src, win, PartitionScheme::kForward).ok());
  EXPECT_TRUE(CheckGraph(g).empty());
}

// ---------------------------------------------------------------------------
// Rejected class 4: forward (chaining) edge across a parallelism change.

TEST(GraphValidatorTest, ChainAcrossShuffleRejected) {
  LogicalGraph g;
  const int src = g.AddSource("src", 2, EmptySource());
  const int op = g.AddOperator("narrow", 1, NoopOp("narrow"));
  // Connect() rejects this shape; build it via the escape hatch.
  ASSERT_TRUE(g.Connect(src, op, PartitionScheme::kRebalance).ok());
  g.mutable_edge(0).scheme = PartitionScheme::kForward;
  const auto diags = CheckGraph(g);
  const GraphDiagnostic& d =
      FindRule(diags, GraphRule::kChainAcrossShuffle);
  EXPECT_EQ(d.edge, 0);
  EXPECT_NE(d.message.find("src -> narrow"), std::string::npos)
      << d.message;
  EXPECT_NE(d.message.find("parallelism 2"), std::string::npos)
      << d.message;
  EXPECT_NE(d.message.find("parallelism 1"), std::string::npos)
      << d.message;
}

// ---------------------------------------------------------------------------
// Rejected class 5: keyed state without (stable) key partitioning.

TEST(GraphValidatorTest, KeyedStateOnRebalanceInputRejected) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  NodeTraits keyed;
  keyed.keyed_state = true;
  const int red = g.AddOperator("reduce", 2, NoopOp("reduce"), keyed);
  ASSERT_TRUE(g.Connect(src, red, PartitionScheme::kRebalance).ok());
  const auto diags = CheckGraph(g);
  const GraphDiagnostic& d =
      FindRule(diags, GraphRule::kKeyedStatePartitioning);
  EXPECT_EQ(d.node, red);
  EXPECT_NE(d.message.find("reduce"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("rebalance"), std::string::npos) << d.message;
}

TEST(GraphValidatorTest, KeyedStateOnUnpartitionedForwardInputRejected) {
  LogicalGraph g;
  const int src = g.AddSource("src", 2, EmptySource());
  NodeTraits keyed;
  keyed.keyed_state = true;
  const int red = g.AddOperator("reduce", 2, NoopOp("reduce"), keyed);
  ASSERT_TRUE(g.Connect(src, red, PartitionScheme::kForward).ok());
  const auto diags = CheckGraph(g);
  const GraphDiagnostic& d =
      FindRule(diags, GraphRule::kKeyedStatePartitioning);
  EXPECT_EQ(d.node, red);
  EXPECT_NE(d.message.find("no hash partitioning"), std::string::npos)
      << d.message;
}

TEST(GraphValidatorTest, KeyedStateRescopedParallelismRejected) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int shuffle = g.AddOperator("shuffle", 2, NoopOp("shuffle"));
  NodeTraits keyed;
  keyed.keyed_state = true;
  const int red = g.AddOperator("reduce", 4, NoopOp("reduce"), keyed);
  ASSERT_TRUE(
      g.Connect(src, shuffle, PartitionScheme::kHash, Field0Key()).ok());
  // A forward relay from parallelism 2 into parallelism 4: build via the
  // escape hatch (Connect() would refuse the parallelism mismatch).
  ASSERT_TRUE(g.Connect(shuffle, red, PartitionScheme::kRebalance).ok());
  g.mutable_edge(1).scheme = PartitionScheme::kForward;
  const auto diags = CheckGraph(g);
  const GraphDiagnostic& d =
      FindRule(diags, GraphRule::kKeyedStatePartitioning);
  EXPECT_EQ(d.node, red);
  EXPECT_NE(d.message.find("rescoped"), std::string::npos) << d.message;
  // The forward-across-parallelism edge also fires its own rule.
  EXPECT_TRUE(HasRule(diags, GraphRule::kChainAcrossShuffle));
}

TEST(GraphValidatorTest, KeyedStateForwardRelayOfHashAccepted) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int shuffle = g.AddOperator("shuffle", 2, NoopOp("shuffle"));
  NodeTraits keyed;
  keyed.keyed_state = true;
  const int red = g.AddOperator("reduce", 2, NoopOp("reduce"), keyed);
  ASSERT_TRUE(
      g.Connect(src, shuffle, PartitionScheme::kHash, Field0Key()).ok());
  ASSERT_TRUE(g.Connect(shuffle, red, PartitionScheme::kForward).ok());
  EXPECT_TRUE(CheckGraph(g).empty()) << ValidateGraph(g).ToString();
}

// ---------------------------------------------------------------------------
// Rejected class 6: nodes (sinks especially) reachable from no source.

TEST(GraphValidatorTest, SinkReachableFromNoSourceRejected) {
  LogicalGraph g;
  const int src = g.AddSource("src", 1, EmptySource());
  const int map = g.AddOperator("map", 1, NoopOp("map"));
  ASSERT_TRUE(g.Connect(src, map, PartitionScheme::kForward).ok());
  // A dead island feeding the sink: every island node has inputs (so the
  // kStructure "no inputs" rule stays quiet) but no source reaches any of
  // them.
  const int island_a = g.AddOperator("island_a", 1, NoopOp("a"));
  const int island_b = g.AddOperator("island_b", 1, NoopOp("b"));
  NodeTraits sink_traits;
  sink_traits.is_sink = true;
  const int sink = g.AddOperator("dead_sink", 1, NoopOp("s"), sink_traits);
  ASSERT_TRUE(g.Connect(island_a, island_b, PartitionScheme::kForward).ok());
  ASSERT_TRUE(g.Connect(island_b, island_a, PartitionScheme::kForward).ok());
  ASSERT_TRUE(g.Connect(island_b, sink, PartitionScheme::kForward).ok());
  const auto diags = CheckGraph(g);
  auto it = std::find_if(diags.begin(), diags.end(), [sink](const auto& d) {
    return d.rule == GraphRule::kUnreachable && d.node == sink;
  });
  ASSERT_NE(it, diags.end());
  EXPECT_NE(it->message.find("dead_sink"), std::string::npos)
      << it->message;
  EXPECT_NE(it->message.find("sink"), std::string::npos) << it->message;
  EXPECT_NE(it->message.find("reachable from no source"), std::string::npos)
      << it->message;
  // The island nodes are flagged too.
  EXPECT_TRUE(HasRule(diags, GraphRule::kUnreachable));
}

// ---------------------------------------------------------------------------
// Structural defects still surface through ValidateGraph.

TEST(GraphValidatorTest, StructuralDefectsCollected) {
  LogicalGraph g;
  g.AddSource("src", 1, EmptySource());
  g.AddOperator("orphan", 1, NoopOp("orphan"));
  const auto diags = CheckGraph(g);
  const GraphDiagnostic& d = FindRule(diags, GraphRule::kStructure);
  EXPECT_NE(d.message.find("orphan"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("no inputs"), std::string::npos) << d.message;
  const Status st = ValidateGraph(g);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("[structure]"), std::string::npos)
      << st.ToString();
}

TEST(GraphValidatorTest, EmptyGraphRejected) {
  LogicalGraph g;
  EXPECT_FALSE(ValidateGraph(g).ok());
}

TEST(GraphValidatorTest, AllDiagnosticsCollectedInOnePass) {
  LogicalGraph g;
  NodeTraits silent;
  silent.emits_watermarks = false;
  const int src = g.AddSource("silent_src", 1, EmptySource(), silent);
  NodeTraits windowed;
  windowed.requires_watermarks = true;
  windowed.keyed_state = true;
  const int win = g.AddOperator("window_agg", 2, NoopOp("w"), windowed);
  ASSERT_TRUE(g.Connect(src, win, PartitionScheme::kRebalance).ok());
  const auto diags = CheckGraph(g);
  // One bad plan, two independent findings, one round trip.
  EXPECT_TRUE(HasRule(diags, GraphRule::kWatermarkStarvation));
  EXPECT_TRUE(HasRule(diags, GraphRule::kKeyedStatePartitioning));
}

// ---------------------------------------------------------------------------
// Pass-through: plans built by the fluent API validate clean, and the
// validator is actually wired into job submission.

TEST(GraphValidatorTest, FluentKeyedWindowPipelineAccepted) {
  Environment env(2);
  std::vector<Record> rows;
  for (int i = 0; i < 8; ++i) {
    rows.push_back(MakeRecord(i * 100, Value(int64_t{i % 2}),
                              Value(static_cast<double>(i))));
  }
  auto stream = env.FromRecords(std::move(rows), "rows");
  auto sink = stream.KeyBy(0)
                  .Window(std::make_shared<TumblingWindowFn>(400))
                  .Aggregate(DynAggKind::kSum, 1)
                  .Collect("out");
  EXPECT_TRUE(ValidateGraph(*env.graph()).ok())
      << ValidateGraph(*env.graph()).ToString();
  EXPECT_TRUE(env.Execute().ok());
  EXPECT_FALSE(sink->records().empty());
}

TEST(GraphValidatorTest, FluentReduceAndJoinPipelineAccepted) {
  Environment env(2);
  std::vector<Record> left_rows;
  std::vector<Record> right_rows;
  for (int i = 0; i < 6; ++i) {
    left_rows.push_back(MakeRecord(i * 10, Value(int64_t{i % 3}),
                                   Value(static_cast<double>(i))));
    right_rows.push_back(MakeRecord(i * 10 + 5, Value(int64_t{i % 3}),
                                    Value(static_cast<double>(-i))));
  }
  auto left = env.FromRecords(std::move(left_rows), "left");
  auto right = env.FromRecords(std::move(right_rows), "right");
  auto joined = left.KeyBy(0).IntervalJoin(right.KeyBy(0), Duration{-20},
                                           Duration{20});
  auto sink = joined.Collect("joined");
  EXPECT_TRUE(ValidateGraph(*env.graph()).ok())
      << ValidateGraph(*env.graph()).ToString();
  EXPECT_TRUE(env.Execute().ok());
}

TEST(GraphValidatorTest, JobCreateRunsValidator) {
  Environment env(1);
  auto stream = env.FromGenerator(
      "gen",
      [](uint64_t i) -> std::optional<Record> {
        if (i >= 4) return std::nullopt;
        return MakeRecord(static_cast<Timestamp>(i),
                          Value(static_cast<int64_t>(i)));
      },
      /*watermark_every=*/0);  // watermark-less source...
  // ...feeding an event-time window: Job::Create must reject the plan.
  stream.WindowAll({std::make_shared<TumblingWindowFn>(2)})
      .Aggregate(DynAggKind::kCount, 0)
      .Collect("out");
  auto job = env.CreateJob();
  ASSERT_FALSE(job.ok());
  EXPECT_NE(job.status().ToString().find("watermark"), std::string::npos)
      << job.status().ToString();
}

}  // namespace
}  // namespace streamline
