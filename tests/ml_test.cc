#include "ml/online_model.h"

#include <gtest/gtest.h>

#include "api/datastream.h"
#include "common/random.h"
#include "ml/learner_operator.h"

namespace streamline {
namespace {

TEST(OnlineLogisticRegressionTest, LearnsSeparableData) {
  // True decision rule: x0 + x1 > 1.
  OnlineLogisticRegression model(2, {.learning_rate = 0.3});
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const std::vector<double> x = {rng.NextDouble(), rng.NextDouble()};
    model.Update(x, x[0] + x[1] > 1.0);
  }
  int correct = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::vector<double> x = {rng.NextDouble(), rng.NextDouble()};
    const bool truth = x[0] + x[1] > 1.0;
    if ((model.Predict(x) > 0.5) == truth) ++correct;
  }
  EXPECT_GT(correct, 950);
}

TEST(OnlineLogisticRegressionTest, PrequentialLossDecreases) {
  OnlineLogisticRegression model(2, {.learning_rate = 0.2});
  Rng rng(2);
  double early = 0;
  double late = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::vector<double> x = {rng.NextDouble(-1, 1),
                                   rng.NextDouble(-1, 1)};
    const double loss = model.Update(x, x[0] > 0.3 * x[1]);
    if (i < 500) early += loss;
    if (i >= 9500) late += loss;
  }
  EXPECT_LT(late, early * 0.5);
}

TEST(OnlineLogisticRegressionTest, PredictsCalibratedProbability) {
  // Labels drawn Bernoulli(0.25) with a constant feature: the model's
  // prediction should approach 0.25 (bias learns the base rate).
  // Small learning rate: SGD's stationary oscillation around the optimum
  // scales with the step size.
  OnlineLogisticRegression model(1, {.learning_rate = 0.01});
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    model.Update({1.0}, rng.NextBool(0.25));
  }
  EXPECT_NEAR(model.Predict({1.0}), 0.25, 0.04);
}

TEST(OnlineLinearRegressionTest, RecoversWeights) {
  OnlineLinearRegression model(2, {.learning_rate = 0.05});
  Rng rng(4);
  for (int i = 0; i < 30000; ++i) {
    const std::vector<double> x = {rng.NextDouble(-1, 1),
                                   rng.NextDouble(-1, 1)};
    const double y = 3.0 * x[0] - 2.0 * x[1] + 0.5;
    model.Update(x, y);
  }
  EXPECT_NEAR(model.weights()[0], 3.0, 0.05);
  EXPECT_NEAR(model.weights()[1], -2.0, 0.05);
  EXPECT_NEAR(model.bias(), 0.5, 0.05);
}

TEST(OnlineModelTest, SnapshotRestoreContinuesIdentically) {
  OnlineLogisticRegression a(3, {.learning_rate = 0.1});
  Rng rng(5);
  std::vector<std::pair<std::vector<double>, bool>> stream;
  for (int i = 0; i < 2000; ++i) {
    std::vector<double> x = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    stream.emplace_back(x, x[0] + x[1] - x[2] > 0.5);
  }
  for (int i = 0; i < 1000; ++i) a.Update(stream[i].first, stream[i].second);
  BinaryWriter w;
  a.Snapshot(&w);
  OnlineLogisticRegression b(3, {.learning_rate = 0.1});
  BinaryReader r(w.buffer());
  ASSERT_TRUE(b.Restore(&r).ok());
  EXPECT_EQ(b.updates(), a.updates());
  for (int i = 1000; i < 2000; ++i) {
    a.Update(stream[i].first, stream[i].second);
    b.Update(stream[i].first, stream[i].second);
  }
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(a.weights()[k], b.weights()[k]);
  }
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

TEST(OnlineModelTest, DimensionMismatchRejected) {
  OnlineLogisticRegression a(3);
  a.Update({1, 2, 3}, true);
  BinaryWriter w;
  a.Snapshot(&w);
  OnlineLogisticRegression b(5);
  BinaryReader r(w.buffer());
  const Status st = b.Restore(&r);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(OnlineClassifierOperatorTest, TrainsInsideThePipeline) {
  // Labeled stream: [label(bool), f0, f1]; rule: f0 > f1.
  Environment env;
  Rng rng(6);
  std::vector<Record> examples;
  for (int i = 0; i < 20000; ++i) {
    const double f0 = rng.NextDouble();
    const double f1 = rng.NextDouble();
    examples.push_back(
        MakeRecord(i, Value(f0 > f1), Value(f0), Value(f1)));
  }
  OnlineClassifierOperator::Spec spec;
  spec.dim = 2;
  spec.model.learning_rate = 0.3;
  spec.features = [](const Record& r) {
    return std::vector<double>{r.field(1).AsDouble(), r.field(2).AsDouble()};
  };
  spec.label = [](const Record& r) { return r.field(0).AsBool(); };
  spec.emit_every = 100;

  const int node = env.graph()->AddOperator(
      "learner", 1, [spec]() {
        return std::make_unique<OnlineClassifierOperator>("learner", spec);
      });
  auto src = env.FromRecords(std::move(examples), "examples");
  STREAMLINE_CHECK_OK(env.graph()->Connect(src.node_id(), node,
                                           PartitionScheme::kForward));
  auto sink = std::make_shared<CollectSink>();
  const int sink_node = env.graph()->AddOperator(
      "sink", 1,
      [sink]() { return std::make_unique<SinkOperator>("sink", sink); });
  STREAMLINE_CHECK_OK(
      env.graph()->Connect(node, sink_node, PartitionScheme::kForward));
  ASSERT_TRUE(env.Execute().ok());

  // Output: [prediction, label, decayed_logloss] every 100 examples.
  const auto evals = sink->records();
  ASSERT_EQ(evals.size(), 200u);
  const double early_loss = evals[2].field(2).AsDouble();
  const double late_loss = evals.back().field(2).AsDouble();
  EXPECT_LT(late_loss, early_loss * 0.5);
  EXPECT_LT(late_loss, 0.3);
}

TEST(OnlineClassifierOperatorTest, StateSurvivesSnapshotRestore) {
  OnlineClassifierOperator::Spec spec;
  spec.dim = 1;
  spec.features = [](const Record& r) {
    return std::vector<double>{r.field(1).AsDouble()};
  };
  spec.label = [](const Record& r) { return r.field(0).AsBool(); };
  OnlineClassifierOperator op("learner", spec);
  class NullCollector : public Collector {
   public:
    void Emit(Record&&) override {}
  } out;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double f = rng.NextDouble(-1, 1);
    op.ProcessRecord(0, MakeRecord(i, Value(f > 0), Value(f)), &out);
  }
  BinaryWriter w;
  ASSERT_TRUE(op.SnapshotState(&w).ok());
  OnlineClassifierOperator restored("learner", spec);
  BinaryReader r(w.buffer());
  ASSERT_TRUE(restored.RestoreState(&r).ok());
  EXPECT_DOUBLE_EQ(restored.model().weights()[0], op.model().weights()[0]);
  EXPECT_DOUBLE_EQ(restored.decayed_loss(), op.decayed_loss());
}

}  // namespace
}  // namespace streamline
