// Wire protocol: serde round-trip property over random records, and the
// fail-closed decoder contract against torn/garbage frames -- CRC
// mismatch, oversized length prefix, mid-frame truncation. The decoder
// must never over-read, never return a partial frame, and stay poisoned
// once the stream is provably corrupt.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/serde.h"
#include "net/frame.h"

namespace streamline {
namespace net {
namespace {

/// Random record with 0..6 fields of mixed types (including strings with
/// embedded NULs and null values), random timestamp sign included.
Record RandomRecord(Rng* rng) {
  Record r;
  r.timestamp = static_cast<Timestamp>(rng->NextU64());
  const size_t fields = rng->NextBelow(7);
  r.fields.reserve(fields);
  for (size_t i = 0; i < fields; ++i) {
    switch (rng->NextBelow(5)) {
      case 0:
        r.fields.push_back(Value(static_cast<int64_t>(rng->NextU64())));
        break;
      case 1:
        r.fields.push_back(Value(rng->NextDouble(-1e9, 1e9)));
        break;
      case 2:
        r.fields.push_back(Value(rng->NextBool(0.5)));
        break;
      case 3: {
        std::string s;
        const size_t n = rng->NextBelow(24);
        for (size_t j = 0; j < n; ++j) {
          s.push_back(static_cast<char>(rng->NextBelow(256)));  // incl. '\0'
        }
        r.fields.push_back(Value(std::move(s)));
        break;
      }
      default:
        r.fields.push_back(Value());  // null
        break;
    }
  }
  return r;
}

/// Feeds `stream` into `dec` in random chunks, draining every complete
/// payload into `decoded` via DecodeDataBatch. Returns the first error.
Status FeedChunked(FrameDecoder* dec, std::string_view stream, Rng* rng,
                   std::vector<Record>* decoded, size_t* frames) {
  size_t off = 0;
  while (off < stream.size()) {
    const size_t chunk =
        std::min<size_t>(1 + rng->NextBelow(13), stream.size() - off);
    dec->Append(stream.data() + off, chunk);
    off += chunk;
    while (true) {
      std::string_view payload;
      auto has = dec->Next(&payload);
      if (!has.ok()) return has.status();
      if (!*has) break;
      ++*frames;
      STREAMLINE_RETURN_IF_ERROR(DecodeDataBatch(payload, decoded));
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Round-trip property: random records, random batch sizes, random chunking.

TEST(WireProtocolTest, RandomBatchesRoundTripThroughChunkedDecoder) {
  Rng rng(2024);
  std::vector<Record> sent;
  std::string stream;
  size_t frames_encoded = 0;
  for (int batch = 0; batch < 200; ++batch) {
    std::vector<Record> records;
    const size_t n = rng.NextBelow(17);  // incl. empty batches
    for (size_t i = 0; i < n; ++i) records.push_back(RandomRecord(&rng));
    stream += EncodeDataBatch(records.data(), records.size());
    ++frames_encoded;
    for (auto& r : records) sent.push_back(std::move(r));
  }

  FrameDecoder dec;
  std::vector<Record> got;
  size_t frames = 0;
  ASSERT_TRUE(FeedChunked(&dec, stream, &rng, &got, &frames).ok());
  EXPECT_EQ(frames, frames_encoded);
  EXPECT_EQ(dec.buffered_bytes(), 0u);
  ASSERT_EQ(got.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i], sent[i]) << "record " << i << " diverged";
  }
}

TEST(WireProtocolTest, SubscribeFrameRoundTrips) {
  const std::string framed = EncodeSubscribe("pixels/m4");
  FrameDecoder dec;
  dec.Append(framed.data(), framed.size());
  std::string_view payload;
  auto has = dec.Next(&payload);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  BinaryReader r(payload);
  auto type = r.ReadU8();
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, kMsgSubscribe);
  auto topic = r.ReadString();
  ASSERT_TRUE(topic.ok());
  EXPECT_EQ(*topic, "pixels/m4");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireProtocolTest, ControlFramesAreEmptyBodied) {
  for (uint8_t type : {kMsgSnapshotBegin, kMsgSnapshotEnd}) {
    const std::string framed = EncodeControl(type);
    FrameDecoder dec;
    dec.Append(framed.data(), framed.size());
    std::string_view payload;
    auto has = dec.Next(&payload);
    ASSERT_TRUE(has.ok());
    ASSERT_TRUE(*has);
    ASSERT_EQ(payload.size(), 1u);
    EXPECT_EQ(static_cast<uint8_t>(payload[0]), type);
  }
}

// ---------------------------------------------------------------------------
// Fail-closed decoding: corruption poisons, truncation waits.

TEST(WireProtocolTest, CrcMismatchPoisonsDecoderPermanently) {
  Rng rng(7);
  std::vector<Record> records = {RandomRecord(&rng), RandomRecord(&rng)};
  std::string stream = EncodeDataBatch(records.data(), records.size());
  // Flip one payload byte; the header (and its CRC field) stay intact.
  stream[kFrameHeaderBytes + (stream.size() - kFrameHeaderBytes) / 2] ^= 0x40;

  FrameDecoder dec;
  dec.Append(stream.data(), stream.size());
  std::string_view payload;
  auto has = dec.Next(&payload);
  ASSERT_FALSE(has.ok());
  EXPECT_TRUE(dec.poisoned());
  // Sticky: a later good frame cannot resurrect the stream.
  const std::string good = EncodeDataBatch(records.data(), 1);
  dec.Append(good.data(), good.size());
  EXPECT_FALSE(dec.Next(&payload).ok());
}

TEST(WireProtocolTest, OversizedLengthPrefixFailsWithoutAllocating) {
  // Header advertising a 1 GiB frame against a 4 KiB limit: rejected from
  // the 8 header bytes alone -- no buffering of attacker-sized lengths.
  char header[kFrameHeaderBytes];
  const uint32_t huge = 1u << 30;
  std::memcpy(header, &huge, 4);
  std::memset(header + 4, 0, 4);
  FrameDecoder dec(/*max_frame_bytes=*/4096);
  dec.Append(header, sizeof(header));
  std::string_view payload;
  auto has = dec.Next(&payload);
  ASSERT_FALSE(has.ok());
  EXPECT_TRUE(dec.poisoned());
}

TEST(WireProtocolTest, TruncatedFrameNeverYieldsAndNeverOverReads) {
  Rng rng(11);
  std::vector<Record> records = {RandomRecord(&rng)};
  const std::string stream = EncodeDataBatch(records.data(), records.size());
  // Byte at a time: exactly one frame appears, exactly when the last byte
  // lands. A mid-frame disconnect at any prefix leaves the decoder clean
  // (no error, no partial frame) -- the frame simply never happened.
  FrameDecoder dec;
  std::string_view payload;
  for (size_t i = 0; i + 1 < stream.size(); ++i) {
    dec.Append(&stream[i], 1);
    auto has = dec.Next(&payload);
    ASSERT_TRUE(has.ok()) << "at byte " << i;
    EXPECT_FALSE(*has) << "frame surfaced " << stream.size() - 1 - i
                       << " bytes early";
    EXPECT_EQ(dec.buffered_bytes(), i + 1);
    EXPECT_FALSE(dec.poisoned());
  }
  dec.Append(&stream[stream.size() - 1], 1);
  auto has = dec.Next(&payload);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(*has);
  std::vector<Record> got;
  ASSERT_TRUE(DecodeDataBatch(payload, &got).ok());
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], records[0]);
  EXPECT_FALSE(*dec.Next(&payload));  // and nothing invented after it
}

TEST(WireProtocolTest, DataPayloadRejectsWrongType) {
  std::vector<Record> out;
  const std::string sub = EncodeSubscribe("t");
  // Strip the frame header to get the raw payload.
  EXPECT_FALSE(
      DecodeDataBatch(
          std::string_view(sub).substr(kFrameHeaderBytes), &out)
          .ok());
  EXPECT_TRUE(out.empty());
}

TEST(WireProtocolTest, DataPayloadRejectsAbsurdCountBeforeAllocating) {
  // type + count claiming 2^60 records in a 9-byte payload.
  BinaryWriter w;
  w.WriteU8(kMsgData);
  w.WriteU64(uint64_t{1} << 60);
  std::vector<Record> out;
  EXPECT_FALSE(DecodeDataBatch(w.buffer(), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(WireProtocolTest, DataPayloadDecodeIsAllOrNothing) {
  Rng rng(13);
  std::vector<Record> records = {RandomRecord(&rng), RandomRecord(&rng),
                                 RandomRecord(&rng)};
  const std::string framed = EncodeDataBatch(records.data(), records.size());
  const std::string_view payload =
      std::string_view(framed).substr(kFrameHeaderBytes);

  // Pre-existing (recycled-vector) contents must survive a failed decode.
  std::vector<Record> out;
  out.push_back(MakeRecord(99, Value(int64_t{7})));

  // Truncated mid-record: error, out untouched.
  EXPECT_FALSE(
      DecodeDataBatch(payload.substr(0, payload.size() - 3), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].timestamp, 99);

  // Trailing garbage after the last record: error, out untouched.
  std::string padded(payload);
  padded += "xx";
  EXPECT_FALSE(DecodeDataBatch(padded, &out).ok());
  ASSERT_EQ(out.size(), 1u);

  // The intact payload appends after the recycled prefix.
  ASSERT_TRUE(DecodeDataBatch(payload, &out).ok());
  ASSERT_EQ(out.size(), 1u + records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(out[1 + i], records[i]);
  }
}

TEST(WireProtocolTest, GarbageBytesPoisonInsteadOfLoopingOrOverreading) {
  // 64 KiB of deterministic garbage: the decoder must terminate with an
  // error (poisoned) or keep waiting for more bytes -- never yield a frame,
  // never touch memory past what it was handed.
  Rng rng(17);
  std::string garbage(64u << 10, '\0');
  for (char& c : garbage) c = static_cast<char>(rng.NextBelow(256));
  FrameDecoder dec(/*max_frame_bytes=*/1u << 20);
  size_t off = 0;
  bool poisoned = false;
  while (off < garbage.size() && !poisoned) {
    const size_t chunk =
        std::min<size_t>(1 + rng.NextBelow(4096), garbage.size() - off);
    dec.Append(garbage.data() + off, chunk);
    off += chunk;
    std::string_view payload;
    auto has = dec.Next(&payload);
    if (!has.ok()) {
      poisoned = true;
    } else {
      // A random 4-byte length happening to be small enough is possible,
      // but the CRC then fails with probability 1 - 2^-32; either way a
      // frame must not surface from noise.
      EXPECT_FALSE(*has);
    }
  }
  EXPECT_TRUE(poisoned || dec.buffered_bytes() > 0);
}

}  // namespace
}  // namespace net
}  // namespace streamline
