// Multi-tenant standing queries: attach/detach through the QueryRegistry on
// a *running* job (no restart), cost-based placement, per-query result
// routing, slice garbage collection on detach, and checkpoint/restore of
// the dynamic-query table under injected crashes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <tuple>

#include "api/datastream.h"
#include "common/fault_injection.h"
#include "dataflow/query_registry.h"

namespace streamline {
namespace {

constexpr int64_t kKeys = 3;
constexpr int64_t kWindow = 50;

/// Deterministic checkpointable source: record i has ts = i, key = i % kKeys
/// and value = double(i % 7) (integer-valued, so sums are exact and window
/// results are byte-comparable across independent fold orders). Emits a
/// watermark per record and sleeps periodically so a test thread can attach
/// queries mid-stream.
class PacedSource : public SourceFunction {
 public:
  /// With a gate, the source stalls at record `gate_at` until the gate is
  /// set -- lets a test pin "attach happened with this much stream left"
  /// without racing the attach against stream completion.
  PacedSource(uint64_t total, uint64_t sleep_every,
              std::shared_ptr<std::atomic<bool>> gate = nullptr,
              uint64_t gate_at = 0)
      : total_(total), sleep_every_(sleep_every), gate_(std::move(gate)),
        gate_at_(gate_at) {}

  Result<SourcePoll> Poll(SourceContext* ctx) override {
    if (pos_ >= total_) return SourcePoll::kExhausted;
    if (gate_ != nullptr && pos_ == gate_at_ && !gate_->load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return SourcePoll::kHasMore;
    }
    Record r = MakeRecord(static_cast<Timestamp>(pos_),
                          Value(static_cast<int64_t>(pos_ % kKeys)),
                          Value(static_cast<double>(pos_ % 7)));
    const Timestamp ts = r.timestamp;
    if (!ctx->Emit(std::move(r))) return SourcePoll::kExhausted;
    ++pos_;
    ctx->EmitWatermark(ts);
    if (sleep_every_ > 0 && pos_ % sleep_every_ == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pos_ < total_ ? SourcePoll::kHasMore : SourcePoll::kExhausted;
  }

  Status SnapshotState(BinaryWriter* w) const override {
    w->WriteU64(pos_);
    return Status::Ok();
  }
  Status RestoreState(BinaryReader* r) override {
    auto pos = r->ReadU64();
    if (!pos.ok()) return pos.status();
    pos_ = *pos;
    return Status::Ok();
  }
  std::string Name() const override { return "paced"; }

 private:
  uint64_t total_;
  uint64_t sleep_every_;
  std::shared_ptr<std::atomic<bool>> gate_;
  uint64_t gate_at_;
  uint64_t pos_ = 0;
};

/// Builds source -> keyed window agg (spec tumbling kWindow + registry) ->
/// CollectSink and returns the sink.
std::shared_ptr<CollectSink> BuildRegistryJob(
    Environment* env, std::shared_ptr<QueryRegistry> registry, uint64_t total,
    uint64_t sleep_every,
    std::shared_ptr<std::atomic<bool>> gate = nullptr, uint64_t gate_at = 0) {
  auto sink = std::make_shared<CollectSink>();
  env->FromSource("gen",
                  [total, sleep_every, gate, gate_at](int, int)
                      -> std::unique_ptr<SourceFunction> {
                    return std::make_unique<PacedSource>(total, sleep_every,
                                                         gate, gate_at);
                  },
                  1)
      .KeyBy(0)
      .Window(std::make_shared<TumblingWindowFn>(kWindow))
      .WithRegistry(std::move(registry))
      .Aggregate(DynAggKind::kSum, 1, WindowBackend::kShared, "agg")
      .Sink(sink, "sink");
  return sink;
}

// (key, window_start) -> result, for one query id's records.
std::map<std::pair<int64_t, int64_t>, double> WindowsOf(
    const std::vector<Record>& records, int64_t query_id) {
  std::map<std::pair<int64_t, int64_t>, double> out;
  for (const Record& r : records) {
    if (r.field(3).AsInt64() != query_id) continue;
    auto [it, inserted] = out.try_emplace(
        {r.field(0).AsInt64(), r.field(1).AsInt64()}, r.field(4).AsDouble());
    EXPECT_TRUE(inserted) << "duplicate window (key=" << r.field(0).AsInt64()
                          << ", start=" << r.field(1).AsInt64()
                          << ") for query " << query_id;
  }
  return out;
}

/// Spins until the sink holds at least `n` records (the job is visibly
/// processing) or the deadline passes.
bool AwaitSinkSize(const CollectSink& sink, size_t n,
                   std::chrono::seconds timeout = std::chrono::seconds(30)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (sink.size() < n) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Attach on a running job: shared splice + backfill byte-identity.

TEST(QueryRegistryTest, AttachedLateQueryMatchesSpecQueryByteForByte) {
  auto registry = std::make_shared<QueryRegistry>();
  auto gate = std::make_shared<std::atomic<bool>>(false);
  Environment env;
  auto sink = BuildRegistryJob(&env, registry, /*total=*/40000,
                               /*sleep_every=*/200, gate, /*gate_at=*/20000);
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());

  // Wait until the job has demonstrably produced output, then attach the
  // same window shape as the spec query -- while records keep flowing. The
  // gate guarantees at least half the stream arrives after the attach.
  ASSERT_TRUE(AwaitSinkSize(*sink, 60));
  const uint64_t id = registry->AttachTumbling(kWindow);
  gate->store(true);
  EXPECT_TRUE(registry->WaitQueryApplied(id, std::chrono::seconds(30)));
  // Concurrent progress: the attach went live without stopping the
  // pipeline, which keeps producing afterwards.
  const size_t at_attach = sink->size();
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  EXPECT_GT(sink->size(), at_attach);

  const auto records = sink->records();
  const auto spec = WindowsOf(records, 0);
  const auto late = WindowsOf(records, static_cast<int64_t>(id));
  EXPECT_EQ(spec.size(), static_cast<size_t>(kKeys * (40000 / kWindow)));
  // The late query serves only windows from its attach point on, but every
  // window it serves is complete: byte-identical to the from-start query.
  ASSERT_GE(late.size(), 1u) << "attached query never fired";
  EXPECT_LT(late.size(), spec.size()) << "attach happened after start";
  for (const auto& [kw, v] : late) {
    auto it = spec.find(kw);
    ASSERT_NE(it, spec.end()) << "late query emitted unknown window start="
                              << kw.second;
    EXPECT_EQ(it->second, v) << "window (key=" << kw.first
                             << ", start=" << kw.second << ") diverged";
  }
  EXPECT_EQ(registry->stats().active_queries, 1u);
  EXPECT_EQ(registry->stats().attaches, 1u);
}

// ---------------------------------------------------------------------------
// Detach: slice GC observable through registry metrics.

TEST(QueryRegistryTest, DetachGarbageCollectsSlicesAndUpdatesGauges) {
  auto registry = std::make_shared<QueryRegistry>();
  auto gate = std::make_shared<std::atomic<bool>>(false);
  Environment env;
  auto sink = BuildRegistryJob(&env, registry, /*total=*/60000,
                               /*sleep_every=*/200, gate, /*gate_at=*/30000);
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  MetricsRegistry* metrics = (*job)->metrics();

  ASSERT_TRUE(AwaitSinkSize(*sink, 60));
  // Long range, aligned slide: pins ~range/kWindow slices per key that the
  // spec tumbling query alone would have evicted right after firing.
  const uint64_t id = registry->AttachSliding(/*range=*/4000, kWindow);
  gate->store(true);
  ASSERT_EQ(registry->PlacementOf(id), QueryPlacement::kShared);
  ASSERT_TRUE(registry->WaitQueryApplied(id, std::chrono::seconds(30)));
  EXPECT_EQ(metrics->GetGauge("registry.queries")->value(), 1.0);

  // Let the long-range query accumulate pinned slices.
  const size_t before_detach = sink->size();
  ASSERT_TRUE(AwaitSinkSize(*sink, before_detach + 120));
  EXPECT_GT(metrics->GetGauge("registry.slices_shared")->value(), 0.0);

  ASSERT_TRUE(registry->Detach(id).ok());
  ASSERT_TRUE(registry->WaitQueryApplied(id, std::chrono::seconds(30)));
  // The detach's application freed the slices only this query pinned; the
  // worker reported them in the same ack WaitQueryApplied waited on.
  EXPECT_GT(metrics->GetCounter("registry.slices_gc")->value(), 0u);
  EXPECT_EQ(metrics->GetGauge("registry.queries")->value(), 0.0);
  EXPECT_EQ(registry->stats().active_queries, 0u);
  EXPECT_EQ(registry->stats().detaches, 1u);

  (*job)->Cancel();
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  // Double detach is rejected.
  EXPECT_EQ(registry->Detach(id).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry->Detach(id + 999).code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Cost model: placement decisions and the factoring rewrite.

TEST(QueryRegistryTest, CostModelPlacesPathologicalSlideStandalone) {
  // Default estimates: plenty of records per slide -> sharing amortizes.
  QueryRegistry shared_reg;
  const uint64_t a = shared_reg.AttachSliding(1000, 100);
  EXPECT_EQ(shared_reg.PlacementOf(a), QueryPlacement::kShared);

  // Starved arrival-rate estimate: each slide sees ~one record, so every
  // record would pay two O(log S) boundary walks -- costlier than the
  // single combine a standalone tumbling window needs.
  QueryRegistry::Options opts;
  opts.est_records_per_time = 1e-9;
  QueryRegistry sparse_reg(opts);
  const uint64_t b = sparse_reg.AttachTumbling(100);
  EXPECT_EQ(sparse_reg.PlacementOf(b), QueryPlacement::kStandalone);
}

TEST(QueryRegistryTest, FactoringWindowCountsAsSharedRewrite) {
  QueryRegistry reg;
  (void)reg.AttachSliding(100, 10);
  EXPECT_EQ(reg.stats().rewrites_shared, 0u);
  // Begin grid of tumbling(100) at origin 0 is a subset of sliding(100,10)'s
  // cuts: attach rewrites to pure sharing, zero new slice boundaries.
  (void)reg.AttachTumbling(100);
  EXPECT_EQ(reg.stats().rewrites_shared, 1u);
  // Misaligned origin: begins fall between existing cuts -> not a rewrite.
  (void)reg.AttachTumbling(100, /*origin=*/3);
  EXPECT_EQ(reg.stats().rewrites_shared, 1u);
}

TEST(QueryRegistryTest, StandalonePlacementServesCompleteWindowsOnly) {
  QueryRegistry::Options opts;
  opts.est_records_per_time = 1e-9;  // force kStandalone for any attach
  auto registry = std::make_shared<QueryRegistry>(opts);
  auto gate = std::make_shared<std::atomic<bool>>(false);
  Environment env;
  auto sink = BuildRegistryJob(&env, registry, /*total=*/40000,
                               /*sleep_every=*/200, gate, /*gate_at=*/20000);
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());

  ASSERT_TRUE(AwaitSinkSize(*sink, 60));
  const uint64_t id = registry->AttachTumbling(kWindow);
  gate->store(true);
  ASSERT_EQ(registry->PlacementOf(id), QueryPlacement::kStandalone);
  ASSERT_TRUE(registry->WaitQueryApplied(id, std::chrono::seconds(30)));
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  const auto records = sink->records();
  const auto spec = WindowsOf(records, 0);
  const auto dyn = WindowsOf(records, static_cast<int64_t>(id));
  ASSERT_GE(dyn.size(), 1u) << "standalone query never fired";
  for (const auto& [kw, v] : dyn) {
    auto it = spec.find(kw);
    ASSERT_NE(it, spec.end());
    EXPECT_EQ(it->second, v) << "window (key=" << kw.first
                             << ", start=" << kw.second << ") diverged";
  }
}

// ---------------------------------------------------------------------------
// Per-query result routing through the demux sink.

TEST(QueryRegistryTest, DemuxSinkRoutesResultsToPerQueryHandlers) {
  auto registry = std::make_shared<QueryRegistry>();
  std::atomic<uint64_t> spec_results{0};
  registry->SetDefaultHandler(
      [&spec_results](const Record&) { ++spec_results; });

  auto gate = std::make_shared<std::atomic<bool>>(false);
  Environment env;
  env.FromSource("gen",
                 [gate](int, int) -> std::unique_ptr<SourceFunction> {
                   return std::make_unique<PacedSource>(40000, 200, gate,
                                                        20000);
                 },
                 1)
      .KeyBy(0)
      .Window(std::make_shared<TumblingWindowFn>(kWindow))
      .WithRegistry(registry)
      .Aggregate(DynAggKind::kSum, 1, WindowBackend::kShared, "agg")
      .Sink(std::make_shared<QueryDemuxSink>(registry), "demux");
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (spec_results.load() < 60 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ASSERT_GE(spec_results.load(), 60u);

  std::atomic<uint64_t> my_results{0};
  std::atomic<bool> mistagged{false};
  uint64_t id = 0;
  id = registry->AttachTumbling(
      kWindow, 0, [&my_results, &mistagged, &id](const Record& r) {
        ++my_results;
        if (r.field(3).AsInt64() != static_cast<int64_t>(id)) {
          mistagged = true;
        }
      });
  gate->store(true);
  ASSERT_TRUE(registry->WaitQueryApplied(id, std::chrono::seconds(30)));
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  EXPECT_GE(my_results.load(), 1u);
  EXPECT_FALSE(mistagged.load());
  EXPECT_EQ(registry->ResultCount(id), my_results.load());
  EXPECT_GT(spec_results.load(), my_results.load());
}

// ---------------------------------------------------------------------------
// Checkpoint/restore: the dynamic-query table survives injected crashes.

TEST(QueryRegistryTest, RegistryQueriesSurviveChaosRecovery) {
  static constexpr uint64_t kTotal = 2000;
  // Fault-free reference: same job, same pre-attached registry query.
  auto RunOnce = [](bool inject_fault, SupervisionStats* stats,
                    uint64_t* dyn_id) {
    auto registry = std::make_shared<QueryRegistry>();
    *dyn_id = registry->AttachTumbling(kWindow);
    Environment env;
    auto sink = std::make_shared<TransactionalCollectSink>();
    env.FromSource("gen",
                   [](int, int) -> std::unique_ptr<SourceFunction> {
                     return std::make_unique<PacedSource>(kTotal, 100);
                   },
                   1)
        .KeyBy(0)
        .Window(std::make_shared<TumblingWindowFn>(kWindow))
        .WithRegistry(registry)
        .Aggregate(DynAggKind::kSum, 1, WindowBackend::kShared, "agg")
        .Sink(sink, "sink");
    JobOptions opts;
    opts.checkpoint_interval_ms = 2;
    if (inject_fault) {
      auto injector = std::make_shared<FaultInjector>();
      injector->AddRule(FaultInjector::FailAtHit("op:agg", 900));
      opts.fault_injector = injector;
    }
    RestartPolicy policy;
    policy.max_restarts = 5;
    policy.initial_backoff_ms = 1;
    EXPECT_TRUE(env.ExecuteSupervised(opts, policy, stats).ok());
    sink->OnBarrier(9999);  // commit the tail
    return sink->committed();
  };

  SupervisionStats ref_stats;
  uint64_t ref_id = 0;
  const auto ref = RunOnce(false, &ref_stats, &ref_id);
  SupervisionStats chaos_stats;
  uint64_t chaos_id = 0;
  const auto got = RunOnce(true, &chaos_stats, &chaos_id);
  ASSERT_GE(chaos_stats.restarts, 1) << "fault never fired";
  ASSERT_EQ(ref_id, chaos_id);

  // Spec query: exactly the fault-free window set and values.
  const auto ref_spec = WindowsOf(ref, 0);
  const auto got_spec = WindowsOf(got, 0);
  EXPECT_EQ(got_spec, ref_spec);
  EXPECT_EQ(ref_spec.size(), static_cast<size_t>(kKeys * (kTotal / kWindow)));

  // Dynamic query: every committed window is exactly-once (WindowsOf
  // asserts) and carries the correct sum; which windows it covers may
  // legitimately shift with where the attach landed in each run.
  const auto got_dyn = WindowsOf(got, static_cast<int64_t>(chaos_id));
  ASSERT_GE(got_dyn.size(), 1u) << "attached query never fired under chaos";
  for (const auto& [kw, v] : got_dyn) {
    double expect = 0;
    for (int64_t t = kw.second; t < kw.second + kWindow; ++t) {
      if (t >= 0 && t < static_cast<int64_t>(kTotal) && t % kKeys == kw.first) {
        expect += static_cast<double>(t % 7);
      }
    }
    EXPECT_EQ(v, expect) << "window (key=" << kw.first
                         << ", start=" << kw.second << ") wrong under chaos";
  }
}

}  // namespace
}  // namespace streamline
