#include "viz/raster.h"

#include <gtest/gtest.h>

namespace streamline {
namespace {

TEST(RasterTest, SetGetAndBounds) {
  Raster r(10, 5);
  EXPECT_FALSE(r.Get(3, 3));
  r.Set(3, 3);
  EXPECT_TRUE(r.Get(3, 3));
  r.Set(-1, 0);   // silently clipped
  r.Set(10, 0);
  r.Set(0, 5);
  EXPECT_EQ(r.CountSetPixels(), 1u);
}

TEST(RasterTest, HorizontalLine) {
  Raster r(10, 3);
  r.DrawLine(1, 1, 8, 1);
  for (int x = 1; x <= 8; ++x) EXPECT_TRUE(r.Get(x, 1)) << x;
  EXPECT_EQ(r.CountSetPixels(), 8u);
}

TEST(RasterTest, VerticalAndDiagonalLines) {
  Raster r(5, 5);
  r.DrawLine(2, 0, 2, 4);
  EXPECT_EQ(r.CountSetPixels(), 5u);
  Raster d(5, 5);
  d.DrawLine(0, 0, 4, 4);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(d.Get(i, i));
}

TEST(RasterTest, LineIsDirectionSymmetricEnough) {
  Raster a(20, 10);
  Raster b(20, 10);
  a.DrawLine(1, 1, 17, 8);
  b.DrawLine(17, 8, 1, 1);
  // Bresenham may differ by a pixel or two between directions.
  EXPECT_LT(Raster::PixelError(a, b), 0.02);
}

TEST(RasterTest, PixelErrorExtremes) {
  Raster a(10, 10);
  Raster b(10, 10);
  EXPECT_DOUBLE_EQ(Raster::PixelError(a, b), 0.0);
  a.Set(0, 0);
  EXPECT_DOUBLE_EQ(Raster::PixelError(a, b), 0.01);
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) b.Set(x, y);
  }
  // a has 1 set pixel, b all 100: 99 differences.
  EXPECT_DOUBLE_EQ(Raster::PixelError(a, b), 0.99);
}

TEST(RasterizeSeriesTest, SinglePointAndPolyline) {
  const Raster one = RasterizeSeries({{50, 0.5}}, 0, 100, 0, 1, 10, 10);
  EXPECT_EQ(one.CountSetPixels(), 1u);
  const Raster line =
      RasterizeSeries({{0, 0.0}, {99, 1.0}}, 0, 100, 0, 1, 10, 10);
  EXPECT_GE(line.CountSetPixels(), 9u);
  EXPECT_TRUE(line.Get(0, 0));
  EXPECT_TRUE(line.Get(9, 9));
}

TEST(RasterizeSeriesTest, EmptySeries) {
  const Raster r = RasterizeSeries({}, 0, 100, 0, 1, 10, 10);
  EXPECT_EQ(r.CountSetPixels(), 0u);
}

TEST(RasterizeSeriesTest, FlatSeriesConstantValueRange) {
  // v_min == v_max must not divide by zero.
  const Raster r =
      RasterizeSeries({{0, 5.0}, {50, 5.0}, {99, 5.0}}, 0, 100, 5.0, 5.0,
                      10, 10);
  EXPECT_GT(r.CountSetPixels(), 0u);
}

TEST(ValueRangeTest, MinMax) {
  EXPECT_EQ(ValueRange({}), (std::pair<double, double>{0.0, 1.0}));
  const auto [lo, hi] = ValueRange({{0, 3.0}, {1, -2.0}, {2, 7.0}});
  EXPECT_DOUBLE_EQ(lo, -2.0);
  EXPECT_DOUBLE_EQ(hi, 7.0);
}

}  // namespace
}  // namespace streamline
