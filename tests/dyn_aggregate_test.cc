#include "window/dyn_aggregate.h"

#include <gtest/gtest.h>

#include <vector>

namespace streamline {
namespace {

DynPartial FoldAll(const DynAggregate& agg,
                   const std::vector<std::pair<Timestamp, double>>& in) {
  DynPartial acc = agg.Identity();
  for (const auto& [ts, v] : in) {
    acc = agg.Combine(acc, agg.Lift(Value(v), ts));
  }
  return acc;
}

TEST(DynAggregateTest, Sum) {
  DynAggregate agg(DynAggKind::kSum);
  auto p = FoldAll(agg, {{1, 1.0}, {2, 2.0}, {3, 3.5}});
  EXPECT_DOUBLE_EQ(agg.Lower(p).AsDouble(), 6.5);
  EXPECT_DOUBLE_EQ(agg.Lower(agg.Identity()).AsDouble(), 0.0);
}

TEST(DynAggregateTest, Count) {
  DynAggregate agg(DynAggKind::kCount);
  auto p = FoldAll(agg, {{1, 1.0}, {2, 2.0}});
  EXPECT_EQ(agg.Lower(p).AsInt64(), 2);
  // Count lifts non-numeric values too.
  auto q = agg.Combine(p, agg.Lift(Value("str"), 3));
  EXPECT_EQ(agg.Lower(q).AsInt64(), 3);
}

TEST(DynAggregateTest, MinMax) {
  DynAggregate mn(DynAggKind::kMin);
  DynAggregate mx(DynAggKind::kMax);
  auto in = std::vector<std::pair<Timestamp, double>>{{1, 3.0}, {2, -1.0},
                                                      {3, 2.0}};
  EXPECT_DOUBLE_EQ(mn.Lower(FoldAll(mn, in)).AsDouble(), -1.0);
  EXPECT_DOUBLE_EQ(mx.Lower(FoldAll(mx, in)).AsDouble(), 3.0);
  EXPECT_TRUE(mn.Lower(mn.Identity()).is_null());
}

TEST(DynAggregateTest, Avg) {
  DynAggregate agg(DynAggKind::kAvg);
  auto p = FoldAll(agg, {{1, 2.0}, {2, 4.0}, {3, 9.0}});
  EXPECT_DOUBLE_EQ(agg.Lower(p).AsDouble(), 5.0);
  EXPECT_TRUE(agg.Lower(agg.Identity()).is_null());
}

TEST(DynAggregateTest, VarianceMatchesFormula) {
  DynAggregate agg(DynAggKind::kVariance);
  auto p = FoldAll(agg, {{1, 2.0}, {2, 4.0}, {3, 4.0}, {4, 4.0},
                         {5, 5.0}, {6, 5.0}, {7, 7.0}, {8, 9.0}});
  EXPECT_NEAR(agg.Lower(p).AsDouble(), 4.0, 1e-12);
}

TEST(DynAggregateTest, VarianceCombineSplit) {
  DynAggregate agg(DynAggKind::kVariance);
  auto a = FoldAll(agg, {{1, 1.0}, {2, 2.0}});
  auto b = FoldAll(agg, {{3, 3.0}, {4, 4.0}, {5, 5.0}});
  auto whole = FoldAll(agg, {{1, 1.0}, {2, 2.0}, {3, 3.0}, {4, 4.0},
                             {5, 5.0}});
  EXPECT_NEAR(agg.Lower(agg.Combine(a, b)).AsDouble(),
              agg.Lower(whole).AsDouble(), 1e-12);
}

TEST(DynAggregateTest, FirstLastByTimestamp) {
  DynAggregate first(DynAggKind::kFirst);
  DynAggregate last(DynAggKind::kLast);
  auto in = std::vector<std::pair<Timestamp, double>>{{5, 50.0}, {1, 10.0},
                                                      {9, 90.0}};
  EXPECT_DOUBLE_EQ(first.Lower(FoldAll(first, in)).AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(last.Lower(FoldAll(last, in)).AsDouble(), 90.0);
}

TEST(DynAggregateTest, ArgMaxTsFindsThePeak) {
  DynAggregate agg(DynAggKind::kArgMaxTs);
  auto p = FoldAll(agg, {{10, 1.0}, {20, 9.0}, {30, 3.0}, {40, 9.0}});
  // Peak value 9.0 first occurred at ts=20 (ties keep the earliest).
  EXPECT_EQ(agg.Lower(p).AsInt64(), 20);
  EXPECT_TRUE(agg.Lower(agg.Identity()).is_null());
}

TEST(DynAggregateTest, InvertSumAndAvg) {
  DynAggregate sum(DynAggKind::kSum);
  auto whole = FoldAll(sum, {{1, 1.0}, {2, 2.0}, {3, 3.0}});
  auto part = FoldAll(sum, {{1, 1.0}});
  EXPECT_DOUBLE_EQ(sum.Lower(sum.Invert(whole, part)).AsDouble(), 5.0);

  DynAggregate avg(DynAggKind::kAvg);
  auto w2 = FoldAll(avg, {{1, 2.0}, {2, 4.0}, {3, 6.0}});
  auto p2 = FoldAll(avg, {{1, 2.0}});
  EXPECT_DOUBLE_EQ(avg.Lower(avg.Invert(w2, p2)).AsDouble(), 5.0);
}

TEST(DynAggregateTest, InvertibilityFlags) {
  EXPECT_TRUE(DynAggregate(DynAggKind::kSum).invertible());
  EXPECT_TRUE(DynAggregate(DynAggKind::kCount).invertible());
  EXPECT_TRUE(DynAggregate(DynAggKind::kAvg).invertible());
  EXPECT_FALSE(DynAggregate(DynAggKind::kMin).invertible());
  EXPECT_FALSE(DynAggregate(DynAggKind::kMax).invertible());
  EXPECT_FALSE(DynAggregate(DynAggKind::kVariance).invertible());
}

TEST(DynAggregateTest, IdentityIsNeutralForAllKinds) {
  for (DynAggKind kind :
       {DynAggKind::kSum, DynAggKind::kCount, DynAggKind::kMin,
        DynAggKind::kMax, DynAggKind::kAvg, DynAggKind::kVariance,
        DynAggKind::kFirst, DynAggKind::kLast, DynAggKind::kArgMaxTs}) {
    DynAggregate agg(kind);
    const DynPartial p = agg.Lift(Value(3.5), 7);
    EXPECT_EQ(agg.Combine(agg.Identity(), p), p)
        << DynAggKindToString(kind);
    EXPECT_EQ(agg.Combine(p, agg.Identity()), p)
        << DynAggKindToString(kind);
  }
}

TEST(DynAggregateTest, PartialSerdeRoundTrip) {
  DynAggregate agg(DynAggKind::kVariance);
  auto p = FoldAll(agg, {{1, 1.0}, {2, 5.0}, {3, 9.0}});
  BinaryWriter w;
  DynAggregate::SerializePartial(p, &w);
  BinaryReader r(w.buffer());
  auto got = DynAggregate::DeserializePartial(&r);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, p);
}

}  // namespace
}  // namespace streamline
