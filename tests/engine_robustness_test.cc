// Engine robustness: randomized topologies, checkpointing under heavy
// backpressure, broadcast edges, and cancellation at awkward moments.

#include <gtest/gtest.h>

#include <thread>

#include "api/datastream.h"
#include "common/random.h"

namespace streamline {
namespace {

std::vector<Record> Numbers(int n) {
  std::vector<Record> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(MakeRecord(i, Value(static_cast<int64_t>(i))));
  }
  return out;
}

// Builds a random DAG of filters/maps/unions over two sources and checks
// that the job runs and conserves records (all operators are 1:1 or
// merging, no drops).
TEST(EngineRobustnessTest, RandomTopologiesRunClean) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    Environment env;
    std::vector<DataStream> streams;
    streams.push_back(env.FromRecords(Numbers(200), "src_a"));
    streams.push_back(env.FromRecords(Numbers(300), "src_b"));
    const int ops = 3 + static_cast<int>(rng.NextBelow(6));
    for (int i = 0; i < ops; ++i) {
      const uint64_t choice = rng.NextBelow(3);
      const size_t which = rng.NextBelow(streams.size());
      if (choice == 0) {
        streams.push_back(streams[which].Map(
            [](Record&& r) { return std::move(r); }));
      } else if (choice == 1) {
        streams.push_back(streams[which].Rebalance(
            1 + static_cast<int>(rng.NextBelow(3))));
      } else {
        const size_t other = rng.NextBelow(streams.size());
        streams.push_back(streams[which].Union(streams[other]));
      }
    }
    // Sink every leaf (stream with no consumer) so nothing dangles.
    std::vector<bool> consumed(streams.size(), false);
    // A stream is a leaf unless a later stream was derived from it; we
    // cannot introspect that here, so simply collect from the final one
    // and sink the rest into null sinks.
    auto null_sink = std::make_shared<NullSink>();
    for (auto& s : streams) s.Sink(null_sink);
    ASSERT_TRUE(env.Execute().ok()) << "seed " << seed;
    EXPECT_GT(null_sink->count(), 0u) << "seed " << seed;
  }
}

TEST(EngineRobustnessTest, CheckpointUnderBackpressure) {
  // Tiny channels + a slow sink: barriers must still align and complete
  // while every queue in the job is full.
  Environment env(2);
  auto slow_sink = std::make_shared<CallbackSink>([](const Record&) {
    std::this_thread::sleep_for(std::chrono::microseconds(30));
  });
  env.FromGenerator("gen",
                    [](uint64_t seq) -> std::optional<Record> {
                      if (seq >= 30'000) return std::nullopt;
                      return MakeRecord(static_cast<Timestamp>(seq),
                                        Value(static_cast<int64_t>(seq % 16)),
                                        Value(1.0));
                    },
                    /*watermark_every=*/16)
      .KeyBy(0)
      .Reduce([](const Record& acc, const Record& in) {
        Record out = acc;
        out.fields[1] = Value(acc.field(1).AsDouble() + in.field(1).AsDouble());
        return out;
      })
      .Sink(slow_sink);
  JobOptions opts;
  opts.channel_capacity = 4;
  opts.batch_size = 4;
  opts.snapshot_store = std::make_shared<SnapshotStore>();
  auto job = env.CreateJob(opts);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const uint64_t cp = (*job)->TriggerCheckpoint();
  EXPECT_TRUE((*job)->AwaitCheckpoint(cp, 20.0));
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  EXPECT_GT(opts.snapshot_store->NumEntries(cp), 0u);
}

TEST(EngineRobustnessTest, BroadcastReachesEverySubtask) {
  // Manual graph: source --broadcast--> op(parallelism 3) -> sink.
  LogicalGraph g;
  const int src = g.AddSource(
      "src", 1, [](int, int) -> std::unique_ptr<SourceFunction> {
        return std::make_unique<VectorSource>(Numbers(100));
      });
  auto sink = std::make_shared<CollectSink>();
  const int op = g.AddOperator("tag", 3, []() {
    return std::make_unique<MapOperator>("tag", [](Record&& r) {
      return std::move(r);
    });
  });
  const int snk = g.AddOperator("sink", 3, [sink]() {
    return std::make_unique<SinkOperator>("sink", sink);
  });
  ASSERT_TRUE(g.Connect(src, op, PartitionScheme::kBroadcast).ok());
  ASSERT_TRUE(g.Connect(op, snk, PartitionScheme::kForward).ok());
  auto job = Job::Create(g);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Run().ok());
  // Every subtask got every record.
  EXPECT_EQ(sink->size(), 300u);
}

TEST(EngineRobustnessTest, CancelDuringHeavyLoadDrainsCleanly) {
  for (int round = 0; round < 3; ++round) {
    Environment env(2);
    auto sink = std::make_shared<NullSink>();
    env.FromGenerator("endless",
                      [](uint64_t seq) {
                        return MakeRecord(static_cast<Timestamp>(seq),
                                          Value(static_cast<int64_t>(seq % 8)),
                                          Value(1.0));
                      })
        .KeyBy(0)
        .Window(std::make_shared<TumblingWindowFn>(1000))
        .Aggregate(DynAggKind::kSum, 1)
        .Sink(sink);
    auto job = env.CreateJob();
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE((*job)->Start().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5 + 10 * round));
    (*job)->Cancel();
    ASSERT_TRUE((*job)->AwaitCompletion().ok());
  }
  SUCCEED();
}

TEST(EngineRobustnessTest, EmptySourceStillFlushesPipeline) {
  Environment env;
  auto sink = env.FromRecords({}, "empty")
                  .KeyBy(0)
                  .Window(std::make_shared<TumblingWindowFn>(10))
                  .Aggregate(DynAggKind::kCount, 0)
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  EXPECT_EQ(sink->size(), 0u);
}

TEST(EngineRobustnessTest, SingleRecordJob) {
  Environment env;
  auto sink = env.FromRecords({MakeRecord(7, Value(int64_t{1}), Value(2.0))})
                  .KeyBy(0)
                  .Window(std::make_shared<TumblingWindowFn>(10))
                  .Aggregate(DynAggKind::kSum, 1)
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  ASSERT_EQ(sink->size(), 1u);
  EXPECT_DOUBLE_EQ(sink->records()[0].field(4).AsDouble(), 2.0);
}

}  // namespace
}  // namespace streamline
