#include "dataflow/temporal_join.h"

#include <gtest/gtest.h>

#include "api/datastream.h"

namespace streamline {
namespace {

class VecCollector : public Collector {
 public:
  void Emit(Record&& r) override { records.push_back(std::move(r)); }
  std::vector<Record> records;
};

TemporalJoinOperator::Spec BasicSpec(bool emit_unmatched = false) {
  TemporalJoinOperator::Spec spec;
  spec.fact_key = KeyField(0);
  spec.table_key = KeyField(0);
  spec.emit_unmatched = emit_unmatched;
  spec.table_width = 2;
  return spec;
}

TEST(TemporalJoinTest, EnrichesWithLatestRow) {
  TemporalJoinOperator op("tj", BasicSpec());
  VecCollector out;
  // Table row for key 1: [1, "v1", 10.0].
  op.ProcessRecord(1, MakeRecord(0, Value(int64_t{1}), Value("v1"),
                                 Value(10.0)),
                   &out);
  // Fact for key 1.
  op.ProcessRecord(0, MakeRecord(5, Value(int64_t{1}), Value(100.0)), &out);
  ASSERT_EQ(out.records.size(), 1u);
  ASSERT_EQ(out.records[0].num_fields(), 5u);
  EXPECT_EQ(out.records[0].field(3).AsString(), "v1");
  // Upsert the row; later facts see the new version.
  op.ProcessRecord(1, MakeRecord(6, Value(int64_t{1}), Value("v2"),
                                 Value(20.0)),
                   &out);
  op.ProcessRecord(0, MakeRecord(7, Value(int64_t{1}), Value(200.0)), &out);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[1].field(3).AsString(), "v2");
  EXPECT_EQ(op.table_size(), 1u);
}

TEST(TemporalJoinTest, UnmatchedDroppedOrPadded) {
  {
    TemporalJoinOperator drop("tj", BasicSpec(false));
    VecCollector out;
    drop.ProcessRecord(0, MakeRecord(1, Value(int64_t{9}), Value(1.0)), &out);
    EXPECT_TRUE(out.records.empty());
  }
  {
    TemporalJoinOperator pad("tj", BasicSpec(true));
    VecCollector out;
    pad.ProcessRecord(0, MakeRecord(1, Value(int64_t{9}), Value(1.0)), &out);
    ASSERT_EQ(out.records.size(), 1u);
    ASSERT_EQ(out.records[0].num_fields(), 4u);  // 2 fact + 2 null pad
    EXPECT_TRUE(out.records[0].field(2).is_null());
    EXPECT_TRUE(out.records[0].field(3).is_null());
  }
}

TEST(TemporalJoinTest, TableStateSnapshotRoundTrip) {
  TemporalJoinOperator op("tj", BasicSpec());
  VecCollector out;
  for (int k = 0; k < 10; ++k) {
    op.ProcessRecord(
        1,
        MakeRecord(k, Value(static_cast<int64_t>(k)),
                   Value("row" + std::to_string(k)), Value(1.0 * k)),
        &out);
  }
  BinaryWriter w;
  ASSERT_TRUE(op.SnapshotState(&w).ok());
  TemporalJoinOperator restored("tj", BasicSpec());
  BinaryReader r(w.buffer());
  ASSERT_TRUE(restored.RestoreState(&r).ok());
  EXPECT_EQ(restored.table_size(), 10u);
  restored.ProcessRecord(0, MakeRecord(99, Value(int64_t{7}), Value(0.0)),
                         &out);
  ASSERT_EQ(out.records.size(), 1u);
  // Joined layout: [fact key, fact value, row key, row name, row value].
  EXPECT_EQ(out.records[0].field(3).AsString(), "row7");
}

TEST(TemporalJoinTest, EndToEndThroughApi) {
  Environment env(2);
  // Dimension changelog: item -> category.
  std::vector<Record> table_rows;
  for (int item = 0; item < 20; ++item) {
    table_rows.push_back(MakeRecord(
        0, Value(static_cast<int64_t>(item)),
        Value("cat" + std::to_string(item % 4))));
  }
  // Facts arrive after the table (ts > 0 just for clarity; the temporal
  // join is processing-order based, so feed the table from one bounded
  // source which completes quickly).
  std::vector<Record> facts;
  for (int i = 0; i < 200; ++i) {
    facts.push_back(MakeRecord(100 + i, Value(static_cast<int64_t>(i % 20)),
                               Value(1.0)));
  }
  auto table = env.FromRecords(std::move(table_rows), "dim").KeyBy(0);
  auto sink = env.FromRecords(std::move(facts), "facts")
                  .KeyBy(0)
                  .TemporalJoin(table, /*table_width=*/2,
                                /*emit_unmatched=*/true)
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  ASSERT_EQ(sink->size(), 200u);
  // Every matched record carries its category; unmatched ones (races where
  // a fact beat its table row) are null-padded rather than dropped.
  size_t matched = 0;
  for (const Record& r : sink->records()) {
    ASSERT_EQ(r.num_fields(), 4u);
    if (!r.field(3).is_null()) {
      ++matched;
      const int64_t item = r.field(0).AsInt64();
      EXPECT_EQ(r.field(3).AsString(),
                "cat" + std::to_string(item % 4));
    }
  }
  EXPECT_GT(matched, 0u);
}

}  // namespace
}  // namespace streamline
