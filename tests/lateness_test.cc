// Allowed-lateness behaviour of the windowed operator: records up to the
// configured lateness behind the upstream watermark are still counted;
// older ones are dropped.

#include <gtest/gtest.h>

#include "api/datastream.h"
#include "dataflow/window_operator.h"

namespace streamline {
namespace {

class VecCollector : public Collector {
 public:
  void Emit(Record&& r) override { records.push_back(std::move(r)); }
  std::vector<Record> records;
};

WindowAggSpec CountSpec(Duration lateness) {
  WindowAggSpec spec;
  spec.key = KeyField(0);
  spec.value_field = 1;
  spec.agg_kind = DynAggKind::kCount;
  spec.windows = {std::make_shared<TumblingWindowFn>(10)};
  spec.allowed_lateness = lateness;
  return spec;
}

Record Elem(Timestamp ts) {
  return MakeRecord(ts, Value(int64_t{0}), Value(1.0));
}

TEST(LatenessTest, ZeroLatenessDropsStragglers) {
  WindowAggOperator op("w", CountSpec(0));
  ASSERT_TRUE(op.Open(OperatorContext{}).ok());
  VecCollector out;
  op.ProcessRecord(0, Elem(5), &out);
  op.ProcessWatermark(12, &out);  // fires [0,10)
  op.ProcessRecord(0, Elem(7), &out);  // late by 5: dropped
  op.ProcessWatermark(kMaxTimestamp, &out);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].field(4).AsInt64(), 1);
}

TEST(LatenessTest, WithinLatenessIsCounted) {
  WindowAggOperator op("w", CountSpec(10));
  ASSERT_TRUE(op.Open(OperatorContext{}).ok());
  VecCollector out;
  op.ProcessRecord(0, Elem(5), &out);
  op.ProcessWatermark(12, &out);  // effective clock 2: window stays open
  EXPECT_TRUE(out.records.empty());
  op.ProcessRecord(0, Elem(7), &out);  // 5 behind wm, within lateness
  op.ProcessWatermark(21, &out);  // effective 11: fires [0,10) with BOTH
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].field(4).AsInt64(), 2);
}

TEST(LatenessTest, BeyondLatenessStillDropped) {
  WindowAggOperator op("w", CountSpec(10));
  ASSERT_TRUE(op.Open(OperatorContext{}).ok());
  VecCollector out;
  op.ProcessRecord(0, Elem(5), &out);
  op.ProcessWatermark(30, &out);       // effective clock 20: [0,10) fired
  op.ProcessRecord(0, Elem(6), &out);  // 24 behind: beyond lateness
  op.ProcessWatermark(kMaxTimestamp, &out);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].field(4).AsInt64(), 1);
}

TEST(LatenessTest, EndToEndThroughTheApi) {
  // Two parallel source subtasks with interleaved timestamps and sparse
  // watermarks: with enough allowed lateness all records are counted.
  Environment env;
  auto src = env.FromSource(
      "skewed",
      [](int subtask, int parallelism) -> std::unique_ptr<SourceFunction> {
        std::vector<Record> mine;
        for (int i = subtask; i < 300; i += parallelism) {
          mine.push_back(MakeRecord(i, Value(int64_t{0}), Value(1.0)));
        }
        return std::make_unique<VectorSource>(std::move(mine),
                                              /*watermark_every=*/4);
      },
      2);
  auto sink = src.KeyBy(0)
                  .Window(std::make_shared<TumblingWindowFn>(100))
                  .WithLateness(50)
                  .Aggregate(DynAggKind::kCount, 1)
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  int64_t total = 0;
  for (const Record& r : sink->records()) total += r.field(4).AsInt64();
  EXPECT_EQ(total, 300);
}

}  // namespace
}  // namespace streamline
