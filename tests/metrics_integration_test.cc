// Job-level metrics: record counters and watermark gauges exposed by the
// engine per task.

#include <gtest/gtest.h>

#include "api/datastream.h"

namespace streamline {
namespace {

TEST(MetricsIntegrationTest, CountersTrackShuffledRecords) {
  Environment env(2);
  std::vector<Record> records;
  for (int i = 0; i < 1000; ++i) {
    records.push_back(MakeRecord(i, Value(static_cast<int64_t>(i % 10)),
                                 Value(1.0)));
  }
  env.FromRecords(std::move(records), "src")
      .KeyBy(0)
      .Reduce([](const Record& a, const Record&) { return a; }, "red")
      .Sink(std::make_shared<NullSink>(), "out");
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Run().ok());
  MetricsRegistry* metrics = (*job)->metrics();
  // The source shipped 1000 records into the shuffle...
  EXPECT_EQ(metrics->GetCounter("task.src.records_out")->value(), 1000u);
  // ...and the reduce chain received all of them (across both subtasks).
  EXPECT_EQ(metrics->GetCounter("task.red->out.records_in")->value(), 1000u);
  EXPECT_GT(metrics->GetCounter("task.src.bytes_out")->value(), 1000u);
}

TEST(MetricsIntegrationTest, WatermarkGaugeReachesMaxOnCompletion) {
  Environment env;
  std::vector<Record> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(MakeRecord(i, Value(static_cast<int64_t>(i))));
  }
  env.FromRecords(std::move(records), "src")
      .Rebalance(1, "hop")  // force a channel so watermarks flow
      .Sink(std::make_shared<NullSink>(), "out");
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Run().ok());
  const double wm =
      (*job)->metrics()->GetGauge("task.hop->out#0.watermark")->value();
  EXPECT_DOUBLE_EQ(wm, static_cast<double>(kMaxTimestamp));
}

TEST(MetricsIntegrationTest, ReportListsTaskMetrics) {
  Environment env;
  env.FromRecords({MakeRecord(1, Value(int64_t{1}))}, "src")
      .Sink(std::make_shared<NullSink>(), "out");
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Run().ok());
  const std::string report = (*job)->metrics()->Report();
  EXPECT_NE(report.find("task.src->out.records_in"), std::string::npos)
      << report;
}

}  // namespace
}  // namespace streamline
