#include "viz/m4.h"

#include <gtest/gtest.h>

#include "viz/raster.h"
#include "workload/timeseries.h"

namespace streamline {
namespace {

TEST(PixelColumnTest, AddTracksFourAggregates) {
  PixelColumn col;
  col.Add(10, 5.0);
  col.Add(11, 9.0);
  col.Add(12, 1.0);
  col.Add(13, 4.0);
  EXPECT_EQ(col.count, 4u);
  EXPECT_EQ(col.first, (SeriesPoint{10, 5.0}));
  EXPECT_EQ(col.last, (SeriesPoint{13, 4.0}));
  EXPECT_EQ(col.min, (SeriesPoint{12, 1.0}));
  EXPECT_EQ(col.max, (SeriesPoint{11, 9.0}));
}

TEST(PixelColumnTest, PointsSortedAndDeduped) {
  PixelColumn col;
  col.Add(10, 5.0);  // single sample: first==last==min==max
  EXPECT_EQ(col.Points().size(), 1u);
  col.Add(11, 9.0);
  col.Add(12, 1.0);
  const auto pts = col.Points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].t, 10);
  EXPECT_EQ(pts[1].t, 11);
  EXPECT_EQ(pts[2].t, 12);
}

TEST(PixelColumnTest, MergeEqualsDirectAggregation) {
  PixelColumn a;
  PixelColumn b;
  PixelColumn whole;
  const std::vector<SeriesPoint> first = {{1, 2.0}, {2, -3.0}, {3, 7.0}};
  const std::vector<SeriesPoint> second = {{4, 10.0}, {5, 0.0}};
  for (const auto& p : first) {
    a.Add(p.t, p.v);
    whole.Add(p.t, p.v);
  }
  for (const auto& p : second) {
    b.Add(p.t, p.v);
    whole.Add(p.t, p.v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count, whole.count);
  EXPECT_EQ(a.first, whole.first);
  EXPECT_EQ(a.last, whole.last);
  EXPECT_EQ(a.min, whole.min);
  EXPECT_EQ(a.max, whole.max);
}

TEST(M4AggregateTest, AssignsSamplesToColumns) {
  std::vector<SeriesPoint> data;
  for (int t = 0; t < 100; ++t) {
    data.push_back({t, static_cast<double>(t % 10)});
  }
  const auto cols = M4Aggregate(data, 0, 100, 10);
  ASSERT_EQ(cols.size(), 10u);
  for (const auto& col : cols) {
    EXPECT_EQ(col.count, 10u);
    EXPECT_DOUBLE_EQ(col.min.v, 0.0);
    EXPECT_DOUBLE_EQ(col.max.v, 9.0);
  }
}

TEST(M4AggregateTest, IgnoresOutOfRangeSamples) {
  std::vector<SeriesPoint> data = {{-5, 1.0}, {5, 2.0}, {150, 3.0}};
  const auto cols = M4Aggregate(data, 0, 100, 4);
  uint64_t total = 0;
  for (const auto& col : cols) total += col.count;
  EXPECT_EQ(total, 1u);
}

TEST(StreamingM4Test, EmitsOnColumnBoundaryAndWatermark) {
  std::vector<PixelColumn> emitted;
  StreamingM4 m4(10, [&](const PixelColumn& c) { emitted.push_back(c); });
  m4.OnElement(1, 1.0);
  m4.OnElement(5, 2.0);
  EXPECT_TRUE(emitted.empty());
  m4.OnElement(12, 3.0);  // new column: [0,10) completes
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0].t_start, 0);
  EXPECT_EQ(emitted[0].count, 2u);
  m4.OnWatermark(19);  // open column [10, 20) not yet complete
  EXPECT_EQ(emitted.size(), 1u);
  m4.OnWatermark(20);
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[1].count, 1u);
  m4.OnWatermark(kMaxTimestamp);  // nothing open
  EXPECT_EQ(emitted.size(), 2u);
}

TEST(StreamingM4Test, MatchesBatchM4) {
  RandomWalkSeries walk(RateShape{200.0, 0.5}, 0.0, 1.0, 11);
  const auto data = walk.Take(5000);
  // Streaming with column width 100 ms.
  std::vector<PixelColumn> streamed;
  StreamingM4 m4(100, [&](const PixelColumn& c) { streamed.push_back(c); });
  for (const auto& p : data) m4.OnElement(p.t, p.v);
  m4.OnWatermark(kMaxTimestamp);
  // Batch over the same grid.
  const Timestamp t_end =
      (data.back().t / 100 + 1) * 100;
  const int width = static_cast<int>(t_end / 100);
  const auto batch = M4Aggregate(data, 0, t_end, width);
  size_t bi = 0;
  for (const auto& s : streamed) {
    while (bi < batch.size() && batch[bi].count == 0) ++bi;
    ASSERT_LT(bi, batch.size());
    EXPECT_EQ(s.count, batch[bi].count);
    EXPECT_EQ(s.min, batch[bi].min);
    EXPECT_EQ(s.max, batch[bi].max);
    EXPECT_EQ(s.first, batch[bi].first);
    EXPECT_EQ(s.last, batch[bi].last);
    ++bi;
  }
}

TEST(StreamingM4Test, DataRateIndependentOutput) {
  // The paper's I2 claim: the reduction output depends on the time span and
  // column width, NOT on the input rate.
  auto columns_for_rate = [](double rate) {
    RandomWalkSeries walk(RateShape{rate}, 0.0, 1.0, 3);
    StreamingM4 m4(1000, nullptr);
    // ~60 seconds of event time at the given rate.
    const auto n = static_cast<size_t>(rate * 60);
    for (const auto& p : walk.Take(n)) m4.OnElement(p.t, p.v);
    m4.OnWatermark(kMaxTimestamp);
    return m4.columns_emitted();
  };
  const uint64_t slow = columns_for_rate(100);
  const uint64_t fast = columns_for_rate(10000);
  // 100x the data rate, same number of emitted columns (±1 boundary).
  EXPECT_NEAR(static_cast<double>(slow), static_cast<double>(fast), 1.0);
  EXPECT_NEAR(static_cast<double>(slow), 60.0, 2.0);
}

TEST(M4CorrectnessTest, PixelErrorNearZeroVsRaw) {
  // I2's correctness claim: rendering the M4-reduced series is (near)
  // pixel-identical to rendering the raw series, while using <= 4 points
  // per pixel column.
  SeasonalSensorSeries sensor(RateShape{500.0, 0.3},
                              SeasonalSensorSeries::Options{}, 17);
  const auto raw = sensor.Take(30000);
  constexpr int kW = 200;
  constexpr int kH = 100;
  // Align the raster grid with the M4 columns (1 column == 1 pixel).
  const Duration col = (raw.back().t + kW) / kW;
  const Timestamp t_end = col * kW;

  std::vector<SeriesPoint> reduced;
  StreamingM4 m4(col, [&](const PixelColumn& c) {
    for (const auto& p : c.Points()) reduced.push_back(p);
  });
  for (const auto& p : raw) m4.OnElement(p.t, p.v);
  m4.OnWatermark(kMaxTimestamp);

  ASSERT_LE(reduced.size(), static_cast<size_t>(4 * (kW + 1)));
  const auto [lo, hi] = ValueRange(raw);
  const Raster raw_raster = RasterizeSeries(raw, 0, t_end, lo, hi, kW, kH);
  const Raster red_raster =
      RasterizeSeries(reduced, 0, t_end, lo, hi, kW, kH);
  EXPECT_LT(Raster::PixelError(raw_raster, red_raster), 0.02);
}

}  // namespace
}  // namespace streamline
