// End-to-end failure recovery: supervised jobs with injected mid-run
// crashes (source, operator and sink variants; Status and exception kinds)
// recover from the latest complete checkpoint and produce exactly the
// fault-free committed output.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <thread>
#include <tuple>

#include "api/datastream.h"
#include "common/fault_injection.h"
#include "dataflow/supervisor.h"

namespace streamline {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kTotal = 2000;
constexpr int64_t kKeys = 7;
constexpr int64_t kWindow = 50;

/// Deterministic checkpointable source: keyed records with ts = seq,
/// lightly paced so periodic checkpoints land mid-stream.
class ChaosSource : public SourceFunction {
 public:
  explicit ChaosSource(uint64_t total) : total_(total) {}

  Result<SourcePoll> Poll(SourceContext* ctx) override {
    if (pos_ >= total_) return SourcePoll::kExhausted;
    Record r = MakeRecord(static_cast<Timestamp>(pos_),
                          Value(static_cast<int64_t>(pos_ % kKeys)),
                          Value(static_cast<int64_t>(pos_)));
    const Timestamp ts = r.timestamp;
    if (!ctx->Emit(std::move(r))) return SourcePoll::kExhausted;
    ++pos_;
    ctx->EmitWatermark(ts);
    if (pos_ % 100 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pos_ < total_ ? SourcePoll::kHasMore : SourcePoll::kExhausted;
  }

  Status SnapshotState(BinaryWriter* w) const override {
    w->WriteU64(pos_);
    return Status::Ok();
  }
  Status RestoreState(BinaryReader* r) override {
    auto pos = r->ReadU64();
    if (!pos.ok()) return pos.status();
    pos_ = *pos;
    return Status::Ok();
  }
  std::string Name() const override { return "chaos"; }

 private:
  uint64_t total_;
  uint64_t pos_ = 0;
};

/// gen -> keyed tumbling-window sum ("agg") -> transactional sink ("sink").
std::shared_ptr<TransactionalCollectSink> BuildWindowJob(Environment* env) {
  auto sink = std::make_shared<TransactionalCollectSink>();
  env->FromSource("gen",
                  [](int, int) -> std::unique_ptr<SourceFunction> {
                    return std::make_unique<ChaosSource>(kTotal);
                  },
                  1)
      .KeyBy(0)
      .Window(std::make_shared<TumblingWindowFn>(kWindow))
      .Aggregate(DynAggKind::kSum, 1, WindowBackend::kShared, "agg")
      .Sink(sink, "sink");
  return sink;
}

// (key, window_start, window_end, query_index) -> (sum, occurrences).
using WindowKey = std::tuple<int64_t, int64_t, int64_t, int64_t>;
std::map<WindowKey, std::pair<double, int>> Summarize(
    const std::vector<Record>& records) {
  std::map<WindowKey, std::pair<double, int>> out;
  for (const Record& r : records) {
    WindowKey k{r.field(0).AsInt64(), r.field(1).AsInt64(),
                r.field(2).AsInt64(), r.field(3).AsInt64()};
    auto [it, inserted] = out.try_emplace(k, r.field(4).AsDouble(), 1);
    if (!inserted) ++it->second.second;
  }
  return out;
}

std::map<WindowKey, std::pair<double, int>> FaultFreeReference() {
  Environment env;
  auto sink = BuildWindowJob(&env);
  EXPECT_TRUE(env.Execute().ok());
  sink->OnBarrier(9999);  // commit the tail after the last barrier
  auto ref = Summarize(sink->committed());
  EXPECT_EQ(ref.size(),
            static_cast<size_t>(kKeys * (kTotal / kWindow)));
  return ref;
}

/// Runs the windowed job supervised with `rule` injected; asserts it
/// recovers and commits exactly the fault-free output.
void RunChaosVariant(FaultInjector::Rule rule, bool durable_store = false) {
  static const auto kReference = FaultFreeReference();

  auto injector = std::make_shared<FaultInjector>();
  injector->AddRule(std::move(rule));

  Environment env;
  auto sink = BuildWindowJob(&env);
  JobOptions opts;
  opts.checkpoint_interval_ms = 2;
  opts.fault_injector = injector;
  std::string store_dir;
  if (durable_store) {
    store_dir = (fs::temp_directory_path() / "slss_chaos_e2e").string();
    fs::remove_all(store_dir);
    opts.snapshot_store = std::make_shared<FileSnapshotStore>(store_dir);
  }
  RestartPolicy policy;
  policy.max_restarts = 5;
  policy.initial_backoff_ms = 1;
  SupervisionStats stats;
  const Status st = env.ExecuteSupervised(opts, policy, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_GE(stats.restarts, 1) << "fault never fired";
  EXPECT_EQ(injector->fires(), 1u);

  sink->OnBarrier(9999);  // commit the tail after the last barrier
  const auto got = Summarize(sink->committed());
  ASSERT_EQ(got.size(), kReference.size());
  for (const auto& [k, v] : kReference) {
    auto it = got.find(k);
    ASSERT_NE(it, got.end())
        << "missing window (key=" << std::get<0>(k)
        << ", start=" << std::get<1>(k) << ")";
    EXPECT_EQ(it->second.first, v.first)
        << "wrong sum for key " << std::get<0>(k)
        << ", start=" << std::get<1>(k);
    // Exactly-once: every window result committed exactly once.
    EXPECT_EQ(it->second.second, 1)
        << "duplicate committed window (key=" << std::get<0>(k)
        << ", start=" << std::get<1>(k) << ")";
  }
  if (!store_dir.empty()) fs::remove_all(store_dir);
}

TEST(ChaosRecoveryTest, OperatorStatusFaultRecovers) {
  RunChaosVariant(FaultInjector::FailAtHit("op:agg", 900));
}

TEST(ChaosRecoveryTest, OperatorThrowFaultRecovers) {
  RunChaosVariant(FaultInjector::FailAtHit(
      "op:agg", 900, FaultInjector::FaultKind::kThrow));
}

TEST(ChaosRecoveryTest, SourceFaultRecovers) {
  RunChaosVariant(FaultInjector::FailAtHit("source:gen", 700));
}

TEST(ChaosRecoveryTest, SinkFaultRecovers) {
  RunChaosVariant(FaultInjector::FailAtHit("op:sink", 120));
}

TEST(ChaosRecoveryTest, RecoversWithDurableFileStore) {
  RunChaosVariant(FaultInjector::FailAtHit("op:agg", 900),
                  /*durable_store=*/true);
}

TEST(ChaosRecoveryTest, CheckpointTimeFaultRecovers) {
  // Fails the window operator's snapshot call for the 2nd checkpoint; the
  // checkpoint stays incomplete and recovery uses an older one.
  RunChaosVariant(FaultInjector::FailOnCheckpoint("op:agg", 2));
}

TEST(ChaosRecoveryTest, UnsupervisedFailingJobReturnsError) {
  auto injector = std::make_shared<FaultInjector>();
  injector->AddRule(FaultInjector::FailAtHit("op:agg", 500));
  Environment env;
  auto sink = BuildWindowJob(&env);
  JobOptions opts;
  opts.fault_injector = injector;
  const Status st = env.Execute(opts);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("injected fault"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("task '"), std::string::npos) << st.ToString();
}

TEST(ChaosRecoveryTest, UnsupervisedThrowingJobReturnsError) {
  auto injector = std::make_shared<FaultInjector>();
  injector->AddRule(FaultInjector::FailAtHit(
      "source:gen", 100, FaultInjector::FaultKind::kThrow));
  Environment env;
  BuildWindowJob(&env);
  JobOptions opts;
  opts.fault_injector = injector;
  const Status st = env.Execute(opts);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected fault"), std::string::npos)
      << st.ToString();
}

TEST(SupervisorTest, GivesUpAfterMaxRestarts) {
  auto injector = std::make_shared<FaultInjector>();
  auto rule = FaultInjector::FailAtHit("op:agg", 1);
  rule.max_fires = 0;  // every incarnation dies on its first record
  injector->AddRule(rule);

  Environment env;
  BuildWindowJob(&env);
  JobOptions opts;
  opts.fault_injector = injector;
  RestartPolicy policy;
  policy.max_restarts = 2;
  policy.initial_backoff_ms = 1;
  SupervisionStats stats;
  const Status st = env.ExecuteSupervised(opts, policy, &stats);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(stats.restarts, 2);
  EXPECT_EQ(stats.failures.size(), 3u);  // initial run + 2 restarts
  EXPECT_NE(st.message().find("after 2 restarts"), std::string::npos)
      << st.ToString();
}

TEST(SupervisorTest, CircuitBreakerStopsRestartStorm) {
  auto injector = std::make_shared<FaultInjector>();
  auto rule = FaultInjector::FailAtHit("op:agg", 1);
  rule.max_fires = 0;
  injector->AddRule(rule);

  Environment env;
  BuildWindowJob(&env);
  JobOptions opts;
  opts.fault_injector = injector;
  RestartPolicy policy;
  policy.max_restarts = 100;
  policy.initial_backoff_ms = 0;
  policy.circuit_breaker_failures = 3;
  policy.circuit_breaker_window_ms = 60000;
  SupervisionStats stats;
  const Status st = env.ExecuteSupervised(opts, policy, &stats);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(stats.circuit_broken);
  EXPECT_LT(stats.restarts, 10);
  EXPECT_NE(st.message().find("circuit breaker"), std::string::npos)
      << st.ToString();
}

TEST(SupervisorTest, FallsBackWhenRestoreCandidateIsBroken) {
  // A "complete" checkpoint with no state behind it (models an
  // unreadable/corrupt restore point): the supervisor blacklists it and
  // restarts fresh instead of dying.
  auto injector = std::make_shared<FaultInjector>();
  injector->AddRule(FaultInjector::FailAtHit("op:agg", 500));

  auto store = std::make_shared<SnapshotStore>();
  ASSERT_TRUE(store->Put(99, "bogus", "not task state").ok());
  store->MarkComplete(99);

  Environment env;
  auto sink = BuildWindowJob(&env);
  JobOptions opts;
  opts.snapshot_store = store;
  opts.fault_injector = injector;
  // No periodic checkpoints: the broken checkpoint is the only candidate.
  RestartPolicy policy;
  policy.max_restarts = 3;
  policy.initial_backoff_ms = 1;
  SupervisionStats stats;
  const Status st = env.ExecuteSupervised(opts, policy, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.restarts, 1);
  ASSERT_EQ(stats.restored_from.size(), 1u);
  EXPECT_EQ(stats.restored_from[0], 0u);  // fresh start after fallback
}

TEST(SupervisorTest, CancelStopsSupervision) {
  // Unbounded-ish job (big total, no faults): cancel from another thread.
  Environment env;
  auto sink = std::make_shared<TransactionalCollectSink>();
  env.FromSource("gen",
                 [](int, int) -> std::unique_ptr<SourceFunction> {
                   return std::make_unique<ChaosSource>(kTotal * 1000);
                 },
                 1)
      .Sink(sink, "sink");
  JobSupervisor supervisor(env.graph(), JobOptions());
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    supervisor.Cancel();
  });
  const Status st = supervisor.Run();
  canceller.join();
  // Cancellation drains cleanly: the job completes without a failure.
  EXPECT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace streamline
