// Slow-client and fault chaos for the subscription egress: a stalled
// subscriber is contained by in-place coalescing (bounded memory, job
// liveness), a runaway subscriber with unbounded keys is disconnected at
// the high-water mark, and injected connection drops ("net:conn_drop")
// never hurt the server or the surviving clients.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/record.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/subscription_server.h"

namespace streamline {
namespace net {
namespace {

struct LoopStopper {
  EventLoop* loop;
  ~LoopStopper() { loop->Stop(); }
};

void SetRecvTimeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)), 0);
}

Result<std::string> ReadFrame(int fd, FrameDecoder* dec) {
  for (;;) {
    std::string_view payload;
    auto has = dec->Next(&payload);
    if (!has.ok()) return has.status();
    if (*has) return std::string(payload);
    char buf[4096];
    auto r = RecvSome(fd, buf, sizeof(buf));
    if (!r.ok()) return r.status();
    if (*r == 0) return Status::Internal("peer closed");
    dec->Append(buf, *r);
  }
}

bool AwaitCondition(const std::function<bool()>& cond,
                    std::chrono::seconds timeout = std::chrono::seconds(30)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

/// Subscribes `fd` to `topic` (the caller awaits snapshots_served).
Status Subscribe(int fd, const std::string& topic) {
  const std::string sub = EncodeSubscribe(topic);
  return SendAll(fd, sub.data(), sub.size());
}

/// Reads and materializes last-record-per-key until the sentinel key or an
/// error (a dropped connection reads as EOF).
struct ReaderResult {
  std::map<int64_t, Record> state;
  bool saw_sentinel = false;
  std::string error;
};

ReaderResult ConsumeUntilSentinel(int fd, int64_t sentinel_key) {
  ReaderResult result;
  FrameDecoder dec;
  for (;;) {
    auto frame = ReadFrame(fd, &dec);
    if (!frame.ok()) {
      result.error = frame.status().ToString();
      return result;
    }
    const uint8_t type = static_cast<uint8_t>((*frame)[0]);
    if (type == kMsgSnapshotBegin || type == kMsgSnapshotEnd) continue;
    std::vector<Record> decoded;
    if (!DecodeDataBatch(*frame, &decoded).ok() || decoded.size() != 1) {
      result.error = "bad data frame";
      return result;
    }
    const int64_t key = decoded[0].field(0).AsInt64();
    result.state[key] = decoded[0];
    if (key == sentinel_key) {
      result.saw_sentinel = true;
      return result;
    }
  }
}

// ---------------------------------------------------------------------------
// A stalled subscriber on a fixed key set: coalescing bounds its queue, it
// stays connected, and a concurrent healthy subscriber is unaffected.

TEST(NetChaosTest, StalledSubscriberIsCoalescedNotDisconnected) {
  EventLoop loop;
  SubscriptionServer::Options options;
  options.coalesce_threshold_bytes = 4096;
  options.send_buffer_limit_bytes = 1u << 20;
  auto created = SubscriptionServer::Create(&loop, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto server = std::move(*created);
  ASSERT_TRUE(server->RegisterTopic("r", /*key_field=*/0).ok());
  ASSERT_TRUE(loop.Start().ok());
  LoopStopper stopper{&loop};

  constexpr int64_t kKeys = 16;
  constexpr int64_t kSentinel = -1;

  // One subscriber that never reads a byte, one that reads everything.
  auto stalled = TcpConnect(server->port());
  ASSERT_TRUE(stalled.ok());
  ASSERT_TRUE(Subscribe(stalled->get(), "r").ok());
  auto healthy = TcpConnect(server->port());
  ASSERT_TRUE(healthy.ok());
  SetRecvTimeout(healthy->get(), 30);
  ASSERT_TRUE(Subscribe(healthy->get(), "r").ok());
  ASSERT_TRUE(
      AwaitCondition([&] { return server->stats().snapshots_served == 2; }));

  ReaderResult healthy_result;
  std::thread reader([&] {
    healthy_result = ConsumeUntilSentinel(healthy->get(), kSentinel);
  });

  // Publish until coalescing has demonstrably kicked in on the stalled
  // client (the kernel's socket buffers must fill first, so the volume is
  // adaptive with a hard cap). Publishing never blocks: this loop IS the
  // job-liveness assertion.
  int64_t published = 0;
  std::map<int64_t, double> last_value;
  for (; published < 500000; ++published) {
    const double v = static_cast<double>(published);
    server->Publish("r", MakeRecord(published, Value(published % kKeys),
                                    Value(v)));
    last_value[published % kKeys] = v;
    if (published % 1000 == 0) {
      // Bounded memory, sampled while the stalled queue is at its worst.
      ASSERT_LE(server->TotalQueuedBytes(),
                2 * options.send_buffer_limit_bytes);
      if (server->stats().coalesced_updates > 1000) break;
    }
  }
  ASSERT_GT(server->stats().coalesced_updates, 1000u)
      << "coalescing never engaged after " << published << " publishes";
  server->Publish("r", MakeRecord(published, Value(kSentinel), Value(0.0)));

  reader.join();
  ASSERT_TRUE(healthy_result.error.empty()) << healthy_result.error;
  ASSERT_TRUE(healthy_result.saw_sentinel);
  // The healthy client's materialized state is exact: one record per key,
  // carrying the last published value (coalescing, if any, preserves it).
  ASSERT_EQ(healthy_result.state.size(), static_cast<size_t>(kKeys) + 1);
  for (const auto& [key, v] : last_value) {
    auto it = healthy_result.state.find(key);
    ASSERT_NE(it, healthy_result.state.end());
    EXPECT_EQ(it->second.field(1).AsDouble(), v) << "key " << key;
  }

  const auto stats = server->stats();
  // Coalescing contained the stalled client below the high-water mark:
  // still connected, nobody was cut.
  EXPECT_EQ(stats.slow_disconnects, 0u);
  EXPECT_EQ(stats.clients_now, 2u);
  EXPECT_LE(stats.max_queued_bytes, options.send_buffer_limit_bytes);
}

// ---------------------------------------------------------------------------
// A stalled subscriber on an unbounded key set: coalescing cannot bound
// it, so the high-water mark cuts it loose -- memory stays bounded and the
// publisher never blocks.

TEST(NetChaosTest, RunawaySubscriberIsDisconnectedAtHighWaterMark) {
  EventLoop loop;
  SubscriptionServer::Options options;
  options.coalesce_threshold_bytes = 4096;
  options.send_buffer_limit_bytes = 64u << 10;
  auto created = SubscriptionServer::Create(&loop, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto server = std::move(*created);
  ASSERT_TRUE(server->RegisterTopic("r", /*key_field=*/0).ok());
  ASSERT_TRUE(loop.Start().ok());
  LoopStopper stopper{&loop};

  auto stalled = TcpConnect(server->port());
  ASSERT_TRUE(stalled.ok());
  ASSERT_TRUE(Subscribe(stalled->get(), "r").ok());
  ASSERT_TRUE(
      AwaitCondition([&] { return server->stats().snapshots_served == 1; }));

  // Every record is a fresh key: nothing to coalesce, the queue can only
  // grow -- exactly the client the high-water mark exists for.
  int64_t published = 0;
  for (; published < 500000; ++published) {
    server->Publish("r", MakeRecord(published, Value(published),
                                    Value(static_cast<double>(published))));
    if (published % 1000 == 0) {
      ASSERT_LE(server->TotalQueuedBytes(),
                2 * options.send_buffer_limit_bytes);
      if (server->stats().slow_disconnects > 0) break;
    }
  }
  ASSERT_TRUE(AwaitCondition(
      [&] { return server->stats().clients_now == 0; }))
      << "doomed client never closed after " << published << " publishes";

  const auto stats = server->stats();
  EXPECT_EQ(stats.slow_disconnects, 1u);
  EXPECT_EQ(stats.clients_now, 0u);
  // The enqueue-side bound held the whole time: queued bytes never passed
  // the high-water mark, even while the client stonewalled.
  EXPECT_LE(stats.max_queued_bytes, options.send_buffer_limit_bytes);
  EXPECT_EQ(server->TotalQueuedBytes(), 0u);
}

// ---------------------------------------------------------------------------
// Fault injector drops connections mid-stream: the server survives with
// coherent stats and every surviving client still materializes the exact
// final state.

TEST(NetChaosTest, InjectedConnectionDropsLeaveServerAndSurvivorsIntact) {
  FaultInjector injector(/*seed=*/1234);
  injector.AddRule(FaultInjector::FailWithProbability(
      "net:conn_drop", 0.3, FaultInjector::FaultKind::kStatus,
      /*max_fires=*/5));

  EventLoop loop;
  SubscriptionServer::Options options;
  options.fault_injector = &injector;
  auto created = SubscriptionServer::Create(&loop, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto server = std::move(*created);
  ASSERT_TRUE(server->RegisterTopic("r", /*key_field=*/0).ok());
  ASSERT_TRUE(loop.Start().ok());
  LoopStopper stopper{&loop};

  constexpr int kClients = 20;
  constexpr int64_t kKeys = 8;
  constexpr int kRecords = 5000;
  constexpr int64_t kSentinel = -1;

  std::vector<Fd> clients;
  for (int i = 0; i < kClients; ++i) {
    auto conn = TcpConnect(server->port());
    ASSERT_TRUE(conn.ok());
    SetRecvTimeout(conn->get(), 30);
    ASSERT_TRUE(Subscribe(conn->get(), "r").ok());
    clients.push_back(std::move(*conn));
  }
  ASSERT_TRUE(AwaitCondition(
      [&] { return server->stats().snapshots_served == kClients; }));

  std::vector<ReaderResult> results(kClients);
  std::vector<std::thread> readers;
  readers.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    readers.emplace_back([&, i] {
      results[i] = ConsumeUntilSentinel(clients[i].get(), kSentinel);
    });
  }

  std::map<int64_t, double> last_value;
  for (int i = 0; i < kRecords; ++i) {
    const double v = static_cast<double>(i);
    server->Publish("r", MakeRecord(i, Value(int64_t{i % kKeys}), Value(v)));
    last_value[i % kKeys] = v;
    // Pacing spreads the publishes over many flush passes, giving the
    // probability rule plenty of distinct chances to fire.
    if (i % 200 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server->Publish("r", MakeRecord(kRecords, Value(kSentinel), Value(0.0)));
  for (auto& t : readers) t.join();

  const auto stats = server->stats();
  // The injector did strike (p=0.3 across hundreds of flush calls), and
  // every strike is accounted.
  ASSERT_GE(stats.dropped_connections, 1u);
  ASSERT_LE(stats.dropped_connections, 5u);
  EXPECT_EQ(stats.dropped_connections, injector.fires());
  EXPECT_EQ(stats.clients_connected, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.clients_now, static_cast<uint64_t>(kClients) -
                                   stats.dropped_connections -
                                   stats.slow_disconnects);

  // Everyone not dropped reached the sentinel with the exact final state.
  size_t survivors = 0;
  for (int i = 0; i < kClients; ++i) {
    if (!results[i].saw_sentinel) continue;
    ++survivors;
    ASSERT_EQ(results[i].state.size(), static_cast<size_t>(kKeys) + 1);
    for (const auto& [key, v] : last_value) {
      auto it = results[i].state.find(key);
      ASSERT_NE(it, results[i].state.end()) << "client " << i << " key " << key;
      EXPECT_EQ(it->second.field(1).AsDouble(), v)
          << "client " << i << " key " << key;
    }
  }
  EXPECT_GE(survivors, static_cast<size_t>(kClients) -
                           stats.dropped_connections -
                           stats.slow_disconnects);
}

}  // namespace
}  // namespace net
}  // namespace streamline
