#include "window/aggregate_fn.h"

#include <gtest/gtest.h>

#include <vector>

namespace streamline {
namespace {

template <typename Agg>
typename Agg::Partial FoldAll(const Agg& agg,
                              const std::vector<typename Agg::Input>& in) {
  typename Agg::Partial acc = agg.Identity();
  for (const auto& v : in) acc = agg.Combine(acc, agg.Lift(v));
  return acc;
}

TEST(SumAggTest, Basics) {
  SumAgg<double> agg;
  EXPECT_DOUBLE_EQ(agg.Lower(FoldAll(agg, {1.0, 2.5, 3.5})), 7.0);
  EXPECT_DOUBLE_EQ(agg.Lower(agg.Identity()), 0.0);
  EXPECT_DOUBLE_EQ(agg.Invert(agg.Lift(10.0), agg.Lift(4.0)), 6.0);
  static_assert(SumAgg<double>::kInvertible);
}

TEST(CountAggTest, CountsAnything) {
  CountAgg<double> agg;
  EXPECT_EQ(agg.Lower(FoldAll(agg, {1.0, 2.0, 3.0})), 3u);
  EXPECT_EQ(agg.Invert(5, 2), 3u);
}

TEST(MinMaxAggTest, IdentityIsNeutral) {
  MinAgg<double> mn;
  MaxAgg<double> mx;
  EXPECT_DOUBLE_EQ(mn.Combine(mn.Identity(), 5.0), 5.0);
  EXPECT_DOUBLE_EQ(mx.Combine(mx.Identity(), -5.0), -5.0);
  EXPECT_DOUBLE_EQ(mn.Lower(FoldAll(mn, {3.0, -1.0, 2.0})), -1.0);
  EXPECT_DOUBLE_EQ(mx.Lower(FoldAll(mx, {3.0, -1.0, 2.0})), 3.0);
}

TEST(MinMaxAggTest, IntegerIdentity) {
  MinAgg<int64_t> mn;
  MaxAgg<int64_t> mx;
  EXPECT_EQ(mn.Combine(mn.Identity(), int64_t{7}), 7);
  EXPECT_EQ(mx.Combine(mx.Identity(), int64_t{-7}), -7);
}

TEST(MeanAggTest, MeanAndInvert) {
  MeanAgg<double> agg;
  auto p = FoldAll(agg, {2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(agg.Lower(p), 4.0);
  auto q = agg.Invert(p, agg.Lift(6.0));
  EXPECT_DOUBLE_EQ(agg.Lower(q), 3.0);
  EXPECT_DOUBLE_EQ(agg.Lower(agg.Identity()), 0.0);
}

TEST(VarianceAggTest, MatchesDirectFormula) {
  VarianceAgg<double> agg;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  auto p = FoldAll(agg, xs);
  EXPECT_NEAR(agg.Lower(p), 4.0, 1e-12);  // known population variance
}

TEST(VarianceAggTest, CombineIsAssociativeAcrossSplits) {
  VarianceAgg<double> agg;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto whole = FoldAll(agg, xs);
  // Combine of arbitrary prefix/suffix splits must match.
  for (size_t split = 0; split <= xs.size(); ++split) {
    auto a = FoldAll(agg, {xs.begin(), xs.begin() + split});
    auto b = FoldAll(agg, {xs.begin() + split, xs.end()});
    auto merged = agg.Combine(a, b);
    EXPECT_NEAR(agg.Lower(merged), agg.Lower(whole), 1e-9) << split;
  }
}

TEST(VarianceAggTest, IdentityIsNeutral) {
  VarianceAgg<double> agg;
  auto p = FoldAll(agg, {1.0, 5.0});
  auto left = agg.Combine(agg.Identity(), p);
  auto right = agg.Combine(p, agg.Identity());
  EXPECT_EQ(left, p);
  EXPECT_EQ(right, p);
}

TEST(ArgMaxAggTest, TracksArgument) {
  ArgMaxAgg agg;
  auto p = FoldAll(agg, {{10, 1.0}, {20, 5.0}, {30, 3.0}});
  EXPECT_EQ(agg.Lower(p), 20);
}

TEST(ArgMaxAggTest, TieKeepsEarliest) {
  ArgMaxAgg agg;
  auto p = FoldAll(agg, {{10, 5.0}, {20, 5.0}});
  EXPECT_EQ(agg.Lower(p), 10);
}

TEST(CollectAggTest, PreservesOrder) {
  CollectAgg<int> agg;
  auto p = FoldAll(agg, {3, 1, 2});
  EXPECT_EQ(agg.Lower(p), (std::vector<int>{3, 1, 2}));
  static_assert(!CollectAgg<int>::kCommutative);
}

TEST(CollectAggTest, CombineConcatenates) {
  CollectAgg<int> agg;
  auto ab = agg.Combine({1, 2}, {3});
  EXPECT_EQ(ab, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace streamline
