// Incremental (changelog-based) checkpoints:
//  - IncrementalSnapshotStore manifest chains, compaction, reopen, and
//    manifest-aware garbage collection;
//  - the byte-identity property: restoring a base snapshot and replaying
//    the changelog tail reproduces the exact bytes a full snapshot of the
//    live operator would write, for every keyed operator;
//  - end-to-end exactly-once restore through the executor, the >=5x byte
//    reduction at a 10% mutation rate, and a crash-point matrix over every
//    WAL/manifest fault-injection site under a supervisor.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "api/datastream.h"
#include "common/fault_injection.h"
#include "dataflow/executor.h"
#include "dataflow/operators.h"
#include "dataflow/snapshot.h"
#include "dataflow/supervisor.h"
#include "dataflow/temporal_join.h"
#include "dataflow/window_operator.h"
#include "window/window_fn.h"

namespace streamline {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const std::string& tag) {
  const std::string dir =
      (fs::temp_directory_path() / ("slss_inc_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Store level: manifest chains, compaction decisions, reopen, GC.

class IncrementalStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = TempDir(::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name());
  }
  void TearDown() override { fs::remove_all(root_); }

  // Appends `records` to a fresh segment for (`cp`, `key`) and seals it
  // onto the chain parented at `parent`.
  Status WriteDelta(IncrementalSnapshotStore* store, uint64_t cp,
                    const std::string& key, uint64_t parent,
                    const std::vector<std::string>& records) {
    auto seg = store->OpenDeltaSegment(cp, key);
    if (!seg.ok()) return seg.status();
    for (const auto& r : records) {
      STREAMLINE_RETURN_IF_ERROR((*seg)->Append(r));
    }
    return store->SealDeltas(cp, key, parent, std::move(*seg));
  }

  std::string root_;
};

TEST_F(IncrementalStoreTest, BaseAndDeltaChainRoundTrip) {
  IncrementalSnapshotStore store(root_);
  const std::string key = "node3/0";

  EXPECT_TRUE(store.NeedsBase(key, 0));
  ASSERT_TRUE(store.PutBase(1, key, "BASE").ok());
  EXPECT_FALSE(store.NeedsBase(key, 1));
  EXPECT_GE(store.BytesWrittenFor(1), 4u);

  ASSERT_TRUE(WriteDelta(&store, 2, key, 1, {"d1", "d2"}).ok());
  ASSERT_TRUE(WriteDelta(&store, 3, key, 2, {"d3"}).ok());

  ASSERT_TRUE(store.HasIncremental(1, key));
  ASSERT_TRUE(store.HasIncremental(3, key));
  auto snap = store.GetIncremental(3, key);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->base, "BASE");
  ASSERT_EQ(snap->deltas.size(), 2u);
  EXPECT_EQ(snap->deltas[0], (std::vector<std::string>{"d1", "d2"}));
  EXPECT_EQ(snap->deltas[1], (std::vector<std::string>{"d3"}));

  // The mid-chain checkpoint sees only its own prefix.
  auto mid = store.GetIncremental(2, key);
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid->deltas.size(), 1u);

  // A checkpoint that never happened has no chain to extend.
  EXPECT_TRUE(store.NeedsBase(key, 99));
}

TEST_F(IncrementalStoreTest, EmptySegmentRepublishesParentManifest) {
  IncrementalSnapshotStore store(root_);
  const std::string key = "node3/0";
  ASSERT_TRUE(store.PutBase(1, key, "BASE").ok());
  ASSERT_TRUE(WriteDelta(&store, 2, key, 1, {}).ok());

  ASSERT_TRUE(store.HasIncremental(2, key));
  auto snap = store.GetIncremental(2, key);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->base, "BASE");
  EXPECT_TRUE(snap->deltas.empty());
  // The untouched group's empty segment was deleted, not sealed.
  EXPECT_FALSE(fs::exists(root_ + "/wal/node3_0/seg2"));
}

TEST_F(IncrementalStoreTest, SealWithoutParentChainIsRejected) {
  IncrementalSnapshotStore store(root_);
  const Status st = WriteDelta(&store, 1, "node0/0", 0, {"x"});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST_F(IncrementalStoreTest, CompactionThresholdForcesBase) {
  IncrementalSnapshotStore store(root_);
  store.SetCompactionThreshold(64);
  const std::string key = "node1/0";
  ASSERT_TRUE(store.PutBase(1, key, "BASE").ok());
  ASSERT_TRUE(WriteDelta(&store, 2, key, 1, {std::string(16, 'a')}).ok());
  EXPECT_FALSE(store.NeedsBase(key, 2));
  ASSERT_TRUE(WriteDelta(&store, 3, key, 2, {std::string(64, 'b')}).ok());
  // Chain bytes crossed the threshold: the next barrier must compact.
  EXPECT_TRUE(store.NeedsBase(key, 3));
}

TEST_F(IncrementalStoreTest, ReopenedStoreReadsExistingChains) {
  const std::string key = "node2/1";
  {
    IncrementalSnapshotStore store(root_);
    ASSERT_TRUE(store.PutBase(1, key, "BASE").ok());
    ASSERT_TRUE(WriteDelta(&store, 2, key, 1, {"d1"}).ok());
    store.MarkComplete(1);
    store.MarkComplete(2);
  }
  // A new process: fresh store over the same root.
  IncrementalSnapshotStore store(root_);
  EXPECT_EQ(store.LatestComplete(), 2u);
  ASSERT_TRUE(store.HasIncremental(2, key));
  auto snap = store.GetIncremental(2, key);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->base, "BASE");
  ASSERT_EQ(snap->deltas.size(), 1u);
  EXPECT_EQ(snap->deltas[0], (std::vector<std::string>{"d1"}));
  EXPECT_FALSE(store.NeedsBase(key, 2));
}

TEST_F(IncrementalStoreTest, PruningNeverDropsReferencedWalFiles) {
  IncrementalSnapshotStore store(root_);
  store.RetainLast(1);
  const std::string key = "node0/0";
  ASSERT_TRUE(store.PutBase(1, key, "BASE").ok());
  store.MarkComplete(1);
  for (uint64_t cp = 2; cp <= 4; ++cp) {
    ASSERT_TRUE(
        WriteDelta(&store, cp, key, cp - 1, {"d" + std::to_string(cp)}).ok());
    store.MarkComplete(cp);
  }
  // Only checkpoint 4 survives retention, but its manifest references the
  // whole chain -- base1 and seg2..seg4 must all still be readable.
  EXPECT_EQ(store.CompletedCheckpoints(), (std::vector<uint64_t>{4}));
  EXPECT_TRUE(fs::exists(root_ + "/wal/node0_0/base1"));
  auto snap = store.GetIncremental(4, key);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->base, "BASE");
  ASSERT_EQ(snap->deltas.size(), 3u);

  // A new compacted base orphans the old chain; GC reclaims it.
  ASSERT_TRUE(store.PutBase(5, key, "BASE2").ok());
  store.MarkComplete(5);
  EXPECT_FALSE(fs::exists(root_ + "/wal/node0_0/base1"));
  EXPECT_FALSE(fs::exists(root_ + "/wal/node0_0/seg2"));
  EXPECT_FALSE(fs::exists(root_ + "/wal/node0_0/seg4"));
  EXPECT_TRUE(fs::exists(root_ + "/wal/node0_0/base5"));
  auto latest = store.GetIncremental(5, key);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->base, "BASE2");
}

// ---------------------------------------------------------------------------
// Operator level: the byte-identity property. Restoring the base snapshot
// and replaying every sealed changelog record must leave the operator in a
// state whose *full* snapshot is byte-for-byte the live operator's -- the
// invariant the whole incremental path rests on (FlatHashMap serializes in
// insertion order, so replay must reproduce the structural op sequence).

class CaptureSink : public ChangelogSink {
 public:
  Status Append(std::string_view record) override {
    records.emplace_back(record);
    return Status::Ok();
  }
  std::vector<std::string> records;
};

class CaptureCollector : public Collector {
 public:
  void Emit(Record&& r) override { records.push_back(std::move(r)); }
  std::vector<Record> records;
};

std::string SnapshotBytes(const Operator& op) {
  BinaryWriter w;
  EXPECT_TRUE(op.SnapshotState(&w).ok());
  return w.Release();
}

void RestoreAndReplay(const std::string& base,
                      const std::vector<std::vector<std::string>>& segments,
                      Operator* op) {
  BinaryReader r(base);
  ASSERT_TRUE(op->RestoreState(&r).ok());
  for (const auto& seg : segments) {
    for (const auto& rec : seg) {
      BinaryReader dr(rec);
      ASSERT_TRUE(op->ApplyDelta(&dr).ok()) << "replaying delta record";
    }
  }
  op->ResetDelta();
}

Record KV(Timestamp ts, int64_t key, int64_t value) {
  return MakeRecord(ts, Value(key), Value(value));
}

TEST(IncrementalByteIdentityTest, KeyedReduce) {
  auto make = []() {
    return std::make_unique<KeyedReduceOperator>(
        "r", [](const Record& r) { return r.field(0); },
        [](const Record& acc, const Record& in) {
          Record out = acc;
          out.fields[1] =
              Value(acc.field(1).AsInt64() + in.field(1).AsInt64());
          return out;
        });
  };
  auto live = make();
  ASSERT_TRUE(live->Open(OperatorContext{}).ok());
  ASSERT_TRUE(live->SupportsIncrementalState());
  live->EnableIncrementalState();

  CaptureCollector out;
  uint64_t i = 0;
  // Epoch 0 -> base snapshot (as a barrier with NeedsBase would take it).
  for (; i < 100; ++i) live->ProcessRecord(0, KV(i, i % 17, i), &out);
  const std::string base = SnapshotBytes(*live);
  live->ResetDelta();

  // Three delta epochs: updates of old keys interleaved with new keys.
  std::vector<std::vector<std::string>> segments;
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (uint64_t n = 0; n < 60; ++n, ++i) {
      const int64_t key = (i % 2 == 0) ? static_cast<int64_t>(i % 17)
                                       : static_cast<int64_t>(17 + i % 23);
      live->ProcessRecord(0, KV(i, key, i), &out);
    }
    CaptureSink seg;
    ASSERT_TRUE(live->SnapshotDelta(&seg).ok());
    segments.push_back(std::move(seg.records));
  }

  auto recovered = make();
  ASSERT_TRUE(recovered->Open(OperatorContext{}).ok());
  RestoreAndReplay(base, segments, recovered.get());
  EXPECT_EQ(SnapshotBytes(*recovered), SnapshotBytes(*live));

  // The recovered operator behaves identically from here on.
  CaptureCollector live_out, rec_out;
  for (uint64_t n = 0; n < 40; ++n, ++i) {
    live->ProcessRecord(0, KV(i, i % 17, i), &live_out);
    recovered->ProcessRecord(0, KV(i, i % 17, i), &rec_out);
  }
  ASSERT_EQ(live_out.records.size(), rec_out.records.size());
  for (size_t k = 0; k < live_out.records.size(); ++k) {
    EXPECT_EQ(live_out.records[k], rec_out.records[k]);
  }
  EXPECT_EQ(SnapshotBytes(*recovered), SnapshotBytes(*live));
}

void RunWindowAggByteIdentity(WindowBackend backend) {
  auto make = [backend]() {
    WindowAggSpec spec;
    spec.key = [](const Record& r) { return r.field(0); };
    spec.value_field = 1;
    spec.agg_kind = DynAggKind::kSum;
    spec.windows = {std::make_shared<TumblingWindowFn>(10)};
    spec.backend = backend;
    return std::make_unique<WindowAggOperator>("w", std::move(spec));
  };
  auto live = make();
  ASSERT_TRUE(live->Open(OperatorContext{}).ok());
  ASSERT_TRUE(live->SupportsIncrementalState());
  live->EnableIncrementalState();

  CaptureCollector out;
  Timestamp ts = 0;
  // Epoch 0: records + a watermark that fires some windows, then the base.
  for (; ts < 95; ++ts) live->ProcessRecord(0, KV(ts, ts % 5, ts), &out);
  live->ProcessWatermark(80, &out);
  const std::string base = SnapshotBytes(*live);
  live->ResetDelta();

  // Delta epochs: more records, watermark advances (window fires and slice
  // eviction mutate key state without any ProcessRecord touching the key --
  // the fingerprint-based dirty detection must catch them), and records
  // left buffered in the reorder heap (meta record coverage).
  std::vector<std::vector<std::string>> segments;
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int n = 0; n < 47; ++n, ++ts) {
      live->ProcessRecord(0, KV(ts, ts % 5, ts), &out);
    }
    live->ProcessWatermark(ts - 12, &out);
    CaptureSink seg;
    ASSERT_TRUE(live->SnapshotDelta(&seg).ok());
    segments.push_back(std::move(seg.records));
  }

  auto recovered = make();
  ASSERT_TRUE(recovered->Open(OperatorContext{}).ok());
  RestoreAndReplay(base, segments, recovered.get());
  EXPECT_EQ(SnapshotBytes(*recovered), SnapshotBytes(*live));

  // Both emit identical results for the rest of the stream.
  CaptureCollector live_out, rec_out;
  for (int n = 0; n < 50; ++n, ++ts) {
    live->ProcessRecord(0, KV(ts, ts % 5, ts), &live_out);
    recovered->ProcessRecord(0, KV(ts, ts % 5, ts), &rec_out);
  }
  live->ProcessWatermark(ts, &live_out);
  recovered->ProcessWatermark(ts, &rec_out);
  ASSERT_EQ(live_out.records.size(), rec_out.records.size());
  for (size_t k = 0; k < live_out.records.size(); ++k) {
    EXPECT_EQ(live_out.records[k], rec_out.records[k]);
  }
  EXPECT_EQ(SnapshotBytes(*recovered), SnapshotBytes(*live));
}

TEST(IncrementalByteIdentityTest, WindowAggSharedBackend) {
  RunWindowAggByteIdentity(WindowBackend::kShared);
}

TEST(IncrementalByteIdentityTest, WindowAggEagerBackend) {
  RunWindowAggByteIdentity(WindowBackend::kEager);
}

TEST(IncrementalByteIdentityTest, IntervalJoinWithErasesAndPhantoms) {
  auto make = []() {
    return std::make_unique<IntervalJoinOperator>(
        "j", [](const Record& r) { return r.field(0); },
        [](const Record& r) { return r.field(0); },
        /*lower=*/-5, /*upper=*/5);
  };
  auto live = make();
  ASSERT_TRUE(live->Open(OperatorContext{}).ok());
  live->EnableIncrementalState();

  CaptureCollector out;
  Timestamp ts = 0;
  for (; ts < 60; ++ts) {
    live->ProcessRecord(static_cast<int>(ts % 2), KV(ts, ts % 7, ts), &out);
  }
  live->ProcessWatermark(40, &out);  // evicts: upserts + erases
  const std::string base = SnapshotBytes(*live);
  live->ResetDelta();

  std::vector<std::vector<std::string>> segments;
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int n = 0; n < 30; ++n, ++ts) {
      // A one-off key per epoch that the watermark below fully evicts
      // again: inserted and erased within the epoch -> phantom upsert.
      const int64_t key = (n == 0) ? 1000 + epoch : static_cast<int64_t>(ts % 7);
      live->ProcessRecord(static_cast<int>(ts % 2), KV(ts, key, ts), &out);
    }
    live->ProcessWatermark(ts - 8, &out);
    CaptureSink seg;
    ASSERT_TRUE(live->SnapshotDelta(&seg).ok());
    segments.push_back(std::move(seg.records));
  }

  auto recovered = make();
  ASSERT_TRUE(recovered->Open(OperatorContext{}).ok());
  RestoreAndReplay(base, segments, recovered.get());
  EXPECT_EQ(SnapshotBytes(*recovered), SnapshotBytes(*live));
}

TEST(IncrementalByteIdentityTest, TemporalJoinDimensionTable) {
  auto make = []() {
    TemporalJoinOperator::Spec spec;
    spec.fact_key = [](const Record& r) { return r.field(0); };
    spec.table_key = [](const Record& r) { return r.field(0); };
    return std::make_unique<TemporalJoinOperator>("t", std::move(spec));
  };
  auto live = make();
  ASSERT_TRUE(live->Open(OperatorContext{}).ok());
  live->EnableIncrementalState();

  CaptureCollector out;
  uint64_t i = 0;
  for (; i < 50; ++i) live->ProcessRecord(1, KV(i, i % 13, i), &out);
  const std::string base = SnapshotBytes(*live);
  live->ResetDelta();

  std::vector<std::vector<std::string>> segments;
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int n = 0; n < 25; ++n, ++i) {
      live->ProcessRecord(1, KV(i, (i * 3) % 19, i), &out);
    }
    CaptureSink seg;
    ASSERT_TRUE(live->SnapshotDelta(&seg).ok());
    segments.push_back(std::move(seg.records));
  }

  auto recovered = make();
  ASSERT_TRUE(recovered->Open(OperatorContext{}).ok());
  RestoreAndReplay(base, segments, recovered.get());
  EXPECT_EQ(SnapshotBytes(*recovered), SnapshotBytes(*live));
}

// ---------------------------------------------------------------------------
// End-to-end: the executor wiring. Gated source (from checkpoint_test) so
// checkpoints land at deterministic stream positions.

struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t allowed = 0;
  bool abort = false;

  void Allow(uint64_t upto) {
    {
      std::lock_guard<std::mutex> lock(mu);
      allowed = std::max(allowed, upto);
    }
    cv.notify_all();
  }
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mu);
      abort = true;
    }
    cv.notify_all();
  }
};

class GatedSource : public SourceFunction {
 public:
  GatedSource(Gate* gate, uint64_t total, std::function<Record(uint64_t)> make)
      : gate_(gate), total_(total), make_(std::move(make)) {}

  Result<SourcePoll> Poll(SourceContext* ctx) override {
    if (pos_ >= total_) return SourcePoll::kExhausted;
    {
      std::lock_guard<std::mutex> lock(gate_->mu);
      if (gate_->abort) return SourcePoll::kExhausted;
      if (gate_->allowed <= pos_) return SourcePoll::kIdle;
    }
    Record r = make_(pos_);
    const Timestamp ts = r.timestamp;
    if (!ctx->Emit(std::move(r))) return SourcePoll::kExhausted;
    ++pos_;
    ctx->EmitWatermark(ts);
    return SourcePoll::kHasMore;
  }

  Status SnapshotState(BinaryWriter* w) const override {
    w->WriteU64(pos_);
    return Status::Ok();
  }
  Status RestoreState(BinaryReader* r) override {
    auto pos = r->ReadU64();
    if (!pos.ok()) return pos.status();
    pos_ = *pos;
    return Status::Ok();
  }
  std::string Name() const override { return "gated"; }

 private:
  Gate* gate_;
  uint64_t total_;
  std::function<Record(uint64_t)> make_;
  uint64_t pos_ = 0;
};

Record KeyedValue(uint64_t i) {
  return MakeRecord(static_cast<Timestamp>(i),
                    Value(static_cast<int64_t>(i % 7)),
                    Value(static_cast<int64_t>(i)));
}

std::shared_ptr<CollectSink> BuildReduceJob(
    Environment* env, Gate* gate, uint64_t total,
    std::function<Record(uint64_t)> make = KeyedValue) {
  auto src = env->FromSource(
      "gated",
      [gate, total, make](int, int) -> std::unique_ptr<SourceFunction> {
        return std::make_unique<GatedSource>(gate, total, make);
      },
      1);
  return src.KeyBy(0)
      .Reduce([](const Record& acc, const Record& in) {
        Record out = acc;
        out.fields[1] = Value(acc.field(1).AsInt64() + in.field(1).AsInt64());
        return out;
      })
      .Collect();
}

size_t CountFiles(const std::string& dir, const std::string& substr) {
  size_t n = 0;
  if (!fs::exists(dir)) return 0;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.is_regular_file() &&
        e.path().filename().string().find(substr) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

TEST(IncrementalCheckpointE2ETest, RequiresIncrementalStore) {
  {
    Gate gate;
    Environment env;
    BuildReduceJob(&env, &gate, 10);
    JobOptions opts;
    opts.incremental_checkpoints = true;
    opts.snapshot_store = std::make_shared<SnapshotStore>();
    auto job = env.CreateJob(opts);
    ASSERT_FALSE(job.ok());
    EXPECT_EQ(job.status().code(), StatusCode::kInvalidArgument);
  }
  {
    Gate gate;
    Environment env;
    BuildReduceJob(&env, &gate, 10);
    JobOptions opts;
    opts.incremental_checkpoints = true;  // no store, no interval
    auto job = env.CreateJob(opts);
    ASSERT_FALSE(job.ok());
    EXPECT_EQ(job.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(IncrementalCheckpointE2ETest, ExactlyOnceRestoreFromDeltaChain) {
  constexpr uint64_t kTotal = 500;
  const std::string dir = TempDir("e2e_restore");

  // Reference: uninterrupted run.
  std::vector<Record> reference;
  {
    Gate gate;
    gate.Allow(kTotal);
    Environment env;
    auto sink = BuildReduceJob(&env, &gate, kTotal);
    ASSERT_TRUE(env.Execute().ok());
    reference = sink->records();
    ASSERT_EQ(reference.size(), kTotal);
  }

  auto store = std::make_shared<IncrementalSnapshotStore>(dir);
  uint64_t cp1 = 0, cp2 = 0;

  // Run 1: base checkpoint at 150, delta checkpoint at 300, crash at 380.
  std::vector<Record> first_outputs;
  {
    Gate gate;
    Environment env;
    auto sink = BuildReduceJob(&env, &gate, kTotal);
    JobOptions opts;
    opts.snapshot_store = store;
    opts.incremental_checkpoints = true;
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok()) << job.status().ToString();
    ASSERT_TRUE((*job)->Start().ok());

    gate.Allow(150);
    while (sink->size() < 150) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    cp1 = (*job)->TriggerCheckpoint();
    gate.Allow(300);
    ASSERT_TRUE((*job)->AwaitCheckpoint(cp1, 10.0));
    while (sink->size() < 300) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    cp2 = (*job)->TriggerCheckpoint();
    gate.Allow(380);
    ASSERT_TRUE((*job)->AwaitCheckpoint(cp2, 10.0));
    while (sink->size() < 380) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    gate.Abort();
    ASSERT_TRUE((*job)->AwaitCompletion().ok());

    const int64_t offset = sink->BarrierOffset(cp2);
    ASSERT_EQ(offset, 300);
    auto all = sink->records();
    first_outputs.assign(all.begin(), all.begin() + offset);
  }

  // The keyed reduce wrote a manifest-backed checkpoint: cp1 carries a
  // base, cp2 extends the chain with a sealed segment.
  EXPECT_GE(CountFiles(dir + "/chk" + std::to_string(cp2), ".manifest"), 1u);
  EXPECT_GE(CountFiles(dir + "/wal", "base"), 1u);
  EXPECT_GE(CountFiles(dir + "/wal", "seg"), 1u);
  EXPECT_GT(store->BytesWrittenFor(cp2), 0u);

  // Run 2: restore from the delta chain and finish the stream.
  std::vector<Record> second_outputs;
  {
    Gate gate;
    gate.Allow(kTotal);
    Environment env;
    auto sink = BuildReduceJob(&env, &gate, kTotal);
    JobOptions opts;
    opts.snapshot_store = store;
    opts.incremental_checkpoints = true;
    opts.restore_from_checkpoint = cp2;
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok()) << job.status().ToString();
    ASSERT_TRUE((*job)->Run().ok());
    second_outputs = sink->records();
  }

  ASSERT_EQ(first_outputs.size() + second_outputs.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    const Record& got = i < first_outputs.size()
                            ? first_outputs[i]
                            : second_outputs[i - first_outputs.size()];
    EXPECT_EQ(got, reference[i]) << "at index " << i;
  }
  fs::remove_all(dir);
}

TEST(IncrementalCheckpointE2ETest, FiveFoldByteReductionAtTenPercentMutation) {
  // 100k-key state; the second epoch touches 10% of the keys. The delta
  // checkpoint must cost at least 5x less than the base (it is ~10x less
  // in practice, plus segment/manifest overhead).
  constexpr uint64_t kKeys = 100000;
  constexpr uint64_t kMutations = 10000;
  // Tail records keep the source alive (idle at the gate) while the delta
  // checkpoint's barrier is injected.
  constexpr uint64_t kTotal = kKeys + kMutations + 10;
  const std::string dir = TempDir("bytes");

  auto make = [](uint64_t i) {
    const int64_t key = i < kKeys
                            ? static_cast<int64_t>(i)
                            : static_cast<int64_t>(((i - kKeys) * 7) % kKeys);
    return MakeRecord(static_cast<Timestamp>(i), Value(key),
                      Value(static_cast<int64_t>(i)));
  };

  Gate gate;
  Environment env;
  auto sink = BuildReduceJob(&env, &gate, kTotal, make);
  JobOptions opts;
  auto store = std::make_shared<IncrementalSnapshotStore>(dir);
  opts.snapshot_store = store;
  opts.incremental_checkpoints = true;
  opts.changelog_compaction_bytes = 256u << 20;  // keep cp2 a delta
  auto job = env.CreateJob(opts);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Start().ok());

  gate.Allow(kKeys);
  while (sink->size() < kKeys) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const uint64_t cp_base = (*job)->TriggerCheckpoint();
  gate.Allow(kKeys + kMutations);
  ASSERT_TRUE((*job)->AwaitCheckpoint(cp_base, 30.0));
  while (sink->size() < kKeys + kMutations) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const uint64_t cp_delta = (*job)->TriggerCheckpoint();
  gate.Allow(kTotal);
  ASSERT_TRUE((*job)->AwaitCheckpoint(cp_delta, 30.0));
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  const size_t base_bytes = store->BytesWrittenFor(cp_base);
  const size_t delta_bytes = store->BytesWrittenFor(cp_delta);
  ASSERT_GT(base_bytes, 0u);
  ASSERT_GT(delta_bytes, 0u);
  EXPECT_GE(base_bytes, 5 * delta_bytes)
      << "base=" << base_bytes << " delta=" << delta_bytes;
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Crash-point matrix: a one-shot fault at every WAL / manifest site of the
// durability protocol; the supervised job must recover from the last
// complete checkpoint and commit exactly the fault-free output.

constexpr uint64_t kChaosTotal = 2000;
constexpr int64_t kChaosKeys = 7;
constexpr int64_t kChaosWindow = 50;

class ChaosSource : public SourceFunction {
 public:
  explicit ChaosSource(uint64_t total) : total_(total) {}

  Result<SourcePoll> Poll(SourceContext* ctx) override {
    if (pos_ >= total_) return SourcePoll::kExhausted;
    Record r = MakeRecord(static_cast<Timestamp>(pos_),
                          Value(static_cast<int64_t>(pos_ % kChaosKeys)),
                          Value(static_cast<int64_t>(pos_)));
    const Timestamp ts = r.timestamp;
    if (!ctx->Emit(std::move(r))) return SourcePoll::kExhausted;
    ++pos_;
    ctx->EmitWatermark(ts);
    if (pos_ % 100 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pos_ < total_ ? SourcePoll::kHasMore : SourcePoll::kExhausted;
  }

  Status SnapshotState(BinaryWriter* w) const override {
    w->WriteU64(pos_);
    return Status::Ok();
  }
  Status RestoreState(BinaryReader* r) override {
    auto pos = r->ReadU64();
    if (!pos.ok()) return pos.status();
    pos_ = *pos;
    return Status::Ok();
  }
  std::string Name() const override { return "chaos"; }

 private:
  uint64_t total_;
  uint64_t pos_ = 0;
};

std::shared_ptr<TransactionalCollectSink> BuildWindowJob(Environment* env) {
  auto sink = std::make_shared<TransactionalCollectSink>();
  env->FromSource("gen",
                  [](int, int) -> std::unique_ptr<SourceFunction> {
                    return std::make_unique<ChaosSource>(kChaosTotal);
                  },
                  1)
      .KeyBy(0)
      .Window(std::make_shared<TumblingWindowFn>(kChaosWindow))
      .Aggregate(DynAggKind::kSum, 1, WindowBackend::kShared, "agg")
      .Sink(sink, "sink");
  return sink;
}

using WindowKey = std::tuple<int64_t, int64_t, int64_t, int64_t>;
std::map<WindowKey, std::pair<double, int>> Summarize(
    const std::vector<Record>& records) {
  std::map<WindowKey, std::pair<double, int>> out;
  for (const Record& r : records) {
    WindowKey k{r.field(0).AsInt64(), r.field(1).AsInt64(),
                r.field(2).AsInt64(), r.field(3).AsInt64()};
    auto [it, inserted] = out.try_emplace(k, r.field(4).AsDouble(), 1);
    if (!inserted) ++it->second.second;
  }
  return out;
}

std::map<WindowKey, std::pair<double, int>> FaultFreeReference() {
  Environment env;
  auto sink = BuildWindowJob(&env);
  EXPECT_TRUE(env.Execute().ok());
  sink->OnBarrier(9999);
  auto ref = Summarize(sink->committed());
  EXPECT_EQ(ref.size(),
            static_cast<size_t>(kChaosKeys * (kChaosTotal / kChaosWindow)));
  return ref;
}

/// One-shot `rule` into the incremental durability protocol; the
/// supervised job must still commit exactly the fault-free output.
void RunIncrementalChaosVariant(FaultInjector::Rule rule) {
  static const auto kReference = FaultFreeReference();
  const std::string dir = TempDir("chaos_" + rule.site);

  auto injector = std::make_shared<FaultInjector>();
  injector->AddRule(std::move(rule));

  Environment env;
  auto sink = BuildWindowJob(&env);
  JobOptions opts;
  opts.checkpoint_interval_ms = 2;
  opts.fault_injector = injector;
  opts.incremental_checkpoints = true;
  opts.snapshot_store = std::make_shared<IncrementalSnapshotStore>(dir);
  RestartPolicy policy;
  policy.max_restarts = 5;
  policy.initial_backoff_ms = 1;
  SupervisionStats stats;
  const Status st = env.ExecuteSupervised(opts, policy, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_GE(stats.restarts, 1) << "fault never fired";
  EXPECT_EQ(injector->fires(), 1u);

  sink->OnBarrier(9999);
  const auto got = Summarize(sink->committed());
  ASSERT_EQ(got.size(), kReference.size());
  for (const auto& [k, v] : kReference) {
    auto it = got.find(k);
    ASSERT_NE(it, got.end())
        << "missing window (key=" << std::get<0>(k)
        << ", start=" << std::get<1>(k) << ")";
    EXPECT_EQ(it->second.first, v.first)
        << "wrong sum for key " << std::get<0>(k)
        << ", start=" << std::get<1>(k);
    EXPECT_EQ(it->second.second, 1)
        << "duplicate committed window (key=" << std::get<0>(k)
        << ", start=" << std::get<1>(k) << ")";
  }
  fs::remove_all(dir);
}

TEST(IncrementalChaosTest, CrashAtWalAppendRecovers) {
  RunIncrementalChaosVariant(FaultInjector::FailAtHit("wal:append", 1));
}

TEST(IncrementalChaosTest, CrashAtTornWalAppendRecovers) {
  // Fires mid-write: half a frame lands in the segment, modeling a real
  // crash between write() and completion.
  RunIncrementalChaosVariant(FaultInjector::FailAtHit("wal:append_torn", 2));
}

TEST(IncrementalChaosTest, CrashAtWalSyncRecovers) {
  RunIncrementalChaosVariant(FaultInjector::FailAtHit("wal:sync", 1));
}

TEST(IncrementalChaosTest, CrashAtSealRecovers) {
  RunIncrementalChaosVariant(FaultInjector::FailAtHit("wal:seal", 1));
}

TEST(IncrementalChaosTest, CrashAtCompactionRecovers) {
  RunIncrementalChaosVariant(FaultInjector::FailAtHit("wal:compact", 1));
}

TEST(IncrementalChaosTest, CrashAtManifestPublishRecovers) {
  RunIncrementalChaosVariant(FaultInjector::FailAtHit("manifest:publish", 1));
}

}  // namespace
}  // namespace streamline
