#include "common/flat_hash_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/value.h"

namespace streamline {
namespace {

uint64_t HashOf(int64_t k) { return KeyHashOf(Value(k)); }

TEST(FlatHashMapTest, EmptyMapFindsNothing) {
  FlatHashMap<Value, int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(HashOf(1), Value(int64_t{1})), nullptr);
  EXPECT_FALSE(m.Erase(HashOf(1), Value(int64_t{1})));
  EXPECT_EQ(m.begin(), m.end());
}

TEST(FlatHashMapTest, InsertFindRoundTrip) {
  FlatHashMap<Value, int> m;
  for (int64_t k = 0; k < 100; ++k) {
    auto [entry, inserted] = m.TryEmplace(HashOf(k), Value(k),
                                          static_cast<int>(k * 10));
    EXPECT_TRUE(inserted);
    EXPECT_EQ(entry->second, static_cast<int>(k * 10));
  }
  EXPECT_EQ(m.size(), 100u);
  for (int64_t k = 0; k < 100; ++k) {
    int* v = m.Find(HashOf(k), Value(k));
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, static_cast<int>(k * 10));
  }
  EXPECT_EQ(m.Find(HashOf(100), Value(int64_t{100})), nullptr);
}

TEST(FlatHashMapTest, TryEmplaceDoesNotOverwrite) {
  FlatHashMap<Value, int> m;
  m.TryEmplace(HashOf(1), Value(int64_t{1}), 7);
  auto [entry, inserted] = m.TryEmplace(HashOf(1), Value(int64_t{1}), 99);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(entry->second, 7);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMapTest, IterationIsInsertionOrder) {
  FlatHashMap<Value, int> m;
  const int64_t keys[] = {42, 7, 300, -5, 0, 1000000};
  for (size_t i = 0; i < std::size(keys); ++i) {
    m.TryEmplace(HashOf(keys[i]), Value(keys[i]), static_cast<int>(i));
  }
  size_t i = 0;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k, Value(keys[i]));
    EXPECT_EQ(v, static_cast<int>(i));
    ++i;
  }
  EXPECT_EQ(i, std::size(keys));
}

TEST(FlatHashMapTest, InsertionOrderSurvivesRehash) {
  FlatHashMap<Value, int> m;
  // Enough inserts to force several growth rehashes past kMinCapacity.
  for (int64_t k = 0; k < 1000; ++k) {
    m.TryEmplace(HashOf(k), Value(k), static_cast<int>(k));
  }
  int64_t expect = 0;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k, Value(expect));
    EXPECT_EQ(v, static_cast<int>(expect));
    ++expect;
  }
  EXPECT_EQ(expect, 1000);
  EXPECT_GT(m.capacity(), 1000u);
}

TEST(FlatHashMapTest, EraseByKey) {
  FlatHashMap<Value, int> m;
  for (int64_t k = 0; k < 50; ++k) {
    m.TryEmplace(HashOf(k), Value(k), static_cast<int>(k));
  }
  for (int64_t k = 0; k < 50; k += 2) {
    EXPECT_TRUE(m.Erase(HashOf(k), Value(k)));
    EXPECT_FALSE(m.Erase(HashOf(k), Value(k)));  // already gone
  }
  EXPECT_EQ(m.size(), 25u);
  for (int64_t k = 0; k < 50; ++k) {
    int* v = m.Find(HashOf(k), Value(k));
    if (k % 2 == 0) {
      EXPECT_EQ(v, nullptr) << k;
    } else {
      ASSERT_NE(v, nullptr) << k;
      EXPECT_EQ(*v, static_cast<int>(k));
    }
  }
}

TEST(FlatHashMapTest, EraseIteratorSweepVisitsEveryEntryOnce) {
  FlatHashMap<Value, int> m;
  for (int64_t k = 0; k < 200; ++k) {
    m.TryEmplace(HashOf(k), Value(k), static_cast<int>(k));
  }
  // Evict odd values mid-sweep, the IntervalJoin watermark idiom.
  std::vector<int> kept;
  for (auto it = m.begin(); it != m.end();) {
    if (it->second % 2 == 1) {
      it = m.Erase(it);
    } else {
      kept.push_back(it->second);
      ++it;
    }
  }
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(kept.size(), 100u);
  for (int v : kept) EXPECT_EQ(v % 2, 0);
  for (int64_t k = 0; k < 200; ++k) {
    EXPECT_EQ(m.Find(HashOf(k), Value(k)) != nullptr, k % 2 == 0) << k;
  }
}

TEST(FlatHashMapTest, TombstoneChurnStaysBounded) {
  FlatHashMap<Value, int> m;
  // Steady-state churn: insert and erase the same small working set far
  // more times than the capacity; tombstone purges must keep the table
  // usable and bounded.
  for (int round = 0; round < 10000; ++round) {
    const int64_t k = round % 8;
    m.TryEmplace(HashOf(k), Value(k), round);
    EXPECT_TRUE(m.Erase(HashOf(k), Value(k)));
  }
  EXPECT_EQ(m.size(), 0u);
  EXPECT_LE(m.capacity(), 64u);  // churn alone must not balloon capacity
  // Still functional after the churn.
  m.TryEmplace(HashOf(5), Value(int64_t{5}), 123);
  ASSERT_NE(m.Find(HashOf(5), Value(int64_t{5})), nullptr);
}

TEST(FlatHashMapTest, HeterogeneousPreHashedLookup) {
  // Find() takes any KeyLike comparable with K: probe a string-keyed map
  // with a raw char pointer, no std::string materialization on lookup.
  const auto str_hash = [](const char* s) {
    return KeyHashOf(Value(s));
  };
  FlatHashMap<std::string, int> m;
  m.TryEmplace(str_hash("alpha"), "alpha", 1);
  m.TryEmplace(str_hash("beta"), "beta", 2);
  const char* probe = "beta";
  int* v = m.Find(str_hash(probe), probe);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 2);
  EXPECT_EQ(m.Find(str_hash("gamma"), "gamma"), nullptr);
}

TEST(FlatHashMapTest, ClearKeepsCapacityDropsEntries) {
  FlatHashMap<Value, int> m;
  for (int64_t k = 0; k < 100; ++k) {
    m.TryEmplace(HashOf(k), Value(k), static_cast<int>(k));
  }
  const size_t cap = m.capacity();
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.Find(HashOf(3), Value(int64_t{3})), nullptr);
  m.TryEmplace(HashOf(3), Value(int64_t{3}), 33);
  EXPECT_EQ(*m.Find(HashOf(3), Value(int64_t{3})), 33);
}

TEST(FlatHashMapTest, ReservePresizesNoGrowthDuringInsert) {
  FlatHashMap<Value, int> m;
  m.Reserve(1000);
  const size_t cap = m.capacity();
  EXPECT_GE(cap * 7, 1001u * 8 / 2);  // big enough for 1000 at <= 7/8 load
  for (int64_t k = 0; k < 1000; ++k) {
    m.TryEmplace(HashOf(k), Value(k), static_cast<int>(k));
  }
  EXPECT_EQ(m.capacity(), cap);  // no rehash happened
}

TEST(FlatHashMapTest, LoadFactorAndProbeGauges) {
  FlatHashMap<Value, int> m;
  EXPECT_EQ(m.load_factor(), 0.0);
  EXPECT_EQ(m.max_probe_length(), 0u);
  for (int64_t k = 0; k < 100; ++k) {
    m.TryEmplace(HashOf(k), Value(k), 0);
  }
  EXPECT_GT(m.load_factor(), 0.0);
  EXPECT_LE(m.load_factor(), 7.0 / 8.0);
  EXPECT_GE(m.max_probe_length(), 1u);
  EXPECT_LT(m.max_probe_length(), m.capacity());
}

TEST(FlatHashMapTest, MatchesUnorderedMapUnderRandomChurn) {
  FlatHashMap<Value, int64_t> m;
  std::unordered_map<int64_t, int64_t> ref;
  Rng rng(0xC0FFEE);
  for (int op = 0; op < 20000; ++op) {
    const int64_t k = static_cast<int64_t>(rng.NextBelow(512));
    const uint64_t h = HashOf(k);
    switch (rng.NextBelow(3)) {
      case 0: {  // upsert
        const int64_t v = static_cast<int64_t>(op);
        auto [entry, inserted] = m.TryEmplace(h, Value(k), v);
        if (!inserted) entry->second = v;
        ref[k] = v;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(m.Erase(h, Value(k)), ref.erase(k) > 0) << k;
        break;
      }
      default: {  // lookup
        int64_t* v = m.Find(h, Value(k));
        auto it = ref.find(k);
        if (it == ref.end()) {
          EXPECT_EQ(v, nullptr) << k;
        } else {
          ASSERT_NE(v, nullptr) << k;
          EXPECT_EQ(*v, it->second);
        }
        break;
      }
    }
    EXPECT_EQ(m.size(), ref.size());
  }
  // Final full cross-check.
  size_t seen = 0;
  for (const auto& [k, v] : m) {
    auto it = ref.find(k.AsInt64());
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
    ++seen;
  }
  EXPECT_EQ(seen, ref.size());
}

}  // namespace
}  // namespace streamline
