#include "common/spsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace streamline {
namespace {

TEST(SpscRingTest, PushPopFifo) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(0).capacity(), 1u);
}

TEST(SpscRingTest, PushFailsWhenFull) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));
  EXPECT_TRUE(ring.Full());
  int out = 0;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_TRUE(ring.TryPush(3));  // slot freed
}

TEST(SpscRingTest, FailedPushDoesNotConsumeTheItem) {
  SpscRing<std::unique_ptr<int>> ring(1);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(1)));
  auto item = std::make_unique<int>(2);
  EXPECT_FALSE(ring.TryPush(std::move(item)));
  // A rejected push must leave the item intact for a retry.
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(*item, 2);
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  SpscRing<uint64_t> ring(8);
  uint64_t out = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.TryPush(uint64_t{i}));
    ASSERT_TRUE(ring.TryPop(&out));
    ASSERT_EQ(out, i);
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, MoveOnlyElements) {
  SpscRing<std::unique_ptr<std::string>> ring(4);
  EXPECT_TRUE(ring.TryPush(std::make_unique<std::string>("a")));
  EXPECT_TRUE(ring.TryPush(std::make_unique<std::string>("b")));
  std::unique_ptr<std::string> out;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, "a");
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(*out, "b");
}

TEST(SpscRingTest, SizeTracksOccupancy) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.Empty());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.TryPush(int{i}));
  EXPECT_EQ(ring.size(), 5u);
  int out = 0;
  ring.TryPop(&out);
  EXPECT_EQ(ring.size(), 4u);
}

// Two-thread stress: every element arrives exactly once, in order. This is
// the test the thread-sanitizer CI job leans on.
TEST(SpscRingTest, ThreadedFifoStress) {
  constexpr uint64_t kItems = 200'000;
  SpscRing<uint64_t> ring(64);
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems; ++i) {
      while (!ring.TryPush(uint64_t{i})) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  uint64_t item = 0;
  while (expected < kItems) {
    if (ring.TryPop(&item)) {
      ASSERT_EQ(item, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.Empty());
}

// --- SpscChannel: the blocking protocol over the ring ----------------------

TEST(SpscChannelTest, PushPopFifo) {
  SpscChannel<int> ch(4);
  EXPECT_TRUE(ch.Push(1));
  EXPECT_TRUE(ch.Push(2));
  EXPECT_EQ(ch.Pop().value(), 1);
  EXPECT_EQ(ch.Pop().value(), 2);
}

TEST(SpscChannelTest, CloseDrainsThenEnds) {
  SpscChannel<int> ch(4);
  ch.Push(1);
  ch.Push(2);
  ch.Close();
  EXPECT_FALSE(ch.Push(3));  // rejected after close
  EXPECT_EQ(ch.Pop().value(), 1);
  EXPECT_EQ(ch.Pop().value(), 2);
  EXPECT_FALSE(ch.Pop().has_value());  // drained -> end of channel
}

TEST(SpscChannelTest, BlockedProducerWakesOnPop) {
  SpscChannel<int> ch(2);
  ASSERT_TRUE(ch.Push(1));
  ASSERT_TRUE(ch.Push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ch.Push(3);  // blocks: channel is full
    pushed.store(true);
  });
  // The producer must be blocked until the consumer makes room.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(ch.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(ch.Pop().value(), 2);
  EXPECT_EQ(ch.Pop().value(), 3);
}

TEST(SpscChannelTest, BlockedProducerWakesOnClose) {
  SpscChannel<int> ch(1);
  ASSERT_TRUE(ch.Push(1));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(ch.Push(2));  // blocks, then rejected by close
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  ch.Close();
  producer.join();
  EXPECT_TRUE(returned.load());
}

TEST(SpscChannelTest, ConsumerParksOnDoorbellUntilPush) {
  Doorbell bell;
  SpscChannel<int> ch(4, &bell);
  std::optional<int> got;
  std::thread consumer([&] { got = ch.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.Push(42);
  consumer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
}

TEST(SpscChannelTest, ThreadedTransferDeliversEverythingOnce) {
  constexpr int kItems = 100'000;
  Doorbell bell;
  SpscChannel<int> ch(32, &bell);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(ch.Push(int{i}));
    ch.Close();
  });
  int expected = 0;
  while (auto v = ch.Pop()) {
    ASSERT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

// One consumer multiplexing several producer channels through a shared
// doorbell -- the executor's input topology.
TEST(SpscChannelTest, MultiplexedChannelsOneDoorbell) {
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 20'000;
  Doorbell bell;
  std::vector<std::unique_ptr<SpscChannel<int>>> channels;
  for (int p = 0; p < kProducers; ++p) {
    channels.push_back(std::make_unique<SpscChannel<int>>(16, &bell));
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItemsEach; ++i) {
        ASSERT_TRUE(channels[p]->Push(int{p}));
      }
      channels[p]->Close();
    });
  }
  std::vector<int> counts(kProducers, 0);
  int open = kProducers;
  std::vector<bool> live(kProducers, true);
  while (open > 0) {
    bool progress = false;
    for (int p = 0; p < kProducers; ++p) {
      if (!live[p]) continue;
      int v = 0;
      if (channels[p]->TryPop(&v)) {
        ASSERT_EQ(v, p);
        ++counts[p];
        progress = true;
      } else if (channels[p]->closed() && channels[p]->Empty()) {
        int drain = 0;
        while (channels[p]->TryPop(&drain)) ++counts[p];
        live[p] = false;
        --open;
        progress = true;
      }
    }
    if (!progress) {
      bell.Park([&] {
        for (int p = 0; p < kProducers; ++p) {
          if (live[p] && (!channels[p]->Empty() || channels[p]->closed())) {
            return true;
          }
        }
        return false;
      });
    }
  }
  for (std::thread& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(counts[p], kItemsEach);
}

}  // namespace
}  // namespace streamline
