#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "dataflow/snapshot.h"

namespace streamline {
namespace {

namespace fs = std::filesystem;

class FileSnapshotStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("slss_test_" +
              std::string(
                  ::testing::UnitTest::GetInstance()->current_test_info()->name())))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
};

TEST_F(FileSnapshotStoreTest, RoundTrip) {
  FileSnapshotStore store(root_);
  ASSERT_TRUE(store.Put(1, "node0/0", "hello").ok());
  ASSERT_TRUE(store.Put(1, "node1/0", std::string("\x00\x01\x02", 3)).ok());  // binary-safe
  ASSERT_TRUE(store.Put(2, "node0/0", "world").ok());

  auto a = store.Get(1, "node0/0");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(*a, "hello");
  auto b = store.Get(1, "node1/0");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, std::string("\x00\x01\x02", 3));
  auto c = store.Get(2, "node0/0");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, "world");

  EXPECT_TRUE(store.Has(1, "node0/0"));
  EXPECT_FALSE(store.Has(1, "node2/0"));
  EXPECT_EQ(store.NumEntries(1), 2u);
  EXPECT_EQ(store.CheckpointIds(), (std::vector<uint64_t>{1, 2}));
  EXPECT_GT(store.TotalBytes(1), 0u);
  EXPECT_FALSE(store.Get(3, "node0/0").ok());
}

TEST_F(FileSnapshotStoreTest, OverwriteReplacesEntry) {
  FileSnapshotStore store(root_);
  ASSERT_TRUE(store.Put(1, "k", "v1").ok());
  ASSERT_TRUE(store.Put(1, "k", "v2").ok());
  auto v = store.Get(1, "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v2");
  EXPECT_EQ(store.NumEntries(1), 1u);
}

TEST_F(FileSnapshotStoreTest, NoTempFilesLeftBehind) {
  // Writes go to a ".tmp." name and are renamed into place atomically; a
  // completed Put must leave no temp file, and entry counting must never
  // see one.
  FileSnapshotStore store(root_);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(store.Put(1, "k" + std::to_string(i), std::string(1024, 'x')).ok());
  }
  int tmp_files = 0;
  for (const auto& e : fs::recursive_directory_iterator(root_)) {
    if (e.path().filename().string().rfind(".tmp.", 0) == 0) ++tmp_files;
  }
  EXPECT_EQ(tmp_files, 0);
  EXPECT_EQ(store.NumEntries(1), 16u);
}

TEST_F(FileSnapshotStoreTest, CompletionSurvivesReopen) {
  {
    FileSnapshotStore store(root_);
    ASSERT_TRUE(store.Put(1, "k", "a").ok());
    ASSERT_TRUE(store.Put(2, "k", "b").ok());
    store.MarkComplete(1);
    // Checkpoint 2 never completed (simulates a crash mid-checkpoint).
  }
  FileSnapshotStore reopened(root_);
  EXPECT_EQ(reopened.LatestComplete(), 1u);
  EXPECT_EQ(reopened.CompletedCheckpoints(), (std::vector<uint64_t>{1}));
  // Ids keep increasing across process restarts.
  EXPECT_EQ(reopened.MaxCheckpointId(), 2u);
  auto v = reopened.Get(1, "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "a");
}

TEST_F(FileSnapshotStoreTest, CorruptionDetectedOnGet) {
  FileSnapshotStore store(root_);
  ASSERT_TRUE(store.Put(1, "node0/0", "precious state bytes").ok());
  store.MarkComplete(1);

  // Flip a payload byte on disk, as a bad disk would.
  const fs::path entry = fs::path(root_) / "chk1" / "node0_0";
  ASSERT_TRUE(fs::exists(entry));
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('X');
  }
  const auto v = store.Get(1, "node0/0");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("CRC"), std::string::npos)
      << v.status().ToString();
}

TEST_F(FileSnapshotStoreTest, TruncationDetectedOnGet) {
  FileSnapshotStore store(root_);
  ASSERT_TRUE(store.Put(1, "k", std::string(256, 'z')).ok());
  const fs::path entry = fs::path(root_) / "chk1" / "k";
  fs::resize_file(entry, fs::file_size(entry) / 2);
  const auto v = store.Get(1, "k");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST_F(FileSnapshotStoreTest, GarbageHeaderDetectedOnGet) {
  FileSnapshotStore store(root_);
  std::error_code ec;
  fs::create_directories(fs::path(root_) / "chk1", ec);
  {
    std::ofstream f(fs::path(root_) / "chk1" / "k", std::ios::binary);
    f << "not a snapshot entry at all";
  }
  const auto v = store.Get(1, "k");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("bad header"), std::string::npos);
}

TEST_F(FileSnapshotStoreTest, CorruptRestoreFallsBackToPreviousCheckpoint) {
  // The supervisor-facing contract: when the newest complete checkpoint is
  // corrupt, Get fails and the previous complete checkpoint still loads.
  FileSnapshotStore store(root_);
  ASSERT_TRUE(store.Put(1, "k", "old").ok());
  store.MarkComplete(1);
  ASSERT_TRUE(store.Put(2, "k", "new").ok());
  store.MarkComplete(2);

  const fs::path entry = fs::path(root_) / "chk2" / "k";
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    f.put('?');
  }
  EXPECT_FALSE(store.Get(2, "k").ok());
  auto prev = store.Get(1, "k");
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(*prev, "old");
}

TEST_F(FileSnapshotStoreTest, PruningKeepsLastNCompleted) {
  FileSnapshotStore store(root_);
  store.RetainLast(2);
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(store.Put(id, "k", "v" + std::to_string(id)).ok());
    store.MarkComplete(id);
  }
  EXPECT_EQ(store.CompletedCheckpoints(), (std::vector<uint64_t>{4, 5}));
  EXPECT_FALSE(fs::exists(fs::path(root_) / "chk1"));
  EXPECT_FALSE(fs::exists(fs::path(root_) / "chk3"));
  EXPECT_TRUE(fs::exists(fs::path(root_) / "chk4"));
  EXPECT_TRUE(fs::exists(fs::path(root_) / "chk5"));
  // max id is monotone even though chk1..3 were pruned.
  EXPECT_EQ(store.MaxCheckpointId(), 5u);
}

TEST_F(FileSnapshotStoreTest, PruningDropsAbandonedIncompleteCheckpoints) {
  FileSnapshotStore store(root_);
  store.RetainLast(1);
  ASSERT_TRUE(store.Put(1, "k", "a").ok());
  store.MarkComplete(1);
  ASSERT_TRUE(store.Put(2, "k", "b").ok());  // incomplete (crashed mid-checkpoint)
  ASSERT_TRUE(store.Put(3, "k", "c").ok());
  store.MarkComplete(3);
  // Completing 3 prunes everything below it, including abandoned 2.
  EXPECT_FALSE(fs::exists(fs::path(root_) / "chk1"));
  EXPECT_FALSE(fs::exists(fs::path(root_) / "chk2"));
  EXPECT_TRUE(fs::exists(fs::path(root_) / "chk3"));
}

TEST_F(FileSnapshotStoreTest, InMemoryStorePrunesIdentically) {
  SnapshotStore store;
  store.RetainLast(2);
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(store.Put(id, "k", "v").ok());
    store.MarkComplete(id);
  }
  EXPECT_EQ(store.CompletedCheckpoints(), (std::vector<uint64_t>{4, 5}));
  EXPECT_FALSE(store.Has(3, "k"));
  EXPECT_TRUE(store.Has(4, "k"));
  EXPECT_EQ(store.MaxCheckpointId(), 5u);
  EXPECT_EQ(store.LatestComplete(), 5u);
}

TEST_F(FileSnapshotStoreTest, DropRemovesCheckpointDir) {
  FileSnapshotStore store(root_);
  ASSERT_TRUE(store.Put(7, "k", "v").ok());
  ASSERT_TRUE(fs::exists(fs::path(root_) / "chk7"));
  store.Drop(7);
  EXPECT_FALSE(fs::exists(fs::path(root_) / "chk7"));
  EXPECT_FALSE(store.Get(7, "k").ok());
}

TEST_F(FileSnapshotStoreTest, SlashInKeySanitized) {
  FileSnapshotStore store(root_);
  ASSERT_TRUE(store.Put(1, "node3/12", "v").ok());
  auto v = store.Get(1, "node3/12");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v");
  EXPECT_TRUE(fs::exists(fs::path(root_) / "chk1" / "node3_12"));
}

}  // namespace
}  // namespace streamline
