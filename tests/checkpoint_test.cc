#include "dataflow/snapshot.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>

#include "api/datastream.h"
#include "dataflow/executor.h"

namespace streamline {
namespace {

TEST(SnapshotStoreTest, PutGet) {
  SnapshotStore store;
  ASSERT_TRUE(store.Put(1, "node0/0", "abc").ok());
  ASSERT_TRUE(store.Get(1, "node0/0").ok());
  EXPECT_EQ(store.Get(1, "node0/0").value(), "abc");
  EXPECT_FALSE(store.Get(1, "node9/0").ok());
  EXPECT_FALSE(store.Get(2, "node0/0").ok());
  EXPECT_TRUE(store.Has(1, "node0/0"));
  EXPECT_EQ(store.NumEntries(1), 1u);
  EXPECT_EQ(store.TotalBytes(1), 3u);
  EXPECT_EQ(store.CheckpointIds(), (std::vector<uint64_t>{1}));
}

TEST(CheckpointCoordinatorTest, CompletesAfterAllAcks) {
  SnapshotStore store;
  CheckpointCoordinator coord(&store, 3);
  int triggered_with = 0;
  coord.RegisterSourceTrigger([&](uint64_t id) {
    triggered_with = static_cast<int>(id);
  });
  const uint64_t id = coord.Trigger();
  EXPECT_EQ(triggered_with, static_cast<int>(id));
  EXPECT_FALSE(coord.IsComplete(id));
  coord.AckTask(id);
  coord.AckTask(id);
  EXPECT_FALSE(coord.AwaitCompletion(id, 0.01));
  coord.AckTask(id);
  EXPECT_TRUE(coord.AwaitCompletion(id, 1.0));
  EXPECT_TRUE(coord.IsComplete(id));
  EXPECT_EQ(coord.latest_completed(), id);
}

// ---------------------------------------------------------------------------
// Gated source: emits records only as far as the test allows, so tests can
// position checkpoints deterministically between records.

struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t allowed = 0;
  bool abort = false;

  void Allow(uint64_t upto) {
    {
      std::lock_guard<std::mutex> lock(mu);
      allowed = std::max(allowed, upto);
    }
    cv.notify_all();
  }
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mu);
      abort = true;
    }
    cv.notify_all();
  }
};

class GatedSource : public SourceFunction {
 public:
  GatedSource(Gate* gate, uint64_t total,
              std::function<Record(uint64_t)> make)
      : gate_(gate), total_(total), make_(std::move(make)) {}

  Result<SourcePoll> Poll(SourceContext* ctx) override {
    if (pos_ >= total_) return SourcePoll::kExhausted;
    {
      std::lock_guard<std::mutex> lock(gate_->mu);
      if (gate_->abort) return SourcePoll::kExhausted;
      // Not allowed yet: report idle so the runtime re-polls (and keeps
      // servicing checkpoint barriers) instead of blocking a worker.
      if (gate_->allowed <= pos_) return SourcePoll::kIdle;
    }
    Record r = make_(pos_);
    const Timestamp ts = r.timestamp;
    if (!ctx->Emit(std::move(r))) return SourcePoll::kExhausted;
    ++pos_;
    ctx->EmitWatermark(ts);
    return SourcePoll::kHasMore;
  }

  Status SnapshotState(BinaryWriter* w) const override {
    w->WriteU64(pos_);
    return Status::Ok();
  }
  Status RestoreState(BinaryReader* r) override {
    auto pos = r->ReadU64();
    if (!pos.ok()) return pos.status();
    pos_ = *pos;
    return Status::Ok();
  }
  std::string Name() const override { return "gated"; }

 private:
  Gate* gate_;
  uint64_t total_;
  std::function<Record(uint64_t)> make_;
  uint64_t pos_ = 0;
};

Record KeyedValue(uint64_t i) {
  return MakeRecord(static_cast<Timestamp>(i),
                    Value(static_cast<int64_t>(i % 7)),
                    Value(static_cast<int64_t>(i)));
}

// Builds: gated source -> keyed reduce (running per-key sum) -> collect.
std::shared_ptr<CollectSink> BuildReduceJob(Environment* env, Gate* gate,
                                            uint64_t total) {
  auto src = env->FromSource(
      "gated",
      [gate, total](int, int) -> std::unique_ptr<SourceFunction> {
        return std::make_unique<GatedSource>(gate, total, KeyedValue);
      },
      1);
  return src.KeyBy(0)
      .Reduce([](const Record& acc, const Record& in) {
        Record out = acc;
        out.fields[1] = Value(acc.field(1).AsInt64() + in.field(1).AsInt64());
        return out;
      })
      .Collect();
}

TEST(CheckpointTest, TriggerAndCompleteMidStream) {
  Gate gate;
  Environment env;
  auto sink = BuildReduceJob(&env, &gate, 100);
  JobOptions opts;
  opts.snapshot_store = std::make_shared<SnapshotStore>();
  auto job = env.CreateJob(opts);
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  ASSERT_TRUE((*job)->Start().ok());

  gate.Allow(40);
  while (sink->size() < 40) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  const uint64_t cp = (*job)->TriggerCheckpoint();
  gate.Allow(100);  // the barrier is injected before record 40
  ASSERT_TRUE((*job)->AwaitCheckpoint(cp, 10.0));
  ASSERT_TRUE((*job)->AwaitCompletion().ok());

  // Barrier passed the sink exactly after 40 outputs.
  EXPECT_EQ(sink->BarrierOffset(cp), 40);
  // Every task wrote its state.
  EXPECT_GT(opts.snapshot_store->NumEntries(cp), 0u);
  EXPECT_GT(opts.snapshot_store->TotalBytes(cp), 0u);
}

TEST(CheckpointTest, ExactlyOnceRestoreKeyedReduce) {
  constexpr uint64_t kTotal = 500;
  constexpr uint64_t kCut = 200;

  // Reference: uninterrupted run.
  std::vector<Record> reference;
  {
    Gate gate;
    gate.Allow(kTotal);
    Environment env;
    auto sink = BuildReduceJob(&env, &gate, kTotal);
    ASSERT_TRUE(env.Execute().ok());
    reference = sink->records();
    ASSERT_EQ(reference.size(), kTotal);
  }

  auto store = std::make_shared<SnapshotStore>();
  uint64_t cp = 0;

  // Run 1: checkpoint after kCut records, then "crash" (cancel) later.
  std::vector<Record> first_outputs;
  {
    Gate gate;
    Environment env;
    auto sink = BuildReduceJob(&env, &gate, kTotal);
    JobOptions opts;
    opts.snapshot_store = store;
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE((*job)->Start().ok());
    gate.Allow(kCut);
    while (sink->size() < kCut) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
    cp = (*job)->TriggerCheckpoint();
    gate.Allow(kCut + 150);  // emit past the checkpoint, then crash
    ASSERT_TRUE((*job)->AwaitCheckpoint(cp, 10.0));
    while (sink->size() < kCut + 150) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
    gate.Abort();
    ASSERT_TRUE((*job)->AwaitCompletion().ok());
    const int64_t offset = sink->BarrierOffset(cp);
    ASSERT_EQ(offset, static_cast<int64_t>(kCut));
    auto all = sink->records();
    first_outputs.assign(all.begin(), all.begin() + offset);
  }

  // Run 2: restore from the checkpoint and finish the stream.
  std::vector<Record> second_outputs;
  {
    Gate gate;
    gate.Allow(kTotal);
    Environment env;
    auto sink = BuildReduceJob(&env, &gate, kTotal);
    JobOptions opts;
    opts.snapshot_store = store;
    opts.restore_from_checkpoint = cp;
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok()) << job.status().ToString();
    ASSERT_TRUE((*job)->Run().ok());
    second_outputs = sink->records();
  }

  // Exactly-once: pre-barrier outputs + restored-run outputs == reference.
  ASSERT_EQ(first_outputs.size() + second_outputs.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    const Record& got = i < first_outputs.size()
                            ? first_outputs[i]
                            : second_outputs[i - first_outputs.size()];
    EXPECT_EQ(got, reference[i]) << "at index " << i;
  }
}

TEST(CheckpointTest, WindowedStateSurvivesRestore) {
  constexpr uint64_t kTotal = 400;
  constexpr uint64_t kCut = 170;

  auto build = [](Environment* env, Gate* gate) {
    auto src = env->FromSource(
        "gated",
        [gate, total = kTotal](int, int) -> std::unique_ptr<SourceFunction> {
          return std::make_unique<GatedSource>(gate, total, KeyedValue);
        },
        1);
    return src.KeyBy(0)
        .Window(std::make_shared<TumblingWindowFn>(50))
        .Aggregate(DynAggKind::kSum, 1)
        .Collect();
  };

  auto window_results = [](const std::vector<Record>& rs) {
    std::map<std::tuple<int64_t, Timestamp, Timestamp>, double> out;
    for (const Record& r : rs) {
      out[{r.field(0).AsInt64(), r.field(1).AsInt64(),
           r.field(2).AsInt64()}] = r.field(4).AsDouble();
    }
    return out;
  };

  // Reference.
  std::map<std::tuple<int64_t, Timestamp, Timestamp>, double> reference;
  {
    Gate gate;
    gate.Allow(kTotal);
    Environment env;
    auto sink = build(&env, &gate);
    ASSERT_TRUE(env.Execute().ok());
    reference = window_results(sink->records());
    ASSERT_FALSE(reference.empty());
  }

  auto store = std::make_shared<SnapshotStore>();
  uint64_t cp = 0;
  std::map<std::tuple<int64_t, Timestamp, Timestamp>, double> combined;

  // Run 1 with crash after the checkpoint.
  {
    Gate gate;
    Environment env;
    auto sink = build(&env, &gate);
    JobOptions opts;
    opts.snapshot_store = store;
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok());
    ASSERT_TRUE((*job)->Start().ok());
    gate.Allow(kCut);
    // Wait for the source to drain (windows fire lazily; poll the sink
    // until it stabilizes on the mid-stream state).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cp = (*job)->TriggerCheckpoint();
    gate.Allow(kCut + 1);  // unblock the source so it sees the barrier
    ASSERT_TRUE((*job)->AwaitCheckpoint(cp, 10.0));
    gate.Abort();
    ASSERT_TRUE((*job)->AwaitCompletion().ok());
    const int64_t offset = sink->BarrierOffset(cp);
    ASSERT_GE(offset, 0);
    auto all = sink->records();
    all.resize(static_cast<size_t>(offset));  // pre-barrier outputs only
    for (const auto& [k, v] : window_results(all)) combined[k] = v;
  }

  // Run 2: restore and finish.
  {
    Gate gate;
    gate.Allow(kTotal);
    Environment env;
    auto sink = build(&env, &gate);
    JobOptions opts;
    opts.snapshot_store = store;
    opts.restore_from_checkpoint = cp;
    auto job = env.CreateJob(opts);
    ASSERT_TRUE(job.ok()) << job.status().ToString();
    ASSERT_TRUE((*job)->Run().ok());
    for (const auto& [k, v] : window_results(sink->records())) {
      // No window may be emitted twice with different values.
      auto it = combined.find(k);
      if (it != combined.end()) {
        EXPECT_DOUBLE_EQ(it->second, v);
      }
      combined[k] = v;
    }
  }

  EXPECT_EQ(combined, reference);
}

TEST(CheckpointTest, PeriodicCheckpointsDoNotCorruptResults) {
  Environment env(2);
  std::vector<Record> records;
  for (uint64_t i = 0; i < 20000; ++i) records.push_back(KeyedValue(i));
  auto sink = env.FromRecords(std::move(records))
                  .KeyBy(0)
                  .Reduce([](const Record& acc, const Record& in) {
                    Record out = acc;
                    out.fields[1] = Value(acc.field(1).AsInt64() +
                                          in.field(1).AsInt64());
                    return out;
                  })
                  .Collect();
  JobOptions opts;
  opts.snapshot_store = std::make_shared<SnapshotStore>();
  opts.checkpoint_interval_ms = 5;
  ASSERT_TRUE(env.Execute(opts).ok());
  std::map<int64_t, int64_t> final_sum;
  for (const Record& r : sink->records()) {
    final_sum[r.field(0).AsInt64()] = r.field(1).AsInt64();
  }
  for (int k = 0; k < 7; ++k) {
    int64_t expect = 0;
    for (uint64_t i = 0; i < 20000; ++i) {
      if (static_cast<int64_t>(i % 7) == k) expect += static_cast<int64_t>(i);
    }
    EXPECT_EQ(final_sum[k], expect);
  }
  EXPECT_EQ(sink->size(), 20000u);
}

TEST(CheckpointTest, RestoreFromMissingCheckpointFails) {
  Gate gate;
  gate.Allow(10);
  Environment env;
  BuildReduceJob(&env, &gate, 10);
  JobOptions opts;
  opts.snapshot_store = std::make_shared<SnapshotStore>();
  opts.restore_from_checkpoint = 42;  // never taken
  auto job = env.CreateJob(opts);
  EXPECT_FALSE(job.ok());
  EXPECT_EQ(job.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace streamline
