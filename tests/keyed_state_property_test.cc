// Property tests for the pre-hashed keyed-state backend: operator results
// must match an std::unordered_map reference model under random keyed
// workloads, snapshots must be byte-deterministic across rehash histories,
// and keyed operators must never recompute a hash the shuffle computed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/datastream.h"
#include "common/random.h"

namespace streamline {
namespace {

struct VecCollector : public Collector {
  void Emit(Record&& r) override { records.push_back(std::move(r)); }
  std::vector<Record> records;
};

std::vector<Record> RandomKeyedWorkload(uint64_t seed, int n, int key_space) {
  Rng rng(seed);
  std::vector<Record> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(MakeRecord(
        i, Value(static_cast<int64_t>(rng.NextBelow(key_space))),
        Value(static_cast<double>(rng.NextBelow(1000)))));
  }
  return out;
}

// --- equivalence vs. the unordered_map reference model ---------------------

TEST(KeyedStatePropertyTest, ReduceMatchesReferenceModel) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const auto workload = RandomKeyedWorkload(seed, 2000, 97);
    // Reference: per-key running sum in an unordered_map.
    std::unordered_map<int64_t, double> ref;
    for (const Record& r : workload) {
      ref[r.field(0).AsInt64()] += r.field(1).AsDouble();
    }

    Environment env(2);
    auto sink =
        env.FromRecords(workload)
            .KeyBy(0)
            .Reduce([](const Record& acc, const Record& in) {
              return MakeRecord(0, acc.field(0),
                                Value(acc.field(1).AsDouble() +
                                      in.field(1).AsDouble()));
            })
            .Collect();
    ASSERT_TRUE(env.Execute().ok());
    // The last emission per key carries the final accumulator.
    std::unordered_map<int64_t, double> got;
    for (const Record& r : sink->records()) {
      got[r.field(0).AsInt64()] = r.field(1).AsDouble();
    }
    ASSERT_EQ(got.size(), ref.size()) << "seed " << seed;
    for (const auto& [k, v] : ref) {
      ASSERT_TRUE(got.count(k)) << "seed " << seed << " key " << k;
      EXPECT_DOUBLE_EQ(got[k], v) << "seed " << seed << " key " << k;
    }
  }
}

TEST(KeyedStatePropertyTest, WindowAggMatchesReferenceModel) {
  for (uint64_t seed : {11u, 12u}) {
    const auto workload = RandomKeyedWorkload(seed, 3000, 64);
    const int64_t range = 100;
    // Reference: per (key, tumbling window) sum.
    std::map<std::pair<int64_t, int64_t>, double> ref;
    for (const Record& r : workload) {
      const int64_t wstart = (r.timestamp / range) * range;
      ref[{r.field(0).AsInt64(), wstart}] += r.field(1).AsDouble();
    }

    Environment env(2);
    auto sink = env.FromRecords(workload)
                    .KeyBy(0)
                    .Window(std::make_shared<TumblingWindowFn>(range))
                    .Aggregate(DynAggKind::kSum, 1)
                    .Collect();
    ASSERT_TRUE(env.Execute().ok());
    std::map<std::pair<int64_t, int64_t>, double> got;
    for (const Record& r : sink->records()) {
      got[{r.field(0).AsInt64(), r.field(1).AsInt64()}] =
          r.field(4).AsDouble();
    }
    ASSERT_EQ(got.size(), ref.size()) << "seed " << seed;
    for (const auto& [kw, v] : ref) {
      ASSERT_TRUE(got.count(kw)) << "seed " << seed;
      EXPECT_DOUBLE_EQ(got[kw], v) << "seed " << seed;
    }
  }
}

// --- snapshot determinism --------------------------------------------------

// Drives `make_op()` instances through snapshot -> restore -> snapshot and
// expects byte-identical buffers. The restored map has a different rehash
// history (one presized Reserve instead of incremental growth), so equality
// proves serialization order is independent of capacity history.
template <typename MakeOp, typename Feed>
void ExpectSnapshotRoundTripStable(MakeOp make_op, Feed feed) {
  auto op = make_op();
  VecCollector out;
  feed(op.get(), &out);
  BinaryWriter w1;
  ASSERT_TRUE(op->SnapshotState(&w1).ok());

  auto restored = make_op();
  BinaryReader r(w1.buffer());
  ASSERT_TRUE(restored->RestoreState(&r).ok());
  BinaryWriter w2;
  ASSERT_TRUE(restored->SnapshotState(&w2).ok());
  ASSERT_EQ(w1.buffer().size(), w2.buffer().size());
  EXPECT_TRUE(w1.buffer() == w2.buffer());

  // Second hop: restore the restored snapshot; still byte-stable.
  auto restored2 = make_op();
  BinaryReader r2(w2.buffer());
  ASSERT_TRUE(restored2->RestoreState(&r2).ok());
  BinaryWriter w3;
  ASSERT_TRUE(restored2->SnapshotState(&w3).ok());
  EXPECT_TRUE(w1.buffer() == w3.buffer());
}

KeySelector Key0() { return KeyField(0); }

TEST(KeyedStatePropertyTest, ReduceSnapshotByteStableAcrossRestore) {
  ExpectSnapshotRoundTripStable(
      [] {
        return std::make_unique<KeyedReduceOperator>(
            "reduce", Key0(), [](const Record& a, const Record& b) {
              return MakeRecord(0, a.field(0),
                                Value(a.field(1).AsDouble() +
                                      b.field(1).AsDouble()));
            });
      },
      [](KeyedReduceOperator* op, Collector* out) {
        // Interleaved inserts + churn force several rehashes.
        for (const Record& r : RandomKeyedWorkload(7, 4000, 1500)) {
          op->ProcessRecord(0, Record(r), out);
        }
      });
}

TEST(KeyedStatePropertyTest, IntervalJoinSnapshotByteStableAcrossRestore) {
  ExpectSnapshotRoundTripStable(
      [] {
        return std::make_unique<IntervalJoinOperator>("ij", Key0(), Key0(),
                                                      -10, 10);
      },
      [](IntervalJoinOperator* op, Collector* out) {
        const auto lefts = RandomKeyedWorkload(21, 1500, 400);
        const auto rights = RandomKeyedWorkload(22, 1500, 400);
        for (size_t i = 0; i < lefts.size(); ++i) {
          op->ProcessRecord(0, Record(lefts[i]), out);
          op->ProcessRecord(1, Record(rights[i]), out);
          // Periodic eviction mixes Erase into the history.
          if (i % 500 == 499) {
            op->ProcessWatermark(static_cast<Timestamp>(i) - 400, out);
          }
        }
      });
}

TEST(KeyedStatePropertyTest, WindowAggSnapshotByteStableAcrossRestore) {
  for (WindowBackend backend :
       {WindowBackend::kShared, WindowBackend::kEager}) {
    ExpectSnapshotRoundTripStable(
        [backend] {
          WindowAggSpec spec;
          spec.key = Key0();
          spec.value_field = 1;
          spec.agg_kind = DynAggKind::kSum;
          spec.windows = {std::make_shared<SlidingWindowFn>(100, 25)};
          spec.backend = backend;
          auto op = std::make_unique<WindowAggOperator>("wagg", spec);
          EXPECT_TRUE(op->Open(OperatorContext{}).ok());
          return op;
        },
        [](WindowAggOperator* op, Collector* out) {
          for (const Record& r : RandomKeyedWorkload(31, 3000, 800)) {
            op->ProcessRecord(0, Record(r), out);
          }
          // Partially advance so per-key window state is non-trivial but
          // plenty of keys/windows stay open in the snapshot.
          op->ProcessWatermark(1500, out);
        });
  }
}

TEST(KeyedStatePropertyTest, TemporalJoinSnapshotByteStableAcrossRestore) {
  ExpectSnapshotRoundTripStable(
      [] {
        TemporalJoinOperator::Spec spec;
        spec.fact_key = Key0();
        spec.table_key = Key0();
        spec.table_width = 2;
        return std::make_unique<TemporalJoinOperator>("tj", spec);
      },
      [](TemporalJoinOperator* op, Collector* out) {
        for (const Record& r : RandomKeyedWorkload(41, 3000, 900)) {
          op->ProcessRecord(1, Record(r), out);
        }
      });
}

// --- hash-once contract ----------------------------------------------------

// Counts every Value::Hash() call during a keyed end-to-end run. The hash
// shuffle computes exactly one hash per routed record; the keyed operators
// must consume the carried hash and add zero.
TEST(KeyedStatePropertyTest, OperatorsNeverRehashShuffledRecords) {
  const int n = 1000;
  const auto workload = RandomKeyedWorkload(51, n, 128);

  Environment env(2);
  auto sink = env.FromRecords(workload)
                  .KeyBy(0)
                  .Window(std::make_shared<TumblingWindowFn>(50))
                  .Aggregate(DynAggKind::kSum, 1)
                  .Collect();

  std::atomic<uint64_t> calls{0};
  internal::value_hash_calls = &calls;
  const Status st = env.Execute();
  internal::value_hash_calls = nullptr;
  ASSERT_TRUE(st.ok());
  ASSERT_FALSE(sink->records().empty());
  // One hash per record crossing the single hash edge, none elsewhere.
  EXPECT_EQ(calls.load(), static_cast<uint64_t>(n));
}

// Same contract for the running reduce (state lookup per record, so a
// re-hashing backend would double the count).
TEST(KeyedStatePropertyTest, ReduceNeverRehashesShuffledRecords) {
  const int n = 1000;
  const auto workload = RandomKeyedWorkload(52, n, 64);

  Environment env(2);
  auto sink = env.FromRecords(workload)
                  .KeyBy(0)
                  .Reduce([](const Record& a, const Record& b) {
                    return MakeRecord(0, a.field(0),
                                      Value(a.field(1).AsDouble() +
                                            b.field(1).AsDouble()));
                  })
                  .Collect();

  std::atomic<uint64_t> calls{0};
  internal::value_hash_calls = &calls;
  const Status st = env.Execute();
  internal::value_hash_calls = nullptr;
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(sink->records().size(), static_cast<size_t>(n));
  EXPECT_EQ(calls.load(), static_cast<uint64_t>(n));
}

// A generic (lambda) key with a caller-supplied hash-only selector: the
// shuffle must route through it without materializing key Values, and the
// keyed operator must still consume the carried hash.
TEST(KeyedStatePropertyTest, GenericKeyHashOnlySelectorRoutes) {
  const int n = 500;
  const auto workload = RandomKeyedWorkload(53, n, 32);

  std::unordered_map<int64_t, double> ref;
  for (const Record& r : workload) {
    ref[r.field(0).AsInt64() % 8] += r.field(1).AsDouble();
  }

  Environment env(2);
  KeySelector key = [](const Record& r) {
    return Value(r.field(0).AsInt64() % 8);
  };
  KeyHashFn key_hash = [](const Record& r) {
    return KeyHashOf(Value(r.field(0).AsInt64() % 8));
  };
  auto sink = env.FromRecords(workload)
                  .KeyBy(key, key_hash)
                  .Reduce([](const Record& a, const Record& b) {
                    return MakeRecord(0, a.field(0),
                                      Value(a.field(1).AsDouble() +
                                            b.field(1).AsDouble()));
                  })
                  .Collect();

  std::atomic<uint64_t> calls{0};
  internal::value_hash_calls = &calls;
  const Status st = env.Execute();
  internal::value_hash_calls = nullptr;
  ASSERT_TRUE(st.ok());

  // The accumulator's field 0 is the first raw key of its group; map it
  // back to the group id the reference model uses.
  std::unordered_map<int64_t, double> got;
  for (const Record& r : sink->records()) {
    got[r.field(0).AsInt64() % 8] = r.field(1).AsDouble();
  }
  ASSERT_EQ(got.size(), ref.size());
  for (const auto& [k, v] : ref) EXPECT_DOUBLE_EQ(got[k], v) << k;
  // Router: one hash per record through key_hash; operator: zero.
  EXPECT_EQ(calls.load(), static_cast<uint64_t>(n));
}

}  // namespace
}  // namespace streamline
