#include "viz/reducers.h"

#include <gtest/gtest.h>

#include "viz/raster.h"
#include "workload/timeseries.h"

namespace streamline {
namespace {

std::vector<SeriesPoint> Feed(SeriesReducer* reducer,
                              const std::vector<SeriesPoint>& data) {
  for (const auto& p : data) reducer->OnElement(p.t, p.v);
  reducer->OnWatermark(kMaxTimestamp);
  return reducer->output();
}

TEST(ReducersTest, RawTransfersEverything) {
  RawReducer raw;
  RandomWalkSeries walk(RateShape{100.0}, 0, 1, 5);
  const auto data = walk.Take(500);
  Feed(&raw, data);
  EXPECT_EQ(raw.points_transferred(), 500u);
  EXPECT_EQ(raw.bytes_transferred(), 500u * 16);
}

TEST(ReducersTest, EveryNth) {
  EveryNthReducer nth(10);
  RandomWalkSeries walk(RateShape{100.0}, 0, 1, 5);
  Feed(&nth, walk.Take(500));
  EXPECT_EQ(nth.points_transferred(), 50u);
}

TEST(ReducersTest, UniformSamplingApproximatesProbability) {
  UniformSamplingReducer sampler(0.1);
  RandomWalkSeries walk(RateShape{100.0}, 0, 1, 5);
  Feed(&sampler, walk.Take(20000));
  EXPECT_NEAR(static_cast<double>(sampler.points_transferred()), 2000, 200);
}

TEST(ReducersTest, PaaOnePointPerColumn) {
  PaaReducer paa(1000);
  // 10 seconds of data at 100 ev/s.
  RandomWalkSeries walk(RateShape{100.0}, 0, 1, 5);
  Feed(&paa, walk.Take(1000));
  EXPECT_NEAR(static_cast<double>(paa.points_transferred()), 10, 1);
}

TEST(ReducersTest, PaaEmitsColumnMean) {
  PaaReducer paa(10);
  paa.OnElement(0, 2.0);
  paa.OnElement(5, 4.0);
  paa.OnWatermark(10);
  ASSERT_EQ(paa.output().size(), 1u);
  EXPECT_DOUBLE_EQ(paa.output()[0].v, 3.0);
  EXPECT_EQ(paa.output()[0].t, 5);  // column midpoint
}

TEST(ReducersTest, M4AtMostFourPerColumn) {
  M4Reducer m4(1000);
  RandomWalkSeries walk(RateShape{1000.0, 0.5}, 0, 1, 5);
  const auto data = walk.Take(60000);  // ~60 s
  Feed(&m4, data);
  const double seconds =
      static_cast<double>(data.back().t) / 1000.0;
  EXPECT_LE(m4.points_transferred(),
            static_cast<uint64_t>(4 * (seconds + 2)));
  EXPECT_GE(m4.points_transferred(), static_cast<uint64_t>(seconds - 2));
}

TEST(ReducersTest, MinMaxAtMostTwoPerColumn) {
  MinMaxReducer mm(1000);
  RandomWalkSeries walk(RateShape{1000.0}, 0, 1, 5);
  const auto data = walk.Take(30000);
  Feed(&mm, data);
  const double seconds = static_cast<double>(data.back().t) / 1000.0;
  EXPECT_LE(mm.points_transferred(),
            static_cast<uint64_t>(2 * (seconds + 2)));
}

TEST(ReducersTest, M4TransferIsDataRateIndependentRawIsNot) {
  // The paper's I2 claim, head to head.
  auto transferred = [](auto make_reducer, double rate) {
    auto reducer = make_reducer();
    RandomWalkSeries walk(RateShape{rate}, 0, 1, 9);
    const auto n = static_cast<size_t>(rate * 30);  // 30 s of event time
    for (const auto& p : walk.Take(n)) reducer->OnElement(p.t, p.v);
    reducer->OnWatermark(kMaxTimestamp);
    return reducer->points_transferred();
  };
  auto make_m4 = [] { return std::make_unique<M4Reducer>(1000); };
  auto make_raw = [] { return std::make_unique<RawReducer>(); };

  const auto m4_slow = transferred(make_m4, 100);
  const auto m4_fast = transferred(make_m4, 10000);
  const auto raw_slow = transferred(make_raw, 100);
  const auto raw_fast = transferred(make_raw, 10000);

  EXPECT_NEAR(static_cast<double>(m4_fast),
              static_cast<double>(m4_slow),
              static_cast<double>(m4_slow) * 0.1 + 8);
  EXPECT_EQ(raw_fast, raw_slow * 100);
}

TEST(ReducersTest, M4BeatsSamplersAtEqualBudget) {
  // At (roughly) the same point budget, M4's rendering error is far below
  // systematic or random sampling: extremes are never lost.
  SeasonalSensorSeries sensor(
      RateShape{2000.0, 0.3},
      SeasonalSensorSeries::Options{.spike_probability = 0.002}, 31);
  const auto raw = sensor.Take(60000);
  constexpr int kW = 300;
  constexpr int kH = 120;
  // Align the raster grid with the M4 columns (1 column == 1 pixel), the
  // setting in which M4's pixel-correctness theorem applies.
  const Duration col = (raw.back().t + kW) / kW;
  const Timestamp t_end = col * kW;

  M4Reducer m4(col);
  Feed(&m4, raw);
  // Give the sampler the same number of points.
  const uint64_t budget = m4.points_transferred();
  EveryNthReducer nth(raw.size() / std::max<uint64_t>(budget, 1));
  Feed(&nth, raw);

  const auto [lo, hi] = ValueRange(raw);
  const Raster raw_r = RasterizeSeries(raw, 0, t_end, lo, hi, kW, kH);
  const Raster m4_r =
      RasterizeSeries(m4.output(), 0, t_end, lo, hi, kW, kH);
  const Raster nth_r =
      RasterizeSeries(nth.output(), 0, t_end, lo, hi, kW, kH);
  const double m4_err = Raster::PixelError(raw_r, m4_r);
  const double nth_err = Raster::PixelError(raw_r, nth_r);
  EXPECT_LT(m4_err, 0.02);
  EXPECT_GT(nth_err, m4_err * 2);
}

}  // namespace
}  // namespace streamline
