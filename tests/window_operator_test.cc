#include "dataflow/window_operator.h"

#include <gtest/gtest.h>

#include <map>

#include "api/datastream.h"

namespace streamline {
namespace {

// Output record layout: [key, window_start, window_end, query, result].
struct WindowResult {
  Value key;
  Window window;
  int64_t query;
  Value result;
};

std::vector<WindowResult> Parse(const std::vector<Record>& records) {
  std::vector<WindowResult> out;
  for (const Record& r : records) {
    out.push_back(WindowResult{
        r.field(0),
        Window{r.field(1).AsInt64(), r.field(2).AsInt64()},
        r.field(3).AsInt64(), r.field(4)});
  }
  return out;
}

std::vector<Record> KeyedSeries(int keys, int per_key) {
  // Interleaved keys; ts = i, value = i; key = i % keys.
  std::vector<Record> out;
  for (int i = 0; i < keys * per_key; ++i) {
    out.push_back(MakeRecord(i, Value(static_cast<int64_t>(i % keys)),
                             Value(static_cast<double>(1.0))));
  }
  return out;
}

TEST(WindowOperatorTest, KeyedTumblingCount) {
  Environment env(2);
  auto sink = env.FromRecords(KeyedSeries(2, 50))
                  .KeyBy(0)
                  .Window(std::make_shared<TumblingWindowFn>(20))
                  .Aggregate(DynAggKind::kCount, 1)
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  // 100 records over ts 0..99: 5 tumbling windows of 20; each key has 10
  // elements per window.
  const auto results = Parse(sink->records());
  ASSERT_EQ(results.size(), 10u);  // 5 windows x 2 keys
  for (const auto& r : results) {
    EXPECT_EQ(r.result.AsInt64(), 10);
    EXPECT_EQ(r.window.length(), 20);
  }
}

TEST(WindowOperatorTest, SlidingSumMatchesExpectation) {
  Environment env;
  std::vector<Record> records;
  for (int i = 0; i < 40; ++i) {
    records.push_back(MakeRecord(i, Value(int64_t{7}), Value(1.0)));
  }
  auto sink = env.FromRecords(std::move(records))
                  .KeyBy(0)
                  .Window(std::make_shared<SlidingWindowFn>(20, 10))
                  .Aggregate(DynAggKind::kSum, 1)
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  std::map<Window, double> sums;
  for (const auto& r : Parse(sink->records())) {
    sums[r.window] = r.result.AsDouble();
  }
  EXPECT_DOUBLE_EQ((sums[Window{-10, 10}]), 10.0);
  EXPECT_DOUBLE_EQ((sums[Window{0, 20}]), 20.0);
  EXPECT_DOUBLE_EQ((sums[Window{10, 30}]), 20.0);
  EXPECT_DOUBLE_EQ((sums[Window{20, 40}]), 20.0);
  EXPECT_DOUBLE_EQ((sums[Window{30, 50}]), 10.0);
}

TEST(WindowOperatorTest, SessionWindowsPerKey) {
  Environment env(2);
  std::vector<Record> records;
  // Key "a": bursts {0..4} and {100..104}; key "b": one burst {50..54}.
  for (int i = 0; i < 5; ++i) {
    records.push_back(MakeRecord(i, Value("a"), Value(1.0)));
  }
  for (int i = 0; i < 5; ++i) {
    records.push_back(MakeRecord(50 + i, Value("b"), Value(1.0)));
  }
  for (int i = 0; i < 5; ++i) {
    records.push_back(MakeRecord(100 + i, Value("a"), Value(1.0)));
  }
  std::sort(records.begin(), records.end(),
            [](const Record& x, const Record& y) {
              return x.timestamp < y.timestamp;
            });
  auto sink = env.FromRecords(std::move(records))
                  .KeyBy(0)
                  .Window(std::make_shared<SessionWindowFn>(10))
                  .Aggregate(DynAggKind::kCount, 1)
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  const auto results = Parse(sink->records());
  ASSERT_EQ(results.size(), 3u);
  std::map<std::string, int> sessions_per_key;
  for (const auto& r : results) {
    sessions_per_key[r.key.AsString()]++;
    EXPECT_EQ(r.result.AsInt64(), 5);
  }
  EXPECT_EQ(sessions_per_key["a"], 2);
  EXPECT_EQ(sessions_per_key["b"], 1);
}

TEST(WindowOperatorTest, MultiQuerySharingInOneOperator) {
  Environment env;
  auto sink =
      env.FromRecords(KeyedSeries(1, 100))
          .KeyBy(0)
          .Window({std::make_shared<TumblingWindowFn>(25),
                   std::make_shared<SlidingWindowFn>(50, 25)})
          .Aggregate(DynAggKind::kCount, 1)
          .Collect();
  ASSERT_TRUE(env.Execute().ok());
  std::map<int64_t, int> per_query;
  for (const auto& r : Parse(sink->records())) {
    per_query[r.query]++;
    if (r.query == 0) {
      EXPECT_EQ(r.result.AsInt64(), 25);
    }
  }
  EXPECT_EQ(per_query[0], 4);  // tumbling 25 over 0..99
  EXPECT_GE(per_query[1], 4);  // sliding 50/25
}

TEST(WindowOperatorTest, SharedAndEagerBackendsAgree) {
  auto run = [](WindowBackend backend) {
    Environment env(2);
    auto sink = env.FromRecords(KeyedSeries(3, 60))
                    .KeyBy(0)
                    .Window(std::make_shared<SlidingWindowFn>(30, 10))
                    .Aggregate(DynAggKind::kSum, 1, backend)
                    .Collect();
    STREAMLINE_CHECK_OK(env.Execute());
    std::map<std::tuple<int64_t, Timestamp, Timestamp>, double> out;
    for (const auto& r : Parse(sink->records())) {
      out[{r.key.AsInt64(), r.window.start, r.window.end}] =
          r.result.AsDouble();
    }
    return out;
  };
  const auto shared = run(WindowBackend::kShared);
  const auto eager = run(WindowBackend::kEager);
  ASSERT_FALSE(shared.empty());
  EXPECT_EQ(shared, eager);
}

TEST(WindowOperatorTest, OutOfOrderAcrossParallelSources) {
  // Two parallel source subtasks emit interleaved halves of a keyed stream;
  // the window operator's reorder buffer must still produce exact windows.
  Environment env;
  auto source = env.FromSource(
      "split-source",
      [](int subtask, int parallelism) -> std::unique_ptr<SourceFunction> {
        std::vector<Record> mine;
        for (int i = subtask; i < 200; i += parallelism) {
          mine.push_back(MakeRecord(i, Value(int64_t{0}), Value(1.0)));
        }
        return std::make_unique<VectorSource>(std::move(mine),
                                              /*watermark_every=*/8);
      },
      /*parallelism=*/2);
  auto sink = source.KeyBy(0)
                  .Window(std::make_shared<TumblingWindowFn>(50))
                  .Aggregate(DynAggKind::kCount, 1)
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  const auto results = Parse(sink->records());
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.result.AsInt64(), 50) << r.window.ToString();
  }
}

TEST(WindowOperatorTest, GlobalWindowAll) {
  Environment env;
  auto sink = env.FromRecords(KeyedSeries(4, 25))
                  .WindowAll({std::make_shared<TumblingWindowFn>(50)})
                  .Aggregate(DynAggKind::kCount, 1)
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  const auto results = Parse(sink->records());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].result.AsInt64(), 50);
  EXPECT_EQ(results[1].result.AsInt64(), 50);
}

TEST(WindowOperatorTest, MinMaxAvgKinds) {
  Environment env;
  std::vector<Record> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(
        MakeRecord(i, Value(int64_t{0}), Value(static_cast<double>(i))));
  }
  auto src = env.FromRecords(std::move(records));
  auto min_sink = src.KeyBy(0)
                      .Window(std::make_shared<TumblingWindowFn>(10))
                      .Aggregate(DynAggKind::kMin, 1)
                      .Collect();
  auto max_sink = src.KeyBy(0)
                      .Window(std::make_shared<TumblingWindowFn>(10))
                      .Aggregate(DynAggKind::kMax, 1)
                      .Collect();
  auto avg_sink = src.KeyBy(0)
                      .Window(std::make_shared<TumblingWindowFn>(10))
                      .Aggregate(DynAggKind::kAvg, 1)
                      .Collect();
  ASSERT_TRUE(env.Execute().ok());
  ASSERT_EQ(min_sink->size(), 1u);
  EXPECT_DOUBLE_EQ(Parse(min_sink->records())[0].result.AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Parse(max_sink->records())[0].result.AsDouble(), 9.0);
  EXPECT_DOUBLE_EQ(Parse(avg_sink->records())[0].result.AsDouble(), 4.5);
}

TEST(WindowOperatorTest, LateRecordsAreDropped) {
  // Drive the operator directly: a record older than the current watermark
  // must be discarded, not corrupt past windows.
  WindowAggSpec spec;
  spec.key = KeyField(0);
  spec.value_field = 1;
  spec.agg_kind = DynAggKind::kCount;
  spec.windows = {std::make_shared<TumblingWindowFn>(10)};
  WindowAggOperator op("w", spec);
  ASSERT_TRUE(op.Open(OperatorContext{}).ok());

  class VecCollector : public Collector {
   public:
    void Emit(Record&& r) override { records.push_back(std::move(r)); }
    std::vector<Record> records;
  } out;

  op.ProcessRecord(0, MakeRecord(5, Value(int64_t{0}), Value(1.0)), &out);
  op.ProcessWatermark(20, &out);  // fires [0, 10) with count 1
  op.ProcessRecord(0, MakeRecord(3, Value(int64_t{0}), Value(1.0)),
                   &out);  // late: ts 3 < wm 20
  op.ProcessRecord(0, MakeRecord(25, Value(int64_t{0}), Value(1.0)), &out);
  op.ProcessWatermark(kMaxTimestamp, &out);
  const auto results = Parse(out.records);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].window, (Window{0, 10}));
  EXPECT_EQ(results[0].result.AsInt64(), 1);  // late record not counted
  EXPECT_EQ(results[1].window, (Window{20, 30}));
  EXPECT_EQ(results[1].result.AsInt64(), 1);
}

TEST(WindowOperatorTest, SharedStatsReportConstantWorkPerRecord) {
  WindowAggSpec spec;
  spec.key = KeyField(0);
  spec.value_field = 1;
  spec.agg_kind = DynAggKind::kSum;
  spec.windows = {std::make_shared<SlidingWindowFn>(100, 10),
                  std::make_shared<SlidingWindowFn>(200, 20)};
  WindowAggOperator op("w", spec);
  ASSERT_TRUE(op.Open(OperatorContext{}).ok());
  class NullCollector : public Collector {
   public:
    void Emit(Record&&) override {}
  } out;
  for (int i = 0; i < 5000; ++i) {
    op.ProcessRecord(0, MakeRecord(i, Value(int64_t{0}), Value(1.0)), &out);
    if (i % 50 == 0) op.ProcessWatermark(i, &out);
  }
  op.ProcessWatermark(kMaxTimestamp, &out);
  const AggStats stats = op.SharedStats();
  EXPECT_EQ(stats.partial_updates, stats.elements);  // Cutty's property
}

}  // namespace
}  // namespace streamline
