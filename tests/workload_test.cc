#include <gtest/gtest.h>

#include <map>

#include "workload/adstream.h"
#include "workload/clickstream.h"
#include "workload/text.h"
#include "workload/timeseries.h"

namespace streamline {
namespace {

TEST(TimeseriesTest, RandomWalkRespectsRate) {
  RandomWalkSeries walk(RateShape{1000.0}, 0, 1, 1);
  const auto data = walk.Take(10000);
  // 10000 points at 1000/s span ~10 s of event time.
  EXPECT_NEAR(static_cast<double>(data.back().t), 10000.0, 100.0);
  for (size_t i = 1; i < data.size(); ++i) {
    EXPECT_GE(data[i].t, data[i - 1].t);
  }
}

TEST(TimeseriesTest, BurstinessPreservesMeanRate) {
  RandomWalkSeries bursty(RateShape{1000.0, 1.0}, 0, 1, 2);
  const auto data = bursty.Take(20000);
  EXPECT_NEAR(static_cast<double>(data.back().t), 20000.0, 1500.0);
}

TEST(TimeseriesTest, DeterministicBySeed) {
  RandomWalkSeries a(RateShape{100.0, 0.5}, 0, 1, 42);
  RandomWalkSeries b(RateShape{100.0, 0.5}, 0, 1, 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(TimeseriesTest, SensorSeriesOscillatesAroundBase) {
  SeasonalSensorSeries::Options opt;
  opt.base = 20;
  opt.amplitude = 5;
  opt.spike_probability = 0;
  SeasonalSensorSeries sensor(RateShape{100.0}, opt, 3);
  double sum = 0;
  double lo = 1e300;
  double hi = -1e300;
  const auto data = sensor.Take(20000);
  for (const auto& p : data) {
    sum += p.v;
    lo = std::min(lo, p.v);
    hi = std::max(hi, p.v);
  }
  EXPECT_NEAR(sum / static_cast<double>(data.size()), 20.0, 0.5);
  EXPECT_LT(lo, 16.0);
  EXPECT_GT(hi, 24.0);
}

TEST(ClickstreamTest, GlobalOrderAndSessionStructure) {
  ClickstreamGenerator::Options opt;
  opt.num_users = 50;
  opt.session_gap_ms = 30000;
  opt.max_event_gap_ms = 5000;
  ClickstreamGenerator gen(opt, 7);
  const auto events = gen.Take(5000);

  Timestamp prev = 0;
  std::map<uint64_t, Timestamp> last_by_user;
  std::map<uint64_t, int> sessions_by_user;
  for (const auto& ev : events) {
    EXPECT_GE(ev.ts, prev);  // globally ordered
    prev = ev.ts;
    auto it = last_by_user.find(ev.user);
    if (it == last_by_user.end() || ev.ts - it->second > opt.session_gap_ms) {
      ++sessions_by_user[ev.user];
    } else {
      // Within a session, gaps stay below the configured bound (and hence
      // below the session gap) so sessionization recovers sessions exactly.
      EXPECT_LE(ev.ts - it->second, opt.max_event_gap_ms);
    }
    last_by_user[ev.user] = ev.ts;
  }
  // Zipf skew: the heaviest user has the most sessions.
  EXPECT_GE(sessions_by_user[0], sessions_by_user[10]);
}

TEST(ClickstreamTest, EventKindsDistributed) {
  ClickstreamGenerator gen(ClickstreamGenerator::Options{}, 11);
  std::map<ClickEvent::Kind, int> kinds;
  for (const auto& ev : gen.Take(20000)) kinds[ev.kind]++;
  EXPECT_GT(kinds[ClickEvent::Kind::kView], kinds[ClickEvent::Kind::kClick]);
  EXPECT_GT(kinds[ClickEvent::Kind::kClick],
            kinds[ClickEvent::Kind::kPurchase]);
  EXPECT_GT(kinds[ClickEvent::Kind::kPurchase], 0);
}

TEST(ClickstreamTest, ToRecordLayout) {
  ClickEvent ev;
  ev.ts = 42;
  ev.user = 7;
  ev.kind = ClickEvent::Kind::kPurchase;
  ev.item = 3;
  ev.value = 19.5;
  const Record r = ev.ToRecord();
  EXPECT_EQ(r.timestamp, 42);
  EXPECT_EQ(r.field(0).AsInt64(), 7);
  EXPECT_EQ(r.field(1).AsInt64(), 2);
  EXPECT_EQ(r.field(2).AsInt64(), 3);
  EXPECT_DOUBLE_EQ(r.field(3).AsDouble(), 19.5);
}

TEST(AdStreamTest, CtrMatchesGroundTruth) {
  AdStreamGenerator::Options opt;
  opt.num_campaigns = 10;
  opt.campaign_skew = 0.0;  // uniform so every campaign gets samples
  AdStreamGenerator gen(opt, 13);
  std::map<uint64_t, std::pair<int, int>> stats;  // campaign -> (clicks, n)
  for (const auto& ev : gen.Take(200000)) {
    auto& [clicks, n] = stats[ev.campaign];
    clicks += ev.is_click ? 1 : 0;
    ++n;
  }
  for (const auto& [campaign, cn] : stats) {
    const double ctr = static_cast<double>(cn.first) / cn.second;
    EXPECT_NEAR(ctr, gen.CampaignCtr(campaign), 0.01) << campaign;
  }
}

TEST(AdStreamTest, TimestampsAdvanceWithRate) {
  AdStreamGenerator::Options opt;
  opt.events_per_second = 1000;
  AdStreamGenerator gen(opt, 17);
  const auto events = gen.Take(5000);
  EXPECT_NEAR(static_cast<double>(events.back().ts), 5000, 10);
}

TEST(TextTest, WordsComeFromVocabulary) {
  TextGenerator::Options opt;
  opt.vocabulary = 20;
  TextGenerator gen(opt, 19);
  std::map<std::string, int> counts;
  for (int i = 0; i < 1000; ++i) {
    auto [ts, line] = gen.NextLine();
    for (const auto& w : SplitWords(line)) {
      EXPECT_EQ(w.substr(0, 4), "word");
      counts[w]++;
    }
  }
  // Zipf: word0 most frequent.
  EXPECT_GT(counts["word0"], counts["word5"]);
  EXPECT_GT(counts["word5"], 0);
}

TEST(TextTest, LineLengthWithinBounds) {
  TextGenerator::Options opt;
  opt.min_words = 2;
  opt.max_words = 4;
  TextGenerator gen(opt, 23);
  for (int i = 0; i < 200; ++i) {
    auto [ts, line] = gen.NextLine();
    const auto words = SplitWords(line);
    EXPECT_GE(words.size(), 2u);
    EXPECT_LE(words.size(), 4u);
  }
}

TEST(TextTest, SplitWordsHandlesEdges) {
  EXPECT_TRUE(SplitWords("").empty());
  EXPECT_EQ(SplitWords("a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(SplitWords("  a   b "), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace streamline
