#include <gtest/gtest.h>

#include <algorithm>

#include "agg/naive_aggregator.h"
#include "agg/slicing_aggregator.h"
#include "common/random.h"
#include "window/sketches.h"

namespace streamline {
namespace {

TEST(QuantileAggTest, MedianOfUniform) {
  QuantileAgg<256> agg(0.5, 0.0, 100.0);
  auto p = agg.Identity();
  Rng rng(1);
  for (int i = 0; i < 50000; ++i) {
    p = agg.Combine(p, agg.Lift(rng.NextDouble(0, 100)));
  }
  EXPECT_NEAR(agg.Lower(p), 50.0, 1.5);
}

TEST(QuantileAggTest, TailQuantile) {
  QuantileAgg<256> agg(0.99, 0.0, 1000.0);
  auto p = agg.Identity();
  for (int i = 0; i < 10000; ++i) {
    p = agg.Combine(p, agg.Lift(static_cast<double>(i % 1000)));
  }
  EXPECT_NEAR(agg.Lower(p), 990.0, 1000.0 / 256 + 1);
}

TEST(QuantileAggTest, OutOfRangeValuesCounted) {
  QuantileAgg<16> agg(0.5, 0.0, 10.0);
  // 100 below range, 1 inside, 100 above: the median IS the inside value
  // (rank 100 of 201), reported at its bucket's lower edge.
  auto p = agg.Identity();
  for (int i = 0; i < 100; ++i) p = agg.Combine(p, agg.Lift(-5.0));
  p = agg.Combine(p, agg.Lift(5.0));
  for (int i = 0; i < 100; ++i) p = agg.Combine(p, agg.Lift(50.0));
  EXPECT_DOUBLE_EQ(agg.Lower(p), 5.0);
  // Median of below-heavy data clamps to lo.
  auto q = agg.Identity();
  for (int i = 0; i < 100; ++i) q = agg.Combine(q, agg.Lift(-5.0));
  q = agg.Combine(q, agg.Lift(5.0));
  EXPECT_DOUBLE_EQ(agg.Lower(q), 0.0);
  // Median of above-heavy data clamps to hi.
  auto r = agg.Identity();
  r = agg.Combine(r, agg.Lift(5.0));
  for (int i = 0; i < 100; ++i) r = agg.Combine(r, agg.Lift(50.0));
  EXPECT_DOUBLE_EQ(agg.Lower(r), 10.0);
}

TEST(QuantileAggTest, CombineOrderIrrelevant) {
  QuantileAgg<64> agg(0.9, 0.0, 1.0);
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.NextDouble());
  auto forward = agg.Identity();
  for (double x : xs) forward = agg.Combine(forward, agg.Lift(x));
  auto backward = agg.Identity();
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
    backward = agg.Combine(agg.Lift(*it), backward);
  }
  EXPECT_EQ(forward, backward);
}

TEST(QuantileAggTest, EmptyWindowReturnsLo) {
  QuantileAgg<32> agg(0.5, 10.0, 20.0);
  EXPECT_DOUBLE_EQ(agg.Lower(agg.Identity()), 10.0);
}

TEST(QuantileAggTest, WindowedP95SharedVsNaiveVsExact) {
  // Sliding-window p95 latency: slicing == recompute, and both within one
  // bucket of the exact order statistic.
  constexpr double kLo = 0.0;
  constexpr double kHi = 500.0;
  QuantileAgg<500> agg(0.95, kLo, kHi);  // 1ms buckets

  auto run = [&](auto&& aggregator) {
    std::vector<std::pair<Window, double>> out;
    aggregator.AddQuery(std::make_unique<SlidingWindowFn>(1000, 200),
                        [&out](size_t, const Window& w, const double& v) {
                          out.emplace_back(w, v);
                        });
    Rng rng(3);
    std::vector<std::pair<Timestamp, double>> stream;
    for (Timestamp t = 0; t < 5000; ++t) {
      // Latency-shaped: mostly small, occasional spikes.
      double v = 5.0 + rng.NextDouble() * 20.0;
      if (rng.NextBool(0.02)) v += rng.NextDouble() * 400.0;
      stream.emplace_back(t, v);
      aggregator.OnElement(t, v);
    }
    aggregator.OnWatermark(kMaxTimestamp);
    return std::make_pair(out, stream);
  };

  using Agg = QuantileAgg<500>;
  auto [shared, stream] =
      run(SlicingAggregator<Agg, FlatFatStore<Agg>>(agg));
  auto [naive, stream2] = run(NaiveBufferAggregator<Agg>(agg));
  ASSERT_EQ(shared.size(), naive.size());
  ASSERT_FALSE(shared.empty());
  for (size_t i = 0; i < shared.size(); ++i) {
    EXPECT_EQ(shared[i].first, naive[i].first);
    EXPECT_DOUBLE_EQ(shared[i].second, naive[i].second);
    // Exact p95 of the window contents.
    std::vector<double> in_window;
    for (const auto& [t, v] : stream) {
      if (shared[i].first.Contains(t)) in_window.push_back(v);
    }
    ASSERT_FALSE(in_window.empty());
    std::sort(in_window.begin(), in_window.end());
    const double exact =
        in_window[static_cast<size_t>(0.95 * in_window.size())];
    EXPECT_NEAR(shared[i].second, exact, (kHi - kLo) / 500 + 1e-9)
        << shared[i].first.ToString();
  }
}

}  // namespace
}  // namespace streamline
