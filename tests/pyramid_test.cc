#include "viz/pyramid.h"

#include <gtest/gtest.h>

#include "workload/timeseries.h"

namespace streamline {
namespace {

TEST(PyramidTest, LevelWidthsDouble) {
  M4Pyramid pyr(100, 4);
  EXPECT_EQ(pyr.level_width(0), 100);
  EXPECT_EQ(pyr.level_width(1), 200);
  EXPECT_EQ(pyr.level_width(2), 400);
  EXPECT_EQ(pyr.level_width(3), 800);
}

TEST(PyramidTest, QueryPreservesSampleCounts) {
  M4Pyramid pyr(10, 5);
  for (Timestamp t = 0; t < 10000; ++t) {
    pyr.OnElement(t, static_cast<double>(t % 37));
  }
  pyr.Flush();
  // Any viewport must account for exactly the samples inside it.
  const auto cols = pyr.Query(0, 10000, 100);
  uint64_t total = 0;
  for (const auto& c : cols) total += c.count;
  EXPECT_EQ(total, 10000u);
}

TEST(PyramidTest, CoarseQueryMatchesBatchM4Extremes) {
  RandomWalkSeries walk(RateShape{100.0, 0.4}, 0.0, 2.0, 23);
  const auto data = walk.Take(20000);
  const Timestamp t_end = data.back().t + 1;

  M4Pyramid pyr(50, 8);
  for (const auto& p : data) pyr.OnElement(p.t, p.v);
  pyr.Flush();

  constexpr int kWidth = 40;
  const auto pyramid_cols = pyr.Query(0, t_end, kWidth);
  const auto batch_cols = M4Aggregate(data, 0, t_end, kWidth);
  ASSERT_EQ(pyramid_cols.size(), batch_cols.size());
  // The pyramid answers from coarser pre-aggregates whose grid does not
  // align perfectly with the queried pixels, so compare the global
  // extremes (which any correct M4 representation must preserve).
  double pyr_min = 1e300;
  double pyr_max = -1e300;
  double batch_min = 1e300;
  double batch_max = -1e300;
  uint64_t pyr_count = 0;
  uint64_t batch_count = 0;
  for (int i = 0; i < kWidth; ++i) {
    if (pyramid_cols[i].count > 0) {
      pyr_min = std::min(pyr_min, pyramid_cols[i].min.v);
      pyr_max = std::max(pyr_max, pyramid_cols[i].max.v);
      pyr_count += pyramid_cols[i].count;
    }
    if (batch_cols[i].count > 0) {
      batch_min = std::min(batch_min, batch_cols[i].min.v);
      batch_max = std::max(batch_max, batch_cols[i].max.v);
      batch_count += batch_cols[i].count;
    }
  }
  EXPECT_EQ(pyr_count, batch_count);
  EXPECT_DOUBLE_EQ(pyr_min, batch_min);
  EXPECT_DOUBLE_EQ(pyr_max, batch_max);
}

TEST(PyramidTest, FineQueryUsesLevelZeroExactly) {
  M4Pyramid pyr(10, 4);
  std::vector<SeriesPoint> data;
  for (Timestamp t = 0; t < 1000; ++t) {
    data.push_back({t, static_cast<double>((t * 7) % 101)});
    pyr.OnElement(t, data.back().v);
  }
  pyr.Flush();
  // Query granularity == level-0 granularity: exact M4 columns.
  const auto cols = pyr.Query(0, 1000, 100);
  const auto batch = M4Aggregate(data, 0, 1000, 100);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cols[i].count, batch[i].count) << i;
    EXPECT_EQ(cols[i].min.v, batch[i].min.v) << i;
    EXPECT_EQ(cols[i].max.v, batch[i].max.v) << i;
    EXPECT_EQ(cols[i].first, batch[i].first) << i;
    EXPECT_EQ(cols[i].last, batch[i].last) << i;
  }
}

TEST(PyramidTest, ZoomedQueryTouchesSubrangeOnly) {
  M4Pyramid pyr(10, 4);
  for (Timestamp t = 0; t < 4000; ++t) pyr.OnElement(t, 1.0);
  pyr.Flush();
  const auto cols = pyr.Query(1000, 2000, 50);
  uint64_t total = 0;
  for (const auto& c : cols) total += c.count;
  EXPECT_EQ(total, 1000u);
}

TEST(PyramidTest, RetentionBoundCapsMemory) {
  M4Pyramid pyr(10, 3, /*max_columns_per_level=*/16);
  for (Timestamp t = 0; t < 100000; ++t) pyr.OnElement(t, 1.0);
  EXPECT_LE(pyr.stored_columns_at(0), 17u);
  EXPECT_LE(pyr.stored_columns_at(1), 17u);
  EXPECT_LE(pyr.stored_columns(), 3 * 17u);
}

TEST(PyramidTest, StoredColumnsGrowLogarithmically) {
  // Unbounded retention: level k has ~n/2^k columns.
  M4Pyramid pyr(10, 6);
  for (Timestamp t = 0; t < 12800; ++t) pyr.OnElement(t, 1.0);
  pyr.Flush();
  EXPECT_NEAR(static_cast<double>(pyr.stored_columns_at(0)), 1280, 2);
  EXPECT_NEAR(static_cast<double>(pyr.stored_columns_at(1)), 640, 2);
  EXPECT_NEAR(static_cast<double>(pyr.stored_columns_at(5)), 40, 2);
}

}  // namespace
}  // namespace streamline
