// API-surface tests of the uniform programming model beyond what the
// executor tests cover: topology construction, naming, plan shapes, global
// windows, broadcast behavior and multi-sink graphs.

#include <gtest/gtest.h>

#include <set>

#include "api/datastream.h"

namespace streamline {
namespace {

std::vector<Record> Numbers(int n) {
  std::vector<Record> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(MakeRecord(i, Value(static_cast<int64_t>(i))));
  }
  return out;
}

TEST(ApiTest, AutoNamesAreUnique) {
  Environment env;
  auto s = env.FromRecords(Numbers(1));
  s.Map([](Record&& r) { return std::move(r); });
  s.Map([](Record&& r) { return std::move(r); });
  std::set<std::string> names;
  for (const auto& node : env.graph()->nodes()) {
    EXPECT_TRUE(names.insert(node.name).second)
        << "duplicate node name " << node.name;
  }
}

TEST(ApiTest, KeyFieldSelectorExtractsField) {
  KeySelector key = KeyField(1);
  const Record r = MakeRecord(0, Value("a"), Value(int64_t{7}));
  EXPECT_EQ(key(r).AsInt64(), 7);
}

TEST(ApiTest, PlanDescriptionShowsChains) {
  Environment env;
  env.FromRecords(Numbers(1), "src")
      .Map([](Record&& r) { return std::move(r); }, "m1")
      .Filter([](const Record&) { return true; }, "f1")
      .Collect("out");
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  const std::string plan = (*job)->PlanDescription();
  EXPECT_NE(plan.find("src->m1->f1->out"), std::string::npos) << plan;
  ASSERT_TRUE((*job)->Run().ok());
}

TEST(ApiTest, KeyByBreaksChain) {
  Environment env(2);
  env.FromRecords(Numbers(10), "src")
      .KeyBy(0)
      .Reduce([](const Record& a, const Record&) { return a; }, "red")
      .Collect("out");
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  // src task + 2x (red->out) subtasks.
  EXPECT_EQ((*job)->num_tasks(), 3u);
  ASSERT_TRUE((*job)->Run().ok());
}

TEST(ApiTest, MultipleSinksOnOneStream) {
  Environment env;
  auto s = env.FromRecords(Numbers(100));
  auto evens = s.Filter([](const Record& r) {
    return r.field(0).AsInt64() % 2 == 0;
  });
  auto odds = s.Filter([](const Record& r) {
    return r.field(0).AsInt64() % 2 == 1;
  });
  auto even_sink = evens.Collect();
  auto odd_sink = odds.Collect();
  ASSERT_TRUE(env.Execute().ok());
  EXPECT_EQ(even_sink->size(), 50u);
  EXPECT_EQ(odd_sink->size(), 50u);
}

TEST(ApiTest, RebalancePropagatesParallelism) {
  Environment env;
  auto s = env.FromRecords(Numbers(100)).Rebalance(3);
  EXPECT_EQ(s.node_parallelism(), 3);
  auto t = s.Map([](Record&& r) { return std::move(r); });
  EXPECT_EQ(t.node_parallelism(), 3);  // forward chain keeps parallelism
  t.Collect();
  ASSERT_TRUE(env.Execute().ok());
}

TEST(ApiTest, WindowAllRunsAtParallelismOne) {
  Environment env(4);
  auto agg = env.FromRecords(Numbers(100))
                 .WindowAll({std::make_shared<TumblingWindowFn>(50)})
                 .Aggregate(DynAggKind::kCount, 0);
  EXPECT_EQ(agg.node_parallelism(), 1);
  auto sink = agg.Collect();
  ASSERT_TRUE(env.Execute().ok());
  ASSERT_EQ(sink->size(), 2u);
}

TEST(ApiTest, UnionOfDifferentParallelism) {
  Environment env;
  auto a = env.FromRecords(Numbers(30), "a");
  auto b = env.FromRecords(Numbers(20), "b").Rebalance(2);
  // a (p=1) union b (p=2): right side rebalances into the union.
  auto sink = b.Union(a).Collect();
  ASSERT_TRUE(env.Execute().ok());
  EXPECT_EQ(sink->size(), 50u);
}

TEST(ApiTest, EnvironmentParallelismControlsKeyedOps) {
  Environment env;
  env.SetParallelism(3);
  auto red = env.FromRecords(Numbers(10))
                 .KeyBy(0)
                 .Reduce([](const Record& a, const Record&) { return a; });
  EXPECT_EQ(red.node_parallelism(), 3);
  red.Collect();
  ASSERT_TRUE(env.Execute().ok());
}

TEST(ApiTest, GeneratorSourceIsBoundedWhenItReturnsNullopt) {
  Environment env;
  auto sink = env.FromGenerator("g",
                                [](uint64_t seq) -> std::optional<Record> {
                                  if (seq >= 25) return std::nullopt;
                                  return MakeRecord(
                                      static_cast<Timestamp>(seq),
                                      Value(static_cast<int64_t>(seq)));
                                })
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  EXPECT_EQ(sink->size(), 25u);
}

TEST(ApiTest, MixedWindowKindsShareOneOperator) {
  Environment env;
  std::vector<Record> records;
  for (int i = 0; i < 200; ++i) {
    records.push_back(
        MakeRecord(i, Value(int64_t{0}), Value(1.0)));
  }
  auto sink =
      env.FromRecords(std::move(records))
          .KeyBy(0)
          .Window({std::make_shared<TumblingWindowFn>(100),
                   std::make_shared<SessionWindowFn>(50),
                   std::make_shared<CountWindowFn>(64)})
          .Aggregate(DynAggKind::kCount, 1)
          .Collect();
  ASSERT_TRUE(env.Execute().ok());
  std::set<int64_t> queries_seen;
  for (const Record& r : sink->records()) {
    queries_seen.insert(r.field(3).AsInt64());
  }
  // All three window kinds fired from the same shared operator.
  EXPECT_EQ(queries_seen, (std::set<int64_t>{0, 1, 2}));
}

}  // namespace
}  // namespace streamline
