#include "dataflow/executor.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "api/datastream.h"
#include "common/random.h"

namespace streamline {
namespace {

std::vector<Record> NumberRecords(int n) {
  std::vector<Record> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(MakeRecord(i, Value(static_cast<int64_t>(i))));
  }
  return out;
}

TEST(ExecutorTest, SourceMapSinkBounded) {
  Environment env;
  auto sink = env.FromRecords(NumberRecords(100))
                  .Map([](Record&& r) {
                    r.fields[0] = Value(r.field(0).AsInt64() * 2);
                    return std::move(r);
                  })
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  const auto records = sink->records();
  ASSERT_EQ(records.size(), 100u);
  // Single chained task: order is preserved.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(records[i].field(0).AsInt64(), 2 * i);
  }
}

TEST(ExecutorTest, FilterAndFlatMap) {
  Environment env;
  auto sink = env.FromRecords(NumberRecords(10))
                  .Filter([](const Record& r) {
                    return r.field(0).AsInt64() % 2 == 0;
                  })
                  .FlatMap([](Record&& r, Collector* out) {
                    out->Emit(Record(r));
                    out->Emit(std::move(r));  // duplicate each
                  })
                  .Collect();
  ASSERT_TRUE(env.Execute().ok());
  EXPECT_EQ(sink->size(), 10u);  // 5 evens, duplicated
}

TEST(ExecutorTest, ChainingFusesForwardEdges) {
  Environment env;
  env.FromRecords(NumberRecords(1))
      .Map([](Record&& r) { return std::move(r); })
      .Filter([](const Record&) { return true; })
      .Collect();
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  // source + map + filter + sink fuse into ONE task.
  EXPECT_EQ((*job)->num_tasks(), 1u);
  EXPECT_NE((*job)->PlanDescription().find("->"), std::string::npos);
  ASSERT_TRUE((*job)->Run().ok());
}

TEST(ExecutorTest, ChainingCanBeDisabled) {
  Environment env;
  env.FromRecords(NumberRecords(1))
      .Map([](Record&& r) { return std::move(r); })
      .Collect();
  JobOptions opts;
  opts.enable_chaining = false;
  auto job = env.CreateJob(opts);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ((*job)->num_tasks(), 3u);
  ASSERT_TRUE((*job)->Run().ok());
}

TEST(ExecutorTest, KeyedReduceWithHashPartitioning) {
  Environment env(4);
  // Records: key = i % 5, value = i.
  std::vector<Record> records;
  for (int i = 0; i < 1000; ++i) {
    records.push_back(MakeRecord(i, Value(static_cast<int64_t>(i % 5)),
                                 Value(static_cast<int64_t>(i))));
  }
  auto sink =
      env.FromRecords(std::move(records))
          .KeyBy(0)
          .Reduce([](const Record& acc, const Record& in) {
            Record out = acc;
            out.fields[1] =
                Value(acc.field(1).AsInt64() + in.field(1).AsInt64());
            return out;
          })
          .Collect();
  ASSERT_TRUE(env.Execute().ok());
  // The final emission per key carries the full sum.
  std::map<int64_t, int64_t> final_sum;
  for (const Record& r : sink->records()) {
    final_sum[r.field(0).AsInt64()] = r.field(1).AsInt64();
  }
  ASSERT_EQ(final_sum.size(), 5u);
  for (int k = 0; k < 5; ++k) {
    int64_t expect = 0;
    for (int i = 0; i < 1000; ++i) {
      if (i % 5 == k) expect += i;
    }
    EXPECT_EQ(final_sum[k], expect) << "key " << k;
  }
  // 1000 inputs -> 1000 running-reduce emissions.
  EXPECT_EQ(sink->size(), 1000u);
}

TEST(ExecutorTest, RebalanceDistributesAcrossSubtasks) {
  Environment env;
  // Tag each record with the processing subtask.
  auto sink =
      env.FromRecords(NumberRecords(400))
          .Rebalance(4)
          .Collect();
  ASSERT_TRUE(env.Execute().ok());
  EXPECT_EQ(sink->size(), 400u);
}

TEST(ExecutorTest, UnionMergesTwoSources) {
  Environment env;
  auto left = env.FromRecords(NumberRecords(50), "left");
  auto right = env.FromRecords(NumberRecords(70), "right");
  auto sink = left.Union(right).Collect();
  ASSERT_TRUE(env.Execute().ok());
  EXPECT_EQ(sink->size(), 120u);
}

TEST(ExecutorTest, UnboundedGeneratorRunsUntilCancel) {
  Environment env;
  auto sink = env.FromGenerator("endless",
                                [](uint64_t seq) {
                                  return MakeRecord(
                                      static_cast<Timestamp>(seq),
                                      Value(static_cast<int64_t>(seq)));
                                })
                  .Collect();
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Start().ok());
  while (sink->size() < 1000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (*job)->Cancel();
  ASSERT_TRUE((*job)->AwaitCompletion().ok());
  EXPECT_GE(sink->size(), 1000u);
}

TEST(ExecutorTest, BackpressureWithTinyChannels) {
  Environment env;
  auto sink = env.FromRecords(NumberRecords(5000))
                  .Rebalance(2)  // breaks the chain: real channels
                  .Map([](Record&& r) { return std::move(r); })
                  .Collect();
  JobOptions opts;
  opts.channel_capacity = 2;  // heavy backpressure
  auto job = env.CreateJob(opts);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Run().ok());
  EXPECT_EQ(sink->size(), 5000u);
}

TEST(ExecutorTest, IntervalJoinMatchesWithinBounds) {
  Environment env;
  std::vector<Record> lefts;
  std::vector<Record> rights;
  // Left at t=0,10,20,...,90; right at t=5,15,...,95; key alternates 0/1.
  for (int i = 0; i < 10; ++i) {
    lefts.push_back(MakeRecord(i * 10, Value(static_cast<int64_t>(i % 2)),
                               Value("L" + std::to_string(i))));
    rights.push_back(MakeRecord(i * 10 + 5,
                                Value(static_cast<int64_t>(i % 2)),
                                Value("R" + std::to_string(i))));
  }
  auto l = env.FromRecords(std::move(lefts), "lefts").KeyBy(0);
  auto r = env.FromRecords(std::move(rights), "rights").KeyBy(0);
  // r.ts - l.ts in [0, 5]: right i joins left i (same key by parity).
  auto sink = l.IntervalJoin(r, 0, 5).Collect();
  ASSERT_TRUE(env.Execute().ok());
  const auto joined = sink->records();
  ASSERT_EQ(joined.size(), 10u);
  for (const Record& rec : joined) {
    ASSERT_EQ(rec.num_fields(), 4u);
    // L<i> joined with R<i>.
    EXPECT_EQ(rec.field(1).AsString().substr(1),
              rec.field(3).AsString().substr(1));
  }
}

TEST(ExecutorTest, MetricsCountRecords) {
  Environment env;
  env.FromRecords(NumberRecords(42), "numbers").Collect("out");
  auto job = env.CreateJob();
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE((*job)->Run().ok());
  // The fused task emitted nothing downstream (sink is terminal), but its
  // out counter counts router emissions (zero) while records_in counts
  // mailbox deliveries (zero for a pure source chain). Check report exists.
  EXPECT_FALSE((*job)->metrics()->Report().empty());
}

TEST(ExecutorTest, InvalidGraphRejectedAtCreate) {
  LogicalGraph g;
  auto result = Job::Create(g);
  EXPECT_FALSE(result.ok());
}

TEST(ExecutorTest, SameJobShapeBatchAndStreaming) {
  // The paper's central usability claim: identical pipeline code for data
  // at rest and data in motion. Build the same topology twice, once over a
  // bounded source and once over an unbounded generator + cancel; both
  // produce the same per-key sums for the common prefix.
  auto build = [](Environment*, DataStream input) {
    return input
        .Filter(
            [](const Record& r) { return r.field(1).AsInt64() % 3 != 0; })
        .KeyBy(0)
        .Reduce([](const Record& acc, const Record& in) {
          Record out = acc;
          out.fields[1] =
              Value(acc.field(1).AsInt64() + in.field(1).AsInt64());
          return out;
        })
        .Collect();
  };
  auto make_record = [](uint64_t i) {
    return MakeRecord(static_cast<Timestamp>(i),
                      Value(static_cast<int64_t>(i % 4)),
                      Value(static_cast<int64_t>(i)));
  };

  // Batch run over exactly 500 records.
  Environment batch_env;
  std::vector<Record> records;
  for (uint64_t i = 0; i < 500; ++i) records.push_back(make_record(i));
  auto batch_sink = build(&batch_env,
                          batch_env.FromRecords(std::move(records)));
  ASSERT_TRUE(batch_env.Execute().ok());

  // Streaming run over the same generator, bounded to the same 500.
  Environment stream_env;
  auto stream_sink = build(
      &stream_env,
      stream_env.FromGenerator("gen", [&](uint64_t seq)
                                   -> std::optional<Record> {
        if (seq >= 500) return std::nullopt;
        return make_record(seq);
      }));
  ASSERT_TRUE(stream_env.Execute().ok());

  // Same final per-key state either way.
  auto final_sums = [](const std::vector<Record>& rs) {
    std::map<int64_t, int64_t> out;
    for (const Record& r : rs) out[r.field(0).AsInt64()] = r.field(1).AsInt64();
    return out;
  };
  EXPECT_EQ(final_sums(batch_sink->records()),
            final_sums(stream_sink->records()));
}

}  // namespace
}  // namespace streamline
