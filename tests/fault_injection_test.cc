#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace streamline {
namespace {

TEST(FaultInjectorTest, NoRulesNeverFires) {
  FaultInjector fi;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(fi.OnHit("op:map").ok());
  }
  EXPECT_EQ(fi.fires(), 0u);
  EXPECT_EQ(fi.hits("op:map"), 100u);
  EXPECT_EQ(fi.hits("op:other"), 0u);
}

TEST(FaultInjectorTest, FailAtNthHitFiresExactlyOnce) {
  FaultInjector fi;
  fi.AddRule(FaultInjector::FailAtHit("op:agg", 3));
  EXPECT_TRUE(fi.OnHit("op:agg").ok());
  EXPECT_TRUE(fi.OnHit("op:agg").ok());
  const Status st = fi.OnHit("op:agg");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("op:agg"), std::string::npos);
  // max_fires defaults to 1: the site keeps working afterwards (models a
  // crash that a restarted job must not hit again).
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(fi.OnHit("op:agg").ok());
  }
  EXPECT_EQ(fi.fires(), 1u);
}

TEST(FaultInjectorTest, OtherSitesUnaffected) {
  FaultInjector fi;
  fi.AddRule(FaultInjector::FailAtHit("op:agg", 1));
  EXPECT_TRUE(fi.OnHit("source:gen").ok());
  EXPECT_TRUE(fi.OnHit("op:sink").ok());
  EXPECT_FALSE(fi.OnHit("op:agg").ok());
}

TEST(FaultInjectorTest, WildcardMatchesEverySite) {
  FaultInjector fi;
  fi.AddRule(FaultInjector::FailAtHit("*", 2));
  EXPECT_TRUE(fi.OnHit("a").ok());
  EXPECT_FALSE(fi.OnHit("b").ok());  // second hit across all sites
}

TEST(FaultInjectorTest, ThrowKindThrows) {
  FaultInjector fi;
  fi.AddRule(
      FaultInjector::FailAtHit("op:agg", 1, FaultInjector::FaultKind::kThrow));
  EXPECT_THROW((void)fi.OnHit("op:agg"), std::runtime_error);
  EXPECT_EQ(fi.fires(), 1u);
}

TEST(FaultInjectorTest, CheckpointRuleFiresOnMatchingIdOnly) {
  FaultInjector fi;
  fi.AddRule(FaultInjector::FailOnCheckpoint("op:agg", 2));
  // Checkpoint rules never fire on the record path.
  EXPECT_TRUE(fi.OnHit("op:agg").ok());
  EXPECT_TRUE(fi.OnCheckpoint("op:agg", 1).ok());
  EXPECT_TRUE(fi.OnCheckpoint("source:gen", 2).ok());
  EXPECT_FALSE(fi.OnCheckpoint("op:agg", 2).ok());
  // One-shot by default.
  EXPECT_TRUE(fi.OnCheckpoint("op:agg", 2).ok());
}

TEST(FaultInjectorTest, ProbabilityIsDeterministicUnderSeed) {
  auto count_fires = [](uint64_t seed) {
    FaultInjector fi(seed);
    auto rule = FaultInjector::FailWithProbability("op:x", 0.1);
    rule.max_fires = 0;  // unlimited
    fi.AddRule(rule);
    uint64_t failures = 0;
    uint64_t first_failure_hit = 0;
    for (uint64_t i = 1; i <= 1000; ++i) {
      if (!fi.OnHit("op:x").ok()) {
        ++failures;
        if (first_failure_hit == 0) first_failure_hit = i;
      }
    }
    return std::make_pair(failures, first_failure_hit);
  };
  const auto a = count_fires(7);
  const auto b = count_fires(7);
  EXPECT_EQ(a, b);  // same seed, same fault schedule
  // ~10% of 1000, loosely bounded.
  EXPECT_GT(a.first, 50u);
  EXPECT_LT(a.first, 200u);
  const auto c = count_fires(8);
  EXPECT_NE(a.second, c.second);  // different seed, different schedule
}

TEST(FaultInjectorTest, MaxFiresBoundsProbabilityRule) {
  FaultInjector fi(3);
  fi.AddRule(FaultInjector::FailWithProbability(
      "op:x", 1.0, FaultInjector::FaultKind::kStatus, 2));
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    if (!fi.OnHit("op:x").ok()) ++failures;
  }
  EXPECT_EQ(failures, 2);
}

TEST(FaultInjectorTest, MultipleRulesIndependentCounters) {
  FaultInjector fi;
  fi.AddRule(FaultInjector::FailAtHit("op:a", 2));
  fi.AddRule(FaultInjector::FailAtHit("op:b", 1));
  EXPECT_FALSE(fi.OnHit("op:b").ok());
  EXPECT_TRUE(fi.OnHit("op:a").ok());
  EXPECT_FALSE(fi.OnHit("op:a").ok());
  EXPECT_EQ(fi.fires(), 2u);
}

}  // namespace
}  // namespace streamline
