#include "common/status.h"

#include <gtest/gtest.h>

namespace streamline {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad window size");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad window size");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad window size");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::Ok(); }

Status UsesReturnIfError(bool fail) {
  STREAMLINE_RETURN_IF_ERROR(Succeeds());
  if (fail) {
    STREAMLINE_RETURN_IF_ERROR(Fails());
  }
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(false).ok());
  EXPECT_EQ(UsesReturnIfError(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace streamline
