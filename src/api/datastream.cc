#include "api/datastream.h"

#include "common/logging.h"

namespace streamline {

KeySelector KeyField(size_t field_index) {
  return [field_index](const Record& r) { return r.field(field_index); };
}

// ---------------------------------------------------------------------------
// Environment

std::string Environment::AutoName(const std::string& kind) {
  return kind + "_" + std::to_string(name_counter_++);
}

DataStream Environment::FromRecords(std::vector<Record> records,
                                    std::string name, int parallelism) {
  const int node = graph_.AddSource(
      std::move(name), parallelism,
      VectorSource::Factory(std::move(records)));
  return DataStream(this, node, parallelism);
}

DataStream Environment::FromGenerator(
    std::string name, std::function<std::optional<Record>(uint64_t)> gen,
    uint64_t watermark_every) {
  NodeTraits traits;
  traits.emits_watermarks = watermark_every > 0;
  const int node = graph_.AddSource(
      std::move(name), 1,
      [gen = std::move(gen), watermark_every](
          int, int) -> std::unique_ptr<SourceFunction> {
        return std::make_unique<GeneratorSource>("generator", gen,
                                                 watermark_every);
      },
      traits);
  return DataStream(this, node, 1);
}

DataStream Environment::FromSource(std::string name, SourceFactory factory,
                                   int parallelism) {
  const int node =
      graph_.AddSource(std::move(name), parallelism, std::move(factory));
  return DataStream(this, node, parallelism);
}

Result<std::unique_ptr<Job>> Environment::CreateJob(JobOptions options) {
  return Job::Create(graph_, std::move(options));
}

Status Environment::Execute(JobOptions options) {
  auto job = CreateJob(std::move(options));
  if (!job.ok()) return job.status();
  return (*job)->Run();
}

Status Environment::ExecuteSupervised(JobOptions options, RestartPolicy policy,
                                      SupervisionStats* stats) {
  JobSupervisor supervisor(&graph_, std::move(options), policy);
  const Status st = supervisor.Run();
  if (stats != nullptr) *stats = supervisor.stats();
  return st;
}

// ---------------------------------------------------------------------------
// DataStream

DataStream DataStream::Map(MapOperator::MapFn fn, std::string name) {
  if (name.empty()) name = env_->AutoName("map");
  const int node = env_->graph_.AddOperator(
      name, parallelism_, [name, fn = std::move(fn)]() {
        return std::make_unique<MapOperator>(name, fn);
      });
  STREAMLINE_CHECK_OK(
      env_->graph_.Connect(node_, node, PartitionScheme::kForward));
  return DataStream(env_, node, parallelism_);
}

DataStream DataStream::FlatMap(FlatMapOperator::FlatMapFn fn,
                               std::string name) {
  if (name.empty()) name = env_->AutoName("flat_map");
  const int node = env_->graph_.AddOperator(
      name, parallelism_, [name, fn = std::move(fn)]() {
        return std::make_unique<FlatMapOperator>(name, fn);
      });
  STREAMLINE_CHECK_OK(
      env_->graph_.Connect(node_, node, PartitionScheme::kForward));
  return DataStream(env_, node, parallelism_);
}

DataStream DataStream::Filter(FilterOperator::Predicate pred,
                              std::string name) {
  if (name.empty()) name = env_->AutoName("filter");
  const int node = env_->graph_.AddOperator(
      name, parallelism_, [name, pred = std::move(pred)]() {
        return std::make_unique<FilterOperator>(name, pred);
      });
  STREAMLINE_CHECK_OK(
      env_->graph_.Connect(node_, node, PartitionScheme::kForward));
  return DataStream(env_, node, parallelism_);
}

DataStream DataStream::Process(OperatorFactory factory, std::string name,
                               int parallelism) {
  if (name.empty()) name = env_->AutoName("process");
  if (parallelism <= 0) parallelism = parallelism_;
  const int node =
      env_->graph_.AddOperator(name, parallelism, std::move(factory));
  const PartitionScheme scheme = parallelism == parallelism_
                                     ? PartitionScheme::kForward
                                     : PartitionScheme::kRebalance;
  STREAMLINE_CHECK_OK(env_->graph_.Connect(node_, node, scheme));
  return DataStream(env_, node, parallelism);
}

KeyedStream DataStream::KeyBy(KeySelector key, KeyHashFn key_hash) const {
  return KeyedStream(env_, node_, std::move(key), -1, std::move(key_hash));
}

KeyedStream DataStream::KeyBy(size_t field_index) const {
  return KeyedStream(env_, node_, KeyField(field_index),
                     static_cast<int>(field_index));
}

DataStream DataStream::Union(const DataStream& other, std::string name) {
  STREAMLINE_CHECK(env_ == other.env_);
  if (name.empty()) name = env_->AutoName("union");
  const int out_parallelism = parallelism_;
  const int node = env_->graph_.AddOperator(
      name, out_parallelism,
      [name]() { return std::make_unique<UnionOperator>(name); });
  const PartitionScheme left_scheme = PartitionScheme::kForward;
  const PartitionScheme right_scheme =
      other.parallelism_ == out_parallelism ? PartitionScheme::kForward
                                            : PartitionScheme::kRebalance;
  STREAMLINE_CHECK_OK(env_->graph_.Connect(node_, node, left_scheme));
  STREAMLINE_CHECK_OK(env_->graph_.Connect(other.node_, node, right_scheme));
  return DataStream(env_, node, out_parallelism);
}

DataStream DataStream::Rebalance(int parallelism, std::string name) {
  if (name.empty()) name = env_->AutoName("rebalance");
  const int node = env_->graph_.AddOperator(
      name, parallelism,
      [name]() { return std::make_unique<UnionOperator>(name); });
  STREAMLINE_CHECK_OK(
      env_->graph_.Connect(node_, node, PartitionScheme::kRebalance));
  return DataStream(env_, node, parallelism);
}

WindowedStream DataStream::WindowAll(
    std::vector<std::shared_ptr<const WindowFunction>> windows) const {
  return WindowedStream(env_, node_, nullptr, std::move(windows));
}

void DataStream::Sink(std::shared_ptr<SinkFunction> sink, std::string name) {
  if (name.empty()) name = env_->AutoName("sink");
  NodeTraits traits;
  traits.is_sink = true;
  const int node = env_->graph_.AddOperator(
      name, parallelism_,
      [name, sink]() { return std::make_unique<SinkOperator>(name, sink); },
      traits);
  STREAMLINE_CHECK_OK(
      env_->graph_.Connect(node_, node, PartitionScheme::kForward));
}

std::shared_ptr<CollectSink> DataStream::Collect(std::string name) {
  auto sink = std::make_shared<CollectSink>();
  Sink(sink, std::move(name));
  return sink;
}

// ---------------------------------------------------------------------------
// KeyedStream

DataStream KeyedStream::Reduce(KeyedReduceOperator::ReduceFn fn,
                               std::string name) {
  if (name.empty()) name = env_->AutoName("reduce");
  const int parallelism = env_->parallelism();
  KeySelector key = key_;
  NodeTraits traits;
  traits.keyed_state = true;
  const int node = env_->graph_.AddOperator(
      name, parallelism,
      [name, key, fn = std::move(fn)]() {
        return std::make_unique<KeyedReduceOperator>(name, key, fn);
      },
      traits);
  STREAMLINE_CHECK_OK(env_->graph_.Connect(
      upstream_, node, PartitionScheme::kHash, key_, 0, key_field_,
      key_hash_));
  return DataStream(env_, node, parallelism);
}

WindowedStream KeyedStream::Window(
    std::vector<std::shared_ptr<const WindowFunction>> windows) const {
  return WindowedStream(env_, upstream_, key_, std::move(windows),
                        key_field_, key_hash_);
}

WindowedStream KeyedStream::Window(
    std::shared_ptr<const WindowFunction> window) const {
  std::vector<std::shared_ptr<const WindowFunction>> ws;
  ws.push_back(std::move(window));
  return Window(std::move(ws));
}

DataStream KeyedStream::IntervalJoin(const KeyedStream& right, Duration lower,
                                     Duration upper, std::string name) {
  STREAMLINE_CHECK(env_ == right.env_);
  if (name.empty()) name = env_->AutoName("interval_join");
  const int parallelism = env_->parallelism();
  KeySelector lk = key_;
  KeySelector rk = right.key_;
  NodeTraits traits;
  traits.keyed_state = true;
  traits.requires_watermarks = true;
  const int node = env_->graph_.AddOperator(
      name, parallelism,
      [name, lk, rk, lower, upper]() {
        return std::make_unique<IntervalJoinOperator>(name, lk, rk, lower,
                                                      upper);
      },
      traits);
  STREAMLINE_CHECK_OK(env_->graph_.Connect(
      upstream_, node, PartitionScheme::kHash, key_, 0, key_field_,
      key_hash_));
  STREAMLINE_CHECK_OK(env_->graph_.Connect(
      right.upstream_, node, PartitionScheme::kHash, right.key_, 1,
      right.key_field_, right.key_hash_));
  return DataStream(env_, node, parallelism);
}

DataStream KeyedStream::TemporalJoin(const KeyedStream& table,
                                     size_t table_width, bool emit_unmatched,
                                     std::string name) {
  STREAMLINE_CHECK(env_ == table.env_);
  if (name.empty()) name = env_->AutoName("temporal_join");
  const int parallelism = env_->parallelism();
  TemporalJoinOperator::Spec spec;
  spec.fact_key = key_;
  spec.table_key = table.key_;
  spec.emit_unmatched = emit_unmatched;
  spec.table_width = table_width;
  NodeTraits traits;
  traits.keyed_state = true;
  traits.requires_watermarks = true;
  const int node = env_->graph_.AddOperator(
      name, parallelism,
      [name, spec]() {
        return std::make_unique<TemporalJoinOperator>(name, spec);
      },
      traits);
  STREAMLINE_CHECK_OK(env_->graph_.Connect(
      upstream_, node, PartitionScheme::kHash, key_, 0, key_field_,
      key_hash_));
  STREAMLINE_CHECK_OK(env_->graph_.Connect(
      table.upstream_, node, PartitionScheme::kHash, table.key_, 1,
      table.key_field_, table.key_hash_));
  return DataStream(env_, node, parallelism);
}

// ---------------------------------------------------------------------------
// WindowedStream

DataStream WindowedStream::Aggregate(DynAggKind kind, size_t value_field,
                                     WindowBackend backend,
                                     std::string name) {
  if (name.empty()) name = env_->AutoName("window_agg");
  const bool keyed = key_ != nullptr;
  const int parallelism = keyed ? env_->parallelism() : 1;
  WindowAggSpec spec;
  spec.key = key_;
  spec.value_field = value_field;
  spec.agg_kind = kind;
  spec.windows = windows_;
  spec.backend = backend;
  spec.allowed_lateness = allowed_lateness_;
  spec.registry = registry_;
  NodeTraits traits;
  traits.requires_watermarks = true;
  traits.keyed_state = keyed;
  const int node = env_->graph_.AddOperator(
      name, parallelism,
      [name, spec]() { return std::make_unique<WindowAggOperator>(name, spec); },
      traits);
  if (keyed) {
    STREAMLINE_CHECK_OK(env_->graph_.Connect(
        upstream_, node, PartitionScheme::kHash, key_, 0, key_field_,
        key_hash_));
  } else {
    // Global windows: funnel everything into the single subtask.
    STREAMLINE_CHECK_OK(env_->graph_.Connect(upstream_, node,
                                             PartitionScheme::kRebalance));
  }
  return DataStream(env_, node, parallelism);
}

}  // namespace streamline
