#ifndef STREAMLINE_API_DATASTREAM_H_
#define STREAMLINE_API_DATASTREAM_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dataflow/executor.h"
#include "dataflow/graph.h"
#include "dataflow/operators.h"
#include "dataflow/sink.h"
#include "dataflow/sources.h"
#include "dataflow/supervisor.h"
#include "dataflow/temporal_join.h"
#include "dataflow/window_operator.h"

namespace streamline {

class DataStream;
class KeyedStream;
class WindowedStream;

/// Key selector over a record field index.
KeySelector KeyField(size_t field_index);

/// The paper's *uniform programming model*: one fluent API whose pipelines
/// run unchanged over data at rest (bounded sources; Execute() returns when
/// done) and data in motion (unbounded sources; the job runs until
/// cancelled). The environment accumulates a LogicalGraph which Execute()
/// deploys on the pipelined engine.
class Environment {
 public:
  explicit Environment(int default_parallelism = 1)
      : parallelism_(default_parallelism) {}

  /// Default parallelism for partition-introducing operators (key_by).
  void SetParallelism(int p) { parallelism_ = p; }
  int parallelism() const { return parallelism_; }

  /// Bounded source over in-memory records -- "data at rest".
  DataStream FromRecords(std::vector<Record> records,
                         std::string name = "collection", int parallelism = 1);

  /// Generator-driven source; return nullopt to end the stream (bounded) or
  /// keep producing until cancellation (unbounded) -- "data in motion".
  DataStream FromGenerator(
      std::string name,
      std::function<std::optional<Record>(uint64_t seq)> gen,
      uint64_t watermark_every = 64);

  /// Fully custom source.
  DataStream FromSource(std::string name, SourceFactory factory,
                        int parallelism = 1);

  /// Deploys the accumulated pipeline.
  Result<std::unique_ptr<Job>> CreateJob(JobOptions options = JobOptions());

  /// Create + Run: returns when all sources are exhausted (batch semantics;
  /// an unbounded source makes this run until Cancel from another thread).
  /// Returns the first task failure (user-code error or exception) if the
  /// job crashed.
  Status Execute(JobOptions options = JobOptions());

  /// Execute under a JobSupervisor: on a task failure the job is restarted
  /// from the latest complete checkpoint per `policy`. Pair with
  /// checkpoint_interval_ms > 0 and a transactional sink for exactly-once
  /// output across crashes. `stats` (optional) receives what happened.
  Status ExecuteSupervised(JobOptions options = JobOptions(),
                           RestartPolicy policy = RestartPolicy(),
                           SupervisionStats* stats = nullptr);

  LogicalGraph* graph() { return &graph_; }

 private:
  friend class DataStream;
  friend class KeyedStream;
  friend class WindowedStream;

  std::string AutoName(const std::string& kind);

  LogicalGraph graph_;
  int parallelism_ = 1;
  int name_counter_ = 0;
};

/// Handle to one node of the pipeline under construction. Cheap to copy.
class DataStream {
 public:
  /// 1:1 transform.
  DataStream Map(MapOperator::MapFn fn, std::string name = "");
  /// 1:N transform.
  DataStream FlatMap(FlatMapOperator::FlatMapFn fn, std::string name = "");
  /// Predicate filter.
  DataStream Filter(FilterOperator::Predicate pred, std::string name = "");

  /// Inserts a user-defined operator (the extension point for anything the
  /// built-in verbs do not cover, e.g. online learners). Uses a forward
  /// edge (chains) when `parallelism` is 0 or equals this stream's; a
  /// rebalance edge otherwise.
  DataStream Process(OperatorFactory factory, std::string name = "",
                     int parallelism = 0);

  /// Hash-partitions the stream by `key`; subsequent stateful operators are
  /// keyed and run at the environment parallelism. `key_hash` (optional) is
  /// a hash-only selector that must equal KeyHashOf(key(record)) for every
  /// record; supplying one lets the shuffle route without materializing a
  /// key Value copy per record.
  KeyedStream KeyBy(KeySelector key, KeyHashFn key_hash = nullptr) const;
  /// KeyBy on a record field (routes hash-only, no key copy).
  KeyedStream KeyBy(size_t field_index) const;

  /// Merges this stream with `other` (round-robin when parallelism
  /// differs, forward otherwise).
  DataStream Union(const DataStream& other, std::string name = "");

  /// Round-robin repartition to `parallelism` subtasks.
  DataStream Rebalance(int parallelism, std::string name = "");

  /// Non-keyed ("global") windows: runs at parallelism 1.
  WindowedStream WindowAll(
      std::vector<std::shared_ptr<const WindowFunction>> windows) const;

  /// Terminal: attach a sink (chains onto this node).
  void Sink(std::shared_ptr<SinkFunction> sink, std::string name = "");
  /// Terminal convenience: attach and return a CollectSink.
  std::shared_ptr<CollectSink> Collect(std::string name = "");

  int node_id() const { return node_; }
  int node_parallelism() const { return parallelism_; }
  Environment* env() const { return env_; }

 private:
  friend class Environment;
  friend class KeyedStream;
  friend class WindowedStream;

  DataStream(Environment* env, int node, int parallelism)
      : env_(env), node_(node), parallelism_(parallelism) {}

  Environment* env_;
  int node_;
  int parallelism_;
};

/// A hash-partitioned stream; the entry point for keyed state.
class KeyedStream {
 public:
  /// Running per-key reduce; emits the updated accumulator per input.
  DataStream Reduce(KeyedReduceOperator::ReduceFn fn, std::string name = "");

  /// Keyed event-time windows; pass several window definitions to share
  /// one slice store across them (multi-query sharing).
  WindowedStream Window(
      std::vector<std::shared_ptr<const WindowFunction>> windows) const;
  WindowedStream Window(
      std::shared_ptr<const WindowFunction> window) const;

  /// Keyed interval join: pairs (l, r) with equal keys and
  /// r.ts - l.ts in [lower, upper].
  DataStream IntervalJoin(const KeyedStream& right, Duration lower,
                          Duration upper, std::string name = "");

  /// Temporal (stream-to-table) join: `table` is a keyed changelog whose
  /// latest row per key enriches this stream's records. `table_width` is
  /// the number of fields a row appends (used for null padding when
  /// `emit_unmatched`).
  DataStream TemporalJoin(const KeyedStream& table, size_t table_width,
                          bool emit_unmatched = false, std::string name = "");

  const KeySelector& key() const { return key_; }

 private:
  friend class DataStream;
  friend class WindowedStream;

  KeyedStream(Environment* env, int upstream, KeySelector key,
              int key_field = -1, KeyHashFn key_hash = nullptr)
      : env_(env), upstream_(upstream), key_(std::move(key)),
        key_field_(key_field), key_hash_(std::move(key_hash)) {}

  Environment* env_;
  int upstream_;
  KeySelector key_;
  // >= 0 when the key is a plain field: lets the shuffle hash the field in
  // place instead of copying a Value per record.
  int key_field_ = -1;
  // Hash-only selector for computed keys (see DataStream::KeyBy).
  KeyHashFn key_hash_;
};

/// A (keyed or global) windowed stream awaiting an aggregate.
class WindowedStream {
 public:
  /// Tolerate records up to `lateness` behind the upstream watermark
  /// (results fire correspondingly later). Returns a modified copy.
  WindowedStream WithLateness(Duration lateness) const {
    WindowedStream out = *this;
    out.allowed_lateness_ = lateness;
    return out;
  }

  /// Points the aggregate at a standing-query registry: queries attached
  /// through it splice into the running operator at watermark boundaries
  /// (no restart), tagged in output field 3 with their registry id. Shared
  /// (Cutty) backend only. Returns a modified copy.
  WindowedStream WithRegistry(std::shared_ptr<QueryRegistry> registry) const {
    WindowedStream out = *this;
    out.registry_ = std::move(registry);
    return out;
  }

  /// Aggregates `value_field` with `kind` per window. Output records:
  /// [key, window_start, window_end, query_index, result].
  DataStream Aggregate(DynAggKind kind, size_t value_field,
                       WindowBackend backend = WindowBackend::kShared,
                       std::string name = "");

 private:
  friend class DataStream;
  friend class KeyedStream;

  WindowedStream(Environment* env, int upstream, KeySelector key,
                 std::vector<std::shared_ptr<const WindowFunction>> windows,
                 int key_field = -1, KeyHashFn key_hash = nullptr)
      : env_(env), upstream_(upstream), key_(std::move(key)),
        windows_(std::move(windows)), key_field_(key_field),
        key_hash_(std::move(key_hash)) {}

  Environment* env_;
  int upstream_;
  KeySelector key_;  // null = global window
  std::vector<std::shared_ptr<const WindowFunction>> windows_;
  int key_field_ = -1;
  KeyHashFn key_hash_;
  Duration allowed_lateness_ = 0;
  std::shared_ptr<QueryRegistry> registry_;
};

}  // namespace streamline

#endif  // STREAMLINE_API_DATASTREAM_H_
