#ifndef STREAMLINE_WINDOW_WINDOW_H_
#define STREAMLINE_WINDOW_WINDOW_H_

#include <cstdint>
#include <string>

#include "common/time.h"

namespace streamline {

/// Half-open event-time interval [start, end). All window kinds (periodic,
/// session, count, punctuation, arbitrary UDWs) resolve to Window instances
/// when they fire.
struct Window {
  Timestamp start = 0;
  Timestamp end = 0;

  Duration length() const { return end - start; }
  bool Contains(Timestamp ts) const { return ts >= start && ts < end; }

  std::string ToString() const {
    return "[" + std::to_string(start) + ", " + std::to_string(end) + ")";
  }

  bool operator==(const Window& other) const {
    return start == other.start && end == other.end;
  }
  bool operator!=(const Window& other) const { return !(*this == other); }
  bool operator<(const Window& other) const {
    if (end != other.end) return end < other.end;
    return start < other.start;
  }
};

}  // namespace streamline

namespace std {
template <>
struct hash<streamline::Window> {
  size_t operator()(const streamline::Window& w) const {
    uint64_t h = static_cast<uint64_t>(w.start) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<uint64_t>(w.end) + 0x9E3779B97F4A7C15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};
}  // namespace std

#endif  // STREAMLINE_WINDOW_WINDOW_H_
