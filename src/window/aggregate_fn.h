#ifndef STREAMLINE_WINDOW_AGGREGATE_FN_H_
#define STREAMLINE_WINDOW_AGGREGATE_FN_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace streamline {

/// Algebraic aggregate functions in lift/combine/lower form (Tangwongsan et
/// al.), the form Cutty shares partials in:
///
///   struct Agg {
///     using Input = ...;    // element type
///     using Partial = ...;  // shareable partial aggregate
///     using Output = ...;   // final result type
///     static constexpr bool kInvertible;   // has Invert(whole, part)
///     static constexpr bool kCommutative;  // combine order irrelevant
///     Partial Identity() const;
///     Partial Lift(const Input&) const;
///     Partial Combine(const Partial&, const Partial&) const;  // associative
///     Output Lower(const Partial&) const;
///   };
///
/// Combine must be associative; slicing only ever combines adjacent ranges
/// in stream order, so non-commutative functions are supported too.

template <typename T>
struct SumAgg {
  using Input = T;
  using Partial = T;
  using Output = T;
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr const char* kName = "sum";

  Partial Identity() const { return T{}; }
  Partial Lift(const Input& v) const { return v; }
  Partial Combine(const Partial& a, const Partial& b) const { return a + b; }
  Partial Invert(const Partial& whole, const Partial& part) const {
    return whole - part;
  }
  Output Lower(const Partial& p) const { return p; }
  /// Contiguous fold kernel: local accumulator, no memory round-trip per
  /// element, same left-to-right association as the sequential fold (so
  /// results are bit-identical, including for floating T).
  void FoldSpan(Partial* acc, const Input* values, size_t n) const {
    T s = *acc;
    for (size_t i = 0; i < n; ++i) s = s + values[i];
    *acc = s;
  }
};

template <typename T>
struct CountAgg {
  using Input = T;
  using Partial = uint64_t;
  using Output = uint64_t;
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr const char* kName = "count";

  Partial Identity() const { return 0; }
  Partial Lift(const Input&) const { return 1; }
  Partial Combine(const Partial& a, const Partial& b) const { return a + b; }
  Partial Invert(const Partial& whole, const Partial& part) const {
    return whole - part;
  }
  Output Lower(const Partial& p) const { return p; }
  void FoldSpan(Partial* acc, const Input*, size_t n) const { *acc += n; }
};

template <typename T>
struct MinAgg {
  using Input = T;
  using Partial = T;
  using Output = T;
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr const char* kName = "min";

  Partial Identity() const {
    if constexpr (std::numeric_limits<T>::has_infinity) {
      return std::numeric_limits<T>::infinity();
    } else {
      return std::numeric_limits<T>::max();
    }
  }
  Partial Lift(const Input& v) const { return v; }
  Partial Combine(const Partial& a, const Partial& b) const {
    return b < a ? b : a;
  }
  Output Lower(const Partial& p) const { return p; }
  void FoldSpan(Partial* acc, const Input* values, size_t n) const {
    T m = *acc;
    for (size_t i = 0; i < n; ++i) m = values[i] < m ? values[i] : m;
    *acc = m;
  }
};

template <typename T>
struct MaxAgg {
  using Input = T;
  using Partial = T;
  using Output = T;
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr const char* kName = "max";

  Partial Identity() const {
    if constexpr (std::numeric_limits<T>::has_infinity) {
      return -std::numeric_limits<T>::infinity();
    } else {
      return std::numeric_limits<T>::lowest();
    }
  }
  Partial Lift(const Input& v) const { return v; }
  Partial Combine(const Partial& a, const Partial& b) const {
    return a < b ? b : a;
  }
  Output Lower(const Partial& p) const { return p; }
  void FoldSpan(Partial* acc, const Input* values, size_t n) const {
    T m = *acc;
    for (size_t i = 0; i < n; ++i) m = m < values[i] ? values[i] : m;
    *acc = m;
  }
};

/// Arithmetic mean; Partial carries (sum, count) so it is invertible.
template <typename T>
struct MeanAgg {
  using Input = T;
  struct Partial {
    double sum = 0;
    uint64_t count = 0;
    bool operator==(const Partial&) const = default;
  };
  using Output = double;
  static constexpr bool kInvertible = true;
  static constexpr bool kCommutative = true;
  static constexpr const char* kName = "mean";

  Partial Identity() const { return {}; }
  Partial Lift(const Input& v) const {
    return {static_cast<double>(v), 1};
  }
  Partial Combine(const Partial& a, const Partial& b) const {
    return {a.sum + b.sum, a.count + b.count};
  }
  Partial Invert(const Partial& whole, const Partial& part) const {
    return {whole.sum - part.sum, whole.count - part.count};
  }
  Output Lower(const Partial& p) const {
    return p.count == 0 ? 0.0 : p.sum / static_cast<double>(p.count);
  }
  void FoldSpan(Partial* acc, const Input* values, size_t n) const {
    double s = acc->sum;
    for (size_t i = 0; i < n; ++i) s = s + static_cast<double>(values[i]);
    acc->sum = s;
    acc->count += n;
  }
};

/// Population variance with numerically stable parallel combine
/// (Chan et al.). Not invertible -- the canonical case where tree-based
/// partial stores (FlatFat) matter.
template <typename T>
struct VarianceAgg {
  using Input = T;
  struct Partial {
    uint64_t n = 0;
    double mean = 0;
    double m2 = 0;
    bool operator==(const Partial&) const = default;
  };
  using Output = double;
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr const char* kName = "variance";

  Partial Identity() const { return {}; }
  Partial Lift(const Input& v) const {
    return {1, static_cast<double>(v), 0};
  }
  Partial Combine(const Partial& a, const Partial& b) const {
    if (a.n == 0) return b;
    if (b.n == 0) return a;
    const double n = static_cast<double>(a.n + b.n);
    const double delta = b.mean - a.mean;
    Partial out;
    out.n = a.n + b.n;
    out.mean = a.mean + delta * static_cast<double>(b.n) / n;
    out.m2 = a.m2 + b.m2 +
             delta * delta * static_cast<double>(a.n) *
                 static_cast<double>(b.n) / n;
    return out;
  }
  Output Lower(const Partial& p) const {
    return p.n == 0 ? 0.0 : p.m2 / static_cast<double>(p.n);
  }
};

/// Value at the maximum, e.g. "timestamp of the peak". Input is
/// (argument, value); ties keep the earliest argument. Non-invertible.
struct ArgMaxAgg {
  using Input = std::pair<int64_t, double>;
  struct Partial {
    int64_t arg = 0;
    double value = -std::numeric_limits<double>::infinity();
    bool valid = false;
    bool operator==(const Partial&) const = default;
  };
  using Output = int64_t;
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr const char* kName = "argmax";

  Partial Identity() const { return {}; }
  Partial Lift(const Input& v) const { return {v.first, v.second, true}; }
  Partial Combine(const Partial& a, const Partial& b) const {
    if (!a.valid) return b;
    if (!b.valid) return a;
    if (b.value > a.value) return b;
    return a;
  }
  Output Lower(const Partial& p) const { return p.arg; }
};

/// Collects window contents in stream order. Deliberately non-commutative:
/// used by tests to verify that stores combine adjacent ranges strictly
/// left-to-right.
template <typename T>
struct CollectAgg {
  using Input = T;
  using Partial = std::vector<T>;
  using Output = std::vector<T>;
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = false;
  static constexpr const char* kName = "collect";

  Partial Identity() const { return {}; }
  Partial Lift(const Input& v) const { return {v}; }
  Partial Combine(const Partial& a, const Partial& b) const {
    Partial out = a;
    out.insert(out.end(), b.begin(), b.end());
    return out;
  }
  Output Lower(const Partial& p) const { return p; }
};

/// Folds a contiguous span of inputs into *acc: the batch kernel entry
/// point used by the aggregators' OnElements paths. Dispatches to
/// Agg::FoldSpan when the aggregate provides one (a tight local-accumulator
/// loop the compiler can vectorize), else falls back to the generic
/// per-element left fold. Both forms must be bit-identical to
/// `for (v in span) *acc = Combine(*acc, Lift(v))` -- the batch/per-record
/// equivalence tests depend on it (same association order, no reordering).
template <typename Agg>
inline void AggFoldSpan(const Agg& agg, typename Agg::Partial* acc,
                        const typename Agg::Input* values, size_t n) {
  if constexpr (requires { agg.FoldSpan(acc, values, n); }) {
    agg.FoldSpan(acc, values, n);
  } else {
    for (size_t i = 0; i < n; ++i) {
      *acc = agg.Combine(*acc, agg.Lift(values[i]));
    }
  }
}

}  // namespace streamline

#endif  // STREAMLINE_WINDOW_AGGREGATE_FN_H_
