#ifndef STREAMLINE_WINDOW_SKETCHES_H_
#define STREAMLINE_WINDOW_SKETCHES_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

namespace streamline {

/// HyperLogLog register set with 2^P registers. Mergeable (register-wise
/// max), so it is a valid algebraic Partial: windowed count-distinct
/// queries share slices exactly like sum or max -- the "much more advanced
/// analyses" the paper says current systems make hard.
template <int P = 10>
struct HllSketch {
  static constexpr int kRegisters = 1 << P;
  std::array<uint8_t, kRegisters> registers{};

  void AddHash(uint64_t hash) {
    // Defensive finalizer (murmur3 fmix64): HLL consumes the HIGH bits of
    // the hash, which are weak in common hashes (e.g. FNV-1a); mixing here
    // keeps the estimator accurate regardless of the caller's hash.
    hash ^= hash >> 33;
    hash *= 0xFF51AFD7ED558CCDULL;
    hash ^= hash >> 33;
    hash *= 0xC4CEB9FE1A85EC53ULL;
    hash ^= hash >> 33;
    const uint32_t idx = static_cast<uint32_t>(hash >> (64 - P));
    const uint64_t rest = hash << P;
    // Rank: 1 + leading zeros of the remaining bits (capped).
    const uint8_t rank = static_cast<uint8_t>(
        rest == 0 ? (64 - P + 1) : (1 + __builtin_clzll(rest)));
    registers[idx] = std::max(registers[idx], rank);
  }

  void Merge(const HllSketch& other) {
    for (int i = 0; i < kRegisters; ++i) {
      registers[i] = std::max(registers[i], other.registers[i]);
    }
  }

  /// Cardinality estimate with the standard bias correction for the small
  /// range (linear counting when many registers are empty).
  double Estimate() const {
    const double m = kRegisters;
    double sum = 0;
    int zeros = 0;
    for (int i = 0; i < kRegisters; ++i) {
      sum += std::exp2(-static_cast<double>(registers[i]));
      if (registers[i] == 0) ++zeros;
    }
    const double alpha = 0.7213 / (1.0 + 1.079 / m);
    double estimate = alpha * m * m / sum;
    if (estimate <= 2.5 * m && zeros > 0) {
      estimate = m * std::log(m / zeros);  // linear counting
    }
    return estimate;
  }

  bool operator==(const HllSketch&) const = default;
};

/// Windowed approximate COUNT DISTINCT as an algebraic aggregate function:
/// Input is a pre-hashed element (uint64), Partial a mergeable HLL sketch.
/// Non-invertible and non-trivial to recompute -- the class of functions
/// where shared slice stores (FlatFAT) pay off most.
template <int P = 10>
struct CountDistinctAgg {
  using Input = uint64_t;  // 64-bit hash of the element
  using Partial = HllSketch<P>;
  using Output = double;
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr const char* kName = "count-distinct";

  Partial Identity() const { return Partial{}; }
  Partial Lift(const Input& hash) const {
    Partial p;
    p.AddHash(hash);
    return p;
  }
  Partial Combine(const Partial& a, const Partial& b) const {
    Partial out = a;
    out.Merge(b);
    return out;
  }
  Output Lower(const Partial& p) const { return p.Estimate(); }
};

/// Fixed-grid histogram over [lo, hi) with `N` buckets -- a mergeable
/// summary supporting approximate quantiles (resolution (hi-lo)/N).
/// Deterministic, algebraic, and bounded-size: the windowed-percentile
/// partial for latency dashboards.
template <int N = 128>
struct GridHistogram {
  std::array<uint64_t, N> buckets{};
  uint64_t below = 0;  // < lo
  uint64_t above = 0;  // >= hi

  bool operator==(const GridHistogram&) const = default;
};

/// Windowed approximate quantile as an algebraic aggregate function.
/// `q` and the value range are configuration; the partial is a
/// GridHistogram, combined bucket-wise.
template <int N = 128>
class QuantileAgg {
 public:
  using Input = double;
  using Partial = GridHistogram<N>;
  using Output = double;
  static constexpr bool kInvertible = false;
  static constexpr bool kCommutative = true;
  static constexpr const char* kName = "quantile";

  QuantileAgg(double q, double lo, double hi) : q_(q), lo_(lo), hi_(hi) {}

  Partial Identity() const { return Partial{}; }

  Partial Lift(const Input& v) const {
    Partial p;
    if (v < lo_) {
      p.below = 1;
    } else if (v >= hi_) {
      p.above = 1;
    } else {
      const int idx = static_cast<int>((v - lo_) / (hi_ - lo_) * N);
      p.buckets[std::min(idx, N - 1)] = 1;
    }
    return p;
  }

  Partial Combine(const Partial& a, const Partial& b) const {
    Partial out = a;
    for (int i = 0; i < N; ++i) out.buckets[i] += b.buckets[i];
    out.below += b.below;
    out.above += b.above;
    return out;
  }

  /// Approximate q-quantile: lower edge of the bucket holding the q-th
  /// element (clamped to the configured range).
  Output Lower(const Partial& p) const {
    uint64_t total = p.below + p.above;
    for (int i = 0; i < N; ++i) total += p.buckets[i];
    if (total == 0) return lo_;
    const auto target = static_cast<uint64_t>(q_ * static_cast<double>(total));
    uint64_t seen = p.below;
    if (seen > target) return lo_;
    for (int i = 0; i < N; ++i) {
      seen += p.buckets[i];
      if (seen > target) {
        return lo_ + (hi_ - lo_) * i / N;
      }
    }
    return hi_;
  }

  double q() const { return q_; }

 private:
  double q_;
  double lo_;
  double hi_;
};

}  // namespace streamline

#endif  // STREAMLINE_WINDOW_SKETCHES_H_
