#include "window/dyn_aggregate.h"

#include <algorithm>

#include "common/logging.h"

namespace streamline {

std::string_view DynAggKindToString(DynAggKind kind) {
  switch (kind) {
    case DynAggKind::kSum:
      return "sum";
    case DynAggKind::kCount:
      return "count";
    case DynAggKind::kMin:
      return "min";
    case DynAggKind::kMax:
      return "max";
    case DynAggKind::kAvg:
      return "avg";
    case DynAggKind::kVariance:
      return "variance";
    case DynAggKind::kFirst:
      return "first";
    case DynAggKind::kLast:
      return "last";
    case DynAggKind::kArgMaxTs:
      return "argmax-ts";
  }
  return "unknown";
}

DynPartial DynAggregate::Lift(const Value& v, Timestamp ts) const {
  DynPartial p;
  p.n = 1;
  p.ts = ts;
  p.valid = true;
  if (kind_ == DynAggKind::kCount) return p;
  p.a = v.ToDouble();
  return p;
}

DynPartial DynAggregate::Combine(const DynPartial& x,
                                 const DynPartial& y) const {
  if (!x.valid) return y;
  if (!y.valid) return x;
  DynPartial out;
  out.valid = true;
  out.n = x.n + y.n;
  switch (kind_) {
    case DynAggKind::kSum:
    case DynAggKind::kCount:
      out.a = x.a + y.a;
      break;
    case DynAggKind::kMin:
      out.a = std::min(x.a, y.a);
      break;
    case DynAggKind::kMax:
      out.a = std::max(x.a, y.a);
      break;
    case DynAggKind::kAvg: {
      // a stores the running sum; Lower divides by n.
      out.a = x.a + y.a;
      break;
    }
    case DynAggKind::kVariance: {
      // x.a/y.a carry means; x.b/y.b carry M2 (Chan et al. combine).
      const double nx = static_cast<double>(x.n);
      const double ny = static_cast<double>(y.n);
      const double n = nx + ny;
      const double delta = y.a - x.a;
      out.a = x.a + delta * ny / n;
      out.b = x.b + y.b + delta * delta * nx * ny / n;
      break;
    }
    case DynAggKind::kFirst:
      out = x.ts <= y.ts ? x : y;
      out.n = x.n + y.n;
      break;
    case DynAggKind::kLast:
      out = y.ts >= x.ts ? y : x;
      out.n = x.n + y.n;
      break;
    case DynAggKind::kArgMaxTs:
      // Keep the partial whose value is larger (earliest ts on ties).
      out = (y.a > x.a || (y.a == x.a && y.ts < x.ts)) ? y : x;
      out.n = x.n + y.n;
      break;
  }
  if (kind_ == DynAggKind::kArgMaxTs) return out;
  if (kind_ != DynAggKind::kFirst && kind_ != DynAggKind::kLast) {
    out.ts = std::max(x.ts, y.ts);
  }
  return out;
}

DynPartial DynAggregate::Invert(const DynPartial& whole,
                                const DynPartial& part) const {
  STREAMLINE_CHECK(invertible())
      << "Invert on non-invertible aggregate " << DynAggKindToString(kind_);
  if (!part.valid) return whole;
  DynPartial out = whole;
  out.n = whole.n - part.n;
  out.a = whole.a - part.a;
  out.valid = out.n > 0;
  return out;
}

Value DynAggregate::Lower(const DynPartial& p) const {
  switch (kind_) {
    case DynAggKind::kCount:
      return Value(static_cast<int64_t>(p.n));
    case DynAggKind::kSum:
      return Value(p.valid ? p.a : 0.0);
    case DynAggKind::kMin:
    case DynAggKind::kMax:
    case DynAggKind::kFirst:
    case DynAggKind::kLast:
      return p.valid ? Value(p.a) : Value::Null();
    case DynAggKind::kAvg:
      return p.n == 0 ? Value::Null()
                      : Value(p.a / static_cast<double>(p.n));
    case DynAggKind::kVariance:
      return p.n == 0 ? Value::Null()
                      : Value(p.b / static_cast<double>(p.n));
    case DynAggKind::kArgMaxTs:
      return p.valid ? Value(p.ts) : Value::Null();
  }
  return Value::Null();
}

void DynAggregate::SerializePartial(const DynPartial& p, BinaryWriter* w) {
  w->WriteDouble(p.a);
  w->WriteDouble(p.b);
  w->WriteI64(p.n);
  w->WriteI64(p.ts);
  w->WriteBool(p.valid);
}

Result<DynPartial> DynAggregate::DeserializePartial(BinaryReader* r) {
  DynPartial p;
  auto a = r->ReadDouble();
  if (!a.ok()) return a.status();
  auto b = r->ReadDouble();
  if (!b.ok()) return b.status();
  auto n = r->ReadI64();
  if (!n.ok()) return n.status();
  auto ts = r->ReadI64();
  if (!ts.ok()) return ts.status();
  auto valid = r->ReadBool();
  if (!valid.ok()) return valid.status();
  p.a = *a;
  p.b = *b;
  p.n = *n;
  p.ts = *ts;
  p.valid = *valid;
  return p;
}

}  // namespace streamline
