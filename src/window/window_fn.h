#ifndef STREAMLINE_WINDOW_WINDOW_FN_H_
#define STREAMLINE_WINDOW_WINDOW_FN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "common/time.h"
#include "common/value.h"
#include "window/window.h"

namespace streamline {

/// One window-lifecycle event produced by a WindowFunction.
///
/// Events are emitted ordered by `at`; at equal `at`, kEnd sorts before
/// kBegin (a window [b, t) excludes t while a window starting at t includes
/// it, so ends must be applied first).
struct WindowEvent {
  enum class Kind : uint8_t {
    /// A new window begins at time `at`. Slicing aggregators cut a slice
    /// boundary here. `window` is unused.
    kBegin,
    /// The window `window` is complete (its end is covered by the watermark)
    /// and must fire. `at` equals `window.end` except for data-driven windows
    /// (e.g. count windows) which fire from AfterElement with `at` = the
    /// current element's timestamp.
    kEnd,
  };

  Kind kind;
  Timestamp at;
  Window window;  // valid for kEnd

  static WindowEvent Begin(Timestamp at) {
    return WindowEvent{Kind::kBegin, at, Window{}};
  }
  static WindowEvent End(Timestamp at, Window w) {
    return WindowEvent{Kind::kEnd, at, w};
  }
};

/// Ordered list of window events; output parameter of WindowFunction hooks.
using WindowEvents = std::vector<WindowEvent>;

/// Cutty's user-defined window model: a deterministic function observing the
/// (event-time ordered) stream that declares where windows *begin* and which
/// windows are *complete*. Periodic windows (tumbling/sliding), sessions,
/// count windows, punctuation windows and arbitrary UDWs all implement this
/// interface — that is the paper's claim that the framework covers
/// "non-periodic windows, such as session windows".
///
/// Contract (single instance, one logical stream / one key):
///  * OnElement is called with non-decreasing timestamps, BEFORE the element
///    is aggregated. It appends, in `at`-order: every not-yet-declared begin
///    with begin-time <= ts, and every completed window whose end <= the
///    implied watermark (= ts for an in-order stream).
///  * AfterElement is called AFTER the element was aggregated; data-driven
///    windows that close on the current element (count windows, punctuation
///    closers) emit their kEnd events here.
///  * OnWatermark(wm) declares that all future elements have ts >= wm; the
///    function emits every remaining completed window with end <= wm (and
///    any begins < wm it still owes). A final watermark of kMaxTimestamp
///    flushes everything (used to drain bounded streams).
class WindowFunction {
 public:
  virtual ~WindowFunction() = default;

  /// See class contract. `payload` carries the element for content-sensitive
  /// UDWs (punctuation windows); time-based windows ignore it.
  virtual void OnElement(Timestamp ts, const Value& payload,
                         WindowEvents* out) = 0;

  /// Post-aggregation hook; default: no events.
  virtual void AfterElement(Timestamp ts, const Value& payload,
                            WindowEvents* out) {
    (void)ts;
    (void)payload;
    (void)out;
  }

  /// See class contract.
  virtual void OnWatermark(Timestamp wm, WindowEvents* out) = 0;

  /// Earliest window-begin timestamp still needed by any unfired window.
  /// Slices entirely before the minimum over all queries can be evicted.
  /// Returns kMaxTimestamp when no window is pending.
  virtual Timestamp OldestNeededBegin() const = 0;

  /// Slicer fast path: the earliest future timestamp at which this function
  /// could emit an event. Elements with ts strictly below it may bypass
  /// OnElement/AfterElement entirely -- this is what makes the shared
  /// slicer's per-record cost independent of the number of registered
  /// periodic queries. Data-driven windows (sessions, count, punctuation)
  /// keep the default kMinTimestamp ("always call me").
  ///
  /// Contract for functions that publish a real wakeup (periodic windows):
  /// OldestNeededBegin() must be non-decreasing over the function's
  /// lifetime. The slicer's eviction planner keeps a lazy lower-bound heap
  /// over periodic queries and relies on that monotonicity; always-poll
  /// (kMinTimestamp) functions are re-scanned eagerly and may move freely.
  virtual Timestamp NextWakeup() const { return kMinTimestamp; }

  /// Watermark twin of NextWakeup: the earliest watermark at which this
  /// function could emit an event from OnWatermark. Watermarks below it may
  /// skip OnWatermark. Periodic functions return their next window end
  /// (begins are declared by elements, never by watermarks); data-driven
  /// windows keep the default kMinTimestamp.
  virtual Timestamp NextWatermarkWakeup() const { return kMinTimestamp; }

  /// Fast-forwards a freshly constructed function to a mid-stream attach
  /// point: the stream has already progressed to `ts` and this function is
  /// only responsible for windows that begin strictly after `ts`. Default:
  /// no-op -- data-driven windows initialize lazily from their first
  /// element, which is exactly from-scratch behavior.
  virtual void AttachAt(Timestamp ts) { (void)ts; }

  /// Deep copy with reset state (used to instantiate per-key windowing).
  virtual std::unique_ptr<WindowFunction> Clone() const = 0;

  /// Serializes the mutable progress state (not the configuration) so the
  /// engine can checkpoint windowed operators.
  virtual void SnapshotState(BinaryWriter* w) const = 0;
  /// Restores state written by SnapshotState of the same configuration.
  virtual Status RestoreState(BinaryReader* r) = 0;

  virtual std::string Name() const = 0;
};

/// Periodic windows of `range` length starting every `slide`, aligned to
/// `origin`: [origin + k*slide, origin + k*slide + range). Tumbling windows
/// are the slide == range special case.
class SlidingWindowFn : public WindowFunction {
 public:
  SlidingWindowFn(Duration range, Duration slide, Timestamp origin = 0);

  void OnElement(Timestamp ts, const Value& payload,
                 WindowEvents* out) override;
  void OnWatermark(Timestamp wm, WindowEvents* out) override;
  Timestamp OldestNeededBegin() const override;
  Timestamp NextWakeup() const override;
  Timestamp NextWatermarkWakeup() const override;
  void AttachAt(Timestamp ts) override;
  std::unique_ptr<WindowFunction> Clone() const override;
  void SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  std::string Name() const override;

  Duration range() const { return range_; }
  Duration slide() const { return slide_; }
  Timestamp origin() const { return origin_; }

  /// Smallest begin-grid point strictly greater than `t`.
  Timestamp NextGridPointAfter(Timestamp t) const;

  /// After AttachAt: lowers the first window to fire to
  /// [earliest_begin, earliest_begin + range). The caller (the slicing
  /// aggregator's backfill pass) guarantees `earliest_begin` is a grid
  /// point <= the attach timestamp whose slices are fully intact in the
  /// shared store, so the pre-attach windows produce correct results.
  void BackfillTo(Timestamp earliest_begin);

 private:
  void DeclareBeginsUpTo(Timestamp ts, WindowEvents* out);
  void FireEndsUpTo(Timestamp wm, WindowEvents* out);

  const Duration range_;
  const Duration slide_;
  const Timestamp origin_;
  bool saw_element_ = false;
  Timestamp last_seen_ = 0;   // timestamp of the most recent element
  Timestamp next_begin_ = 0;  // next begin boundary not yet declared
  Timestamp next_end_ = 0;    // end of the next window to fire
};

/// Tumbling windows: [origin + k*size, origin + (k+1)*size).
class TumblingWindowFn : public SlidingWindowFn {
 public:
  explicit TumblingWindowFn(Duration size, Timestamp origin = 0)
      : SlidingWindowFn(size, size, origin) {}
  std::string Name() const override;
};

/// Session windows: a session starts at the first element and extends while
/// consecutive elements are less than `gap` apart; the window is
/// [first, last + gap). The canonical non-periodic window of the paper.
class SessionWindowFn : public WindowFunction {
 public:
  explicit SessionWindowFn(Duration gap);

  void OnElement(Timestamp ts, const Value& payload,
                 WindowEvents* out) override;
  void OnWatermark(Timestamp wm, WindowEvents* out) override;
  Timestamp OldestNeededBegin() const override;
  std::unique_ptr<WindowFunction> Clone() const override;
  void SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  std::string Name() const override;

  Duration gap() const { return gap_; }

 private:
  const Duration gap_;
  bool open_ = false;
  Timestamp session_start_ = 0;
  Timestamp session_last_ = 0;
};

/// Count windows over element arrivals: a window begins every `slide`
/// elements and spans `count` elements; it fires as soon as its last element
/// has been aggregated (AfterElement). Windows are reported as the time span
/// [first_ts, last_ts + 1). Requires slide >= 1 and count >= 1. This is a
/// data-driven deterministic UDW in Cutty's classification.
class CountWindowFn : public WindowFunction {
 public:
  explicit CountWindowFn(uint64_t count, uint64_t slide = 0);

  void OnElement(Timestamp ts, const Value& payload,
                 WindowEvents* out) override;
  void AfterElement(Timestamp ts, const Value& payload,
                    WindowEvents* out) override;
  void OnWatermark(Timestamp wm, WindowEvents* out) override;
  Timestamp OldestNeededBegin() const override;
  std::unique_ptr<WindowFunction> Clone() const override;
  void SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  std::string Name() const override;

 private:
  const uint64_t count_;
  const uint64_t slide_;
  uint64_t seen_ = 0;  // elements observed so far
  // Begin timestamps of open count windows, oldest first, paired with the
  // index of their first element.
  std::vector<std::pair<uint64_t, Timestamp>> open_;
};

/// Punctuation windows: a user predicate over (timestamp, payload) marks
/// elements that start a new window; the previous window ends at the marking
/// element (exclusive). Models content-driven UDWs such as "new window at
/// every session-reset event in the data".
class PunctuationWindowFn : public WindowFunction {
 public:
  using Predicate = std::function<bool(Timestamp, const Value&)>;
  explicit PunctuationWindowFn(Predicate is_punctuation);

  void OnElement(Timestamp ts, const Value& payload,
                 WindowEvents* out) override;
  void OnWatermark(Timestamp wm, WindowEvents* out) override;
  Timestamp OldestNeededBegin() const override;
  std::unique_ptr<WindowFunction> Clone() const override;
  void SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  std::string Name() const override;

 private:
  Predicate pred_;
  bool open_ = false;
  Timestamp window_start_ = 0;
  Timestamp last_ts_ = 0;
};

/// Delta windows (Jain et al. / Flink's DeltaTrigger): a window closes when
/// the payload value drifts at least `delta` away from its value at the
/// window's first element; the drifting element starts the next window.
/// A genuinely content-driven deterministic UDW -- windows exist only in
/// Cutty's generalized model, not in periodic frameworks.
class DeltaWindowFn : public WindowFunction {
 public:
  explicit DeltaWindowFn(double delta);

  void OnElement(Timestamp ts, const Value& payload,
                 WindowEvents* out) override;
  void OnWatermark(Timestamp wm, WindowEvents* out) override;
  Timestamp OldestNeededBegin() const override;
  std::unique_ptr<WindowFunction> Clone() const override;
  void SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  std::string Name() const override;

 private:
  const double delta_;
  bool open_ = false;
  double anchor_ = 0;
  Timestamp window_start_ = 0;
  Timestamp last_ts_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_WINDOW_WINDOW_FN_H_
