#ifndef STREAMLINE_WINDOW_DYN_AGGREGATE_H_
#define STREAMLINE_WINDOW_DYN_AGGREGATE_H_

#include <string>

#include "common/serde.h"
#include "common/time.h"
#include "common/value.h"

namespace streamline {

/// Aggregate kinds available through the dynamic (Value-based) engine API.
enum class DynAggKind : uint8_t {
  kSum = 0,
  kCount = 1,
  kMin = 2,
  kMax = 3,
  kAvg = 4,
  kVariance = 5,
  kFirst = 6,
  kLast = 7,
  /// Timestamp at which the maximum value occurred ("when was the peak").
  kArgMaxTs = 8,
};

std::string_view DynAggKindToString(DynAggKind kind);

/// Fixed-size partial state covering every DynAggKind; cheap to copy and to
/// snapshot. Interpretation of the fields depends on the kind.
struct DynPartial {
  double a = 0;        // sum / min / max / mean / value
  double b = 0;        // m2 (variance)
  int64_t n = 0;       // element count
  Timestamp ts = 0;    // timestamp (first / last)
  bool valid = false;  // has at least one element

  bool operator==(const DynPartial&) const = default;
};

/// Runtime algebraic aggregate over Value fields — the engine-facing twin of
/// the template aggregates in aggregate_fn.h. Stateless: all methods are
/// const and take partials explicitly, so one instance can serve any number
/// of keys/windows.
class DynAggregate {
 public:
  explicit DynAggregate(DynAggKind kind) : kind_(kind) {}

  DynAggKind kind() const { return kind_; }
  bool invertible() const {
    return kind_ == DynAggKind::kSum || kind_ == DynAggKind::kCount ||
           kind_ == DynAggKind::kAvg;
  }

  DynPartial Identity() const { return DynPartial{}; }
  /// Lifts one element; `v` must be numeric for numeric kinds (kCount
  /// accepts anything).
  DynPartial Lift(const Value& v, Timestamp ts) const;
  DynPartial Combine(const DynPartial& x, const DynPartial& y) const;
  /// Only valid when invertible(): removes `part` from `whole`.
  DynPartial Invert(const DynPartial& whole, const DynPartial& part) const;
  /// Final result; Null for an empty partial of min/max/first/last.
  Value Lower(const DynPartial& p) const;

  static void SerializePartial(const DynPartial& p, BinaryWriter* w);
  static Result<DynPartial> DeserializePartial(BinaryReader* r);

 private:
  DynAggKind kind_;
};

}  // namespace streamline

#endif  // STREAMLINE_WINDOW_DYN_AGGREGATE_H_
