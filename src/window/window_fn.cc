#include "window/window_fn.h"

#include <algorithm>

#include "common/logging.h"

namespace streamline {
namespace {

// Floor division for possibly-negative numerators (C++ truncates toward 0).
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

// Smallest multiple-of-`step` offset from `origin` that is strictly greater
// than `t`.
Timestamp AlignAbove(Timestamp t, Timestamp origin, Duration step) {
  return origin + (FloorDiv(t - origin, step) + 1) * step;
}

}  // namespace

// ---------------------------------------------------------------------------
// SlidingWindowFn

SlidingWindowFn::SlidingWindowFn(Duration range, Duration slide,
                                 Timestamp origin)
    : range_(range), slide_(slide), origin_(origin) {
  STREAMLINE_CHECK_GT(range, 0);
  STREAMLINE_CHECK_GT(slide, 0);
}

void SlidingWindowFn::DeclareBeginsUpTo(Timestamp ts, WindowEvents* out) {
  // Windows beginning at b <= ts - range_ that have not been declared yet
  // can never contain this or any future element; skip them in O(1).
  const Timestamp min_live_begin = AlignAbove(ts - range_, origin_, slide_);
  if (min_live_begin > next_begin_) next_begin_ = min_live_begin;
  while (next_begin_ <= ts) {
    out->push_back(WindowEvent::Begin(next_begin_));
    next_begin_ += slide_;
  }
}

void SlidingWindowFn::FireEndsUpTo(Timestamp wm, WindowEvents* out) {
  if (!saw_element_) return;
  while (next_end_ <= wm) {
    const Timestamp b = next_end_ - range_;
    if (b > last_seen_) {
      // This and every later window ending <= wm has begin > last element,
      // so it is empty forever (future elements have ts >= wm >= its end).
      // Jump past wm in O(1) instead of firing empties.
      if (wm >= kMaxTimestamp - range_) {
        next_end_ = kMaxTimestamp;  // saturate instead of overflowing
      } else {
        const Timestamp jump =
            AlignAbove(wm - range_, origin_, slide_) + range_;  // end > wm
        if (jump > next_end_) next_end_ = jump;
      }
      break;
    }
    out->push_back(WindowEvent::End(next_end_, Window{b, next_end_}));
    next_end_ += slide_;
  }
}

void SlidingWindowFn::OnElement(Timestamp ts, const Value& payload,
                                WindowEvents* out) {
  (void)payload;
  if (!saw_element_) {
    saw_element_ = true;
    last_seen_ = ts;
    // First live window: smallest aligned begin with begin > ts - range.
    next_begin_ = AlignAbove(ts - range_, origin_, slide_);
    next_end_ = next_begin_ + range_;
    DeclareBeginsUpTo(ts, out);
    return;
  }
  // The element's arrival implies watermark == ts: fire complete windows
  // first (their content excludes this element), then declare new begins.
  // Ends and begins are emitted in `at` order with ends first on ties.
  WindowEvents ends;
  WindowEvents begins;
  FireEndsUpTo(ts, &ends);
  DeclareBeginsUpTo(ts, &begins);
  size_t i = 0;
  size_t j = 0;
  while (i < ends.size() || j < begins.size()) {
    if (j >= begins.size() ||
        (i < ends.size() && ends[i].at <= begins[j].at)) {
      out->push_back(ends[i++]);
    } else {
      out->push_back(begins[j++]);
    }
  }
  last_seen_ = ts;
}

void SlidingWindowFn::OnWatermark(Timestamp wm, WindowEvents* out) {
  // Begins are declared lazily by the elements themselves; a watermark can
  // only complete windows.
  FireEndsUpTo(wm, out);
}

Timestamp SlidingWindowFn::OldestNeededBegin() const {
  if (!saw_element_) return kMaxTimestamp;
  if (next_end_ == kMaxTimestamp) return kMaxTimestamp;
  return next_end_ - range_;
}

Timestamp SlidingWindowFn::NextWakeup() const {
  // The function must see the first element; afterwards it only acts at
  // begin boundaries and window ends. Skipped elements are sound: any
  // element at/after a begin boundary forces a wakeup at that element, so
  // last_seen_ >= begin holds for every non-empty window (the condition
  // FireEndsUpTo relies on).
  if (!saw_element_) return kMinTimestamp;
  return std::min(next_begin_, next_end_);
}

Timestamp SlidingWindowFn::NextWatermarkWakeup() const {
  // Watermarks only complete windows (begins are element-declared), and
  // before the first element there is nothing to complete.
  if (!saw_element_) return kMaxTimestamp;
  return next_end_;
}

Timestamp SlidingWindowFn::NextGridPointAfter(Timestamp t) const {
  return AlignAbove(t, origin_, slide_);
}

void SlidingWindowFn::AttachAt(Timestamp ts) {
  STREAMLINE_CHECK(!saw_element_) << "AttachAt on an already-running window";
  // Behave as if the stream up to `ts` was observed but owes us nothing:
  // the first declared begin (and hence the first slice cut and the first
  // fired window) lies strictly after the attach point, so no out-of-order
  // cut is ever appended to the shared slice store.
  saw_element_ = true;
  last_seen_ = ts;
  next_begin_ = AlignAbove(ts, origin_, slide_);
  next_end_ = next_begin_ + range_;
}

void SlidingWindowFn::BackfillTo(Timestamp earliest_begin) {
  STREAMLINE_CHECK(saw_element_);
  STREAMLINE_DCHECK((earliest_begin - origin_) % slide_ == 0);
  const Timestamp first_end = earliest_begin + range_;
  if (first_end < next_end_) next_end_ = first_end;
}

std::unique_ptr<WindowFunction> SlidingWindowFn::Clone() const {
  return std::make_unique<SlidingWindowFn>(range_, slide_, origin_);
}

void SlidingWindowFn::SnapshotState(BinaryWriter* w) const {
  w->WriteBool(saw_element_);
  w->WriteI64(last_seen_);
  w->WriteI64(next_begin_);
  w->WriteI64(next_end_);
}

Status SlidingWindowFn::RestoreState(BinaryReader* r) {
  auto saw = r->ReadBool();
  if (!saw.ok()) return saw.status();
  auto last = r->ReadI64();
  if (!last.ok()) return last.status();
  auto begin = r->ReadI64();
  if (!begin.ok()) return begin.status();
  auto end = r->ReadI64();
  if (!end.ok()) return end.status();
  saw_element_ = *saw;
  last_seen_ = *last;
  next_begin_ = *begin;
  next_end_ = *end;
  return Status::Ok();
}

std::string SlidingWindowFn::Name() const {
  return "sliding(range=" + std::to_string(range_) +
         ",slide=" + std::to_string(slide_) + ")";
}

std::string TumblingWindowFn::Name() const {
  return "tumbling(size=" + std::to_string(range()) + ")";
}

// ---------------------------------------------------------------------------
// SessionWindowFn

SessionWindowFn::SessionWindowFn(Duration gap) : gap_(gap) {
  STREAMLINE_CHECK_GT(gap, 0);
}

void SessionWindowFn::OnElement(Timestamp ts, const Value& payload,
                                WindowEvents* out) {
  (void)payload;
  if (!open_) {
    open_ = true;
    session_start_ = ts;
    session_last_ = ts;
    out->push_back(WindowEvent::Begin(ts));
    return;
  }
  if (ts - session_last_ > gap_) {
    // The previous session is complete: this element is more than `gap`
    // after its last event, and the stream is in order.
    const Window w{session_start_, session_last_ + gap_};
    out->push_back(WindowEvent::End(w.end, w));
    out->push_back(WindowEvent::Begin(ts));
    session_start_ = ts;
  }
  session_last_ = ts;
}

void SessionWindowFn::OnWatermark(Timestamp wm, WindowEvents* out) {
  if (open_ && (wm == kMaxTimestamp || wm - session_last_ > gap_)) {
    const Window w{session_start_, session_last_ + gap_};
    out->push_back(WindowEvent::End(w.end, w));
    open_ = false;
  }
}

Timestamp SessionWindowFn::OldestNeededBegin() const {
  return open_ ? session_start_ : kMaxTimestamp;
}

std::unique_ptr<WindowFunction> SessionWindowFn::Clone() const {
  return std::make_unique<SessionWindowFn>(gap_);
}

void SessionWindowFn::SnapshotState(BinaryWriter* w) const {
  w->WriteBool(open_);
  w->WriteI64(session_start_);
  w->WriteI64(session_last_);
}

Status SessionWindowFn::RestoreState(BinaryReader* r) {
  auto open = r->ReadBool();
  if (!open.ok()) return open.status();
  auto start = r->ReadI64();
  if (!start.ok()) return start.status();
  auto last = r->ReadI64();
  if (!last.ok()) return last.status();
  open_ = *open;
  session_start_ = *start;
  session_last_ = *last;
  return Status::Ok();
}

std::string SessionWindowFn::Name() const {
  return "session(gap=" + std::to_string(gap_) + ")";
}

// ---------------------------------------------------------------------------
// CountWindowFn

CountWindowFn::CountWindowFn(uint64_t count, uint64_t slide)
    : count_(count), slide_(slide == 0 ? count : slide) {
  STREAMLINE_CHECK_GT(count_, 0u);
  STREAMLINE_CHECK_GT(slide_, 0u);
}

void CountWindowFn::OnElement(Timestamp ts, const Value& payload,
                              WindowEvents* out) {
  (void)payload;
  if (seen_ % slide_ == 0) {
    open_.emplace_back(seen_, ts);
    out->push_back(WindowEvent::Begin(ts));
  }
}

void CountWindowFn::AfterElement(Timestamp ts, const Value& payload,
                                 WindowEvents* out) {
  (void)payload;
  // This element is element number `seen_`; windows whose count-th element
  // it is fire now (content = everything since their begin, inclusive).
  while (!open_.empty() && seen_ - open_.front().first + 1 >= count_) {
    const Window w{open_.front().second, ts + 1};
    out->push_back(WindowEvent::End(ts, w));
    open_.erase(open_.begin());
  }
  ++seen_;
}

void CountWindowFn::OnWatermark(Timestamp wm, WindowEvents* out) {
  // Count windows complete on data, not on time; incomplete windows at end
  // of stream are discarded (standard semantics).
  (void)wm;
  (void)out;
}

Timestamp CountWindowFn::OldestNeededBegin() const {
  return open_.empty() ? kMaxTimestamp : open_.front().second;
}

std::unique_ptr<WindowFunction> CountWindowFn::Clone() const {
  return std::make_unique<CountWindowFn>(count_, slide_);
}

void CountWindowFn::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(seen_);
  w->WriteU64(open_.size());
  for (const auto& [first_index, begin_ts] : open_) {
    w->WriteU64(first_index);
    w->WriteI64(begin_ts);
  }
}

Status CountWindowFn::RestoreState(BinaryReader* r) {
  auto seen = r->ReadU64();
  if (!seen.ok()) return seen.status();
  auto n = r->ReadU64();
  if (!n.ok()) return n.status();
  std::vector<std::pair<uint64_t, Timestamp>> open;
  for (uint64_t i = 0; i < *n; ++i) {
    auto idx = r->ReadU64();
    if (!idx.ok()) return idx.status();
    auto ts = r->ReadI64();
    if (!ts.ok()) return ts.status();
    open.emplace_back(*idx, *ts);
  }
  seen_ = *seen;
  open_ = std::move(open);
  return Status::Ok();
}

std::string CountWindowFn::Name() const {
  return "count(count=" + std::to_string(count_) +
         ",slide=" + std::to_string(slide_) + ")";
}

// ---------------------------------------------------------------------------
// PunctuationWindowFn

PunctuationWindowFn::PunctuationWindowFn(Predicate is_punctuation)
    : pred_(std::move(is_punctuation)) {
  STREAMLINE_CHECK(pred_ != nullptr);
}

void PunctuationWindowFn::OnElement(Timestamp ts, const Value& payload,
                                    WindowEvents* out) {
  if (!open_) {
    open_ = true;
    window_start_ = ts;
    out->push_back(WindowEvent::Begin(ts));
  } else if (pred_(ts, payload)) {
    // The punctuation element closes the running window (exclusive) and
    // starts the next one.
    const Window w{window_start_, ts};
    out->push_back(WindowEvent::End(ts, w));
    out->push_back(WindowEvent::Begin(ts));
    window_start_ = ts;
  }
  last_ts_ = ts;
}

void PunctuationWindowFn::OnWatermark(Timestamp wm, WindowEvents* out) {
  // Only the end of the stream can close a punctuation window early; a
  // punctuation may still arrive for any finite watermark.
  if (open_ && wm == kMaxTimestamp) {
    const Window w{window_start_, last_ts_ + 1};
    out->push_back(WindowEvent::End(w.end, w));
    open_ = false;
  }
}

Timestamp PunctuationWindowFn::OldestNeededBegin() const {
  return open_ ? window_start_ : kMaxTimestamp;
}

std::unique_ptr<WindowFunction> PunctuationWindowFn::Clone() const {
  return std::make_unique<PunctuationWindowFn>(pred_);
}

void PunctuationWindowFn::SnapshotState(BinaryWriter* w) const {
  w->WriteBool(open_);
  w->WriteI64(window_start_);
  w->WriteI64(last_ts_);
}

Status PunctuationWindowFn::RestoreState(BinaryReader* r) {
  auto open = r->ReadBool();
  if (!open.ok()) return open.status();
  auto start = r->ReadI64();
  if (!start.ok()) return start.status();
  auto last = r->ReadI64();
  if (!last.ok()) return last.status();
  open_ = *open;
  window_start_ = *start;
  last_ts_ = *last;
  return Status::Ok();
}

std::string PunctuationWindowFn::Name() const { return "punctuation"; }

// ---------------------------------------------------------------------------
// DeltaWindowFn

DeltaWindowFn::DeltaWindowFn(double delta) : delta_(delta) {
  STREAMLINE_CHECK_GT(delta, 0.0);
}

void DeltaWindowFn::OnElement(Timestamp ts, const Value& payload,
                              WindowEvents* out) {
  const double v = payload.ToDouble();
  if (!open_) {
    open_ = true;
    window_start_ = ts;
    anchor_ = v;
    out->push_back(WindowEvent::Begin(ts));
  } else if (v >= anchor_ + delta_ || v <= anchor_ - delta_) {
    // The drifting element closes the running window (exclusive) and
    // anchors the next one.
    out->push_back(WindowEvent::End(ts, Window{window_start_, ts}));
    out->push_back(WindowEvent::Begin(ts));
    window_start_ = ts;
    anchor_ = v;
  }
  last_ts_ = ts;
}

void DeltaWindowFn::OnWatermark(Timestamp wm, WindowEvents* out) {
  // Only end-of-stream closes a delta window early: a drift may still
  // arrive at any finite watermark.
  if (open_ && wm == kMaxTimestamp) {
    out->push_back(
        WindowEvent::End(last_ts_ + 1, Window{window_start_, last_ts_ + 1}));
    open_ = false;
  }
}

Timestamp DeltaWindowFn::OldestNeededBegin() const {
  return open_ ? window_start_ : kMaxTimestamp;
}

std::unique_ptr<WindowFunction> DeltaWindowFn::Clone() const {
  return std::make_unique<DeltaWindowFn>(delta_);
}

void DeltaWindowFn::SnapshotState(BinaryWriter* w) const {
  w->WriteBool(open_);
  w->WriteDouble(anchor_);
  w->WriteI64(window_start_);
  w->WriteI64(last_ts_);
}

Status DeltaWindowFn::RestoreState(BinaryReader* r) {
  auto open = r->ReadBool();
  if (!open.ok()) return open.status();
  auto anchor = r->ReadDouble();
  if (!anchor.ok()) return anchor.status();
  auto start = r->ReadI64();
  if (!start.ok()) return start.status();
  auto last = r->ReadI64();
  if (!last.ok()) return last.status();
  open_ = *open;
  anchor_ = *anchor;
  window_start_ = *start;
  last_ts_ = *last;
  return Status::Ok();
}

std::string DeltaWindowFn::Name() const {
  return "delta(" + std::to_string(delta_) + ")";
}

}  // namespace streamline
