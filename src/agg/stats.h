#ifndef STREAMLINE_AGG_STATS_H_
#define STREAMLINE_AGG_STATS_H_

#include <cstdint>
#include <string>

namespace streamline {

/// Work counters every window-aggregation technique maintains. These are the
/// quantities Cutty's evaluation reasons about: how many partial-aggregate
/// updates happen per record, how many combine operations fires cost, and
/// how much state is held.
struct AggStats {
  uint64_t elements = 0;         // records processed
  uint64_t partial_updates = 0;  // per-record aggregation ops (lift+merge)
  uint64_t combine_ops = 0;      // combines performed by fires/stores
  uint64_t fires = 0;            // window results emitted
  uint64_t slices_created = 0;   // slices/panes/buckets materialized
  uint64_t peak_stored = 0;      // max partials (or buffered tuples) held

  /// Mean aggregation operations (updates + combines) per input record —
  /// the headline metric of aggregate sharing.
  double OpsPerRecord() const {
    return elements == 0
               ? 0.0
               : static_cast<double>(partial_updates + combine_ops) /
                     static_cast<double>(elements);
  }

  std::string ToString() const {
    return "elements=" + std::to_string(elements) +
           " partial_updates=" + std::to_string(partial_updates) +
           " combine_ops=" + std::to_string(combine_ops) +
           " fires=" + std::to_string(fires) +
           " slices=" + std::to_string(slices_created) +
           " peak_stored=" + std::to_string(peak_stored);
  }
};

}  // namespace streamline

#endif  // STREAMLINE_AGG_STATS_H_
