#ifndef STREAMLINE_AGG_SLICING_AGGREGATOR_H_
#define STREAMLINE_AGG_SLICING_AGGREGATOR_H_

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregator.h"
#include "agg/slice_store.h"
#include "common/logging.h"
#include "window/aggregate_fn.h"

namespace streamline {

/// Cutty's aggregate-sharing aggregator (Carbone et al., CIKM 2016).
///
/// Core idea: cut the stream into *slices* at every window begin declared by
/// any registered query. Then (a) each record updates exactly ONE running
/// partial — the open slice — regardless of how many windows overlap it, and
/// (b) a window result is the in-order combination of the stored slice
/// partials it spans plus the open slice. The slice store is shared by all
/// queries, which is the paper's "multi query aggregation sharing"; because
/// window begins/ends come from arbitrary deterministic WindowFunctions,
/// non-periodic windows (sessions, punctuations, count windows) share too.
///
/// Store choice:
///   * FlatFatStore — O(log n) fires, any aggregate (default).
///   * LinearStore  — O(slices-per-window) fires, "lazy" variant.
///   * PrefixStore  — O(1) fires, invertible aggregates only.
template <typename Agg, typename Store = FlatFatStore<Agg>>
class SlicingAggregator : public WindowAggregator<Agg> {
 public:
  using Input = typename Agg::Input;
  using Partial = typename Agg::Partial;
  using Output = typename Agg::Output;
  using ResultCallback = typename WindowAggregator<Agg>::ResultCallback;

  struct Options {
    /// Close a slice before every element (one leaf per tuple). Used to
    /// emulate per-tuple aggregate trees (B-Int) for comparison.
    bool slice_per_element = false;
    /// Run eviction every this many elements.
    uint64_t eviction_period = 128;
    /// Ablation: poll every window function on every element instead of
    /// skipping periodic functions between their published boundaries.
    bool disable_wakeup_fastpath = false;
  };

  explicit SlicingAggregator(Agg agg = Agg(), Options options = Options())
      : agg_(std::move(agg)),
        options_(options),
        store_(agg_),
        open_partial_(agg_.Identity()) {}

  size_t AddQuery(std::unique_ptr<WindowFunction> wf,
                  ResultCallback cb) override {
    STREAMLINE_CHECK_EQ(stats_.elements, 0u)
        << "queries must be registered before the first element";
    queries_.push_back(QueryState{std::move(wf), std::move(cb)});
    return queries_.size() - 1;
  }

  /// Registers a window function whose *begins* add slice boundaries but
  /// whose window completions are ignored. Used to emulate the extra cut
  /// points of Pairs (window ends) and Panes (gcd grid).
  void AddBoundaryGenerator(std::unique_ptr<WindowFunction> wf) {
    STREAMLINE_CHECK_EQ(stats_.elements, 0u);
    boundary_gens_.push_back(std::move(wf));
  }

  void ClearBoundaryGenerators() {
    STREAMLINE_CHECK_EQ(stats_.elements, 0u);
    boundary_gens_.clear();
  }

  using WindowAggregator<Agg>::OnElement;

  void OnElement(Timestamp ts, const Input& value,
                 const Value& payload) override {
    STREAMLINE_DCHECK(stats_.elements == 0 || ts >= last_ts_);
    last_ts_ = ts;

    // 1) Collect window events, merge them in (at, end-before-begin) order
    //    and apply them. All of this happens BEFORE the element is
    //    aggregated: completed windows must not include it, and any begin
    //    <= ts must cut its slice first.
    //
    //    Fast path: periodic window functions publish their next boundary
    //    (NextWakeup); between boundaries only data-driven functions are
    //    consulted, so the slicer's per-record cost does not grow with the
    //    number of registered periodic queries.
    if (!wakeup_valid_ || ts >= wakeup_threshold_) {
      CollectElementEvents(ts, payload);
      ProcessEvents();
      RecomputeWakeup();
    } else if (!always_poll_queries_.empty() ||
               !always_poll_gens_.empty()) {
      CollectElementEventsSubset(ts, payload);
      ProcessEvents();
    }

    if (options_.slice_per_element && has_open_data_) {
      CloseSliceAt(ts);
    }

    // 2) The single per-record aggregation: fold the element into the open
    //    slice. This is the paper's one-partial-update-per-record property.
    if (!has_open_slice_) {
      // No query declared a begin <= ts (possible with slide > range
      // sampling windows); open an implicit slice so the element is kept
      // until eviction decides otherwise.
      has_open_slice_ = true;
      open_start_ = ts;
    }
    open_partial_ = agg_.Combine(open_partial_, agg_.Lift(value));
    has_open_data_ = true;
    ++stats_.partial_updates;
    ++stats_.elements;

    // 3) Data-driven completions (count windows) fire after aggregation so
    //    the current element is included. Only data-driven functions have
    //    AfterElement events.
    if (!always_poll_queries_.empty() || !wakeup_valid_) {
      CollectAfterElementEvents(ts, payload);
      ProcessEvents();
    }

    if (stats_.elements % options_.eviction_period == 0) Evict();
    UpdatePeak();
  }

  /// Batch entry point. Elements strictly below the published wakeup
  /// threshold cannot produce window events (no begins, no ends, no slice
  /// cuts), so a whole run of them folds into the open slice with one
  /// contiguous AggFoldSpan kernel call -- same left-to-right association as
  /// per-element Combine, so results are bit-identical. Elements at or past
  /// the threshold (and all elements when a data-driven query is registered
  /// or the slicer emulates per-tuple slices) fall back to OnElement.
  void OnElements(const Timestamp* ts, const Input* values,
                  size_t n) override {
    size_t i = 0;
    while (i < n) {
      const bool fast =
          wakeup_valid_ && !options_.slice_per_element &&
          always_poll_queries_.empty() && always_poll_gens_.empty() &&
          ts[i] < wakeup_threshold_;
      if (!fast) {
        OnElement(ts[i], values[i], Value());
        ++i;
        continue;
      }
      size_t j = i + 1;
      while (j < n && ts[j] < wakeup_threshold_) ++j;
      STREAMLINE_DCHECK(stats_.elements == 0 || ts[i] >= last_ts_);
      if (!has_open_slice_) {
        has_open_slice_ = true;
        open_start_ = ts[i];
      }
      AggFoldSpan(agg_, &open_partial_, values + i, j - i);
      has_open_data_ = true;
      last_ts_ = ts[j - 1];
      const uint64_t before = stats_.elements;
      stats_.elements += j - i;
      stats_.partial_updates += j - i;
      // Same eviction cadence as per-element: evict iff the run crossed an
      // eviction-period boundary (Evict is idempotent while no window
      // events intervene, so once per run equals once per crossing).
      if (before / options_.eviction_period !=
          stats_.elements / options_.eviction_period) {
        Evict();
      }
      UpdatePeak();
      i = j;
    }
  }

  void OnWatermark(Timestamp wm) override {
    events_.clear();
    for (size_t q = 0; q < queries_.size(); ++q) {
      scratch_.clear();
      queries_[q].wf->OnWatermark(wm, &scratch_);
      for (const WindowEvent& e : scratch_) {
        events_.push_back(TaggedEvent{e, q, /*boundary_only=*/false});
      }
    }
    for (auto& gen : boundary_gens_) {
      scratch_.clear();
      gen->OnWatermark(wm, &scratch_);
      // Watermarks produce no begins; nothing to keep from generators.
    }
    SortEvents();
    ProcessEvents();
    Evict();
    UpdatePeak();
    RecomputeWakeup();
  }

  const AggStats& stats() const override {
    // Fold store-side combines into the reported counters.
    cached_stats_ = stats_;
    cached_stats_.combine_ops = fire_combine_ops_ + store_.combine_ops();
    return cached_stats_;
  }

  std::string name() const override {
    return options_.slice_per_element ? "slicing(per-tuple)" : "cutty";
  }

  /// Number of slices currently held in the shared store.
  size_t stored_slices() const { return store_.size(); }

  /// Serializes the full aggregation state (open slice, per-query window
  /// progress, shared store, counters) for engine checkpoints.
  /// `ser(partial, writer)` encodes one Partial.
  template <typename SerFn>
  void Snapshot(BinaryWriter* w, const SerFn& ser) const {
    w->WriteBool(has_open_slice_);
    w->WriteBool(has_open_data_);
    w->WriteI64(open_start_);
    ser(open_partial_, w);
    w->WriteI64(last_ts_);
    w->WriteU64(queries_.size());
    for (const QueryState& q : queries_) q.wf->SnapshotState(w);
    w->WriteU64(boundary_gens_.size());
    for (const auto& g : boundary_gens_) g->SnapshotState(w);
    store_.Snapshot(w, ser);
    w->WriteU64(stats_.elements);
    w->WriteU64(stats_.partial_updates);
    w->WriteU64(stats_.fires);
    w->WriteU64(stats_.slices_created);
    w->WriteU64(stats_.peak_stored);
    w->WriteU64(fire_combine_ops_);
  }

  /// Restores a snapshot taken by an identically configured aggregator
  /// (same queries, same boundary generators, same store type).
  template <typename DeFn>
  Status Restore(BinaryReader* r, const DeFn& de) {
    auto open_slice = r->ReadBool();
    if (!open_slice.ok()) return open_slice.status();
    auto open_data = r->ReadBool();
    if (!open_data.ok()) return open_data.status();
    auto open_start = r->ReadI64();
    if (!open_start.ok()) return open_start.status();
    auto open_partial = de(r);
    if (!open_partial.ok()) return open_partial.status();
    auto last_ts = r->ReadI64();
    if (!last_ts.ok()) return last_ts.status();
    auto nq = r->ReadU64();
    if (!nq.ok()) return nq.status();
    if (*nq != queries_.size()) {
      return Status::FailedPrecondition(
          "snapshot has " + std::to_string(*nq) + " queries, aggregator has " +
          std::to_string(queries_.size()));
    }
    for (QueryState& q : queries_) {
      STREAMLINE_RETURN_IF_ERROR(q.wf->RestoreState(r));
    }
    auto ng = r->ReadU64();
    if (!ng.ok()) return ng.status();
    if (*ng != boundary_gens_.size()) {
      return Status::FailedPrecondition("boundary generator count mismatch");
    }
    for (auto& g : boundary_gens_) {
      STREAMLINE_RETURN_IF_ERROR(g->RestoreState(r));
    }
    STREAMLINE_RETURN_IF_ERROR(store_.Restore(r, de));
    has_open_slice_ = *open_slice;
    has_open_data_ = *open_data;
    open_start_ = *open_start;
    open_partial_ = std::move(*open_partial);
    last_ts_ = *last_ts;
    auto read_u64 = [&](uint64_t* out) -> Status {
      auto v = r->ReadU64();
      if (!v.ok()) return v.status();
      *out = *v;
      return Status::Ok();
    };
    STREAMLINE_RETURN_IF_ERROR(read_u64(&stats_.elements));
    STREAMLINE_RETURN_IF_ERROR(read_u64(&stats_.partial_updates));
    STREAMLINE_RETURN_IF_ERROR(read_u64(&stats_.fires));
    STREAMLINE_RETURN_IF_ERROR(read_u64(&stats_.slices_created));
    STREAMLINE_RETURN_IF_ERROR(read_u64(&stats_.peak_stored));
    STREAMLINE_RETURN_IF_ERROR(read_u64(&fire_combine_ops_));
    wakeup_valid_ = false;  // recomputed on the next element
    return Status::Ok();
  }

 protected:
  const Agg& agg() const { return agg_; }

 private:
  struct QueryState {
    std::unique_ptr<WindowFunction> wf;
    ResultCallback cb;
  };

  struct TaggedEvent {
    WindowEvent event;
    size_t query;
    bool boundary_only;
  };

  void CollectElementEvents(Timestamp ts, const Value& payload) {
    events_.clear();
    for (size_t q = 0; q < queries_.size(); ++q) {
      scratch_.clear();
      queries_[q].wf->OnElement(ts, payload, &scratch_);
      for (const WindowEvent& e : scratch_) {
        events_.push_back(TaggedEvent{e, q, false});
      }
    }
    for (auto& gen : boundary_gens_) {
      scratch_.clear();
      gen->OnElement(ts, payload, &scratch_);
      for (const WindowEvent& e : scratch_) {
        if (e.kind == WindowEvent::Kind::kBegin) {
          events_.push_back(TaggedEvent{e, 0, true});
        }
      }
    }
    SortEvents();
  }

  void CollectAfterElementEvents(Timestamp ts, const Value& payload) {
    events_.clear();
    if (wakeup_valid_) {
      // Only data-driven functions produce AfterElement events.
      for (size_t q : always_poll_queries_) {
        scratch_.clear();
        queries_[q].wf->AfterElement(ts, payload, &scratch_);
        for (const WindowEvent& e : scratch_) {
          events_.push_back(TaggedEvent{e, q, false});
        }
      }
    } else {
      for (size_t q = 0; q < queries_.size(); ++q) {
        scratch_.clear();
        queries_[q].wf->AfterElement(ts, payload, &scratch_);
        for (const WindowEvent& e : scratch_) {
          events_.push_back(TaggedEvent{e, q, false});
        }
      }
    }
    SortEvents();
  }

  // Polls only the data-driven ("always poll") functions; periodic ones are
  // guaranteed to have no events before wakeup_threshold_.
  void CollectElementEventsSubset(Timestamp ts, const Value& payload) {
    events_.clear();
    for (size_t q : always_poll_queries_) {
      scratch_.clear();
      queries_[q].wf->OnElement(ts, payload, &scratch_);
      for (const WindowEvent& e : scratch_) {
        events_.push_back(TaggedEvent{e, q, false});
      }
    }
    for (size_t g : always_poll_gens_) {
      scratch_.clear();
      boundary_gens_[g]->OnElement(ts, payload, &scratch_);
      for (const WindowEvent& e : scratch_) {
        if (e.kind == WindowEvent::Kind::kBegin) {
          events_.push_back(TaggedEvent{e, 0, true});
        }
      }
    }
    SortEvents();
  }

  void RecomputeWakeup() {
    if (options_.disable_wakeup_fastpath) return;  // stay on the slow path
    wakeup_threshold_ = kMaxTimestamp;
    always_poll_queries_.clear();
    always_poll_gens_.clear();
    for (size_t q = 0; q < queries_.size(); ++q) {
      const Timestamp w = queries_[q].wf->NextWakeup();
      if (w == kMinTimestamp) {
        always_poll_queries_.push_back(q);
      } else {
        wakeup_threshold_ = std::min(wakeup_threshold_, w);
      }
    }
    for (size_t g = 0; g < boundary_gens_.size(); ++g) {
      const Timestamp w = boundary_gens_[g]->NextWakeup();
      if (w == kMinTimestamp) {
        always_poll_gens_.push_back(g);
      } else {
        wakeup_threshold_ = std::min(wakeup_threshold_, w);
      }
    }
    wakeup_valid_ = true;
  }

  void SortEvents() {
    if (events_.size() < 2) return;
    std::stable_sort(events_.begin(), events_.end(),
                     [](const TaggedEvent& a, const TaggedEvent& b) {
                       if (a.event.at != b.event.at) {
                         return a.event.at < b.event.at;
                       }
                       // Ends before begins at the same instant.
                       return a.event.kind == WindowEvent::Kind::kEnd &&
                              b.event.kind == WindowEvent::Kind::kBegin;
                     });
  }

  void ProcessEvents() {
    for (const TaggedEvent& te : events_) {
      if (te.event.kind == WindowEvent::Kind::kBegin) {
        CloseSliceAt(te.event.at);
      } else if (!te.boundary_only) {
        Fire(te.query, te.event.window);
      }
    }
    events_.clear();
  }

  // Cuts a slice boundary at time `at`: pushes the open slice (if it holds
  // data) into the shared store and opens a fresh slice starting at `at`.
  void CloseSliceAt(Timestamp at) {
    if (has_open_slice_ && at == open_start_ && !has_open_data_) {
      return;  // duplicate boundary from another query
    }
    if (has_open_slice_ && has_open_data_) {
      store_.Append(open_start_, std::move(open_partial_));
      open_partial_ = agg_.Identity();
      ++stats_.slices_created;
    }
    has_open_slice_ = true;
    has_open_data_ = false;
    open_start_ = at;
  }

  void Fire(size_t query, const Window& w) {
    const size_t i = store_.LowerBound(w.start);
    const size_t j = store_.LowerBound(w.end);
    Partial result = store_.RangeCombine(i, j);
    if (has_open_slice_ && has_open_data_ && open_start_ < w.end &&
        open_start_ >= w.start) {
      result = agg_.Combine(result, open_partial_);
      ++fire_combine_ops_;
    }
    ++stats_.fires;
    if (queries_[query].cb) {
      queries_[query].cb(query, w, agg_.Lower(result));
    }
  }

  void Evict() {
    Timestamp needed = kMaxTimestamp;
    for (const QueryState& q : queries_) {
      needed = std::min(needed, q.wf->OldestNeededBegin());
    }
    if (needed == kMaxTimestamp) {
      // No pending window: everything stored is garbage.
      store_.EvictBefore(store_.EndIndex());
      return;
    }
    store_.EvictBefore(store_.LowerBound(needed));
  }

  void UpdatePeak() {
    stats_.peak_stored =
        std::max<uint64_t>(stats_.peak_stored, store_.size());
  }

  Agg agg_;
  Options options_;
  Store store_;
  std::vector<QueryState> queries_;
  std::vector<std::unique_ptr<WindowFunction>> boundary_gens_;

  bool has_open_slice_ = false;
  bool has_open_data_ = false;
  Timestamp open_start_ = 0;
  Partial open_partial_;
  Timestamp last_ts_ = kMinTimestamp;

  // Slicer fast path (see OnElement).
  bool wakeup_valid_ = false;
  Timestamp wakeup_threshold_ = kMinTimestamp;
  std::vector<size_t> always_poll_queries_;
  std::vector<size_t> always_poll_gens_;

  WindowEvents scratch_;
  std::vector<TaggedEvent> events_;
  AggStats stats_;
  mutable AggStats cached_stats_;
  uint64_t fire_combine_ops_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_AGG_SLICING_AGGREGATOR_H_
