#ifndef STREAMLINE_AGG_SLICING_AGGREGATOR_H_
#define STREAMLINE_AGG_SLICING_AGGREGATOR_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregator.h"
#include "agg/slice_store.h"
#include "common/logging.h"
#include "window/aggregate_fn.h"

namespace streamline {

/// Cutty's aggregate-sharing aggregator (Carbone et al., CIKM 2016).
///
/// Core idea: cut the stream into *slices* at every window begin declared by
/// any registered query. Then (a) each record updates exactly ONE running
/// partial — the open slice — regardless of how many windows overlap it, and
/// (b) a window result is the in-order combination of the stored slice
/// partials it spans plus the open slice. The slice store is shared by all
/// queries, which is the paper's "multi query aggregation sharing"; because
/// window begins/ends come from arbitrary deterministic WindowFunctions,
/// non-periodic windows (sessions, punctuations, count windows) share too.
///
/// Multi-tenancy: queries live in *slots* and may attach (AttachQuery) and
/// detach (DetachQuery) while the stream is running. Attach fast-forwards
/// the window function past the attach point and backfills from live slices
/// where the new query's begin grid coincides with existing cut points, so
/// the first results can cover pre-attach data; detach frees its slot and
/// immediately garbage-collects slices no remaining query references.
///
/// Scheduling: periodic window functions publish their next boundary
/// (NextWakeup / NextWatermarkWakeup); the slicer keeps them in lazy
/// min-heaps and polls only the *due* queries at each boundary crossing, so
/// both the per-record and the per-watermark cost are independent of the
/// number of registered periodic queries (O(due * log n), not O(n)).
///
/// Store choice:
///   * FlatFatStore — O(log n) fires, any aggregate (default).
///   * LinearStore  — O(slices-per-window) fires, "lazy" variant.
///   * PrefixStore  — O(1) fires, invertible aggregates only.
template <typename Agg, typename Store = FlatFatStore<Agg>>
class SlicingAggregator : public WindowAggregator<Agg> {
 public:
  using Input = typename Agg::Input;
  using Partial = typename Agg::Partial;
  using Output = typename Agg::Output;
  using ResultCallback = typename WindowAggregator<Agg>::ResultCallback;

  struct Options {
    /// Close a slice before every element (one leaf per tuple). Used to
    /// emulate per-tuple aggregate trees (B-Int) for comparison.
    bool slice_per_element = false;
    /// Run eviction every this many elements.
    uint64_t eviction_period = 128;
    /// Ablation: poll every window function on every element instead of
    /// skipping periodic functions between their published boundaries.
    bool disable_wakeup_fastpath = false;
  };

  explicit SlicingAggregator(Agg agg = Agg(), Options options = Options())
      : agg_(std::move(agg)),
        options_(options),
        store_(agg_),
        open_partial_(agg_.Identity()) {}

  size_t AddQuery(std::unique_ptr<WindowFunction> wf,
                  ResultCallback cb) override {
    STREAMLINE_CHECK_EQ(stats_.elements, 0u)
        << "use AttachQuery to register queries mid-stream";
    return AddSlot(std::move(wf), std::move(cb));
  }

  /// Registers a query on a (possibly) running aggregator. The window
  /// function is fast-forwarded to the attach point (windows beginning
  /// strictly after the last element are served from live data); for
  /// periodic windows whose begin grid lines up with existing cut points,
  /// the attach backfills: the first fired windows extend back over intact
  /// pre-attach slices and are byte-identical to a from-start query.
  /// Returns the slot id (stable; reported to result callbacks).
  size_t AttachQuery(std::unique_ptr<WindowFunction> wf, ResultCallback cb) {
    last_attach_backfilled_ = false;
    last_attach_backfill_slices_ = 0;
    if (stats_.elements > 0) {
      wf->AttachAt(last_ts_);
      if (auto* sliding = dynamic_cast<SlidingWindowFn*>(wf.get())) {
        TryBackfill(sliding);
      }
    }
    return AddSlot(std::move(wf), std::move(cb));
  }

  /// Unregisters the query in `slot` and immediately evicts every slice no
  /// remaining query needs. The slot stays allocated (ids are never reused,
  /// so snapshots taken before and after stay layout-compatible); only its
  /// window function and callback are released. Returns the number of
  /// slices freed by the eviction.
  size_t DetachQuery(size_t slot) {
    STREAMLINE_CHECK(slot < queries_.size() &&
                     queries_[slot].wf != nullptr)
        << "detach of unknown or already-detached query slot " << slot;
    queries_[slot].wf.reset();
    queries_[slot].cb = nullptr;
    --active_queries_;
    if (sched_valid_) {
      if (q_elem_wakeup_[slot] == kMinTimestamp) {
        SortedErase(&always_poll_queries_, slot);
      }
      if (q_wm_wakeup_[slot] == kMinTimestamp) {
        SortedErase(&always_wm_queries_, slot);
      }
      // Heap entries for this slot die lazily against these sentinels.
      q_elem_wakeup_[slot] = kMaxTimestamp;
      q_wm_wakeup_[slot] = kMaxTimestamp;
    }
    const size_t before = store_.size();
    Evict();
    return before - store_.size();
  }

  /// Registers a window function whose *begins* add slice boundaries but
  /// whose window completions are ignored. Used to emulate the extra cut
  /// points of Pairs (window ends) and Panes (gcd grid).
  void AddBoundaryGenerator(std::unique_ptr<WindowFunction> wf) {
    STREAMLINE_CHECK_EQ(stats_.elements, 0u);
    boundary_gens_.push_back(std::move(wf));
    sched_valid_ = false;
  }

  void ClearBoundaryGenerators() {
    STREAMLINE_CHECK_EQ(stats_.elements, 0u);
    boundary_gens_.clear();
    sched_valid_ = false;
  }

  using WindowAggregator<Agg>::OnElement;

  void OnElement(Timestamp ts, const Input& value,
                 const Value& payload) override {
    STREAMLINE_DCHECK(stats_.elements == 0 || ts >= last_ts_);
    last_ts_ = ts;
    if (!sched_valid_) RebuildSchedule();

    // 1) Collect window events, merge them in (at, end-before-begin) order
    //    and apply them. All of this happens BEFORE the element is
    //    aggregated: completed windows must not include it, and any begin
    //    <= ts must cut its slice first.
    //
    //    Fast path: only the *due* periodic functions (wakeup <= ts, popped
    //    off a min-heap) plus the data-driven ("always poll") functions are
    //    consulted, so the slicer's per-record cost does not grow with the
    //    number of registered periodic queries.
    const bool heap_due = ts >= wakeup_threshold_;
    if (heap_due || !always_poll_queries_.empty() ||
        !always_poll_gens_.empty()) {
      CollectElementEvents(ts, payload, heap_due);
      ProcessEvents();
      if (heap_due) wakeup_threshold_ = ElemHeapMin();
    }

    if (options_.slice_per_element && has_open_data_) {
      CloseSliceAt(ts);
    }

    // 2) The single per-record aggregation: fold the element into the open
    //    slice. This is the paper's one-partial-update-per-record property.
    if (!has_open_slice_) {
      // No query declared a begin <= ts (possible with slide > range
      // sampling windows); open an implicit slice so the element is kept
      // until eviction decides otherwise.
      has_open_slice_ = true;
      open_start_ = ts;
    }
    open_partial_ = agg_.Combine(open_partial_, agg_.Lift(value));
    has_open_data_ = true;
    ++stats_.partial_updates;
    ++stats_.elements;

    // 3) Data-driven completions (count windows) fire after aggregation so
    //    the current element is included. Only data-driven functions have
    //    AfterElement events.
    if (!always_poll_queries_.empty()) {
      CollectAfterElementEvents(ts, payload);
      ProcessEvents();
    }

    if (stats_.elements % options_.eviction_period == 0) Evict();
    UpdatePeak();
  }

  /// Batch entry point. Elements strictly below the published wakeup
  /// threshold cannot produce window events (no begins, no ends, no slice
  /// cuts), so a whole run of them folds into the open slice with one
  /// contiguous AggFoldSpan kernel call -- same left-to-right association as
  /// per-element Combine, so results are bit-identical. Elements at or past
  /// the threshold (and all elements when a data-driven query is registered
  /// or the slicer emulates per-tuple slices) fall back to OnElement.
  void OnElements(const Timestamp* ts, const Input* values,
                  size_t n) override {
    if (!sched_valid_) RebuildSchedule();
    size_t i = 0;
    while (i < n) {
      const bool fast =
          !options_.slice_per_element &&
          always_poll_queries_.empty() && always_poll_gens_.empty() &&
          ts[i] < wakeup_threshold_;
      if (!fast) {
        OnElement(ts[i], values[i], Value());
        ++i;
        continue;
      }
      size_t j = i + 1;
      while (j < n && ts[j] < wakeup_threshold_) ++j;
      STREAMLINE_DCHECK(stats_.elements == 0 || ts[i] >= last_ts_);
      if (!has_open_slice_) {
        has_open_slice_ = true;
        open_start_ = ts[i];
      }
      AggFoldSpan(agg_, &open_partial_, values + i, j - i);
      has_open_data_ = true;
      last_ts_ = ts[j - 1];
      const uint64_t before = stats_.elements;
      stats_.elements += j - i;
      stats_.partial_updates += j - i;
      // Same eviction cadence as per-element: evict iff the run crossed an
      // eviction-period boundary (Evict is idempotent while no window
      // events intervene, so once per run equals once per crossing).
      if (before / options_.eviction_period !=
          stats_.elements / options_.eviction_period) {
        Evict();
      }
      UpdatePeak();
      i = j;
    }
  }

  void OnWatermark(Timestamp wm) override {
    if (!sched_valid_) RebuildSchedule();
    // Watermarks only complete windows; poll the queries whose next window
    // end is covered (wm min-heap) plus the data-driven ones. Boundary
    // generators contribute begins only, so they are never watermark-polled.
    poll_queries_.assign(always_wm_queries_.begin(), always_wm_queries_.end());
    while (!wm_heap_.empty() && wm_heap_.front().first <= wm) {
      const auto [at, q] = wm_heap_.front();
      PopHeap(&wm_heap_);
      if (q_wm_wakeup_[q] != at) continue;  // stale (re-armed or detached)
      q_wm_wakeup_[q] = kMaxTimestamp;
      poll_queries_.push_back(q);
    }
    std::sort(poll_queries_.begin(), poll_queries_.end());
    events_.clear();
    for (size_t q : poll_queries_) {
      scratch_.clear();
      queries_[q].wf->OnWatermark(wm, &scratch_);
      for (const WindowEvent& e : scratch_) {
        events_.push_back(TaggedEvent{e, q, /*boundary_only=*/false});
      }
      ArmQuery(q, /*force_needed=*/false);
    }
    SortEvents();
    ProcessEvents();
    Evict();
    UpdatePeak();
    wakeup_threshold_ = ElemHeapMin();
  }

  const AggStats& stats() const override {
    // Fold store-side combines into the reported counters.
    cached_stats_ = stats_;
    cached_stats_.combine_ops = fire_combine_ops_ + store_.combine_ops();
    return cached_stats_;
  }

  std::string name() const override {
    return options_.slice_per_element ? "slicing(per-tuple)" : "cutty";
  }

  /// Number of slices currently held in the shared store.
  size_t stored_slices() const { return store_.size(); }
  /// Total slots ever allocated (attached + detached).
  size_t num_slots() const { return queries_.size(); }
  /// Currently attached queries.
  size_t active_queries() const { return active_queries_; }
  /// Whether the most recent AttachQuery backfilled pre-attach windows.
  bool last_attach_backfilled() const { return last_attach_backfilled_; }
  /// Stored slices the most recent backfilled attach reuses.
  uint64_t last_attach_backfill_slices() const {
    return last_attach_backfill_slices_;
  }

  /// Serializes the full aggregation state (open slice, per-query window
  /// progress, shared store, counters) for engine checkpoints. Detached
  /// slots are recorded as inactive so the slot layout round-trips.
  /// `ser(partial, writer)` encodes one Partial.
  template <typename SerFn>
  void Snapshot(BinaryWriter* w, const SerFn& ser) const {
    w->WriteBool(has_open_slice_);
    w->WriteBool(has_open_data_);
    w->WriteI64(open_start_);
    ser(open_partial_, w);
    w->WriteI64(last_ts_);
    w->WriteU64(queries_.size());
    for (const QueryState& q : queries_) {
      w->WriteBool(q.wf != nullptr);
      if (q.wf) q.wf->SnapshotState(w);
    }
    w->WriteU64(boundary_gens_.size());
    for (const auto& g : boundary_gens_) g->SnapshotState(w);
    store_.Snapshot(w, ser);
    w->WriteU64(stats_.elements);
    w->WriteU64(stats_.partial_updates);
    w->WriteU64(stats_.fires);
    w->WriteU64(stats_.slices_created);
    w->WriteU64(stats_.peak_stored);
    w->WriteU64(fire_combine_ops_);
  }

  /// Restores a snapshot taken by an identically configured aggregator
  /// (same slot layout incl. detached holes, same boundary generators, same
  /// store type).
  template <typename DeFn>
  Status Restore(BinaryReader* r, const DeFn& de) {
    auto open_slice = r->ReadBool();
    if (!open_slice.ok()) return open_slice.status();
    auto open_data = r->ReadBool();
    if (!open_data.ok()) return open_data.status();
    auto open_start = r->ReadI64();
    if (!open_start.ok()) return open_start.status();
    auto open_partial = de(r);
    if (!open_partial.ok()) return open_partial.status();
    auto last_ts = r->ReadI64();
    if (!last_ts.ok()) return last_ts.status();
    auto nq = r->ReadU64();
    if (!nq.ok()) return nq.status();
    if (*nq != queries_.size()) {
      return Status::FailedPrecondition(
          "snapshot has " + std::to_string(*nq) + " queries, aggregator has " +
          std::to_string(queries_.size()));
    }
    for (QueryState& q : queries_) {
      auto active = r->ReadBool();
      if (!active.ok()) return active.status();
      if (*active != (q.wf != nullptr)) {
        return Status::FailedPrecondition(
            "snapshot query slot active/detached state mismatch");
      }
      if (q.wf) STREAMLINE_RETURN_IF_ERROR(q.wf->RestoreState(r));
    }
    auto ng = r->ReadU64();
    if (!ng.ok()) return ng.status();
    if (*ng != boundary_gens_.size()) {
      return Status::FailedPrecondition("boundary generator count mismatch");
    }
    for (auto& g : boundary_gens_) {
      STREAMLINE_RETURN_IF_ERROR(g->RestoreState(r));
    }
    STREAMLINE_RETURN_IF_ERROR(store_.Restore(r, de));
    has_open_slice_ = *open_slice;
    has_open_data_ = *open_data;
    open_start_ = *open_start;
    open_partial_ = std::move(*open_partial);
    last_ts_ = *last_ts;
    auto read_u64 = [&](uint64_t* out) -> Status {
      auto v = r->ReadU64();
      if (!v.ok()) return v.status();
      *out = *v;
      return Status::Ok();
    };
    STREAMLINE_RETURN_IF_ERROR(read_u64(&stats_.elements));
    STREAMLINE_RETURN_IF_ERROR(read_u64(&stats_.partial_updates));
    STREAMLINE_RETURN_IF_ERROR(read_u64(&stats_.fires));
    STREAMLINE_RETURN_IF_ERROR(read_u64(&stats_.slices_created));
    STREAMLINE_RETURN_IF_ERROR(read_u64(&stats_.peak_stored));
    STREAMLINE_RETURN_IF_ERROR(read_u64(&fire_combine_ops_));
    sched_valid_ = false;  // heaps rebuilt on the next element/watermark
    return Status::Ok();
  }

 protected:
  const Agg& agg() const { return agg_; }

 private:
  struct QueryState {
    std::unique_ptr<WindowFunction> wf;  // null = detached slot
    ResultCallback cb;
  };

  struct TaggedEvent {
    WindowEvent event;
    size_t query;
    bool boundary_only;
  };

  // Boundary-generator ids share the element heap with query ids; the top
  // bit tells them apart (slot counts never get near 2^63).
  static constexpr size_t kGenIdFlag = size_t{1} << 63;

  using HeapEntry = std::pair<Timestamp, size_t>;

  static void PushHeap(std::vector<HeapEntry>* h, Timestamp at, size_t id) {
    h->emplace_back(at, id);
    std::push_heap(h->begin(), h->end(), std::greater<>());
  }
  static void PopHeap(std::vector<HeapEntry>* h) {
    std::pop_heap(h->begin(), h->end(), std::greater<>());
    h->pop_back();
  }
  static void SortedInsert(std::vector<size_t>* v, size_t id) {
    v->insert(std::lower_bound(v->begin(), v->end(), id), id);
  }
  static void SortedErase(std::vector<size_t>* v, size_t id) {
    auto it = std::lower_bound(v->begin(), v->end(), id);
    if (it != v->end() && *it == id) v->erase(it);
  }

  size_t AddSlot(std::unique_ptr<WindowFunction> wf, ResultCallback cb) {
    const size_t slot = queries_.size();
    queries_.push_back(QueryState{std::move(wf), std::move(cb)});
    ++active_queries_;
    if (sched_valid_) ScheduleNewSlot(slot);
    return slot;
  }

  // Backfill pass of AttachQuery: walk the new query's begin grid downward
  // from the attach point while each grid point is an intact cut (a
  // retained stored-slice start, or the open slice's start). Every window
  // beginning at such a point combines exactly the elements >= that cut, so
  // lowering the query's first window end to the earliest intact begin
  // serves correct pre-attach results from shared state. The walk stops at
  // the first missing cut: a stored slice might span that grid point, and a
  // spanned begin would leak older elements into the window.
  void TryBackfill(SlidingWindowFn* wf) {
    const Timestamp lo = last_ts_ - wf->range();  // begins must be > lo
    Timestamp b = wf->NextGridPointAfter(last_ts_) - wf->slide();
    Timestamp earliest = kMaxTimestamp;
    while (b > lo && HasIntactCutAt(b)) {
      earliest = b;
      b -= wf->slide();
    }
    if (earliest == kMaxTimestamp) return;
    wf->BackfillTo(earliest);
    last_attach_backfilled_ = true;
    last_attach_backfill_slices_ =
        store_.EndIndex() - store_.LowerBound(earliest);
  }

  bool HasIntactCutAt(Timestamp t) const {
    if (has_open_slice_ && open_start_ == t) return true;
    return store_.HasCutAt(t);
  }

  // ---- scheduling ---------------------------------------------------------

  void RebuildSchedule() {
    const size_t nq = queries_.size();
    const size_t ng = boundary_gens_.size();
    q_elem_wakeup_.assign(nq, kMaxTimestamp);
    q_wm_wakeup_.assign(nq, kMaxTimestamp);
    g_elem_wakeup_.assign(ng, kMaxTimestamp);
    always_poll_queries_.clear();
    always_wm_queries_.clear();
    always_poll_gens_.clear();
    elem_heap_.clear();
    wm_heap_.clear();
    needed_heap_.clear();
    wakeup_threshold_ = kMaxTimestamp;
    sched_valid_ = true;
    if (options_.disable_wakeup_fastpath) {
      // Ablation: everything is polled on every element and watermark.
      for (size_t q = 0; q < nq; ++q) {
        if (queries_[q].wf == nullptr) continue;
        q_elem_wakeup_[q] = kMinTimestamp;
        always_poll_queries_.push_back(q);
        q_wm_wakeup_[q] = kMinTimestamp;
        always_wm_queries_.push_back(q);
      }
      for (size_t g = 0; g < ng; ++g) {
        g_elem_wakeup_[g] = kMinTimestamp;
        always_poll_gens_.push_back(g);
      }
      return;
    }
    for (size_t q = 0; q < nq; ++q) {
      if (queries_[q].wf) ArmQuery(q, /*force_needed=*/true);
    }
    for (size_t g = 0; g < ng; ++g) ArmGen(g);
    wakeup_threshold_ = ElemHeapMin();
  }

  void ScheduleNewSlot(size_t slot) {
    q_elem_wakeup_.push_back(kMaxTimestamp);
    q_wm_wakeup_.push_back(kMaxTimestamp);
    if (options_.disable_wakeup_fastpath) {
      q_elem_wakeup_[slot] = kMinTimestamp;
      always_poll_queries_.push_back(slot);  // slot ids ascend; stays sorted
      q_wm_wakeup_[slot] = kMinTimestamp;
      always_wm_queries_.push_back(slot);
      return;
    }
    ArmQuery(slot, /*force_needed=*/true);
  }

  /// Re-publishes both wakeup channels of query `q` after a poll (or at
  /// registration). Membership moves between the always-poll lists (wakeup
  /// == kMinTimestamp) and the min-heaps; a query migrating out of
  /// always-poll (or force-registered) enters the eviction lower-bound heap.
  void ArmQuery(size_t q, bool force_needed) {
    if (options_.disable_wakeup_fastpath) return;
    WindowFunction* wf = queries_[q].wf.get();
    const bool was_always = q_elem_wakeup_[q] == kMinTimestamp;
    const Timestamp we = wf->NextWakeup();
    if (we != q_elem_wakeup_[q]) {
      if (was_always) SortedErase(&always_poll_queries_, q);
      q_elem_wakeup_[q] = we;
      if (we == kMinTimestamp) {
        SortedInsert(&always_poll_queries_, q);
      } else if (we != kMaxTimestamp) {
        PushHeap(&elem_heap_, we, q);
        wakeup_threshold_ = std::min(wakeup_threshold_, we);
      }
    }
    const Timestamp ww = wf->NextWatermarkWakeup();
    if (ww != q_wm_wakeup_[q]) {
      if (q_wm_wakeup_[q] == kMinTimestamp) {
        SortedErase(&always_wm_queries_, q);
      }
      q_wm_wakeup_[q] = ww;
      if (ww == kMinTimestamp) {
        SortedInsert(&always_wm_queries_, q);
      } else if (ww != kMaxTimestamp) {
        PushHeap(&wm_heap_, ww, q);
      }
    }
    if (q_elem_wakeup_[q] != kMinTimestamp && (was_always || force_needed)) {
      const Timestamp need = wf->OldestNeededBegin();
      if (need != kMaxTimestamp) PushHeap(&needed_heap_, need, q);
    }
  }

  void ArmGen(size_t g) {
    if (options_.disable_wakeup_fastpath) return;
    const Timestamp w = boundary_gens_[g]->NextWakeup();
    if (w == g_elem_wakeup_[g]) return;
    if (g_elem_wakeup_[g] == kMinTimestamp) {
      SortedErase(&always_poll_gens_, g);
    }
    g_elem_wakeup_[g] = w;
    if (w == kMinTimestamp) {
      SortedInsert(&always_poll_gens_, g);
    } else if (w != kMaxTimestamp) {
      PushHeap(&elem_heap_, w, g | kGenIdFlag);
      wakeup_threshold_ = std::min(wakeup_threshold_, w);
    }
  }

  /// Min over live element-heap entries; drops stale tops (an entry is
  /// stale when its value no longer matches the id's armed wakeup).
  Timestamp ElemHeapMin() {
    while (!elem_heap_.empty()) {
      const auto [at, id] = elem_heap_.front();
      const Timestamp cur = (id & kGenIdFlag)
                                ? g_elem_wakeup_[id & ~kGenIdFlag]
                                : q_elem_wakeup_[id];
      if (cur == at) return at;
      PopHeap(&elem_heap_);
    }
    return kMaxTimestamp;
  }

  // ---- polling ------------------------------------------------------------

  /// Polls the data-driven functions plus (when `heap_due`) every periodic
  /// function whose wakeup is covered by `ts`, in ascending slot order (the
  /// order the full scan used, so event tie-breaking is unchanged).
  void CollectElementEvents(Timestamp ts, const Value& payload,
                            bool heap_due) {
    poll_queries_.assign(always_poll_queries_.begin(),
                         always_poll_queries_.end());
    poll_gens_.assign(always_poll_gens_.begin(), always_poll_gens_.end());
    if (heap_due) {
      while (!elem_heap_.empty() && elem_heap_.front().first <= ts) {
        const auto [at, id] = elem_heap_.front();
        PopHeap(&elem_heap_);
        if (id & kGenIdFlag) {
          const size_t g = id & ~kGenIdFlag;
          if (g_elem_wakeup_[g] != at) continue;  // stale
          g_elem_wakeup_[g] = kMaxTimestamp;
          poll_gens_.push_back(g);
        } else {
          if (q_elem_wakeup_[id] != at) continue;  // stale
          q_elem_wakeup_[id] = kMaxTimestamp;
          poll_queries_.push_back(id);
        }
      }
      std::sort(poll_queries_.begin(), poll_queries_.end());
      std::sort(poll_gens_.begin(), poll_gens_.end());
    }
    events_.clear();
    for (size_t q : poll_queries_) {
      scratch_.clear();
      queries_[q].wf->OnElement(ts, payload, &scratch_);
      for (const WindowEvent& e : scratch_) {
        events_.push_back(TaggedEvent{e, q, false});
      }
      ArmQuery(q, /*force_needed=*/false);
    }
    for (size_t g : poll_gens_) {
      scratch_.clear();
      boundary_gens_[g]->OnElement(ts, payload, &scratch_);
      for (const WindowEvent& e : scratch_) {
        if (e.kind == WindowEvent::Kind::kBegin) {
          events_.push_back(TaggedEvent{e, 0, true});
        }
      }
      ArmGen(g);
    }
    SortEvents();
  }

  void CollectAfterElementEvents(Timestamp ts, const Value& payload) {
    events_.clear();
    // Only data-driven functions produce AfterElement events, and polling
    // never changes their always-poll membership (they stay data-driven).
    for (size_t q : always_poll_queries_) {
      scratch_.clear();
      queries_[q].wf->AfterElement(ts, payload, &scratch_);
      for (const WindowEvent& e : scratch_) {
        events_.push_back(TaggedEvent{e, q, false});
      }
    }
    SortEvents();
  }

  void SortEvents() {
    if (events_.size() < 2) return;
    std::stable_sort(events_.begin(), events_.end(),
                     [](const TaggedEvent& a, const TaggedEvent& b) {
                       if (a.event.at != b.event.at) {
                         return a.event.at < b.event.at;
                       }
                       // Ends before begins at the same instant.
                       return a.event.kind == WindowEvent::Kind::kEnd &&
                              b.event.kind == WindowEvent::Kind::kBegin;
                     });
  }

  void ProcessEvents() {
    for (const TaggedEvent& te : events_) {
      if (te.event.kind == WindowEvent::Kind::kBegin) {
        CloseSliceAt(te.event.at);
      } else if (!te.boundary_only) {
        Fire(te.query, te.event.window);
      }
    }
    events_.clear();
  }

  // Cuts a slice boundary at time `at`: pushes the open slice (if it holds
  // data) into the shared store and opens a fresh slice starting at `at`.
  void CloseSliceAt(Timestamp at) {
    if (has_open_slice_ && at == open_start_ && !has_open_data_) {
      return;  // duplicate boundary from another query
    }
    if (has_open_slice_ && has_open_data_) {
      store_.Append(open_start_, std::move(open_partial_));
      open_partial_ = agg_.Identity();
      ++stats_.slices_created;
    }
    has_open_slice_ = true;
    has_open_data_ = false;
    open_start_ = at;
  }

  void Fire(size_t query, const Window& w) {
    const size_t i = store_.LowerBound(w.start);
    const size_t j = store_.LowerBound(w.end);
    Partial result = store_.RangeCombine(i, j);
    if (has_open_slice_ && has_open_data_ && open_start_ < w.end &&
        open_start_ >= w.start) {
      result = agg_.Combine(result, open_partial_);
      ++fire_combine_ops_;
    }
    ++stats_.fires;
    if (queries_[query].cb) {
      queries_[query].cb(query, w, agg_.Lower(result));
    }
  }

  /// Slice GC. Data-driven queries are re-scanned eagerly (their needed
  /// begin may move backward); periodic queries sit in a lazy min-heap of
  /// lower bounds (OldestNeededBegin is non-decreasing for them, see the
  /// NextWakeup contract), so the scan cost is O(stale), not O(queries).
  void Evict() {
    Timestamp needed = kMaxTimestamp;
    if (!sched_valid_) {
      for (const QueryState& q : queries_) {
        if (q.wf) needed = std::min(needed, q.wf->OldestNeededBegin());
      }
    } else {
      for (size_t q : always_poll_queries_) {
        needed = std::min(needed, queries_[q].wf->OldestNeededBegin());
      }
      while (!needed_heap_.empty()) {
        const auto [at, q] = needed_heap_.front();
        if (queries_[q].wf == nullptr ||
            q_elem_wakeup_[q] == kMinTimestamp) {
          PopHeap(&needed_heap_);  // detached, or migrated to always-poll
          continue;
        }
        const Timestamp cur = queries_[q].wf->OldestNeededBegin();
        if (cur > at) {
          PopHeap(&needed_heap_);
          if (cur != kMaxTimestamp) PushHeap(&needed_heap_, cur, q);
          continue;
        }
        needed = std::min(needed, cur);
        break;  // every other periodic entry is >= at >= cur
      }
    }
    if (needed == kMaxTimestamp) {
      // No pending window: everything stored is garbage.
      store_.EvictBefore(store_.EndIndex());
      return;
    }
    store_.EvictBefore(store_.LowerBound(needed));
  }

  void UpdatePeak() {
    stats_.peak_stored =
        std::max<uint64_t>(stats_.peak_stored, store_.size());
  }

  Agg agg_;
  Options options_;
  Store store_;
  std::vector<QueryState> queries_;
  size_t active_queries_ = 0;
  std::vector<std::unique_ptr<WindowFunction>> boundary_gens_;

  bool has_open_slice_ = false;
  bool has_open_data_ = false;
  Timestamp open_start_ = 0;
  Partial open_partial_;
  Timestamp last_ts_ = kMinTimestamp;

  // Slicer scheduling (see OnElement/OnWatermark). Heaps hold (wakeup, id)
  // entries; an entry is live iff its value matches the id's armed wakeup
  // (q_elem_wakeup_/q_wm_wakeup_/g_elem_wakeup_), stale entries are skipped
  // on pop. kMinTimestamp = member of the matching always-poll list;
  // kMaxTimestamp = unscheduled (detached slot or no future event).
  bool sched_valid_ = false;
  Timestamp wakeup_threshold_ = kMinTimestamp;
  std::vector<HeapEntry> elem_heap_;
  std::vector<HeapEntry> wm_heap_;
  std::vector<HeapEntry> needed_heap_;
  std::vector<Timestamp> q_elem_wakeup_;
  std::vector<Timestamp> q_wm_wakeup_;
  std::vector<Timestamp> g_elem_wakeup_;
  std::vector<size_t> always_poll_queries_;  // sorted slot ids
  std::vector<size_t> always_wm_queries_;
  std::vector<size_t> always_poll_gens_;
  std::vector<size_t> poll_queries_;  // per-call scratch
  std::vector<size_t> poll_gens_;

  bool last_attach_backfilled_ = false;
  uint64_t last_attach_backfill_slices_ = 0;

  WindowEvents scratch_;
  std::vector<TaggedEvent> events_;
  AggStats stats_;
  mutable AggStats cached_stats_;
  uint64_t fire_combine_ops_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_AGG_SLICING_AGGREGATOR_H_
