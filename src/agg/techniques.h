#ifndef STREAMLINE_AGG_TECHNIQUES_H_
#define STREAMLINE_AGG_TECHNIQUES_H_

#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "agg/eager_aggregator.h"
#include "agg/naive_aggregator.h"
#include "agg/slicing_aggregator.h"
#include "common/logging.h"

namespace streamline {

/// Pairs (Krishnamurthy et al.): slice the stream at every window begin AND
/// every window end, yielding at most two unequal slices per slide.
/// Expressed on top of the slicing framework by registering the shifted
/// end-grid as an extra boundary generator. Periodic windows only.
template <typename Agg, typename Store = LinearStore<Agg>>
class PairsAggregator : public SlicingAggregator<Agg, Store> {
 public:
  using Base = SlicingAggregator<Agg, Store>;
  using ResultCallback = typename WindowAggregator<Agg>::ResultCallback;

  explicit PairsAggregator(Agg agg = Agg()) : Base(std::move(agg)) {}

  size_t AddQuery(std::unique_ptr<WindowFunction> wf,
                  ResultCallback cb) override {
    auto* sliding = dynamic_cast<SlidingWindowFn*>(wf.get());
    STREAMLINE_CHECK(sliding != nullptr)
        << "Pairs supports periodic windows only, got " << wf->Name();
    const Duration r = sliding->range();
    const Duration s = sliding->slide();
    const Timestamp o = sliding->origin();
    if (r % s != 0) {
      // Window ends fall at origin + r (mod slide); cut there too.
      this->AddBoundaryGenerator(
          std::make_unique<SlidingWindowFn>(s, s, o + r % s));
    }
    return Base::AddQuery(std::move(wf), std::move(cb));
  }

  std::string name() const override { return "pairs"; }
};

/// Panes (Li et al.): uniform slices of length gcd(range, slide), further
/// reduced to the gcd across all registered queries in the multi-query
/// setting — the finer the grid, the more combines each fire pays.
/// Periodic windows with a common origin only.
template <typename Agg, typename Store = LinearStore<Agg>>
class PanesAggregator : public SlicingAggregator<Agg, Store> {
 public:
  using Base = SlicingAggregator<Agg, Store>;
  using ResultCallback = typename WindowAggregator<Agg>::ResultCallback;

  explicit PanesAggregator(Agg agg = Agg()) : Base(std::move(agg)) {}

  size_t AddQuery(std::unique_ptr<WindowFunction> wf,
                  ResultCallback cb) override {
    auto* sliding = dynamic_cast<SlidingWindowFn*>(wf.get());
    STREAMLINE_CHECK(sliding != nullptr)
        << "Panes supports periodic windows only, got " << wf->Name();
    if (have_origin_) {
      STREAMLINE_CHECK_EQ(origin_, sliding->origin())
          << "Panes requires a common window origin";
    }
    have_origin_ = true;
    origin_ = sliding->origin();
    const Duration g = std::gcd(sliding->range(), sliding->slide());
    pane_ = pane_ == 0 ? g : std::gcd(pane_, g);
    // Rebuild the single pane-grid generator for the updated gcd.
    this->ClearBoundaryGenerators();
    this->AddBoundaryGenerator(
        std::make_unique<SlidingWindowFn>(pane_, pane_, origin_));
    return Base::AddQuery(std::move(wf), std::move(cb));
  }

  std::string name() const override { return "panes"; }

 private:
  Duration pane_ = 0;
  Timestamp origin_ = 0;
  bool have_origin_ = false;
};

/// B-Int-style per-tuple aggregate tree (Arasu & Widom): every tuple is a
/// leaf of a balanced aggregation tree, so each record pays a O(log n) tree
/// update and each fire a O(log n) range query — no slice coarsening.
template <typename Agg>
class BIntAggregator : public SlicingAggregator<Agg, FlatFatStore<Agg>> {
 public:
  using Base = SlicingAggregator<Agg, FlatFatStore<Agg>>;

  explicit BIntAggregator(Agg agg = Agg())
      : Base(std::move(agg), MakeOptions()) {}

  std::string name() const override { return "b-int"; }

 private:
  static typename Base::Options MakeOptions() {
    typename Base::Options o;
    o.slice_per_element = true;
    return o;
  }
};

/// All implemented window-aggregation techniques.
enum class AggTechnique {
  kCutty,        // slicing + FlatFAT store (the paper's contribution)
  kCuttyLazy,    // slicing + linear store
  kCuttyPrefix,  // slicing + O(1) prefix store (invertible aggregates only)
  kEager,        // per-window partials (Flink 1.x style)
  kNaive,        // buffer & recompute
  kPairs,
  kPanes,
  kBInt,
};

inline std::string_view AggTechniqueToString(AggTechnique t) {
  switch (t) {
    case AggTechnique::kCutty:
      return "cutty";
    case AggTechnique::kCuttyLazy:
      return "cutty-lazy";
    case AggTechnique::kCuttyPrefix:
      return "cutty-prefix";
    case AggTechnique::kEager:
      return "eager";
    case AggTechnique::kNaive:
      return "naive";
    case AggTechnique::kPairs:
      return "pairs";
    case AggTechnique::kPanes:
      return "panes";
    case AggTechnique::kBInt:
      return "b-int";
  }
  return "unknown";
}

/// Instantiates a window aggregator of the given technique. kCuttyPrefix
/// CHECK-fails for non-invertible aggregate functions.
template <typename Agg>
std::unique_ptr<WindowAggregator<Agg>> MakeAggregator(AggTechnique technique,
                                                      Agg agg = Agg()) {
  switch (technique) {
    case AggTechnique::kCutty:
      return std::make_unique<SlicingAggregator<Agg, FlatFatStore<Agg>>>(
          std::move(agg));
    case AggTechnique::kCuttyLazy:
      return std::make_unique<SlicingAggregator<Agg, LinearStore<Agg>>>(
          std::move(agg));
    case AggTechnique::kCuttyPrefix:
      if constexpr (Agg::kInvertible) {
        return std::make_unique<SlicingAggregator<Agg, PrefixStore<Agg>>>(
            std::move(agg));
      } else {
        LOG_FATAL << "cutty-prefix requires an invertible aggregate";
        return nullptr;
      }
    case AggTechnique::kEager:
      return std::make_unique<EagerAggregator<Agg>>(std::move(agg));
    case AggTechnique::kNaive:
      return std::make_unique<NaiveBufferAggregator<Agg>>(std::move(agg));
    case AggTechnique::kPairs:
      return std::make_unique<PairsAggregator<Agg>>(std::move(agg));
    case AggTechnique::kPanes:
      return std::make_unique<PanesAggregator<Agg>>(std::move(agg));
    case AggTechnique::kBInt:
      return std::make_unique<BIntAggregator<Agg>>(std::move(agg));
  }
  LOG_FATAL << "unknown technique";
  return nullptr;
}

}  // namespace streamline

#endif  // STREAMLINE_AGG_TECHNIQUES_H_
