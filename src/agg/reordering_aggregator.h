#ifndef STREAMLINE_AGG_REORDERING_AGGREGATOR_H_
#define STREAMLINE_AGG_REORDERING_AGGREGATOR_H_

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregator.h"
#include "common/logging.h"

namespace streamline {

/// Adapts any in-order WindowAggregator to OUT-OF-ORDER element arrival:
/// elements are buffered with their payloads until a watermark covers them,
/// then applied in timestamp order (ties in arrival order). This is the
/// library-level counterpart of the engine's windowed-operator reorder
/// buffer -- use it when driving the slicing core directly from a source
/// that cannot guarantee order. Elements older than the last watermark are
/// dropped (counted in dropped_late()).
template <typename Agg>
class ReorderingAggregator : public WindowAggregator<Agg> {
 public:
  using Input = typename Agg::Input;
  using Output = typename Agg::Output;
  using ResultCallback = typename WindowAggregator<Agg>::ResultCallback;

  explicit ReorderingAggregator(std::unique_ptr<WindowAggregator<Agg>> inner)
      : inner_(std::move(inner)) {
    STREAMLINE_CHECK(inner_ != nullptr);
  }

  size_t AddQuery(std::unique_ptr<WindowFunction> wf,
                  ResultCallback cb) override {
    return inner_->AddQuery(std::move(wf), std::move(cb));
  }

  using WindowAggregator<Agg>::OnElement;

  void OnElement(Timestamp ts, const Input& value,
                 const Value& payload) override {
    if (ts < watermark_) {
      ++dropped_late_;
      return;
    }
    pending_.push_back(Pending{ts, seq_++, value, payload});
  }

  void OnWatermark(Timestamp wm) override {
    if (wm <= watermark_ && wm != kMaxTimestamp) return;
    watermark_ = std::max(watermark_, wm);
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const Pending& a, const Pending& b) {
                       if (a.ts != b.ts) return a.ts < b.ts;
                       return a.seq < b.seq;
                     });
    size_t applied = 0;
    while (applied < pending_.size() &&
           (wm == kMaxTimestamp || pending_[applied].ts < wm)) {
      const Pending& p = pending_[applied];
      inner_->OnElement(p.ts, p.value, p.payload);
      ++applied;
    }
    pending_.erase(pending_.begin(), pending_.begin() + applied);
    inner_->OnWatermark(wm);
  }

  const AggStats& stats() const override { return inner_->stats(); }
  std::string name() const override {
    return "reordering(" + inner_->name() + ")";
  }

  uint64_t dropped_late() const { return dropped_late_; }
  size_t buffered() const { return pending_.size(); }

 private:
  struct Pending {
    Timestamp ts;
    uint64_t seq;
    Input value;
    Value payload;
  };

  std::unique_ptr<WindowAggregator<Agg>> inner_;
  std::vector<Pending> pending_;
  uint64_t seq_ = 0;
  Timestamp watermark_ = kMinTimestamp;
  uint64_t dropped_late_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_AGG_REORDERING_AGGREGATOR_H_
