#ifndef STREAMLINE_AGG_AGGREGATOR_H_
#define STREAMLINE_AGG_AGGREGATOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "agg/stats.h"
#include "common/time.h"
#include "common/value.h"
#include "window/window.h"
#include "window/window_fn.h"

namespace streamline {

/// Common interface of all window-aggregation techniques (Cutty slicing and
/// the baselines it is compared against). One aggregator instance serves one
/// logical stream (one key) and any number of concurrent window queries that
/// share the same aggregate function — the multi-query sharing setting of
/// the paper.
///
/// Driving contract: elements arrive in non-decreasing timestamp order via
/// OnElement; OnWatermark(wm) promises all future elements have ts >= wm and
/// flushes completable windows (wm == kMaxTimestamp drains everything).
template <typename Agg>
class WindowAggregator {
 public:
  using Input = typename Agg::Input;
  using Output = typename Agg::Output;

  /// Invoked for every completed window: (query id, window, result).
  using ResultCallback =
      std::function<void(size_t, const Window&, const Output&)>;

  virtual ~WindowAggregator() = default;

  /// Registers a window query; returns its query id. All queries must be
  /// added before the first element.
  virtual size_t AddQuery(std::unique_ptr<WindowFunction> wf,
                          ResultCallback cb) = 0;

  /// Processes one element. `payload` is forwarded to content-sensitive
  /// window functions (punctuation windows); pass Value() otherwise.
  virtual void OnElement(Timestamp ts, const Input& value,
                         const Value& payload) = 0;

  void OnElement(Timestamp ts, const Input& value) {
    OnElement(ts, value, Value());
  }

  /// Processes a contiguous run of `n` elements (parallel arrays, same
  /// non-decreasing-timestamp contract as OnElement). Semantically identical
  /// to calling OnElement(ts[i], values[i]) for each i in order -- the
  /// default does exactly that; aggregators with batch kernels override it.
  /// Payloads are not supported on this path: punctuation-window users go
  /// per-element.
  virtual void OnElements(const Timestamp* ts, const Input* values,
                          size_t n) {
    for (size_t i = 0; i < n; ++i) OnElement(ts[i], values[i], Value());
  }

  /// Advances the watermark, firing all windows with end <= wm.
  virtual void OnWatermark(Timestamp wm) = 0;

  virtual const AggStats& stats() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_AGG_AGGREGATOR_H_
