#ifndef STREAMLINE_AGG_NAIVE_AGGREGATOR_H_
#define STREAMLINE_AGG_NAIVE_AGGREGATOR_H_

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregator.h"
#include "common/logging.h"

namespace streamline {

/// Buffer-and-recompute baseline: raw tuples are buffered and every window
/// fire rescans its full extent. No sharing of any kind — each fire costs
/// O(window size) lifts+combines. Supports every WindowFunction (including
/// sessions and UDWs), which makes it the comparator for the non-periodic
/// experiments where Pairs/Panes/eager are inapplicable.
template <typename Agg>
class NaiveBufferAggregator : public WindowAggregator<Agg> {
 public:
  using Input = typename Agg::Input;
  using Partial = typename Agg::Partial;
  using Output = typename Agg::Output;
  using ResultCallback = typename WindowAggregator<Agg>::ResultCallback;

  struct Options {
    uint64_t eviction_period = 128;
  };

  explicit NaiveBufferAggregator(Agg agg = Agg(), Options options = Options())
      : agg_(std::move(agg)), options_(options) {}

  size_t AddQuery(std::unique_ptr<WindowFunction> wf,
                  ResultCallback cb) override {
    STREAMLINE_CHECK_EQ(stats_.elements, 0u);
    queries_.push_back(QueryState{std::move(wf), std::move(cb)});
    return queries_.size() - 1;
  }

  using WindowAggregator<Agg>::OnElement;

  void OnElement(Timestamp ts, const Input& value,
                 const Value& payload) override {
    // Fires triggered by this element's arrival exclude the element itself.
    for (size_t q = 0; q < queries_.size(); ++q) {
      scratch_.clear();
      queries_[q].wf->OnElement(ts, payload, &scratch_);
      HandleEvents(q);
    }
    buffer_.emplace_back(ts, value);
    ++stats_.elements;
    // Data-driven windows (count windows) include the element: fire after
    // buffering it.
    for (size_t q = 0; q < queries_.size(); ++q) {
      scratch_.clear();
      queries_[q].wf->AfterElement(ts, payload, &scratch_);
      HandleEvents(q);
    }
    if (stats_.elements % options_.eviction_period == 0) Evict();
    stats_.peak_stored =
        std::max<uint64_t>(stats_.peak_stored, buffer_.size());
  }

  void OnWatermark(Timestamp wm) override {
    for (size_t q = 0; q < queries_.size(); ++q) {
      scratch_.clear();
      queries_[q].wf->OnWatermark(wm, &scratch_);
      HandleEvents(q);
    }
    Evict();
  }

  const AggStats& stats() const override { return stats_; }
  std::string name() const override { return "naive"; }

  size_t buffered() const { return buffer_.size(); }

 private:
  struct QueryState {
    std::unique_ptr<WindowFunction> wf;
    ResultCallback cb;
  };

  void HandleEvents(size_t query) {
    for (const WindowEvent& e : scratch_) {
      if (e.kind == WindowEvent::Kind::kEnd) Fire(query, e.window);
    }
  }

  void Fire(size_t query, const Window& w) {
    // Recompute the window by scanning buffered tuples in [start, end).
    auto it = std::lower_bound(
        buffer_.begin(), buffer_.end(), w.start,
        [](const auto& entry, Timestamp t) { return entry.first < t; });
    Partial acc = agg_.Identity();
    for (; it != buffer_.end() && it->first < w.end; ++it) {
      acc = agg_.Combine(acc, agg_.Lift(it->second));
      ++stats_.partial_updates;
    }
    ++stats_.fires;
    if (queries_[query].cb) queries_[query].cb(query, w, agg_.Lower(acc));
  }

  void Evict() {
    Timestamp needed = kMaxTimestamp;
    for (const QueryState& q : queries_) {
      needed = std::min(needed, q.wf->OldestNeededBegin());
    }
    while (!buffer_.empty() && buffer_.front().first < needed) {
      buffer_.pop_front();
    }
  }

  Agg agg_;
  Options options_;
  std::vector<QueryState> queries_;
  std::deque<std::pair<Timestamp, Input>> buffer_;
  WindowEvents scratch_;
  AggStats stats_;
};

}  // namespace streamline

#endif  // STREAMLINE_AGG_NAIVE_AGGREGATOR_H_
