#ifndef STREAMLINE_AGG_SLICE_STORE_H_
#define STREAMLINE_AGG_SLICE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/logging.h"
#include "common/serde.h"
#include "common/time.h"

namespace streamline {

/// Slice stores hold the partial aggregates of closed slices, ordered by
/// slice start time, and answer range-combine queries over contiguous slice
/// ranges. All three implementations share this interface:
///
///   void Append(Timestamp start, Partial p);      // push newest slice
///   size_t BeginIndex() / EndIndex();              // live logical range
///   size_t LowerBound(Timestamp t);                // first idx, start >= t
///   Partial RangeCombine(size_t i, size_t j);      // combine [i, j) in order
///   void EvictBefore(size_t i);                    // drop idx < i
///
/// Logical indices increase monotonically over the stream and are never
/// reused, so callers can hold them across evictions. Range combines apply
/// Agg::Combine strictly left-to-right (oldest first), which makes the
/// stores safe for non-commutative aggregates.

/// O(j-i) range combine by linear scan — Cutty's "lazy" store. Cheap appends
/// and eviction; fires pay per-slice cost.
template <typename Agg>
class LinearStore {
 public:
  using Partial = typename Agg::Partial;

  explicit LinearStore(Agg agg = Agg()) : agg_(std::move(agg)) {}

  void Append(Timestamp start, Partial p) {
    STREAMLINE_DCHECK(starts_.empty() || start >= starts_.back());
    starts_.push_back(start);
    partials_.push_back(std::move(p));
  }

  size_t BeginIndex() const { return base_; }
  size_t EndIndex() const { return base_ + starts_.size(); }
  size_t size() const { return starts_.size(); }

  size_t LowerBound(Timestamp t) const {
    auto it = std::lower_bound(starts_.begin(), starts_.end(), t);
    return base_ + static_cast<size_t>(it - starts_.begin());
  }

  /// True iff a retained slice starts exactly at `t` -- i.e. the stream was
  /// provably cut at `t` and everything from `t` on is still stored
  /// (eviction is prefix-only). Backfill probes at query attach.
  bool HasCutAt(Timestamp t) const {
    return std::binary_search(starts_.begin(), starts_.end(), t);
  }

  Partial RangeCombine(size_t i, size_t j) {
    STREAMLINE_DCHECK(i >= BeginIndex() && j <= EndIndex() && i <= j);
    Partial acc = agg_.Identity();
    for (size_t k = i - base_; k < j - base_; ++k) {
      acc = agg_.Combine(acc, partials_[k]);
      ++combine_ops_;
    }
    return acc;
  }

  void EvictBefore(size_t i) {
    while (base_ < i && !starts_.empty()) {
      starts_.pop_front();
      partials_.pop_front();
      ++base_;
    }
  }

  uint64_t combine_ops() const { return combine_ops_; }

  /// Serializes the store; `ser(partial, writer)` encodes one partial.
  template <typename SerFn>
  void Snapshot(BinaryWriter* w, const SerFn& ser) const {
    w->WriteU64(base_);
    w->WriteU64(starts_.size());
    for (size_t k = 0; k < starts_.size(); ++k) {
      w->WriteI64(starts_[k]);
      ser(partials_[k], w);
    }
  }

  /// Restores a snapshot; `de(reader)` yields Result<Partial>.
  template <typename DeFn>
  Status Restore(BinaryReader* r, const DeFn& de) {
    auto base = r->ReadU64();
    if (!base.ok()) return base.status();
    auto n = r->ReadU64();
    if (!n.ok()) return n.status();
    starts_.clear();
    partials_.clear();
    base_ = *base;
    for (uint64_t k = 0; k < *n; ++k) {
      auto start = r->ReadI64();
      if (!start.ok()) return start.status();
      auto p = de(r);
      if (!p.ok()) return p.status();
      starts_.push_back(*start);
      partials_.push_back(std::move(*p));
    }
    return Status::Ok();
  }

 private:
  Agg agg_;
  size_t base_ = 0;  // logical index of starts_[0]
  std::deque<Timestamp> starts_;
  std::deque<Partial> partials_;
  uint64_t combine_ops_ = 0;
};

/// FlatFAT (Tangwongsan et al.): a pointerless binary aggregation tree over
/// a ring buffer of slice partials. Appends, evictions and range combines
/// are all O(log n); works for non-invertible aggregates. This is Cutty's
/// "eager" shared store.
template <typename Agg>
class FlatFatStore {
 public:
  using Partial = typename Agg::Partial;

  explicit FlatFatStore(Agg agg = Agg(), size_t initial_capacity = 64)
      : agg_(std::move(agg)) {
    capacity_ = 1;
    while (capacity_ < initial_capacity) capacity_ <<= 1;
    tree_.assign(2 * capacity_, agg_.Identity());
  }

  void Append(Timestamp start, Partial p) {
    STREAMLINE_DCHECK(starts_.empty() || start >= starts_.back());
    if (count_ == capacity_) Grow();
    const size_t pos = (head_ + count_) % capacity_;
    SetLeaf(pos, std::move(p));
    ++count_;
    starts_.push_back(start);
  }

  size_t BeginIndex() const { return base_; }
  size_t EndIndex() const { return base_ + count_; }
  size_t size() const { return count_; }

  size_t LowerBound(Timestamp t) const {
    auto it = std::lower_bound(starts_.begin(), starts_.end(), t);
    return base_ + static_cast<size_t>(it - starts_.begin());
  }

  /// See LinearStore::HasCutAt.
  bool HasCutAt(Timestamp t) const {
    return std::binary_search(starts_.begin(), starts_.end(), t);
  }

  Partial RangeCombine(size_t i, size_t j) {
    STREAMLINE_DCHECK(i >= BeginIndex() && j <= EndIndex() && i <= j);
    if (i == j) return agg_.Identity();
    const size_t off = i - base_;
    const size_t len = j - i;
    const size_t p0 = (head_ + off) % capacity_;
    if (p0 + len <= capacity_) {
      return QuerySegment(p0, p0 + len);
    }
    // Logical range wraps the ring: combine the tail segment then the head
    // segment (tail is older in stream order).
    Partial a = QuerySegment(p0, capacity_);
    Partial b = QuerySegment(0, p0 + len - capacity_);
    ++combine_ops_;
    return agg_.Combine(a, b);
  }

  void EvictBefore(size_t i) {
    while (base_ < i && count_ > 0) {
      SetLeaf(head_, agg_.Identity());
      head_ = (head_ + 1) % capacity_;
      --count_;
      ++base_;
      starts_.pop_front();
    }
  }

  uint64_t combine_ops() const { return combine_ops_; }
  size_t capacity() const { return capacity_; }

  /// Serializes the live leaves in logical order; the tree is rebuilt on
  /// restore, so the snapshot stays store-implementation independent.
  template <typename SerFn>
  void Snapshot(BinaryWriter* w, const SerFn& ser) const {
    w->WriteU64(base_);
    w->WriteU64(count_);
    for (size_t k = 0; k < count_; ++k) {
      w->WriteI64(starts_[k]);
      ser(tree_[capacity_ + (head_ + k) % capacity_], w);
    }
  }

  template <typename DeFn>
  Status Restore(BinaryReader* r, const DeFn& de) {
    auto base = r->ReadU64();
    if (!base.ok()) return base.status();
    auto n = r->ReadU64();
    if (!n.ok()) return n.status();
    std::fill(tree_.begin(), tree_.end(), agg_.Identity());
    starts_.clear();
    head_ = 0;
    count_ = 0;
    base_ = *base;
    for (uint64_t k = 0; k < *n; ++k) {
      auto start = r->ReadI64();
      if (!start.ok()) return start.status();
      auto p = de(r);
      if (!p.ok()) return p.status();
      Append(*start, std::move(*p));
    }
    return Status::Ok();
  }

 private:
  // Writes leaf `pos` and recomputes its ancestors bottom-up.
  void SetLeaf(size_t pos, Partial p) {
    size_t node = capacity_ + pos;
    tree_[node] = std::move(p);
    node >>= 1;
    while (node >= 1) {
      tree_[node] = agg_.Combine(tree_[2 * node], tree_[2 * node + 1]);
      ++combine_ops_;
      node >>= 1;
    }
  }

  // Order-preserving iterative segment-tree query over physical leaves
  // [l, r); physical order equals stream order within a non-wrapping range.
  Partial QuerySegment(size_t l, size_t r) {
    Partial left = agg_.Identity();
    Partial right = agg_.Identity();
    size_t lo = l + capacity_;
    size_t hi = r + capacity_;
    while (lo < hi) {
      if (lo & 1) {
        left = agg_.Combine(left, tree_[lo++]);
        ++combine_ops_;
      }
      if (hi & 1) {
        right = agg_.Combine(tree_[--hi], right);
        ++combine_ops_;
      }
      lo >>= 1;
      hi >>= 1;
    }
    ++combine_ops_;
    return agg_.Combine(left, right);
  }

  void Grow() {
    const size_t new_capacity = capacity_ * 2;
    std::vector<Partial> new_tree(2 * new_capacity, agg_.Identity());
    for (size_t k = 0; k < count_; ++k) {
      new_tree[new_capacity + k] = tree_[capacity_ + (head_ + k) % capacity_];
    }
    for (size_t node = new_capacity - 1; node >= 1; --node) {
      new_tree[node] = agg_.Combine(new_tree[2 * node], new_tree[2 * node + 1]);
    }
    tree_ = std::move(new_tree);
    capacity_ = new_capacity;
    head_ = 0;
  }

  Agg agg_;
  size_t capacity_ = 0;
  size_t head_ = 0;   // physical position of the oldest leaf
  size_t count_ = 0;  // live leaves
  size_t base_ = 0;   // logical index of the oldest leaf
  std::vector<Partial> tree_;
  std::deque<Timestamp> starts_;
  uint64_t combine_ops_ = 0;
};

/// Prefix store for *invertible* aggregates: keeps the running cumulative
/// partial before each slice, so RangeCombine is O(1) via
/// Invert(cum[j], cum[i]). The cheapest store when the aggregate allows it.
template <typename Agg>
class PrefixStore {
 public:
  using Partial = typename Agg::Partial;
  static_assert(Agg::kInvertible,
                "PrefixStore requires an invertible aggregate function");

  explicit PrefixStore(Agg agg = Agg())
      : agg_(std::move(agg)), total_(agg_.Identity()) {}

  void Append(Timestamp start, Partial p) {
    STREAMLINE_DCHECK(starts_.empty() || start >= starts_.back());
    starts_.push_back(start);
    cum_before_.push_back(total_);
    total_ = agg_.Combine(total_, p);
    ++combine_ops_;
  }

  size_t BeginIndex() const { return base_; }
  size_t EndIndex() const { return base_ + starts_.size(); }
  size_t size() const { return starts_.size(); }

  size_t LowerBound(Timestamp t) const {
    auto it = std::lower_bound(starts_.begin(), starts_.end(), t);
    return base_ + static_cast<size_t>(it - starts_.begin());
  }

  /// See LinearStore::HasCutAt.
  bool HasCutAt(Timestamp t) const {
    return std::binary_search(starts_.begin(), starts_.end(), t);
  }

  Partial RangeCombine(size_t i, size_t j) {
    STREAMLINE_DCHECK(i >= BeginIndex() && j <= EndIndex() && i <= j);
    const Partial& ci = CumBefore(i);
    const Partial& cj = CumBefore(j);
    ++combine_ops_;
    return agg_.Invert(cj, ci);
  }

  void EvictBefore(size_t i) {
    while (base_ < i && !starts_.empty()) {
      starts_.pop_front();
      cum_before_.pop_front();
      ++base_;
    }
  }

  uint64_t combine_ops() const { return combine_ops_; }

  template <typename SerFn>
  void Snapshot(BinaryWriter* w, const SerFn& ser) const {
    w->WriteU64(base_);
    w->WriteU64(starts_.size());
    for (size_t k = 0; k < starts_.size(); ++k) {
      w->WriteI64(starts_[k]);
      ser(cum_before_[k], w);
    }
    ser(total_, w);
  }

  template <typename DeFn>
  Status Restore(BinaryReader* r, const DeFn& de) {
    auto base = r->ReadU64();
    if (!base.ok()) return base.status();
    auto n = r->ReadU64();
    if (!n.ok()) return n.status();
    starts_.clear();
    cum_before_.clear();
    base_ = *base;
    for (uint64_t k = 0; k < *n; ++k) {
      auto start = r->ReadI64();
      if (!start.ok()) return start.status();
      auto p = de(r);
      if (!p.ok()) return p.status();
      starts_.push_back(*start);
      cum_before_.push_back(std::move(*p));
    }
    auto total = de(r);
    if (!total.ok()) return total.status();
    total_ = std::move(*total);
    return Status::Ok();
  }

 private:
  const Partial& CumBefore(size_t logical) {
    if (logical == EndIndex()) return total_;
    return cum_before_[logical - base_];
  }

  Agg agg_;
  size_t base_ = 0;
  std::deque<Timestamp> starts_;
  std::deque<Partial> cum_before_;  // cumulative of everything before slice k
  Partial total_;                   // cumulative of all appended slices
  uint64_t combine_ops_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_AGG_SLICE_STORE_H_
