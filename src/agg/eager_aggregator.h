#ifndef STREAMLINE_AGG_EAGER_AGGREGATOR_H_
#define STREAMLINE_AGG_EAGER_AGGREGATOR_H_

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregator.h"
#include "common/logging.h"
#include "window/aggregate_fn.h"

namespace streamline {

/// Eager per-window aggregation — the pre-Cutty state of practice (Apache
/// Flink 1.x aligned windows): every record is folded into the running
/// partial of EVERY window that contains it. With range r and slide s this
/// costs r/s partial updates per record and per query; the cost Cutty's
/// slicing removes. Supports periodic (tumbling/sliding) windows only, like
/// the systems it models.
template <typename Agg>
class EagerAggregator : public WindowAggregator<Agg> {
 public:
  using Input = typename Agg::Input;
  using Partial = typename Agg::Partial;
  using Output = typename Agg::Output;
  using ResultCallback = typename WindowAggregator<Agg>::ResultCallback;

  explicit EagerAggregator(Agg agg = Agg()) : agg_(std::move(agg)) {}

  size_t AddQuery(std::unique_ptr<WindowFunction> wf,
                  ResultCallback cb) override {
    STREAMLINE_CHECK_EQ(stats_.elements, 0u);
    auto* sliding = dynamic_cast<SlidingWindowFn*>(wf.get());
    STREAMLINE_CHECK(sliding != nullptr)
        << "EagerAggregator supports periodic windows only, got "
        << wf->Name();
    queries_.push_back(QueryState{sliding->range(), sliding->slide(),
                                  sliding->origin(), std::move(cb),
                                  {}});
    return queries_.size() - 1;
  }

  using WindowAggregator<Agg>::OnElement;

  void OnElement(Timestamp ts, const Input& value,
                 const Value& payload) override {
    (void)payload;
    // Fire first: completed windows (end <= ts) never contain this element.
    FireUpTo(ts);
    const Partial lifted = agg_.Lift(value);
    for (QueryState& q : queries_) {
      // Enumerate the windows containing ts: aligned begins in (ts-r, ts].
      Timestamp b = q.origin + FloorDiv(ts - q.origin, q.slide) * q.slide;
      for (; b > ts - q.range; b -= q.slide) {
        if (b > ts) continue;  // can happen only when slide > range
        const Window w{b, b + q.range};
        auto [it, inserted] = q.open.try_emplace(w, agg_.Identity());
        if (inserted) ++stats_.slices_created;
        it->second = agg_.Combine(it->second, lifted);
        ++stats_.partial_updates;
      }
    }
    ++stats_.elements;
    UpdatePeak();
  }

  /// Batch entry point. After FireUpTo(t0) every open window contains t0,
  /// so until the next aligned window begin (b0 + slide per query) or the
  /// earliest open-window end, the set of windows containing an element is
  /// constant and no fires are due. The whole run is prefolded into one
  /// partial (contiguous kernel) and combined once per member window,
  /// replacing one Combine per (element, window) -- associativity is all
  /// that is needed, since every run element is later in stream order than
  /// everything previously folded into those windows.
  void OnElements(const Timestamp* ts, const Input* values,
                  size_t n) override {
    size_t i = 0;
    while (i < n) {
      const Timestamp t0 = ts[i];
      FireUpTo(t0);
      Timestamp horizon = kMaxTimestamp;
      member_scratch_.clear();
      for (QueryState& q : queries_) {
        const Timestamp b0 =
            q.origin + FloorDiv(t0 - q.origin, q.slide) * q.slide;
        horizon = std::min(horizon, b0 + q.slide);
        for (Timestamp b = b0; b > t0 - q.range; b -= q.slide) {
          if (b > t0) continue;  // can happen only when slide > range
          const Window w{b, b + q.range};
          auto [it, inserted] = q.open.try_emplace(w, agg_.Identity());
          if (inserted) ++stats_.slices_created;
          // std::map nodes are stable; pointers survive later emplaces.
          member_scratch_.push_back(&it->second);
        }
        if (!q.open.empty()) {
          horizon = std::min(horizon, q.open.begin()->first.end);
        }
      }
      size_t j = i + 1;
      while (j < n && ts[j] < horizon) ++j;
      if (j - i == 1) {
        const Partial lifted = agg_.Lift(values[i]);
        for (Partial* p : member_scratch_) *p = agg_.Combine(*p, lifted);
      } else {
        Partial run = agg_.Lift(values[i]);
        AggFoldSpan(agg_, &run, values + i + 1, j - i - 1);
        for (Partial* p : member_scratch_) *p = agg_.Combine(*p, run);
      }
      // Count the work actually done: the prefold plus one combine per
      // member window (equals the per-element count when the run is 1).
      stats_.partial_updates += (j - i - 1) + member_scratch_.size();
      stats_.elements += j - i;
      UpdatePeak();
      i = j;
    }
  }

  void OnWatermark(Timestamp wm) override {
    FireUpTo(wm);
    UpdatePeak();
  }

  const AggStats& stats() const override { return stats_; }
  std::string name() const override { return "eager"; }

 private:
  struct QueryState {
    Duration range;
    Duration slide;
    Timestamp origin;
    ResultCallback cb;
    // Open windows ordered by end (Window::operator< orders by end first),
    // so firing pops a prefix.
    std::map<Window, Partial> open;
  };

  static int64_t FloorDiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
  }

  void FireUpTo(Timestamp wm) {
    for (size_t qi = 0; qi < queries_.size(); ++qi) {
      QueryState& q = queries_[qi];
      auto it = q.open.begin();
      while (it != q.open.end() && it->first.end <= wm) {
        ++stats_.fires;
        if (q.cb) q.cb(qi, it->first, agg_.Lower(it->second));
        it = q.open.erase(it);
      }
    }
  }

  void UpdatePeak() {
    uint64_t total = 0;
    for (const QueryState& q : queries_) total += q.open.size();
    stats_.peak_stored = std::max(stats_.peak_stored, total);
  }

  Agg agg_;
  std::vector<QueryState> queries_;
  // Scratch: pointers to the member windows of the current run (capacity
  // persists across calls).
  std::vector<Partial*> member_scratch_;
  AggStats stats_;
};

}  // namespace streamline

#endif  // STREAMLINE_AGG_EAGER_AGGREGATOR_H_
