#ifndef STREAMLINE_COMMON_LOGGING_H_
#define STREAMLINE_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace streamline {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log message emitter; flushes on destruction and aborts the
/// process for kFatal messages.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows log streams that are disabled at the current level.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns a streamed log expression into void so it can appear in the else
/// branch of a ternary (glog's LogMessageVoidify trick). operator& binds
/// looser than operator<<, so message chaining still works.
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace streamline

#define STREAMLINE_LOG_AT(level)                                         \
  ::streamline::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define LOG_DEBUG STREAMLINE_LOG_AT(::streamline::LogLevel::kDebug)
#define LOG_INFO STREAMLINE_LOG_AT(::streamline::LogLevel::kInfo)
#define LOG_WARNING STREAMLINE_LOG_AT(::streamline::LogLevel::kWarning)
#define LOG_ERROR STREAMLINE_LOG_AT(::streamline::LogLevel::kError)
#define LOG_FATAL STREAMLINE_LOG_AT(::streamline::LogLevel::kFatal)

/// CHECK aborts (with a log message) when `cond` is false. Used for
/// programmer errors / invariant violations, never for recoverable errors.
/// Supports message chaining: STREAMLINE_CHECK(x) << "context".
#define STREAMLINE_CHECK(cond)                                       \
  (cond) ? (void)0                                                   \
         : ::streamline::internal::Voidify() &                       \
               STREAMLINE_LOG_AT(::streamline::LogLevel::kFatal)     \
                   << "CHECK failed: " #cond " "

#define STREAMLINE_CHECK_OP(a, b, op)                                \
  ((a)op(b)) ? (void)0                                               \
             : ::streamline::internal::Voidify() &                   \
                   STREAMLINE_LOG_AT(::streamline::LogLevel::kFatal) \
                       << "CHECK failed: " #a " " #op " " #b " ("    \
                       << (a) << " vs " << (b) << ") "

#define STREAMLINE_CHECK_EQ(a, b) STREAMLINE_CHECK_OP(a, b, ==)
#define STREAMLINE_CHECK_NE(a, b) STREAMLINE_CHECK_OP(a, b, !=)
#define STREAMLINE_CHECK_LT(a, b) STREAMLINE_CHECK_OP(a, b, <)
#define STREAMLINE_CHECK_LE(a, b) STREAMLINE_CHECK_OP(a, b, <=)
#define STREAMLINE_CHECK_GT(a, b) STREAMLINE_CHECK_OP(a, b, >)
#define STREAMLINE_CHECK_GE(a, b) STREAMLINE_CHECK_OP(a, b, >=)

/// Aborts when `expr` evaluates to a non-OK Status.
#define STREAMLINE_CHECK_OK(expr)                                        \
  do {                                                                   \
    const ::streamline::Status _st = (expr);                             \
    if (!_st.ok()) {                                                     \
      STREAMLINE_LOG_AT(::streamline::LogLevel::kFatal)                  \
          << "CHECK_OK failed: " << _st.ToString();                      \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
// `cond` stays referenced (no unused warnings) but is never evaluated.
#define STREAMLINE_DCHECK(cond) STREAMLINE_CHECK(true || (cond))
#else
#define STREAMLINE_DCHECK(cond) STREAMLINE_CHECK(cond)
#endif

#endif  // STREAMLINE_COMMON_LOGGING_H_
