#ifndef STREAMLINE_COMMON_VALUE_H_
#define STREAMLINE_COMMON_VALUE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <variant>

#include "common/logging.h"

namespace streamline {

namespace internal {
/// Test hook for the hash-once routing contract: when non-null, every
/// Value::Hash() call increments this counter. Set it before any job
/// threads start and clear it after they joined; never leave it pointing
/// at a dead counter.
extern std::atomic<uint64_t>* value_hash_calls;
}  // namespace internal

/// Runtime type tag of a Value.
enum class DataType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kBool = 3,
  kString = 4,
};

/// Returns a stable name ("int64", "double", ...) for `type`.
std::string_view DataTypeToString(DataType type);

/// Dynamically typed scalar used by the Record row model. Values are small,
/// copyable and hashable; the engine uses them for fields and keys.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(bool v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  static Value Null() { return Value(); }

  DataType type() const {
    return static_cast<DataType>(v_.index());
  }
  bool is_null() const { return type() == DataType::kNull; }

  /// Checked accessors; CHECK-fail on type mismatch.
  int64_t AsInt64() const {
    STREAMLINE_CHECK(type() == DataType::kInt64);
    return std::get<int64_t>(v_);
  }
  double AsDouble() const {
    STREAMLINE_CHECK(type() == DataType::kDouble);
    return std::get<double>(v_);
  }
  bool AsBool() const {
    STREAMLINE_CHECK(type() == DataType::kBool);
    return std::get<bool>(v_);
  }
  const std::string& AsString() const {
    STREAMLINE_CHECK(type() == DataType::kString);
    return std::get<std::string>(v_);
  }

  /// Numeric coercion: int64/double/bool widen to double; CHECK-fails for
  /// strings and nulls. Used by dynamic aggregate functions.
  double ToDouble() const;

  /// Human-readable rendering, e.g. for sinks and debugging.
  std::string ToString() const;

  /// Stable 64-bit hash (used for hash partitioning and keyed state).
  uint64_t Hash() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Ordering across same-typed values; CHECK-fails across distinct types
  /// (except null which sorts first).
  bool operator<(const Value& other) const;

 private:
  std::variant<std::monostate, int64_t, double, bool, std::string> v_;
};

/// Key hash used by the engine for shuffle routing and keyed state. A thin
/// normalization over Value::Hash() that never returns 0, so 0 can mean
/// "no hash attached" on Record::key_hash. The router and every keyed
/// state backend must agree on this function -- a record partitioned with
/// one hash and looked up with another would silently split its key.
inline uint64_t KeyHashOf(const Value& v) {
  const uint64_t h = v.Hash();
  return h != 0 ? h : 0x9E3779B97F4A7C15ULL;
}

}  // namespace streamline

namespace std {
template <>
struct hash<streamline::Value> {
  size_t operator()(const streamline::Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};
}  // namespace std

#endif  // STREAMLINE_COMMON_VALUE_H_
