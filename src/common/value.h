#ifndef STREAMLINE_COMMON_VALUE_H_
#define STREAMLINE_COMMON_VALUE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>
#include <string>
#include <utility>

#include "common/logging.h"

namespace streamline {

namespace internal {
/// Test hook for the hash-once routing contract: when non-null, every
/// Value::Hash() call increments this counter. Set it before any job
/// threads start and clear it after they joined; never leave it pointing
/// at a dead counter.
extern std::atomic<uint64_t>* value_hash_calls;
}  // namespace internal

/// Runtime type tag of a Value.
enum class DataType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kBool = 3,
  kString = 4,
};

/// Returns a stable name ("int64", "double", ...) for `type`.
std::string_view DataTypeToString(DataType type);

/// Dynamically typed scalar used by the Record row model. Values are small,
/// copyable and hashable; the engine uses them for fields and keys.
///
/// Implemented as a 16-byte hand-rolled tagged union rather than
/// std::variant: records are moved and copied on every hot path (batches,
/// channels, keyed state, window buffers), and for the numeric types that
/// dominate those paths this representation makes a move or copy a tag
/// check plus one 8-byte store. The string alternative is boxed behind an
/// owning pointer, which makes Value *trivially relocatable*: moving a
/// span of Values is one memcpy plus forgetting the source (see
/// RelocateSpan), the primitive FieldVec and the batch path build on.
/// The cost is one extra indirection and a heap allocation per string
/// value -- strings are cold on the engine's numeric hot paths.
class Value {
 public:
  Value() noexcept : type_(DataType::kNull) { p_.i = 0; }
  explicit Value(int64_t v) noexcept : type_(DataType::kInt64) { p_.i = v; }
  explicit Value(double v) noexcept : type_(DataType::kDouble) { p_.d = v; }
  explicit Value(bool v) noexcept : type_(DataType::kBool) {
    p_.i = 0;  // define all payload bytes so raw copies are fully read
    p_.b = v;
  }
  explicit Value(std::string v) : type_(DataType::kString) {
    p_.s = new std::string(std::move(v));
  }
  explicit Value(const char* v) : Value(std::string(v)) {}

  Value(const Value& other) { CopyFrom(other); }
  Value(Value&& other) noexcept : type_(other.type_), p_(other.p_) {
    other.type_ = DataType::kNull;  // payload ownership transferred
    other.p_.i = 0;
  }

  Value& operator=(const Value& other) {
    if (this == &other) return *this;
    if (type_ == DataType::kString) {
      if (other.type_ == DataType::kString) {
        *p_.s = *other.p_.s;  // reuse the existing string's capacity
        return *this;
      }
      delete p_.s;
    }
    CopyFrom(other);
    return *this;
  }
  Value& operator=(Value&& other) noexcept {
    if (this == &other) return *this;
    if (type_ == DataType::kString) delete p_.s;
    type_ = other.type_;
    p_ = other.p_;
    other.type_ = DataType::kNull;
    other.p_.i = 0;
    return *this;
  }

  ~Value() {
    if (type_ == DataType::kString) delete p_.s;
  }

  static Value Null() { return Value(); }

  /// Relocates `n` Values from `from` onto `to` as if by move-construct +
  /// destroy-source, but with one byte copy: the string payload is an
  /// owning pointer, so the object representation is position-independent.
  /// `to` must hold Values that own no payload (null, or freshly
  /// constructed); the source elements are reset to null so their
  /// destructors are no-ops.
  static void RelocateSpan(Value* to, Value* from, size_t n) noexcept {
    std::memcpy(static_cast<void*>(to), static_cast<const void*>(from),
                n * sizeof(Value));
    // All-zero bytes is exactly the null Value (kNull tag + zero payload),
    // so forgetting the source is one memset. With a compile-time n both
    // calls lower to straight stores, no libc call.
    std::memset(static_cast<void*>(from), 0, n * sizeof(Value));
  }

  /// Destroys `n` Values in place and leaves them null: releases any
  /// string payloads, then zeroes the span. The branchy per-element work
  /// is only the string check; the reset is one memset.
  static void DestroySpan(Value* v, size_t n) noexcept {
    for (size_t i = 0; i < n; ++i) {
      if (v[i].type_ == DataType::kString) delete v[i].p_.s;
    }
    std::memset(static_cast<void*>(v), 0, n * sizeof(Value));
  }

  DataType type() const { return type_; }
  bool is_null() const { return type() == DataType::kNull; }

  /// Checked accessors; CHECK-fail on type mismatch.
  int64_t AsInt64() const {
    STREAMLINE_CHECK(type() == DataType::kInt64);
    return p_.i;
  }
  double AsDouble() const {
    STREAMLINE_CHECK(type() == DataType::kDouble);
    return p_.d;
  }
  bool AsBool() const {
    STREAMLINE_CHECK(type() == DataType::kBool);
    return p_.b;
  }
  const std::string& AsString() const {
    STREAMLINE_CHECK(type() == DataType::kString);
    return *p_.s;
  }

  /// Numeric coercion: int64/double/bool widen to double; CHECK-fails for
  /// strings and nulls. Used by dynamic aggregate functions.
  double ToDouble() const;

  /// Human-readable rendering, e.g. for sinks and debugging.
  std::string ToString() const;

  /// Stable 64-bit hash (used for hash partitioning and keyed state).
  uint64_t Hash() const;

  bool operator==(const Value& other) const {
    if (type_ != other.type_) return false;
    switch (type_) {
      case DataType::kNull:
        return true;
      case DataType::kInt64:
        return p_.i == other.p_.i;
      case DataType::kDouble:
        return p_.d == other.p_.d;  // IEEE semantics: NaN != NaN, -0 == +0
      case DataType::kBool:
        return p_.b == other.p_.b;
      case DataType::kString:
        return *p_.s == *other.p_.s;
    }
    return false;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Ordering across same-typed values; CHECK-fails across distinct types
  /// (except null which sorts first).
  bool operator<(const Value& other) const;

 private:
  union Payload {
    int64_t i;
    double d;
    bool b;
    std::string* s;  // owned; boxed so Value stays trivially relocatable
  };

  void CopyFrom(const Value& other) {
    type_ = other.type_;
    if (other.type_ == DataType::kString) {
      p_.s = new std::string(*other.p_.s);
    } else {
      // All non-string payloads are fully-defined scalars of <= 8 bytes
      // (bool zero-fills the rest); one union copy covers them branch-free.
      p_ = other.p_;
    }
  }

  DataType type_;
  Payload p_;
};

// RelocateSpan/DestroySpan reset vacated storage with memset: an all-zero
// object representation must stay a valid null Value.
static_assert(static_cast<uint8_t>(DataType::kNull) == 0,
              "zeroed bytes must denote the null Value");

/// Key hash used by the engine for shuffle routing and keyed state. A thin
/// normalization over Value::Hash() that never returns 0, so 0 can mean
/// "no hash attached" on Record::key_hash. The router and every keyed
/// state backend must agree on this function -- a record partitioned with
/// one hash and looked up with another would silently split its key.
inline uint64_t KeyHashOf(const Value& v) {
  const uint64_t h = v.Hash();
  return h != 0 ? h : 0x9E3779B97F4A7C15ULL;
}

}  // namespace streamline

namespace std {
template <>
struct hash<streamline::Value> {
  size_t operator()(const streamline::Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};
}  // namespace std

#endif  // STREAMLINE_COMMON_VALUE_H_
