#ifndef STREAMLINE_COMMON_MUTEX_H_
#define STREAMLINE_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace streamline {

/// Annotated wrapper over std::mutex. This is the only place in the engine
/// where std::mutex may appear (enforced by tools/lint/check_invariants.py);
/// everything else takes Mutex so Clang's thread-safety analysis can prove
/// lock discipline. Same cost as std::mutex -- the annotations compile away.
class STREAMLINE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() STREAMLINE_ACQUIRE() { mu_.lock(); }
  void Unlock() STREAMLINE_RELEASE() { mu_.unlock(); }
  bool TryLock() STREAMLINE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock; the scoped capability lets the analysis treat the guarded
/// region as "mu held" for the lock object's lifetime.
class STREAMLINE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) STREAMLINE_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() STREAMLINE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with Mutex. Waits must be written as explicit
/// `while (!cond) cv.Wait(&mu);` loops rather than predicate lambdas: the
/// thread-safety analysis cannot see capabilities inside a lambda body, so a
/// predicate touching a GUARDED_BY field would trip -Wthread-safety.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu, blocks, reacquires *mu before returning.
  void Wait(Mutex* mu) STREAMLINE_REQUIRES(mu) {
    // Borrow the already-held native handle for the wait, then hand
    // ownership straight back so the MutexLock destructor stays the one
    // true unlock site.
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed wait; returns std::cv_status::timeout on expiry. Callers that
  /// need a deadline loop should compute the deadline once and re-derive
  /// the remaining duration per iteration.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex* mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      STREAMLINE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(native, timeout);
    native.release();
    return st;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_MUTEX_H_
