#ifndef STREAMLINE_COMMON_SPSC_RING_H_
#define STREAMLINE_COMMON_SPSC_RING_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "common/mutex.h"

namespace streamline {

/// Cache-line size used for padding hot atomics. 64 bytes covers x86 and
/// most ARM cores; over-aligning on exotic hardware only wastes bytes.
inline constexpr size_t kCacheLineSize = 64;

/// Bounded lock-free single-producer/single-consumer ring buffer -- the
/// engine's per-edge data-plane channel. One thread may call the producer
/// side (TryPush), one thread the consumer side (TryPop); head and tail
/// live on separate cache lines and each side keeps a cached copy of the
/// other's index, so the steady-state fast path touches no shared cache
/// line beyond the slot itself (acquire/release ordering only, no RMW).
///
/// Capacity is rounded up to a power of two. Elements must be
/// default-constructible and move-assignable.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity)
      : capacity_(RoundUpPow2(capacity < 1 ? 1 : capacity)),
        mask_(capacity_ - 1),
        slots_(new T[capacity_]) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full.
  bool TryPush(T&& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer-side full check (exact for the producer, approximate
  /// elsewhere).
  bool Full() const {
    return tail_.load(std::memory_order_acquire) -
               head_.load(std::memory_order_acquire) >=
           capacity_;
  }

  /// Consumer-side empty check (exact for the consumer, approximate
  /// elsewhere).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate element count (exact only from a quiescent state).
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  size_t capacity() const { return capacity_; }

 private:
  static size_t RoundUpPow2(size_t v) {
    size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<T[]> slots_;

  // Consumer-owned line: read index plus a cached copy of the producer's
  // tail (refreshed only when the ring looks empty).
  alignas(kCacheLineSize) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;

  // Producer-owned line, symmetric.
  alignas(kCacheLineSize) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;

  // Keep the producer line from sharing its cache line with whatever is
  // allocated after this object.
  char pad_[kCacheLineSize - sizeof(std::atomic<uint64_t>) - sizeof(uint64_t)];
};

/// Readiness signal a channel fires after every successful push (and on
/// close). Two implementations exist: Doorbell wakes a dedicated consumer
/// thread parked on a condvar (thread-per-task mode), and the executor's
/// task notifier marks the consuming task runnable on the work-stealing
/// pool (scheduler mode). Wake() must be cheap, non-blocking, and safe
/// from any thread.
class Waker {
 public:
  virtual ~Waker() = default;
  virtual void Wake() = 0;
};

/// Wakeup channel for a consumer that multiplexes several SPSC rings: the
/// consumer parks here when every ring is empty, producers ring it after a
/// push. The fast path for a producer is a single relaxed-ish atomic load
/// (`parked` is almost always false); the mutex is touched only around
/// actual parking.
///
/// Park uses a short timed wait as a backstop so a theoretically lost
/// wakeup (the flag check racing with a push on another core) costs at
/// most one timeout period instead of a hang.
class Doorbell : public Waker {
 public:
  void Wake() override { Ring(); }

  /// Producer side: wake the consumer if it is (or is about to be) parked.
  void Ring() {
    if (parked_.load(std::memory_order_seq_cst)) {
      // Empty critical section: serializes with the consumer between its
      // predicate check and its wait, so the notify cannot fall in between.
      { MutexLock lock(&mu_); }
      cv_.NotifyOne();
    }
  }

  /// Consumer side: block until `ready()` (re-evaluated on every wakeup).
  /// `ready` must be safe to call from the consumer thread only.
  template <typename Pred>
  void Park(Pred ready) {
    MutexLock lock(&mu_);
    parked_.store(true, std::memory_order_seq_cst);
    while (!ready()) {
      cv_.WaitFor(&mu_, std::chrono::milliseconds(1));
    }
    parked_.store(false, std::memory_order_seq_cst);
  }

 private:
  // mu_ only orders the park/ring handshake; the state itself (parked_) is
  // an atomic, so nothing is GUARDED_BY it.
  Mutex mu_;
  CondVar cv_;
  std::atomic<bool> parked_{false};
};

/// Blocking single-producer/single-consumer channel: an SpscRing plus the
/// engine's channel protocol -- backpressure (Push blocks when the ring is
/// full, after a short spin), close-and-drain semantics matching
/// BoundedQueue (after Close, Push is rejected and Pop drains the
/// remaining elements before reporting end-of-channel), and an optional
/// shared Doorbell so one consumer can park across many channels.
template <typename T>
class SpscChannel {
 public:
  /// `doorbell` (optional, not owned) is rung after every successful push;
  /// a consumer multiplexing several channels parks on it. It also becomes
  /// the initial waker; see set_waker.
  explicit SpscChannel(size_t capacity, Doorbell* doorbell = nullptr)
      : ring_(capacity), doorbell_(doorbell), waker_(doorbell) {}

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  /// Producer: blocks until there is room (backpressure) or the channel is
  /// closed. Returns false when the element was rejected because of close.
  bool Push(T item) {
    for (int spin = 0; spin < kPushSpinBudget; ++spin) {
      if (closed_.load(std::memory_order_acquire)) return false;
      if (ring_.TryPush(std::move(item))) {
        if (waker_ != nullptr) waker_->Wake();
        return true;
      }
      std::this_thread::yield();
    }
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return false;
      if (ring_.TryPush(std::move(item))) {
        if (waker_ != nullptr) waker_->Wake();
        return true;
      }
      WaitNotFull();
    }
  }

  /// Producer: non-blocking push; false when full or closed.
  bool TryPush(T&& item) {
    if (closed_.load(std::memory_order_acquire)) return false;
    if (!ring_.TryPush(std::move(item))) return false;
    if (waker_ != nullptr) waker_->Wake();
    return true;
  }

  /// Consumer: non-blocking pop; false when currently empty (not
  /// necessarily closed). Wakes a producer blocked on backpressure.
  bool TryPop(T* out) {
    if (!ring_.TryPop(out)) return false;
    NotifyNotFull();
    return true;
  }

  /// Consumer: blocks until an element is available or the channel is
  /// closed and drained. Returns nullopt only at end-of-channel.
  std::optional<T> Pop() {
    T item;
    for (int spin = 0;; ++spin) {
      if (TryPop(&item)) return item;
      if (closed_.load(std::memory_order_acquire)) {
        // Closed: one more pop attempt covers an element pushed between
        // the failed TryPop and the close check.
        if (TryPop(&item)) return item;
        return std::nullopt;
      }
      if (spin < kPushSpinBudget) {
        std::this_thread::yield();
      } else if (doorbell_ != nullptr) {
        doorbell_->Park([&] {
          return !ring_.Empty() || closed_.load(std::memory_order_acquire);
        });
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  /// Marks the channel closed: the producer is rejected, the consumer
  /// drains whatever is buffered and then sees end-of-channel. Callable
  /// from any thread.
  void Close() {
    closed_.store(true, std::memory_order_release);
    {
      MutexLock lock(&mu_);
    }
    not_full_.NotifyAll();
    if (waker_ != nullptr) waker_->Wake();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate; see SpscRing::size.
  size_t size() const { return ring_.size(); }
  size_t capacity() const { return ring_.capacity(); }
  bool Empty() const { return ring_.Empty(); }

  Doorbell* doorbell() const { return doorbell_; }

  /// Replaces the push/close readiness signal (by default the doorbell
  /// passed at construction). The scheduler wires a task notifier here so
  /// a push marks the consuming task runnable instead of waking a parked
  /// thread. Must be called before the producer starts pushing; the
  /// blocking Pop's park still uses the doorbell, so consumers either
  /// block on the doorbell or get scheduled via the waker, never both.
  void set_waker(Waker* waker) { waker_ = waker; }

  /// Producer-side timed wait for space (1 ms backstop, returns early when
  /// the consumer pops or the channel closes). Public so a scheduler-mode
  /// producer can interleave waiting with running other ready tasks
  /// instead of blocking inside Push.
  void WaitNotFull() {
    MutexLock lock(&mu_);
    producer_waiting_.store(true, std::memory_order_seq_cst);
    if (!closed_.load(std::memory_order_acquire) && ring_.Full()) {
      // Timed backstop: a pop racing with the waiting-flag handshake can
      // at worst delay us one period, never strand us.
      not_full_.WaitFor(&mu_, std::chrono::milliseconds(1));
    }
    producer_waiting_.store(false, std::memory_order_seq_cst);
  }

 private:
  // Spins before parking. Deliberately small: on a loaded host the other
  // side of the channel needs the core more than we need the spin.
  static constexpr int kPushSpinBudget = 64;

  void NotifyNotFull() {
    if (producer_waiting_.load(std::memory_order_seq_cst)) {
      { MutexLock lock(&mu_); }
      not_full_.NotifyOne();
    }
  }

  SpscRing<T> ring_;
  Doorbell* doorbell_;
  Waker* waker_;
  std::atomic<bool> closed_{false};

  // Slow path only: producer backpressure parking. Like Doorbell, mu_ just
  // orders the handshake around atomics; no fields are GUARDED_BY it.
  Mutex mu_;
  CondVar not_full_;
  std::atomic<bool> producer_waiting_{false};
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_SPSC_RING_H_
