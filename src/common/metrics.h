#ifndef STREAMLINE_COMMON_METRICS_H_
#define STREAMLINE_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace streamline {

/// Monotonically increasing counter; lock-free.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge; lock-free.
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }
  double value() const {
    return Decode(bits_.load(std::memory_order_relaxed));
  }

 private:
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

/// Histogram over positive values with logarithmic buckets (~4% relative
/// resolution). Suited to latency and batch-size distributions.
class Histogram {
 public:
  Histogram();

  void Record(double value);
  uint64_t count() const;
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  /// q in [0, 1]; interpolates within the matched bucket.
  double Quantile(double q) const;
  void Reset();

  /// "count=.. mean=.. p50=.. p95=.. p99=.. max=..".
  std::string Summary() const;

 private:
  static constexpr int kNumBuckets = 512;
  static int BucketFor(double value);
  static double BucketLowerBound(int bucket);

  mutable Mutex mu_;
  std::vector<uint64_t> buckets_ STREAMLINE_GUARDED_BY(mu_);
  uint64_t count_ STREAMLINE_GUARDED_BY(mu_) = 0;
  double sum_ STREAMLINE_GUARDED_BY(mu_) = 0;
  double min_ STREAMLINE_GUARDED_BY(mu_) = 0;
  double max_ STREAMLINE_GUARDED_BY(mu_) = 0;
};

/// Wall-clock stopwatch for benchmark harness timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Restart() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Named registry so operators/tasks can expose metrics without plumbing.
/// Thread-safe; returned pointers stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Renders all metrics, one "name value" line each, sorted by name.
  std::string Report() const;

  /// Process-wide default registry.
  static MetricsRegistry* Default();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      STREAMLINE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      STREAMLINE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      STREAMLINE_GUARDED_BY(mu_);
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_METRICS_H_
