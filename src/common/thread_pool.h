#ifndef STREAMLINE_COMMON_THREAD_POOL_H_
#define STREAMLINE_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace streamline {

/// Fixed-size pool of worker threads executing queued closures. Used for
/// auxiliary work (asynchronous snapshot serialization, generator shaping);
/// engine subtasks get dedicated threads because they are long-running.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Must not be called after
  /// Shutdown.
  void Submit(std::function<void()> task);

  /// Blocks until all queued and running tasks have finished.
  void Wait();

  /// Completes outstanding work and joins all workers. Idempotent; also run
  /// by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::function<void()>> tasks_ STREAMLINE_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  size_t active_ STREAMLINE_GUARDED_BY(mu_) = 0;
  bool shutdown_ STREAMLINE_GUARDED_BY(mu_) = false;
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_THREAD_POOL_H_
