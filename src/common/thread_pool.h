#ifndef STREAMLINE_COMMON_THREAD_POOL_H_
#define STREAMLINE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace streamline {

class WorkStealingPool;

/// A unit of work repeatedly executed by a WorkStealingPool: one bounded
/// "morsel" per Step() call. The pool serializes execution -- at most one
/// worker runs a given Schedulable at any instant (run-once claiming via an
/// atomic state machine), and a Notify() arriving while Step() runs re-runs
/// it afterwards instead of being lost. That serialization is what lets a
/// task own single-threaded state (operator state, SPSC ring ends) while
/// migrating freely between workers: the claim/finish transitions are
/// acquire/release pairs, so each morsel happens-before the next.
class Schedulable {
 public:
  virtual ~Schedulable() = default;

  /// Executes one bounded morsel. Returns true when more work is
  /// immediately available (the pool requeues the task), false to go idle
  /// until the next Notify(). Must not throw: wrap user code and convert
  /// failures into task state.
  virtual bool Step() = 0;

  /// Raw scheduling state for diagnostics (stall dumps); racy by nature.
  uint32_t debug_sched_state() const {
    return sched_state_.load(std::memory_order_relaxed);
  }

 private:
  friend class WorkStealingPool;

  // Scheduling state machine (see WorkStealingPool::Notify).
  static constexpr uint32_t kIdle = 0;
  static constexpr uint32_t kQueued = 1;
  static constexpr uint32_t kRunning = 2;
  static constexpr uint32_t kRunningNotified = 3;
  std::atomic<uint32_t> sched_state_{kIdle};
};

/// Scheduler observability: monotone counters kept as plain atomics so the
/// hot path never touches the metrics registry; the executor exports them
/// as `scheduler.*` metrics.
struct SchedulerCounters {
  std::atomic<uint64_t> morsels_local{0};    // run from the worker's own deque
  std::atomic<uint64_t> morsels_stolen{0};   // run after stealing from a peer
  std::atomic<uint64_t> morsels_injected{0}; // run from the global queue
  std::atomic<uint64_t> morsels_inline{0};   // run inside a backpressure wait
  std::atomic<uint64_t> steals{0};           // successful steal operations
  std::atomic<uint64_t> parks{0};            // worker park events
  std::atomic<uint64_t> wakeups{0};          // NotifyOne calls on parked workers
  std::atomic<uint64_t> notifies{0};         // Notify() calls that enqueued
};

/// Fixed pool of worker threads executing Schedulable morsels: each worker
/// owns a deque of ready tasks, steals from peers when its own is empty,
/// and parks (1 ms timed backstop against lost wakeups, like Doorbell)
/// when nothing is runnable anywhere. This is the engine's morsel-driven
/// scheduler -- logical subtasks are multiplexed over a pool sized to the
/// hardware instead of getting dedicated OS threads -- and also the one
/// sanctioned home of raw std::thread (lint rule raw-thread).
///
/// A timer facility (one lazily started thread shared by all periodic
/// callbacks) replaces ad-hoc sleeper threads: checkpoint cadence and
/// idle-source re-polls run here.
class WorkStealingPool {
 public:
  struct Options {
    /// Worker count; 0 means std::thread::hardware_concurrency(). A pool
    /// with `timer_only = true` starts no workers at all and only serves
    /// ScheduleRepeating (legacy thread-per-task jobs use this for their
    /// checkpoint cadence).
    size_t num_workers = 0;
    bool timer_only = false;
    /// Worker thread names become "<prefix><index>" (pthread_setname_np,
    /// 15-char limit); keep the prefix short.
    std::string thread_name_prefix = "sl-work";
  };

  explicit WorkStealingPool(Options options);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Makes `task` runnable (idempotent while already queued). Safe from
  /// any thread, including from inside another task's Step(). The state
  /// machine guarantees: a Notify never gets lost (one arriving during
  /// Step() re-queues the task afterwards) and a task never runs on two
  /// workers at once.
  void Notify(Schedulable* task);

  /// Claims and runs one ready task on the calling thread: own deque
  /// first, then the global queue, then stealing a peer's oldest task.
  /// Returns false when nothing was runnable. This doubles as the
  /// backpressure escape hatch -- a producer blocked on a full channel
  /// keeps the pool making progress (including running the very consumer
  /// it is waiting for) instead of stalling a worker.
  bool TryRunOneTask();

  /// Claims `task` directly (from idle or queued) and runs one morsel on
  /// the calling thread; false when it is currently running elsewhere.
  /// Used by producers to drain their own full output channel's consumer.
  bool TryRunInline(Schedulable* task);

  /// Runs `fn` every `period_ms` on the shared timer thread until
  /// cancelled; returns the timer id. Callbacks must be short (notify
  /// tasks, trigger coordinators) -- they all share one thread.
  uint64_t ScheduleRepeating(int64_t period_ms, std::function<void()> fn);
  void CancelTimer(uint64_t id);

  /// Stops the workers and the timer thread and joins them. Queued morsels
  /// that have not started are dropped -- their owners are being torn down
  /// with the pool. Idempotent; also run by the destructor.
  void Shutdown();

  /// True when the calling thread is one of this pool's workers.
  bool OnWorkerThread() const;

  const SchedulerCounters& counters() const { return counters_; }
  /// Cumulative busy time of worker `i` (time spent inside Step calls).
  uint64_t WorkerBusyMicros(size_t i) const;
  /// Approximate number of queued (ready, unclaimed) tasks.
  size_t ApproxReadyDepth() const;
  /// Queue contents as task pointers, for stall dumps: "w0[0x... 0x...]
  /// g[0x...]". Racy by nature; diagnostics only.
  std::string DebugQueues();

 private:
  struct Worker {
    Mutex mu;
    std::deque<Schedulable*> deque STREAMLINE_GUARDED_BY(mu);
    // Stealers peek this without locking to skip empty victims.
    std::atomic<size_t> approx_size{0};
    std::atomic<uint64_t> busy_ns{0};
    // Owner-only acquisition counter driving the periodic global-queue
    // poll (see TryRunOneTask's fairness note).
    uint64_t tick = 0;
    // Stall-dump diagnostics: the task currently inside Step on this
    // worker (nullptr between morsels) and when it was claimed.
    std::atomic<Schedulable*> current{nullptr};
    std::atomic<uint64_t> current_since_ns{0};
    std::thread thread;
  };

  struct TimerEntry {
    uint64_t id = 0;
    int64_t period_ms = 0;
    std::chrono::steady_clock::time_point next;
    std::function<void()> fn;
  };

  void WorkerMain(size_t index);
  void TimerMain();
  /// Puts an already-kQueued task on a run queue and wakes a parked
  /// worker. Called with no locks held. `to_front` selects the hot (LIFO)
  /// end of the caller's deque; requeues after a morsel go to the back.
  void Enqueue(Schedulable* task, bool to_front);
  void WakeOne();
  void WakeAllForShutdown();
  /// CAS-claims a queued task and runs one morsel; false on a stale queue
  /// entry (the task was claimed elsewhere since it was enqueued).
  bool ClaimAndRun(Schedulable* task, std::atomic<uint64_t>* morsel_counter);
  /// Step + finish protocol (requeue on more-work or missed notify).
  void RunClaimed(Schedulable* task);
  void EnsureTimerThreadLocked() STREAMLINE_REQUIRES(timer_mu_);

  const std::string name_prefix_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> shutdown_{false};

  // Global injection queue: Notify from threads outside the pool.
  Mutex global_mu_;
  std::deque<Schedulable*> global_ STREAMLINE_GUARDED_BY(global_mu_);
  std::atomic<size_t> global_size_{0};

  // Worker parking. The atomic mirror lets WakeOne skip the mutex when
  // nobody is parked (the common case).
  Mutex park_mu_;
  CondVar park_cv_;
  size_t num_parked_ STREAMLINE_GUARDED_BY(park_mu_) = 0;
  std::atomic<int> num_parked_approx_{0};

  // Timer facility (lazy thread).
  Mutex timer_mu_;
  CondVar timer_cv_;
  std::vector<TimerEntry> timers_ STREAMLINE_GUARDED_BY(timer_mu_);
  uint64_t next_timer_id_ STREAMLINE_GUARDED_BY(timer_mu_) = 1;
  bool timer_thread_started_ STREAMLINE_GUARDED_BY(timer_mu_) = false;
  std::thread timer_thread_;

  SchedulerCounters counters_;
};

/// Closure-queue adapter over WorkStealingPool -- the historical ThreadPool
/// API (auxiliary work: asynchronous snapshot serialization, generator
/// shaping). One drainer Schedulable per worker pulls closures off a shared
/// queue, so submitted tasks run with full pool parallelism while the
/// engine keeps a single pool abstraction.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker. Must not be called after
  /// Shutdown.
  void Submit(std::function<void()> task);

  /// Blocks until all queued and running tasks have finished.
  void Wait();

  /// Completes outstanding work and joins all workers. Idempotent; also run
  /// by the destructor.
  void Shutdown();

  size_t num_threads() const { return pool_.num_workers(); }

 private:
  class Drainer : public Schedulable {
   public:
    explicit Drainer(ThreadPool* owner) : owner_(owner) {}
    bool Step() override { return owner_->DrainOne(); }

   private:
    ThreadPool* owner_;
  };

  /// Runs one queued closure; returns true when more remain.
  bool DrainOne();

  WorkStealingPool pool_;
  std::vector<std::unique_ptr<Drainer>> drainers_;
  Mutex mu_;
  CondVar idle_;
  std::deque<std::function<void()>> tasks_ STREAMLINE_GUARDED_BY(mu_);
  size_t outstanding_ STREAMLINE_GUARDED_BY(mu_) = 0;
  bool shutdown_ STREAMLINE_GUARDED_BY(mu_) = false;
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_THREAD_POOL_H_
