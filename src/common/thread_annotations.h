#ifndef STREAMLINE_COMMON_THREAD_ANNOTATIONS_H_
#define STREAMLINE_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros.
//
// These drive `-Wthread-safety`: each lock-protected field is annotated with
// the mutex that guards it (STREAMLINE_GUARDED_BY), and each function that
// must run under a lock declares it (STREAMLINE_REQUIRES). The analysis then
// proves, per translation unit, that every access happens with the right
// capability held -- turning data races from "maybe TSan catches it" into a
// compile error. Under compilers without the attributes (GCC) the macros
// expand to nothing, so the annotations are free documentation.
//
// Only src/common/mutex.h should apply the capability/acquire/release
// attributes; everything else uses GUARDED_BY / REQUIRES / EXCLUDES on its
// own members and methods.

#if defined(__clang__)
#define STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

// Marks a type as a capability ("mutex").
#define STREAMLINE_CAPABILITY(x) \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Marks an RAII type whose lifetime holds a capability.
#define STREAMLINE_SCOPED_CAPABILITY \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Field `x` may only be read/written while `mu` is held.
#define STREAMLINE_GUARDED_BY(mu) \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(mu))

// The pointed-to data (not the pointer itself) is guarded by `mu`.
#define STREAMLINE_PT_GUARDED_BY(mu) \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(mu))

// Caller must hold the capability (exclusively / shared) to call.
#define STREAMLINE_REQUIRES(...) \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define STREAMLINE_REQUIRES_SHARED(...) \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE( \
      requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the capability.
#define STREAMLINE_ACQUIRE(...) \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define STREAMLINE_RELEASE(...) \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `b`.
#define STREAMLINE_TRY_ACQUIRE(b, ...) \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE( \
      try_acquire_capability(b, __VA_ARGS__))

// Caller must NOT hold the capability (prevents self-deadlock).
#define STREAMLINE_EXCLUDES(...) \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Function returns a reference to the named capability.
#define STREAMLINE_RETURN_CAPABILITY(x) \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: turns the analysis off for one function body. Every use
// must carry a comment explaining why the invariant holds anyway.
#define STREAMLINE_NO_THREAD_SAFETY_ANALYSIS \
  STREAMLINE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // STREAMLINE_COMMON_THREAD_ANNOTATIONS_H_
