#include "common/value.h"

#include <cstring>
#include <sstream>

namespace streamline {
namespace {

// 64-bit FNV-1a over raw bytes; stable across platforms of equal endianness.
uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

}  // namespace

namespace internal {
std::atomic<uint64_t>* value_hash_calls = nullptr;
}  // namespace internal

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kBool:
      return "bool";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

double Value::ToDouble() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(p_.i);
    case DataType::kDouble:
      return p_.d;
    case DataType::kBool:
      return p_.b ? 1.0 : 0.0;
    default:
      LOG_FATAL << "Value::ToDouble on non-numeric type "
                << DataTypeToString(type());
      return 0.0;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return std::to_string(p_.i);
    case DataType::kDouble: {
      std::ostringstream os;
      os << p_.d;
      return os.str();
    }
    case DataType::kBool:
      return p_.b ? "true" : "false";
    case DataType::kString:
      return *p_.s;
  }
  return "?";
}

uint64_t Value::Hash() const {
  if (auto* c = internal::value_hash_calls; c != nullptr) {
    c->fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t seed = kFnvOffset ^ (static_cast<uint64_t>(type()) << 3);
  switch (type()) {
    case DataType::kNull:
      return seed;
    case DataType::kInt64: {
      int64_t x = p_.i;
      return Fnv1a(&x, sizeof(x), seed);
    }
    case DataType::kDouble: {
      double d = p_.d;
      if (d == 0.0) d = 0.0;  // normalize -0.0 to +0.0
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return Fnv1a(&bits, sizeof(bits), seed);
    }
    case DataType::kBool: {
      unsigned char b = p_.b ? 1 : 0;
      return Fnv1a(&b, 1, seed);
    }
    case DataType::kString: {
      const std::string& s = *p_.s;
      return Fnv1a(s.data(), s.size(), seed);
    }
  }
  return seed;
}

bool Value::operator<(const Value& other) const {
  if (type() != other.type()) {
    // Nulls sort before everything; other cross-type comparisons are bugs.
    if (is_null()) return !other.is_null();
    if (other.is_null()) return false;
    LOG_FATAL << "Value::operator< across types "
              << DataTypeToString(type()) << " vs "
              << DataTypeToString(other.type());
  }
  switch (type()) {
    case DataType::kNull:
      return false;
    case DataType::kInt64:
      return p_.i < other.p_.i;
    case DataType::kDouble:
      return p_.d < other.p_.d;
    case DataType::kBool:
      return p_.b < other.p_.b;
    case DataType::kString:
      return *p_.s < *other.p_.s;
  }
  return false;
}

}  // namespace streamline
