#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/mutex.h"

namespace streamline {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serializes writes so concurrent tasks do not interleave lines. Leaked so
// logging stays usable during static destruction.
Mutex& LogMutex() {
  static Mutex* mu = new Mutex();
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const bool fatal = level_ == LogLevel::kFatal;
  if (fatal || static_cast<int>(level_) >=
                   g_min_level.load(std::memory_order_relaxed)) {
    MutexLock lock(&LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (fatal) std::abort();
}

}  // namespace internal
}  // namespace streamline
