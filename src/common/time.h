#ifndef STREAMLINE_COMMON_TIME_H_
#define STREAMLINE_COMMON_TIME_H_

#include <cstdint>
#include <limits>

namespace streamline {

/// Event-time timestamp in milliseconds. The library never interprets event
/// time as wall-clock time; generators and tests pick their own epoch.
using Timestamp = int64_t;

/// Length of an event-time interval in milliseconds.
using Duration = int64_t;

/// Smallest representable event time; used as the initial watermark.
inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();

/// Largest representable event time. A watermark of kMaxTimestamp signals
/// that no further records will arrive (end of a bounded stream), which
/// flushes every open window.
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

/// A watermark asserts that every future record has timestamp >= `time`
/// (strictly: no record with timestamp < `time` will follow). A window
/// [start, end) is therefore complete once the watermark reaches `end`.
struct WatermarkEvent {
  Timestamp time = kMinTimestamp;
  bool IsFinal() const { return time == kMaxTimestamp; }
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_TIME_H_
