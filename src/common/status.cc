#include "common/status.h"

#include "common/logging.h"

namespace streamline {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

void Status::IgnoreError(std::string_view reason) const {
  if (!ok()) {
    LOG_DEBUG << "ignored status [" << reason << "]: " << ToString();
  }
}

}  // namespace streamline
