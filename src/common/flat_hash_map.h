#ifndef STREAMLINE_COMMON_FLAT_HASH_MAP_H_
#define STREAMLINE_COMMON_FLAT_HASH_MAP_H_

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace streamline {

/// Flat open-addressing hash map, the engine's keyed-state backend.
///
/// Layout: entries live densely in insertion order in one contiguous array;
/// the hash table itself is a separate slot array of (cached hash, entry
/// index) pairs. Lookups probe the slot array (power-of-two capacity,
/// triangular probing, so the sequence idx, idx+1, idx+3, idx+6, ... visits
/// every slot) and compare cached hashes before touching a key, so a miss
/// usually costs a few slot reads and zero key comparisons.
///
/// Why dense insertion-order storage instead of storing entries in the
/// slots directly:
///  - Iteration order is the insertion order of the live entries -- a pure
///    function of the logical operation history, independent of capacity
///    and rehash history. Snapshot serialization over this map is therefore
///    deterministic: snapshot -> restore -> snapshot round-trips are
///    byte-identical, which the chaos tests diff (a correctness
///    requirement, not a nicety).
///  - Rehashing moves only 12-byte slots, never entries, and recomputes no
///    hashes (they are cached).
///  - Iteration (watermark sweeps over every key) is a linear walk of a
///    dense array.
///
/// The map never calls a hash function: every operation takes the
/// precomputed 64-bit hash alongside the key (heterogeneous, pre-hashed
/// lookup). Callers keying by Value must use KeyHashOf() everywhere --
/// mixing hash functions for the same map silently splits keys.
///
/// Deletion: the slot is tombstoned and the entry is swap-removed from the
/// dense array (the last entry moves into the hole). Erase(iterator)
/// therefore returns an iterator at the *same* position, which is the next
/// element to visit -- matching the `it = m.Erase(it)` idiom. References
/// and iterators into the dense array are invalidated by insert and erase.
///
/// Not thread-safe; operators are single-threaded per subtask by contract.
template <typename K, typename V>
class FlatHashMap {
 public:
  using Entry = std::pair<K, V>;
  using iterator = Entry*;
  using const_iterator = const Entry*;

  FlatHashMap() = default;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  iterator begin() { return entries_.data(); }
  iterator end() { return entries_.data() + entries_.size(); }
  const_iterator begin() const { return entries_.data(); }
  const_iterator end() const { return entries_.data() + entries_.size(); }

  /// Drops all entries; keeps the current slot capacity.
  void clear() {
    entries_.clear();
    hashes_.clear();
    slots_.assign(slots_.size(), Slot{0, kEmpty});
    tombstones_ = 0;
    max_probe_ = 0;
  }

  /// Pre-sizes for `n` entries (used by state restore, which knows the
  /// count up front).
  void Reserve(size_t n) {
    entries_.reserve(n);
    hashes_.reserve(n);
    size_t cap = kMinCapacity;
    while (cap * 7 < (n + 1) * 8) cap *= 2;
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Pre-hashed lookup. `hash` must be the caller's canonical hash of
  /// `key` (KeyHashOf for Value keys). Returns null on miss.
  template <typename KeyLike>
  V* Find(uint64_t hash, const KeyLike& key) {
    return const_cast<V*>(
        static_cast<const FlatHashMap*>(this)->Find(hash, key));
  }

  template <typename KeyLike>
  const V* Find(uint64_t hash, const KeyLike& key) const {
    if (slots_.empty()) return nullptr;
    const size_t mask = slots_.size() - 1;
    size_t idx = hash & mask;
    size_t step = 0;
    while (true) {
      const Slot& s = slots_[idx];
      if (s.index == kEmpty) return nullptr;
      if (s.index != kTombstone && s.hash == hash &&
          entries_[s.index].first == key) {
        return &entries_[s.index].second;
      }
      idx = (idx + ++step) & mask;
    }
  }

  /// Inserts value_args-constructed V under (hash, key) unless present.
  /// Returns (entry, inserted). The entry pointer is invalidated by the
  /// next insert or erase.
  template <typename... Args>
  std::pair<Entry*, bool> TryEmplace(uint64_t hash, const K& key,
                                     Args&&... value_args) {
    MaybeGrow();
    const size_t mask = slots_.size() - 1;
    size_t idx = hash & mask;
    size_t step = 0;
    size_t first_tombstone = kNpos;
    while (true) {
      Slot& s = slots_[idx];
      if (s.index == kEmpty) break;
      if (s.index == kTombstone) {
        if (first_tombstone == kNpos) first_tombstone = idx;
      } else if (s.hash == hash && entries_[s.index].first == key) {
        return {&entries_[s.index], false};
      }
      idx = (idx + ++step) & mask;
    }
    if (step + 1 > max_probe_) max_probe_ = step + 1;
    if (first_tombstone != kNpos) {
      idx = first_tombstone;
      --tombstones_;
    }
    slots_[idx] = Slot{hash, static_cast<uint32_t>(entries_.size())};
    entries_.emplace_back(std::piecewise_construct,
                          std::forward_as_tuple(key),
                          std::forward_as_tuple(
                              std::forward<Args>(value_args)...));
    hashes_.push_back(hash);
    return {&entries_.back(), true};
  }

  /// Erases the entry at `it` (swap-remove). Returns an iterator at the
  /// same position: the element to visit next when sweeping.
  iterator Erase(iterator it) {
    const size_t idx = static_cast<size_t>(it - entries_.data());
    STREAMLINE_CHECK(idx < entries_.size());
    slots_[SlotOfIndex(idx)].index = kTombstone;
    ++tombstones_;
    const size_t last = entries_.size() - 1;
    if (idx != last) {
      slots_[SlotOfIndex(last)].index = static_cast<uint32_t>(idx);
      entries_[idx] = std::move(entries_[last]);
      hashes_[idx] = hashes_[last];
    }
    entries_.pop_back();
    hashes_.pop_back();
    return it;
  }

  /// Erases by (hash, key); returns whether an entry was removed.
  bool Erase(uint64_t hash, const K& key) {
    if (slots_.empty()) return false;
    const size_t mask = slots_.size() - 1;
    size_t idx = hash & mask;
    size_t step = 0;
    while (true) {
      const Slot& s = slots_[idx];
      if (s.index == kEmpty) return false;
      if (s.index != kTombstone && s.hash == hash &&
          entries_[s.index].first == key) {
        Erase(entries_.data() + s.index);
        return true;
      }
      idx = (idx + ++step) & mask;
    }
  }

  // --- observability (exported as gauges by the keyed operators) ----------

  /// Live entries over slot capacity (0 when never inserted into).
  double load_factor() const {
    return slots_.empty() ? 0.0
                          : static_cast<double>(entries_.size()) /
                                static_cast<double>(slots_.size());
  }
  /// Longest probe sequence any insert has walked since the last rehash.
  size_t max_probe_length() const { return max_probe_; }
  size_t capacity() const { return slots_.size(); }
  size_t tombstones() const { return tombstones_; }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t index = kEmpty;
  };

  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr uint32_t kTombstone = 0xFFFFFFFEu;
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 16;

  /// Slot holding entry index `target`; the entry must exist.
  size_t SlotOfIndex(size_t target) const {
    const size_t mask = slots_.size() - 1;
    size_t idx = hashes_[target] & mask;
    size_t step = 0;
    while (slots_[idx].index != target) idx = (idx + ++step) & mask;
    return idx;
  }

  /// Keeps used slots (live + tombstones) below 7/8 of capacity before an
  /// insert. Grows 2x when live entries alone cross 5/8, else rehashes in
  /// place to purge tombstones.
  void MaybeGrow() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
      return;
    }
    const size_t used = entries_.size() + tombstones_ + 1;
    if (used * 8 <= slots_.size() * 7) return;
    const size_t cap = (entries_.size() + 1) * 8 > slots_.size() * 5
                           ? slots_.size() * 2
                           : slots_.size();
    Rehash(cap);
  }

  void Rehash(size_t new_cap) {
    slots_.assign(new_cap, Slot{0, kEmpty});
    tombstones_ = 0;
    max_probe_ = 0;
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < entries_.size(); ++i) {
      size_t idx = hashes_[i] & mask;
      size_t step = 0;
      while (slots_[idx].index != kEmpty) idx = (idx + ++step) & mask;
      if (step + 1 > max_probe_) max_probe_ = step + 1;
      slots_[idx] = Slot{hashes_[i], static_cast<uint32_t>(i)};
    }
  }

  std::vector<Entry> entries_;     // dense, insertion order
  std::vector<uint64_t> hashes_;   // hashes_[i] = hash of entries_[i].first
  std::vector<Slot> slots_;        // power-of-two open-addressing table
  size_t tombstones_ = 0;
  size_t max_probe_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_FLAT_HASH_MAP_H_
