#ifndef STREAMLINE_COMMON_QUEUE_H_
#define STREAMLINE_COMMON_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace streamline {

/// Bounded multi-producer multi-consumer blocking queue. `Push` blocks when
/// the queue is full — this is the engine's backpressure mechanism: a slow
/// consumer stalls its producers instead of letting buffers grow unboundedly.
///
/// `Close()` wakes all waiters; after close, Push is rejected and Pop drains
/// the remaining elements before reporting end-of-queue (nullopt).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room or the queue is closed. Returns false when
  /// the element was rejected because the queue is closed.
  bool Push(T item) {
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    {
      MutexLock lock(&mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and empty.
  /// Returns nullopt only at end-of-queue.
  std::optional<T> Pop() {
    std::optional<T> item;
    {
      MutexLock lock(&mu_);
      while (!closed_ && items_.empty()) not_empty_.Wait(&mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty (not necessarily closed).
  std::optional<T> TryPop() {
    std::optional<T> item;
    {
      MutexLock lock(&mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return item;
  }

  /// Marks the queue closed: producers are rejected, consumers drain whatever
  /// is buffered and then see end-of-queue.
  void Close() {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t size() const {
    MutexLock lock(&mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ STREAMLINE_GUARDED_BY(mu_);
  bool closed_ STREAMLINE_GUARDED_BY(mu_) = false;
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_QUEUE_H_
