#ifndef STREAMLINE_COMMON_QUEUE_H_
#define STREAMLINE_COMMON_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace streamline {

/// Bounded multi-producer multi-consumer blocking queue. `Push` blocks when
/// the queue is full — this is the engine's backpressure mechanism: a slow
/// consumer stalls its producers instead of letting buffers grow unboundedly.
///
/// `Close()` wakes all waiters; after close, Push is rejected and Pop drains
/// the remaining elements before reporting end-of-queue (nullopt).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room or the queue is closed. Returns false when
  /// the element was rejected because the queue is closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and empty.
  /// Returns nullopt only at end-of-queue.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when currently empty (not necessarily closed).
  std::optional<T> TryPop() {
    std::optional<T> item;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Marks the queue closed: producers are rejected, consumers drain whatever
  /// is buffered and then see end-of-queue.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_QUEUE_H_
