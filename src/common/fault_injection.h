#ifndef STREAMLINE_COMMON_FAULT_INJECTION_H_
#define STREAMLINE_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace streamline {

/// Deterministic fault injection for chaos tests and benchmarks. The
/// executor consults the injector at every instrumented *site* -- a string
/// label like "source:gen", "op:window_agg" or "op:sink_0" derived from the
/// logical graph's node names -- and a matching rule makes that site fail:
/// either with an error Status (the library's native error path) or by
/// throwing std::runtime_error (modeling a bug in user code). Rules are
/// scriptable as "site X fails at the Nth hit", "on checkpoint K" (the
/// snapshot call for checkpoint K fails) or "with probability p" under the
/// injector's seed, so any crash an operator, source or sink can suffer is
/// reproducible run-to-run.
///
/// One injector is shared by every task of a job (and, under a supervisor,
/// by every restarted incarnation): rule counters persist across restarts,
/// so a "fail once at record N" rule does not re-fire after recovery.
/// Thread-safe; the per-hit mutex is acceptable because injection is a
/// test/bench facility (JobOptions::fault_injector is null in production
/// and the executor's fast path is a single pointer check).
class FaultInjector {
 public:
  enum class FaultKind : uint8_t {
    kStatus = 0,  // the instrumented site fails with Status::Internal
    kThrow = 1,   // the instrumented site throws std::runtime_error
  };

  struct Rule {
    /// Site label to match; "*" matches every site.
    std::string site;
    FaultKind kind = FaultKind::kStatus;
    /// The site is broken from the Nth matching record-path hit (1-based)
    /// onward, bounded by max_fires; 0 disables. With the default
    /// max_fires = 1 this is "fail exactly once, at hit N".
    uint64_t at_hit = 0;
    /// Fire when the site snapshots checkpoint id K; 0 disables.
    uint64_t at_checkpoint = 0;
    /// Fire on any record-path hit with this probability; 0 disables.
    double probability = 0.0;
    /// How many times this rule may fire in total; 0 = unlimited.
    uint64_t max_fires = 1;
  };

  explicit FaultInjector(uint64_t seed = 42) : rng_(seed) {}

  /// Rule builders for the common shapes.
  static Rule FailAtHit(std::string site, uint64_t n,
                        FaultKind kind = FaultKind::kStatus);
  static Rule FailOnCheckpoint(std::string site, uint64_t checkpoint_id,
                               FaultKind kind = FaultKind::kStatus);
  static Rule FailWithProbability(std::string site, double p,
                                  FaultKind kind = FaultKind::kStatus,
                                  uint64_t max_fires = 1);

  void AddRule(Rule rule);

  /// Record-path hook: called per record delivered to the site. Returns a
  /// non-ok Status when a kStatus rule fires; throws std::runtime_error
  /// when a kThrow rule fires.
  Status OnHit(std::string_view site);

  /// Outcome of probing a span of `count` record hits at once (the batch
  /// path's equivalent of `count` OnHit calls). `passed` records precede
  /// the fault; when `fired`, the caller must process exactly that prefix
  /// and then apply the fault itself -- fail with `status` for kStatus
  /// rules, throw std::runtime_error(`message`) for kThrow rules -- so
  /// batch delivery reproduces the per-record path's semantics exactly.
  struct SpanFault {
    size_t passed = 0;
    bool fired = false;
    FaultKind kind = FaultKind::kStatus;
    Status status;
    std::string message;
  };

  /// Probes `count` consecutive record hits at `site` under one lock,
  /// with identical hit accounting and rule evaluation (including
  /// probability draws) to `count` OnHit calls. Unlike OnHit it never
  /// throws: a kThrow fault is returned for the caller to raise after the
  /// passed prefix was processed. Hits after a fired fault are not
  /// counted, matching the per-record path where delivery stops at the
  /// fault.
  SpanFault OnSpan(std::string_view site, size_t count);

  /// Checkpoint-path hook: called when the site is about to snapshot state
  /// for `checkpoint_id`. Same firing semantics as OnHit.
  Status OnCheckpoint(std::string_view site, uint64_t checkpoint_id);

  /// Total faults fired so far (across all rules).
  uint64_t fires() const;
  /// Record-path hits observed at `site` so far.
  uint64_t hits(std::string_view site) const;

 private:
  struct RuleState {
    Rule rule;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  /// Fires rule `rs` for `site`: throws or returns an error Status.
  Status Fire(RuleState* rs, std::string_view site, const std::string& why)
      STREAMLINE_REQUIRES(mu_);

  mutable Mutex mu_;
  Rng rng_ STREAMLINE_GUARDED_BY(mu_);
  std::vector<RuleState> rules_ STREAMLINE_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, uint64_t>> site_hits_
      STREAMLINE_GUARDED_BY(mu_);
  uint64_t fires_ STREAMLINE_GUARDED_BY(mu_) = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_FAULT_INJECTION_H_
