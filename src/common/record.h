#ifndef STREAMLINE_COMMON_RECORD_H_
#define STREAMLINE_COMMON_RECORD_H_

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "common/value.h"

namespace streamline {

/// The engine's row: an event-time timestamp plus dynamically typed fields.
/// Field meaning is given by the Schema attached to the stream, not stored
/// per record.
struct Record {
  Timestamp timestamp = 0;
  std::vector<Value> fields;

  Record() = default;
  Record(Timestamp ts, std::vector<Value> f)
      : timestamp(ts), fields(std::move(f)) {}

  const Value& field(size_t i) const { return fields[i]; }
  Value& field(size_t i) { return fields[i]; }
  size_t num_fields() const { return fields.size(); }

  /// "@ts [v0, v1, ...]" rendering for sinks, logs and tests.
  std::string ToString() const;

  /// Rough in-memory footprint, used for channel byte accounting.
  size_t ApproxBytes() const {
    size_t bytes = sizeof(Record) + fields.size() * sizeof(Value);
    for (const Value& v : fields) {
      if (v.type() == DataType::kString) bytes += v.AsString().size();
    }
    return bytes;
  }

  bool operator==(const Record& other) const {
    return timestamp == other.timestamp && fields == other.fields;
  }
};

/// Convenience builder: MakeRecord(12, Value(int64_t{1}), Value("a")).
template <typename... Vs>
Record MakeRecord(Timestamp ts, Vs&&... values) {
  Record r;
  r.timestamp = ts;
  r.fields.reserve(sizeof...(values));
  (r.fields.push_back(std::forward<Vs>(values)), ...);
  return r;
}

}  // namespace streamline

#endif  // STREAMLINE_COMMON_RECORD_H_
