#ifndef STREAMLINE_COMMON_RECORD_H_
#define STREAMLINE_COMMON_RECORD_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <string>
#include <type_traits>
#include <utility>

#include "common/time.h"
#include "common/value.h"

namespace streamline {

/// Field storage for Record with inline capacity for small rows: up to
/// kInlineCapacity values live inside the record itself, so typical rows
/// (a key, a couple of measures) never touch the heap on the engine's
/// forward path. Wider rows spill to a heap array transparently.
///
/// Deliberately a minimal std::vector<Value> subset -- exactly the API the
/// engine and its operators use.
class FieldVec {
 public:
  static constexpr size_t kInlineCapacity = 4;

  using value_type = Value;
  using iterator = Value*;
  using const_iterator = const Value*;

  FieldVec() = default;

  FieldVec(std::initializer_list<Value> init) {
    reserve(init.size());
    for (const Value& v : init) push_back(v);
  }

  FieldVec(const FieldVec& other) {
    reserve(other.size_);
    Value* d = data();
    for (uint32_t i = 0; i < other.size_; ++i) d[i] = other.data()[i];
    size_ = other.size_;
  }

  FieldVec(FieldVec&& other) noexcept { MoveFrom(std::move(other)); }

  FieldVec& operator=(const FieldVec& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    Value* d = data();
    for (uint32_t i = 0; i < other.size_; ++i) d[i] = other.data()[i];
    size_ = other.size_;
    return *this;
  }

  FieldVec& operator=(FieldVec&& other) noexcept {
    if (this == &other) return *this;
    if (heap_ == nullptr && size_ == 0) {
      // Moved-from or fresh destination -- the dominant case on the batch
      // path (map write-back, filter compaction): nothing to release,
      // relocation alone suffices.
      MoveFrom(std::move(other));
      return *this;
    }
    clear();  // release owned payloads before relocation overwrites them
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = kInlineCapacity;
    MoveFrom(std::move(other));
    return *this;
  }

  FieldVec& operator=(std::initializer_list<Value> init) {
    clear();
    reserve(init.size());
    for (const Value& v : init) push_back(v);
    return *this;
  }

  ~FieldVec() { delete[] heap_; }

  Value* data() { return heap_ != nullptr ? heap_ : inline_; }
  const Value* data() const { return heap_ != nullptr ? heap_ : inline_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  Value& operator[](size_t i) { return data()[i]; }
  const Value& operator[](size_t i) const { return data()[i]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  Value& front() { return data()[0]; }
  Value& back() { return data()[size_ - 1]; }
  const Value& front() const { return data()[0]; }
  const Value& back() const { return data()[size_ - 1]; }

  void reserve(size_t n) {
    if (n <= capacity_) return;
    Grow(n);
  }

  void push_back(Value v) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data()[size_++] = std::move(v);
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(Value(std::forward<Args>(args)...));
  }

  void pop_back() { data()[--size_] = Value(); }

  /// Drops all elements (releasing any string payloads) but keeps the
  /// current storage, inline or heap.
  void clear() {
    if (heap_ == nullptr) {
      // Destroy the whole inline array with a compile-time span length:
      // the elements past size_ are null by the invariant, so the extra
      // string checks predict false and the memset lowers to plain stores.
      Value::DestroySpan(inline_, kInlineCapacity);
    } else {
      Value::DestroySpan(heap_, size_);
    }
    size_ = 0;
  }

  void resize(size_t n) {
    if (n < size_) {
      Value::DestroySpan(data() + n, size_ - n);
    } else {
      reserve(n);
    }
    size_ = static_cast<uint32_t>(n);
  }

  /// Inserts [first, last) before `pos`. Iterators are invalidated.
  /// Inserting a range of this vector's own elements is supported (like
  /// std::vector): the source is copied aside first, because reserve() may
  /// reallocate out from under it and the shift below moves the tail --
  /// which can contain the source -- even without reallocation.
  template <typename InputIt>
  iterator insert(iterator pos, InputIt first, InputIt last) {
    const size_t idx = static_cast<size_t>(pos - begin());
    const size_t n = static_cast<size_t>(std::distance(first, last));
    if (n == 0) return begin() + idx;
    if constexpr (std::is_convertible_v<InputIt, const Value*>) {
      const Value* f = first;
      if (f >= data() && f < data() + size_) {
        FieldVec tmp;
        tmp.reserve(n);
        for (size_t i = 0; i < n; ++i) tmp.push_back(f[i]);
        return insert(begin() + idx, tmp.begin(), tmp.end());
      }
    }
    reserve(size_ + n);
    Value* d = data();
    for (size_t i = size_; i > idx; --i) {
      d[i + n - 1] = std::move(d[i - 1]);
    }
    for (size_t i = 0; i < n; ++i) {
      d[idx + i] = *first++;
    }
    size_ += static_cast<uint32_t>(n);
    return d + idx;
  }

  /// Inserts one value before `pos`. Iterators are invalidated.
  iterator insert(iterator pos, Value v) {
    const Value* p = &v;
    return insert(pos, p, p + 1);
  }

  bool operator==(const FieldVec& other) const {
    return size_ == other.size_ &&
           std::equal(begin(), end(), other.begin());
  }
  bool operator!=(const FieldVec& other) const { return !(*this == other); }

 private:
  // Relocation invariant: every inline_ element at index >= size_ (and all
  // of inline_ once the vector has spilled to heap_) is null. clear(),
  // pop_back(), resize() and RelocateSpan() all null what they vacate, so
  // MoveFrom can memcpy-relocate over the destination without leaking.
  void MoveFrom(FieldVec&& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.capacity_ = kInlineCapacity;
      other.size_ = 0;
    } else {
      // Relocate the full inline array, not just other.size_ elements:
      // the elements past size_ are null by the invariant, so copying and
      // re-nulling them is harmless, and the compile-time span length
      // turns the memcpy+memset into a handful of inline stores.
      Value::RelocateSpan(inline_, other.inline_, kInlineCapacity);
      size_ = other.size_;
      other.size_ = 0;
    }
  }

  void Grow(size_t want) {
    size_t new_cap = capacity_;
    while (new_cap < want) new_cap *= 2;
    Value* bigger = new Value[new_cap];
    Value::RelocateSpan(bigger, data(), size_);
    delete[] heap_;
    heap_ = bigger;
    capacity_ = static_cast<uint32_t>(new_cap);
  }

  Value inline_[kInlineCapacity];
  Value* heap_ = nullptr;
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineCapacity;
};

/// The engine's row: an event-time timestamp plus dynamically typed fields.
/// Field meaning is given by the Schema attached to the stream, not stored
/// per record. Rows of up to FieldVec::kInlineCapacity fields are fully
/// heap-allocation-free.
struct Record {
  /// Record::key_hash == kNoKeyHash: no hash attached.
  static constexpr uint64_t kNoKeyHash = 0;

  Timestamp timestamp = 0;
  /// Hash-once shuffle routing: the router stamps KeyHashOf(partition key)
  /// here when it ships the record over a hash edge (and resets it to
  /// kNoKeyHash on every other edge), so the keyed operator behind that
  /// edge can index its state without re-hashing. Carried through
  /// batching, chaining and record serde; ignored by operator==
  /// (it is a cache of the key, not data).
  uint64_t key_hash = kNoKeyHash;
  FieldVec fields;

  Record() = default;
  Record(Timestamp ts, FieldVec f)
      : timestamp(ts), fields(std::move(f)) {}

  bool has_key_hash() const { return key_hash != kNoKeyHash; }

  const Value& field(size_t i) const { return fields[i]; }
  Value& field(size_t i) { return fields[i]; }
  size_t num_fields() const { return fields.size(); }

  /// "@ts [v0, v1, ...]" rendering for sinks, logs and tests.
  std::string ToString() const;

  /// Rough in-memory footprint, used for channel byte accounting.
  size_t ApproxBytes() const {
    size_t bytes = sizeof(Record);
    if (fields.size() > FieldVec::kInlineCapacity) {
      bytes += fields.capacity() * sizeof(Value);
    }
    for (const Value& v : fields) {
      if (v.type() == DataType::kString) bytes += v.AsString().size();
    }
    return bytes;
  }

  bool operator==(const Record& other) const {
    return timestamp == other.timestamp && fields == other.fields;
  }
};

/// Convenience builder: MakeRecord(12, Value(int64_t{1}), Value("a")).
template <typename... Vs>
Record MakeRecord(Timestamp ts, Vs&&... values) {
  Record r;
  r.timestamp = ts;
  r.fields.reserve(sizeof...(values));
  (r.fields.push_back(std::forward<Vs>(values)), ...);
  return r;
}

}  // namespace streamline

#endif  // STREAMLINE_COMMON_RECORD_H_
