#include "common/record.h"

#include <sstream>

namespace streamline {

std::string Record::ToString() const {
  std::ostringstream os;
  os << "@" << timestamp << " [";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields[i].ToString();
  }
  os << "]";
  return os.str();
}

}  // namespace streamline
