#include "common/thread_pool.h"

#include "common/logging.h"

namespace streamline {

ThreadPool::ThreadPool(size_t num_threads) {
  STREAMLINE_CHECK_GT(num_threads, 0u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    STREAMLINE_CHECK(!shutdown_) << "Submit after Shutdown";
    tasks_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!tasks_.empty() || active_ != 0) idle_.Wait(&mu_);
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && tasks_.empty()) work_available_.Wait(&mu_);
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace streamline
