#include "common/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "common/logging.h"

namespace streamline {
namespace {

// Worker identity for deque selection: which pool (if any) owns the
// calling thread, and that thread's worker index.
thread_local WorkStealingPool* tls_pool = nullptr;
thread_local size_t tls_worker_index = 0;

// Yields this many times while empty before parking (mirrors the
// executor's idle_spin_budget philosophy: cheap wakeups beat latency).
constexpr int kIdleSpinBudget = 64;

// Parked workers still wake at this cadence as a backstop against lost
// wakeups -- the same contract Doorbell::Park honors.
constexpr auto kParkBackstop = std::chrono::milliseconds(1);

void SetCurrentThreadName(const std::string& name) {
#if defined(__linux__)
  // pthread_setname_np silently fails past 15 chars + NUL; truncate.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#else
  (void)name;
#endif
}

}  // namespace

WorkStealingPool::WorkStealingPool(Options options)
    : name_prefix_(options.thread_name_prefix) {
  size_t n = options.num_workers;
  if (options.timer_only) {
    n = 0;
  } else if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back(std::make_unique<Worker>());
  }
  // Threads start only after every Worker slot exists: WorkerMain scans
  // peers' deques, so the vector must be fully formed first.
  for (size_t i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerMain(i); });
  }
}

WorkStealingPool::~WorkStealingPool() { Shutdown(); }

void WorkStealingPool::Notify(Schedulable* task) {
  // State machine, transitions owned as follows. Notify may take
  //   kIdle -> kQueued            (then enqueues -- only the transitioner
  //                                enqueues, so the task sits in at most
  //                                one queue slot per kQueued episode)
  //   kRunning -> kRunningNotified (the running worker requeues at finish)
  // and treats kQueued / kRunningNotified as already-covered no-ops.
  // Claiming (ClaimAndRun / TryRunInline) takes kQueued -> kRunning with
  // an acquire CAS; the finish protocol (RunClaimed) owns every
  // transition out of kRunning*. The release/acquire pairing on
  // claim/finish is the happens-before edge that hands the task's
  // non-atomic state from one worker to the next.
  uint32_t state = task->sched_state_.load(std::memory_order_relaxed);
  for (;;) {
    if (state == Schedulable::kQueued ||
        state == Schedulable::kRunningNotified) {
      return;  // someone will (re)run it; nothing to do
    }
    if (state == Schedulable::kIdle) {
      if (task->sched_state_.compare_exchange_weak(
              state, Schedulable::kQueued, std::memory_order_acq_rel,
              std::memory_order_relaxed)) {
        counters_.notifies.fetch_add(1, std::memory_order_relaxed);
        Enqueue(task, /*to_front=*/true);
        return;
      }
      continue;  // raced; state reloaded
    }
    // state == kRunning: ask the running worker to requeue after Step.
    if (task->sched_state_.compare_exchange_weak(
            state, Schedulable::kRunningNotified, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      return;
    }
  }
}

void WorkStealingPool::Enqueue(Schedulable* task, bool to_front) {
  if (tls_pool == this) {
    Worker& w = *workers_[tls_worker_index];
    MutexLock lock(&w.mu);
    // Newly notified work goes to the front: the owner drains LIFO for
    // cache locality (a batch just produced is consumed next). A task
    // requeueing itself after a morsel goes to the back so long-running
    // producers round-robin with their consumers instead of starving
    // them. Thieves take from the back (the oldest, coldest task).
    if (to_front) {
      w.deque.push_front(task);
    } else {
      w.deque.push_back(task);
    }
    w.approx_size.store(w.deque.size(), std::memory_order_relaxed);
  } else {
    MutexLock lock(&global_mu_);
    global_.push_back(task);
    global_size_.store(global_.size(), std::memory_order_relaxed);
  }
  WakeOne();
}

void WorkStealingPool::WakeOne() {
  if (num_parked_approx_.load(std::memory_order_seq_cst) == 0) return;
  {
    // Empty critical section: serializes with a worker between its "deques
    // are empty" check and its park, so the notify below cannot be lost
    // (same protocol as Doorbell::Ring).
    MutexLock lock(&park_mu_);
  }
  counters_.wakeups.fetch_add(1, std::memory_order_relaxed);
  park_cv_.NotifyOne();
}

void WorkStealingPool::WakeAllForShutdown() {
  {
    MutexLock lock(&park_mu_);
  }
  park_cv_.NotifyAll();
}

bool WorkStealingPool::ClaimAndRun(Schedulable* task,
                                   std::atomic<uint64_t>* morsel_counter) {
  uint32_t expected = Schedulable::kQueued;
  if (!task->sched_state_.compare_exchange_strong(
          expected, Schedulable::kRunning, std::memory_order_acq_rel,
          std::memory_order_relaxed)) {
    return false;  // stale queue entry: claimed (and maybe requeued) elsewhere
  }
  morsel_counter->fetch_add(1, std::memory_order_relaxed);
  RunClaimed(task);
  return true;
}

void WorkStealingPool::RunClaimed(Schedulable* task) {
  const bool time_it = tls_pool == this;
  std::chrono::steady_clock::time_point start;
  if (time_it) {
    start = std::chrono::steady_clock::now();
    Worker& self = *workers_[tls_worker_index];
    self.current_since_ns.store(
        static_cast<uint64_t>(start.time_since_epoch().count()),
        std::memory_order_relaxed);
    self.current.store(task, std::memory_order_relaxed);
  }
  const bool more = task->Step();
  if (time_it) {
    Worker& self = *workers_[tls_worker_index];
    self.current.store(nullptr, std::memory_order_relaxed);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    self.busy_ns.fetch_add(static_cast<uint64_t>(ns),
                           std::memory_order_relaxed);
  }
  // Finish protocol. We own the kRunning* state; Notify may still flip
  // kRunning -> kRunningNotified concurrently.
  for (;;) {
    uint32_t state = task->sched_state_.load(std::memory_order_relaxed);
    if (more || state == Schedulable::kRunningNotified) {
      // Requeue. The release store also covers a Notify that lands between
      // the load and the store: kQueued already means "will run again".
      task->sched_state_.store(Schedulable::kQueued,
                               std::memory_order_release);
      Enqueue(task, /*to_front=*/false);
      return;
    }
    // No more work and no notify seen: try to go idle. A concurrent
    // Notify flips the state under us and the CAS fails -> loop requeues.
    if (task->sched_state_.compare_exchange_weak(
            state, Schedulable::kIdle, std::memory_order_release,
            std::memory_order_relaxed)) {
      return;
    }
  }
}

bool WorkStealingPool::TryRunOneTask() {
  const bool on_pool = tls_pool == this;
  auto run_from_global = [this]() -> bool {
    for (;;) {
      Schedulable* task = nullptr;
      {
        MutexLock lock(&global_mu_);
        if (!global_.empty()) {
          task = global_.front();
          global_.pop_front();
          global_size_.store(global_.size(), std::memory_order_relaxed);
        }
      }
      if (task == nullptr) return false;
      if (ClaimAndRun(task, &counters_.morsels_injected)) return true;
    }
  };
  // 0. Fairness backstop: a worker whose own deque never drains (one
  // self-requeuing task is enough) would otherwise never reach step 2,
  // starving off-pool notifies forever. Poll the global queue *first* on
  // every kGlobalPollStride-th acquisition (Go's scheduler plays the same
  // trick with its global runq).
  if (on_pool) {
    constexpr uint64_t kGlobalPollStride = 61;
    Worker& self = *workers_[tls_worker_index];
    if (++self.tick % kGlobalPollStride == 0 &&
        global_size_.load(std::memory_order_relaxed) != 0 &&
        run_from_global()) {
      return true;
    }
  }
  // 1. Own deque, newest first (LIFO: hot caches).
  if (on_pool) {
    Worker& self = *workers_[tls_worker_index];
    for (;;) {
      Schedulable* task = nullptr;
      {
        MutexLock lock(&self.mu);
        if (!self.deque.empty()) {
          task = self.deque.front();
          self.deque.pop_front();
          self.approx_size.store(self.deque.size(),
                                 std::memory_order_relaxed);
        }
      }
      if (task == nullptr) break;
      if (ClaimAndRun(task, &counters_.morsels_local)) return true;
    }
  }
  // 2. Global injection queue (notifies from outside the pool).
  if (global_size_.load(std::memory_order_relaxed) != 0 &&
      run_from_global()) {
    return true;
  }
  // 3. Steal the oldest task from a peer. Start past our own index so
  // victims differ across workers instead of all hammering worker 0.
  const size_t n = workers_.size();
  const size_t start = on_pool ? tls_worker_index + 1 : 0;
  for (size_t k = 0; k < n; ++k) {
    const size_t v = (start + k) % n;
    if (on_pool && v == tls_worker_index) continue;
    Worker& victim = *workers_[v];
    if (victim.approx_size.load(std::memory_order_relaxed) == 0) continue;
    for (;;) {
      Schedulable* task = nullptr;
      {
        MutexLock lock(&victim.mu);
        if (!victim.deque.empty()) {
          task = victim.deque.back();
          victim.deque.pop_back();
          victim.approx_size.store(victim.deque.size(),
                                   std::memory_order_relaxed);
        }
      }
      if (task == nullptr) break;
      if (ClaimAndRun(task, &counters_.morsels_stolen)) {
        counters_.steals.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  return false;
}

bool WorkStealingPool::TryRunInline(Schedulable* task) {
  // Claim directly from idle or queued. Claiming an idle task is harmless:
  // its Step finds nothing and it goes back to idle. A queued task's deque
  // entry goes stale; ClaimAndRun's CAS drops it when dequeued.
  uint32_t expected = Schedulable::kIdle;
  if (!task->sched_state_.compare_exchange_strong(
          expected, Schedulable::kRunning, std::memory_order_acq_rel,
          std::memory_order_relaxed)) {
    if (expected != Schedulable::kQueued) return false;  // running elsewhere
    if (!task->sched_state_.compare_exchange_strong(
            expected, Schedulable::kRunning, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      return false;
    }
  }
  counters_.morsels_inline.fetch_add(1, std::memory_order_relaxed);
  RunClaimed(task);
  return true;
}

void WorkStealingPool::WorkerMain(size_t index) {
  SetCurrentThreadName(name_prefix_ + std::to_string(index));
  tls_pool = this;
  tls_worker_index = index;
  int idle_spins = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (TryRunOneTask()) {
      idle_spins = 0;
      continue;
    }
    if (++idle_spins < kIdleSpinBudget) {
      std::this_thread::yield();
      continue;
    }
    idle_spins = 0;
    counters_.parks.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(&park_mu_);
    if (shutdown_.load(std::memory_order_acquire)) break;
    ++num_parked_;
    num_parked_approx_.store(static_cast<int>(num_parked_),
                             std::memory_order_seq_cst);
    park_cv_.WaitFor(&park_mu_, kParkBackstop);
    --num_parked_;
    num_parked_approx_.store(static_cast<int>(num_parked_),
                             std::memory_order_seq_cst);
  }
  tls_pool = nullptr;
}

uint64_t WorkStealingPool::ScheduleRepeating(int64_t period_ms,
                                             std::function<void()> fn) {
  STREAMLINE_CHECK_GT(period_ms, 0);
  uint64_t id;
  {
    MutexLock lock(&timer_mu_);
    STREAMLINE_CHECK(!shutdown_.load(std::memory_order_relaxed))
        << "ScheduleRepeating after Shutdown";
    id = next_timer_id_++;
    TimerEntry entry;
    entry.id = id;
    entry.period_ms = period_ms;
    entry.next = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(period_ms);
    entry.fn = std::move(fn);
    timers_.push_back(std::move(entry));
    EnsureTimerThreadLocked();
  }
  timer_cv_.NotifyAll();
  return id;
}

void WorkStealingPool::CancelTimer(uint64_t id) {
  MutexLock lock(&timer_mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->id == id) {
      timers_.erase(it);
      break;
    }
  }
  // A cancelled timer's callback may still be mid-flight on the timer
  // thread; TimerMain re-checks existence before rescheduling.
}

void WorkStealingPool::EnsureTimerThreadLocked() {
  if (timer_thread_started_) return;
  timer_thread_started_ = true;
  timer_thread_ = std::thread([this] { TimerMain(); });
}

void WorkStealingPool::TimerMain() {
  SetCurrentThreadName(name_prefix_ + "T");
  timer_mu_.Lock();
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (timers_.empty()) {
      timer_cv_.WaitFor(&timer_mu_, std::chrono::milliseconds(50));
      continue;
    }
    auto soonest = std::min_element(timers_.begin(), timers_.end(),
                                    [](const TimerEntry& a, const TimerEntry& b) {
                                      return a.next < b.next;
                                    });
    const auto now = std::chrono::steady_clock::now();
    if (soonest->next > now) {
      timer_cv_.WaitFor(&timer_mu_, soonest->next - now);
      continue;
    }
    // Run the callback without the lock so it may call CancelTimer /
    // ScheduleRepeating; re-find the entry by id afterwards since the
    // vector may have changed underneath us.
    const uint64_t id = soonest->id;
    std::function<void()> fn = soonest->fn;
    timer_mu_.Unlock();
    fn();
    timer_mu_.Lock();
    for (TimerEntry& t : timers_) {
      if (t.id == id) {
        t.next = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(t.period_ms);
        break;
      }
    }
  }
  timer_mu_.Unlock();
}

void WorkStealingPool::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  WakeAllForShutdown();
  {
    MutexLock lock(&timer_mu_);
  }
  timer_cv_.NotifyAll();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
  // Drop queued-but-unstarted morsels: their owners are torn down with us.
  {
    MutexLock lock(&global_mu_);
    global_.clear();
    global_size_.store(0, std::memory_order_relaxed);
  }
  for (auto& w : workers_) {
    MutexLock lock(&w->mu);
    w->deque.clear();
    w->approx_size.store(0, std::memory_order_relaxed);
  }
}

bool WorkStealingPool::OnWorkerThread() const { return tls_pool == this; }

uint64_t WorkStealingPool::WorkerBusyMicros(size_t i) const {
  STREAMLINE_CHECK_LT(i, workers_.size());
  return workers_[i]->busy_ns.load(std::memory_order_relaxed) / 1000;
}

std::string WorkStealingPool::DebugQueues() {
  char buf[64];
  std::string out;
  const uint64_t now_ns = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (Schedulable* cur =
            workers_[i]->current.load(std::memory_order_relaxed)) {
      const uint64_t since =
          workers_[i]->current_since_ns.load(std::memory_order_relaxed);
      std::snprintf(buf, sizeof(buf), "w%zu@%p(%.1fs) ", i,
                    static_cast<void*>(cur),
                    static_cast<double>(now_ns - since) / 1e9);
      out += buf;
    }
    out += "w" + std::to_string(i) + "[";
    MutexLock lock(&workers_[i]->mu);
    for (size_t j = 0; j < workers_[i]->deque.size(); ++j) {
      if (j > 0) out += " ";
      std::snprintf(buf, sizeof(buf), "%p",
                    static_cast<void*>(workers_[i]->deque[j]));
      out += buf;
    }
    out += "] ";
  }
  out += "g[";
  MutexLock lock(&global_mu_);
  for (size_t j = 0; j < global_.size(); ++j) {
    if (j > 0) out += " ";
    std::snprintf(buf, sizeof(buf), "%p", static_cast<void*>(global_[j]));
    out += buf;
  }
  out += "]";
  return out;
}

size_t WorkStealingPool::ApproxReadyDepth() const {
  size_t depth = global_size_.load(std::memory_order_relaxed);
  for (const auto& w : workers_) {
    depth += w->approx_size.load(std::memory_order_relaxed);
  }
  return depth;
}

ThreadPool::ThreadPool(size_t num_threads)
    : pool_([num_threads] {
        STREAMLINE_CHECK_GT(num_threads, 0u);
        WorkStealingPool::Options o;
        o.num_workers = num_threads;
        o.thread_name_prefix = "sl-pool";
        return o;
      }()) {
  drainers_.reserve(pool_.num_workers());
  for (size_t i = 0; i < pool_.num_workers(); ++i) {
    drainers_.emplace_back(std::make_unique<Drainer>(this));
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    STREAMLINE_CHECK(!shutdown_) << "Submit after Shutdown";
    tasks_.push_back(std::move(task));
    ++outstanding_;
  }
  // Every drainer gets notified so queued closures spread across workers;
  // surplus drainers find an empty queue and go idle immediately.
  for (auto& d : drainers_) pool_.Notify(d.get());
}

bool ThreadPool::DrainOne() {
  std::function<void()> task;
  {
    MutexLock lock(&mu_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop_front();
  }
  task();
  bool more;
  {
    MutexLock lock(&mu_);
    --outstanding_;
    more = !tasks_.empty();
    if (outstanding_ == 0) idle_.NotifyAll();
  }
  return more;
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (outstanding_ != 0) idle_.Wait(&mu_);
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  // Historical contract: Shutdown completes already-submitted work.
  Wait();
  pool_.Shutdown();
}

}  // namespace streamline
