#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

namespace streamline {

uint64_t Gauge::Encode(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::Decode(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(double value) {
  if (!(value > 0)) return 0;
  // ~16 buckets per power of two: index = 16 * log2(value) + offset.
  const double idx = 16.0 * std::log2(value) + 256.0;
  if (idx < 0) return 0;
  if (idx >= kNumBuckets - 1) return kNumBuckets - 1;
  return static_cast<int>(idx);
}

double Histogram::BucketLowerBound(int bucket) {
  return std::exp2((bucket - 256.0) / 16.0);
}

void Histogram::Record(double value) {
  MutexLock lock(&mu_);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

uint64_t Histogram::count() const {
  MutexLock lock(&mu_);
  return count_;
}

double Histogram::sum() const {
  MutexLock lock(&mu_);
  return sum_;
}

double Histogram::mean() const {
  MutexLock lock(&mu_);
  return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
}

double Histogram::min() const {
  MutexLock lock(&mu_);
  return min_;
}

double Histogram::max() const {
  MutexLock lock(&mu_);
  return max_;
}

double Histogram::Quantile(double q) const {
  MutexLock lock(&mu_);
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b];
    if (seen > target) {
      // Midpoint of the bucket, clamped into the observed range.
      const double lo = BucketLowerBound(b);
      const double hi = BucketLowerBound(b + 1);
      return std::clamp((lo + hi) / 2, min_, max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  MutexLock lock(&mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << mean() << " p50=" << Quantile(0.5)
     << " p95=" << Quantile(0.95) << " p99=" << Quantile(0.99)
     << " max=" << max();
  return os.str();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::Report() const {
  MutexLock lock(&mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " " << h->Summary() << "\n";
  }
  return os.str();
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace streamline
