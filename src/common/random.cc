#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace streamline {
namespace {

// SplitMix64, used to expand the user seed into xorshift state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  s0_ = SplitMix64(x);
  s1_ = SplitMix64(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // avoid the all-zero fixed point
}

uint64_t Rng::NextU64() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextBelow(uint64_t n) {
  STREAMLINE_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return v % n;
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfGenerator::ZipfGenerator(uint64_t n, double s, uint64_t seed)
    : n_(n), s_(s), rng_(seed) {
  STREAMLINE_CHECK_GT(n, 0u);
  cdf_.resize(n);
  double total = 0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= total;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace streamline
