#include "common/fault_injection.h"

#include <stdexcept>
#include <utility>

namespace streamline {

namespace {

bool SiteMatches(const std::string& pattern, std::string_view site) {
  return pattern == "*" || pattern == site;
}

}  // namespace

FaultInjector::Rule FaultInjector::FailAtHit(std::string site, uint64_t n,
                                             FaultKind kind) {
  Rule r;
  r.site = std::move(site);
  r.kind = kind;
  r.at_hit = n;
  return r;
}

FaultInjector::Rule FaultInjector::FailOnCheckpoint(std::string site,
                                                    uint64_t checkpoint_id,
                                                    FaultKind kind) {
  Rule r;
  r.site = std::move(site);
  r.kind = kind;
  r.at_checkpoint = checkpoint_id;
  return r;
}

FaultInjector::Rule FaultInjector::FailWithProbability(std::string site,
                                                       double p,
                                                       FaultKind kind,
                                                       uint64_t max_fires) {
  Rule r;
  r.site = std::move(site);
  r.kind = kind;
  r.probability = p;
  r.max_fires = max_fires;
  return r;
}

void FaultInjector::AddRule(Rule rule) {
  MutexLock lock(&mu_);
  rules_.push_back(RuleState{std::move(rule), 0, 0});
}

Status FaultInjector::Fire(RuleState* rs, std::string_view site,
                           const std::string& why) {
  ++rs->fires;
  ++fires_;
  const std::string msg =
      "injected fault at '" + std::string(site) + "' (" + why + ")";
  if (rs->rule.kind == FaultKind::kThrow) {
    // The MutexLock in the caller unwinds with the exception.
    throw std::runtime_error(msg);
  }
  return Status::Internal(msg);
}

Status FaultInjector::OnHit(std::string_view site) {
  MutexLock lock(&mu_);
  bool counted = false;
  for (auto& [s, n] : site_hits_) {
    if (s == site) {
      ++n;
      counted = true;
      break;
    }
  }
  if (!counted) site_hits_.emplace_back(std::string(site), 1);
  for (RuleState& rs : rules_) {
    if (rs.rule.at_checkpoint != 0) continue;  // checkpoint-path rule
    if (!SiteMatches(rs.rule.site, site)) continue;
    ++rs.hits;
    if (rs.rule.max_fires != 0 && rs.fires >= rs.rule.max_fires) continue;
    if (rs.rule.at_hit != 0 && rs.hits >= rs.rule.at_hit) {
      return Fire(&rs, site,
                  "hit " + std::to_string(rs.hits));
    }
    if (rs.rule.probability > 0 && rng_.NextBool(rs.rule.probability)) {
      return Fire(&rs, site,
                  "probability " + std::to_string(rs.rule.probability) +
                      " at hit " + std::to_string(rs.hits));
    }
  }
  return Status::Ok();
}

FaultInjector::SpanFault FaultInjector::OnSpan(std::string_view site,
                                               size_t count) {
  MutexLock lock(&mu_);
  SpanFault out;
  uint64_t* site_count = nullptr;
  for (auto& [s, n] : site_hits_) {
    if (s == site) {
      site_count = &n;
      break;
    }
  }
  if (site_count == nullptr) {
    site_hits_.emplace_back(std::string(site), 0);
    site_count = &site_hits_.back().second;
  }
  for (size_t i = 0; i < count; ++i) {
    ++*site_count;
    for (RuleState& rs : rules_) {
      if (rs.rule.at_checkpoint != 0) continue;  // checkpoint-path rule
      if (!SiteMatches(rs.rule.site, site)) continue;
      ++rs.hits;
      if (rs.rule.max_fires != 0 && rs.fires >= rs.rule.max_fires) continue;
      std::string why;
      if (rs.rule.at_hit != 0 && rs.hits >= rs.rule.at_hit) {
        why = "hit " + std::to_string(rs.hits);
      } else if (rs.rule.probability > 0 &&
                 rng_.NextBool(rs.rule.probability)) {
        why = "probability " + std::to_string(rs.rule.probability) +
              " at hit " + std::to_string(rs.hits);
      } else {
        continue;
      }
      // Deferred Fire(): same accounting, but the throw (and the failure
      // itself) happens at the call site, after the passed prefix.
      ++rs.fires;
      ++fires_;
      out.passed = i;
      out.fired = true;
      out.kind = rs.rule.kind;
      out.message =
          "injected fault at '" + std::string(site) + "' (" + why + ")";
      if (rs.rule.kind == FaultKind::kStatus) {
        out.status = Status::Internal(out.message);
      }
      return out;
    }
  }
  out.passed = count;
  return out;
}

Status FaultInjector::OnCheckpoint(std::string_view site,
                                   uint64_t checkpoint_id) {
  MutexLock lock(&mu_);
  for (RuleState& rs : rules_) {
    if (rs.rule.at_checkpoint == 0) continue;
    if (!SiteMatches(rs.rule.site, site)) continue;
    if (rs.rule.at_checkpoint != checkpoint_id) continue;
    if (rs.rule.max_fires != 0 && rs.fires >= rs.rule.max_fires) continue;
    return Fire(&rs, site, "checkpoint " + std::to_string(checkpoint_id));
  }
  return Status::Ok();
}

uint64_t FaultInjector::fires() const {
  MutexLock lock(&mu_);
  return fires_;
}

uint64_t FaultInjector::hits(std::string_view site) const {
  MutexLock lock(&mu_);
  for (const auto& [s, n] : site_hits_) {
    if (s == site) return n;
  }
  return 0;
}

}  // namespace streamline
