#include "common/schema.h"

#include <sstream>

#include "common/logging.h"

namespace streamline {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    auto [it, inserted] = index_.emplace(fields_[i].name, i);
    STREAMLINE_CHECK(inserted) << "duplicate field name: " << fields_[i].name;
    (void)it;
  }
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no field named '" + name + "' in " + ToString());
  }
  return it->second;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ": " << DataTypeToString(fields_[i].type);
  }
  os << ")";
  return os.str();
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace streamline
