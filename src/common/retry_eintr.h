#ifndef STREAMLINE_COMMON_RETRY_EINTR_H_
#define STREAMLINE_COMMON_RETRY_EINTR_H_

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <string>

namespace streamline {

/// Retries a syscall-shaped callable (returns a signed count, sets errno)
/// until it stops failing with EINTR. Signal interruptions are a fact of
/// life on the durability and network paths -- a profiler tick or a timer
/// mid-write must not surface as an IO error -- so every raw ::read /
/// ::write / ::fsync / ::accept4 in the engine goes through here instead of
/// hand-rolling the loop per call site.
///
/// Returns whatever the callable finally returned (>= 0 on success, < 0
/// with errno set on a hard error). EAGAIN/EWOULDBLOCK are *not* retried:
/// on a non-blocking fd they are flow control, not interruption, and the
/// caller's event loop owns that decision.
template <typename Fn>
auto RetryEintr(Fn&& fn) -> decltype(fn()) {
  for (;;) {
    const auto rc = fn();
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

/// write(2) loop tolerating short writes and EINTR. Returns bytes written
/// before the first hard error (errno preserved), which may be < n --
/// exactly the torn-tail shape ENOSPC leaves behind. Used by the WAL,
/// durable snapshot publishing, and blocking network test clients.
inline size_t WriteAllFd(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w =
        RetryEintr([&] { return ::write(fd, data + off, n - off); });
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w == 0) errno = EIO;
    break;
  }
  return off;
}

/// Thread-safe strerror: IO error paths race across threads (WAL appends
/// vs recovery scans, net event loop vs morsel workers), and
/// std::strerror's static buffer is not MT-safe on older glibc.
inline std::string ErrnoString(int err) {
  char buf[128];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  return strerror_r(err, buf, sizeof(buf));  // GNU variant returns char*
#else
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    return "errno " + std::to_string(err);
  }
  return buf;
#endif
}

}  // namespace streamline

#endif  // STREAMLINE_COMMON_RETRY_EINTR_H_
