#ifndef STREAMLINE_COMMON_SCHEMA_H_
#define STREAMLINE_COMMON_SCHEMA_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace streamline {

/// A named, typed column of a Record.
struct Field {
  std::string name;
  DataType type = DataType::kNull;
};

/// Ordered list of fields with name lookup. Schemas are immutable once
/// constructed and cheap to share via copies.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field called `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// True when `name` is a field of this schema.
  bool HasField(const std::string& name) const {
    return index_.count(name) > 0;
  }

  /// e.g. "(user: string, clicks: int64)".
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_SCHEMA_H_
