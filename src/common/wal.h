#ifndef STREAMLINE_COMMON_WAL_H_
#define STREAMLINE_COMMON_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace streamline {

class FaultInjector;

/// Append-only write-ahead changelog segments for durable keyed state.
///
/// A segment is a flat file of length+CRC framed records:
///
///   [u32 payload_len][u32 crc32(payload)][payload]   (little-endian)
///
/// Appends go straight to the file descriptor; Sync() (fsync) is the
/// durability point -- the checkpoint barrier calls it once per segment
/// instead of once per record, so changelog cost is O(bytes appended), not
/// O(fsyncs). A crash mid-append leaves a torn tail: a partial frame, or a
/// frame whose CRC does not match. Open() truncates that tail away before
/// appending (the records before it are intact by construction), and the
/// tolerant reader stops at it; only *sealed* segments -- referenced by a
/// published checkpoint manifest, which is only written after Sync
/// succeeded -- are read strictly, where any damage is corruption.
class WalWriter {
 public:
  /// Opens (creating if missing) the segment at `path` for appending. An
  /// existing file has its torn tail truncated first. `injector` (may be
  /// null) is consulted at the "wal:append" / "wal:append_torn" sites on
  /// every Append and at "wal:sync" on every Sync, so chaos tests can kill
  /// the writer at any point of the protocol.
  static Result<std::unique_ptr<WalWriter>> Open(
      std::string path, FaultInjector* injector = nullptr);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one framed record. Not yet durable -- call Sync(). Short
  /// writes and I/O errors (ENOSPC included) come back as an error Status
  /// naming the segment path.
  Status Append(std::string_view payload);

  /// fsync: everything appended so far survives a crash.
  Status Sync();

  /// Sync + close; idempotent. The destructor closes without syncing (an
  /// abandoned segment is torn by design).
  Status Close();

  uint64_t records_appended() const { return records_; }
  uint64_t bytes_appended() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, FaultInjector* injector)
      : path_(std::move(path)), fd_(fd), injector_(injector) {}

  std::string path_;
  int fd_ = -1;
  FaultInjector* injector_ = nullptr;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

/// Result of a tolerant segment scan.
struct WalReadResult {
  std::vector<std::string> records;
  /// Bytes covered by whole, CRC-valid frames (the truncation point).
  uint64_t valid_bytes = 0;
  /// True when trailing bytes past `valid_bytes` were ignored.
  bool torn = false;
};

/// Tolerant scan: decodes frames until end-of-file or the first torn tail
/// (partial frame or CRC mismatch); everything before it is returned.
/// A missing file is an error; an empty file is zero records.
Result<WalReadResult> ReadWal(const std::string& path);

/// Strict read for sealed segments (referenced by a published manifest,
/// so they were fsync'd in full): any framing or CRC damage is corruption,
/// reported as an error naming the path.
Result<std::vector<std::string>> ReadSealedWal(const std::string& path);

/// Durable atomic small-file publish: writes `bytes` to a temp name in
/// `dir` (created if missing), fsyncs, renames into place, and fsyncs the
/// directory -- so after Ok the file survives a crash and readers never
/// observe a partial write. This is the sanctioned write path for
/// checkpoint metadata (manifests, snapshot entries, COMPLETE markers);
/// the unsynced-write lint forbids raw buffered writes in durability code.
Status WriteFileDurable(const std::string& dir, const std::string& file,
                        std::string_view bytes);

}  // namespace streamline

#endif  // STREAMLINE_COMMON_WAL_H_
