#include "common/serde.h"

#include <array>

namespace streamline {

namespace {

std::array<uint32_t, 256> BuildCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  static const std::array<uint32_t, 256> table = BuildCrc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void BinaryWriter::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kInt64:
      WriteI64(v.AsInt64());
      break;
    case DataType::kDouble:
      WriteDouble(v.AsDouble());
      break;
    case DataType::kBool:
      WriteBool(v.AsBool());
      break;
    case DataType::kString:
      WriteString(v.AsString());
      break;
  }
}

void BinaryWriter::WriteRecord(const Record& r) {
  WriteI64(r.timestamp);
  // The carried key hash survives serde so a snapshot/restore cycle does
  // not silently reintroduce re-hashing on buffered records.
  WriteU64(r.key_hash);
  WriteU64(r.fields.size());
  for (const Value& v : r.fields) WriteValue(v);
}

Status BinaryReader::ReadRaw(void* out, size_t len) {
  if (pos_ + len > data_.size()) {
    return Status::OutOfRange("truncated buffer: need " +
                              std::to_string(len) + " bytes, have " +
                              std::to_string(data_.size() - pos_));
  }
  std::memcpy(out, data_.data() + pos_, len);
  pos_ += len;
  return Status::Ok();
}

Result<uint8_t> BinaryReader::ReadU8() {
  uint8_t v = 0;
  Status st = ReadRaw(&v, sizeof(v));
  if (!st.ok()) return st;
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  int64_t v = 0;
  Status st = ReadRaw(&v, sizeof(v));
  if (!st.ok()) return st;
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v = 0;
  Status st = ReadRaw(&v, sizeof(v));
  if (!st.ok()) return st;
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  double v = 0;
  Status st = ReadRaw(&v, sizeof(v));
  if (!st.ok()) return st;
  return v;
}

Result<bool> BinaryReader::ReadBool() {
  auto v = ReadU8();
  if (!v.ok()) return v.status();
  return *v != 0;
}

Result<std::string> BinaryReader::ReadString() {
  auto len = ReadU64();
  if (!len.ok()) return len.status();
  if (pos_ + *len > data_.size()) {
    return Status::OutOfRange("truncated string of length " +
                              std::to_string(*len));
  }
  std::string s(data_.substr(pos_, *len));
  pos_ += *len;
  return s;
}

Result<Value> BinaryReader::ReadValue() {
  auto tag = ReadU8();
  if (!tag.ok()) return tag.status();
  switch (static_cast<DataType>(*tag)) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kInt64: {
      auto v = ReadI64();
      if (!v.ok()) return v.status();
      return Value(*v);
    }
    case DataType::kDouble: {
      auto v = ReadDouble();
      if (!v.ok()) return v.status();
      return Value(*v);
    }
    case DataType::kBool: {
      auto v = ReadBool();
      if (!v.ok()) return v.status();
      return Value(*v);
    }
    case DataType::kString: {
      auto v = ReadString();
      if (!v.ok()) return v.status();
      return Value(std::move(*v));
    }
  }
  return Status::Internal("unknown Value tag " + std::to_string(*tag));
}

Result<Record> BinaryReader::ReadRecord() {
  auto ts = ReadI64();
  if (!ts.ok()) return ts.status();
  auto kh = ReadU64();
  if (!kh.ok()) return kh.status();
  auto n = ReadU64();
  if (!n.ok()) return n.status();
  // Every field needs at least one tag byte: a count beyond the remaining
  // buffer is corrupt input, not a reason to attempt a huge allocation.
  if (*n > remaining()) {
    return Status::OutOfRange("field count " + std::to_string(*n) +
                              " exceeds remaining buffer");
  }
  Record r;
  r.timestamp = *ts;
  r.key_hash = *kh;
  r.fields.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto v = ReadValue();
    if (!v.ok()) return v.status();
    r.fields.push_back(std::move(*v));
  }
  return r;
}

}  // namespace streamline
