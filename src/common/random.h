#ifndef STREAMLINE_COMMON_RANDOM_H_
#define STREAMLINE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace streamline {

/// Deterministic, fast PRNG (xorshift128+). All generators in the repo seed
/// from this so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform on the full 64-bit range.
  uint64_t NextU64();
  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);
  /// Standard normal via Box-Muller.
  double NextGaussian();
  /// Bernoulli with success probability p.
  bool NextBool(double p);

 private:
  uint64_t s0_;
  uint64_t s1_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0;
};

/// Zipf-distributed integers in [0, n): rank r is drawn with probability
/// proportional to 1/(r+1)^s. Uses precomputed CDF + binary search, so
/// Next() is O(log n) and exact.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double s, uint64_t seed = 42);

  uint64_t Next();
  uint64_t n() const { return n_; }
  double skew() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_RANDOM_H_
