#ifndef STREAMLINE_COMMON_SERDE_H_
#define STREAMLINE_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/record.h"
#include "common/status.h"
#include "common/value.h"

namespace streamline {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) over a byte range.
/// Used by the durable snapshot store to detect on-disk corruption.
uint32_t Crc32(const void* data, size_t len);
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// Append-only little-endian binary writer. Used for state snapshots
/// (checkpointing) and for channel byte accounting.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    WriteRaw(s.data(), s.size());
  }
  void WriteValue(const Value& v);
  void WriteRecord(const Record& r);

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void WriteRaw(const void* data, size_t len) {
    const char* p = static_cast<const char*>(data);
    buf_.append(p, len);
  }
  std::string buf_;
};

/// Sequential reader over a buffer produced by BinaryWriter. All Read*
/// methods return OutOfRange on truncated input instead of crashing, so a
/// corrupted snapshot surfaces as a recoverable error.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<int64_t> ReadI64();
  Result<uint64_t> ReadU64();
  Result<double> ReadDouble();
  Result<bool> ReadBool();
  Result<std::string> ReadString();
  Result<Value> ReadValue();
  Result<Record> ReadRecord();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status ReadRaw(void* out, size_t len);
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_COMMON_SERDE_H_
