#include "common/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/fault_injection.h"
#include "common/retry_eintr.h"
#include "common/serde.h"

namespace streamline {

namespace fs = std::filesystem;

namespace {

constexpr size_t kFrameHeader = 8;  // u32 len + u32 crc

Status PathError(const char* op, const std::string& path, int err) {
  return Status::Internal(std::string(op) + " '" + path +
                          "' failed: " + ErrnoString(err));
}

void PutU32(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v & 0xFF);
  dst[1] = static_cast<char>((v >> 8) & 0xFF);
  dst[2] = static_cast<char>((v >> 16) & 0xFF);
  dst[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetU32(const char* src) {
  return static_cast<uint32_t>(static_cast<unsigned char>(src[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(src[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(src[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(src[3])) << 24;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  const int fd = RetryEintr(
      [&] { return ::open(path.c_str(), O_RDONLY | O_CLOEXEC); });
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no wal segment '" + path + "'");
    return PathError("open", path, errno);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = RetryEintr([&] { return ::read(fd, buf, sizeof(buf)); });
    if (r > 0) {
      out.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r < 0) {
      const int err = errno;
      ::close(fd);
      return PathError("read", path, err);
    }
    break;
  }
  ::close(fd);
  return out;
}

/// Decodes frames from `blob`; stops at the first partial/corrupt frame.
WalReadResult DecodeFrames(const std::string& blob) {
  WalReadResult out;
  size_t off = 0;
  while (blob.size() - off >= kFrameHeader) {
    const uint32_t len = GetU32(blob.data() + off);
    const uint32_t crc = GetU32(blob.data() + off + 4);
    if (blob.size() - off - kFrameHeader < len) break;  // partial payload
    const std::string_view payload(blob.data() + off + kFrameHeader, len);
    if (Crc32(payload) != crc) break;  // torn or corrupt frame
    out.records.emplace_back(payload);
    off += kFrameHeader + len;
  }
  out.valid_bytes = off;
  out.torn = off != blob.size();
  return out;
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(std::string path,
                                                   FaultInjector* injector) {
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) {
    return Status::Internal("cannot create wal dir for '" + path +
                            "': " + ec.message());
  }
  const int fd = RetryEintr(
      [&] { return ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644); });
  if (fd < 0) return PathError("open", path, errno);
  // Truncate any torn tail left by a crash mid-append, then position at
  // the end of the intact prefix.
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return PathError("stat", path, err);
  }
  uint64_t end = static_cast<uint64_t>(st.st_size);
  if (end > 0) {
    auto blob = ReadWholeFile(path);
    if (!blob.ok()) {
      ::close(fd);
      return blob.status();
    }
    const WalReadResult scan = DecodeFrames(*blob);
    if (scan.torn) {
      if (::ftruncate(fd, static_cast<off_t>(scan.valid_bytes)) != 0) {
        const int err = errno;
        ::close(fd);
        return PathError("truncate", path, err);
      }
      end = scan.valid_bytes;
    }
  }
  if (::lseek(fd, static_cast<off_t>(end), SEEK_SET) < 0) {
    const int err = errno;
    ::close(fd);
    return PathError("seek", path, err);
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(path), fd, injector));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);  // no sync: abandoned segments are torn by design
  fd_ = -1;
}

Status WalWriter::Append(std::string_view payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal segment '" + path_ + "' is closed");
  }
  if (injector_ != nullptr) {
    STREAMLINE_RETURN_IF_ERROR(injector_->OnHit("wal:append"));
  }
  std::string frame;
  frame.resize(kFrameHeader);
  PutU32(frame.data(), static_cast<uint32_t>(payload.size()));
  PutU32(frame.data() + 4, Crc32(payload));
  frame.append(payload);
  // "wal:append_torn" models a crash mid-write: half the frame reaches the
  // file, then the append fails -- exactly what Open()'s truncation and
  // the tolerant reader must absorb.
  size_t want = frame.size();
  Status torn = Status::Ok();
  if (injector_ != nullptr) {
    torn = injector_->OnHit("wal:append_torn");
    if (!torn.ok()) want = frame.size() / 2;
  }
  const size_t wrote = WriteAllFd(fd_, frame.data(), want);
  if (wrote != frame.size()) {
    if (!torn.ok()) return torn;
    const int err = errno;
    // A short write leaves a torn tail; surface it like ENOSPC does.
    return Status::Internal(
        "short write on wal segment '" + path_ + "': " +
        std::to_string(wrote) + " of " + std::to_string(frame.size()) +
        " bytes (" + ErrnoString(err) + ")");
  }
  ++records_;
  bytes_ += frame.size();
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal segment '" + path_ + "' is closed");
  }
  if (injector_ != nullptr) {
    STREAMLINE_RETURN_IF_ERROR(injector_->OnHit("wal:sync"));
  }
  if (RetryEintr([&] { return ::fsync(fd_); }) != 0) {
    return PathError("fsync", path_, errno);
  }
  return Status::Ok();
}

Status WalWriter::Close() {
  if (fd_ < 0) return Status::Ok();
  const Status st = Sync();
  ::close(fd_);
  fd_ = -1;
  return st;
}

Result<WalReadResult> ReadWal(const std::string& path) {
  auto blob = ReadWholeFile(path);
  if (!blob.ok()) return blob.status();
  return DecodeFrames(*blob);
}

Result<std::vector<std::string>> ReadSealedWal(const std::string& path) {
  auto blob = ReadWholeFile(path);
  if (!blob.ok()) return blob.status();
  WalReadResult scan = DecodeFrames(*blob);
  if (scan.torn) {
    return Status::Internal(
        "corrupt sealed wal segment '" + path + "': torn frame at byte " +
        std::to_string(scan.valid_bytes) + " of " +
        std::to_string(blob->size()));
  }
  return std::move(scan.records);
}

Status WriteFileDurable(const std::string& dir, const std::string& file,
                        std::string_view bytes) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create '" + dir + "': " + ec.message());
  }
  const std::string tmp = (fs::path(dir) / (".tmp." + file)).string();
  const std::string final_path = (fs::path(dir) / file).string();
  const int fd = RetryEintr([&] {
    return ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  });
  if (fd < 0) return PathError("open", tmp, errno);
  const size_t wrote = WriteAllFd(fd, bytes.data(), bytes.size());
  if (wrote != bytes.size()) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("short write on '" + tmp + "': " +
                            std::to_string(wrote) + " of " +
                            std::to_string(bytes.size()) + " bytes (" +
                            ErrnoString(err) + ")");
  }
  if (RetryEintr([&] { return ::fsync(fd); }) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return PathError("fsync", tmp, err);
  }
  ::close(fd);
  // Same-directory rename: atomic on POSIX, so a reader sees either the
  // whole file or none of it.
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("rename '" + tmp + "' -> '" + final_path +
                            "' failed: " + ErrnoString(err));
  }
  // Persist the rename itself. Directory fsync failing is reported: a
  // manifest publish that may vanish after a crash is not a publish.
  const int dfd = RetryEintr(
      [&] { return ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC); });
  if (dfd >= 0) {
    const int rc = RetryEintr([&] { return ::fsync(dfd); });
    const int err = errno;
    ::close(dfd);
    if (rc != 0) return PathError("fsync dir", dir, err);
  }
  return Status::Ok();
}

}  // namespace streamline
