#ifndef STREAMLINE_COMMON_STATUS_H_
#define STREAMLINE_COMMON_STATUS_H_

#include <exception>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace streamline {

/// Canonical error codes, loosely modeled on absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kCancelled = 8,
  kResourceExhausted = 9,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight status object used throughout the library instead of
/// exceptions. A default-constructed Status is OK.
///
/// The class-level [[nodiscard]] makes dropping any by-value Status a
/// compile warning (-Werror=unused-result in this build): callers must
/// propagate it or consume it explicitly via IgnoreError() with a reason.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Explicitly consumes this status. The one sanctioned way to drop a
  /// Status: states at the call site *why* ignoring is safe, and logs
  /// non-OK values at debug level so silently-swallowed errors remain
  /// observable. `reason` should say why the error cannot matter here.
  void IgnoreError(std::string_view reason) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Carries a Status through code paths that cannot return one (the void
/// record-processing hooks). The executor catches it at the task boundary
/// and fails the task with the original status instead of a generic
/// "uncaught exception" wrapper.
class StatusError : public std::exception {
 public:
  explicit StatusError(Status status)
      : status_(std::move(status)), what_(status_.ToString()) {}

  const Status& status() const { return status_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  Status status_;
  std::string what_;
};

/// Result<T> is either a value or an error Status (like absl::StatusOr).
/// [[nodiscard]] for the same reason as Status: a dropped Result is a
/// dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, mirrors StatusOr.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define STREAMLINE_RETURN_IF_ERROR(expr)            \
  do {                                              \
    ::streamline::Status _st = (expr);              \
    if (!_st.ok()) return _st;                      \
  } while (0)

}  // namespace streamline

#endif  // STREAMLINE_COMMON_STATUS_H_
