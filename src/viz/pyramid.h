#ifndef STREAMLINE_VIZ_PYRAMID_H_
#define STREAMLINE_VIZ_PYRAMID_H_

#include <deque>
#include <limits>
#include <vector>

#include "viz/m4.h"

namespace streamline {

/// Multi-resolution M4 store for interactive zoom/pan: level k holds
/// columns of duration base_width * 2^k, each built by merging two level
/// k-1 columns (M4 columns are algebraic partials, so merging is exact).
/// Queries pick the coarsest level that still yields at least `width`
/// columns, then re-aggregate -- answering any viewport without touching
/// raw data, which is what makes I2's environment interactive.
class M4Pyramid {
 public:
  /// `base_width`: duration of a level-0 column; `levels`: number of
  /// resolutions; `max_columns_per_level`: retention bound (0 = unbounded).
  M4Pyramid(Duration base_width, int levels,
            size_t max_columns_per_level = 0);

  /// In-order sample ingestion.
  void OnElement(Timestamp t, double v);
  /// Completes level-0 columns up to `wm` and propagates upward.
  void OnWatermark(Timestamp wm);
  /// End-of-stream: completes the open column and propagates every level's
  /// trailing column upward so coarse levels cover the stream's tail.
  void Flush();

  /// Re-aggregates stored columns into `width` pixel columns over
  /// [t_begin, t_end). Chooses the coarsest adequate level.
  std::vector<PixelColumn> Query(Timestamp t_begin, Timestamp t_end,
                                 int width) const;

  /// Reduced series for rendering a viewport (the points a client would be
  /// sent).
  std::vector<SeriesPoint> QuerySeries(Timestamp t_begin, Timestamp t_end,
                                       int width) const;

  int levels() const { return static_cast<int>(levels_.size()); }
  Duration level_width(int level) const;
  size_t stored_columns() const;
  size_t stored_columns_at(int level) const {
    return levels_[level].columns.size();
  }

 private:
  struct Level {
    Duration width = 0;
    std::deque<PixelColumn> columns;  // completed, index-ordered
    // Highest column index already propagated to the next level.
    int64_t last_propagated = std::numeric_limits<int64_t>::min();
  };

  /// Inserts a completed column into `level` and merges upward.
  void Insert(int level, const PixelColumn& column);
  int PickLevel(Timestamp t_begin, Timestamp t_end, int width) const;

  Duration base_width_;
  size_t max_columns_per_level_;
  std::vector<Level> levels_;
  StreamingM4 ingest_;
};

}  // namespace streamline

#endif  // STREAMLINE_VIZ_PYRAMID_H_
