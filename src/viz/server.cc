#include "viz/server.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/record.h"
#include "common/value.h"

namespace streamline {

VizServer::VizServer(Duration base_column_width, int levels)
    : pyramid_(base_column_width, levels),
      base_column_width_(base_column_width) {}

void VizServer::OnElement(Timestamp t, double v) {
  MutexLock lock(&mu_);
  ++ingested_;
  latest_ = std::max(latest_, t);
  earliest_ = std::min(earliest_, t);
  // Remember the open column's points before/after to account incremental
  // pushes: we push on column completion below via OnWatermark; element
  // ingestion alone only updates the pyramid.
  pyramid_.OnElement(t, v);
}

void VizServer::OnWatermark(Timestamp wm) {
  MutexLock lock(&mu_);
  pyramid_.OnWatermark(wm);
  // Push the newly completed region to every following client: each gets
  // at most one column (<= 4 points) per base_column_width of event time,
  // independent of the input rate.
  for (auto& [id, client] : clients_) {
    if (!client.viewport.follow) continue;
    const Duration span =
        client.viewport.t_end - client.viewport.t_begin;
    const Timestamp new_end = std::max(client.viewport.t_end, wm);
    if (new_end == client.viewport.t_end) continue;
    // Columns completed since the client's last known end.
    const Timestamp from = client.viewport.t_end;
    client.viewport.t_end = new_end;
    client.viewport.t_begin = new_end - span;
    const int64_t first_col = from / base_column_width_;
    const int64_t last_col = new_end / base_column_width_;
    const int64_t cols = std::max<int64_t>(0, last_col - first_col);
    const uint64_t pts = static_cast<uint64_t>(cols) * 4;
    client.stats.points += pts;
    client.stats.bytes += PointBytes(pts);
    if (cols > 0) ++client.stats.updates;
  }
  // Real egress: columns completed by this watermark go out over sockets.
  PublishCompletedLocked((wm / base_column_width_) * base_column_width_);
}

void VizServer::Flush() {
  MutexLock lock(&mu_);
  pyramid_.Flush();
  if (latest_ != kMinTimestamp) {
    // Flush completed the open column too; publish through its end.
    PublishCompletedLocked(
        (latest_ / base_column_width_ + 1) * base_column_width_);
  }
}

Status VizServer::BindNetwork(net::SubscriptionServer* server,
                              std::string topic) {
  MutexLock lock(&mu_);
  STREAMLINE_RETURN_IF_ERROR(server->RegisterTopic(topic, /*key_field=*/0));
  net_server_ = server;
  net_topic_ = std::move(topic);
  return Status::Ok();
}

void VizServer::PublishCompletedLocked(Timestamp completed_end) {
  if (net_server_ == nullptr || earliest_ == kMaxTimestamp) return;
  if (net_published_end_ == kMinTimestamp) {
    // Start at the first column that can hold data; anything earlier is
    // empty by construction.
    net_published_end_ = (earliest_ / base_column_width_) * base_column_width_;
  }
  if (completed_end <= net_published_end_) return;
  const auto cols = static_cast<int64_t>(
      (completed_end - net_published_end_) / base_column_width_);
  const auto columns =
      pyramid_.Query(net_published_end_, completed_end,
                     static_cast<int>(std::min<int64_t>(cols, 1 << 20)));
  for (const PixelColumn& col : columns) {
    if (col.count == 0) continue;
    // Query() indexes columns relative to the queried range; the wire key
    // must be the global base-column index or incremental publishes would
    // collide (and snapshot state would retain the wrong columns).
    const int64_t global_index =
        col.t_start >= 0 ? col.t_start / base_column_width_
                         : (col.t_start - base_column_width_ + 1) /
                               base_column_width_;
    net_server_->Publish(
        net_topic_,
        MakeRecord(col.t_start, Value(global_index), Value(col.min.v),
                   Value(col.max.v), Value(col.first.v), Value(col.last.v)));
  }
  net_published_end_ = completed_end;
}

int VizServer::Connect(Viewport viewport) {
  MutexLock lock(&mu_);
  const int id = next_client_++;
  Client client;
  client.viewport = viewport;
  auto [it, inserted] = clients_.emplace(id, std::move(client));
  STREAMLINE_CHECK(inserted);
  FullRefreshLocked(&it->second);  // initial load
  return id;
}

void VizServer::Disconnect(int client) {
  MutexLock lock(&mu_);
  clients_.erase(client);
}

std::vector<SeriesPoint> VizServer::FullRefreshLocked(Client* c) {
  auto points = pyramid_.QuerySeries(c->viewport.t_begin, c->viewport.t_end,
                                     c->viewport.width_px);
  c->stats.points += points.size();
  c->stats.bytes += PointBytes(points.size());
  ++c->stats.refreshes;
  return points;
}

std::vector<SeriesPoint> VizServer::Zoom(int client, double factor) {
  MutexLock lock(&mu_);
  auto it = clients_.find(client);
  STREAMLINE_CHECK(it != clients_.end());
  Viewport& vp = it->second.viewport;
  const double span = static_cast<double>(vp.t_end - vp.t_begin);
  const Timestamp center = vp.t_begin + static_cast<Timestamp>(span / 2);
  const auto new_half = static_cast<Timestamp>(span * factor / 2);
  vp.t_begin = center - std::max<Timestamp>(new_half, 1);
  vp.t_end = center + std::max<Timestamp>(new_half, 1);
  vp.follow = false;  // zooming detaches from live following
  return FullRefreshLocked(&it->second);
}

std::vector<SeriesPoint> VizServer::Pan(int client, Duration delta) {
  MutexLock lock(&mu_);
  auto it = clients_.find(client);
  STREAMLINE_CHECK(it != clients_.end());
  Viewport& vp = it->second.viewport;
  vp.t_begin += delta;
  vp.t_end += delta;
  vp.follow = false;
  return FullRefreshLocked(&it->second);
}

std::vector<SeriesPoint> VizServer::Resize(int client, int width_px) {
  MutexLock lock(&mu_);
  auto it = clients_.find(client);
  STREAMLINE_CHECK(it != clients_.end());
  it->second.viewport.width_px = width_px;
  return FullRefreshLocked(&it->second);
}

std::vector<SeriesPoint> VizServer::Refresh(int client) {
  MutexLock lock(&mu_);
  auto it = clients_.find(client);
  STREAMLINE_CHECK(it != clients_.end());
  return FullRefreshLocked(&it->second);
}

const Viewport& VizServer::viewport(int client) const {
  MutexLock lock(&mu_);
  auto it = clients_.find(client);
  STREAMLINE_CHECK(it != clients_.end());
  return it->second.viewport;
}

TransferStats VizServer::transfer_stats(int client) const {
  MutexLock lock(&mu_);
  auto it = clients_.find(client);
  STREAMLINE_CHECK(it != clients_.end());
  return it->second.stats;
}

}  // namespace streamline
