#include "viz/reducers.h"

#include "common/logging.h"

namespace streamline {

// ---------------------------------------------------------------------------
// PaaReducer

PaaReducer::PaaReducer(Duration column_width)
    : column_width_(column_width) {
  STREAMLINE_CHECK_GT(column_width, 0);
}

void PaaReducer::EmitOpen() {
  if (!open_ || count_ == 0) return;
  const Timestamp mid =
      open_index_ * column_width_ + column_width_ / 2;
  Transfer({mid, sum_ / static_cast<double>(count_)});
  open_ = false;
  sum_ = 0;
  count_ = 0;
}

void PaaReducer::OnElement(Timestamp t, double v) {
  const int64_t idx = t / column_width_ - (t % column_width_ != 0 && t < 0);
  if (open_ && idx != open_index_) EmitOpen();
  if (!open_) {
    open_ = true;
    open_index_ = idx;
  }
  sum_ += v;
  ++count_;
}

void PaaReducer::OnWatermark(Timestamp wm) {
  if (open_ && (wm == kMaxTimestamp ||
                (open_index_ + 1) * column_width_ <= wm)) {
    EmitOpen();
  }
}

// ---------------------------------------------------------------------------
// MinMaxReducer

MinMaxReducer::MinMaxReducer(Duration column_width)
    : m4_(column_width, [this](const PixelColumn& col) {
        if (col.count == 0) return;
        SeriesPoint a = col.min;
        SeriesPoint b = col.max;
        if (b.t < a.t) std::swap(a, b);
        Transfer(a);
        if (!(a == b)) Transfer(b);
      }) {}

void MinMaxReducer::OnElement(Timestamp t, double v) {
  m4_.OnElement(t, v);
}

void MinMaxReducer::OnWatermark(Timestamp wm) { m4_.OnWatermark(wm); }

// ---------------------------------------------------------------------------
// M4Reducer

M4Reducer::M4Reducer(Duration column_width)
    : m4_(column_width, [this](const PixelColumn& col) {
        for (const SeriesPoint& p : col.Points()) Transfer(p);
      }) {}

void M4Reducer::OnElement(Timestamp t, double v) { m4_.OnElement(t, v); }

void M4Reducer::OnWatermark(Timestamp wm) { m4_.OnWatermark(wm); }

}  // namespace streamline
