#ifndef STREAMLINE_VIZ_RASTER_H_
#define STREAMLINE_VIZ_RASTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "viz/m4.h"

namespace streamline {

/// Binary w x h raster used to measure visualization error: a reduction is
/// "correct" in I2's sense when the rasterized polyline of the reduced
/// series equals the rasterized polyline of the raw series.
class Raster {
 public:
  Raster(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  bool Get(int x, int y) const { return bits_[Index(x, y)]; }
  void Set(int x, int y);

  /// Draws the line segment (x0,y0)-(x1,y1) with Bresenham's algorithm.
  void DrawLine(int x0, int y0, int x1, int y1);

  uint64_t CountSetPixels() const;

  /// Fraction of pixels where the two rasters differ (symmetric difference
  /// over total pixels), in [0, 1].
  static double PixelError(const Raster& a, const Raster& b);

  /// ASCII rendering for debugging ('#' set, '.' unset), row 0 on top.
  std::string ToString() const;

 private:
  size_t Index(int x, int y) const {
    return static_cast<size_t>(y) * width_ + x;
  }
  int width_;
  int height_;
  std::vector<bool> bits_;
};

/// Rasterizes `series` (sorted by t) as a connected polyline over the
/// viewport [t_begin, t_end) x [v_min, v_max] onto a width x height raster.
Raster RasterizeSeries(const std::vector<SeriesPoint>& series,
                       Timestamp t_begin, Timestamp t_end, double v_min,
                       double v_max, int width, int height);

/// Min/max of v over the series (0/1 for an empty series).
std::pair<double, double> ValueRange(const std::vector<SeriesPoint>& series);

}  // namespace streamline

#endif  // STREAMLINE_VIZ_RASTER_H_
