#ifndef STREAMLINE_VIZ_M4_H_
#define STREAMLINE_VIZ_M4_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/time.h"

namespace streamline {

/// One (t, v) sample of a time series.
struct SeriesPoint {
  Timestamp t = 0;
  double v = 0;

  bool operator==(const SeriesPoint&) const = default;
};

/// M4 aggregate of one pixel column (Jugel et al.): the tuples holding the
/// column's min(v), max(v), first(t) and last(t). Together with the column
/// boundaries these four points suffice to render the column's polyline
/// segment pixel-correctly -- I2's "correct and minimal" reduction.
struct PixelColumn {
  int64_t index = 0;  // column number: floor(t / width)
  Timestamp t_start = 0;
  Timestamp t_end = 0;  // exclusive
  uint64_t count = 0;

  SeriesPoint first;
  SeriesPoint last;
  SeriesPoint min;
  SeriesPoint max;

  /// Folds one sample into the column.
  void Add(Timestamp t, double v);
  /// Merges an adjacent, later column (used by the zoom pyramid).
  void Merge(const PixelColumn& later);
  /// The column's (up to 4) distinct points in time order.
  std::vector<SeriesPoint> Points() const;
};

/// Batch M4: aggregates `data` over [t_begin, t_end) into `width` columns.
/// Samples outside the range are ignored.
std::vector<PixelColumn> M4Aggregate(const std::vector<SeriesPoint>& data,
                                     Timestamp t_begin, Timestamp t_end,
                                     int width);

/// Streaming M4 with fixed column duration: emits each column once the
/// watermark passes its right edge. The output rate is at most one column
/// (<= 4 points) per `column_width` of event time, independent of the input
/// data rate -- the paper's "data-rate independent" aggregation.
class StreamingM4 {
 public:
  using ColumnCallback = std::function<void(const PixelColumn&)>;

  StreamingM4(Duration column_width, ColumnCallback on_column);

  /// Samples must arrive in non-decreasing time order.
  void OnElement(Timestamp t, double v);
  /// Emits every column whose end is <= wm (kMaxTimestamp flushes all).
  void OnWatermark(Timestamp wm);

  Duration column_width() const { return column_width_; }
  uint64_t columns_emitted() const { return columns_emitted_; }

 private:
  int64_t ColumnIndex(Timestamp t) const;
  void EmitOpen();

  const Duration column_width_;
  ColumnCallback on_column_;
  std::optional<PixelColumn> open_;
  uint64_t columns_emitted_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_VIZ_M4_H_
