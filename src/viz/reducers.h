#ifndef STREAMLINE_VIZ_REDUCERS_H_
#define STREAMLINE_VIZ_REDUCERS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "viz/m4.h"

namespace streamline {

/// A streaming time-series reducer: consumes samples, emits the (reduced)
/// points a visualization client would receive. Implementations are the
/// comparison axis of the I2 experiments: how many points does each
/// technique transfer, and how wrong is the resulting chart.
class SeriesReducer {
 public:
  virtual ~SeriesReducer() = default;

  virtual void OnElement(Timestamp t, double v) = 0;
  /// Event-time progress; kMaxTimestamp flushes buffered output.
  virtual void OnWatermark(Timestamp wm) { (void)wm; }

  virtual std::string Name() const = 0;

  /// Points emitted for transfer so far, in time order.
  const std::vector<SeriesPoint>& output() const { return output_; }
  uint64_t points_transferred() const { return output_.size(); }
  /// Wire size: 16 bytes per point (int64 t + double v).
  uint64_t bytes_transferred() const { return output_.size() * 16; }

 protected:
  void Transfer(SeriesPoint p) { output_.push_back(p); }

  std::vector<SeriesPoint> output_;
};

/// Transfers every raw sample (the no-reduction upper bound).
class RawReducer : public SeriesReducer {
 public:
  void OnElement(Timestamp t, double v) override { Transfer({t, v}); }
  std::string Name() const override { return "raw"; }
};

/// Transfers every n-th sample (systematic sampling); transfer volume
/// still grows linearly with the data rate.
class EveryNthReducer : public SeriesReducer {
 public:
  explicit EveryNthReducer(uint64_t n) : n_(n) {}
  void OnElement(Timestamp t, double v) override {
    if (seen_++ % n_ == 0) Transfer({t, v});
  }
  std::string Name() const override {
    return "every-" + std::to_string(n_) + "th";
  }

 private:
  uint64_t n_;
  uint64_t seen_ = 0;
};

/// Bernoulli sampling with probability p.
class UniformSamplingReducer : public SeriesReducer {
 public:
  UniformSamplingReducer(double p, uint64_t seed = 7) : p_(p), rng_(seed) {}
  void OnElement(Timestamp t, double v) override {
    if (rng_.NextBool(p_)) Transfer({t, v});
  }
  std::string Name() const override { return "uniform-sample"; }

 private:
  double p_;
  Rng rng_;
};

/// Piecewise Aggregate Approximation: one mean point per column. Data-rate
/// independent like M4, but loses extremes (visibly wrong spikes).
class PaaReducer : public SeriesReducer {
 public:
  explicit PaaReducer(Duration column_width);
  void OnElement(Timestamp t, double v) override;
  void OnWatermark(Timestamp wm) override;
  std::string Name() const override { return "paa"; }

 private:
  void EmitOpen();
  Duration column_width_;
  bool open_ = false;
  int64_t open_index_ = 0;
  double sum_ = 0;
  uint64_t count_ = 0;
};

/// Min/max per column (2 points): close to M4 but misses the first/last
/// points that make inter-column line joins exact.
class MinMaxReducer : public SeriesReducer {
 public:
  explicit MinMaxReducer(Duration column_width);
  void OnElement(Timestamp t, double v) override;
  void OnWatermark(Timestamp wm) override;
  std::string Name() const override { return "minmax"; }

 private:
  void EmitOpen();
  StreamingM4 m4_;
};

/// The I2/M4 reducer: <= 4 points per column, pixel-correct line rendering.
class M4Reducer : public SeriesReducer {
 public:
  explicit M4Reducer(Duration column_width);
  void OnElement(Timestamp t, double v) override;
  void OnWatermark(Timestamp wm) override;
  std::string Name() const override { return "m4"; }

 private:
  StreamingM4 m4_;
};

}  // namespace streamline

#endif  // STREAMLINE_VIZ_REDUCERS_H_
