#ifndef STREAMLINE_VIZ_SERVER_H_
#define STREAMLINE_VIZ_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/subscription_server.h"
#include "viz/pyramid.h"

namespace streamline {

/// A client's view of the chart: a time range rendered at a pixel width.
struct Viewport {
  Timestamp t_begin = 0;
  Timestamp t_end = 1;
  int width_px = 1000;
  int height_px = 250;
  /// Follow mode: the viewport slides with the newest data, keeping
  /// (t_end - t_begin) of history.
  bool follow = true;
};

/// Per-client transfer accounting: the quantity I2 minimizes.
struct TransferStats {
  uint64_t points = 0;
  uint64_t bytes = 0;
  uint64_t updates = 0;  // push messages
  uint64_t refreshes = 0;  // full viewport reloads (zoom/pan/resize)
};

/// The I2 "interactive development environment" stand-in: coordinates the
/// running stream and its visualization clients. The server maintains one
/// multi-resolution M4 pyramid next to the stream; completed pixel columns
/// are pushed incrementally to following clients, and zoom/pan/resize
/// requests are answered from the pyramid without re-scanning raw data.
/// All "network transfer" is accounted per client in bytes.
class VizServer {
 public:
  /// `base_column_width`: finest aggregation granularity; `levels`:
  /// pyramid resolutions.
  VizServer(Duration base_column_width, int levels);

  /// Stream ingestion (thread-safe with respect to client calls).
  void OnElement(Timestamp t, double v);
  void OnWatermark(Timestamp wm);
  /// End-of-stream flush.
  void Flush();

  /// Registers a client; returns its id.
  int Connect(Viewport viewport);
  void Disconnect(int client);

  /// Binds the server to a real network egress: every completed base-level
  /// M4 column is published to `topic` on `server` as a record
  /// [column_index, min, max, first, last] keyed by column index, so
  /// remote followers receive the pixel stream over actual sockets
  /// (snapshot-then-deltas for late attach, per-client flow control).
  /// Registers `topic` keyed on field 0. Call before ingestion starts.
  Status BindNetwork(net::SubscriptionServer* server, std::string topic);

  /// Client interactions: each answers with a full refresh from the
  /// pyramid (counted against the client's transfer budget) and returns
  /// the points the client now renders.
  std::vector<SeriesPoint> Zoom(int client, double factor);
  std::vector<SeriesPoint> Pan(int client, Duration delta);
  std::vector<SeriesPoint> Resize(int client, int width_px);
  std::vector<SeriesPoint> Refresh(int client);

  const Viewport& viewport(int client) const;
  TransferStats transfer_stats(int client) const;
  uint64_t ingested() const {
    MutexLock lock(&mu_);
    return ingested_;
  }
  Timestamp latest() const {
    MutexLock lock(&mu_);
    return latest_;
  }
  /// Direct pyramid access for inspection after the stream has quiesced
  /// (Flush() called, no concurrent OnElement/OnWatermark). The returned
  /// reference is not lock-protected, which is why the analysis is off
  /// here.
  const M4Pyramid& pyramid() const STREAMLINE_NO_THREAD_SAFETY_ANALYSIS {
    return pyramid_;
  }

 private:
  struct Client {
    Viewport viewport;
    TransferStats stats;
  };

  std::vector<SeriesPoint> FullRefreshLocked(Client* c)
      STREAMLINE_REQUIRES(mu_);
  /// Publishes base columns completed in [net_published_end_,
  /// completed_end) to the bound network topic.
  void PublishCompletedLocked(Timestamp completed_end)
      STREAMLINE_REQUIRES(mu_);
  static uint64_t PointBytes(size_t n) { return n * 16; }

  mutable Mutex mu_;
  M4Pyramid pyramid_ STREAMLINE_GUARDED_BY(mu_);
  Duration base_column_width_;
  std::map<int, Client> clients_ STREAMLINE_GUARDED_BY(mu_);
  int next_client_ STREAMLINE_GUARDED_BY(mu_) = 0;
  uint64_t ingested_ STREAMLINE_GUARDED_BY(mu_) = 0;
  Timestamp latest_ STREAMLINE_GUARDED_BY(mu_) = kMinTimestamp;

  // Real-socket egress (null until BindNetwork).
  net::SubscriptionServer* net_server_ STREAMLINE_GUARDED_BY(mu_) = nullptr;
  std::string net_topic_ STREAMLINE_GUARDED_BY(mu_);
  Timestamp earliest_ STREAMLINE_GUARDED_BY(mu_) = kMaxTimestamp;
  Timestamp net_published_end_ STREAMLINE_GUARDED_BY(mu_) = kMinTimestamp;
};

}  // namespace streamline

#endif  // STREAMLINE_VIZ_SERVER_H_
