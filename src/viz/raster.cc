#include "viz/raster.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace streamline {

Raster::Raster(int width, int height)
    : width_(width), height_(height),
      bits_(static_cast<size_t>(width) * height, false) {
  STREAMLINE_CHECK_GT(width, 0);
  STREAMLINE_CHECK_GT(height, 0);
}

void Raster::Set(int x, int y) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
  bits_[Index(x, y)] = true;
}

void Raster::DrawLine(int x0, int y0, int x1, int y1) {
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  for (;;) {
    Set(x0, y0);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

uint64_t Raster::CountSetPixels() const {
  uint64_t n = 0;
  for (bool b : bits_) n += b ? 1 : 0;
  return n;
}

double Raster::PixelError(const Raster& a, const Raster& b) {
  STREAMLINE_CHECK_EQ(a.width_, b.width_);
  STREAMLINE_CHECK_EQ(a.height_, b.height_);
  uint64_t diff = 0;
  for (size_t i = 0; i < a.bits_.size(); ++i) {
    if (a.bits_[i] != b.bits_[i]) ++diff;
  }
  return static_cast<double>(diff) / static_cast<double>(a.bits_.size());
}

std::string Raster::ToString() const {
  std::string out;
  out.reserve(static_cast<size_t>(height_) * (width_ + 1));
  for (int y = height_ - 1; y >= 0; --y) {
    for (int x = 0; x < width_; ++x) {
      out += Get(x, y) ? '#' : '.';
    }
    out += '\n';
  }
  return out;
}

Raster RasterizeSeries(const std::vector<SeriesPoint>& series,
                       Timestamp t_begin, Timestamp t_end, double v_min,
                       double v_max, int width, int height) {
  Raster raster(width, height);
  if (series.empty()) return raster;
  STREAMLINE_CHECK_LT(t_begin, t_end);
  const double t_span = static_cast<double>(t_end - t_begin);
  const double v_span = v_max > v_min ? v_max - v_min : 1.0;
  auto to_x = [&](Timestamp t) {
    const double fx = static_cast<double>(t - t_begin) / t_span * width;
    return std::clamp(static_cast<int>(fx), 0, width - 1);
  };
  auto to_y = [&](double v) {
    const double fy = (v - v_min) / v_span * (height - 1);
    return std::clamp(static_cast<int>(std::lround(fy)), 0, height - 1);
  };
  int px = to_x(series[0].t);
  int py = to_y(series[0].v);
  raster.Set(px, py);
  for (size_t i = 1; i < series.size(); ++i) {
    const int x = to_x(series[i].t);
    const int y = to_y(series[i].v);
    raster.DrawLine(px, py, x, y);
    px = x;
    py = y;
  }
  return raster;
}

std::pair<double, double> ValueRange(const std::vector<SeriesPoint>& series) {
  if (series.empty()) return {0.0, 1.0};
  double lo = series[0].v;
  double hi = series[0].v;
  for (const SeriesPoint& p : series) {
    lo = std::min(lo, p.v);
    hi = std::max(hi, p.v);
  }
  return {lo, hi};
}

}  // namespace streamline
