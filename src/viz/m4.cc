#include "viz/m4.h"

#include <algorithm>

#include "common/logging.h"

namespace streamline {

void PixelColumn::Add(Timestamp t, double v) {
  const SeriesPoint p{t, v};
  if (count == 0) {
    first = last = min = max = p;
  } else {
    last = p;  // in-order arrival
    if (v < min.v) min = p;
    if (v > max.v) max = p;
  }
  ++count;
}

void PixelColumn::Merge(const PixelColumn& later) {
  if (later.count == 0) return;
  if (count == 0) {
    *this = later;
    return;
  }
  STREAMLINE_DCHECK(later.first.t >= last.t);
  last = later.last;
  if (later.min.v < min.v) min = later.min;
  if (later.max.v > max.v) max = later.max;
  count += later.count;
  t_end = std::max(t_end, later.t_end);
}

std::vector<SeriesPoint> PixelColumn::Points() const {
  std::vector<SeriesPoint> pts;
  if (count == 0) return pts;
  pts = {first, min, max, last};
  std::sort(pts.begin(), pts.end(), [](const SeriesPoint& a,
                                       const SeriesPoint& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.v < b.v;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

std::vector<PixelColumn> M4Aggregate(const std::vector<SeriesPoint>& data,
                                     Timestamp t_begin, Timestamp t_end,
                                     int width) {
  STREAMLINE_CHECK_GT(width, 0);
  STREAMLINE_CHECK_LT(t_begin, t_end);
  std::vector<PixelColumn> columns(width);
  // Integer arithmetic keeps exact-boundary samples in the right column.
  const Timestamp span = t_end - t_begin;
  for (int i = 0; i < width; ++i) {
    columns[i].index = i;
    columns[i].t_start = t_begin + span * i / width;
    columns[i].t_end = t_begin + span * (i + 1) / width;
  }
  for (const SeriesPoint& p : data) {
    if (p.t < t_begin || p.t >= t_end) continue;
    int col = static_cast<int>((p.t - t_begin) * width / span);
    col = std::clamp(col, 0, width - 1);
    columns[col].Add(p.t, p.v);
  }
  return columns;
}

StreamingM4::StreamingM4(Duration column_width, ColumnCallback on_column)
    : column_width_(column_width), on_column_(std::move(on_column)) {
  STREAMLINE_CHECK_GT(column_width, 0);
}

int64_t StreamingM4::ColumnIndex(Timestamp t) const {
  int64_t q = t / column_width_;
  if (t % column_width_ != 0 && t < 0) --q;
  return q;
}

void StreamingM4::EmitOpen() {
  if (!open_.has_value()) return;
  ++columns_emitted_;
  if (on_column_) on_column_(*open_);
  open_.reset();
}

void StreamingM4::OnElement(Timestamp t, double v) {
  const int64_t idx = ColumnIndex(t);
  if (open_.has_value() && open_->index != idx) {
    // In-order arrival: a new column implies the previous one is complete.
    EmitOpen();
  }
  if (!open_.has_value()) {
    PixelColumn col;
    col.index = idx;
    col.t_start = idx * column_width_;
    col.t_end = (idx + 1) * column_width_;
    open_ = col;
  }
  open_->Add(t, v);
}

void StreamingM4::OnWatermark(Timestamp wm) {
  if (open_.has_value() &&
      (wm == kMaxTimestamp || open_->t_end <= wm)) {
    EmitOpen();
  }
}

}  // namespace streamline
