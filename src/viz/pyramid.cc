#include "viz/pyramid.h"

#include <algorithm>

#include "common/logging.h"

namespace streamline {

M4Pyramid::M4Pyramid(Duration base_width, int levels,
                     size_t max_columns_per_level)
    : base_width_(base_width),
      max_columns_per_level_(max_columns_per_level),
      ingest_(base_width,
              [this](const PixelColumn& col) { Insert(0, col); }) {
  STREAMLINE_CHECK_GT(levels, 0);
  levels_.resize(levels);
  Duration w = base_width;
  for (int k = 0; k < levels; ++k) {
    levels_[k].width = w;
    w *= 2;
  }
}

void M4Pyramid::OnElement(Timestamp t, double v) { ingest_.OnElement(t, v); }

void M4Pyramid::OnWatermark(Timestamp wm) { ingest_.OnWatermark(wm); }

void M4Pyramid::Insert(int level, const PixelColumn& column) {
  Level& lvl = levels_[level];
  lvl.columns.push_back(column);
  // Re-key the column to this level's grid.
  PixelColumn& stored = lvl.columns.back();
  stored.index = column.t_start >= 0
                     ? column.t_start / lvl.width
                     : (column.t_start - lvl.width + 1) / lvl.width;
  stored.t_start = stored.index * lvl.width;
  stored.t_end = stored.t_start + lvl.width;
  // Merge into the previous column when the child falls into the same
  // grid cell of this level (M4 columns are algebraic partials).
  if (lvl.columns.size() >= 2) {
    PixelColumn& prev = lvl.columns[lvl.columns.size() - 2];
    if (prev.index == stored.index) {
      prev.Merge(stored);
      // Restore grid bounds clobbered by Merge.
      prev.t_start = prev.index * lvl.width;
      prev.t_end = prev.t_start + lvl.width;
      lvl.columns.pop_back();
      return;
    }
  }
  // A new grid cell started at this level, so the PREVIOUS one is complete:
  // propagate it upward.
  if (level + 1 < static_cast<int>(levels_.size()) &&
      lvl.columns.size() >= 2) {
    const PixelColumn& done = lvl.columns[lvl.columns.size() - 2];
    // The index check avoids double-propagation after a Flush().
    if (done.index > lvl.last_propagated) {
      lvl.last_propagated = done.index;
      Insert(level + 1, done);
    }
  }
  if (max_columns_per_level_ > 0 &&
      lvl.columns.size() > max_columns_per_level_) {
    lvl.columns.pop_front();
  }
}

void M4Pyramid::Flush() {
  ingest_.OnWatermark(kMaxTimestamp);
  for (int k = 0; k + 1 < static_cast<int>(levels_.size()); ++k) {
    Level& lvl = levels_[k];
    if (lvl.columns.empty()) continue;
    const PixelColumn& tail = lvl.columns.back();
    if (tail.index > lvl.last_propagated) {
      lvl.last_propagated = tail.index;
      Insert(k + 1, tail);
    }
  }
}

Duration M4Pyramid::level_width(int level) const {
  return levels_[level].width;
}

size_t M4Pyramid::stored_columns() const {
  size_t total = 0;
  for (const Level& lvl : levels_) total += lvl.columns.size();
  return total;
}

int M4Pyramid::PickLevel(Timestamp t_begin, Timestamp t_end,
                         int width) const {
  const double span = static_cast<double>(t_end - t_begin);
  const double target = span / width;  // desired column duration
  int best = 0;
  for (int k = 0; k < static_cast<int>(levels_.size()); ++k) {
    if (static_cast<double>(levels_[k].width) <= target) best = k;
  }
  return best;
}

std::vector<PixelColumn> M4Pyramid::Query(Timestamp t_begin, Timestamp t_end,
                                          int width) const {
  STREAMLINE_CHECK_LT(t_begin, t_end);
  STREAMLINE_CHECK_GT(width, 0);
  const int level = PickLevel(t_begin, t_end, width);
  const Level& lvl = levels_[level];
  std::vector<PixelColumn> out(width);
  const Timestamp span = t_end - t_begin;
  for (int i = 0; i < width; ++i) {
    out[i].index = i;
    out[i].t_start = t_begin + span * i / width;
    out[i].t_end = t_begin + span * (i + 1) / width;
  }
  for (const PixelColumn& col : lvl.columns) {
    if (col.t_end <= t_begin || col.t_start >= t_end || col.count == 0) {
      continue;
    }
    if (col.first.t < t_begin || col.first.t >= t_end) continue;
    // Assign by the column's first sample time (columns are narrower than
    // pixels at the chosen level). Integer math keeps boundaries exact.
    int pixel = static_cast<int>((col.first.t - t_begin) * width / span);
    pixel = std::clamp(pixel, 0, width - 1);
    out[pixel].Merge(col);
    // Merge clobbers grid bounds; restore them.
    out[pixel].index = pixel;
    out[pixel].t_start = t_begin + span * pixel / width;
    out[pixel].t_end = t_begin + span * (pixel + 1) / width;
  }
  return out;
}

std::vector<SeriesPoint> M4Pyramid::QuerySeries(Timestamp t_begin,
                                                Timestamp t_end,
                                                int width) const {
  std::vector<SeriesPoint> out;
  for (const PixelColumn& col : Query(t_begin, t_end, width)) {
    for (const SeriesPoint& p : col.Points()) out.push_back(p);
  }
  return out;
}

}  // namespace streamline
