#ifndef STREAMLINE_WORKLOAD_CLICKSTREAM_H_
#define STREAMLINE_WORKLOAD_CLICKSTREAM_H_

#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/record.h"

namespace streamline {

/// One user interaction -- the unit of the paper's customer-retention and
/// recommendation use cases.
struct ClickEvent {
  Timestamp ts = 0;
  uint64_t user = 0;
  enum class Kind : uint8_t { kView = 0, kClick = 1, kPurchase = 2 };
  Kind kind = Kind::kView;
  uint64_t item = 0;
  double value = 0;  // purchase amount (kPurchase only)

  /// [user(i64), kind(i64), item(i64), value(double)] at `ts`.
  Record ToRecord() const;
};

/// Session-structured clickstream: Zipf-distributed users start sessions
/// (Poisson arrivals); a session is a burst of events with small gaps, so
/// session windows with a matching gap recover the generated sessions
/// exactly. Events are emitted globally ordered by timestamp.
class ClickstreamGenerator {
 public:
  struct Options {
    uint64_t num_users = 1000;
    double user_skew = 0.8;           // Zipf exponent over users
    uint64_t num_items = 500;
    double item_skew = 1.0;
    double sessions_per_second = 5.0;  // global session start rate
    uint64_t min_session_events = 2;
    uint64_t max_session_events = 20;
    Duration max_event_gap_ms = 20'000;  // intra-session spacing bound
    Duration session_gap_ms = 30'000;    // guaranteed inter-session silence
    double click_probability = 0.3;      // else view
    double purchase_probability = 0.05;  // subset of clicks
  };

  explicit ClickstreamGenerator(Options options, uint64_t seed = 3);

  /// Next event in global timestamp order.
  ClickEvent Next();
  std::vector<ClickEvent> Take(size_t n);

  const Options& options() const { return options_; }

 private:
  struct PendingEvent {
    ClickEvent event;
    bool operator>(const PendingEvent& other) const {
      return event.ts > other.event.ts;
    }
  };

  void ScheduleSession();

  Options options_;
  Rng rng_;
  ZipfGenerator users_;
  ZipfGenerator items_;
  double session_clock_ms_ = 0.0;
  std::unordered_map<uint64_t, double> user_last_end_;
  std::priority_queue<PendingEvent, std::vector<PendingEvent>,
                      std::greater<PendingEvent>>
      pending_;
};

}  // namespace streamline

#endif  // STREAMLINE_WORKLOAD_CLICKSTREAM_H_
