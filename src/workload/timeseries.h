#ifndef STREAMLINE_WORKLOAD_TIMESERIES_H_
#define STREAMLINE_WORKLOAD_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/time.h"
#include "viz/m4.h"

namespace streamline {

/// Arrival-rate shaping: timestamps advance so that `rate_per_second`
/// samples fall into each 1000 ms of event time (with optional burstiness).
struct RateShape {
  double rate_per_second = 1000.0;
  /// 0 = perfectly regular spacing; 1 = exponential (Poisson) spacing.
  double burstiness = 0.0;
};

/// Gaussian random-walk series: v += sigma * N(0,1) per step. The generic
/// "metric" signal of the I2 experiments.
class RandomWalkSeries {
 public:
  RandomWalkSeries(RateShape rate, double start_value = 0.0,
                   double sigma = 1.0, uint64_t seed = 1);

  SeriesPoint Next();
  /// Generates `n` points.
  std::vector<SeriesPoint> Take(size_t n);

 private:
  RateShape rate_;
  double value_;
  double sigma_;
  Rng rng_;
  double clock_ms_ = 0.0;
};

/// Seasonal sensor series: daily sine + noise + occasional spikes -- the
/// shape where mean-based reductions (PAA, sampling) visibly lose spikes
/// while M4 keeps them.
class SeasonalSensorSeries {
 public:
  struct Options {
    double base = 20.0;        // mean level
    double amplitude = 5.0;    // seasonal swing
    Duration period_ms = 60'000;
    double noise_sigma = 0.5;
    double spike_probability = 0.001;
    double spike_magnitude = 15.0;
  };

  SeasonalSensorSeries(RateShape rate, Options options, uint64_t seed = 2);

  SeriesPoint Next();
  std::vector<SeriesPoint> Take(size_t n);

 private:
  RateShape rate_;
  Options options_;
  Rng rng_;
  double clock_ms_ = 0.0;
};

}  // namespace streamline

#endif  // STREAMLINE_WORKLOAD_TIMESERIES_H_
