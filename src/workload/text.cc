#include "workload/text.h"

#include <sstream>

namespace streamline {

TextGenerator::TextGenerator(Options options, uint64_t seed)
    : options_(options),
      rng_(seed),
      words_(options.vocabulary, options.skew, seed ^ 0x55) {}

std::pair<Timestamp, std::string> TextGenerator::NextLine() {
  clock_ms_ += 1000.0 / options_.lines_per_second;
  const uint64_t n = options_.min_words +
                     rng_.NextBelow(options_.max_words -
                                    options_.min_words + 1);
  std::string line;
  for (uint64_t i = 0; i < n; ++i) {
    if (i > 0) line += ' ';
    line += WordFor(words_.Next());
  }
  return {static_cast<Timestamp>(clock_ms_), std::move(line)};
}

Record TextGenerator::NextRecord() {
  auto [ts, line] = NextLine();
  return MakeRecord(ts, Value(std::move(line)));
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string word;
  while (is >> word) out.push_back(word);
  return out;
}

}  // namespace streamline
