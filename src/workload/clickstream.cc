#include "workload/clickstream.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace streamline {

Record ClickEvent::ToRecord() const {
  return MakeRecord(ts, Value(static_cast<int64_t>(user)),
                    Value(static_cast<int64_t>(kind)),
                    Value(static_cast<int64_t>(item)), Value(value));
}

ClickstreamGenerator::ClickstreamGenerator(Options options, uint64_t seed)
    : options_(options),
      rng_(seed),
      users_(options.num_users, options.user_skew, seed ^ 0xABCD),
      items_(options.num_items, options.item_skew, seed ^ 0x1234) {
  STREAMLINE_CHECK_GE(options_.max_session_events,
                      options_.min_session_events);
  STREAMLINE_CHECK_GT(options_.min_session_events, 0u);
}

void ClickstreamGenerator::ScheduleSession() {
  // Global Poisson session arrivals.
  double u = rng_.NextDouble();
  while (u <= 1e-12) u = rng_.NextDouble();
  session_clock_ms_ +=
      -1000.0 / options_.sessions_per_second * std::log(u);

  const uint64_t user = users_.Next();
  // Keep one user's sessions separated by at least session_gap_ms so that
  // session windows with gap <= session_gap_ms recover them exactly.
  double start = session_clock_ms_;
  auto it = user_last_end_.find(user);
  if (it != user_last_end_.end()) {
    start = std::max(
        start, it->second + static_cast<double>(options_.session_gap_ms) + 1);
  }

  const uint64_t n_events =
      options_.min_session_events +
      rng_.NextBelow(options_.max_session_events -
                     options_.min_session_events + 1);
  double t = start;
  for (uint64_t i = 0; i < n_events; ++i) {
    ClickEvent ev;
    ev.ts = static_cast<Timestamp>(t);
    ev.user = user;
    ev.item = items_.Next();
    if (rng_.NextBool(options_.click_probability)) {
      if (rng_.NextBool(options_.purchase_probability /
                        options_.click_probability)) {
        ev.kind = ClickEvent::Kind::kPurchase;
        ev.value = 5.0 + rng_.NextDouble() * 195.0;
      } else {
        ev.kind = ClickEvent::Kind::kClick;
      }
    } else {
      ev.kind = ClickEvent::Kind::kView;
    }
    pending_.push(PendingEvent{ev});
    if (i + 1 < n_events) {
      t += 1.0 + rng_.NextDouble() *
                     static_cast<double>(options_.max_event_gap_ms - 1);
    }
  }
  user_last_end_[user] = t;
}

ClickEvent ClickstreamGenerator::Next() {
  // Emit in global order: an event may be released once no future session
  // (they all start at >= session_clock_ms_) could precede it.
  while (pending_.empty() ||
         pending_.top().event.ts >=
             static_cast<Timestamp>(session_clock_ms_)) {
    ScheduleSession();
  }
  ClickEvent ev = pending_.top().event;
  pending_.pop();
  return ev;
}

std::vector<ClickEvent> ClickstreamGenerator::Take(size_t n) {
  std::vector<ClickEvent> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace streamline
