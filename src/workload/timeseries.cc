#include "workload/timeseries.h"

#include <cmath>

#include "common/logging.h"

namespace streamline {
namespace {

// Advances an event-time clock by one inter-arrival gap.
double NextGapMs(const RateShape& rate, Rng* rng) {
  STREAMLINE_CHECK_GT(rate.rate_per_second, 0.0);
  const double mean_gap = 1000.0 / rate.rate_per_second;
  if (rate.burstiness <= 0.0) return mean_gap;
  // Blend regular and exponential spacing.
  double u = rng->NextDouble();
  while (u <= 1e-12) u = rng->NextDouble();
  const double exp_gap = -mean_gap * std::log(u);
  return (1.0 - rate.burstiness) * mean_gap + rate.burstiness * exp_gap;
}

}  // namespace

RandomWalkSeries::RandomWalkSeries(RateShape rate, double start_value,
                                   double sigma, uint64_t seed)
    : rate_(rate), value_(start_value), sigma_(sigma), rng_(seed) {}

SeriesPoint RandomWalkSeries::Next() {
  clock_ms_ += NextGapMs(rate_, &rng_);
  value_ += sigma_ * rng_.NextGaussian();
  return SeriesPoint{static_cast<Timestamp>(clock_ms_), value_};
}

std::vector<SeriesPoint> RandomWalkSeries::Take(size_t n) {
  std::vector<SeriesPoint> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

SeasonalSensorSeries::SeasonalSensorSeries(RateShape rate, Options options,
                                           uint64_t seed)
    : rate_(rate), options_(options), rng_(seed) {}

SeriesPoint SeasonalSensorSeries::Next() {
  clock_ms_ += NextGapMs(rate_, &rng_);
  const double phase = 2.0 * M_PI * clock_ms_ /
                       static_cast<double>(options_.period_ms);
  double v = options_.base + options_.amplitude * std::sin(phase) +
             options_.noise_sigma * rng_.NextGaussian();
  if (rng_.NextBool(options_.spike_probability)) {
    v += (rng_.NextBool(0.5) ? 1.0 : -1.0) * options_.spike_magnitude;
  }
  return SeriesPoint{static_cast<Timestamp>(clock_ms_), v};
}

std::vector<SeriesPoint> SeasonalSensorSeries::Take(size_t n) {
  std::vector<SeriesPoint> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace streamline
