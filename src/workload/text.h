#ifndef STREAMLINE_WORKLOAD_TEXT_H_
#define STREAMLINE_WORKLOAD_TEXT_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/record.h"

namespace streamline {

/// Sentences over a Zipf-distributed synthetic vocabulary ("word0",
/// "word1", ...) -- the word-count / multilingual-web-processing stand-in.
class TextGenerator {
 public:
  struct Options {
    uint64_t vocabulary = 1000;
    double skew = 1.0;
    uint64_t min_words = 3;
    uint64_t max_words = 12;
    double lines_per_second = 100.0;
  };

  explicit TextGenerator(Options options, uint64_t seed = 5);

  /// Next line of text with its event time.
  std::pair<Timestamp, std::string> NextLine();

  /// [line(string)] record at the line's event time.
  Record NextRecord();

  /// The word for vocabulary rank `r`.
  static std::string WordFor(uint64_t rank) {
    return "word" + std::to_string(rank);
  }

 private:
  Options options_;
  Rng rng_;
  ZipfGenerator words_;
  double clock_ms_ = 0.0;
};

/// Splits `line` on spaces (used by the word-count examples).
std::vector<std::string> SplitWords(const std::string& line);

}  // namespace streamline

#endif  // STREAMLINE_WORKLOAD_TEXT_H_
