#ifndef STREAMLINE_WORKLOAD_ADSTREAM_H_
#define STREAMLINE_WORKLOAD_ADSTREAM_H_

#include <vector>

#include "common/random.h"
#include "common/record.h"

namespace streamline {

/// One advertising event -- the paper's target-advertisement use case.
struct AdEvent {
  Timestamp ts = 0;
  uint64_t campaign = 0;
  bool is_click = false;  // else impression
  double cost = 0;        // cost of the impression / click

  /// [campaign(i64), is_click(bool), cost(double)] at `ts`.
  Record ToRecord() const;
};

/// Impression/click stream with Zipf-distributed campaigns and per-campaign
/// click-through rates. Timestamps advance at a configurable event rate.
/// Multi-window CTR dashboards over this stream are the canonical
/// multi-query sharing workload (same aggregate, many window sizes).
class AdStreamGenerator {
 public:
  struct Options {
    uint64_t num_campaigns = 100;
    double campaign_skew = 1.0;
    double events_per_second = 10'000;
    double base_ctr = 0.02;  // campaign c gets base_ctr * (1 + c % 5)
  };

  explicit AdStreamGenerator(Options options, uint64_t seed = 4);

  AdEvent Next();
  std::vector<AdEvent> Take(size_t n);

  /// Ground-truth click probability of a campaign.
  double CampaignCtr(uint64_t campaign) const;

 private:
  Options options_;
  Rng rng_;
  ZipfGenerator campaigns_;
  double clock_ms_ = 0.0;
};

}  // namespace streamline

#endif  // STREAMLINE_WORKLOAD_ADSTREAM_H_
