#include "workload/adstream.h"

namespace streamline {

Record AdEvent::ToRecord() const {
  return MakeRecord(ts, Value(static_cast<int64_t>(campaign)),
                    Value(is_click), Value(cost));
}

AdStreamGenerator::AdStreamGenerator(Options options, uint64_t seed)
    : options_(options),
      rng_(seed),
      campaigns_(options.num_campaigns, options.campaign_skew, seed ^ 0x77) {}

double AdStreamGenerator::CampaignCtr(uint64_t campaign) const {
  return options_.base_ctr * (1.0 + static_cast<double>(campaign % 5));
}

AdEvent AdStreamGenerator::Next() {
  clock_ms_ += 1000.0 / options_.events_per_second;
  AdEvent ev;
  ev.ts = static_cast<Timestamp>(clock_ms_);
  ev.campaign = campaigns_.Next();
  ev.is_click = rng_.NextBool(CampaignCtr(ev.campaign));
  ev.cost = ev.is_click ? 0.5 + rng_.NextDouble() : 0.01;
  return ev;
}

std::vector<AdEvent> AdStreamGenerator::Take(size_t n) {
  std::vector<AdEvent> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace streamline
