#ifndef STREAMLINE_NET_SUBSCRIPTION_SERVER_H_
#define STREAMLINE_NET_SUBSCRIPTION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/mutex.h"
#include "common/record.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"

namespace streamline {
namespace net {

/// Result egress: clients connect over loopback TCP, send one kMsgSubscribe
/// frame naming a topic, and from then on receive framed data records.
///
/// Keyed topics (key_field >= 0) follow the Shared Arrangements serving
/// pattern: the server retains the latest record per key, a new subscriber
/// gets a consistent snapshot (kMsgSnapshotBegin, one frame per live key,
/// kMsgSnapshotEnd) followed by every later delta -- attach and Publish
/// serialize on one mutex, so snapshot-then-deltas is exactly-once
/// consistent: the client's materialized state is byte-identical to a
/// from-start subscriber's.
///
/// Flow control is per client and never blocks the job: Publish encodes a
/// frame once (shared bytes across all subscribers) and appends it to each
/// subscriber's bounded send queue. A slow client crossing the coalesce
/// threshold gets keyed updates coalesced in place (latest frame per key
/// wins -- the queue stops growing for a fixed key set); one crossing the
/// high-water mark is disconnected. The job thread only ever pays an
/// enqueue; all socket IO happens on the event-loop thread via
/// scatter/gather writev straight out of the queued frames.
class SubscriptionServer {
 public:
  struct Options {
    /// TCP port to listen on (loopback). 0 picks an ephemeral port.
    uint16_t listen_port = 0;
    /// High-water mark: a client whose queued bytes would exceed this is
    /// disconnected (slow-client policy, last resort).
    size_t send_buffer_limit_bytes = 4u << 20;
    /// Above this many queued bytes, keyed updates coalesce in place
    /// instead of appending (slow-client policy, first resort).
    size_t coalesce_threshold_bytes = 256u << 10;
    /// Decoder limit for inbound (subscribe) frames.
    size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /// Chaos hook: site "net:conn_drop" is consulted on every client
    /// flush; a firing rule drops that connection.
    FaultInjector* fault_injector = nullptr;
  };

  struct Stats {
    uint64_t clients_connected = 0;  // lifetime accepts
    uint64_t clients_now = 0;
    uint64_t bytes_sent = 0;
    uint64_t frames_sent = 0;
    uint64_t coalesced_updates = 0;
    uint64_t slow_disconnects = 0;
    uint64_t dropped_connections = 0;  // fault-injected drops
    uint64_t snapshots_served = 0;
    uint64_t max_queued_bytes = 0;  // high-water across all clients
  };

  /// Creates the listener and registers it with `loop` (not yet started,
  /// or call on the loop thread).
  static Result<std::unique_ptr<SubscriptionServer>> Create(EventLoop* loop,
                                                            Options options);
  /// Contract: stop the EventLoop before destroying the server.
  ~SubscriptionServer();

  SubscriptionServer(const SubscriptionServer&) = delete;
  SubscriptionServer& operator=(const SubscriptionServer&) = delete;

  uint16_t port() const { return port_; }

  /// Declares a topic. `key_field >= 0` makes it keyed: last-value state
  /// is retained per distinct value of that record field, enabling
  /// snapshot-then-deltas attach and slow-client coalescing. `key_field <
  /// 0` is a plain append stream (no snapshot, no coalescing).
  Status RegisterTopic(const std::string& name, int key_field);

  /// Publishes one record to a topic's subscribers. Thread-safe, never
  /// blocks on the network: cost is one encode plus one queue append per
  /// subscriber. Unknown topics are ignored (drop-on-floor, like a pubsub
  /// with no consumers).
  void Publish(const std::string& topic, const Record& record);

  /// Sum of queued bytes across clients (the bounded-memory number the
  /// chaos test asserts on).
  size_t TotalQueuedBytes() const;

  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const std::string> frame;
    std::string key;  // empty: control or unkeyed (never coalesced)
  };

  struct Client {
    Fd fd;
    FrameDecoder decoder;
    std::string topic;  // empty until subscribed
    std::list<Entry> queue;
    std::map<std::string, std::list<Entry>::iterator> pending_by_key;
    size_t queued_bytes = 0;
    size_t front_offset = 0;  // bytes of the front frame already sent
    bool epollout_armed = false;
    bool doomed = false;  // crossed high-water: close on loop thread
    explicit Client(Fd f, size_t max_frame)
        : fd(std::move(f)), decoder(max_frame) {}
  };

  struct Topic {
    int key_field = -1;
    // Latest frame per serialized key, in key order so snapshots are
    // deterministic.
    std::map<std::string, std::shared_ptr<const std::string>> retained;
    std::vector<int> subscriber_fds;
  };

  SubscriptionServer(EventLoop* loop, Options options, Fd listener,
                     uint16_t port);

  void OnAccept();
  void OnClientReadable(int fd);
  void OnClientWritable(int fd);
  /// Appends a frame to a client's queue, applying the slow-client policy.
  void EnqueueLocked(Client* c, std::shared_ptr<const std::string> frame,
                     const std::string& key) STREAMLINE_REQUIRES(mu_);
  /// writev as much of the queue as the socket accepts; arms EPOLLOUT on
  /// EAGAIN. Returns false when the client was closed.
  bool FlushClientLocked(int fd, Client* c) STREAMLINE_REQUIRES(mu_);
  void FlushAll();
  void CloseClientLocked(int fd) STREAMLINE_REQUIRES(mu_);
  /// Serializes the record's key field (empty for unkeyed topics).
  static std::string KeyOf(const Record& r, int key_field);

  EventLoop* loop_;
  const Options options_;
  Fd listener_;
  uint16_t port_ = 0;

  std::shared_ptr<const std::string> snapshot_begin_frame_;
  std::shared_ptr<const std::string> snapshot_end_frame_;

  std::atomic<bool> flush_posted_{false};

  mutable Mutex mu_;
  std::map<std::string, Topic> topics_ STREAMLINE_GUARDED_BY(mu_);
  std::map<int, std::unique_ptr<Client>> clients_ STREAMLINE_GUARDED_BY(mu_);
  Stats stats_ STREAMLINE_GUARDED_BY(mu_);
};

}  // namespace net
}  // namespace streamline

#endif  // STREAMLINE_NET_SUBSCRIPTION_SERVER_H_
