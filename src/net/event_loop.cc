#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/retry_eintr.h"

namespace streamline {
namespace net {

namespace {

Status EpollError(const char* op, int err) {
  return Status::Internal(std::string(op) + " failed: " + ErrnoString(err));
}

}  // namespace

EventLoop::EventLoop()
    : epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {}

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  if (!epoll_.valid()) return EpollError("epoll_create1", errno);
  if (!wake_.valid()) return EpollError("eventfd", errno);
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("event loop already started");
  }
  // The wake eventfd is drained level-style on every loop pass, so
  // edge-triggered registration never loses a post.
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = wake_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_.get(), &ev) != 0) {
    return EpollError("epoll_ctl(wake)", errno);
  }
  // lint:allow(raw-thread): dedicated net thread; socket readiness blocking must never enter the work-stealing pool
  thread_ = std::thread([this] { Run(); });
  return Status::Ok();
}

void EventLoop::Stop() {
  if (!started_.load()) return;
  if (!stop_.exchange(true)) {
    const uint64_t one = 1;
    (void)WriteAllFd(wake_.get(), reinterpret_cast<const char*>(&one),
                     sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
}

Status EventLoop::Add(int fd, uint32_t events, FdHandler handler) {
  {
    MutexLock lock(&mu_);
    handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    const int err = errno;
    MutexLock lock(&mu_);
    handlers_.erase(fd);
    return EpollError("epoll_ctl(add)", err);
  }
  return Status::Ok();
}

Status EventLoop::Mod(int fd, uint32_t events) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
    return EpollError("epoll_ctl(mod)", errno);
  }
  return Status::Ok();
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
  MutexLock lock(&mu_);
  handlers_.erase(fd);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    MutexLock lock(&mu_);
    posts_.push_back(std::move(fn));
  }
  const uint64_t one = 1;
  (void)WriteAllFd(wake_.get(), reinterpret_cast<const char*>(&one),
                   sizeof(one));
}

Status EventLoop::AddTimer(int64_t period_ms, std::function<void()> fn) {
  Fd tfd(::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC));
  if (!tfd.valid()) return EpollError("timerfd_create", errno);
  itimerspec spec;
  std::memset(&spec, 0, sizeof(spec));
  spec.it_interval.tv_sec = period_ms / 1000;
  spec.it_interval.tv_nsec = (period_ms % 1000) * 1000000;
  spec.it_value = spec.it_interval;
  if (::timerfd_settime(tfd.get(), 0, &spec, nullptr) != 0) {
    return EpollError("timerfd_settime", errno);
  }
  const int raw = tfd.get();
  STREAMLINE_RETURN_IF_ERROR(
      Add(raw, EPOLLIN, [raw, cb = std::move(fn)](uint32_t) {
        uint64_t expirations = 0;
        // Drain the expiration count (edge-triggered): missed periods
        // coalesce into one callback, which is what a backstop timer wants.
        while (RetryEintr([&] {
                 return ::read(raw, &expirations, sizeof(expirations));
               }) == static_cast<ssize_t>(sizeof(expirations))) {
        }
        cb();
      }));
  timers_.push_back(std::move(tfd));
  return Status::Ok();
}

void EventLoop::DrainPosts() {
  std::vector<std::function<void()>> batch;
  {
    MutexLock lock(&mu_);
    batch.swap(posts_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::Run() {
  loop_thread_id_.store(std::this_thread::get_id());
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = RetryEintr(
        [&] { return ::epoll_wait(epoll_.get(), events, kMaxEvents, -1); });
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) break;  // epoll set gone: shutting down
    bool woke = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_.get()) {
        uint64_t counter = 0;
        while (RetryEintr([&] {
                 return ::read(wake_.get(), &counter, sizeof(counter));
               }) == static_cast<ssize_t>(sizeof(counter))) {
        }
        woke = true;
        continue;
      }
      std::shared_ptr<FdHandler> handler;
      {
        MutexLock lock(&mu_);
        auto it = handlers_.find(fd);
        if (it != handlers_.end()) handler = it->second;
      }
      if (handler != nullptr) (*handler)(events[i].events);
    }
    if (woke || n > 0) DrainPosts();
  }
  // Final drain so a Post racing with Stop still runs (e.g. fd cleanup).
  DrainPosts();
  loop_thread_id_.store(std::thread::id());
}

}  // namespace net
}  // namespace streamline
