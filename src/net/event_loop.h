#ifndef STREAMLINE_NET_EVENT_LOOP_H_
#define STREAMLINE_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/socket.h"

namespace streamline {
namespace net {

/// Edge-triggered epoll event loop on one dedicated net thread -- the
/// engine's only sanctioned home for blocking waits on sockets. Morsel
/// workers never touch an fd: the loop thread does all socket IO and hands
/// parsed batches across SPSC rings, so a slow or stalled peer can block
/// at most this thread, never a morsel.
///
/// Wakeups are file descriptors like everything else: cross-thread Post()
/// rings an eventfd, AddTimer arms a timerfd -- both just more entries in
/// the same epoll set.
///
/// Threading contract: fd handlers and posted functions run on the loop
/// thread, one at a time (they need no locking against each other).
/// Add/Mod/Remove/Post are safe from any thread. Handlers are registered
/// edge-triggered: a readable handler must drain its fd to EAGAIN before
/// returning or the edge is lost.
class EventLoop {
 public:
  using FdHandler = std::function<void(uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Starts the loop thread. Call once.
  Status Start();

  /// Stops the loop thread and joins it. Idempotent. Registered fds are
  /// closed by their owners, not the loop.
  void Stop();

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT; EPOLLET is added
  /// internally). The handler is invoked on the loop thread with the ready
  /// event mask.
  Status Add(int fd, uint32_t events, FdHandler handler);

  /// Changes the interest set of a registered fd. `events == 0` keeps the
  /// fd registered but silent (the ingest path's pause).
  Status Mod(int fd, uint32_t events);

  /// Deregisters `fd`. Must be called from the loop thread (or with the
  /// loop stopped): a handler may otherwise be mid-flight on its way to
  /// this fd.
  void Remove(int fd);

  /// Runs `fn` on the loop thread soon. Safe from any thread; the wakeup
  /// is an eventfd write (one syscall, no locks held across it).
  void Post(std::function<void()> fn);

  /// Arms a periodic timerfd firing every `period_ms`; `fn` runs on the
  /// loop thread. Timers live until Stop.
  Status AddTimer(int64_t period_ms, std::function<void()> fn);

  bool OnLoopThread() const {
    return std::this_thread::get_id() == loop_thread_id_.load();
  }

  /// Loop iterations so far (observability; approximate).
  uint64_t wakeups() const { return wakeups_.load(std::memory_order_relaxed); }

 private:
  void Run();
  void DrainPosts();

  Fd epoll_;
  Fd wake_;  // eventfd
  std::vector<Fd> timers_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<std::thread::id> loop_thread_id_{};
  std::atomic<uint64_t> wakeups_{0};

  mutable Mutex mu_;
  std::map<int, std::shared_ptr<FdHandler>> handlers_ STREAMLINE_GUARDED_BY(mu_);
  std::vector<std::function<void()>> posts_ STREAMLINE_GUARDED_BY(mu_);

  // The one net thread. Dedicated IO threads are the design here -- socket
  // waits must live outside the morsel pool by construction.
  // lint:allow(raw-thread): the event loop owns its dedicated net thread; socket blocking must never enter the work-stealing pool
  std::thread thread_;
};

}  // namespace net
}  // namespace streamline

#endif  // STREAMLINE_NET_EVENT_LOOP_H_
