#include "net/frame.h"

#include <cstring>

#include "common/serde.h"

namespace streamline {
namespace net {

namespace {

void PutU32(char* dst, uint32_t v) {
  dst[0] = static_cast<char>(v & 0xFF);
  dst[1] = static_cast<char>((v >> 8) & 0xFF);
  dst[2] = static_cast<char>((v >> 16) & 0xFF);
  dst[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetU32(const char* src) {
  return static_cast<uint32_t>(static_cast<unsigned char>(src[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(src[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(src[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(src[3])) << 24;
}

}  // namespace

void AppendFrame(std::string* out, std::string_view payload) {
  char header[kFrameHeaderBytes];
  PutU32(header, static_cast<uint32_t>(payload.size()));
  PutU32(header + 4, Crc32(payload));
  out->append(header, kFrameHeaderBytes);
  out->append(payload.data(), payload.size());
}

std::string EncodeDataBatch(const Record* records, size_t n) {
  BinaryWriter w;
  w.WriteU8(kMsgData);
  w.WriteU64(n);
  for (size_t i = 0; i < n; ++i) w.WriteRecord(records[i]);
  std::string framed;
  framed.reserve(kFrameHeaderBytes + w.size());
  AppendFrame(&framed, w.buffer());
  return framed;
}

std::string EncodeSubscribe(const std::string& topic) {
  BinaryWriter w;
  w.WriteU8(kMsgSubscribe);
  w.WriteString(topic);
  std::string framed;
  AppendFrame(&framed, w.buffer());
  return framed;
}

std::string EncodeControl(uint8_t msg_type) {
  BinaryWriter w;
  w.WriteU8(msg_type);
  std::string framed;
  AppendFrame(&framed, w.buffer());
  return framed;
}

Status DecodeDataBatch(std::string_view payload, std::vector<Record>* out) {
  BinaryReader r(payload);
  auto type = r.ReadU8();
  if (!type.ok()) return type.status();
  if (*type != kMsgData) {
    return Status::InvalidArgument("expected data frame, got message type " +
                                   std::to_string(int{*type}));
  }
  auto count = r.ReadU64();
  if (!count.ok()) return count.status();
  // A record is at least 17 bytes on the wire (ts + key hash + field
  // count); a count that cannot fit in the payload is corruption, rejected
  // before any allocation sized from it.
  if (*count > payload.size() / 17 + 1) {
    return Status::InvalidArgument("data frame record count " +
                                   std::to_string(*count) +
                                   " exceeds payload capacity");
  }
  const size_t base = out->size();
  out->reserve(base + static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    auto rec = r.ReadRecord();
    if (!rec.ok()) {
      out->resize(base);  // fail closed: all-or-nothing per frame
      return rec.status();
    }
    out->push_back(std::move(*rec));
  }
  if (!r.AtEnd()) {
    out->resize(base);
    return Status::InvalidArgument("data frame has " +
                                   std::to_string(r.remaining()) +
                                   " trailing bytes");
  }
  return Status::Ok();
}

void FrameDecoder::Append(const char* data, size_t n) {
  if (!error_.ok()) return;  // poisoned: drop input, the conn is dead
  // Compact the consumed prefix before growing; keeps the buffer bounded
  // by one frame plus one read chunk.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

Result<bool> FrameDecoder::Next(std::string_view* payload) {
  if (!error_.ok()) return error_;
  if (buf_.size() - pos_ < kFrameHeaderBytes) return false;
  const uint32_t len = GetU32(buf_.data() + pos_);
  const uint32_t crc = GetU32(buf_.data() + pos_ + 4);
  if (len > max_frame_bytes_) {
    error_ = Status::InvalidArgument(
        "frame length " + std::to_string(len) + " exceeds limit " +
        std::to_string(max_frame_bytes_));
    return error_;
  }
  if (buf_.size() - pos_ - kFrameHeaderBytes < len) return false;
  const std::string_view body(buf_.data() + pos_ + kFrameHeaderBytes, len);
  if (Crc32(body) != crc) {
    error_ = Status::InvalidArgument("frame crc mismatch");
    return error_;
  }
  pos_ += kFrameHeaderBytes + len;
  *payload = body;
  return true;
}

}  // namespace net
}  // namespace streamline
