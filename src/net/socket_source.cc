#include "net/socket_source.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/retry_eintr.h"

namespace streamline {
namespace net {

namespace {

/// Read chunk per recv: big enough to amortize the syscall, small enough
/// to live on the loop thread's stack.
constexpr size_t kReadChunk = 64u << 10;

/// Backstop cadence for re-arming paused connections. The doorbell Post
/// from the consumer is the fast path; this timer only covers the race
/// where the post found the ring still full.
constexpr int64_t kResumeBackstopMs = 2;

}  // namespace

Result<std::unique_ptr<SocketIngest>> SocketIngest::Create(
    EventLoop* loop, IngestOptions options) {
  auto listener = TcpListen(options.listen_port);
  if (!listener.ok()) return listener.status();
  auto port = LocalPort(listener->get());
  if (!port.ok()) return port.status();
  std::unique_ptr<SocketIngest> ingest(new SocketIngest(
      loop, options, std::move(*listener), *port));
  SocketIngest* raw = ingest.get();
  STREAMLINE_RETURN_IF_ERROR(loop->Add(raw->listener_.get(), EPOLLIN,
                                       [raw](uint32_t) { raw->OnAccept(); }));
  STREAMLINE_RETURN_IF_ERROR(
      loop->AddTimer(kResumeBackstopMs, [raw] {
        if (raw->any_paused_.load(std::memory_order_acquire)) {
          raw->ResumePaused();
        }
      }));
  return ingest;
}

SocketIngest::SocketIngest(EventLoop* loop, IngestOptions options,
                           Fd listener, uint16_t port)
    : loop_(loop),
      options_(options),
      listener_(std::move(listener)),
      port_(port),
      ring_(options.ring_capacity),
      recycle_(options.ring_capacity) {}

SocketIngest::~SocketIngest() {
  // Contract: the EventLoop is stopped before the ingest is destroyed
  // (handlers capture `this`). Fds close themselves via RAII.
}

void SocketIngest::OnAccept() {
  for (;;) {
    auto accepted = AcceptNonBlocking(listener_.get());
    if (!accepted.ok()) return;  // listener error: stop accepting
    if (!accepted->valid()) return;  // queue drained
    SetNoDelay(accepted->get())
        .IgnoreError("nodelay is a latency hint, not required");
    const int fd = accepted->get();
    conns_.emplace(fd, std::make_unique<Conn>(std::move(*accepted),
                                              options_.max_frame_bytes));
    saw_conn_.store(true, std::memory_order_release);
    open_conns_.fetch_add(1, std::memory_order_acq_rel);
    stat_connections_.fetch_add(1, std::memory_order_relaxed);
    if (!loop_->Add(fd, EPOLLIN, [this, fd](uint32_t) { OnReadable(fd); })
             .ok()) {
      CloseConn(fd);
      continue;
    }
    // Edge-triggered: bytes may already be waiting; kick the drain once.
    OnReadable(fd);
  }
}

void SocketIngest::OnReadable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  if (conn->paused) return;  // resumed (and drained) later
  DrainConn(conn);
}

bool SocketIngest::FlushStaging(Conn* conn) {
  if (conn->staging.empty()) return true;
  const size_t n = conn->staging.size();
  if (!ring_.TryPush(std::move(conn->staging))) {
    // Downstream is full: park the batch, drop read interest. The kernel
    // receive buffer now fills and the peer's TCP window closes -- this
    // line is where engine backpressure becomes network backpressure.
    conn->paused = true;
    any_paused_.store(true, std::memory_order_release);
    stat_pauses_.fetch_add(1, std::memory_order_relaxed);
    if (conn->fd.valid()) {
      loop_->Mod(conn->fd.get(), 0)
          .IgnoreError("pausing an fd mid-close is benign");
    }
    return false;
  }
  stat_records_.fetch_add(n, std::memory_order_relaxed);
  // Replace the staging vector from the recycle ring so steady-state
  // ingest reuses the consumer's emptied batch capacity.
  std::vector<Record> spare;
  if (recycle_.TryPop(&spare)) {
    conn->staging = std::move(spare);
  } else {
    conn->staging = std::vector<Record>();
  }
  return true;
}

void SocketIngest::DrainConn(Conn* conn) {
  const int fd = conn->fd.get();
  for (;;) {
    if (!FlushStaging(conn)) return;  // paused
    // Decode every complete buffered frame, flushing between frames so a
    // ring-full pause loses nothing.
    for (;;) {
      std::string_view payload;
      auto next = conn->decoder.Next(&payload);
      if (!next.ok()) {
        CloseConn(fd);  // corrupt stream: fail closed, drop the producer
        return;
      }
      if (!*next) break;
      if (payload.empty() || payload[0] != kMsgData) {
        CloseConn(fd);  // ingest speaks data frames only
        return;
      }
      if (!DecodeDataBatch(payload, &conn->staging).ok()) {
        CloseConn(fd);
        return;
      }
      stat_frames_.fetch_add(1, std::memory_order_relaxed);
      if (!FlushStaging(conn)) return;
    }
    if (conn->peer_closed) {
      // Staging flushed and frames drained: the producer is done. A
      // torn trailing frame (mid-frame disconnect) is dropped, never
      // partially applied.
      CloseConn(fd);
      return;
    }
    char buf[kReadChunk];
    const ssize_t r =
        RetryEintr([&] { return ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT); });
    if (r > 0) {
      stat_bytes_.fetch_add(static_cast<uint64_t>(r),
                            std::memory_order_relaxed);
      conn->decoder.Append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) {
      conn->peer_closed = true;  // loop once more: flush, then close
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConn(fd);  // hard socket error
    return;
  }
}

void SocketIngest::ResumePaused() {
  if (ring_.Full()) return;  // still no room; backstop timer retries
  any_paused_.store(false, std::memory_order_release);
  // Collect first: DrainConn may CloseConn and invalidate iterators.
  std::vector<int> paused_fds;
  for (auto& [fd, conn] : conns_) {
    if (conn->paused) paused_fds.push_back(fd);
  }
  for (int fd : paused_fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();
    conn->paused = false;
    if (conn->fd.valid() && !conn->peer_closed) {
      if (!loop_->Mod(fd, EPOLLIN).ok()) {
        CloseConn(fd);
        continue;
      }
    }
    // Re-kick manually: the edge that announced these bytes is long gone.
    DrainConn(conn);
  }
}

void SocketIngest::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  loop_->Remove(fd);
  conns_.erase(it);  // RAII close
  open_conns_.fetch_sub(1, std::memory_order_acq_rel);
}

bool SocketIngest::PopBatch(std::vector<Record>* out) {
  if (!ring_.TryPop(out)) return false;
  // Doorbell: the pop just made room; re-arm any TCP-window-paused
  // connection. One Post per full->non-full transition, not per batch.
  if (any_paused_.load(std::memory_order_acquire) &&
      !resume_posted_.exchange(true, std::memory_order_acq_rel)) {
    loop_->Post([this] {
      resume_posted_.store(false, std::memory_order_release);
      ResumePaused();
    });
  }
  return true;
}

void SocketIngest::RecycleBatch(std::vector<Record>&& batch) {
  batch.clear();
  if (batch.capacity() == 0) return;
  // Best effort: a full recycle ring just means the net thread allocates
  // its next staging vector fresh.
  std::vector<Record> b = std::move(batch);
  (void)recycle_.TryPush(std::move(b));
}

bool SocketIngest::Finished() const {
  if (!options_.exhaust_on_disconnect) return false;
  return saw_conn_.load(std::memory_order_acquire) &&
         open_conns_.load(std::memory_order_acquire) == 0 && ring_.Empty();
}

SocketIngest::Stats SocketIngest::stats() const {
  Stats s;
  s.connections = stat_connections_.load(std::memory_order_relaxed);
  s.records = stat_records_.load(std::memory_order_relaxed);
  s.bytes = stat_bytes_.load(std::memory_order_relaxed);
  s.frames = stat_frames_.load(std::memory_order_relaxed);
  s.pauses = stat_pauses_.load(std::memory_order_relaxed);
  return s;
}

Result<SourcePoll> SocketSource::Poll(SourceContext* ctx) {
  if (ingest_->PopBatch(&scratch_)) {
    const size_t n = scratch_.size();
    for (const Record& r : scratch_) {
      max_ts_ = std::max(max_ts_, r.timestamp);
    }
    if (!ctx->EmitBatch(std::move(scratch_))) {
      return SourcePoll::kExhausted;  // cancelled
    }
    // EmitBatch drained scratch_ in place (capacity preserved); hand that
    // capacity back to the net thread.
    ingest_->RecycleBatch(std::move(scratch_));
    scratch_ = std::vector<Record>();
    emitted_ += n;
    if (watermark_every_ > 0 &&
        emitted_ - last_watermark_at_ >= watermark_every_) {
      ctx->EmitWatermark(max_ts_);
      last_watermark_at_ = emitted_;
    }
    return SourcePoll::kHasMore;
  }
  if (ingest_->Finished()) {
    if (max_ts_ != kMinTimestamp) ctx->EmitWatermark(max_ts_);
    return SourcePoll::kExhausted;
  }
  return SourcePoll::kIdle;
}

}  // namespace net
}  // namespace streamline
