#ifndef STREAMLINE_NET_SOCKET_H_
#define STREAMLINE_NET_SOCKET_H_

#include <cstdint>
#include <utility>

#include "common/status.h"

namespace streamline {
namespace net {

/// RAII file descriptor. Move-only; closes on destruction. The network
/// edge deals exclusively in non-blocking close-on-exec descriptors owned
/// through this wrapper, so an error path can never leak an fd.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset(other.fd_);
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Puts `fd` into non-blocking mode (O_NONBLOCK).
Status SetNonBlocking(int fd);

/// Disables Nagle (TCP_NODELAY) -- subscription deltas are latency-bound.
Status SetNoDelay(int fd);

/// Creates a non-blocking loopback listener on 127.0.0.1:`port` (0 picks an
/// ephemeral port; read it back with LocalPort). SO_REUSEADDR is set so
/// test/bench restarts do not trip over TIME_WAIT.
Result<Fd> TcpListen(uint16_t port, int backlog = 128);

/// The port a bound socket actually listens on.
Result<uint16_t> LocalPort(int fd);

/// Blocking connect to 127.0.0.1:`port`. The returned socket stays in
/// blocking mode (test/bench clients want simple sequential IO); callers
/// feeding an EventLoop must SetNonBlocking it first.
Result<Fd> TcpConnect(uint16_t port);

/// Accepts one pending connection from a non-blocking listener, already
/// non-blocking + close-on-exec (accept4). Returns an invalid Fd (not an
/// error) when the accept queue is empty.
Result<Fd> AcceptNonBlocking(int listener_fd);

/// Blocking send loop for test/bench clients: writes all `n` bytes,
/// retrying EINTR and short sends. Sanctioned blocking IO -- this lives in
/// src/net/ and is never reachable from a morsel.
Status SendAll(int fd, const void* data, size_t n);

/// Blocking recv for test/bench clients: returns bytes read (0 = orderly
/// peer shutdown), retrying EINTR.
Result<size_t> RecvSome(int fd, void* buf, size_t n);

}  // namespace net
}  // namespace streamline

#endif  // STREAMLINE_NET_SOCKET_H_
