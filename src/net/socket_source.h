#ifndef STREAMLINE_NET_SOCKET_SOURCE_H_
#define STREAMLINE_NET_SOCKET_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/record.h"
#include "common/spsc_ring.h"
#include "common/status.h"
#include "dataflow/source.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"

namespace streamline {
namespace net {

struct IngestOptions {
  /// TCP port to listen on (loopback). 0 picks an ephemeral port.
  uint16_t listen_port = 0;
  /// Batches buffered between the net thread and the source subtask. This
  /// ring *is* the backpressure boundary: when it fills, the net thread
  /// stops reading the socket and the kernel's TCP window closes.
  size_t ring_capacity = 64;
  /// Decoder's frame size limit (fail-closed bound on untrusted input).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// When true (the default, right for tests/bench), the ingest reports
  /// exhaustion once at least one producer connected and all producers
  /// have disconnected cleanly. False keeps the source unbounded: it idles
  /// waiting for the next producer until the job is cancelled.
  bool exhaust_on_disconnect = true;
};

/// The network half of socket ingestion: owns the listener, accepts
/// loopback producers, and decodes `[len][crc][payload]` data frames on
/// the event-loop thread into recycled record batches pushed over an SPSC
/// ring. The consumer side is exactly one SocketSource subtask.
///
/// Backpressure chain (the tentpole invariant): downstream ring full ->
/// the connection's pending batch is parked and its EPOLLIN interest
/// dropped -> the kernel receive buffer fills -> the peer's TCP window
/// closes -> the producer blocks in send(). The consumer reopens the
/// window by popping: a doorbell Post re-arms EPOLLIN, and a timerfd
/// backstop re-checks paused connections in case the post raced a refill.
class SocketIngest {
 public:
  struct Stats {
    uint64_t connections = 0;
    uint64_t records = 0;
    uint64_t bytes = 0;
    uint64_t frames = 0;
    uint64_t pauses = 0;  // ring-full events (TCP window closures)
  };

  /// Creates the listener and registers it with `loop` (which must not be
  /// started yet, or Create must run on the loop thread).
  static Result<std::unique_ptr<SocketIngest>> Create(EventLoop* loop,
                                                      IngestOptions options);
  ~SocketIngest();

  SocketIngest(const SocketIngest&) = delete;
  SocketIngest& operator=(const SocketIngest&) = delete;

  uint16_t port() const { return port_; }

  /// Consumer side (single consumer). Pops one decoded batch; false when
  /// none is ready. Popping signals the net thread to resume any paused
  /// connections.
  bool PopBatch(std::vector<Record>* out);

  /// Returns an emptied batch vector to the net thread for reuse, so
  /// steady-state ingest allocates nothing per batch.
  void RecycleBatch(std::vector<Record>&& batch);

  /// True once the bounded-ingest termination condition holds (see
  /// IngestOptions::exhaust_on_disconnect) and the ring is drained.
  bool Finished() const;

  Stats stats() const;

 private:
  struct Conn {
    Fd fd;
    FrameDecoder decoder;
    std::vector<Record> staging;  // decoded, not yet pushed
    bool paused = false;
    bool peer_closed = false;
    explicit Conn(Fd f, size_t max_frame)
        : fd(std::move(f)), decoder(max_frame) {}
  };

  SocketIngest(EventLoop* loop, IngestOptions options, Fd listener,
               uint16_t port);

  // All On*/Resume run on the loop thread.
  void OnAccept();
  void OnReadable(int fd);
  /// Drains decoder + socket for one connection until EAGAIN or pause.
  void DrainConn(Conn* conn);
  /// Pushes staged records; false (and pauses the conn) when the ring is
  /// full. Loop thread only.
  bool FlushStaging(Conn* conn);
  void ResumePaused();
  void CloseConn(int fd);

  EventLoop* loop_;
  const IngestOptions options_;
  Fd listener_;
  uint16_t port_ = 0;

  // Loop-thread-only state (no lock: single-threaded by construction).
  std::map<int, std::unique_ptr<Conn>> conns_;
  std::vector<std::vector<Record>> spare_batches_;

  // Net thread -> source subtask.
  SpscRing<std::vector<Record>> ring_;
  // Source subtask -> net thread (vector recycling).
  SpscRing<std::vector<Record>> recycle_;

  std::atomic<bool> any_paused_{false};
  std::atomic<bool> resume_posted_{false};
  std::atomic<uint64_t> open_conns_{0};
  std::atomic<bool> saw_conn_{false};
  std::atomic<uint64_t> stat_connections_{0};
  std::atomic<uint64_t> stat_records_{0};
  std::atomic<uint64_t> stat_bytes_{0};
  std::atomic<uint64_t> stat_frames_{0};
  std::atomic<uint64_t> stat_pauses_{0};
};

/// SourceFunction over a SocketIngest: Poll pops decoded batches and
/// EmitBatch-es them into the job, emitting a max-seen-timestamp watermark
/// every `watermark_every` records. Non-blocking by construction -- Poll
/// never touches a socket, only the SPSC ring -- so it is safe to drive
/// from a morsel.
class SocketSource : public SourceFunction {
 public:
  explicit SocketSource(std::shared_ptr<SocketIngest> ingest,
                        uint64_t watermark_every = 4096)
      : ingest_(std::move(ingest)), watermark_every_(watermark_every) {}

  Result<SourcePoll> Poll(SourceContext* ctx) override;
  std::string Name() const override { return "socket_source"; }

 private:
  std::shared_ptr<SocketIngest> ingest_;
  const uint64_t watermark_every_;
  uint64_t emitted_ = 0;
  uint64_t last_watermark_at_ = 0;
  Timestamp max_ts_ = kMinTimestamp;
  std::vector<Record> scratch_;
};

}  // namespace net
}  // namespace streamline

#endif  // STREAMLINE_NET_SOCKET_SOURCE_H_
