#include "net/subscription_server.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/retry_eintr.h"
#include "common/serde.h"

namespace streamline {
namespace net {

namespace {

/// iovec batch per writev: gathers up to this many queued frames into one
/// syscall.
constexpr int kMaxIov = 64;

constexpr size_t kSubscribeReadChunk = 4096;

}  // namespace

Result<std::unique_ptr<SubscriptionServer>> SubscriptionServer::Create(
    EventLoop* loop, Options options) {
  auto listener = TcpListen(options.listen_port);
  if (!listener.ok()) return listener.status();
  auto port = LocalPort(listener->get());
  if (!port.ok()) return port.status();
  std::unique_ptr<SubscriptionServer> server(new SubscriptionServer(
      loop, options, std::move(*listener), *port));
  SubscriptionServer* raw = server.get();
  STREAMLINE_RETURN_IF_ERROR(loop->Add(raw->listener_.get(), EPOLLIN,
                                       [raw](uint32_t) { raw->OnAccept(); }));
  return server;
}

SubscriptionServer::SubscriptionServer(EventLoop* loop, Options options,
                                       Fd listener, uint16_t port)
    : loop_(loop),
      options_(options),
      listener_(std::move(listener)),
      port_(port),
      snapshot_begin_frame_(std::make_shared<const std::string>(
          EncodeControl(kMsgSnapshotBegin))),
      snapshot_end_frame_(std::make_shared<const std::string>(
          EncodeControl(kMsgSnapshotEnd))) {}

SubscriptionServer::~SubscriptionServer() {
  // Contract: the EventLoop is stopped before the server is destroyed
  // (handlers capture `this`). Fds close themselves via RAII.
}

Status SubscriptionServer::RegisterTopic(const std::string& name,
                                         int key_field) {
  MutexLock lock(&mu_);
  auto [it, inserted] = topics_.emplace(name, Topic{});
  if (!inserted) {
    return Status::AlreadyExists("topic '" + name + "' already registered");
  }
  it->second.key_field = key_field;
  return Status::Ok();
}

std::string SubscriptionServer::KeyOf(const Record& r, int key_field) {
  if (key_field < 0 || static_cast<size_t>(key_field) >= r.num_fields()) {
    return std::string();
  }
  BinaryWriter w;
  w.WriteValue(r.field(static_cast<size_t>(key_field)));
  return w.Release();
}

void SubscriptionServer::Publish(const std::string& topic,
                                 const Record& record) {
  // Encode once outside the lock: the frame bytes are immutable and shared
  // by every subscriber queue and the retained state -- fan-out cost per
  // subscriber is a queue append, not an encode.
  auto frame =
      std::make_shared<const std::string>(EncodeDataBatch(&record, 1));
  bool want_flush = false;
  {
    MutexLock lock(&mu_);
    auto it = topics_.find(topic);
    if (it == topics_.end()) return;  // no such topic: drop on the floor
    Topic& t = it->second;
    const std::string key = KeyOf(record, t.key_field);
    if (t.key_field >= 0) t.retained[key] = frame;
    for (int fd : t.subscriber_fds) {
      auto cit = clients_.find(fd);
      if (cit == clients_.end()) continue;
      EnqueueLocked(cit->second.get(), frame, key);
      want_flush = true;
    }
  }
  if (want_flush &&
      !flush_posted_.exchange(true, std::memory_order_acq_rel)) {
    loop_->Post([this] {
      flush_posted_.store(false, std::memory_order_release);
      FlushAll();
    });
  }
}

void SubscriptionServer::EnqueueLocked(
    Client* c, std::shared_ptr<const std::string> frame,
    const std::string& key) {
  if (c->doomed) return;
  const size_t bytes = frame->size();
  // Slow-client policy, first resort: past the coalesce threshold, a keyed
  // update replaces the still-queued frame for the same key in place, so a
  // fixed key set bounds the queue no matter how far behind the client is.
  if (!key.empty() && c->queued_bytes >= options_.coalesce_threshold_bytes) {
    auto pit = c->pending_by_key.find(key);
    if (pit != c->pending_by_key.end()) {
      auto qit = pit->second;
      const bool front_in_flight =
          qit == c->queue.begin() && c->front_offset > 0;
      if (!front_in_flight) {
        c->queued_bytes -= qit->frame->size();
        c->queued_bytes += bytes;
        qit->frame = std::move(frame);
        ++stats_.coalesced_updates;
        stats_.max_queued_bytes =
            std::max<uint64_t>(stats_.max_queued_bytes, c->queued_bytes);
        return;
      }
    }
  }
  // Last resort: past the high-water mark the client is cut loose. One
  // stalled subscriber must never grow memory unboundedly or stall the
  // job, and by this point coalescing already failed to contain it.
  if (c->queued_bytes + bytes > options_.send_buffer_limit_bytes) {
    if (!c->doomed) {
      c->doomed = true;
      ++stats_.slow_disconnects;
    }
    return;
  }
  c->queue.push_back(Entry{std::move(frame), key});
  if (!key.empty()) {
    auto qit = std::prev(c->queue.end());
    c->pending_by_key[key] = qit;
  }
  c->queued_bytes += bytes;
  stats_.max_queued_bytes =
      std::max<uint64_t>(stats_.max_queued_bytes, c->queued_bytes);
}

void SubscriptionServer::OnAccept() {
  for (;;) {
    auto accepted = AcceptNonBlocking(listener_.get());
    if (!accepted.ok()) return;
    if (!accepted->valid()) return;
    SetNoDelay(accepted->get())
        .IgnoreError("nodelay is a latency hint, not required");
    const int fd = accepted->get();
    {
      MutexLock lock(&mu_);
      clients_.emplace(fd, std::make_unique<Client>(
                               std::move(*accepted), options_.max_frame_bytes));
      ++stats_.clients_connected;
      ++stats_.clients_now;
    }
    if (!loop_
             ->Add(fd, EPOLLIN,
                   [this, fd](uint32_t events) {
                     if ((events & EPOLLOUT) != 0) OnClientWritable(fd);
                     if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
                       OnClientReadable(fd);
                     }
                   })
             .ok()) {
      MutexLock lock(&mu_);
      CloseClientLocked(fd);
      continue;
    }
    OnClientReadable(fd);  // bytes may already be waiting (edge-triggered)
  }
}

void SubscriptionServer::OnClientReadable(int fd) {
  MutexLock lock(&mu_);
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  Client* c = it->second.get();
  for (;;) {
    char buf[kSubscribeReadChunk];
    const ssize_t r = RetryEintr(
        [&] { return ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT); });
    if (r > 0) {
      c->decoder.Append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Orderly shutdown or hard error: either way the client is gone.
    CloseClientLocked(fd);
    return;
  }
  for (;;) {
    std::string_view payload;
    auto next = c->decoder.Next(&payload);
    if (!next.ok()) {
      CloseClientLocked(fd);  // corrupt inbound stream: fail closed
      return;
    }
    if (!*next) break;
    if (payload.empty() || payload[0] != kMsgSubscribe || !c->topic.empty()) {
      CloseClientLocked(fd);  // protocol violation
      return;
    }
    BinaryReader r(payload.substr(1));
    auto topic = r.ReadString();
    if (!topic.ok() || !r.AtEnd()) {
      CloseClientLocked(fd);
      return;
    }
    auto tit = topics_.find(*topic);
    if (tit == topics_.end()) {
      CloseClientLocked(fd);  // unknown topic
      return;
    }
    // Attach: snapshot-then-deltas, atomically ordered against Publish
    // (same mutex). Everything the topic retains goes out first, bracketed
    // by control frames; every Publish after this enqueue is a delta.
    c->topic = *topic;
    Topic& t = tit->second;
    t.subscriber_fds.push_back(fd);
    if (t.key_field >= 0) {
      EnqueueLocked(c, snapshot_begin_frame_, std::string());
      for (const auto& [key, frame] : t.retained) {
        EnqueueLocked(c, frame, key);
      }
      EnqueueLocked(c, snapshot_end_frame_, std::string());
      ++stats_.snapshots_served;
    }
    if (!FlushClientLocked(fd, c)) return;
  }
}

void SubscriptionServer::OnClientWritable(int fd) {
  MutexLock lock(&mu_);
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  (void)FlushClientLocked(fd, it->second.get());
}

bool SubscriptionServer::FlushClientLocked(int fd, Client* c) {
  if (options_.fault_injector != nullptr) {
    const Status drop = options_.fault_injector->OnHit("net:conn_drop");
    if (!drop.ok()) {
      ++stats_.dropped_connections;
      CloseClientLocked(fd);
      return false;
    }
  }
  if (c->doomed) {
    CloseClientLocked(fd);
    return false;
  }
  while (!c->queue.empty()) {
    iovec iov[kMaxIov];
    int cnt = 0;
    size_t offset = c->front_offset;
    for (auto qit = c->queue.begin();
         qit != c->queue.end() && cnt < kMaxIov; ++qit) {
      const std::string& bytes = *qit->frame;
      iov[cnt].iov_base = const_cast<char*>(bytes.data() + offset);
      iov[cnt].iov_len = bytes.size() - offset;
      offset = 0;
      ++cnt;
    }
    ssize_t w = RetryEintr([&] { return ::writev(fd, iov, cnt); });
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c->epollout_armed) {
          c->epollout_armed = true;
          loop_->Mod(fd, EPOLLIN | EPOLLOUT)
              .IgnoreError("EPOLLOUT arming races close; flush retries");
        }
        return true;
      }
      CloseClientLocked(fd);
      return false;
    }
    stats_.bytes_sent += static_cast<uint64_t>(w);
    while (w > 0) {
      Entry& front = c->queue.front();
      const size_t remaining = front.frame->size() - c->front_offset;
      if (static_cast<size_t>(w) >= remaining) {
        w -= static_cast<ssize_t>(remaining);
        c->queued_bytes -= front.frame->size();
        c->front_offset = 0;
        ++stats_.frames_sent;
        if (!front.key.empty()) {
          auto pit = c->pending_by_key.find(front.key);
          if (pit != c->pending_by_key.end() &&
              pit->second == c->queue.begin()) {
            c->pending_by_key.erase(pit);
          }
        }
        c->queue.pop_front();
      } else {
        c->front_offset += static_cast<size_t>(w);
        w = 0;
      }
    }
  }
  if (c->epollout_armed) {
    c->epollout_armed = false;
    loop_->Mod(fd, EPOLLIN)
        .IgnoreError("EPOLLOUT disarming races close; flush retries");
  }
  return true;
}

void SubscriptionServer::FlushAll() {
  MutexLock lock(&mu_);
  std::vector<int> fds;
  fds.reserve(clients_.size());
  for (auto& [fd, c] : clients_) {
    if (!c->queue.empty() || c->doomed) fds.push_back(fd);
  }
  for (int fd : fds) {
    auto it = clients_.find(fd);
    if (it == clients_.end()) continue;
    (void)FlushClientLocked(fd, it->second.get());
  }
}

void SubscriptionServer::CloseClientLocked(int fd) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  Client* c = it->second.get();
  if (!c->topic.empty()) {
    auto tit = topics_.find(c->topic);
    if (tit != topics_.end()) {
      auto& subs = tit->second.subscriber_fds;
      subs.erase(std::remove(subs.begin(), subs.end(), fd), subs.end());
    }
  }
  loop_->Remove(fd);
  clients_.erase(it);  // RAII close
  --stats_.clients_now;
}

size_t SubscriptionServer::TotalQueuedBytes() const {
  MutexLock lock(&mu_);
  size_t total = 0;
  for (const auto& [fd, c] : clients_) total += c->queued_bytes;
  return total;
}

SubscriptionServer::Stats SubscriptionServer::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace net
}  // namespace streamline
