#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/retry_eintr.h"

namespace streamline {
namespace net {

namespace {

Status SockError(const char* op, int err) {
  return Status::Internal(std::string(op) + " failed: " + ErrnoString(err));
}

}  // namespace

void Fd::reset(int fd) {
  if (fd_ >= 0) {
    // No EINTR retry on close: POSIX leaves the fd state unspecified after
    // an interrupted close, and Linux always releases it.
    ::close(fd_);
  }
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  const int flags = RetryEintr([&] { return ::fcntl(fd, F_GETFL, 0); });
  if (flags < 0) return SockError("fcntl(F_GETFL)", errno);
  if (RetryEintr([&] { return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK); }) <
      0) {
    return SockError("fcntl(F_SETFL)", errno);
  }
  return Status::Ok();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return SockError("setsockopt(TCP_NODELAY)", errno);
  }
  return Status::Ok();
}

Result<Fd> TcpListen(uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return SockError("socket", errno);
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return SockError("setsockopt(SO_REUSEADDR)", errno);
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return SockError("bind", errno);
  }
  if (::listen(fd.get(), backlog) != 0) return SockError("listen", errno);
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return SockError("getsockname", errno);
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Fd> TcpConnect(uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return SockError("socket", errno);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int rc = RetryEintr([&] {
    return ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
  });
  if (rc != 0) return SockError("connect", errno);
  SetNoDelay(fd.get()).IgnoreError("nodelay is a latency hint, not required");
  return fd;
}

Result<Fd> AcceptNonBlocking(int listener_fd) {
  const int fd = RetryEintr([&] {
    return ::accept4(listener_fd, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
  });
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    return SockError("accept4", errno);
  }
  return Fd(fd);
}

Status SendAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  const size_t wrote = WriteAllFd(fd, p, n);
  if (wrote != n) return SockError("send", errno);
  return Status::Ok();
}

Result<size_t> RecvSome(int fd, void* buf, size_t n) {
  const ssize_t r = RetryEintr([&] { return ::recv(fd, buf, n, 0); });
  if (r < 0) return SockError("recv", errno);
  return static_cast<size_t>(r);
}

}  // namespace net
}  // namespace streamline
