#ifndef STREAMLINE_NET_FRAME_H_
#define STREAMLINE_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/record.h"
#include "common/status.h"

namespace streamline {
namespace net {

/// Wire format: a stream of length-prefixed frames, each
///
///   [u32 len][u32 crc32][payload: len bytes]
///
/// (little-endian, same frame shape as the WAL on disk). The payload's
/// first byte is a message type; the rest is BinaryWriter-encoded via the
/// engine's serde layer, so a record crosses the wire in exactly its
/// checkpoint encoding.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Payload message types.
inline constexpr uint8_t kMsgData = 1;           // [u64 count][count records]
inline constexpr uint8_t kMsgSubscribe = 2;      // [string topic]
inline constexpr uint8_t kMsgSnapshotBegin = 3;  // empty body
inline constexpr uint8_t kMsgSnapshotEnd = 4;    // empty body

/// Frames larger than this are rejected by the decoder: an oversized
/// length prefix is either corruption or an attack, and buffering it would
/// be an unbounded allocation driven by untrusted bytes.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// Appends one `[len][crc][payload]` frame to `out`.
void AppendFrame(std::string* out, std::string_view payload);

/// Encodes `n` records as one framed kMsgData message.
std::string EncodeDataBatch(const Record* records, size_t n);

/// Encodes a framed kMsgSubscribe message.
std::string EncodeSubscribe(const std::string& topic);

/// Encodes a framed empty-bodied control message (kMsgSnapshotBegin/End).
std::string EncodeControl(uint8_t msg_type);

/// Decodes a kMsgData payload (including its leading type byte), appending
/// the records to `*out` (which keeps its existing elements and capacity,
/// so ingest can recycle batch vectors). Fails closed: any truncation or
/// type mismatch returns an error without touching bytes past the payload.
Status DecodeDataBatch(std::string_view payload, std::vector<Record>* out);

/// Incremental frame decoder over an untrusted byte stream. Feed raw bytes
/// with Append; pull complete payloads with Next. The decoder fails closed:
/// a CRC mismatch or oversized length poisons it (every later Next returns
/// the same error -- resynchronizing inside a corrupt TCP stream is not
/// possible), and it never reads past the bytes it was handed.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Feeds `n` raw bytes from the stream.
  void Append(const char* data, size_t n);

  /// On success: true and `*payload` views the next complete frame's
  /// payload (valid until the next Append/Next call); false when more
  /// bytes are needed. Error on corruption (CRC mismatch, oversized len).
  Result<bool> Next(std::string_view* payload);

  /// Bytes buffered but not yet returned (bounded by max_frame_bytes +
  /// one read chunk -- the flow-control number a server cares about).
  size_t buffered_bytes() const { return buf_.size() - pos_; }

  bool poisoned() const { return !error_.ok(); }

 private:
  const size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  Status error_;
};

}  // namespace net
}  // namespace streamline

#endif  // STREAMLINE_NET_FRAME_H_
