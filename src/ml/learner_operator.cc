#include "ml/learner_operator.h"

#include "common/logging.h"

namespace streamline {

OnlineClassifierOperator::OnlineClassifierOperator(std::string name,
                                                   Spec spec)
    : name_(std::move(name)), spec_(std::move(spec)),
      model_(spec_.dim, spec_.model) {
  STREAMLINE_CHECK(spec_.features != nullptr);
  STREAMLINE_CHECK(spec_.label != nullptr);
  STREAMLINE_CHECK_GT(spec_.emit_every, 0u);
}

void OnlineClassifierOperator::ProcessRecord(int, Record&& record,
                                             Collector* out) {
  const std::vector<double> x = spec_.features(record);
  const bool y = spec_.label(record);
  const double p = model_.Predict(x);
  const double loss = model_.Update(x, y);
  loss_acc_ = loss_acc_ * spec_.loss_decay + loss;
  loss_norm_ = loss_norm_ * spec_.loss_decay + 1.0;
  ++seen_;
  if (seen_ % spec_.emit_every == 0) {
    Record eval;
    eval.timestamp = record.timestamp;
    eval.fields = {Value(p), Value(y), Value(decayed_loss())};
    out->Emit(std::move(eval));
  }
}

Status OnlineClassifierOperator::SnapshotState(BinaryWriter* w) const {
  model_.Snapshot(w);
  w->WriteDouble(loss_acc_);
  w->WriteDouble(loss_norm_);
  w->WriteU64(seen_);
  return Status::Ok();
}

Status OnlineClassifierOperator::RestoreState(BinaryReader* r) {
  STREAMLINE_RETURN_IF_ERROR(model_.Restore(r));
  auto acc = r->ReadDouble();
  if (!acc.ok()) return acc.status();
  auto norm = r->ReadDouble();
  if (!norm.ok()) return norm.status();
  auto seen = r->ReadU64();
  if (!seen.ok()) return seen.status();
  loss_acc_ = *acc;
  loss_norm_ = *norm;
  seen_ = *seen;
  return Status::Ok();
}

}  // namespace streamline
