#include "ml/online_model.h"

#include <cmath>

#include "common/logging.h"

namespace streamline {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double Dot(const std::vector<double>& w, const std::vector<double>& x) {
  STREAMLINE_CHECK_EQ(w.size(), x.size());
  double acc = 0;
  for (size_t i = 0; i < w.size(); ++i) acc += w[i] * x[i];
  return acc;
}

void SnapshotVector(const std::vector<double>& v, double bias,
                    uint64_t updates, BinaryWriter* w) {
  w->WriteU64(v.size());
  for (double x : v) w->WriteDouble(x);
  w->WriteDouble(bias);
  w->WriteU64(updates);
}

Status RestoreVector(std::vector<double>* v, double* bias, uint64_t* updates,
                     BinaryReader* r) {
  auto n = r->ReadU64();
  if (!n.ok()) return n.status();
  if (*n != v->size()) {
    return Status::FailedPrecondition(
        "model dimension mismatch: snapshot has " + std::to_string(*n) +
        ", model has " + std::to_string(v->size()));
  }
  std::vector<double> weights(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto x = r->ReadDouble();
    if (!x.ok()) return x.status();
    weights[i] = *x;
  }
  auto b = r->ReadDouble();
  if (!b.ok()) return b.status();
  auto u = r->ReadU64();
  if (!u.ok()) return u.status();
  *v = std::move(weights);
  *bias = *b;
  *updates = *u;
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// OnlineLogisticRegression

OnlineLogisticRegression::OnlineLogisticRegression(size_t dim,
                                                   OnlineModelOptions options)
    : options_(options), weights_(dim, 0.0) {
  STREAMLINE_CHECK_GT(dim, 0u);
}

double OnlineLogisticRegression::Predict(
    const std::vector<double>& features) const {
  return Sigmoid(Dot(weights_, features) + bias_);
}

double OnlineLogisticRegression::Update(const std::vector<double>& features,
                                        bool label) {
  const double p = Predict(features);
  const double y = label ? 1.0 : 0.0;
  // Log loss of this example under the pre-update model, clamped away
  // from 0/1 for numerical sanity.
  const double pc = std::min(std::max(p, 1e-12), 1.0 - 1e-12);
  const double loss = -(y * std::log(pc) + (1.0 - y) * std::log(1.0 - pc));
  const double g = p - y;  // dLoss/dz
  const double lr = options_.learning_rate;
  for (size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] -= lr * (g * features[i] + options_.l2 * weights_[i]);
  }
  bias_ -= lr * g;
  ++updates_;
  return loss;
}

void OnlineLogisticRegression::Snapshot(BinaryWriter* w) const {
  SnapshotVector(weights_, bias_, updates_, w);
}

Status OnlineLogisticRegression::Restore(BinaryReader* r) {
  return RestoreVector(&weights_, &bias_, &updates_, r);
}

// ---------------------------------------------------------------------------
// OnlineLinearRegression

OnlineLinearRegression::OnlineLinearRegression(size_t dim,
                                               OnlineModelOptions options)
    : options_(options), weights_(dim, 0.0) {
  STREAMLINE_CHECK_GT(dim, 0u);
}

double OnlineLinearRegression::Predict(
    const std::vector<double>& features) const {
  return Dot(weights_, features) + bias_;
}

double OnlineLinearRegression::Update(const std::vector<double>& features,
                                      double target) {
  const double p = Predict(features);
  const double err = p - target;
  const double lr = options_.learning_rate;
  for (size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] -= lr * (err * features[i] + options_.l2 * weights_[i]);
  }
  bias_ -= lr * err;
  ++updates_;
  return err * err;
}

void OnlineLinearRegression::Snapshot(BinaryWriter* w) const {
  SnapshotVector(weights_, bias_, updates_, w);
}

Status OnlineLinearRegression::Restore(BinaryReader* r) {
  return RestoreVector(&weights_, &bias_, &updates_, r);
}

}  // namespace streamline
