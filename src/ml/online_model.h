#ifndef STREAMLINE_ML_ONLINE_MODEL_H_
#define STREAMLINE_ML_ONLINE_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/serde.h"
#include "common/status.h"

namespace streamline {

/// Hyper-parameters shared by the online models.
struct OnlineModelOptions {
  double learning_rate = 0.05;
  double l2 = 0.0;  // ridge penalty per update
};

/// Online logistic regression trained by plain SGD — the streaming
/// classifier behind STREAMLINE's proactive applications (churn
/// prediction, click-through prediction). One Update() per arriving
/// example; state is just the weight vector, so it checkpoints in O(dim).
class OnlineLogisticRegression {
 public:
  OnlineLogisticRegression(size_t dim,
                           OnlineModelOptions options = OnlineModelOptions());

  size_t dim() const { return weights_.size(); }
  uint64_t updates() const { return updates_; }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// P(label = 1 | features); features.size() must equal dim().
  double Predict(const std::vector<double>& features) const;

  /// One SGD step on (features, label). Returns the example's log loss
  /// *before* the update (prequential / test-then-train evaluation).
  double Update(const std::vector<double>& features, bool label);

  void Snapshot(BinaryWriter* w) const;
  Status Restore(BinaryReader* r);

 private:
  OnlineModelOptions options_;
  std::vector<double> weights_;
  double bias_ = 0;
  uint64_t updates_ = 0;
};

/// Online least-squares regression via SGD; Update returns the squared
/// error before the step.
class OnlineLinearRegression {
 public:
  OnlineLinearRegression(size_t dim,
                         OnlineModelOptions options = OnlineModelOptions());

  size_t dim() const { return weights_.size(); }
  uint64_t updates() const { return updates_; }
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  double Predict(const std::vector<double>& features) const;
  double Update(const std::vector<double>& features, double target);

  void Snapshot(BinaryWriter* w) const;
  Status Restore(BinaryReader* r);

 private:
  OnlineModelOptions options_;
  std::vector<double> weights_;
  double bias_ = 0;
  uint64_t updates_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_ML_ONLINE_MODEL_H_
