#ifndef STREAMLINE_ML_LEARNER_OPERATOR_H_
#define STREAMLINE_ML_LEARNER_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/operator.h"
#include "ml/online_model.h"

namespace streamline {

/// Prequential (test-then-train) online classification operator: for every
/// arriving labeled example it first predicts, then updates the model —
/// the standard streaming-ML evaluation protocol. Model weights are part
/// of the operator's checkpointed state, so training survives
/// failure/restore exactly once.
///
/// Input records supply a label field and a feature extractor; output
/// records are [prediction(double), label(bool), running_avg_logloss] with
/// the input's timestamp, emitted every `emit_every` examples.
class OnlineClassifierOperator : public Operator {
 public:
  struct Spec {
    /// Extracts the feature vector (must have fixed dimension `dim`).
    std::function<std::vector<double>(const Record&)> features;
    /// Extracts the boolean label.
    std::function<bool(const Record&)> label;
    size_t dim = 0;
    OnlineModelOptions model;
    /// Emit one evaluation record per this many examples.
    uint64_t emit_every = 1;
    /// Average the reported log loss over a sliding horizon of this many
    /// most recent examples (simple exponential decay).
    double loss_decay = 0.999;
  };

  OnlineClassifierOperator(std::string name, Spec spec);

  void ProcessRecord(int input, Record&& record, Collector* out) override;
  Status SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  std::string Name() const override { return name_; }

  const OnlineLogisticRegression& model() const { return model_; }
  double decayed_loss() const {
    return loss_norm_ == 0 ? 0 : loss_acc_ / loss_norm_;
  }

 private:
  std::string name_;
  Spec spec_;
  OnlineLogisticRegression model_;
  double loss_acc_ = 0;
  double loss_norm_ = 0;
  uint64_t seen_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_ML_LEARNER_OPERATOR_H_
