#ifndef STREAMLINE_DATAFLOW_QUERY_REGISTRY_H_
#define STREAMLINE_DATAFLOW_QUERY_REGISTRY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/record.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/time.h"
#include "dataflow/sink.h"

namespace streamline {

/// Dynamic (registry-attached) queries are tagged in the operator's output
/// with ids starting here, so they can never collide with the indices of the
/// spec-defined window list (output field 3 carries the id either way).
inline constexpr uint64_t kFirstDynamicQueryId = uint64_t{1} << 20;

/// Periodic window shape of a standing query: [origin + k*slide,
/// origin + k*slide + range). Tumbling is the slide == range special case.
struct QueryDescriptor {
  Duration range = 0;
  Duration slide = 0;
  Timestamp origin = 0;
};

/// Where an attached query's state lives inside the window operator.
enum class QueryPlacement : uint8_t {
  /// A new slot in the shared slicing aggregator: the query rides the
  /// shared slice store (Cutty sharing) and, when its begin grid factors
  /// through an already-registered query's cut grid, adds zero new cuts.
  kShared = 0,
  /// Dedicated per-key open-window partials (eager). Chosen when the cost
  /// model predicts the query would fragment the shared store (pathological
  /// slide) more than it saves.
  kStandalone = 1,
};

/// One entry of the registry's command log. Window operators consume the
/// log in sequence order at watermark boundaries; the log is the single
/// source of truth for which dynamic queries exist, so every subtask (and
/// every restore/replay of a checkpoint) derives the same query table.
struct QueryCommand {
  enum class Kind : uint8_t { kAttach = 0, kDetach = 1 };
  uint64_t seq = 0;
  Kind kind = Kind::kAttach;
  uint64_t query_id = 0;
  QueryDescriptor desc;              // attach only
  QueryPlacement placement = QueryPlacement::kShared;
};

/// Multi-tenant standing-query registry: the control plane that turns a
/// running windowed job into a serving surface where sliding/tumbling
/// aggregate queries attach and detach without a restart.
///
/// Data path: `WindowAggSpec::registry` points the WindowAgg operator at a
/// registry; each subtask drains the command log at watermark boundaries
/// (so command application sits at a deterministic point of the event-time
/// order) and acks the sequence number it reached. Attach splices a new
/// query into the existing shared slice state -- backfilling from live
/// slices where the begin grids line up -- and detach unregisters the query
/// and garbage-collects the slices only it pinned.
///
/// Placement is cost-based, decided once per attach (see ChoosePlacement):
/// sharing the slicer costs one partial update per record *total* plus
/// O(log slices) per cut and per fire, while a standalone query costs
/// ceil(range/slide) updates per record but adds no cuts. Queries whose
/// window factors through an existing query's cut grid (slide a multiple,
/// origins congruent) share with zero new cuts and are counted as rewrites.
///
/// Thread safety: all public methods are safe to call concurrently from
/// user threads and worker (task) threads.
class QueryRegistry {
 public:
  struct Options {
    /// Cost-model estimate of per-key record arrival rate, in records per
    /// timestamp unit. Biases the share-vs-standalone break-even point.
    double est_records_per_time = 1.0;
    /// Cost-model estimate of the shared store's resident slice count.
    double est_store_slices = 64.0;
  };

  /// Receives the tagged result records of one query (demuxed by id).
  using ResultHandler = std::function<void(const Record&)>;

  QueryRegistry() : options_(Options{}) {}
  explicit QueryRegistry(Options options) : options_(options) {}

  /// Attaches a sliding-window aggregate query to every operator consuming
  /// this registry. Returns the query id tagged into its result records
  /// (field 3). The attach is asynchronous: it is live once every worker
  /// drained the command (WaitQueryApplied). `handler`, if given, receives
  /// this query's results from a QueryDemuxSink.
  uint64_t AttachSliding(Duration range, Duration slide, Timestamp origin = 0,
                         ResultHandler handler = nullptr);
  uint64_t AttachTumbling(Duration size, Timestamp origin = 0,
                          ResultHandler handler = nullptr) {
    return AttachSliding(size, size, origin, std::move(handler));
  }

  /// Detaches a previously attached query. Slices only it pinned are
  /// garbage-collected when workers apply the command.
  [[nodiscard]] Status Detach(uint64_t query_id);

  /// Blocks until every registered worker has applied the attach (or
  /// detach) command of `query_id`, i.e. the query is live (or fully
  /// drained) on all subtasks. Returns false on timeout.
  bool WaitQueryApplied(uint64_t query_id, std::chrono::milliseconds timeout);

  QueryPlacement PlacementOf(uint64_t query_id) const;

  struct Stats {
    uint64_t active_queries = 0;
    uint64_t attaches = 0;
    uint64_t detaches = 0;
    uint64_t rewrites_shared = 0;
    uint64_t slices_gc = 0;
  };
  Stats stats() const;

  /// Results routed for `query_id` so far (via Route / QueryDemuxSink).
  uint64_t ResultCount(uint64_t query_id) const;

  // -- worker-side interface (window operator subtasks) --------------------

  /// Idempotently registers a consuming subtask (id: "<operator>:<index>");
  /// WaitQueryApplied waits on all registered subtasks. Called from
  /// WindowAggOperator::Open.
  void RegisterWorker(const std::string& worker);

  /// Binds the job's metrics registry for the registry.* counters/gauges.
  /// Rebinding to a *different* registry (a restarted job owns a fresh one)
  /// replays the accumulated counts into it; rebinding the same one is a
  /// no-op. Pair with UnbindMetrics on job teardown -- a query registry
  /// outlives the jobs it serves, and must not write into a dead registry.
  void BindMetrics(MetricsRegistry* metrics);

  /// Drops the cached counter/gauge pointers if `metrics` is the currently
  /// bound registry (no-op otherwise). Called from the window operator's
  /// destructor; never dereferences `metrics`, so it is safe during job
  /// teardown in any destruction order.
  void UnbindMetrics(MetricsRegistry* metrics);

  /// Highest command sequence number issued; cheap poll for "anything new
  /// since the seq I applied?" on the per-watermark fast path.
  uint64_t latest_seq() const {
    return latest_seq_.load(std::memory_order_acquire);
  }

  /// Commands with seq > `after_seq`, in sequence order.
  std::vector<QueryCommand> CommandsAfter(uint64_t after_seq) const;

  /// Worker `worker` has applied the log prefix up to `seq` and now holds
  /// `shared_slices` slices across its shared stores; `slices_freed` were
  /// garbage-collected by detaches since its previous ack. Overwrites (not
  /// maxes) the worker's ack so a checkpoint-restore rollback is honestly
  /// reflected until the worker re-applies the tail.
  void AckApplied(const std::string& worker, uint64_t seq,
                  uint64_t shared_slices, uint64_t slices_freed);

  // -- result routing ------------------------------------------------------

  /// Demultiplexes one tagged result record (field 3 = query id) to the
  /// attached handler of that query, counting it either way. Records of
  /// spec-defined queries (id < kFirstDynamicQueryId) go to the default
  /// handler when one is set.
  void Route(const Record& record);

  void SetDefaultHandler(ResultHandler handler);

 private:
  struct Entry {
    QueryDescriptor desc;
    QueryPlacement placement = QueryPlacement::kShared;
    uint64_t attach_seq = 0;
    uint64_t detach_seq = 0;  // 0 while active
    ResultHandler handler;
    uint64_t results = 0;
  };

  QueryPlacement ChoosePlacementLocked(const QueryDescriptor& d) const
      STREAMLINE_REQUIRES(mu_);
  bool FactorsThroughActiveLocked(const QueryDescriptor& d) const
      STREAMLINE_REQUIRES(mu_);
  void UpdateGaugesLocked() STREAMLINE_REQUIRES(mu_);

  const Options options_;
  std::atomic<uint64_t> latest_seq_{0};

  mutable Mutex mu_;
  std::vector<QueryCommand> log_ STREAMLINE_GUARDED_BY(mu_);
  std::map<uint64_t, Entry> entries_ STREAMLINE_GUARDED_BY(mu_);
  uint64_t next_id_ STREAMLINE_GUARDED_BY(mu_) = kFirstDynamicQueryId;
  std::map<std::string, uint64_t> worker_acks_ STREAMLINE_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> worker_slices_ STREAMLINE_GUARDED_BY(mu_);
  CondVar ack_cv_;
  ResultHandler default_handler_ STREAMLINE_GUARDED_BY(mu_);

  Stats stats_ STREAMLINE_GUARDED_BY(mu_);
  MetricsRegistry* metrics_ STREAMLINE_GUARDED_BY(mu_) = nullptr;
  Counter* attaches_counter_ STREAMLINE_GUARDED_BY(mu_) = nullptr;
  Counter* detaches_counter_ STREAMLINE_GUARDED_BY(mu_) = nullptr;
  Counter* rewrites_counter_ STREAMLINE_GUARDED_BY(mu_) = nullptr;
  Counter* slices_gc_counter_ STREAMLINE_GUARDED_BY(mu_) = nullptr;
  Gauge* queries_gauge_ STREAMLINE_GUARDED_BY(mu_) = nullptr;
  Gauge* slices_shared_gauge_ STREAMLINE_GUARDED_BY(mu_) = nullptr;
};

/// Sink that demultiplexes WindowAgg result records to per-query handlers
/// attached through the registry. Thread-safe (the registry serializes).
class QueryDemuxSink : public SinkFunction {
 public:
  explicit QueryDemuxSink(std::shared_ptr<QueryRegistry> registry)
      : registry_(std::move(registry)) {}

  Status Invoke(const Record& record) override {
    registry_->Route(record);
    return Status::Ok();
  }
  std::string Name() const override { return "query-demux"; }

 private:
  std::shared_ptr<QueryRegistry> registry_;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_QUERY_REGISTRY_H_
