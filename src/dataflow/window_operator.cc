#include "dataflow/window_operator.h"

#include <algorithm>

#include "common/logging.h"

namespace streamline {
namespace {

void SerializeDynPartial(const DynPartial& p, BinaryWriter* w) {
  DynAggregate::SerializePartial(p, w);
}

Result<DynPartial> DeserializeDynPartial(BinaryReader* r) {
  return DynAggregate::DeserializePartial(r);
}

Timestamp FloorToGrid(Timestamp ts, Timestamp origin, Duration step) {
  const Timestamp d = ts - origin;
  const Timestamp q = d >= 0 ? d / step : (d - step + 1) / step;
  return origin + q * step;
}

}  // namespace

WindowAggOperator::WindowAggOperator(std::string name, WindowAggSpec spec)
    : name_(std::move(name)),
      spec_(std::move(spec)),
      adapter_(spec_.agg_kind) {
  STREAMLINE_CHECK(!spec_.windows.empty())
      << "WindowAggSpec needs at least one window definition";
}

WindowAggOperator::~WindowAggOperator() {
  if (spec_.registry != nullptr && bound_metrics_ != nullptr) {
    spec_.registry->UnbindMetrics(bound_metrics_);
  }
}

Status WindowAggOperator::Open(const OperatorContext& ctx) {
  subtask_index_ = ctx.subtask_index;
  if (ctx.metrics != nullptr) {
    const std::string prefix = "op." + name_ + "." +
                               std::to_string(ctx.subtask_index) + ".state.";
    load_gauge_ = ctx.metrics->GetGauge(prefix + "load_factor");
    probe_gauge_ = ctx.metrics->GetGauge(prefix + "max_probe");
    keys_gauge_ = ctx.metrics->GetGauge(prefix + "keys");
  }
  if (spec_.registry != nullptr) {
    if (spec_.backend != WindowBackend::kShared) {
      return Status::InvalidArgument(
          "standing-query registry requires the shared window backend");
    }
    spec_.registry->RegisterWorker(name_ + ":" +
                                   std::to_string(ctx.subtask_index));
    bound_metrics_ = ctx.metrics;
    spec_.registry->BindMetrics(ctx.metrics);
  }
  if (spec_.backend == WindowBackend::kEager) {
    // Eager per-window state supports periodic windows only (matching the
    // systems it models); verify the prototypes up front.
    for (const auto& proto : spec_.windows) {
      if (dynamic_cast<const SlidingWindowFn*>(proto.get()) == nullptr) {
        return Status::InvalidArgument(
            "eager window backend supports periodic windows only, got " +
            proto->Name());
      }
    }
  }
  return Status::Ok();
}

WindowAggOperator::KeyState* WindowAggOperator::GetOrCreateKey(
    const Value& key, uint64_t hash) {
  auto [entry, inserted] = keys_.TryEmplace(hash, key);
  KeyState* ks = &entry->second;
  if (!inserted) return ks;
  if (spec_.backend == WindowBackend::kShared) {
    ks->shared = std::make_unique<SharedAgg>(adapter_);
    for (size_t q = 0; q < spec_.windows.size(); ++q) {
      // The callback captures the key by value; `current_out_` points at
      // the collector of the call currently on the stack.
      Value key_copy = key;
      ks->shared->AddQuery(
          spec_.windows[q]->Clone(),
          [this, key_copy](size_t query, const Window& w, const Value& v) {
            EmitResult(key_copy, query, w, v);
          });
    }
    InitDynStateForKey(key, ks);
  } else {
    for (const auto& proto : spec_.windows) {
      EagerQueryState qs;
      qs.wf = proto->Clone();
      const auto* sliding = dynamic_cast<const SlidingWindowFn*>(qs.wf.get());
      STREAMLINE_CHECK(sliding != nullptr);
      qs.range = sliding->range();
      qs.slide = sliding->slide();
      qs.origin = sliding->origin();
      ks->eager.push_back(std::move(qs));
    }
  }
  return ks;
}

void WindowAggOperator::EmitResult(const Value& key, size_t query,
                                   const Window& w, const Value& result) {
  STREAMLINE_CHECK(current_out_ != nullptr);
  Record out;
  out.timestamp = w.end - 1;
  out.fields = {key, Value(w.start), Value(w.end),
                Value(static_cast<int64_t>(query)), result};
  current_out_->Emit(std::move(out));
}

void WindowAggOperator::ProcessRecord(int, Record&& record, Collector* out) {
  (void)out;
  if (record.timestamp < current_wm_) {
    // Late record (violates upstream watermarks): dropped, the standard
    // allowed-lateness-zero policy.
    return;
  }
  pending_.emplace_back(std::move(record), seq_++);
  std::push_heap(pending_.begin(), pending_.end(), PendingAfter);
}

void WindowAggOperator::ProcessBatch(int, std::vector<Record>&& batch,
                                     Collector*) {
  // Windowing buffers until the watermark anyway, so the batch entry point
  // is just a bulk append into the reorder heap. Grow geometrically: an
  // exact reserve(size + batch) here would reallocate -- and move the whole
  // buffer -- on every batch once the buffer outgrows its capacity, which
  // turns a stalled watermark (records buffering, none applying) into
  // O(n^2) dispatch cost.
  const size_t needed = pending_.size() + batch.size();
  if (needed > pending_.capacity()) {
    pending_.reserve(std::max(needed, pending_.capacity() * 2));
  }
  for (Record& record : batch) {
    if (record.timestamp < current_wm_) continue;  // late: dropped
    pending_.emplace_back(std::move(record), seq_++);
    std::push_heap(pending_.begin(), pending_.end(), PendingAfter);
  }
  batch.clear();
}

void WindowAggOperator::ApplyElement(const Value& key, KeyState* ks,
                                     const Record& record) {
  (void)key;
  if (spec_.backend == WindowBackend::kShared) {
    DynAggAdapter::Input in{record.field(spec_.value_field),
                            record.timestamp};
    const Value payload = spec_.payload ? spec_.payload(record) : Value();
    ks->shared->OnElement(record.timestamp, in, payload);
    if (active_standalone_ > 0) FoldStandalone(key, ks, record);
    return;
  }
  // Eager: fold the record into every open window of every query.
  const DynPartial lifted =
      adapter_.dyn.Lift(record.field(spec_.value_field), record.timestamp);
  for (EagerQueryState& qs : ks->eager) {
    const Timestamp ts = record.timestamp;
    Timestamp b = qs.origin +
                  ((ts - qs.origin) >= 0
                       ? (ts - qs.origin) / qs.slide
                       : ((ts - qs.origin) - qs.slide + 1) / qs.slide) *
                      qs.slide;
    for (; b > ts - qs.range; b -= qs.slide) {
      if (b > ts) continue;
      const Window w{b, b + qs.range};
      auto it = std::lower_bound(
          qs.open.begin(), qs.open.end(), w,
          [](const auto& e, const Window& win) { return e.first < win; });
      if (it == qs.open.end() || it->first != w) {
        it = qs.open.insert(it, {w, adapter_.Identity()});
      }
      it->second = adapter_.Combine(it->second, lifted);
    }
  }
}

void WindowAggOperator::EagerFire(const Value& key, KeyState* ks,
                                  Timestamp wm) {
  for (size_t q = 0; q < ks->eager.size(); ++q) {
    EagerQueryState& qs = ks->eager[q];
    // Sorted by (end, start): the fired windows are a prefix.
    size_t fired = 0;
    while (fired < qs.open.size() && qs.open[fired].first.end <= wm) {
      EmitResult(key, q, qs.open[fired].first,
                 adapter_.Lower(qs.open[fired].second));
      ++fired;
    }
    qs.open.erase(qs.open.begin(), qs.open.begin() + fired);
  }
}

void WindowAggOperator::AdvanceKeyWatermark(const Value& key, KeyState* ks,
                                            Timestamp wm) {
  if (spec_.backend == WindowBackend::kShared) {
    ks->shared->OnWatermark(wm);
    FireStandalone(key, ks, wm);
  } else {
    EagerFire(key, ks, wm);
  }
}

void WindowAggOperator::FoldStandalone(const Value& key, KeyState* ks,
                                       const Record& record) {
  (void)key;
  const DynPartial lifted =
      adapter_.dyn.Lift(record.field(spec_.value_field), record.timestamp);
  size_t sidx = 0;
  for (const DynQuery& dq : dyn_queries_) {
    if (dq.placement != QueryPlacement::kStandalone) continue;
    StandaloneState& ss = ks->standalone[sidx++];
    if (!dq.active) continue;
    const Timestamp ts = record.timestamp;
    Timestamp b = FloorToGrid(ts, dq.desc.origin, dq.desc.slide);
    for (; b > ts - dq.desc.range; b -= dq.desc.slide) {
      // Windows that began before the attach point would be missing the
      // records applied before the query existed; serve only complete ones.
      if (b > ts || b < dq.attach_wm) continue;
      const Window w{b, b + dq.desc.range};
      auto it = std::lower_bound(
          ss.open.begin(), ss.open.end(), w,
          [](const auto& e, const Window& win) { return e.first < win; });
      if (it == ss.open.end() || it->first != w) {
        it = ss.open.insert(it, {w, adapter_.Identity()});
      }
      it->second = adapter_.Combine(it->second, lifted);
    }
  }
}

void WindowAggOperator::FireStandalone(const Value& key, KeyState* ks,
                                       Timestamp wm) {
  if (ks->standalone.empty()) return;
  size_t sidx = 0;
  for (const DynQuery& dq : dyn_queries_) {
    if (dq.placement != QueryPlacement::kStandalone) continue;
    StandaloneState& ss = ks->standalone[sidx++];
    // Sorted by (end, start): the fired windows are a prefix. Detached
    // entries have no open windows (cleared at detach).
    size_t fired = 0;
    while (fired < ss.open.size() && ss.open[fired].first.end <= wm) {
      EmitResult(key, static_cast<size_t>(dq.id), ss.open[fired].first,
                 adapter_.Lower(ss.open[fired].second));
      ++fired;
    }
    if (fired > 0) {
      ks->standalone_fires += fired;
      ss.open.erase(ss.open.begin(),
                    ss.open.begin() + static_cast<ptrdiff_t>(fired));
    }
  }
}

void WindowAggOperator::ProcessWatermark(Timestamp wm, Collector* out) {
  current_out_ = out;
  // Hold the operator's event-time clock back by the allowed lateness:
  // records arriving up to that much behind the upstream watermark are
  // still sorted into place before windows fire.
  if (wm != kMaxTimestamp && spec_.allowed_lateness > 0) {
    wm = wm - spec_.allowed_lateness;
    if (wm <= current_wm_) return;
  }
  current_wm_ = std::max(current_wm_, wm);
  // Pop exactly the records this watermark covers, in (ts, arrival) order;
  // they can no longer be preceded by anything. Records still ahead of the
  // watermark never move -- the common stall (one slow input channel
  // holding the min-watermark back while fast channels keep buffering) is
  // O(1) per watermark no matter how large the buffer grows.
  apply_scratch_.clear();
  while (!pending_.empty() &&
         (wm == kMaxTimestamp || pending_.front().first.timestamp < wm)) {
    std::pop_heap(pending_.begin(), pending_.end(), PendingAfter);
    apply_scratch_.push_back(std::move(pending_.back()));
    pending_.pop_back();
  }
  const auto in_bound = [&](size_t i) { return i < apply_scratch_.size(); };
  const auto resolve_key = [&](const Record& record, Value* key,
                               uint64_t* hash) {
    if (spec_.key) {
      *key = spec_.key(record);
      // Hash-once: the upstream hash shuffle already stamped the key hash on
      // the record; only records injected outside a hash edge (tests,
      // restore) pay a hash here.
      *hash = record.has_key_hash() ? record.key_hash : KeyHashOf(*key);
    } else {
      *key = Value(int64_t{0});
      if (global_key_hash_ == 0) global_key_hash_ = KeyHashOf(*key);
      *hash = global_key_hash_;
    }
  };
  // Only contiguous same-key runs go through the aggregator's batch entry
  // point, so element order within and across keys is exactly the
  // per-element order (byte-identical output). Payload-carrying specs stay
  // per-element: the batch API carries no payloads.
  const bool can_batch = spec_.backend == WindowBackend::kShared &&
                         !spec_.payload && active_standalone_ == 0;
  size_t applied = 0;
  while (in_bound(applied)) {
    const Record& record = apply_scratch_[applied].first;
    Value key;
    uint64_t hash;
    resolve_key(record, &key, &hash);
    KeyState* ks = GetOrCreateKey(key, hash);
    changelog_.Upsert(key, hash);
    if (!can_batch) {
      ApplyElement(key, ks, record);
      ++applied;
      continue;
    }
    // Extend the contiguous run of records with this key (for the global
    // key that is every in-bound record).
    size_t j = applied + 1;
    while (in_bound(j)) {
      if (spec_.key) {
        const Record& next = apply_scratch_[j].first;
        Value next_key;
        uint64_t next_hash;
        resolve_key(next, &next_key, &next_hash);
        if (next_hash != hash || !(next_key == key)) break;
      }
      ++j;
    }
    const size_t n = j - applied;
    if (n == 1) {
      ApplyElement(key, ks, record);
    } else {
      run_ts_.clear();
      run_in_.clear();
      run_ts_.reserve(n);
      run_in_.reserve(n);
      for (size_t i = applied; i < j; ++i) {
        const Record& r = apply_scratch_[i].first;
        run_ts_.push_back(r.timestamp);
        run_in_.push_back(DynAggAdapter::Input{r.field(spec_.value_field),
                                               r.timestamp});
      }
      ks->shared->OnElements(run_ts_.data(), run_in_.data(), n);
    }
    applied = j;
  }
  apply_scratch_.clear();
  // Advance every key's window clock: sessions and periodic windows fire on
  // time progress even for keys with no new records. When the changelog is
  // on, a fingerprint comparison catches keys the watermark mutated (fired
  // windows, evicted slices) so the next delta re-serializes them.
  for (auto& [key, ks] : keys_) {
    if (!changelog_.enabled()) {
      AdvanceKeyWatermark(key, &ks, wm);
      continue;
    }
    const std::array<uint64_t, 4> before = KeyFingerprint(ks);
    AdvanceKeyWatermark(key, &ks, wm);
    if (KeyFingerprint(ks) != before) {
      changelog_.Upsert(key, KeyHashOf(key));
    }
  }
  // Attach/detach commands apply here -- the end of a watermark is a
  // deterministic point of the event-time order, so every subtask (and any
  // checkpoint replay) splices queries in at the same place.
  DrainRegistryCommands();
  UpdateStateGauges();
  current_out_ = nullptr;
}

void WindowAggOperator::DrainRegistryCommands() {
  QueryRegistry* reg = spec_.registry.get();
  if (reg == nullptr) return;
  uint64_t slices_freed = 0;
  if (reg->latest_seq() != applied_seq_) {
    for (const QueryCommand& cmd : reg->CommandsAfter(applied_seq_)) {
      if (cmd.kind == QueryCommand::Kind::kAttach) {
        dyn_queries_.push_back(DynQuery{cmd.query_id, cmd.desc,
                                        cmd.placement, true, current_wm_});
        ApplyDynAttach(dyn_queries_.back(), &slices_freed);
      } else {
        for (size_t i = 0; i < dyn_queries_.size(); ++i) {
          if (dyn_queries_[i].id == cmd.query_id && dyn_queries_[i].active) {
            dyn_queries_[i].active = false;
            ApplyDynDetach(i, &slices_freed);
            break;
          }
        }
      }
      applied_seq_ = cmd.seq;
    }
    // A command changes every key's slot layout (and therefore its
    // serialized bytes): re-serialize them all in the next delta.
    if (changelog_.enabled()) {
      for (auto& [key, ks] : keys_) changelog_.Upsert(key, KeyHashOf(key));
    }
  }
  reg->AckApplied(name_ + ":" + std::to_string(subtask_index_), applied_seq_,
                  TotalStoredSlices(), slices_freed);
}

void WindowAggOperator::ApplyDynAttach(const DynQuery& dq,
                                       uint64_t* slices_freed) {
  (void)slices_freed;
  const size_t index = dyn_queries_.size() - 1;
  if (dq.placement == QueryPlacement::kShared) {
    const size_t slot = SharedSlotOfDyn(index);
    for (auto& [key, ks] : keys_) {
      Value key_copy = key;
      const uint64_t id = dq.id;
      const size_t got = ks.shared->AttachQuery(
          std::make_unique<SlidingWindowFn>(dq.desc.range, dq.desc.slide,
                                            dq.desc.origin),
          [this, key_copy, id](size_t, const Window& w, const Value& v) {
            EmitResult(key_copy, id, w, v);
          });
      STREAMLINE_CHECK_EQ(got, slot);
    }
  } else {
    for (auto& [key, ks] : keys_) ks.standalone.emplace_back();
    ++active_standalone_;
  }
}

void WindowAggOperator::ApplyDynDetach(size_t index, uint64_t* slices_freed) {
  const DynQuery& dq = dyn_queries_[index];
  if (dq.placement == QueryPlacement::kShared) {
    const size_t slot = SharedSlotOfDyn(index);
    for (auto& [key, ks] : keys_) {
      *slices_freed += ks.shared->DetachQuery(slot);
    }
  } else {
    const size_t sidx = StandaloneIndexOfDyn(index);
    for (auto& [key, ks] : keys_) {
      ks.standalone[sidx].open.clear();
      ks.standalone[sidx].open.shrink_to_fit();
    }
    --active_standalone_;
  }
}

size_t WindowAggOperator::SharedSlotOfDyn(size_t index) const {
  size_t slot = spec_.windows.size();
  for (size_t i = 0; i < index; ++i) {
    if (dyn_queries_[i].placement == QueryPlacement::kShared) ++slot;
  }
  return slot;
}

size_t WindowAggOperator::StandaloneIndexOfDyn(size_t index) const {
  size_t sidx = 0;
  for (size_t i = 0; i < index; ++i) {
    if (dyn_queries_[i].placement == QueryPlacement::kStandalone) ++sidx;
  }
  return sidx;
}

void WindowAggOperator::InitDynStateForKey(const Value& key, KeyState* ks) {
  // A key created after queries attached runs them from the key's first
  // element (the key has no earlier history to miss); detached entries
  // still allocate their slot so the layout matches the table.
  for (const DynQuery& dq : dyn_queries_) {
    if (dq.placement == QueryPlacement::kShared) {
      Value key_copy = key;
      const uint64_t id = dq.id;
      const size_t slot = ks->shared->AddQuery(
          std::make_unique<SlidingWindowFn>(dq.desc.range, dq.desc.slide,
                                            dq.desc.origin),
          [this, key_copy, id](size_t, const Window& w, const Value& v) {
            EmitResult(key_copy, id, w, v);
          });
      if (!dq.active) ks->shared->DetachQuery(slot);
    } else {
      ks->standalone.emplace_back();
    }
  }
}

uint64_t WindowAggOperator::TotalStoredSlices() const {
  uint64_t total = 0;
  for (const auto& [key, ks] : keys_) {
    if (ks.shared) total += ks.shared->stored_slices();
  }
  return total;
}

void WindowAggOperator::UpdateStateGauges() {
  if (load_gauge_ == nullptr) return;
  load_gauge_->Set(keys_.load_factor());
  probe_gauge_->Set(static_cast<double>(keys_.max_probe_length()));
  keys_gauge_->Set(static_cast<double>(keys_.size()));
}

void WindowAggOperator::OnEndOfInput(Collector* out) {
  // The runtime always delivers a final kMaxTimestamp watermark before end
  // of input, which flushed everything; nothing left to do.
  (void)out;
}

void WindowAggOperator::SnapshotKeyState(const KeyState& ks,
                                         BinaryWriter* w) const {
  if (spec_.backend == WindowBackend::kShared) {
    ks.shared->Snapshot(w, SerializeDynPartial);
    w->WriteU64(ks.standalone.size());
    w->WriteU64(ks.standalone_fires);
    for (const StandaloneState& ss : ks.standalone) {
      w->WriteU64(ss.open.size());
      for (const auto& [window, partial] : ss.open) {
        w->WriteI64(window.start);
        w->WriteI64(window.end);
        DynAggregate::SerializePartial(partial, w);
      }
    }
    return;
  }
  w->WriteU64(ks.eager.size());
  for (const EagerQueryState& qs : ks.eager) {
    qs.wf->SnapshotState(w);
    w->WriteU64(qs.open.size());
    for (const auto& [window, partial] : qs.open) {
      w->WriteI64(window.start);
      w->WriteI64(window.end);
      DynAggregate::SerializePartial(partial, w);
    }
  }
}

Status WindowAggOperator::RestoreKeyState(KeyState* ks, BinaryReader* r) {
  if (spec_.backend == WindowBackend::kShared) {
    STREAMLINE_RETURN_IF_ERROR(ks->shared->Restore(r, DeserializeDynPartial));
    auto ns = r->ReadU64();
    if (!ns.ok()) return ns.status();
    if (*ns != ks->standalone.size()) {
      return Status::FailedPrecondition("standalone query count mismatch");
    }
    auto fires = r->ReadU64();
    if (!fires.ok()) return fires.status();
    ks->standalone_fires = *fires;
    for (StandaloneState& ss : ks->standalone) {
      // A delta may re-restore a key with open windows; full replacement.
      ss.open.clear();
      auto nw = r->ReadU64();
      if (!nw.ok()) return nw.status();
      for (uint64_t k = 0; k < *nw; ++k) {
        auto start = r->ReadI64();
        if (!start.ok()) return start.status();
        auto end = r->ReadI64();
        if (!end.ok()) return end.status();
        auto p = DynAggregate::DeserializePartial(r);
        if (!p.ok()) return p.status();
        ss.open.emplace_back(Window{*start, *end}, *p);
      }
    }
    return Status::Ok();
  }
  auto nq = r->ReadU64();
  if (!nq.ok()) return nq.status();
  if (*nq != ks->eager.size()) {
    return Status::FailedPrecondition("eager query count mismatch");
  }
  for (EagerQueryState& qs : ks->eager) {
    // A delta may re-restore a key that already has open windows; the
    // snapshot is a full replacement, not an append.
    qs.open.clear();
    STREAMLINE_RETURN_IF_ERROR(qs.wf->RestoreState(r));
    auto nw = r->ReadU64();
    if (!nw.ok()) return nw.status();
    for (uint64_t k = 0; k < *nw; ++k) {
      auto start = r->ReadI64();
      if (!start.ok()) return start.status();
      auto end = r->ReadI64();
      if (!end.ok()) return end.status();
      auto p = DynAggregate::DeserializePartial(r);
      if (!p.ok()) return p.status();
      // Snapshots write `open` in sorted order; appending preserves it.
      qs.open.emplace_back(Window{*start, *end}, *p);
    }
  }
  return Status::Ok();
}

std::array<uint64_t, 4> WindowAggOperator::KeyFingerprint(
    const KeyState& ks) const {
  if (spec_.backend == WindowBackend::kShared) {
    const AggStats& s = ks.shared->stats();
    uint64_t standalone_open = 0;
    for (const StandaloneState& ss : ks.standalone) {
      standalone_open += ss.open.size();
    }
    // Standalone fires erase open windows; either count moving means the
    // watermark mutated this key's standalone state.
    return {s.fires, s.slices_created,
            static_cast<uint64_t>(ks.shared->stored_slices()),
            (ks.standalone_fires << 32) ^ standalone_open};
  }
  uint64_t open = 0;
  for (const EagerQueryState& qs : ks.eager) open += qs.open.size();
  return {open, 0, 0, 0};
}

void WindowAggOperator::WriteDynTable(BinaryWriter* w) const {
  w->WriteU64(applied_seq_);
  w->WriteU64(dyn_queries_.size());
  for (const DynQuery& dq : dyn_queries_) {
    w->WriteU64(dq.id);
    w->WriteI64(dq.desc.range);
    w->WriteI64(dq.desc.slide);
    w->WriteI64(dq.desc.origin);
    w->WriteU8(static_cast<uint8_t>(dq.placement));
    w->WriteBool(dq.active);
    w->WriteI64(dq.attach_wm);
  }
}

Status WindowAggOperator::ReadDynTable(BinaryReader* r,
                                       std::vector<DynQuery>* table,
                                       uint64_t* applied_seq) const {
  auto seq = r->ReadU64();
  if (!seq.ok()) return seq.status();
  auto n = r->ReadU64();
  if (!n.ok()) return n.status();
  table->clear();
  for (uint64_t i = 0; i < *n; ++i) {
    DynQuery dq;
    auto id = r->ReadU64();
    if (!id.ok()) return id.status();
    auto range = r->ReadI64();
    if (!range.ok()) return range.status();
    auto slide = r->ReadI64();
    if (!slide.ok()) return slide.status();
    auto origin = r->ReadI64();
    if (!origin.ok()) return origin.status();
    auto placement = r->ReadU8();
    if (!placement.ok()) return placement.status();
    auto active = r->ReadBool();
    if (!active.ok()) return active.status();
    auto attach_wm = r->ReadI64();
    if (!attach_wm.ok()) return attach_wm.status();
    dq.id = *id;
    dq.desc = QueryDescriptor{*range, *slide, *origin};
    dq.placement = static_cast<QueryPlacement>(*placement);
    dq.active = *active;
    dq.attach_wm = *attach_wm;
    table->push_back(dq);
  }
  *applied_seq = *seq;
  return Status::Ok();
}

void WindowAggOperator::ReconcileDynTable(std::vector<DynQuery> table,
                                          uint64_t applied_seq) {
  // The table is append-only and `active` only ever flips true -> false, so
  // the structural diff against the live table is: detach newly inactive
  // entries, then attach the appended tail. Keys the commands mutated were
  // all marked dirty in the same epoch, so their exact state follows in
  // this delta's upserts; the retrofit only has to make the *layout* (slot
  // counts, standalone vector sizes) match before those restores run.
  uint64_t ignored_freed = 0;
  STREAMLINE_CHECK(table.size() >= dyn_queries_.size())
      << "dyn-query table shrank across a delta";
  for (size_t i = 0; i < dyn_queries_.size(); ++i) {
    STREAMLINE_CHECK(table[i].id == dyn_queries_[i].id);
    if (dyn_queries_[i].active && !table[i].active) {
      dyn_queries_[i].active = false;
      ApplyDynDetach(i, &ignored_freed);
    }
  }
  for (size_t i = dyn_queries_.size(); i < table.size(); ++i) {
    dyn_queries_.push_back(table[i]);
    ApplyDynAttach(dyn_queries_.back(), &ignored_freed);
    // Attached and detached between deltas: the slot must exist (layout)
    // but be detached, or the per-key restore validation rejects it.
    if (!table[i].active) ApplyDynDetach(i, &ignored_freed);
  }
  dyn_queries_ = std::move(table);
  applied_seq_ = applied_seq;
  active_standalone_ = 0;
  for (const DynQuery& dq : dyn_queries_) {
    if (dq.active && dq.placement == QueryPlacement::kStandalone) {
      ++active_standalone_;
    }
  }
}

Status WindowAggOperator::SnapshotState(BinaryWriter* w) const {
  w->WriteI64(current_wm_);
  w->WriteU64(seq_);
  WriteDynTable(w);
  // Written in heap-array order (deterministic for a given input history);
  // Restore rebuilds the heap property, which holds for any array order.
  w->WriteU64(pending_.size());
  for (const auto& [record, seq] : pending_) {
    w->WriteRecord(record);
    w->WriteU64(seq);
  }
  w->WriteU64(keys_.size());
  for (const auto& [key, ks] : keys_) {
    w->WriteValue(key);
    SnapshotKeyState(ks, w);
  }
  return Status::Ok();
}

Status WindowAggOperator::RestoreState(BinaryReader* r) {
  auto wm = r->ReadI64();
  if (!wm.ok()) return wm.status();
  auto seq = r->ReadU64();
  if (!seq.ok()) return seq.status();
  // The dynamic-query table must be in place before any key state is
  // restored: GetOrCreateKey lays out per-key slots/standalone vectors from
  // it, and RestoreKeyState validates the layout it reads against that.
  std::vector<DynQuery> table;
  uint64_t applied_seq = 0;
  STREAMLINE_RETURN_IF_ERROR(ReadDynTable(r, &table, &applied_seq));
  dyn_queries_ = std::move(table);
  applied_seq_ = applied_seq;
  active_standalone_ = 0;
  for (const DynQuery& dq : dyn_queries_) {
    if (dq.active && dq.placement == QueryPlacement::kStandalone) {
      ++active_standalone_;
    }
  }
  auto np = r->ReadU64();
  if (!np.ok()) return np.status();
  pending_.clear();
  for (uint64_t i = 0; i < *np; ++i) {
    auto rec = r->ReadRecord();
    if (!rec.ok()) return rec.status();
    auto s = r->ReadU64();
    if (!s.ok()) return s.status();
    pending_.emplace_back(std::move(*rec), *s);
  }
  std::make_heap(pending_.begin(), pending_.end(), PendingAfter);
  auto nk = r->ReadU64();
  if (!nk.ok()) return nk.status();
  keys_.clear();
  keys_.Reserve(*nk);
  for (uint64_t i = 0; i < *nk; ++i) {
    auto key = r->ReadValue();
    if (!key.ok()) return key.status();
    KeyState* ks = GetOrCreateKey(*key, KeyHashOf(*key));
    STREAMLINE_RETURN_IF_ERROR(RestoreKeyState(ks, r));
  }
  current_wm_ = *wm;
  seq_ = *seq;
  return Status::Ok();
}

Status WindowAggOperator::SnapshotDelta(ChangelogSink* sink) {
  // Meta record first: the operator-wide clock (watermark, arrival
  // sequence) and the reorder buffer. The buffer holds only records the
  // watermark has not yet covered, so this stays small in steady state;
  // replay replaces it wholesale.
  {
    BinaryWriter w;
    w.WriteU8(kDeltaMetaTag);
    w.WriteI64(current_wm_);
    w.WriteU64(seq_);
    WriteDynTable(&w);
    w.WriteU64(pending_.size());
    for (const auto& [record, seq] : pending_) {
      w.WriteRecord(record);
      w.WriteU64(seq);
    }
    STREAMLINE_RETURN_IF_ERROR(sink->Append(w.Release()));
  }
  for (const KeyedChangelog::Event& ev : changelog_.events()) {
    BinaryWriter w;
    if (ev.op == KeyedChangelog::Op::kErase) {
      w.WriteU8(kDeltaEraseTag);
      w.WriteValue(ev.key);
    } else {
      w.WriteU8(kDeltaUpsertTag);
      w.WriteValue(ev.key);
      const KeyState* ks = keys_.Find(ev.hash, ev.key);
      w.WriteU8(ks != nullptr ? 1 : 0);
      if (ks != nullptr) SnapshotKeyState(*ks, &w);
    }
    STREAMLINE_RETURN_IF_ERROR(sink->Append(w.Release()));
  }
  changelog_.Clear();
  return Status::Ok();
}

Status WindowAggOperator::ApplyDelta(BinaryReader* r) {
  auto tag = r->ReadU8();
  if (!tag.ok()) return tag.status();
  if (*tag == kDeltaMetaTag) {
    auto wm = r->ReadI64();
    if (!wm.ok()) return wm.status();
    auto seq = r->ReadU64();
    if (!seq.ok()) return seq.status();
    std::vector<DynQuery> table;
    uint64_t applied_seq = 0;
    STREAMLINE_RETURN_IF_ERROR(ReadDynTable(r, &table, &applied_seq));
    ReconcileDynTable(std::move(table), applied_seq);
    auto np = r->ReadU64();
    if (!np.ok()) return np.status();
    pending_.clear();
    for (uint64_t i = 0; i < *np; ++i) {
      auto rec = r->ReadRecord();
      if (!rec.ok()) return rec.status();
      auto s = r->ReadU64();
      if (!s.ok()) return s.status();
      pending_.emplace_back(std::move(*rec), *s);
    }
    std::make_heap(pending_.begin(), pending_.end(), PendingAfter);
    current_wm_ = *wm;
    seq_ = *seq;
    return Status::Ok();
  }
  auto key = r->ReadValue();
  if (!key.ok()) return key.status();
  const uint64_t hash = KeyHashOf(*key);
  if (*tag == kDeltaEraseTag) {
    keys_.Erase(hash, *key);
    return Status::Ok();
  }
  if (*tag != kDeltaUpsertTag) {
    return Status::Internal("bad changelog tag " + std::to_string(*tag) +
                            " in '" + name_ + "'");
  }
  auto present = r->ReadU8();
  if (!present.ok()) return present.status();
  KeyState* ks = GetOrCreateKey(*key, hash);
  if (*present != 0) STREAMLINE_RETURN_IF_ERROR(RestoreKeyState(ks, r));
  return Status::Ok();
}

AggStats WindowAggOperator::SharedStats() const {
  AggStats total;
  for (const auto& [key, ks] : keys_) {
    if (!ks.shared) continue;
    const AggStats& s = ks.shared->stats();
    total.elements += s.elements;
    total.partial_updates += s.partial_updates;
    total.combine_ops += s.combine_ops;
    total.fires += s.fires;
    total.slices_created += s.slices_created;
    total.peak_stored += s.peak_stored;
  }
  return total;
}

}  // namespace streamline
