#include "dataflow/window_operator.h"

#include <algorithm>

#include "common/logging.h"

namespace streamline {
namespace {

void SerializeDynPartial(const DynPartial& p, BinaryWriter* w) {
  DynAggregate::SerializePartial(p, w);
}

Result<DynPartial> DeserializeDynPartial(BinaryReader* r) {
  return DynAggregate::DeserializePartial(r);
}

}  // namespace

WindowAggOperator::WindowAggOperator(std::string name, WindowAggSpec spec)
    : name_(std::move(name)),
      spec_(std::move(spec)),
      adapter_(spec_.agg_kind) {
  STREAMLINE_CHECK(!spec_.windows.empty())
      << "WindowAggSpec needs at least one window definition";
}

Status WindowAggOperator::Open(const OperatorContext& ctx) {
  if (ctx.metrics != nullptr) {
    const std::string prefix = "op." + name_ + "." +
                               std::to_string(ctx.subtask_index) + ".state.";
    load_gauge_ = ctx.metrics->GetGauge(prefix + "load_factor");
    probe_gauge_ = ctx.metrics->GetGauge(prefix + "max_probe");
    keys_gauge_ = ctx.metrics->GetGauge(prefix + "keys");
  }
  if (spec_.backend == WindowBackend::kEager) {
    // Eager per-window state supports periodic windows only (matching the
    // systems it models); verify the prototypes up front.
    for (const auto& proto : spec_.windows) {
      if (dynamic_cast<const SlidingWindowFn*>(proto.get()) == nullptr) {
        return Status::InvalidArgument(
            "eager window backend supports periodic windows only, got " +
            proto->Name());
      }
    }
  }
  return Status::Ok();
}

WindowAggOperator::KeyState* WindowAggOperator::GetOrCreateKey(
    const Value& key, uint64_t hash) {
  auto [entry, inserted] = keys_.TryEmplace(hash, key);
  KeyState* ks = &entry->second;
  if (!inserted) return ks;
  if (spec_.backend == WindowBackend::kShared) {
    ks->shared = std::make_unique<SharedAgg>(adapter_);
    for (size_t q = 0; q < spec_.windows.size(); ++q) {
      // The callback captures the key by value; `current_out_` points at
      // the collector of the call currently on the stack.
      Value key_copy = key;
      ks->shared->AddQuery(
          spec_.windows[q]->Clone(),
          [this, key_copy](size_t query, const Window& w, const Value& v) {
            EmitResult(key_copy, query, w, v);
          });
    }
  } else {
    for (const auto& proto : spec_.windows) {
      EagerQueryState qs;
      qs.wf = proto->Clone();
      const auto* sliding = dynamic_cast<const SlidingWindowFn*>(qs.wf.get());
      STREAMLINE_CHECK(sliding != nullptr);
      qs.range = sliding->range();
      qs.slide = sliding->slide();
      qs.origin = sliding->origin();
      ks->eager.push_back(std::move(qs));
    }
  }
  return ks;
}

void WindowAggOperator::EmitResult(const Value& key, size_t query,
                                   const Window& w, const Value& result) {
  STREAMLINE_CHECK(current_out_ != nullptr);
  Record out;
  out.timestamp = w.end - 1;
  out.fields = {key, Value(w.start), Value(w.end),
                Value(static_cast<int64_t>(query)), result};
  current_out_->Emit(std::move(out));
}

void WindowAggOperator::ProcessRecord(int, Record&& record, Collector* out) {
  (void)out;
  if (record.timestamp < current_wm_) {
    // Late record (violates upstream watermarks): dropped, the standard
    // allowed-lateness-zero policy.
    return;
  }
  pending_.emplace_back(std::move(record), seq_++);
  std::push_heap(pending_.begin(), pending_.end(), PendingAfter);
}

void WindowAggOperator::ProcessBatch(int, std::vector<Record>&& batch,
                                     Collector*) {
  // Windowing buffers until the watermark anyway, so the batch entry point
  // is just a bulk append into the reorder heap. Grow geometrically: an
  // exact reserve(size + batch) here would reallocate -- and move the whole
  // buffer -- on every batch once the buffer outgrows its capacity, which
  // turns a stalled watermark (records buffering, none applying) into
  // O(n^2) dispatch cost.
  const size_t needed = pending_.size() + batch.size();
  if (needed > pending_.capacity()) {
    pending_.reserve(std::max(needed, pending_.capacity() * 2));
  }
  for (Record& record : batch) {
    if (record.timestamp < current_wm_) continue;  // late: dropped
    pending_.emplace_back(std::move(record), seq_++);
    std::push_heap(pending_.begin(), pending_.end(), PendingAfter);
  }
  batch.clear();
}

void WindowAggOperator::ApplyElement(const Value& key, KeyState* ks,
                                     const Record& record) {
  (void)key;
  if (spec_.backend == WindowBackend::kShared) {
    DynAggAdapter::Input in{record.field(spec_.value_field),
                            record.timestamp};
    const Value payload = spec_.payload ? spec_.payload(record) : Value();
    ks->shared->OnElement(record.timestamp, in, payload);
    return;
  }
  // Eager: fold the record into every open window of every query.
  const DynPartial lifted =
      adapter_.dyn.Lift(record.field(spec_.value_field), record.timestamp);
  for (EagerQueryState& qs : ks->eager) {
    const Timestamp ts = record.timestamp;
    Timestamp b = qs.origin +
                  ((ts - qs.origin) >= 0
                       ? (ts - qs.origin) / qs.slide
                       : ((ts - qs.origin) - qs.slide + 1) / qs.slide) *
                      qs.slide;
    for (; b > ts - qs.range; b -= qs.slide) {
      if (b > ts) continue;
      const Window w{b, b + qs.range};
      auto it = std::lower_bound(
          qs.open.begin(), qs.open.end(), w,
          [](const auto& e, const Window& win) { return e.first < win; });
      if (it == qs.open.end() || it->first != w) {
        it = qs.open.insert(it, {w, adapter_.Identity()});
      }
      it->second = adapter_.Combine(it->second, lifted);
    }
  }
}

void WindowAggOperator::EagerFire(const Value& key, KeyState* ks,
                                  Timestamp wm) {
  for (size_t q = 0; q < ks->eager.size(); ++q) {
    EagerQueryState& qs = ks->eager[q];
    // Sorted by (end, start): the fired windows are a prefix.
    size_t fired = 0;
    while (fired < qs.open.size() && qs.open[fired].first.end <= wm) {
      EmitResult(key, q, qs.open[fired].first,
                 adapter_.Lower(qs.open[fired].second));
      ++fired;
    }
    qs.open.erase(qs.open.begin(), qs.open.begin() + fired);
  }
}

void WindowAggOperator::AdvanceKeyWatermark(const Value& key, KeyState* ks,
                                            Timestamp wm) {
  if (spec_.backend == WindowBackend::kShared) {
    ks->shared->OnWatermark(wm);
  } else {
    EagerFire(key, ks, wm);
  }
}

void WindowAggOperator::ProcessWatermark(Timestamp wm, Collector* out) {
  current_out_ = out;
  // Hold the operator's event-time clock back by the allowed lateness:
  // records arriving up to that much behind the upstream watermark are
  // still sorted into place before windows fire.
  if (wm != kMaxTimestamp && spec_.allowed_lateness > 0) {
    wm = wm - spec_.allowed_lateness;
    if (wm <= current_wm_) return;
  }
  current_wm_ = std::max(current_wm_, wm);
  // Pop exactly the records this watermark covers, in (ts, arrival) order;
  // they can no longer be preceded by anything. Records still ahead of the
  // watermark never move -- the common stall (one slow input channel
  // holding the min-watermark back while fast channels keep buffering) is
  // O(1) per watermark no matter how large the buffer grows.
  apply_scratch_.clear();
  while (!pending_.empty() &&
         (wm == kMaxTimestamp || pending_.front().first.timestamp < wm)) {
    std::pop_heap(pending_.begin(), pending_.end(), PendingAfter);
    apply_scratch_.push_back(std::move(pending_.back()));
    pending_.pop_back();
  }
  const auto in_bound = [&](size_t i) { return i < apply_scratch_.size(); };
  const auto resolve_key = [&](const Record& record, Value* key,
                               uint64_t* hash) {
    if (spec_.key) {
      *key = spec_.key(record);
      // Hash-once: the upstream hash shuffle already stamped the key hash on
      // the record; only records injected outside a hash edge (tests,
      // restore) pay a hash here.
      *hash = record.has_key_hash() ? record.key_hash : KeyHashOf(*key);
    } else {
      *key = Value(int64_t{0});
      if (global_key_hash_ == 0) global_key_hash_ = KeyHashOf(*key);
      *hash = global_key_hash_;
    }
  };
  // Only contiguous same-key runs go through the aggregator's batch entry
  // point, so element order within and across keys is exactly the
  // per-element order (byte-identical output). Payload-carrying specs stay
  // per-element: the batch API carries no payloads.
  const bool can_batch =
      spec_.backend == WindowBackend::kShared && !spec_.payload;
  size_t applied = 0;
  while (in_bound(applied)) {
    const Record& record = apply_scratch_[applied].first;
    Value key;
    uint64_t hash;
    resolve_key(record, &key, &hash);
    KeyState* ks = GetOrCreateKey(key, hash);
    changelog_.Upsert(key, hash);
    if (!can_batch) {
      ApplyElement(key, ks, record);
      ++applied;
      continue;
    }
    // Extend the contiguous run of records with this key (for the global
    // key that is every in-bound record).
    size_t j = applied + 1;
    while (in_bound(j)) {
      if (spec_.key) {
        const Record& next = apply_scratch_[j].first;
        Value next_key;
        uint64_t next_hash;
        resolve_key(next, &next_key, &next_hash);
        if (next_hash != hash || !(next_key == key)) break;
      }
      ++j;
    }
    const size_t n = j - applied;
    if (n == 1) {
      ApplyElement(key, ks, record);
    } else {
      run_ts_.clear();
      run_in_.clear();
      run_ts_.reserve(n);
      run_in_.reserve(n);
      for (size_t i = applied; i < j; ++i) {
        const Record& r = apply_scratch_[i].first;
        run_ts_.push_back(r.timestamp);
        run_in_.push_back(DynAggAdapter::Input{r.field(spec_.value_field),
                                               r.timestamp});
      }
      ks->shared->OnElements(run_ts_.data(), run_in_.data(), n);
    }
    applied = j;
  }
  apply_scratch_.clear();
  // Advance every key's window clock: sessions and periodic windows fire on
  // time progress even for keys with no new records. When the changelog is
  // on, a fingerprint comparison catches keys the watermark mutated (fired
  // windows, evicted slices) so the next delta re-serializes them.
  for (auto& [key, ks] : keys_) {
    if (!changelog_.enabled()) {
      AdvanceKeyWatermark(key, &ks, wm);
      continue;
    }
    const std::array<uint64_t, 3> before = KeyFingerprint(ks);
    AdvanceKeyWatermark(key, &ks, wm);
    if (KeyFingerprint(ks) != before) {
      changelog_.Upsert(key, KeyHashOf(key));
    }
  }
  UpdateStateGauges();
  current_out_ = nullptr;
}

void WindowAggOperator::UpdateStateGauges() {
  if (load_gauge_ == nullptr) return;
  load_gauge_->Set(keys_.load_factor());
  probe_gauge_->Set(static_cast<double>(keys_.max_probe_length()));
  keys_gauge_->Set(static_cast<double>(keys_.size()));
}

void WindowAggOperator::OnEndOfInput(Collector* out) {
  // The runtime always delivers a final kMaxTimestamp watermark before end
  // of input, which flushed everything; nothing left to do.
  (void)out;
}

void WindowAggOperator::SnapshotKeyState(const KeyState& ks,
                                         BinaryWriter* w) const {
  if (spec_.backend == WindowBackend::kShared) {
    ks.shared->Snapshot(w, SerializeDynPartial);
    return;
  }
  w->WriteU64(ks.eager.size());
  for (const EagerQueryState& qs : ks.eager) {
    qs.wf->SnapshotState(w);
    w->WriteU64(qs.open.size());
    for (const auto& [window, partial] : qs.open) {
      w->WriteI64(window.start);
      w->WriteI64(window.end);
      DynAggregate::SerializePartial(partial, w);
    }
  }
}

Status WindowAggOperator::RestoreKeyState(KeyState* ks, BinaryReader* r) {
  if (spec_.backend == WindowBackend::kShared) {
    return ks->shared->Restore(r, DeserializeDynPartial);
  }
  auto nq = r->ReadU64();
  if (!nq.ok()) return nq.status();
  if (*nq != ks->eager.size()) {
    return Status::FailedPrecondition("eager query count mismatch");
  }
  for (EagerQueryState& qs : ks->eager) {
    // A delta may re-restore a key that already has open windows; the
    // snapshot is a full replacement, not an append.
    qs.open.clear();
    STREAMLINE_RETURN_IF_ERROR(qs.wf->RestoreState(r));
    auto nw = r->ReadU64();
    if (!nw.ok()) return nw.status();
    for (uint64_t k = 0; k < *nw; ++k) {
      auto start = r->ReadI64();
      if (!start.ok()) return start.status();
      auto end = r->ReadI64();
      if (!end.ok()) return end.status();
      auto p = DynAggregate::DeserializePartial(r);
      if (!p.ok()) return p.status();
      // Snapshots write `open` in sorted order; appending preserves it.
      qs.open.emplace_back(Window{*start, *end}, *p);
    }
  }
  return Status::Ok();
}

std::array<uint64_t, 3> WindowAggOperator::KeyFingerprint(
    const KeyState& ks) const {
  if (spec_.backend == WindowBackend::kShared) {
    const AggStats& s = ks.shared->stats();
    return {s.fires, s.slices_created,
            static_cast<uint64_t>(ks.shared->stored_slices())};
  }
  uint64_t open = 0;
  for (const EagerQueryState& qs : ks.eager) open += qs.open.size();
  return {open, 0, 0};
}

Status WindowAggOperator::SnapshotState(BinaryWriter* w) const {
  w->WriteI64(current_wm_);
  w->WriteU64(seq_);
  // Written in heap-array order (deterministic for a given input history);
  // Restore rebuilds the heap property, which holds for any array order.
  w->WriteU64(pending_.size());
  for (const auto& [record, seq] : pending_) {
    w->WriteRecord(record);
    w->WriteU64(seq);
  }
  w->WriteU64(keys_.size());
  for (const auto& [key, ks] : keys_) {
    w->WriteValue(key);
    SnapshotKeyState(ks, w);
  }
  return Status::Ok();
}

Status WindowAggOperator::RestoreState(BinaryReader* r) {
  auto wm = r->ReadI64();
  if (!wm.ok()) return wm.status();
  auto seq = r->ReadU64();
  if (!seq.ok()) return seq.status();
  auto np = r->ReadU64();
  if (!np.ok()) return np.status();
  pending_.clear();
  for (uint64_t i = 0; i < *np; ++i) {
    auto rec = r->ReadRecord();
    if (!rec.ok()) return rec.status();
    auto s = r->ReadU64();
    if (!s.ok()) return s.status();
    pending_.emplace_back(std::move(*rec), *s);
  }
  std::make_heap(pending_.begin(), pending_.end(), PendingAfter);
  auto nk = r->ReadU64();
  if (!nk.ok()) return nk.status();
  keys_.clear();
  keys_.Reserve(*nk);
  for (uint64_t i = 0; i < *nk; ++i) {
    auto key = r->ReadValue();
    if (!key.ok()) return key.status();
    KeyState* ks = GetOrCreateKey(*key, KeyHashOf(*key));
    STREAMLINE_RETURN_IF_ERROR(RestoreKeyState(ks, r));
  }
  current_wm_ = *wm;
  seq_ = *seq;
  return Status::Ok();
}

Status WindowAggOperator::SnapshotDelta(ChangelogSink* sink) {
  // Meta record first: the operator-wide clock (watermark, arrival
  // sequence) and the reorder buffer. The buffer holds only records the
  // watermark has not yet covered, so this stays small in steady state;
  // replay replaces it wholesale.
  {
    BinaryWriter w;
    w.WriteU8(kDeltaMetaTag);
    w.WriteI64(current_wm_);
    w.WriteU64(seq_);
    w.WriteU64(pending_.size());
    for (const auto& [record, seq] : pending_) {
      w.WriteRecord(record);
      w.WriteU64(seq);
    }
    STREAMLINE_RETURN_IF_ERROR(sink->Append(w.Release()));
  }
  for (const KeyedChangelog::Event& ev : changelog_.events()) {
    BinaryWriter w;
    if (ev.op == KeyedChangelog::Op::kErase) {
      w.WriteU8(kDeltaEraseTag);
      w.WriteValue(ev.key);
    } else {
      w.WriteU8(kDeltaUpsertTag);
      w.WriteValue(ev.key);
      const KeyState* ks = keys_.Find(ev.hash, ev.key);
      w.WriteU8(ks != nullptr ? 1 : 0);
      if (ks != nullptr) SnapshotKeyState(*ks, &w);
    }
    STREAMLINE_RETURN_IF_ERROR(sink->Append(w.Release()));
  }
  changelog_.Clear();
  return Status::Ok();
}

Status WindowAggOperator::ApplyDelta(BinaryReader* r) {
  auto tag = r->ReadU8();
  if (!tag.ok()) return tag.status();
  if (*tag == kDeltaMetaTag) {
    auto wm = r->ReadI64();
    if (!wm.ok()) return wm.status();
    auto seq = r->ReadU64();
    if (!seq.ok()) return seq.status();
    auto np = r->ReadU64();
    if (!np.ok()) return np.status();
    pending_.clear();
    for (uint64_t i = 0; i < *np; ++i) {
      auto rec = r->ReadRecord();
      if (!rec.ok()) return rec.status();
      auto s = r->ReadU64();
      if (!s.ok()) return s.status();
      pending_.emplace_back(std::move(*rec), *s);
    }
    std::make_heap(pending_.begin(), pending_.end(), PendingAfter);
    current_wm_ = *wm;
    seq_ = *seq;
    return Status::Ok();
  }
  auto key = r->ReadValue();
  if (!key.ok()) return key.status();
  const uint64_t hash = KeyHashOf(*key);
  if (*tag == kDeltaEraseTag) {
    keys_.Erase(hash, *key);
    return Status::Ok();
  }
  if (*tag != kDeltaUpsertTag) {
    return Status::Internal("bad changelog tag " + std::to_string(*tag) +
                            " in '" + name_ + "'");
  }
  auto present = r->ReadU8();
  if (!present.ok()) return present.status();
  KeyState* ks = GetOrCreateKey(*key, hash);
  if (*present != 0) STREAMLINE_RETURN_IF_ERROR(RestoreKeyState(ks, r));
  return Status::Ok();
}

AggStats WindowAggOperator::SharedStats() const {
  AggStats total;
  for (const auto& [key, ks] : keys_) {
    if (!ks.shared) continue;
    const AggStats& s = ks.shared->stats();
    total.elements += s.elements;
    total.partial_updates += s.partial_updates;
    total.combine_ops += s.combine_ops;
    total.fires += s.fires;
    total.slices_created += s.slices_created;
    total.peak_stored += s.peak_stored;
  }
  return total;
}

}  // namespace streamline
