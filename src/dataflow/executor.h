#ifndef STREAMLINE_DATAFLOW_EXECUTOR_H_
#define STREAMLINE_DATAFLOW_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "dataflow/graph.h"
#include "dataflow/snapshot.h"

namespace streamline {

namespace internal {
class Task;
}  // namespace internal

/// Execution knobs of a job.
struct JobOptions {
  /// How physical tasks get CPU time.
  enum class ExecutionMode {
    /// Morsel-driven scheduling (default): all tasks are multiplexed over
    /// a fixed work-stealing worker pool sized to `worker_threads`, so
    /// parallelism above the core count adds logical key-groups, not OS
    /// threads.
    kScheduler,
    /// Legacy: one dedicated OS thread per physical task. Kept as the
    /// equivalence baseline and for A/B benchmarking.
    kThreadPerTask,
  };
  ExecutionMode execution_mode = ExecutionMode::kScheduler;
  /// Worker threads of the scheduler pool; 0 = hardware_concurrency().
  /// Ignored in thread-per-task mode.
  size_t worker_threads = 0;
  /// Event capacity of each input channel. Every (upstream subtask,
  /// downstream subtask) pair gets its own single-producer/single-consumer
  /// ring of this many events (an event is usually a whole record batch);
  /// a full ring blocks its producer, which is the engine's backpressure
  /// mechanism. Rounded up to a power of two.
  size_t channel_capacity = 256;
  /// Records buffered per output channel before a batch is shipped
  /// ("network buffers"); watermarks, barriers and end-of-stream flush
  /// eagerly, so batching never delays control events. 1 disables batching.
  size_t batch_size = 256;
  /// Empty poll-loop passes an operator task makes over its input channels
  /// (yielding between passes) before parking on its doorbell. Small by
  /// default: parked consumers cost nothing, and on busy hosts the
  /// producer needs the core more than the consumer needs the spin.
  size_t idle_spin_budget = 64;
  /// Fuse forward-connected same-parallelism operators into one task
  /// (operator chaining).
  bool enable_chaining = true;
  /// Periodic checkpointing interval; 0 disables the timer (explicit
  /// TriggerCheckpoint still works when a snapshot store exists).
  int64_t checkpoint_interval_ms = 0;
  /// Snapshot backend; shared across jobs to support restore. When null and
  /// checkpointing is used, the job creates a private store.
  std::shared_ptr<SnapshotStore> snapshot_store;
  /// Restore all task state from this checkpoint id before starting
  /// (requires the same graph shape and parallelism). 0 = fresh start.
  uint64_t restore_from_checkpoint = 0;
  /// Changelog-based incremental checkpoints: keyed operators append
  /// per-key deltas to a write-ahead changelog between barriers and a
  /// barrier seals the segment instead of re-serializing the full state.
  /// Requires `snapshot_store` to be an IncrementalSnapshotStore; operators
  /// that do not support deltas keep taking full snapshots.
  bool incremental_checkpoints = false;
  /// Once a key group's changelog chain (deltas since its last base)
  /// exceeds this many bytes, the next barrier writes a compacted full
  /// base instead of another delta.
  size_t changelog_compaction_bytes = 4u << 20;
  /// Deterministic fault injection for chaos testing. Sites are
  /// "source:<node name>" and "op:<node name>"; a fired fault behaves
  /// exactly like user code failing at that point. Shared across restarts
  /// so one-shot faults do not re-fire after recovery. Null = no faults.
  std::shared_ptr<FaultInjector> fault_injector;
};

/// A deployed dataflow job: one thread per physical task, channels with
/// backpressure between them. The same Job runs bounded inputs ("data at
/// rest": Run() returns when every source is exhausted) and unbounded
/// inputs ("data in motion": run until Cancel()) -- the paper's single
/// pipelined engine for both.
class Job {
 public:
  ~Job();

  /// Builds the physical plan (chaining, channel wiring, restore) from a
  /// validated logical graph.
  static Result<std::unique_ptr<Job>> Create(const LogicalGraph& graph,
                                             JobOptions options = JobOptions());

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Launches all task threads.
  Status Start();
  /// Blocks until every task finished (end of bounded input, after
  /// Cancel(), or after a task failure). Returns the first task failure --
  /// an error Status returned by user code or an exception it threw -- or
  /// Ok on a clean run. A failure cancels the whole job.
  Status AwaitCompletion();
  /// Start + AwaitCompletion.
  Status Run();
  /// Asks sources to stop; the pipeline drains and completes.
  void Cancel();

  /// Checkpointing (asynchronous barrier snapshotting).
  uint64_t TriggerCheckpoint();
  bool AwaitCheckpoint(uint64_t id, double timeout_seconds = 30.0);
  uint64_t LatestCompletedCheckpoint() const;
  SnapshotStore* snapshot_store() const { return snapshot_store_.get(); }

  /// Number of physical tasks after chaining.
  size_t num_tasks() const;
  /// Human-readable physical plan (one line per task).
  std::string PlanDescription() const;
  /// Job-scoped metrics (task record counters etc.).
  MetricsRegistry* metrics() { return &metrics_; }
  /// The worker pool executing this job (timer-only in thread-per-task
  /// mode). Valid for the job's lifetime.
  const WorkStealingPool* scheduler() const { return pool_.get(); }

  /// First task failure so far (Ok if none). Thread-safe.
  Status FirstFailure() const;

 private:
  Job() = default;

  friend class internal::Task;

  /// Called from a failing task thread: records the first failure and
  /// cancels the job so the pipeline drains.
  void ReportTaskFailure(const std::string& task_name, const Status& status);

  /// Called by a task's final morsel (scheduler mode): decrements the live
  /// count and wakes AwaitCompletion.
  void TaskFinished();
  /// Periodic checkpoint trigger (pool timer thread, both modes).
  void CheckpointTick();
  /// Copies scheduler counters/gauges into the job metrics registry.
  void ExportSchedulerMetrics();

  JobOptions options_;
  std::shared_ptr<SnapshotStore> snapshot_store_;
  std::unique_ptr<CheckpointCoordinator> coordinator_;
  std::vector<std::unique_ptr<internal::Task>> tasks_;
  // Legacy thread-per-task mode only: one dedicated thread per task is
  // the point of the equivalence baseline.
  // lint:allow(raw-thread): thread-per-task equivalence baseline
  std::vector<std::thread> threads_;
  // The scheduler (worker pool + timer facility). In thread-per-task mode
  // the pool is timer-only: no workers, but the checkpoint cadence still
  // runs on its timer thread. Declared after tasks_ so it is destroyed
  // (workers joined) first.
  std::unique_ptr<WorkStealingPool> pool_;
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
  mutable Mutex failure_mu_;
  Status first_failure_ STREAMLINE_GUARDED_BY(failure_mu_);
  // Scheduler-mode completion tracking: tasks finish on pool workers, so
  // AwaitCompletion blocks on a condvar instead of joining threads.
  mutable Mutex done_mu_;
  CondVar done_cv_;
  size_t live_tasks_ STREAMLINE_GUARDED_BY(done_mu_) = 0;
  uint64_t checkpoint_timer_id_ = 0;
  uint64_t source_poll_timer_id_ = 0;
  // Checkpoint-tick state (timer thread only).
  uint64_t last_cp_id_ = 0;
  std::chrono::steady_clock::time_point last_cp_time_;
  std::chrono::steady_clock::time_point start_time_;
  MetricsRegistry metrics_;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_EXECUTOR_H_
