#include "dataflow/operators.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace streamline {

// ---------------------------------------------------------------------------
// KeyedReduceOperator

void KeyedReduceOperator::ProcessRecord(int, Record&& record,
                                        Collector* out) {
  const Value key = key_(record);
  auto it = state_.find(key);
  if (it == state_.end()) {
    it = state_.emplace(key, std::move(record)).first;
  } else {
    Record reduced = reduce_(it->second, record);
    reduced.timestamp = std::max(it->second.timestamp, record.timestamp);
    it->second = std::move(reduced);
  }
  out->Emit(Record(it->second));
}

Status KeyedReduceOperator::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(state_.size());
  for (const auto& [key, record] : state_) {
    w->WriteValue(key);
    w->WriteRecord(record);
  }
  return Status::Ok();
}

Status KeyedReduceOperator::RestoreState(BinaryReader* r) {
  auto n = r->ReadU64();
  if (!n.ok()) return n.status();
  state_.clear();
  for (uint64_t i = 0; i < *n; ++i) {
    auto key = r->ReadValue();
    if (!key.ok()) return key.status();
    auto record = r->ReadRecord();
    if (!record.ok()) return record.status();
    state_.emplace(std::move(*key), std::move(*record));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// IntervalJoinOperator

IntervalJoinOperator::IntervalJoinOperator(std::string name,
                                           KeySelector left_key,
                                           KeySelector right_key,
                                           Duration lower, Duration upper)
    : name_(std::move(name)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      lower_(lower),
      upper_(upper) {
  STREAMLINE_CHECK_LE(lower_, upper_);
}

void IntervalJoinOperator::EmitJoined(const Record& l, const Record& r,
                                      Collector* out) const {
  Record joined;
  joined.timestamp = std::max(l.timestamp, r.timestamp);
  joined.fields.reserve(l.fields.size() + r.fields.size());
  joined.fields.insert(joined.fields.end(), l.fields.begin(), l.fields.end());
  joined.fields.insert(joined.fields.end(), r.fields.begin(), r.fields.end());
  out->Emit(std::move(joined));
}

void IntervalJoinOperator::ProcessRecord(int input, Record&& record,
                                         Collector* out) {
  if (input == 0) {
    const Value key = left_key_(record);
    KeyBuffers& buf = state_[key];
    // Match against buffered right records: r.ts - l.ts in [lower, upper].
    for (const Record& r : buf.right) {
      const Duration d = r.timestamp - record.timestamp;
      if (d >= lower_ && d <= upper_) EmitJoined(record, r, out);
    }
    buf.left.push_back(std::move(record));
  } else {
    const Value key = right_key_(record);
    KeyBuffers& buf = state_[key];
    for (const Record& l : buf.left) {
      const Duration d = record.timestamp - l.timestamp;
      if (d >= lower_ && d <= upper_) EmitJoined(l, record, out);
    }
    buf.right.push_back(std::move(record));
  }
}

void IntervalJoinOperator::ProcessWatermark(Timestamp wm, Collector*) {
  // A left record l can still match future rights r (r.ts >= wm) iff
  // l.ts + upper >= wm; a right record r can still match future lefts iff
  // r.ts - lower >= wm. Evict the rest.
  for (auto it = state_.begin(); it != state_.end();) {
    KeyBuffers& buf = it->second;
    while (!buf.left.empty() &&
           (wm != kMaxTimestamp && buf.left.front().timestamp + upper_ < wm)) {
      buf.left.pop_front();
    }
    while (!buf.right.empty() &&
           (wm != kMaxTimestamp &&
            buf.right.front().timestamp - lower_ < wm)) {
      buf.right.pop_front();
    }
    if (wm == kMaxTimestamp || (buf.left.empty() && buf.right.empty())) {
      it = state_.erase(it);
    } else {
      ++it;
    }
  }
}

Status IntervalJoinOperator::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(state_.size());
  for (const auto& [key, buf] : state_) {
    w->WriteValue(key);
    w->WriteU64(buf.left.size());
    for (const Record& r : buf.left) w->WriteRecord(r);
    w->WriteU64(buf.right.size());
    for (const Record& r : buf.right) w->WriteRecord(r);
  }
  return Status::Ok();
}

Status IntervalJoinOperator::RestoreState(BinaryReader* r) {
  auto n = r->ReadU64();
  if (!n.ok()) return n.status();
  state_.clear();
  for (uint64_t i = 0; i < *n; ++i) {
    auto key = r->ReadValue();
    if (!key.ok()) return key.status();
    KeyBuffers buf;
    auto nl = r->ReadU64();
    if (!nl.ok()) return nl.status();
    for (uint64_t k = 0; k < *nl; ++k) {
      auto rec = r->ReadRecord();
      if (!rec.ok()) return rec.status();
      buf.left.push_back(std::move(*rec));
    }
    auto nr = r->ReadU64();
    if (!nr.ok()) return nr.status();
    for (uint64_t k = 0; k < *nr; ++k) {
      auto rec = r->ReadRecord();
      if (!rec.ok()) return rec.status();
      buf.right.push_back(std::move(*rec));
    }
    state_.emplace(std::move(*key), std::move(buf));
  }
  return Status::Ok();
}

size_t IntervalJoinOperator::buffered() const {
  size_t total = 0;
  for (const auto& [key, buf] : state_) {
    total += buf.left.size() + buf.right.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// PrintSink (lives here to keep sink.h header-only aside from this)

Status PrintSink::Invoke(const Record& record) {
  std::lock_guard<std::mutex> lock(mu_);
  std::printf("%s%s\n", prefix_.c_str(), record.ToString().c_str());
  return Status::Ok();
}

}  // namespace streamline
