#include "dataflow/operators.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace streamline {

// ---------------------------------------------------------------------------
// KeyedReduceOperator

namespace {

/// Binds the keyed-state gauges for one operator subtask (no-ops when the
/// job exposes no registry).
struct StateGauges {
  static void Bind(const OperatorContext& ctx, const std::string& name,
                   Gauge** load, Gauge** probe, Gauge** keys) {
    if (ctx.metrics == nullptr) return;
    const std::string prefix =
        "op." + name + "." + std::to_string(ctx.subtask_index) + ".state.";
    *load = ctx.metrics->GetGauge(prefix + "load_factor");
    *probe = ctx.metrics->GetGauge(prefix + "max_probe");
    *keys = ctx.metrics->GetGauge(prefix + "keys");
  }

  template <typename Map>
  static void Update(const Map& m, Gauge* load, Gauge* probe, Gauge* keys) {
    if (load == nullptr) return;
    load->Set(m.load_factor());
    probe->Set(static_cast<double>(m.max_probe_length()));
    keys->Set(static_cast<double>(m.size()));
  }
};

}  // namespace

Status KeyedReduceOperator::Open(const OperatorContext& ctx) {
  StateGauges::Bind(ctx, name_, &load_gauge_, &probe_gauge_, &keys_gauge_);
  return Status::Ok();
}

void KeyedReduceOperator::ProcessRecord(int, Record&& record,
                                        Collector* out) {
  // Hash-once: the shuffle stamped the key hash; records driven in directly
  // (tests) fall back to hashing here.
  const Value key = key_(record);
  const uint64_t hash =
      record.has_key_hash() ? record.key_hash : KeyHashOf(key);
  changelog_.Upsert(key, hash);
  auto [entry, inserted] = state_.TryEmplace(hash, key, std::move(record));
  if (!inserted) {
    Record reduced = reduce_(entry->second, record);
    reduced.timestamp = std::max(entry->second.timestamp, record.timestamp);
    entry->second = std::move(reduced);
  }
  out->Emit(Record(entry->second));
}

void KeyedReduceOperator::ProcessBatch(int, std::vector<Record>&& batch,
                                       Collector* out) {
  if (batch.empty()) return;
  // Start a fresh cache generation; stale slots read as empty, so clearing
  // between batches costs nothing.
  if (++cache_gen_ == 0) {
    cache_.assign(cache_.size(), CacheSlot{});
    cache_gen_ = 1;
  }
  // Keep the cache a power of two at most half full so linear probing
  // terminates (at most batch.size() distinct keys are inserted per
  // generation).
  size_t want = 16;
  while (want < batch.size() * 2) want <<= 1;
  if (cache_.size() < want) cache_.assign(want, CacheSlot{});
  const size_t mask = cache_.size() - 1;

  batch_out_.clear();
  batch_out_.reserve(batch.size());
  for (Record& record : batch) {
    const Value key = key_(record);
    const uint64_t hash =
        record.has_key_hash() ? record.key_hash : KeyHashOf(key);
    changelog_.Upsert(key, hash);
    std::pair<Value, Record>* entry = nullptr;
    size_t slot = hash & mask;
    for (;;) {
      CacheSlot& s = cache_[slot];
      if (s.gen != cache_gen_) {
        // First time this key is seen in the batch: one real map probe,
        // then memoize the dense entry index (stable -- no erases here).
        auto [e, inserted] = state_.TryEmplace(hash, key, std::move(record));
        s = CacheSlot{hash, static_cast<uint32_t>(e - state_.begin()),
                      cache_gen_};
        if (inserted) {
          // The record itself became the accumulator; nothing to reduce.
          batch_out_.push_back(Record(e->second));
        } else {
          entry = e;
        }
        break;
      }
      // Verify the key on a hash match: distinct keys can share a hash.
      if (s.hash == hash && state_.begin()[s.index].first == key) {
        entry = state_.begin() + s.index;
        break;
      }
      slot = (slot + 1) & mask;
    }
    if (entry != nullptr) {
      Record reduced = reduce_(entry->second, record);
      reduced.timestamp = std::max(entry->second.timestamp, record.timestamp);
      entry->second = std::move(reduced);
      batch_out_.push_back(Record(entry->second));
    }
  }
  batch.clear();
  out->EmitBatch(std::move(batch_out_));
}

void KeyedReduceOperator::ProcessWatermark(Timestamp, Collector*) {
  StateGauges::Update(state_, load_gauge_, probe_gauge_, keys_gauge_);
}

Status KeyedReduceOperator::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(state_.size());
  for (const auto& [key, record] : state_) {
    w->WriteValue(key);
    w->WriteRecord(record);
  }
  return Status::Ok();
}

Status KeyedReduceOperator::RestoreState(BinaryReader* r) {
  auto n = r->ReadU64();
  if (!n.ok()) return n.status();
  state_.clear();
  state_.Reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto key = r->ReadValue();
    if (!key.ok()) return key.status();
    auto record = r->ReadRecord();
    if (!record.ok()) return record.status();
    state_.TryEmplace(KeyHashOf(*key), *key, std::move(*record));
  }
  return Status::Ok();
}

Status KeyedReduceOperator::SnapshotDelta(ChangelogSink* sink) {
  for (const KeyedChangelog::Event& ev : changelog_.events()) {
    BinaryWriter w;
    if (ev.op == KeyedChangelog::Op::kErase) {
      w.WriteU8(kDeltaEraseTag);
      w.WriteValue(ev.key);
    } else {
      w.WriteU8(kDeltaUpsertTag);
      w.WriteValue(ev.key);
      const Record* rec = state_.Find(ev.hash, ev.key);
      w.WriteU8(rec != nullptr ? 1 : 0);
      if (rec != nullptr) w.WriteRecord(*rec);
    }
    STREAMLINE_RETURN_IF_ERROR(sink->Append(w.Release()));
  }
  changelog_.Clear();
  return Status::Ok();
}

Status KeyedReduceOperator::ApplyDelta(BinaryReader* r) {
  auto tag = r->ReadU8();
  if (!tag.ok()) return tag.status();
  auto key = r->ReadValue();
  if (!key.ok()) return key.status();
  const uint64_t hash = KeyHashOf(*key);
  if (*tag == kDeltaEraseTag) {
    state_.Erase(hash, *key);
    return Status::Ok();
  }
  if (*tag != kDeltaUpsertTag) {
    return Status::Internal("bad changelog tag " + std::to_string(*tag) +
                            " in '" + name_ + "'");
  }
  auto present = r->ReadU8();
  if (!present.ok()) return present.status();
  auto [entry, inserted] = state_.TryEmplace(hash, *key);
  (void)inserted;
  if (*present != 0) {
    auto rec = r->ReadRecord();
    if (!rec.ok()) return rec.status();
    entry->second = std::move(*rec);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// IntervalJoinOperator

IntervalJoinOperator::IntervalJoinOperator(std::string name,
                                           KeySelector left_key,
                                           KeySelector right_key,
                                           Duration lower, Duration upper)
    : name_(std::move(name)),
      left_key_(std::move(left_key)),
      right_key_(std::move(right_key)),
      lower_(lower),
      upper_(upper) {
  STREAMLINE_CHECK_LE(lower_, upper_);
}

Status IntervalJoinOperator::Open(const OperatorContext& ctx) {
  StateGauges::Bind(ctx, name_, &load_gauge_, &probe_gauge_, &keys_gauge_);
  return Status::Ok();
}

void IntervalJoinOperator::EmitJoined(const Record& l, const Record& r,
                                      Collector* out) const {
  Record joined;
  joined.timestamp = std::max(l.timestamp, r.timestamp);
  joined.fields.reserve(l.fields.size() + r.fields.size());
  joined.fields.insert(joined.fields.end(), l.fields.begin(), l.fields.end());
  joined.fields.insert(joined.fields.end(), r.fields.begin(), r.fields.end());
  out->Emit(std::move(joined));
}

void IntervalJoinOperator::ProcessRecord(int input, Record&& record,
                                         Collector* out) {
  if (input == 0) {
    const Value key = left_key_(record);
    const uint64_t hash =
        record.has_key_hash() ? record.key_hash : KeyHashOf(key);
    changelog_.Upsert(key, hash);
    KeyBuffers& buf = state_.TryEmplace(hash, key).first->second;
    // Match against buffered right records: r.ts - l.ts in [lower, upper].
    for (const Record& r : buf.right) {
      const Duration d = r.timestamp - record.timestamp;
      if (d >= lower_ && d <= upper_) EmitJoined(record, r, out);
    }
    buf.left.push_back(std::move(record));
  } else {
    const Value key = right_key_(record);
    const uint64_t hash =
        record.has_key_hash() ? record.key_hash : KeyHashOf(key);
    changelog_.Upsert(key, hash);
    KeyBuffers& buf = state_.TryEmplace(hash, key).first->second;
    for (const Record& l : buf.left) {
      const Duration d = record.timestamp - l.timestamp;
      if (d >= lower_ && d <= upper_) EmitJoined(l, record, out);
    }
    buf.right.push_back(std::move(record));
  }
}

void IntervalJoinOperator::ProcessWatermark(Timestamp wm, Collector*) {
  // A left record l can still match future rights r (r.ts >= wm) iff
  // l.ts + upper >= wm; a right record r can still match future lefts iff
  // r.ts - lower >= wm. Evict the rest.
  for (auto it = state_.begin(); it != state_.end();) {
    KeyBuffers& buf = it->second;
    const size_t before = buf.left.size() + buf.right.size();
    while (!buf.left.empty() &&
           (wm != kMaxTimestamp && buf.left.front().timestamp + upper_ < wm)) {
      buf.left.pop_front();
    }
    while (!buf.right.empty() &&
           (wm != kMaxTimestamp &&
            buf.right.front().timestamp - lower_ < wm)) {
      buf.right.pop_front();
    }
    if (wm == kMaxTimestamp || (buf.left.empty() && buf.right.empty())) {
      // Changelog events mirror the structural op sequence: the erase is
      // recorded at the position it happens, in iteration order.
      if (changelog_.enabled()) {
        changelog_.Erase(it->first, KeyHashOf(it->first));
      }
      it = state_.Erase(it);
    } else {
      if (changelog_.enabled() &&
          buf.left.size() + buf.right.size() != before) {
        changelog_.Upsert(it->first, KeyHashOf(it->first));
      }
      ++it;
    }
  }
  StateGauges::Update(state_, load_gauge_, probe_gauge_, keys_gauge_);
}

Status IntervalJoinOperator::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(state_.size());
  for (const auto& [key, buf] : state_) {
    w->WriteValue(key);
    w->WriteU64(buf.left.size());
    for (const Record& r : buf.left) w->WriteRecord(r);
    w->WriteU64(buf.right.size());
    for (const Record& r : buf.right) w->WriteRecord(r);
  }
  return Status::Ok();
}

Status IntervalJoinOperator::RestoreState(BinaryReader* r) {
  auto n = r->ReadU64();
  if (!n.ok()) return n.status();
  state_.clear();
  state_.Reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto key = r->ReadValue();
    if (!key.ok()) return key.status();
    KeyBuffers buf;
    auto nl = r->ReadU64();
    if (!nl.ok()) return nl.status();
    for (uint64_t k = 0; k < *nl; ++k) {
      auto rec = r->ReadRecord();
      if (!rec.ok()) return rec.status();
      buf.left.push_back(std::move(*rec));
    }
    auto nr = r->ReadU64();
    if (!nr.ok()) return nr.status();
    for (uint64_t k = 0; k < *nr; ++k) {
      auto rec = r->ReadRecord();
      if (!rec.ok()) return rec.status();
      buf.right.push_back(std::move(*rec));
    }
    state_.TryEmplace(KeyHashOf(*key), *key, std::move(buf));
  }
  return Status::Ok();
}

Status IntervalJoinOperator::SnapshotDelta(ChangelogSink* sink) {
  for (const KeyedChangelog::Event& ev : changelog_.events()) {
    BinaryWriter w;
    if (ev.op == KeyedChangelog::Op::kErase) {
      w.WriteU8(kDeltaEraseTag);
      w.WriteValue(ev.key);
    } else {
      w.WriteU8(kDeltaUpsertTag);
      w.WriteValue(ev.key);
      const KeyBuffers* buf = state_.Find(ev.hash, ev.key);
      w.WriteU8(buf != nullptr ? 1 : 0);
      if (buf != nullptr) {
        w.WriteU64(buf->left.size());
        for (const Record& rec : buf->left) w.WriteRecord(rec);
        w.WriteU64(buf->right.size());
        for (const Record& rec : buf->right) w.WriteRecord(rec);
      }
    }
    STREAMLINE_RETURN_IF_ERROR(sink->Append(w.Release()));
  }
  changelog_.Clear();
  return Status::Ok();
}

Status IntervalJoinOperator::ApplyDelta(BinaryReader* r) {
  auto tag = r->ReadU8();
  if (!tag.ok()) return tag.status();
  auto key = r->ReadValue();
  if (!key.ok()) return key.status();
  const uint64_t hash = KeyHashOf(*key);
  if (*tag == kDeltaEraseTag) {
    state_.Erase(hash, *key);
    return Status::Ok();
  }
  if (*tag != kDeltaUpsertTag) {
    return Status::Internal("bad changelog tag " + std::to_string(*tag) +
                            " in '" + name_ + "'");
  }
  auto present = r->ReadU8();
  if (!present.ok()) return present.status();
  KeyBuffers& buf = state_.TryEmplace(hash, *key).first->second;
  buf.left.clear();
  buf.right.clear();
  if (*present != 0) {
    auto nl = r->ReadU64();
    if (!nl.ok()) return nl.status();
    for (uint64_t k = 0; k < *nl; ++k) {
      auto rec = r->ReadRecord();
      if (!rec.ok()) return rec.status();
      buf.left.push_back(std::move(*rec));
    }
    auto nr = r->ReadU64();
    if (!nr.ok()) return nr.status();
    for (uint64_t k = 0; k < *nr; ++k) {
      auto rec = r->ReadRecord();
      if (!rec.ok()) return rec.status();
      buf.right.push_back(std::move(*rec));
    }
  }
  return Status::Ok();
}

size_t IntervalJoinOperator::buffered() const {
  size_t total = 0;
  for (const auto& [key, buf] : state_) {
    total += buf.left.size() + buf.right.size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// PrintSink (lives here to keep sink.h header-only aside from this)

Status PrintSink::Invoke(const Record& record) {
  MutexLock lock(&mu_);
  std::printf("%s%s\n", prefix_.c_str(), record.ToString().c_str());
  return Status::Ok();
}

}  // namespace streamline
