#ifndef STREAMLINE_DATAFLOW_GRAPH_H_
#define STREAMLINE_DATAFLOW_GRAPH_H_

#include <string>
#include <vector>

#include "dataflow/operator.h"
#include "dataflow/source.h"

namespace streamline {

/// Semantic traits the API layer attaches to a node. The factories are
/// opaque closures, so properties the plan validator needs -- does this
/// source emit watermarks, does this operator depend on event time or hold
/// keyed state -- must be declared here by whoever builds the graph.
/// Consumed by GraphValidator (graph_validator.h) at job-submission time.
struct NodeTraits {
  /// Sources only: the source advances event time. False for watermark-less
  /// sources (watermark_every == 0), which starve event-time operators.
  bool emits_watermarks = true;
  /// Operator output depends on event-time progress (windows, interval
  /// joins): it must sit downstream of watermark-emitting sources.
  bool requires_watermarks = false;
  /// Operator holds per-key state: its inputs must be key-partitioned
  /// (a kHash edge, possibly relayed over forward edges).
  bool keyed_state = false;
  /// Terminal consumer; used for sink-specific reachability diagnostics.
  bool is_sink = false;
};

/// One vertex of the logical dataflow graph: a source or an operator with a
/// parallelism degree.
struct GraphNode {
  int id = -1;
  std::string name;
  int parallelism = 1;
  bool is_source = false;
  OperatorFactory op_factory;      // non-sources
  SourceFactory source_factory;    // sources
  NodeTraits traits;
};

/// Directed edge with a partitioning scheme. `input_ordinal` distinguishes
/// the two inputs of binary operators (joins, unions).
struct GraphEdge {
  int from = -1;
  int to = -1;
  int input_ordinal = 0;
  PartitionScheme scheme = PartitionScheme::kForward;
  KeySelector key;  // required for kHash
  /// When >= 0 the hash key is exactly record field `key_field`; the router
  /// hashes that field in place instead of materializing a Value copy
  /// through `key`. Purely an optimization -- `key` stays authoritative.
  int key_field = -1;
  /// Hash-only routing for kHash edges with a generic (non-field) key.
  /// Connect() derives a default from `key` when none is supplied; callers
  /// with a computed key can pass their own to avoid the per-record Value
  /// copy the default pays. Unused when key_field >= 0.
  KeyHashFn key_hash;
};

/// The logical job description the uniform API builds and the executor
/// turns into a physical plan. Immutable after Validate().
class LogicalGraph {
 public:
  /// Adds a source vertex; returns its node id.
  int AddSource(std::string name, int parallelism, SourceFactory factory,
                NodeTraits traits = {});

  /// Adds an operator vertex; returns its node id.
  int AddOperator(std::string name, int parallelism, OperatorFactory factory,
                  NodeTraits traits = {});

  /// Connects `from` -> `to`. kHash requires `key`. kForward requires equal
  /// parallelism on both endpoints. Pass `key_field` >= 0 when the key is a
  /// plain record field so the router can hash it without a Value copy;
  /// for computed keys, `key_hash` (a hash-only selector consistent with
  /// `key`) serves the same purpose.
  Status Connect(int from, int to, PartitionScheme scheme,
                 KeySelector key = nullptr, int input_ordinal = 0,
                 int key_field = -1, KeyHashFn key_hash = nullptr);

  /// Structural checks: every non-source has at least one input, sources
  /// have none, the graph is acyclic, and edge constraints hold.
  Status Validate() const;

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const std::vector<GraphEdge>& edges() const { return edges_; }
  const GraphNode& node(int id) const { return nodes_[id]; }

  /// Escape hatches for plan rewriting and for validator tests that need
  /// graph shapes Connect() itself refuses to build (GraphValidator is the
  /// defense-in-depth layer behind those Connect-time checks). Regular
  /// pipeline construction should never need these.
  GraphNode& mutable_node(int id) { return nodes_[id]; }
  GraphEdge& mutable_edge(size_t index) { return edges_[index]; }

  std::vector<const GraphEdge*> InEdges(int id) const;
  std::vector<const GraphEdge*> OutEdges(int id) const;

  /// Node ids in topological order (Validate() must have passed).
  std::vector<int> TopologicalOrder() const;

 private:
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_GRAPH_H_
