#include "dataflow/snapshot.h"

#include <chrono>

namespace streamline {

void SnapshotStore::Put(uint64_t checkpoint_id, const std::string& key,
                        std::string bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  data_[checkpoint_id][key] = std::move(bytes);
}

Result<std::string> SnapshotStore::Get(uint64_t checkpoint_id,
                                       const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto cp = data_.find(checkpoint_id);
  if (cp == data_.end()) {
    return Status::NotFound("no checkpoint " + std::to_string(checkpoint_id));
  }
  auto it = cp->second.find(key);
  if (it == cp->second.end()) {
    return Status::NotFound("checkpoint " + std::to_string(checkpoint_id) +
                            " has no state for '" + key + "'");
  }
  return it->second;
}

bool SnapshotStore::Has(uint64_t checkpoint_id, const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto cp = data_.find(checkpoint_id);
  return cp != data_.end() && cp->second.count(key) > 0;
}

size_t SnapshotStore::NumEntries(uint64_t checkpoint_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto cp = data_.find(checkpoint_id);
  return cp == data_.end() ? 0 : cp->second.size();
}

std::vector<uint64_t> SnapshotStore::CheckpointIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(data_.size());
  for (const auto& [id, entries] : data_) ids.push_back(id);
  return ids;
}

size_t SnapshotStore::TotalBytes(uint64_t checkpoint_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto cp = data_.find(checkpoint_id);
  if (cp == data_.end()) return 0;
  size_t total = 0;
  for (const auto& [key, bytes] : cp->second) total += bytes.size();
  return total;
}

void CheckpointCoordinator::RegisterSourceTrigger(
    std::function<void(uint64_t)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  source_triggers_.push_back(std::move(fn));
}

uint64_t CheckpointCoordinator::Trigger() {
  std::vector<std::function<void(uint64_t)>> triggers;
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    acks_[id] = 0;
    triggers = source_triggers_;
  }
  for (auto& fn : triggers) fn(id);
  return id;
}

void CheckpointCoordinator::AckTask(uint64_t checkpoint_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int acks = ++acks_[checkpoint_id];
    if (acks >= expected_acks_ && checkpoint_id > latest_completed_) {
      latest_completed_ = checkpoint_id;
    }
  }
  complete_cv_.notify_all();
}

bool CheckpointCoordinator::AwaitCompletion(uint64_t id,
                                            double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  return complete_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [&] { return acks_[id] >= expected_acks_; });
}

bool CheckpointCoordinator::IsComplete(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = acks_.find(id);
  return it != acks_.end() && it->second >= expected_acks_;
}

uint64_t CheckpointCoordinator::latest_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_completed_;
}

uint64_t CheckpointCoordinator::last_triggered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

}  // namespace streamline
