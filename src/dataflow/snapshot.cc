#include "dataflow/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "common/logging.h"
#include "common/serde.h"

namespace streamline {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// SnapshotStore (in-memory)

void SnapshotStore::Put(uint64_t checkpoint_id, const std::string& key,
                        std::string bytes) {
  MutexLock lock(&mu_);
  data_[checkpoint_id][key] = std::move(bytes);
  max_id_ = std::max(max_id_, checkpoint_id);
}

Result<std::string> SnapshotStore::Get(uint64_t checkpoint_id,
                                       const std::string& key) const {
  MutexLock lock(&mu_);
  auto cp = data_.find(checkpoint_id);
  if (cp == data_.end()) {
    return Status::NotFound("no checkpoint " + std::to_string(checkpoint_id));
  }
  auto it = cp->second.find(key);
  if (it == cp->second.end()) {
    return Status::NotFound("checkpoint " + std::to_string(checkpoint_id) +
                            " has no state for '" + key + "'");
  }
  return it->second;
}

bool SnapshotStore::Has(uint64_t checkpoint_id, const std::string& key) const {
  MutexLock lock(&mu_);
  auto cp = data_.find(checkpoint_id);
  return cp != data_.end() && cp->second.count(key) > 0;
}

size_t SnapshotStore::NumEntries(uint64_t checkpoint_id) const {
  MutexLock lock(&mu_);
  auto cp = data_.find(checkpoint_id);
  return cp == data_.end() ? 0 : cp->second.size();
}

std::vector<uint64_t> SnapshotStore::CheckpointIds() const {
  MutexLock lock(&mu_);
  std::vector<uint64_t> ids;
  ids.reserve(data_.size());
  for (const auto& [id, entries] : data_) ids.push_back(id);
  return ids;
}

size_t SnapshotStore::TotalBytes(uint64_t checkpoint_id) const {
  MutexLock lock(&mu_);
  auto cp = data_.find(checkpoint_id);
  if (cp == data_.end()) return 0;
  size_t total = 0;
  for (const auto& [key, bytes] : cp->second) total += bytes.size();
  return total;
}

void SnapshotStore::MarkComplete(uint64_t checkpoint_id) {
  MutexLock lock(&mu_);
  completed_.insert(checkpoint_id);
  max_id_ = std::max(max_id_, checkpoint_id);
  std::vector<uint64_t> all;
  all.reserve(data_.size());
  for (const auto& [id, entries] : data_) all.push_back(id);
  const std::vector<uint64_t> completed(completed_.begin(), completed_.end());
  for (uint64_t id : PruneList(all, completed, retain_last_)) {
    data_.erase(id);
    completed_.erase(id);
  }
}

uint64_t SnapshotStore::LatestComplete() const {
  MutexLock lock(&mu_);
  return completed_.empty() ? 0 : *completed_.rbegin();
}

std::vector<uint64_t> SnapshotStore::CompletedCheckpoints() const {
  MutexLock lock(&mu_);
  return std::vector<uint64_t>(completed_.begin(), completed_.end());
}

uint64_t SnapshotStore::MaxCheckpointId() const {
  MutexLock lock(&mu_);
  return max_id_;
}

void SnapshotStore::Drop(uint64_t checkpoint_id) {
  MutexLock lock(&mu_);
  data_.erase(checkpoint_id);
  completed_.erase(checkpoint_id);
}

void SnapshotStore::RetainLast(size_t n) {
  MutexLock lock(&mu_);
  retain_last_ = std::max<size_t>(n, 1);
}

size_t SnapshotStore::retain_last() const {
  MutexLock lock(&mu_);
  return retain_last_;
}

std::vector<uint64_t> SnapshotStore::PruneList(
    const std::vector<uint64_t>& all, const std::vector<uint64_t>& completed,
    size_t retain) {
  if (completed.size() <= retain) return {};
  // Everything older than the oldest retained completed checkpoint goes --
  // including incomplete (abandoned) checkpoints below the cutoff. Newer
  // incomplete ones may still be in flight and are kept.
  const uint64_t cutoff = completed[completed.size() - retain];
  std::vector<uint64_t> prune;
  for (uint64_t id : all) {
    if (id < cutoff) prune.push_back(id);
  }
  for (uint64_t id : completed) {
    if (id < cutoff && !std::binary_search(all.begin(), all.end(), id)) {
      prune.push_back(id);
    }
  }
  return prune;
}

// ---------------------------------------------------------------------------
// FileSnapshotStore

namespace {

// Entry file layout: magic, CRC32(payload), payload length, payload.
constexpr uint32_t kEntryMagic = 0x534C5353;  // "SLSS"
constexpr char kCompleteMarker[] = "COMPLETE";

std::string SanitizeKey(const std::string& key) {
  std::string out = key;
  for (char& c : out) {
    if (c == '/' || c == '\\') c = '_';
  }
  return out;
}

Result<uint64_t> ParseCheckpointDirName(const std::string& name) {
  if (name.rfind("chk", 0) != 0 || name.size() <= 3) {
    return Status::InvalidArgument("not a checkpoint dir");
  }
  char* end = nullptr;
  const unsigned long long id = std::strtoull(name.c_str() + 3, &end, 10);
  if (end == name.c_str() + 3 || *end != '\0' || id == 0) {
    return Status::InvalidArgument("not a checkpoint dir");
  }
  return static_cast<uint64_t>(id);
}

}  // namespace

FileSnapshotStore::FileSnapshotStore(std::string root_dir)
    : root_(std::move(root_dir)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  STREAMLINE_CHECK(!ec) << "cannot create snapshot dir '" << root_
                        << "': " << ec.message();
  MutexLock lock(&mu_);
  for (uint64_t id : ScanIdsLocked()) max_id_ = std::max(max_id_, id);
}

std::string FileSnapshotStore::CheckpointDir(uint64_t id) const {
  return (fs::path(root_) / ("chk" + std::to_string(id))).string();
}

std::string FileSnapshotStore::EntryPath(uint64_t id,
                                         const std::string& key) const {
  return (fs::path(CheckpointDir(id)) / SanitizeKey(key)).string();
}

Status FileSnapshotStore::WriteFileAtomic(const std::string& dir,
                                          const std::string& file,
                                          const std::string& bytes) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create '" + dir + "': " + ec.message());
  }
  const std::string tmp = (fs::path(dir) / (".tmp." + file)).string();
  const std::string final_path = (fs::path(dir) / file).string();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("cannot open '" + tmp + "' for writing");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      return Status::Internal("write error on '" + tmp + "'");
    }
  }
  // Same-directory rename: atomic on POSIX, so a reader sees either the
  // whole entry or none of it.
  fs::rename(tmp, final_path, ec);
  if (ec) {
    return Status::Internal("rename '" + tmp + "' -> '" + final_path +
                            "' failed: " + ec.message());
  }
  return Status::Ok();
}

void FileSnapshotStore::Put(uint64_t checkpoint_id, const std::string& key,
                            std::string bytes) {
  BinaryWriter header;
  header.WriteU64(kEntryMagic);
  header.WriteU64(Crc32(bytes));
  header.WriteU64(bytes.size());
  std::string blob = header.Release();
  blob += bytes;
  const Status st =
      WriteFileAtomic(CheckpointDir(checkpoint_id), SanitizeKey(key), blob);
  if (!st.ok()) {
    LOG_ERROR << "snapshot put(" << checkpoint_id << ", '" << key
              << "') failed: " << st.ToString();
    return;
  }
  MutexLock lock(&mu_);
  max_id_ = std::max(max_id_, checkpoint_id);
}

Result<std::string> FileSnapshotStore::Get(uint64_t checkpoint_id,
                                           const std::string& key) const {
  const std::string path = EntryPath(checkpoint_id, key);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("checkpoint " + std::to_string(checkpoint_id) +
                            " has no state for '" + key + "'");
  }
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  BinaryReader r(blob);
  auto magic = r.ReadU64();
  auto crc = r.ReadU64();
  auto size = r.ReadU64();
  if (!magic.ok() || !crc.ok() || !size.ok() || *magic != kEntryMagic) {
    return Status::Internal("corrupt snapshot entry '" + path +
                            "': bad header");
  }
  if (r.remaining() != *size) {
    return Status::Internal("corrupt snapshot entry '" + path +
                            "': truncated payload (" +
                            std::to_string(r.remaining()) + " of " +
                            std::to_string(*size) + " bytes)");
  }
  std::string payload = blob.substr(blob.size() - r.remaining());
  if (Crc32(payload) != static_cast<uint32_t>(*crc)) {
    return Status::Internal("corrupt snapshot entry '" + path +
                            "': CRC mismatch");
  }
  return payload;
}

bool FileSnapshotStore::Has(uint64_t checkpoint_id,
                            const std::string& key) const {
  std::error_code ec;
  return fs::exists(EntryPath(checkpoint_id, key), ec);
}

size_t FileSnapshotStore::NumEntries(uint64_t checkpoint_id) const {
  std::error_code ec;
  size_t n = 0;
  for (const auto& e : fs::directory_iterator(CheckpointDir(checkpoint_id),
                                              ec)) {
    const std::string name = e.path().filename().string();
    if (name == kCompleteMarker || name.rfind(".tmp.", 0) == 0) continue;
    ++n;
  }
  return ec ? 0 : n;
}

std::vector<uint64_t> FileSnapshotStore::CheckpointIds() const {
  MutexLock lock(&mu_);
  return ScanIdsLocked();
}

std::vector<uint64_t> FileSnapshotStore::ScanIdsLocked() const {
  std::vector<uint64_t> ids;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(root_, ec)) {
    auto id = ParseCheckpointDirName(e.path().filename().string());
    if (id.ok()) ids.push_back(*id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<uint64_t> FileSnapshotStore::ScanCompletedLocked() const {
  std::vector<uint64_t> ids;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(root_, ec)) {
    auto id = ParseCheckpointDirName(e.path().filename().string());
    if (!id.ok()) continue;
    std::error_code ec2;
    if (fs::exists(e.path() / kCompleteMarker, ec2)) ids.push_back(*id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t FileSnapshotStore::TotalBytes(uint64_t checkpoint_id) const {
  std::error_code ec;
  size_t total = 0;
  for (const auto& e : fs::directory_iterator(CheckpointDir(checkpoint_id),
                                              ec)) {
    const std::string name = e.path().filename().string();
    if (name == kCompleteMarker || name.rfind(".tmp.", 0) == 0) continue;
    std::error_code ec2;
    const auto size = fs::file_size(e.path(), ec2);
    if (!ec2) total += static_cast<size_t>(size);
  }
  return ec ? 0 : total;
}

void FileSnapshotStore::MarkComplete(uint64_t checkpoint_id) {
  const Status st = WriteFileAtomic(CheckpointDir(checkpoint_id),
                                    kCompleteMarker, "1");
  if (!st.ok()) {
    LOG_ERROR << "cannot mark checkpoint " << checkpoint_id
              << " complete: " << st.ToString();
    return;
  }
  const size_t retain = retain_last();  // locks mu_; must precede the guard
  std::vector<uint64_t> prune;
  {
    MutexLock lock(&mu_);
    max_id_ = std::max(max_id_, checkpoint_id);
    prune = PruneList(ScanIdsLocked(), ScanCompletedLocked(), retain);
  }
  for (uint64_t id : prune) Drop(id);
}

uint64_t FileSnapshotStore::LatestComplete() const {
  MutexLock lock(&mu_);
  const std::vector<uint64_t> done = ScanCompletedLocked();
  return done.empty() ? 0 : done.back();
}

std::vector<uint64_t> FileSnapshotStore::CompletedCheckpoints() const {
  MutexLock lock(&mu_);
  return ScanCompletedLocked();
}

uint64_t FileSnapshotStore::MaxCheckpointId() const {
  MutexLock lock(&mu_);
  uint64_t max_id = max_id_;
  for (uint64_t id : ScanIdsLocked()) max_id = std::max(max_id, id);
  return max_id;
}

void FileSnapshotStore::Drop(uint64_t checkpoint_id) {
  std::error_code ec;
  fs::remove_all(CheckpointDir(checkpoint_id), ec);
}

// ---------------------------------------------------------------------------
// CheckpointCoordinator

void CheckpointCoordinator::RegisterSourceTrigger(
    std::function<void(uint64_t)> fn) {
  MutexLock lock(&mu_);
  source_triggers_.push_back(std::move(fn));
}

uint64_t CheckpointCoordinator::Trigger() {
  std::vector<std::function<void(uint64_t)>> triggers;
  uint64_t id;
  {
    MutexLock lock(&mu_);
    id = next_id_++;
    acks_[id] = 0;
    triggers = source_triggers_;
  }
  for (auto& fn : triggers) fn(id);
  return id;
}

void CheckpointCoordinator::AckTask(uint64_t checkpoint_id) {
  bool completed = false;
  {
    MutexLock lock(&mu_);
    const int acks = ++acks_[checkpoint_id];
    if (acks == expected_acks_) {
      completed = true;
      if (checkpoint_id > latest_completed_) latest_completed_ = checkpoint_id;
    }
  }
  if (completed && store_ != nullptr) {
    // Outside the coordinator lock: MarkComplete may prune old checkpoints
    // (file deletion on durable stores).
    store_->MarkComplete(checkpoint_id);
  }
  complete_cv_.NotifyAll();
}

bool CheckpointCoordinator::AwaitCompletion(uint64_t id,
                                            double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  MutexLock lock(&mu_);
  while (acks_[id] < expected_acks_) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    complete_cv_.WaitFor(&mu_, deadline - now);
  }
  return true;
}

bool CheckpointCoordinator::IsComplete(uint64_t id) const {
  MutexLock lock(&mu_);
  auto it = acks_.find(id);
  return it != acks_.end() && it->second >= expected_acks_;
}

uint64_t CheckpointCoordinator::latest_completed() const {
  MutexLock lock(&mu_);
  return latest_completed_;
}

uint64_t CheckpointCoordinator::last_triggered() const {
  MutexLock lock(&mu_);
  return next_id_ - 1;
}

}  // namespace streamline
