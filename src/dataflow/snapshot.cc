#include "dataflow/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <tuple>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/serde.h"

namespace streamline {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// SnapshotStore (in-memory)

Status SnapshotStore::Put(uint64_t checkpoint_id, const std::string& key,
                          std::string bytes) {
  MutexLock lock(&mu_);
  data_[checkpoint_id][key] = std::move(bytes);
  max_id_ = std::max(max_id_, checkpoint_id);
  return Status::Ok();
}

Result<std::string> SnapshotStore::Get(uint64_t checkpoint_id,
                                       const std::string& key) const {
  MutexLock lock(&mu_);
  auto cp = data_.find(checkpoint_id);
  if (cp == data_.end()) {
    return Status::NotFound("no checkpoint " + std::to_string(checkpoint_id));
  }
  auto it = cp->second.find(key);
  if (it == cp->second.end()) {
    return Status::NotFound("checkpoint " + std::to_string(checkpoint_id) +
                            " has no state for '" + key + "'");
  }
  return it->second;
}

bool SnapshotStore::Has(uint64_t checkpoint_id, const std::string& key) const {
  MutexLock lock(&mu_);
  auto cp = data_.find(checkpoint_id);
  return cp != data_.end() && cp->second.count(key) > 0;
}

size_t SnapshotStore::NumEntries(uint64_t checkpoint_id) const {
  MutexLock lock(&mu_);
  auto cp = data_.find(checkpoint_id);
  return cp == data_.end() ? 0 : cp->second.size();
}

std::vector<uint64_t> SnapshotStore::CheckpointIds() const {
  MutexLock lock(&mu_);
  std::vector<uint64_t> ids;
  ids.reserve(data_.size());
  for (const auto& [id, entries] : data_) ids.push_back(id);
  return ids;
}

size_t SnapshotStore::TotalBytes(uint64_t checkpoint_id) const {
  MutexLock lock(&mu_);
  auto cp = data_.find(checkpoint_id);
  if (cp == data_.end()) return 0;
  size_t total = 0;
  for (const auto& [key, bytes] : cp->second) total += bytes.size();
  return total;
}

void SnapshotStore::MarkComplete(uint64_t checkpoint_id) {
  MutexLock lock(&mu_);
  completed_.insert(checkpoint_id);
  max_id_ = std::max(max_id_, checkpoint_id);
  std::vector<uint64_t> all;
  all.reserve(data_.size());
  for (const auto& [id, entries] : data_) all.push_back(id);
  const std::vector<uint64_t> completed(completed_.begin(), completed_.end());
  for (uint64_t id : PruneList(all, completed, retain_last_)) {
    data_.erase(id);
    completed_.erase(id);
  }
}

uint64_t SnapshotStore::LatestComplete() const {
  MutexLock lock(&mu_);
  return completed_.empty() ? 0 : *completed_.rbegin();
}

std::vector<uint64_t> SnapshotStore::CompletedCheckpoints() const {
  MutexLock lock(&mu_);
  return std::vector<uint64_t>(completed_.begin(), completed_.end());
}

uint64_t SnapshotStore::MaxCheckpointId() const {
  MutexLock lock(&mu_);
  return max_id_;
}

void SnapshotStore::Drop(uint64_t checkpoint_id) {
  MutexLock lock(&mu_);
  data_.erase(checkpoint_id);
  completed_.erase(checkpoint_id);
}

void SnapshotStore::RetainLast(size_t n) {
  MutexLock lock(&mu_);
  retain_last_ = std::max<size_t>(n, 1);
}

size_t SnapshotStore::retain_last() const {
  MutexLock lock(&mu_);
  return retain_last_;
}

std::vector<uint64_t> SnapshotStore::PruneList(
    const std::vector<uint64_t>& all, const std::vector<uint64_t>& completed,
    size_t retain) {
  if (completed.size() <= retain) return {};
  // Everything older than the oldest retained completed checkpoint goes --
  // including incomplete (abandoned) checkpoints below the cutoff. Newer
  // incomplete ones may still be in flight and are kept.
  const uint64_t cutoff = completed[completed.size() - retain];
  std::vector<uint64_t> prune;
  for (uint64_t id : all) {
    if (id < cutoff) prune.push_back(id);
  }
  for (uint64_t id : completed) {
    if (id < cutoff && !std::binary_search(all.begin(), all.end(), id)) {
      prune.push_back(id);
    }
  }
  return prune;
}

// ---------------------------------------------------------------------------
// FileSnapshotStore

namespace {

// Entry file layout: magic, CRC32(payload), payload length, payload.
constexpr uint32_t kEntryMagic = 0x534C5353;  // "SLSS"
constexpr char kCompleteMarker[] = "COMPLETE";

std::string SanitizeKey(const std::string& key) {
  std::string out = key;
  for (char& c : out) {
    if (c == '/' || c == '\\') c = '_';
  }
  return out;
}

Result<uint64_t> ParseCheckpointDirName(const std::string& name) {
  if (name.rfind("chk", 0) != 0 || name.size() <= 3) {
    return Status::InvalidArgument("not a checkpoint dir");
  }
  char* end = nullptr;
  const unsigned long long id = std::strtoull(name.c_str() + 3, &end, 10);
  if (end == name.c_str() + 3 || *end != '\0' || id == 0) {
    return Status::InvalidArgument("not a checkpoint dir");
  }
  return static_cast<uint64_t>(id);
}

/// Parses the numeric suffix of a wal file name ("base<id>" / "seg<id>").
Result<uint64_t> ParseWalFileName(const std::string& name,
                                  const char* prefix) {
  const size_t plen = std::strlen(prefix);
  if (name.rfind(prefix, 0) != 0 || name.size() <= plen) {
    return Status::InvalidArgument("not a wal file");
  }
  char* end = nullptr;
  const unsigned long long id = std::strtoull(name.c_str() + plen, &end, 10);
  if (end == name.c_str() + plen || *end != '\0' || id == 0) {
    return Status::InvalidArgument("not a wal file");
  }
  return static_cast<uint64_t>(id);
}

/// Frames entry bytes with [magic][crc][len] -- the integrity envelope of
/// every durable file the store writes (entries, bases, manifests).
std::string WrapEntry(const std::string& bytes) {
  BinaryWriter header;
  header.WriteU64(kEntryMagic);
  header.WriteU64(Crc32(bytes));
  header.WriteU64(bytes.size());
  std::string blob = header.Release();
  blob += bytes;
  return blob;
}

/// Verifies the envelope and returns the payload; `path` names the file in
/// corruption reports.
Result<std::string> UnwrapEntry(const std::string& blob,
                                const std::string& path) {
  BinaryReader r(blob);
  auto magic = r.ReadU64();
  auto crc = r.ReadU64();
  auto size = r.ReadU64();
  if (!magic.ok() || !crc.ok() || !size.ok() || *magic != kEntryMagic) {
    return Status::Internal("corrupt snapshot entry '" + path +
                            "': bad header");
  }
  if (r.remaining() != *size) {
    return Status::Internal("corrupt snapshot entry '" + path +
                            "': truncated payload (" +
                            std::to_string(r.remaining()) + " of " +
                            std::to_string(*size) + " bytes)");
  }
  std::string payload = blob.substr(blob.size() - r.remaining());
  if (Crc32(payload) != static_cast<uint32_t>(*crc)) {
    return Status::Internal("corrupt snapshot entry '" + path +
                            "': CRC mismatch");
  }
  return payload;
}

Result<std::string> ReadEntryFile(const std::string& path,
                                  const std::string& missing_msg) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound(missing_msg);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return UnwrapEntry(blob, path);
}

}  // namespace

FileSnapshotStore::FileSnapshotStore(std::string root_dir)
    : root_(std::move(root_dir)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  STREAMLINE_CHECK(!ec) << "cannot create snapshot dir '" << root_
                        << "': " << ec.message();
  MutexLock lock(&mu_);
  for (uint64_t id : ScanIdsLocked()) max_id_ = std::max(max_id_, id);
}

std::string FileSnapshotStore::CheckpointDir(uint64_t id) const {
  return (fs::path(root_) / ("chk" + std::to_string(id))).string();
}

std::string FileSnapshotStore::EntryPath(uint64_t id,
                                         const std::string& key) const {
  return (fs::path(CheckpointDir(id)) / SanitizeKey(key)).string();
}

void FileSnapshotStore::NoteCheckpointId(uint64_t id) {
  MutexLock lock(&mu_);
  max_id_ = std::max(max_id_, id);
}

Status FileSnapshotStore::Put(uint64_t checkpoint_id, const std::string& key,
                              std::string bytes) {
  // WriteFileDurable (fsync + atomic rename) is the sanctioned write path;
  // a failure -- ENOSPC, short write -- surfaces with the failing path and
  // fails the task's checkpoint instead of being logged and forgotten.
  STREAMLINE_RETURN_IF_ERROR(WriteFileDurable(CheckpointDir(checkpoint_id),
                                              SanitizeKey(key),
                                              WrapEntry(bytes)));
  NoteCheckpointId(checkpoint_id);
  return Status::Ok();
}

Result<std::string> FileSnapshotStore::Get(uint64_t checkpoint_id,
                                           const std::string& key) const {
  return ReadEntryFile(EntryPath(checkpoint_id, key),
                       "checkpoint " + std::to_string(checkpoint_id) +
                           " has no state for '" + key + "'");
}

bool FileSnapshotStore::Has(uint64_t checkpoint_id,
                            const std::string& key) const {
  std::error_code ec;
  return fs::exists(EntryPath(checkpoint_id, key), ec);
}

size_t FileSnapshotStore::NumEntries(uint64_t checkpoint_id) const {
  std::error_code ec;
  size_t n = 0;
  for (const auto& e : fs::directory_iterator(CheckpointDir(checkpoint_id),
                                              ec)) {
    const std::string name = e.path().filename().string();
    if (name == kCompleteMarker || name.rfind(".tmp.", 0) == 0) continue;
    ++n;
  }
  return ec ? 0 : n;
}

std::vector<uint64_t> FileSnapshotStore::CheckpointIds() const {
  MutexLock lock(&mu_);
  return ScanIdsLocked();
}

std::vector<uint64_t> FileSnapshotStore::ScanIdsLocked() const {
  std::vector<uint64_t> ids;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(root_, ec)) {
    auto id = ParseCheckpointDirName(e.path().filename().string());
    if (id.ok()) ids.push_back(*id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<uint64_t> FileSnapshotStore::ScanCompletedLocked() const {
  std::vector<uint64_t> ids;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(root_, ec)) {
    auto id = ParseCheckpointDirName(e.path().filename().string());
    if (!id.ok()) continue;
    std::error_code ec2;
    if (fs::exists(e.path() / kCompleteMarker, ec2)) ids.push_back(*id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t FileSnapshotStore::TotalBytes(uint64_t checkpoint_id) const {
  std::error_code ec;
  size_t total = 0;
  for (const auto& e : fs::directory_iterator(CheckpointDir(checkpoint_id),
                                              ec)) {
    const std::string name = e.path().filename().string();
    if (name == kCompleteMarker || name.rfind(".tmp.", 0) == 0) continue;
    std::error_code ec2;
    const auto size = fs::file_size(e.path(), ec2);
    if (!ec2) total += static_cast<size_t>(size);
  }
  return ec ? 0 : total;
}

void FileSnapshotStore::MarkComplete(uint64_t checkpoint_id) {
  const Status st =
      WriteFileDurable(CheckpointDir(checkpoint_id), kCompleteMarker, "1");
  if (!st.ok()) {
    LOG_ERROR << "cannot mark checkpoint " << checkpoint_id
              << " complete: " << st.ToString();
    return;
  }
  const size_t retain = retain_last();  // locks mu_; must precede the guard
  std::vector<uint64_t> prune;
  {
    MutexLock lock(&mu_);
    max_id_ = std::max(max_id_, checkpoint_id);
    prune = PruneList(ScanIdsLocked(), ScanCompletedLocked(), retain);
  }
  for (uint64_t id : prune) Drop(id);
}

uint64_t FileSnapshotStore::LatestComplete() const {
  MutexLock lock(&mu_);
  const std::vector<uint64_t> done = ScanCompletedLocked();
  return done.empty() ? 0 : done.back();
}

std::vector<uint64_t> FileSnapshotStore::CompletedCheckpoints() const {
  MutexLock lock(&mu_);
  return ScanCompletedLocked();
}

uint64_t FileSnapshotStore::MaxCheckpointId() const {
  MutexLock lock(&mu_);
  uint64_t max_id = max_id_;
  for (uint64_t id : ScanIdsLocked()) max_id = std::max(max_id, id);
  return max_id;
}

void FileSnapshotStore::Drop(uint64_t checkpoint_id) {
  std::error_code ec;
  fs::remove_all(CheckpointDir(checkpoint_id), ec);
}

// ---------------------------------------------------------------------------
// IncrementalSnapshotStore

namespace {
constexpr char kManifestSuffix[] = ".manifest";
}  // namespace

IncrementalSnapshotStore::IncrementalSnapshotStore(std::string root_dir)
    : FileSnapshotStore(std::move(root_dir)) {}

void IncrementalSnapshotStore::SetFaultInjector(FaultInjector* injector) {
  MutexLock lock(&inc_mu_);
  injector_ = injector;
}

void IncrementalSnapshotStore::SetCompactionThreshold(size_t bytes) {
  MutexLock lock(&inc_mu_);
  compaction_threshold_ = std::max<size_t>(bytes, 1);
}

size_t IncrementalSnapshotStore::compaction_threshold() const {
  MutexLock lock(&inc_mu_);
  return compaction_threshold_;
}

void IncrementalSnapshotStore::CountBytes(uint64_t checkpoint_id,
                                          size_t bytes) {
  MutexLock lock(&inc_mu_);
  bytes_written_[checkpoint_id] += bytes;
  // Accounting is for live benchmarks/tests; cap the map so a long-running
  // job does not grow it unboundedly.
  while (bytes_written_.size() > 64) bytes_written_.erase(bytes_written_.begin());
}

size_t IncrementalSnapshotStore::BytesWrittenFor(uint64_t checkpoint_id) const {
  MutexLock lock(&inc_mu_);
  auto it = bytes_written_.find(checkpoint_id);
  return it == bytes_written_.end() ? 0 : it->second;
}

std::string IncrementalSnapshotStore::GroupDir(const std::string& key) const {
  return (fs::path(root_dir()) / "wal" / SanitizeKey(key)).string();
}

std::string IncrementalSnapshotStore::BasePath(const std::string& key,
                                               uint64_t id) const {
  return (fs::path(GroupDir(key)) / ("base" + std::to_string(id))).string();
}

std::string IncrementalSnapshotStore::SegmentPath(const std::string& key,
                                                  uint64_t id) const {
  return (fs::path(GroupDir(key)) / ("seg" + std::to_string(id))).string();
}

std::string IncrementalSnapshotStore::ManifestPath(
    uint64_t id, const std::string& key) const {
  return (fs::path(CheckpointDir(id)) / (SanitizeKey(key) + kManifestSuffix))
      .string();
}

Result<IncrementalSnapshotStore::Manifest>
IncrementalSnapshotStore::ReadManifest(uint64_t id,
                                       const std::string& key) const {
  const std::string path = ManifestPath(id, key);
  auto payload = ReadEntryFile(
      path, "checkpoint " + std::to_string(id) + " has no manifest for '" +
                key + "'");
  if (!payload.ok()) return payload.status();
  BinaryReader r(*payload);
  Manifest m;
  auto base = r.ReadU64();
  auto n = r.ReadU64();
  if (!base.ok() || !n.ok()) {
    return Status::Internal("corrupt manifest '" + path + "'");
  }
  m.base = *base;
  for (uint64_t i = 0; i < *n; ++i) {
    auto seg = r.ReadU64();
    auto bytes = r.ReadU64();
    if (!seg.ok() || !bytes.ok()) {
      return Status::Internal("corrupt manifest '" + path + "'");
    }
    m.deltas.emplace_back(*seg, *bytes);
  }
  return m;
}

Status IncrementalSnapshotStore::PublishManifest(uint64_t id,
                                                 const std::string& key,
                                                 const Manifest& m) {
  {
    MutexLock lock(&inc_mu_);
    if (injector_ != nullptr) {
      STREAMLINE_RETURN_IF_ERROR(injector_->OnHit("manifest:publish"));
    }
  }
  BinaryWriter w;
  w.WriteU64(m.base);
  w.WriteU64(m.deltas.size());
  for (const auto& [seg, bytes] : m.deltas) {
    w.WriteU64(seg);
    w.WriteU64(bytes);
  }
  const std::string blob = WrapEntry(w.Release());
  STREAMLINE_RETURN_IF_ERROR(WriteFileDurable(
      CheckpointDir(id), SanitizeKey(key) + kManifestSuffix, blob));
  CountBytes(id, blob.size());
  NoteCheckpointId(id);
  return Status::Ok();
}

bool IncrementalSnapshotStore::NeedsBase(const std::string& key,
                                         uint64_t parent_checkpoint) const {
  if (parent_checkpoint == 0) return true;
  auto m = ReadManifest(parent_checkpoint, key);
  if (!m.ok()) return true;  // chain broken (pruned or never incremental)
  size_t delta_bytes = 0;
  for (const auto& [seg, bytes] : m->deltas) delta_bytes += bytes;
  return delta_bytes >= compaction_threshold();
}

Status IncrementalSnapshotStore::PutBase(uint64_t checkpoint_id,
                                         const std::string& key,
                                         std::string bytes) {
  {
    MutexLock lock(&inc_mu_);
    if (injector_ != nullptr) {
      STREAMLINE_RETURN_IF_ERROR(injector_->OnHit("wal:compact"));
    }
  }
  const std::string blob = WrapEntry(bytes);
  STREAMLINE_RETURN_IF_ERROR(WriteFileDurable(
      GroupDir(key), "base" + std::to_string(checkpoint_id), blob));
  CountBytes(checkpoint_id, blob.size());
  Manifest m;
  m.base = checkpoint_id;
  return PublishManifest(checkpoint_id, key, m);
}

Result<std::unique_ptr<WalWriter>> IncrementalSnapshotStore::OpenDeltaSegment(
    uint64_t checkpoint_id, const std::string& key) {
  const std::string path = SegmentPath(key, checkpoint_id);
  // A crashed incarnation that never published chk<id> may have left a
  // stale segment under a now-reused id; the new barrier owns the name.
  std::error_code ec;
  fs::remove(path, ec);
  FaultInjector* injector;
  {
    MutexLock lock(&inc_mu_);
    injector = injector_;
  }
  return WalWriter::Open(path, injector);
}

Status IncrementalSnapshotStore::SealDeltas(uint64_t checkpoint_id,
                                            const std::string& key,
                                            uint64_t parent_checkpoint,
                                            std::unique_ptr<WalWriter> segment) {
  if (parent_checkpoint == 0) {
    return Status::FailedPrecondition(
        "delta seal for '" + key +
        "' without a parent chain (a base was required)");
  }
  auto parent = ReadManifest(parent_checkpoint, key);
  if (!parent.ok()) {
    return Status(parent.status().code(),
                  "cannot chain checkpoint " + std::to_string(checkpoint_id) +
                      " for '" + key + "': " + parent.status().message());
  }
  Manifest m = std::move(*parent);
  if (segment != nullptr && segment->records_appended() > 0) {
    {
      MutexLock lock(&inc_mu_);
      if (injector_ != nullptr) {
        STREAMLINE_RETURN_IF_ERROR(injector_->OnHit("wal:seal"));
      }
    }
    const uint64_t bytes = segment->bytes_appended();
    STREAMLINE_RETURN_IF_ERROR(segment->Close());
    CountBytes(checkpoint_id, bytes);
    m.deltas.emplace_back(checkpoint_id, bytes);
  } else if (segment != nullptr) {
    // Nothing changed since the last barrier: drop the empty segment and
    // republish the parent's manifest verbatim under the new checkpoint.
    const std::string path = segment->path();
    segment.reset();
    std::error_code ec;
    fs::remove(path, ec);
  }
  return PublishManifest(checkpoint_id, key, m);
}

bool IncrementalSnapshotStore::HasIncremental(uint64_t checkpoint_id,
                                              const std::string& key) const {
  std::error_code ec;
  return fs::exists(ManifestPath(checkpoint_id, key), ec);
}

Result<IncrementalSnapshotStore::IncrementalSnapshot>
IncrementalSnapshotStore::GetIncremental(uint64_t checkpoint_id,
                                         const std::string& key) const {
  auto m = ReadManifest(checkpoint_id, key);
  if (!m.ok()) return m.status();
  IncrementalSnapshot out;
  const std::string base_path = BasePath(key, m->base);
  auto base = ReadEntryFile(base_path, "missing base '" + base_path + "'");
  if (!base.ok()) return base.status();
  out.base = std::move(*base);
  out.deltas.reserve(m->deltas.size());
  for (const auto& [seg, bytes] : m->deltas) {
    auto records = ReadSealedWal(SegmentPath(key, seg));
    if (!records.ok()) return records.status();
    out.deltas.push_back(std::move(*records));
  }
  return out;
}

Status IncrementalSnapshotStore::Put(uint64_t checkpoint_id,
                                     const std::string& key,
                                     std::string bytes) {
  const size_t n = bytes.size();
  STREAMLINE_RETURN_IF_ERROR(
      FileSnapshotStore::Put(checkpoint_id, key, std::move(bytes)));
  CountBytes(checkpoint_id, n);
  return Status::Ok();
}

void IncrementalSnapshotStore::Drop(uint64_t checkpoint_id) {
  FileSnapshotStore::Drop(checkpoint_id);
  // Manifest-aware wal GC: a wal file survives as long as any live
  // checkpoint's manifest references it, or it may belong to a barrier
  // still in flight (id >= the oldest surviving checkpoint).
  uint64_t min_live = 0;
  std::set<std::string> referenced;  // absolute paths
  std::error_code ec;
  for (const auto& dir : fs::directory_iterator(root_dir(), ec)) {
    auto id = ParseCheckpointDirName(dir.path().filename().string());
    if (!id.ok()) continue;
    if (min_live == 0 || *id < min_live) min_live = *id;
    std::error_code ec2;
    for (const auto& e : fs::directory_iterator(dir.path(), ec2)) {
      const std::string name = e.path().filename().string();
      if (name.size() <= std::strlen(kManifestSuffix) ||
          name.rfind(kManifestSuffix) !=
              name.size() - std::strlen(kManifestSuffix)) {
        continue;
      }
      const std::string key =
          name.substr(0, name.size() - std::strlen(kManifestSuffix));
      auto m = ReadManifest(*id, key);
      if (!m.ok()) continue;
      referenced.insert(BasePath(key, m->base));
      for (const auto& [seg, bytes] : m->deltas) {
        referenced.insert(SegmentPath(key, seg));
      }
    }
  }
  if (min_live == 0) return;  // no live checkpoints: nothing provably dead
  const fs::path wal_root = fs::path(root_dir()) / "wal";
  std::error_code ec3;
  for (const auto& group : fs::directory_iterator(wal_root, ec3)) {
    std::error_code ec4;
    for (const auto& e : fs::directory_iterator(group.path(), ec4)) {
      const std::string name = e.path().filename().string();
      auto id = ParseWalFileName(name, name.rfind("base", 0) == 0 ? "base"
                                                                  : "seg");
      if (!id.ok() || *id >= min_live) continue;
      if (referenced.count(e.path().string()) > 0) continue;
      std::error_code ec5;
      fs::remove(e.path(), ec5);
    }
  }
}

// ---------------------------------------------------------------------------
// CheckpointCoordinator

void CheckpointCoordinator::RegisterSourceTrigger(
    std::function<void(uint64_t)> fn) {
  MutexLock lock(&mu_);
  source_triggers_.push_back(std::move(fn));
}

uint64_t CheckpointCoordinator::Trigger() {
  std::vector<std::function<void(uint64_t)>> triggers;
  uint64_t id;
  {
    MutexLock lock(&mu_);
    id = next_id_++;
    acks_[id] = 0;
    triggers = source_triggers_;
  }
  for (auto& fn : triggers) fn(id);
  return id;
}

void CheckpointCoordinator::AckTask(uint64_t checkpoint_id) {
  bool completed = false;
  {
    MutexLock lock(&mu_);
    const int acks = ++acks_[checkpoint_id];
    if (acks == expected_acks_) {
      completed = true;
      if (checkpoint_id > latest_completed_) latest_completed_ = checkpoint_id;
    }
  }
  if (completed && store_ != nullptr) {
    // Outside the coordinator lock: MarkComplete may prune old checkpoints
    // (file deletion on durable stores).
    store_->MarkComplete(checkpoint_id);
  }
  complete_cv_.NotifyAll();
}

bool CheckpointCoordinator::AwaitCompletion(uint64_t id,
                                            double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  MutexLock lock(&mu_);
  while (acks_[id] < expected_acks_) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    complete_cv_.WaitFor(&mu_, deadline - now);
  }
  return true;
}

bool CheckpointCoordinator::IsComplete(uint64_t id) const {
  MutexLock lock(&mu_);
  auto it = acks_.find(id);
  return it != acks_.end() && it->second >= expected_acks_;
}

uint64_t CheckpointCoordinator::latest_completed() const {
  MutexLock lock(&mu_);
  return latest_completed_;
}

uint64_t CheckpointCoordinator::last_triggered() const {
  MutexLock lock(&mu_);
  return next_id_ - 1;
}

}  // namespace streamline
