#ifndef STREAMLINE_DATAFLOW_OPERATOR_H_
#define STREAMLINE_DATAFLOW_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/record.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/time.h"

namespace streamline {

/// Receives the records an operator emits. The runtime supplies the
/// implementation (chaining into the next operator or routing into output
/// channels).
class Collector {
 public:
  virtual ~Collector() = default;
  /// Takes the record by rvalue reference so one materialized record
  /// threads through a whole operator chain without a move per hop; the
  /// callee takes ownership. Pass `Record(r)` to emit a copy.
  virtual void Emit(Record&& record) = 0;
};

/// Runtime information handed to an operator at Open time.
struct OperatorContext {
  int subtask_index = 0;
  int parallelism = 1;
  std::string task_name;
  MetricsRegistry* metrics = nullptr;
};

/// A (possibly stateful) dataflow operator. One instance runs per subtask,
/// single-threaded; the runtime serializes all calls, so implementations
/// need no internal locking.
///
/// Lifecycle: Open -> [RestoreState] -> {ProcessRecord | ProcessWatermark |
/// SnapshotState}* -> OnEndOfInput -> Close.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(const OperatorContext& ctx) {
    (void)ctx;
    return Status::Ok();
  }

  /// Handles one record from input `input` (0 for single-input operators).
  virtual void ProcessRecord(int input, Record&& record, Collector* out) = 0;

  /// The combined input watermark advanced to `wm`: no future record on any
  /// input has ts < wm. Event-time operators fire windows/timers here. The
  /// runtime forwards the watermark downstream afterwards.
  virtual void ProcessWatermark(Timestamp wm, Collector* out) {
    (void)wm;
    (void)out;
  }

  /// All inputs reached end-of-stream (after a final kMaxTimestamp
  /// watermark was processed); flush remaining buffered output.
  virtual void OnEndOfInput(Collector* out) { (void)out; }

  /// Checkpoint hook: serialize all mutable state. Called at a consistent
  /// point (all input barriers aligned).
  virtual Status SnapshotState(BinaryWriter* w) const {
    (void)w;
    return Status::Ok();
  }

  /// Restore hook; the operator was just Open()ed and has seen no data.
  virtual Status RestoreState(BinaryReader* r) {
    (void)r;
    return Status::Ok();
  }

  /// Called right after SnapshotState for checkpoint `id` (barriers
  /// aligned); lets sinks record exactly-once output offsets.
  virtual void OnBarrier(uint64_t id) { (void)id; }

  virtual Status Close() { return Status::Ok(); }

  virtual std::string Name() const = 0;
};

/// Creates a fresh operator instance per subtask.
using OperatorFactory = std::function<std::unique_ptr<Operator>()>;

/// Extracts the partition/state key from a record.
using KeySelector = std::function<Value(const Record&)>;

/// Hash-only key selector: computes KeyHashOf(key of `record`) without
/// materializing the key Value. The router prefers this over calling the
/// KeySelector (which returns a Value copy per record) when routing hash
/// edges whose key is not a plain field. Must agree with the edge's
/// KeySelector: for every record, the result equals KeyHashOf(key(record)).
using KeyHashFn = std::function<uint64_t(const Record&)>;

/// How an edge distributes records across downstream subtasks.
enum class PartitionScheme : uint8_t {
  kForward,    // subtask i -> subtask i (enables operator chaining)
  kHash,       // by key hash (requires a KeySelector)
  kRebalance,  // round-robin
  kBroadcast,  // every record to every subtask
};

std::string_view PartitionSchemeToString(PartitionScheme scheme);

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_OPERATOR_H_
