#ifndef STREAMLINE_DATAFLOW_OPERATOR_H_
#define STREAMLINE_DATAFLOW_OPERATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/record.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/time.h"

namespace streamline {

/// Receives the records an operator emits. The runtime supplies the
/// implementation (chaining into the next operator or routing into output
/// channels).
class Collector {
 public:
  virtual ~Collector() = default;
  /// Takes the record by rvalue reference so one materialized record
  /// threads through a whole operator chain without a move per hop; the
  /// callee takes ownership. Pass `Record(r)` to emit a copy.
  virtual void Emit(Record&& record) = 0;

  /// Emits every record of `batch` in order, amortizing the virtual call
  /// over the whole batch. The callee drains the records and leaves the
  /// vector empty but with its capacity intact, so callers reuse the same
  /// buffer batch after batch (the data plane's zero-allocation steady
  /// state depends on this). Equivalent to moving each record into Emit().
  virtual void EmitBatch(std::vector<Record>&& batch) {
    for (Record& record : batch) Emit(std::move(record));
    batch.clear();
  }
};

/// Appends emitted records to a caller-owned vector. Used by batch
/// implementations of expanding operators (FlatMap) to gather per-record
/// emits into one output batch, and by tests driving operators directly.
class VectorCollector : public Collector {
 public:
  explicit VectorCollector(std::vector<Record>* out) : out_(out) {}
  void Emit(Record&& record) override { out_->push_back(std::move(record)); }

 private:
  std::vector<Record>* out_;
};

/// Receives the framed changelog records an operator's SnapshotDelta
/// emits; the runtime binds it to the task's write-ahead log segment for
/// the current checkpoint. One Append = one self-contained delta record,
/// replayed later by one ApplyDelta call.
class ChangelogSink {
 public:
  virtual ~ChangelogSink() = default;
  [[nodiscard]] virtual Status Append(std::string_view record) = 0;
};

/// Runtime information handed to an operator at Open time.
struct OperatorContext {
  int subtask_index = 0;
  int parallelism = 1;
  std::string task_name;
  MetricsRegistry* metrics = nullptr;
};

/// A (possibly stateful) dataflow operator. One instance runs per subtask,
/// single-threaded; the runtime serializes all calls, so implementations
/// need no internal locking.
///
/// Lifecycle: Open -> [RestoreState] -> {ProcessRecord | ProcessWatermark |
/// SnapshotState}* -> OnEndOfInput -> Close.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(const OperatorContext& ctx) {
    (void)ctx;
    return Status::Ok();
  }

  /// Handles one record from input `input` (0 for single-input operators).
  virtual void ProcessRecord(int input, Record&& record, Collector* out) = 0;

  /// Handles a whole batch of records from input `input`, in order. The
  /// batch-at-a-time hot path: the runtime delivers entire channel events
  /// here so a chain hop costs one virtual call per batch instead of one
  /// per record. Semantically identical to calling ProcessRecord for each
  /// record in order -- the default does exactly that, so existing
  /// operators keep working unchanged; hot operators override it with
  /// tight non-virtual loops.
  ///
  /// Contract: records are consumed; the implementation leaves `batch`
  /// empty (capacity preserved where possible) so the caller can recycle
  /// the buffer. Control events never appear inside a batch -- watermarks
  /// and barriers still arrive via their dedicated hooks, strictly ordered
  /// against the batches around them.
  virtual void ProcessBatch(int input, std::vector<Record>&& batch,
                            Collector* out) {
    // lint:allow(virtual-per-record-loop): default fallback for operators
    // without a batch implementation
    for (Record& record : batch) ProcessRecord(input, std::move(record), out);
    batch.clear();
  }

  /// The combined input watermark advanced to `wm`: no future record on any
  /// input has ts < wm. Event-time operators fire windows/timers here. The
  /// runtime forwards the watermark downstream afterwards.
  virtual void ProcessWatermark(Timestamp wm, Collector* out) {
    (void)wm;
    (void)out;
  }

  /// All inputs reached end-of-stream (after a final kMaxTimestamp
  /// watermark was processed); flush remaining buffered output.
  virtual void OnEndOfInput(Collector* out) { (void)out; }

  /// Checkpoint hook: serialize all mutable state. Called at a consistent
  /// point (all input barriers aligned).
  virtual Status SnapshotState(BinaryWriter* w) const {
    (void)w;
    return Status::Ok();
  }

  /// Restore hook; the operator was just Open()ed and has seen no data.
  virtual Status RestoreState(BinaryReader* r) {
    (void)r;
    return Status::Ok();
  }

  /// Called right after SnapshotState for checkpoint `id` (barriers
  /// aligned); lets sinks record exactly-once output offsets.
  virtual void OnBarrier(uint64_t id) { (void)id; }

  // -- Incremental (changelog-based) checkpoints ---------------------------
  //
  // Keyed operators can checkpoint O(delta) instead of O(state): between
  // barriers they record which keys mutated, SnapshotDelta serializes only
  // those keys as framed changelog records, and recovery replays the
  // records (in order) on top of a full base snapshot via ApplyDelta. The
  // contract that makes recovery *byte-identical* to a full-snapshot
  // restore: delta records must reproduce the exact structural operation
  // sequence (inserts and erases) the live run performed on the keyed map,
  // so the restored map's entry order -- which SnapshotState serializes --
  // matches the live map's.

  /// True when the operator implements the delta hooks below.
  virtual bool SupportsIncrementalState() const { return false; }

  /// Turns on changelog recording. Called once, after any RestoreState,
  /// before the first record; without it the delta hooks stay inert.
  virtual void EnableIncrementalState() {}

  /// Serializes the state mutated since the last barrier as one or more
  /// changelog records into `sink`, then clears the recorded delta. Only
  /// called with recording enabled, at an aligned barrier.
  virtual Status SnapshotDelta(ChangelogSink* sink) {
    (void)sink;
    return Status::Unimplemented("operator has no incremental state");
  }

  /// Replays one changelog record (one former SnapshotDelta Append) into
  /// live state. Called during recovery after RestoreState of the base.
  virtual Status ApplyDelta(BinaryReader* r) {
    (void)r;
    return Status::Unimplemented("operator has no incremental state");
  }

  /// Drops the recorded delta without serializing it -- used right after a
  /// full base snapshot, which already captured everything.
  virtual void ResetDelta() {}

  virtual Status Close() { return Status::Ok(); }

  virtual std::string Name() const = 0;
};

/// Creates a fresh operator instance per subtask.
using OperatorFactory = std::function<std::unique_ptr<Operator>()>;

/// Extracts the partition/state key from a record.
using KeySelector = std::function<Value(const Record&)>;

/// Hash-only key selector: computes KeyHashOf(key of `record`) without
/// materializing the key Value. The router prefers this over calling the
/// KeySelector (which returns a Value copy per record) when routing hash
/// edges whose key is not a plain field. Must agree with the edge's
/// KeySelector: for every record, the result equals KeyHashOf(key(record)).
using KeyHashFn = std::function<uint64_t(const Record&)>;

/// How an edge distributes records across downstream subtasks.
enum class PartitionScheme : uint8_t {
  kForward,    // subtask i -> subtask i (enables operator chaining)
  kHash,       // by key hash (requires a KeySelector)
  kRebalance,  // round-robin
  kBroadcast,  // every record to every subtask
};

std::string_view PartitionSchemeToString(PartitionScheme scheme);

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_OPERATOR_H_
