#ifndef STREAMLINE_DATAFLOW_OPERATORS_H_
#define STREAMLINE_DATAFLOW_OPERATORS_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_hash_map.h"
#include "dataflow/changelog.h"
#include "dataflow/operator.h"
#include "dataflow/sink.h"

namespace streamline {

/// 1:1 record transform.
class MapOperator : public Operator {
 public:
  using MapFn = std::function<Record(Record&&)>;
  MapOperator(std::string name, MapFn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  void ProcessRecord(int, Record&& record, Collector* out) override {
    out->Emit(fn_(std::move(record)));
  }
  /// Transforms the batch in place: one fn_ call per record, one virtual
  /// call per batch, no per-record dispatch.
  void ProcessBatch(int, std::vector<Record>&& batch,
                    Collector* out) override {
    for (Record& record : batch) record = fn_(std::move(record));
    out->EmitBatch(std::move(batch));
  }
  std::string Name() const override { return name_; }

 private:
  std::string name_;
  MapFn fn_;
};

/// 1:N record transform.
class FlatMapOperator : public Operator {
 public:
  using FlatMapFn = std::function<void(Record&&, Collector*)>;
  FlatMapOperator(std::string name, FlatMapFn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  void ProcessRecord(int, Record&& record, Collector* out) override {
    fn_(std::move(record), out);
  }
  /// Gathers the per-record expansions into one output batch so the rest
  /// of the chain still runs batch-at-a-time. scratch_ keeps its capacity
  /// across batches (downstream drains it and leaves it empty).
  void ProcessBatch(int, std::vector<Record>&& batch,
                    Collector* out) override {
    scratch_.clear();
    VectorCollector gather(&scratch_);
    for (Record& record : batch) fn_(std::move(record), &gather);
    batch.clear();
    out->EmitBatch(std::move(scratch_));
  }
  std::string Name() const override { return name_; }

 private:
  std::string name_;
  FlatMapFn fn_;
  std::vector<Record> scratch_;
};

/// Keeps records matching a predicate.
class FilterOperator : public Operator {
 public:
  using Predicate = std::function<bool(const Record&)>;
  FilterOperator(std::string name, Predicate pred)
      : name_(std::move(name)), pred_(std::move(pred)) {}

  void ProcessRecord(int, Record&& record, Collector* out) override {
    if (pred_(record)) out->Emit(std::move(record));
  }
  /// In-place swap-compaction: survivors slide down over the dropped
  /// records, the batch shrinks, order is preserved.
  void ProcessBatch(int, std::vector<Record>&& batch,
                    Collector* out) override {
    size_t keep = 0;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!pred_(batch[i])) continue;
      if (keep != i) batch[keep] = std::move(batch[i]);
      ++keep;
    }
    batch.resize(keep);
    out->EmitBatch(std::move(batch));
  }
  std::string Name() const override { return name_; }

 private:
  std::string name_;
  Predicate pred_;
};

/// Per-key running reduce (Flink-style keyed reduce): emits the updated
/// accumulated record for every input. State is checkpointable.
class KeyedReduceOperator : public Operator {
 public:
  using ReduceFn = std::function<Record(const Record&, const Record&)>;
  KeyedReduceOperator(std::string name, KeySelector key, ReduceFn reduce)
      : name_(std::move(name)), key_(std::move(key)),
        reduce_(std::move(reduce)) {}

  Status Open(const OperatorContext& ctx) override;
  void ProcessRecord(int, Record&& record, Collector* out) override;
  void ProcessBatch(int, std::vector<Record>&& batch,
                    Collector* out) override;
  void ProcessWatermark(Timestamp wm, Collector* out) override;
  Status SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  bool SupportsIncrementalState() const override { return true; }
  void EnableIncrementalState() override { changelog_.Enable(); }
  Status SnapshotDelta(ChangelogSink* sink) override;
  Status ApplyDelta(BinaryReader* r) override;
  void ResetDelta() override { changelog_.Clear(); }
  std::string Name() const override { return name_; }

  size_t num_keys() const { return state_.size(); }

 private:
  std::string name_;
  KeySelector key_;
  ReduceFn reduce_;
  FlatHashMap<Value, Record> state_;
  KeyedChangelog changelog_;

  // Per-batch key cache: open-addressed {key_hash -> dense entry index}
  // scratch table, generation-stamped so clearing between batches is O(1).
  // Repeated keys within a batch (the common case behind a hash shuffle)
  // skip the full state_ probe. Entry indices are stable because state_
  // stores entries densely and ProcessBatch never erases.
  struct CacheSlot {
    uint64_t hash = 0;
    uint32_t index = 0;
    uint32_t gen = 0;
  };
  std::vector<CacheSlot> cache_;
  uint32_t cache_gen_ = 0;
  std::vector<Record> batch_out_;

  Gauge* load_gauge_ = nullptr;
  Gauge* probe_gauge_ = nullptr;
  Gauge* keys_gauge_ = nullptr;
};

/// Merges any number of inputs into one stream (the input ordinal is
/// ignored); watermarks are combined by the runtime.
class UnionOperator : public Operator {
 public:
  explicit UnionOperator(std::string name) : name_(std::move(name)) {}
  void ProcessRecord(int, Record&& record, Collector* out) override {
    out->Emit(std::move(record));
  }
  void ProcessBatch(int, std::vector<Record>&& batch,
                    Collector* out) override {
    out->EmitBatch(std::move(batch));
  }
  std::string Name() const override { return name_; }

 private:
  std::string name_;
};

/// Keyed interval join of two streams: a left record l (input 0) joins every
/// right record r (input 1) with the same key and r.ts - l.ts in
/// [lower, upper]. Emits [l.fields..., r.fields...] with
/// ts = max(l.ts, r.ts). Buffered state is evicted by watermark and is
/// checkpointable.
class IntervalJoinOperator : public Operator {
 public:
  IntervalJoinOperator(std::string name, KeySelector left_key,
                       KeySelector right_key, Duration lower, Duration upper);

  Status Open(const OperatorContext& ctx) override;
  void ProcessRecord(int input, Record&& record, Collector* out) override;
  void ProcessWatermark(Timestamp wm, Collector* out) override;
  Status SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  bool SupportsIncrementalState() const override { return true; }
  void EnableIncrementalState() override { changelog_.Enable(); }
  Status SnapshotDelta(ChangelogSink* sink) override;
  Status ApplyDelta(BinaryReader* r) override;
  void ResetDelta() override { changelog_.Clear(); }
  std::string Name() const override { return name_; }

  size_t buffered() const;

 private:
  struct KeyBuffers {
    std::deque<Record> left;
    std::deque<Record> right;
  };

  void EmitJoined(const Record& l, const Record& r, Collector* out) const;

  std::string name_;
  KeySelector left_key_;
  KeySelector right_key_;
  Duration lower_;
  Duration upper_;
  FlatHashMap<Value, KeyBuffers> state_;
  KeyedChangelog changelog_;
  Gauge* load_gauge_ = nullptr;
  Gauge* probe_gauge_ = nullptr;
  Gauge* keys_gauge_ = nullptr;
};

/// Adapts a SinkFunction to the operator interface.
class SinkOperator : public Operator {
 public:
  SinkOperator(std::string name, std::shared_ptr<SinkFunction> sink)
      : name_(std::move(name)), sink_(std::move(sink)) {}

  Status Open(const OperatorContext& ctx) override {
    (void)ctx;
    // Shared sink functions outlive job instances; a restarted job must
    // abort the transaction its predecessor left open.
    sink_->OnRestart();
    return Status::Ok();
  }
  void ProcessRecord(int, Record&& record, Collector*) override {
    const Status st = sink_->Invoke(record);
    if (!st.ok()) throw StatusError(st);
  }
  /// One virtual ProcessBatch per batch; sink_->Invoke is the only
  /// indirect call left per record. A mid-batch failure throws and drops
  /// the rest of the batch, exactly like the per-record path.
  void ProcessBatch(int, std::vector<Record>&& batch, Collector*) override {
    for (const Record& record : batch) {
      const Status st = sink_->Invoke(record);
      if (!st.ok()) throw StatusError(st);
    }
    batch.clear();
  }
  void ProcessWatermark(Timestamp wm, Collector*) override {
    sink_->OnWatermark(wm);
  }
  void OnBarrier(uint64_t id) override { sink_->OnBarrier(id); }
  Status Close() override { return sink_->Close(); }
  std::string Name() const override { return name_; }

 private:
  std::string name_;
  std::shared_ptr<SinkFunction> sink_;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_OPERATORS_H_
